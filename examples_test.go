package repro_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main end to end; all of them
// are deterministic, so key output lines are asserted too.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs 7 binaries")
	}
	cases := map[string][]string{
		"quickstart": {"Logical topology", "fixed", "independent"},
		"flows":      {"1.00 Mbps", "1.50 Mbps", "3.00 Mbps"},
		"nodeselect": {"Selected: [m-4 m-5 m-1 m-2]", "+170%"},
		"adaptive":   {"Migrations:    1", "m-1 m-2 m-3"},
		"shipping":   {"ship to the server", "compute locally"},
		"stream":     {"tier 40.0 Mbps", "6 switches"},
		"broadcast":  {"topology-aware", "wins"},
	}
	for name, wants := range cases {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Fatalf("example %s output missing %q:\n%s", name, want, out)
				}
			}
		})
	}
}
