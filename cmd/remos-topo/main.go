// Command remos-topo prints the canonical topologies of the paper,
// physically and as Remos logical topologies.
//
// Usage:
//
//	remos-topo -name testbed            # Figure 3 testbed (ASCII)
//	remos-topo -name figure1-slow -dot  # Figure 1, Graphviz output
//	remos-topo -name widearea -logical m-1,m-8
//	remos-topo -gen fattree -n 1000 -seed 7 -emit   # generated, topofile form
//	remos-topo -gen isp -n 5000 -seed 3 -regions 5 -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/topofile"
	"repro/internal/topogen"
	"repro/internal/topology"
)

func build(name string) *graph.Graph {
	switch name {
	case "testbed":
		return topology.Testbed()
	case "figure1-fast":
		return topology.Figure1(topology.Figure1FastSwitches())
	case "figure1-slow":
		return topology.Figure1(topology.Figure1SlowSwitches())
	case "dumbbell":
		return topology.Dumbbell(4, 100, 10)
	case "widearea":
		return topology.WideArea(3, 5, 100, 45)
	default:
		return nil
	}
}

func main() {
	name := flag.String("name", "testbed", "topology: testbed, figure1-fast, figure1-slow, dumbbell, widearea")
	file := flag.String("file", "", "read the topology from a topofile instead of -name")
	gen := flag.String("gen", "", "generate a seeded topology instead of -name: fattree, hier, isp")
	n := flag.Int("n", 100, "with -gen: approximate node count")
	seed := flag.Int64("seed", 1, "with -gen: generator seed (same spec, same bytes)")
	regions := flag.Int("regions", 3, "with -gen: number of regions in the partition")
	summary := flag.Bool("summary", false, "with -gen: print per-region node/host counts instead of the topology")
	emit := flag.Bool("emit", false, "print the topology in topofile form")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of ASCII")
	logical := flag.String("logical", "", "comma-separated hosts: also print the collapsed logical topology connecting them")
	flag.Parse()

	var g *graph.Graph
	if *gen != "" {
		tp, err := topogen.Generate(topogen.Spec{Kind: *gen, N: *n, Seed: *seed, Regions: *regions})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		g = tp.Graph
		*name = fmt.Sprintf("%s-n%d-s%d", *gen, *n, *seed)
		if *summary {
			fmt.Printf("%s: %d nodes, %d links, %d regions\n",
				*name, len(g.Nodes()), g.NumLinks(), len(tp.Regions))
			for _, r := range tp.Regions {
				fmt.Printf("  %-6s %5d nodes %5d hosts\n", r, len(tp.Members(r)), len(tp.Hosts(r)))
			}
			return
		}
	} else if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g, err = topofile.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		g = build(*name)
	}
	if g == nil {
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *name)
		os.Exit(2)
	}
	if *emit {
		fmt.Print(topofile.Format(g))
		return
	}
	if *dot {
		fmt.Print(g.DOT(*name))
	} else {
		fmt.Printf("Physical topology %q:\n%s", *name, g.ASCII())
	}
	if *logical != "" {
		var hosts []graph.NodeID
		keep := make(map[graph.NodeID]bool)
		for _, h := range strings.Split(*logical, ",") {
			id := graph.NodeID(strings.TrimSpace(h))
			if !g.HasNode(id) {
				fmt.Fprintf(os.Stderr, "unknown node %q\n", id)
				os.Exit(2)
			}
			hosts = append(hosts, id)
			keep[id] = true
		}
		rt, err := g.Routes()
		if err != nil {
			fmt.Fprintf(os.Stderr, "routing: %v\n", err)
			os.Exit(1)
		}
		lg := g.InducedByRoutes(rt, hosts).CollapseChains(func(id graph.NodeID) bool { return keep[id] })
		if *dot {
			fmt.Print(lg.DOT(*name + "-logical"))
		} else {
			fmt.Printf("\nLogical topology connecting %s:\n%s", *logical, lg.ASCII())
		}
	}
}
