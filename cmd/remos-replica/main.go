// Command remos-replica runs a stateless read replica of a collector:
// it subscribes to the collector's replication feed, mirrors the fed
// state locally, and serves the full query/watch service from the
// mirror — so query load scales horizontally without touching the
// collector, and queries keep being answered (with honestly growing
// data ages) through collector restarts and partitions, up to the
// staleness fence.
//
// Usage:
//
//	remos-replica -listen 127.0.0.1:7071 -feed 127.0.0.1:7070 \
//	    -max-staleness 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/telemetry"

	gonet "net"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address for the replica's query service")
	feed := flag.String("feed", "", "comma-separated collector query addresses to subscribe the replication feed from (required); list both halves of a hot-standby pair and the replica rotates to whichever leads")
	debugAddr := flag.String("debug-addr", "", "optional HTTP address serving JSON metrics (/metrics) and pprof (/debug/pprof/)")
	maxStaleness := flag.Duration("max-staleness", replica.DefaultMaxStaleness, "staleness fence: past this, queries refuse with a typed stale-replica error (negative disables)")
	lagThreshold := flag.Duration("lag-threshold", 0, "feed quiet time before the replica reports Lagging (0 = max-staleness/4)")
	resyncBackoff := flag.Duration("resync-backoff", replica.DefaultResyncBackoff, "initial feed reconnect backoff; doubles to 16x with jitter")
	seed := flag.Int64("seed", 0, "seed for reconnect-backoff jitter (0 = from wall clock)")
	syncTimeout := flag.Duration("sync-timeout", 0, "max wait for the first snapshot before serving (0 = serve immediately, refusing queries until synced)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain budget for in-flight requests")
	maxConns := flag.Int("max-conns", 256, "max concurrent client connections (0 = unlimited); extras get a typed busy refusal")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "per-connection idle read deadline (negative disables)")
	maxInflight := flag.Int("max-inflight", 64, "admission control: max concurrent work units across all connections (0 disables)")
	queueDepth := flag.Int("queue-depth", 128, "admission control: max requests waiting for work units")
	defaultBudget := flag.Duration("default-budget", 2*time.Second, "per-request time budget applied when the client declares none (0 = unbudgeted)")
	watchQueueDepth := flag.Int("watch-queue-depth", 0, "per-subscription bounded delta queue depth (0 = default 16)")
	watchWriteDeadline := flag.Duration("watch-write-deadline", 0, "per-delta write budget before a stalled subscriber is evicted (0 = default 2s)")
	watchMaxSubs := flag.Int("watch-max-subs", 0, "max concurrent watch subscriptions (0 = default 1024, negative = unlimited)")
	flag.Parse()

	if *feed == "" {
		fatal(fmt.Errorf("remos-replica: -feed is required (the collector address to replicate from)"))
	}
	feedAddrs := strings.Split(*feed, ",")
	for i := range feedAddrs {
		feedAddrs[i] = strings.TrimSpace(feedAddrs[i])
	}

	rep := replica.New(replica.Config{
		FeedAddrs:     feedAddrs,
		MaxStaleness:  *maxStaleness,
		LagThreshold:  *lagThreshold,
		ResyncBackoff: *resyncBackoff,
		Seed:          *seed,
		Telemetry:     telemetry.NewRegistry(),
	})
	rep.Start()
	defer rep.Close()

	if *syncTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *syncTimeout)
		err := rep.WaitSynced(ctx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "still syncing after %v (%v); serving anyway, queries refuse until synced\n",
				*syncTimeout, err)
		}
	}

	srv, err := collector.ServeConfig(rep, *listen, collector.ServerConfig{
		IdleTimeout:        *idleTimeout,
		MaxConns:           *maxConns,
		MaxInflight:        *maxInflight,
		QueueDepth:         *queueDepth,
		DefaultBudget:      *defaultBudget,
		WatchQueueDepth:    *watchQueueDepth,
		WatchWriteDeadline: *watchWriteDeadline,
		WatchMaxSubs:       *watchMaxSubs,
		// Serve the batched "matrix" op from the mirrored state. The
		// Modeler re-checks the replica's staleness fence per call, so a
		// fenced replica refuses matrices exactly like point queries.
		Matrix: core.MatrixHandler(core.New(core.Config{Source: rep})),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replica query service on tcp://%s (feed %s, fence %v)\n", srv.Addr(), *feed, *maxStaleness)
	fmt.Printf("query it: remos-query -addr %s graph\n", srv.Addr())
	if *debugAddr != "" {
		dln, err := gonet.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		go http.Serve(dln, telemetry.DebugMux(srv.Telemetry(), rep.Telemetry()))
		fmt.Printf("debug endpoint on http://%s/metrics (pprof at /debug/pprof/)\n", dln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	status := time.NewTicker(10 * time.Second)
	defer status.Stop()
	for {
		select {
		case <-status.C:
			st := rep.Status()
			fmt.Printf("replica %s: epoch %d, last update %.1fs ago\n",
				st.State, st.Epoch, st.Staleness.Seconds())
		case <-stop:
			fmt.Println("\nshutting down: draining in-flight requests")
			srv.Shutdown(*drainTimeout)
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
