// Command remos-collector runs the Remos Collector as a daemon over the
// simulated Figure 3 testbed, advancing the simulation in real time and
// serving queries over TCP (for remos-query or any Modeler via
// remos.DialCollector). Optionally it also exposes every node's SNMP
// agent on a localhost UDP port.
//
// Usage:
//
//	remos-collector -listen 127.0.0.1:7070 \
//	    -blast m-6,m-8,90 -blast m-8,m-6,90 \
//	    -speed 10 -udp
//
// With -gen/-region it becomes one member of a federation: it simulates
// the shared generated topology, polls only its own region, and serves
// a federated view that composes peer regions' summaries:
//
//	remos-collector -gen hier -gen-n 1000 -gen-seed 7 -region r0 \
//	    -listen 127.0.0.1:7070 \
//	    -federate-from r1=127.0.0.1:7071 -federate-from r2=127.0.0.1:7072
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/ha"
	"repro/internal/netsim"
	"repro/internal/snmp"
	"repro/internal/telemetry"
	"repro/internal/topogen"
	"repro/internal/topology"
	"repro/internal/traffic"

	gonet "net"

	graphpkg "repro/internal/graph"
	simclockpkg "repro/internal/simclock"
)

type blastSpec struct {
	src, dst string
	mbps     float64
}

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address for the query service")
	debugAddr := flag.String("debug-addr", "", "optional HTTP address serving JSON metrics (/metrics) and pprof (/debug/pprof/)")
	speed := flag.Float64("speed", 1, "virtual seconds per wall second")
	udp := flag.Bool("udp", false, "also serve each node's SNMP agent over UDP")
	poll := flag.Float64("poll", 2, "collector poll period (virtual seconds)")
	history := flag.String("history", "", "write the measurement history to this file on shutdown")
	downAfter := flag.Int("down-after", 3, "consecutive failures before an agent is marked down")
	backoff := flag.Float64("backoff", 0, "base retry backoff for failing agents (virtual seconds; 0 = poll period)")
	backoffMax := flag.Float64("backoff-max", 0, "maximum retry backoff (virtual seconds; 0 = 16x base)")
	halfLife := flag.Float64("half-life", 0, "data age at which accuracy halves (virtual seconds; 0 = 10x poll, negative disables)")
	seed := flag.Int64("seed", 1, "seed for fault injection and backoff jitter")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: restore from it on start, write it periodically and on shutdown")
	checkpointEvery := flag.Float64("checkpoint-every", 30, "periodic checkpoint interval (virtual seconds)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain budget for in-flight requests")
	maxConns := flag.Int("max-conns", 256, "max concurrent client connections (0 = unlimited); extras get a typed busy refusal")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "per-connection idle read deadline (negative disables)")
	maxInflight := flag.Int("max-inflight", 64, "admission control: max concurrent work units across all connections (0 disables; topo=4, samples=2, other=1, ping free)")
	queueDepth := flag.Int("queue-depth", 128, "admission control: max requests waiting for work units; beyond it requests are shed with a typed retry-after refusal")
	defaultBudget := flag.Duration("default-budget", 2*time.Second, "per-request time budget applied when the client declares none (0 = unbudgeted)")
	watchQueueDepth := flag.Int("watch-queue-depth", 0, "per-subscription bounded delta queue depth; overflow drops oldest and marks the next delivery Overflowed (0 = default 16)")
	watchWriteDeadline := flag.Duration("watch-write-deadline", 0, "per-delta write budget before a stalled subscriber is evicted (0 = default 2s)")
	watchMaxSubs := flag.Int("watch-max-subs", 0, "max concurrent watch subscriptions; extras get a typed refusal (0 = default 1024, negative = unlimited)")
	leasePath := flag.String("lease", "", "hot-standby pair: shared lease file; the holder polls, the other daemon syncs from it and promotes on expiry")
	standbyOf := flag.String("standby-of", "", "hot-standby pair: start as the standby of the leader at this query address (requires -lease)")
	leaseTTL := flag.Float64("lease-ttl", 3, "lease grant length in wall seconds; promotion after a leader crash is bounded by it plus one heartbeat")
	haHeartbeat := flag.Float64("ha-heartbeat", 1, "lease renewal/observation period (virtual seconds)")
	advertise := flag.String("advertise", "", "address clients reach this daemon at, used as the lease identity and leader hint (default: the bound listen address)")
	gen := flag.String("gen", "", "simulate a generated topology (fattree|hier|isp) instead of the Figure 3 testbed")
	genN := flag.Int("gen-n", 1000, "with -gen: approximate node count")
	genSeed := flag.Int64("gen-seed", 1, "with -gen: generator seed — every federating daemon must use the same spec")
	genRegions := flag.Int("gen-regions", 3, "with -gen: number of regions in the partition")
	region := flag.String("region", "", "federate: poll only this region's nodes and serve a federated view (requires -gen)")
	var federateFrom []string
	flag.Func("federate-from", "region=addr — subscribe to this peer collector's region summaries (repeatable; requires -region)", func(s string) error {
		if !strings.Contains(s, "=") {
			return fmt.Errorf("want region=addr")
		}
		federateFrom = append(federateFrom, s)
		return nil
	})
	var blasts []blastSpec
	flag.Func("blast", "src,dst,mbps — non-responsive traffic (repeatable)", func(s string) error {
		parts := strings.Split(s, ",")
		if len(parts) != 3 {
			return fmt.Errorf("want src,dst,mbps")
		}
		mbps, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return err
		}
		blasts = append(blasts, blastSpec{parts[0], parts[1], mbps})
		return nil
	})
	type blackholeSpec struct {
		node     string
		from, to float64
	}
	var blackholes []blackholeSpec
	flag.Func("blackhole", "node,from,to — drop the node's SNMP traffic in [from,to) virtual seconds, to<=0 = forever (repeatable)", func(s string) error {
		parts := strings.Split(s, ",")
		if len(parts) != 3 {
			return fmt.Errorf("want node,from,to")
		}
		from, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return err
		}
		to, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return err
		}
		blackholes = append(blackholes, blackholeSpec{parts[0], from, to})
		return nil
	})
	flag.Parse()
	if *standbyOf != "" && *leasePath == "" {
		fatal(fmt.Errorf("-standby-of requires -lease"))
	}
	if *region != "" && *gen == "" {
		fatal(fmt.Errorf("-region requires -gen (the partition derives from the generated topology)"))
	}
	if len(federateFrom) > 0 && *region == "" {
		fatal(fmt.Errorf("-federate-from requires -region"))
	}

	clk := simclockpkg.New()
	g := topology.Testbed()
	var tp *topogen.Topology
	if *gen != "" {
		var err error
		tp, err = topogen.Generate(topogen.Spec{Kind: *gen, N: *genN, Seed: *genSeed, Regions: *genRegions})
		if err != nil {
			fatal(err)
		}
		g = tp.Graph
		fmt.Printf("generated topology %s: %d nodes, %d links, %d regions (seed %d)\n",
			*gen, len(g.Nodes()), g.NumLinks(), len(tp.Regions), *genSeed)
	}
	net, err := netsim.New(clk, g)
	if err != nil {
		fatal(err)
	}
	att := snmp.Attach(net, snmp.DefaultCommunity)

	// One lock serializes simulator access between the real-time clock
	// driver and any UDP agent handlers.
	var mu sync.Mutex
	addrs := make(map[graphpkg.NodeID]string)
	names := make([]graphpkg.NodeID, 0, len(att.Agents))
	for id := range att.Agents {
		names = append(names, id)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, id := range names {
		// A federating daemon simulates the whole topology but polls
		// only the region it owns.
		if *region != "" && tp.RegionOf(id) != *region {
			continue
		}
		addrs[id] = snmp.Addr(id)
	}
	if *region != "" && len(addrs) == 0 {
		fatal(fmt.Errorf("region %q has no nodes in the generated topology", *region))
	}
	if *udp {
		for _, id := range names {
			a := att.Agents[id]
			a.Serialize = func(fn func()) {
				mu.Lock()
				defer mu.Unlock()
				fn()
			}
			srv, err := snmp.ServeUDP(a, "127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			fmt.Printf("SNMP agent %-12s udp://%s\n", id, srv.Addr())
		}
	}

	// All collector traffic crosses the fault injector, so scripted
	// blackholes exercise the breaker/staleness path of a live daemon.
	inj := faults.New(att.Registry, clk, *seed)
	for _, b := range blackholes {
		inj.Blackhole(snmp.Addr(graphpkg.NodeID(b.node)), b.from, b.to)
		fmt.Printf("fault: blackhole %s in [%g, %g)\n", b.node, b.from, b.to)
	}

	col := collector.New(collector.Config{
		Client:        snmp.NewClient(inj, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    *poll,
		PerHopLatency: topology.PerHopLatency,
		DownAfter:     *downAfter,
		BackoffBase:   *backoff,
		BackoffMax:    *backoffMax,
		StaleHalfLife: *halfLife,
		Seed:          *seed,
	})
	mu.Lock()
	// Warm restart: restore checkpointed state first, advance the clock
	// past the save point plus the (virtual-time-scaled) downtime so
	// data ages stay honest, then Start — which skips the cold
	// discovery when a topology was restored.
	if *checkpoint != "" {
		if f, err := os.Open(*checkpoint); err == nil {
			info, rerr := col.RestoreCheckpoint(f)
			f.Close()
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "checkpoint %s unusable, starting cold: %v\n", *checkpoint, rerr)
			} else {
				down := time.Since(info.SavedAtWall).Seconds()
				if down < 0 {
					down = 0
				}
				clk.Advance(info.SavedAt + down**speed)
				fmt.Printf("restored checkpoint %s (saved at t=%.1fs, down %.1fs wall); warm start at t=%.1fs\n",
					*checkpoint, info.SavedAt, down, float64(clk.Now()))
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "opening checkpoint: %v\n", err)
		}
	}
	// In a hot-standby pair the ha.Node owns the collector lifecycle:
	// it starts polling on promotion and stops it on demotion. Outside
	// HA the collector starts (and keeps polling) unconditionally.
	if *leasePath == "" {
		if err := col.Start(); err != nil {
			mu.Unlock()
			fatal(err)
		}
	}
	for _, b := range blasts {
		traffic.Blast(net, graphpkg.NodeID(b.src), graphpkg.NodeID(b.dst), b.mbps*1e6)
		fmt.Printf("traffic: %s -> %s at %.0f Mbps\n", b.src, b.dst, b.mbps)
	}
	saveCheckpoint := func() {
		tmp := *checkpoint + ".tmp"
		f, err := os.Create(tmp)
		if err == nil {
			err = col.SaveCheckpoint(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				err = os.Rename(tmp, *checkpoint) // atomic: never a half-written checkpoint
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing checkpoint: %v\n", err)
			os.Remove(tmp)
		}
	}
	if *checkpoint != "" && *checkpointEvery > 0 {
		clk.NewTicker(clk.Now()+simclockpkg.Time(*checkpointEvery), *checkpointEvery,
			"collector-checkpoint", func(simclockpkg.Time) { saveCheckpoint() })
	}
	mu.Unlock()

	// The gate refuses queries while this daemon is not the pair's
	// leader. The node is built only after the listener binds (its
	// identity defaults to the bound address), so the gate reads it
	// through an atomic — until the node exists, an HA daemon refuses
	// with the configured peer as the hint rather than serving answers
	// it is not entitled to give.
	var haNode atomic.Pointer[ha.Node]
	var gate func(op string) error
	if *leasePath != "" {
		gate = func(op string) error {
			if n := haNode.Load(); n != nil {
				return n.Gate(op)
			}
			return &collector.NotLeaderError{Leader: *standbyOf}
		}
	}
	// A federating daemon serves a View — its own region at full
	// fidelity composed with peer regions' summaries — instead of the
	// bare collector. Peers are subscribed over the "region-summary"
	// watch kind and survive peer restarts via the WatchPeer backoff.
	var serveSrc collector.Source = col
	var watchPeers []*federation.WatchPeer
	if *region != "" {
		reg := &federation.Region{Name: *region, Src: col, RegionOf: tp.RegionOf, Clock: clk}
		var peers []federation.Peer
		for _, spec := range federateFrom {
			parts := strings.SplitN(spec, "=", 2)
			addr := parts[1]
			// Dialing happens inside the peer's reconnect loop, after
			// this daemon's own listener is up — a federation whose
			// members all subscribe to each other converges in any
			// startup order.
			wp := federation.NewDialWatchPeer(parts[0], func() (collector.WatchSource, error) {
				return collector.DialConfig(addr, collector.ClientConfig{CallTimeout: 5 * time.Second})
			})
			watchPeers = append(watchPeers, wp)
			peers = append(peers, wp)
			fmt.Printf("federation: subscribing to region %s at %s\n", parts[0], addr)
		}
		serveSrc = federation.NewView(federation.Config{Region: reg, Peers: peers, Clock: clk})
		fmt.Printf("federation: serving region %q (%d nodes polled, %d peer regions)\n",
			*region, len(addrs), len(peers))
	}
	srv, err := collector.ServeConfig(serveSrc, *listen, collector.ServerConfig{
		IdleTimeout:        *idleTimeout,
		MaxConns:           *maxConns,
		MaxInflight:        *maxInflight,
		QueueDepth:         *queueDepth,
		DefaultBudget:      *defaultBudget,
		WatchQueueDepth:    *watchQueueDepth,
		WatchWriteDeadline: *watchWriteDeadline,
		WatchMaxSubs:       *watchMaxSubs,
		Gate:               gate,
		// Serve the batched "matrix" op through a Modeler pinned over
		// whatever this daemon serves (the bare collector or the
		// federated view).
		Matrix: core.MatrixHandler(core.New(core.Config{Source: serveSrc})),
	})
	if err != nil {
		fatal(err)
	}
	var node *ha.Node
	if *leasePath != "" {
		id := *advertise
		if id == "" {
			id = srv.Addr()
		}
		node, err = ha.New(ha.Config{
			Collector: col,
			Clock:     clk,
			Lease:     ha.NewFileLease(*leasePath),
			ID:        id,
			PeerAddr:  *standbyOf,
			LeaseTTL:  *leaseTTL,
			Heartbeat: *haHeartbeat,
			Serialize: func(fn func()) {
				mu.Lock()
				defer mu.Unlock()
				fn()
			},
			// A deposed leader's watch subscribers are chained to a
			// stale term: drain them so they resubscribe (and get
			// re-routed) instead of consuming a fenced stream. Async —
			// the hook runs under the clock driver's lock.
			OnDemote: func(term uint64) {
				fmt.Printf("ha: stepped down at term %d\n", term)
				go srv.DrainWatches(2 * time.Second)
			},
			OnPromote: func(term uint64) {
				fmt.Printf("ha: promoted to leader at term %d\n", term)
			},
		})
		if err != nil {
			fatal(err)
		}
		mu.Lock()
		err = node.Start(*standbyOf == "")
		mu.Unlock()
		if err != nil {
			fatal(err)
		}
		haNode.Store(node)
		fmt.Printf("hot-standby pair: lease %s (ttl %gs wall, heartbeat %gs virtual), starting as %s, id %s\n",
			*leasePath, *leaseTTL, *haHeartbeat, node.Role(), id)
	}
	fmt.Printf("collector query service on tcp://%s (speed %gx, poll %gs)\n", srv.Addr(), *speed, *poll)
	fmt.Printf("query it: remos-query -addr %s graph\n", srv.Addr())
	if *debugAddr != "" {
		dln, err := gonet.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		go http.Serve(dln, telemetry.DebugMux(srv.Telemetry(), col.Telemetry()))
		fmt.Printf("debug endpoint on http://%s/metrics (pprof at /debug/pprof/)\n", dln.Addr())
	}

	// Real-time clock driver: 20 Hz wall ticks.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			mu.Lock()
			clk.Advance(0.05 * *speed)
			mu.Unlock()
		case <-stop:
			fmt.Println("\nshutting down: draining in-flight requests")
			// Graceful drain: stop accepting, let in-flight requests
			// finish within the budget, then force-close stragglers.
			srv.Shutdown(*drainTimeout)
			for _, wp := range watchPeers {
				wp.Close()
			}
			if node != nil {
				// Stop heartbeats/polling under the driver lock, then
				// release the lease and wait for the sync goroutine
				// outside it (a leader's release lets the standby
				// promote immediately instead of waiting out the TTL).
				mu.Lock()
				node.Kill()
				mu.Unlock()
				node.Close()
			}
			mu.Lock()
			if *checkpoint != "" {
				saveCheckpoint()
				fmt.Printf("checkpoint saved to %s\n", *checkpoint)
			}
			if *history != "" {
				f, err := os.Create(*history)
				if err == nil {
					err = col.SaveHistory(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "saving history: %v\n", err)
				} else {
					fmt.Printf("history saved to %s\n", *history)
				}
			}
			mu.Unlock()
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
