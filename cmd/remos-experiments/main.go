// Command remos-experiments regenerates the tables and figures of the
// Remos paper (HPDC'98) on the simulated testbed.
//
// Usage:
//
//	remos-experiments                 # everything
//	remos-experiments -table 2        # one table
//	remos-experiments -figure 4       # one figure
//	remos-experiments -ablation       # self-traffic discount ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1-3)")
	figure := flag.Int("figure", 0, "print only this figure (1 or 4)")
	ablation := flag.Bool("ablation", false, "run the self-traffic discount ablation")
	predict := flag.Bool("predict", false, "run the future-timeframe prediction study")
	scale := flag.Bool("scale", false, "run the federated regional-collector scale study")
	overhead := flag.Bool("overhead", false, "run the poll-period overhead/responsiveness study")
	sweep := flag.Bool("sweep", false, "run the FFT node-count sweep")
	flag.Parse()

	all := *table == 0 && *figure == 0 && !*ablation && !*predict && !*scale && !*overhead && !*sweep
	if *figure == 1 || all {
		fast, slow := experiments.Figure1()
		fmt.Print(experiments.FormatFigure1(fast, slow))
		fmt.Println()
	}
	if *figure == 4 || all {
		fmt.Print(experiments.FormatFigure4(experiments.Figure4()))
		fmt.Println()
	}
	if *table == 1 || all {
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
		fmt.Println()
	}
	if *table == 2 || all {
		fmt.Print(experiments.FormatTable2(experiments.Table2()))
		fmt.Println()
	}
	if *table == 3 || all {
		fmt.Print(experiments.FormatTable3(experiments.Table3()))
		fmt.Println()
	}
	if *ablation || all {
		fmt.Print(experiments.FormatAblation(experiments.AblationSelfTraffic()))
		fmt.Println()
	}
	if *predict || all {
		fmt.Print(experiments.FormatPredictionStudy(experiments.PredictionStudy()))
		fmt.Println()
	}
	if *scale || all {
		fmt.Print(experiments.FormatScaleStudy(experiments.ScaleStudy()))
		fmt.Println()
	}
	if *overhead || all {
		fmt.Print(experiments.FormatOverheadStudy(experiments.OverheadStudy()))
		fmt.Println()
	}
	if *sweep || all {
		fmt.Print(experiments.FormatSweep(experiments.NodeCountSweep()))
		fmt.Println()
	}
	if *table != 0 && (*table < 1 || *table > 3) {
		fmt.Fprintf(os.Stderr, "unknown table %d\n", *table)
		os.Exit(2)
	}
	if *figure != 0 && *figure != 1 && *figure != 4 {
		fmt.Fprintf(os.Stderr, "unknown figure %d\n", *figure)
		os.Exit(2)
	}
}
