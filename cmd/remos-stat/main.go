// Command remos-stat reads a running remos-collector daemon's metrics
// over the query service's "stats" op and renders them: counters,
// gauges, quartile latency summaries (§4.4's statistics language turned
// on the system itself), and the most recent request spans.
//
// Usage:
//
//	remos-stat -addr HOST:PORT              one snapshot, human tables
//	remos-stat -addr HOST:PORT -json        one snapshot, raw JSON
//	remos-stat -addr HOST:PORT -watch 2s    live dashboard, redrawn every 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/collector"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "collector query-service address")
	watch := flag.Duration("watch", 0, "redraw every interval (0 = one snapshot and exit)")
	asJSON := flag.Bool("json", false, "emit the raw snapshot as JSON")
	timeout := flag.Duration("timeout", 5*time.Second, "per-fetch budget")
	spans := flag.Int("spans", 10, "recent spans to show (0 hides the span table)")
	flag.Parse()

	// One client for the whole run: every refresh tick is a stream on
	// the same multiplexed connection, not a fresh dial. The client
	// reconnects by itself if the daemon restarts between ticks.
	cl, err := collector.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	fetch := func() (*telemetry.Snapshot, error) {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		return cl.TelemetrySnapshot(ctx)
	}

	for {
		snap, err := fetch()
		if err != nil {
			if *watch <= 0 {
				fatal(err)
			}
			// Watch mode rides out transient failures (daemon
			// restarting, briefly saturated): report and keep ticking.
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("remos-stat %s at %s: %v\n", *addr, time.Now().Format("15:04:05"), err)
			time.Sleep(*watch)
			continue
		}
		if *watch > 0 {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				fatal(err)
			}
		} else {
			render(snap, *addr, *spans)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
	}
}

func render(snap *telemetry.Snapshot, addr string, spans int) {
	fmt.Printf("remos-stat %s at %s\n", addr, time.Now().Format("15:04:05"))

	if len(snap.Counters) > 0 {
		fmt.Printf("\nCOUNTERS\n")
		for _, name := range snap.CounterNames() {
			fmt.Printf("  %-36s %12d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Printf("\nGAUGES\n")
		for _, name := range snap.GaugeNames() {
			fmt.Printf("  %-36s %12.3f\n", name, snap.Gauges[name])
		}
	}
	renderHA(snap)
	renderReplica(snap)
	renderFederation(snap)
	if len(snap.Quantiles) > 0 {
		fmt.Printf("\nQUARTILES%26s %8s %8s %8s %8s %8s\n",
			"count", "min", "q1", "median", "q3", "max")
		for _, name := range snap.QuantileNames() {
			q := snap.Quantiles[name]
			fmt.Printf("  %-33s %6d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
				name, q.Count, q.Stat.Min, q.Stat.Q1, q.Stat.Median, q.Stat.Q3, q.Stat.Max)
		}
	}
	fmt.Printf("\nSPANS  started %d  finished %d  in-flight %d\n",
		snap.SpansStarted, snap.SpansFinished, snap.SpansStarted-snap.SpansFinished)
	if spans > 0 && len(snap.Spans) > 0 {
		recent := snap.Spans
		if len(recent) > spans {
			recent = recent[len(recent)-spans:]
		}
		for _, sp := range recent {
			fmt.Printf("  %-15s %-16s %9.3fms", sp.Trace, sp.Name,
				float64(sp.Duration)/float64(time.Millisecond))
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %s=%s", k, sp.Attrs[k])
			}
			fmt.Println()
		}
	}
}

// renderHA summarizes the ha.* metrics a hot-standby collector daemon
// (remos-collector -lease) exports: which role this daemon holds, at
// what lease term, and how often leadership has moved or stale-term
// traffic been fenced.
func renderHA(snap *telemetry.Snapshot) {
	role, ok := snap.Gauges["ha.role"]
	if !ok {
		return
	}
	name := "standby"
	if role == 1 {
		name = "leader"
	}
	fmt.Printf("\nHA  role %-8s term %-6.0f promotions %d  demotions %d  fencing-rejections %d  sync-resyncs %d\n",
		name,
		snap.Gauges["ha.term"],
		snap.Counters["ha.promotions"],
		snap.Counters["ha.demotions"],
		snap.Counters["ha.fencing.rejections"],
		snap.Counters["ha.sync.resyncs"])
}

// renderReplica summarizes the replica.* metrics a remos-replica daemon
// exports: the raw counters and gauges are already in the tables above;
// this line decodes them into the operator's first question — what state
// is the replica in, how far behind is it, and has it been fencing.
func renderReplica(snap *telemetry.Snapshot) {
	state, ok := snap.Gauges["replica.state"]
	if !ok {
		return
	}
	names := []string{"syncing", "live", "lagging", "fenced"}
	name := "unknown"
	if i := int(state); i >= 0 && i < len(names) {
		name = names[i]
	}
	fmt.Printf("\nREPLICA  state %-8s epoch %-10.0f lag %.0f epochs / %.2fs   resyncs %d  fence-trips %d  fenced-queries %d\n",
		name,
		snap.Gauges["replica.epoch"],
		snap.Gauges["replica.lag.epochs"],
		snap.Gauges["replica.lag.seconds"],
		snap.Counters["replica.resyncs"],
		snap.Counters["replica.fence.trips"],
		snap.Counters["replica.queries.fenced"])
}

// renderFederation summarizes the federation.* metrics a federating
// collector daemon (remos-collector -region) exports: how many regions
// the view composes, pull/fencing activity, and — per peer region — the
// age of the summary every cross-region answer currently rests on.
func renderFederation(snap *telemetry.Snapshot) {
	regions, ok := snap.Gauges["federation.regions"]
	if !ok {
		return
	}
	fmt.Printf("\nFEDERATION  regions %.0f  pulls %d  applied %d  pull-errors %d  fencing-rejections %d\n",
		regions,
		snap.Counters["federation.pulls"],
		snap.Counters["federation.summary.applied"],
		snap.Counters["federation.pull.errors"],
		snap.Counters["federation.fencing.rejections"])
	const pre, post = "federation.region.", ".age"
	for _, name := range snap.GaugeNames() {
		if len(name) <= len(pre)+len(post) || name[:len(pre)] != pre || name[len(name)-len(post):] != post {
			continue
		}
		r := name[len(pre) : len(name)-len(post)]
		age := snap.Gauges[name]
		status := fmt.Sprintf("age %6.1fs", age)
		if age < 0 {
			status = "no summary"
		}
		fmt.Printf("  region %-10s %s  epoch %-8.0f fails %.0f\n",
			r, status,
			snap.Gauges[pre+r+".epoch"],
			snap.Gauges[pre+r+".fails"])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
