// Command remos-query issues Remos queries against a running
// remos-collector daemon over TCP.
//
// Usage:
//
//	remos-query -addr HOST:PORT graph [m-1 m-2 ...]
//	remos-query -addr HOST:PORT bw SRC DST
//	remos-query -addr HOST:PORT latency SRC DST
//	remos-query -addr HOST:PORT load HOST
//	remos-query -addr HOST:PORT age SRC DST
//	remos-query -addr HOST:PORT health
//	remos-query -addr HOST:PORT select START K
//	remos-query -addr HOST:PORT flows fixed:m-1,m-7,2 var:m-2,m-7,1 indep:m-3,m-8
//
// With one or more repeatable -collector flags the query plane is
// replicated: queries go to the first healthy replica and fail over
// transparently when it dies:
//
//	remos-query -collector HOST:7070 -collector HOST:7071 graph
//
// The flows command is remos_flow_info from the shell: each argument is
// CLASS:SRC,DST[,X] where X is Mbps for fixed flows and the relative
// weight for variable flows.
//
// The -window flag selects the measurement timeframe in seconds
// (0 = current, negative = physical capacity).
package main

import (
	"context"
	"strings"

	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"repro/internal/collector"
	"repro/remos"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "collector query-service address")
	window := flag.Float64("window", 10, "history window seconds (0=current, <0=capacity)")
	timeout := flag.Duration("timeout", 0, "end-to-end query budget (0 = none); the remaining budget rides to the daemon with every call")
	var collectors []string
	flag.Func("collector", "replica collector address (repeatable; takes precedence over -addr)", func(s string) error {
		collectors = append(collectors, s)
		return nil
	})
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var src remos.Source
	var err error
	if len(collectors) > 0 {
		src, err = remos.DialCollectors(collectors...)
	} else {
		src, err = remos.DialCollector(*addr)
	}
	if err != nil {
		fatal(err)
	}
	mod := remos.NewModeler(remos.Config{Source: src})

	tf := remos.TFHistory(*window)
	if *window == 0 {
		tf = remos.TFCurrent()
	} else if *window < 0 {
		tf = remos.TFCapacity()
	}

	switch args[0] {
	case "graph":
		var nodes []remos.NodeID
		for _, a := range args[1:] {
			nodes = append(nodes, remos.NodeID(a))
		}
		g, err := mod.GetGraphCtx(ctx, nodes, tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d nodes, %d logical links (%v)\n", len(g.Nodes), len(g.Links), tf.Kind)
		for _, n := range g.Nodes {
			fmt.Printf("  %-12s %v\n", n.ID, n.Kind)
		}
		for _, l := range g.Links {
			fmt.Printf("  %s -- %s: cap %.0f Mbps, avail %.1f/%.1f Mbps, lat %.2f ms\n",
				l.A, l.B, l.Capacity.Median/1e6,
				l.AvailFrom(l.A).Median/1e6, l.AvailFrom(l.B).Median/1e6,
				l.Latency.Median*1e3)
		}
	case "bw":
		need(args, 3)
		st, err := mod.AvailableBandwidthCtx(ctx, remos.NodeID(args[1]), remos.NodeID(args[2]), tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s -> %s: %.2f Mbps  quartiles [%.1f %.1f %.1f %.1f %.1f] acc %.2f\n",
			args[1], args[2], st.Median/1e6,
			st.Min/1e6, st.Q1/1e6, st.Median/1e6, st.Q3/1e6, st.Max/1e6, st.Accuracy)
	case "latency":
		need(args, 3)
		st, err := mod.PathLatencyCtx(ctx, remos.NodeID(args[1]), remos.NodeID(args[2]))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s -> %s: %.2f ms one-way\n", args[1], args[2], st.Median*1e3)
	case "load":
		need(args, 2)
		st, err := mod.HostLoadCtx(ctx, remos.NodeID(args[1]), tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %.0f%% CPU load\n", args[1], st.Median*100)
	case "age":
		need(args, 3)
		from, to := remos.NodeID(args[1]), remos.NodeID(args[2])
		topo, err := collector.CtxTopology(ctx, src)
		if err != nil {
			fatal(err)
		}
		var key remos.ChannelKey
		found := false
		for _, l := range topo.Graph.Links() {
			if (l.A == from && l.B == to) || (l.A == to && l.B == from) {
				key = topo.Key(l, l.DirFrom(from))
				found = true
				break
			}
		}
		if !found {
			fatalf("no direct link %s--%s", from, to)
		}
		age, err := mod.DataAgeCtx(ctx, key)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s -> %s: data age %.2fs\n", from, to, age)
	case "health":
		h := mod.Health()
		if h == nil {
			fmt.Println("no health information available")
			break
		}
		ids := make([]string, 0, len(h))
		for id := range h {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			ah := h[remos.NodeID(id)]
			fmt.Printf("%-12s %-8s consecutive-failures=%d last-success=%.1fs\n",
				id, ah.State, ah.ConsecutiveFailures, ah.LastSuccess)
		}
	case "flows":
		if len(args) < 2 {
			usage()
		}
		var fixed, variable, independent []remos.Flow
		for _, spec := range args[1:] {
			class, rest, ok := strings.Cut(spec, ":")
			if !ok {
				fatalf("bad flow spec %q (want CLASS:SRC,DST[,X])", spec)
			}
			parts := strings.Split(rest, ",")
			if len(parts) < 2 {
				fatalf("bad flow spec %q", spec)
			}
			f := remos.Flow{Src: remos.NodeID(parts[0]), Dst: remos.NodeID(parts[1])}
			x := 0.0
			if len(parts) > 2 {
				v, err := strconv.ParseFloat(parts[2], 64)
				if err != nil {
					fatalf("bad number in %q: %v", spec, err)
				}
				x = v
			}
			switch class {
			case "fixed":
				f.Kind = remos.FixedFlow
				f.Bandwidth = x * 1e6
				fixed = append(fixed, f)
			case "var", "variable":
				f.Kind = remos.VariableFlow
				f.Bandwidth = x
				variable = append(variable, f)
			case "indep", "independent":
				f.Kind = remos.IndependentFlow
				independent = append(independent, f)
			default:
				fatalf("unknown flow class %q", class)
			}
		}
		fi, err := mod.QueryFlowInfoCtx(ctx, fixed, variable, independent, tf)
		if err != nil {
			fatal(err)
		}
		for _, r := range fi.All() {
			fmt.Printf("%-11s %s -> %s: %7.2f Mbps  [%.1f %.1f %.1f %.1f %.1f] acc %.2f satisfied=%v\n",
				r.Flow.Kind, r.Flow.Src, r.Flow.Dst, r.Bandwidth.Median/1e6,
				r.Bandwidth.Min/1e6, r.Bandwidth.Q1/1e6, r.Bandwidth.Median/1e6,
				r.Bandwidth.Q3/1e6, r.Bandwidth.Max/1e6, r.Bandwidth.Accuracy, r.Satisfied)
		}
	case "select":
		need(args, 3)
		k, err := strconv.Atoi(args[2])
		if err != nil {
			fatal(err)
		}
		g, err := mod.GetGraphCtx(ctx, nil, tf)
		if err != nil {
			fatal(err)
		}
		var pool []remos.NodeID
		for _, n := range g.Nodes {
			if n.Kind == remos.ComputeNode {
				pool = append(pool, n.ID)
			}
		}
		sel, err := remos.SelectNodes(mod, pool, remos.NodeID(args[1]), k, tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("selected %v (start %s)\n", sel, args[1])
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) != n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: remos-query [-addr HOST:PORT | -collector HOST:PORT ...] {graph [hosts...] | bw SRC DST | latency SRC DST | load HOST | age SRC DST | health | select START K | flows CLASS:SRC,DST[,X]...}")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
