// Command remos-query issues Remos queries against a running
// remos-collector daemon over TCP.
//
// Usage:
//
//	remos-query -addr HOST:PORT graph [m-1 m-2 ...]
//	remos-query -addr HOST:PORT bw SRC DST
//	remos-query -addr HOST:PORT latency SRC DST
//	remos-query -addr HOST:PORT load HOST
//	remos-query -addr HOST:PORT age SRC DST
//	remos-query -addr HOST:PORT health
//	remos-query -addr HOST:PORT select START K
//	remos-query -addr HOST:PORT flows fixed:m-1,m-7,2 var:m-2,m-7,1 indep:m-3,m-8
//	remos-query -addr HOST:PORT -matrix m-1,m-2,m-6 m-7,m-8
//
// With one or more repeatable -collector flags the query plane is
// replicated: queries go to the first healthy replica and fail over
// transparently when it dies:
//
//	remos-query -collector HOST:7070 -collector HOST:7071 graph
//
// The flows command is remos_flow_info from the shell: each argument is
// CLASS:SRC,DST[,X] where X is Mbps for fixed flows and the relative
// weight for variable flows.
//
// The -window flag selects the measurement timeframe in seconds
// (0 = current, negative = physical capacity).
//
// With -watch, the graph, flows and load commands subscribe instead of
// querying once: each materially changed answer is printed as one JSON
// line until the stream ends. Exit status 0 on interrupt or a clean
// server drain, 1 on a transport failure, 3 if the stream had a
// sequence gap not admitted by an Overflowed or Resync mark.
package main

import (
	"context"
	"encoding/json"
	"strings"

	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"

	"repro/internal/collector"
	"repro/remos"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "collector query-service address")
	window := flag.Float64("window", 10, "history window seconds (0=current, <0=capacity)")
	timeout := flag.Duration("timeout", 0, "end-to-end query budget (0 = none); the remaining budget rides to the daemon with every call")
	watch := flag.Bool("watch", false, "subscribe to the query (graph, flows, load) and stream JSON updates until interrupted")
	matrix := flag.Bool("matrix", false, "batched matrix mode: remos-query -matrix SRC1,SRC2[,...] [DST1,DST2[,...]] prints the bandwidth/latency matrix over the node sets in one wire round trip (one comma list = square matrix, none = all hosts)")
	threshold := flag.Float64("threshold", 0, "watch: minimum material change — relative (0..1) for graph/flows, absolute for load — below which updates are suppressed")
	var collectors []string
	flag.Func("collector", "replica collector address (repeatable; takes precedence over -addr)", func(s string) error {
		collectors = append(collectors, s)
		return nil
	})
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 && !*matrix {
		usage()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var src remos.Source
	var err error
	if len(collectors) > 0 {
		src, err = remos.DialCollectors(collectors...)
	} else {
		src, err = remos.DialCollector(*addr)
	}
	if err != nil {
		fatal(err)
	}
	mod := remos.NewModeler(remos.Config{Source: src})

	tf := remos.TFHistory(*window)
	if *window == 0 {
		tf = remos.TFCurrent()
	} else if *window < 0 {
		tf = remos.TFCapacity()
	}

	if *matrix {
		runMatrix(ctx, mod, args, tf)
		return
	}
	if *watch {
		runWatch(ctx, src, mod, args, tf, *threshold)
		return
	}

	switch args[0] {
	case "graph":
		var nodes []remos.NodeID
		for _, a := range args[1:] {
			nodes = append(nodes, remos.NodeID(a))
		}
		g, err := mod.GetGraphCtx(ctx, nodes, tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d nodes, %d logical links (%v)\n", len(g.Nodes), len(g.Links), tf.Kind)
		for _, n := range g.Nodes {
			fmt.Printf("  %-12s %v\n", n.ID, n.Kind)
		}
		for _, l := range g.Links {
			fmt.Printf("  %s -- %s: cap %.0f Mbps, avail %.1f/%.1f Mbps, lat %.2f ms\n",
				l.A, l.B, l.Capacity.Median/1e6,
				l.AvailFrom(l.A).Median/1e6, l.AvailFrom(l.B).Median/1e6,
				l.Latency.Median*1e3)
		}
	case "bw":
		need(args, 3)
		st, err := mod.AvailableBandwidthCtx(ctx, remos.NodeID(args[1]), remos.NodeID(args[2]), tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s -> %s: %.2f Mbps  quartiles [%.1f %.1f %.1f %.1f %.1f] acc %.2f\n",
			args[1], args[2], st.Median/1e6,
			st.Min/1e6, st.Q1/1e6, st.Median/1e6, st.Q3/1e6, st.Max/1e6, st.Accuracy)
	case "latency":
		need(args, 3)
		st, err := mod.PathLatencyCtx(ctx, remos.NodeID(args[1]), remos.NodeID(args[2]))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s -> %s: %.2f ms one-way\n", args[1], args[2], st.Median*1e3)
	case "load":
		need(args, 2)
		st, err := mod.HostLoadCtx(ctx, remos.NodeID(args[1]), tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %.0f%% CPU load\n", args[1], st.Median*100)
	case "age":
		need(args, 3)
		from, to := remos.NodeID(args[1]), remos.NodeID(args[2])
		topo, err := collector.CtxTopology(ctx, src)
		if err != nil {
			fatal(err)
		}
		var key remos.ChannelKey
		found := false
		for _, l := range topo.Graph.Links() {
			if (l.A == from && l.B == to) || (l.A == to && l.B == from) {
				key = topo.Key(l, l.DirFrom(from))
				found = true
				break
			}
		}
		if !found {
			fatalf("no direct link %s--%s", from, to)
		}
		age, err := mod.DataAgeCtx(ctx, key)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s -> %s: data age %.2fs\n", from, to, age)
	case "health":
		h := mod.Health()
		if h == nil {
			fmt.Println("no health information available")
			break
		}
		ids := make([]string, 0, len(h))
		for id := range h {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			ah := h[remos.NodeID(id)]
			fmt.Printf("%-12s %-8s consecutive-failures=%d last-success=%.1fs\n",
				id, ah.State, ah.ConsecutiveFailures, ah.LastSuccess)
		}
	case "flows":
		if len(args) < 2 {
			usage()
		}
		fixed, variable, independent := parseFlowSpecs(args[1:])
		fi, err := mod.QueryFlowInfoCtx(ctx, fixed, variable, independent, tf)
		if err != nil {
			fatal(err)
		}
		for _, r := range fi.All() {
			fmt.Printf("%-11s %s -> %s: %7.2f Mbps  [%.1f %.1f %.1f %.1f %.1f] acc %.2f satisfied=%v\n",
				r.Flow.Kind, r.Flow.Src, r.Flow.Dst, r.Bandwidth.Median/1e6,
				r.Bandwidth.Min/1e6, r.Bandwidth.Q1/1e6, r.Bandwidth.Median/1e6,
				r.Bandwidth.Q3/1e6, r.Bandwidth.Max/1e6, r.Bandwidth.Accuracy, r.Satisfied)
		}
	case "select":
		need(args, 3)
		k, err := strconv.Atoi(args[2])
		if err != nil {
			fatal(err)
		}
		g, err := mod.GetGraphCtx(ctx, nil, tf)
		if err != nil {
			fatal(err)
		}
		var pool []remos.NodeID
		for _, n := range g.Nodes {
			if n.Kind == remos.ComputeNode {
				pool = append(pool, n.ID)
			}
		}
		sel, err := remos.SelectNodes(mod, pool, remos.NodeID(args[1]), k, tf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("selected %v (start %s)\n", sel, args[1])
	default:
		usage()
	}
}

// parseFlowSpecs turns CLASS:SRC,DST[,X] arguments into the three flow
// classes of a remos_flow_info query.
func parseFlowSpecs(specs []string) (fixed, variable, independent []remos.Flow) {
	for _, spec := range specs {
		class, rest, ok := strings.Cut(spec, ":")
		if !ok {
			fatalf("bad flow spec %q (want CLASS:SRC,DST[,X])", spec)
		}
		parts := strings.Split(rest, ",")
		if len(parts) < 2 {
			fatalf("bad flow spec %q", spec)
		}
		f := remos.Flow{Src: remos.NodeID(parts[0]), Dst: remos.NodeID(parts[1])}
		x := 0.0
		if len(parts) > 2 {
			v, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				fatalf("bad number in %q: %v", spec, err)
			}
			x = v
		}
		switch class {
		case "fixed":
			f.Kind = remos.FixedFlow
			f.Bandwidth = x * 1e6
			fixed = append(fixed, f)
		case "var", "variable":
			f.Kind = remos.VariableFlow
			f.Bandwidth = x
			variable = append(variable, f)
		case "indep", "independent":
			f.Kind = remos.IndependentFlow
			independent = append(independent, f)
		default:
			fatalf("unknown flow class %q", class)
		}
	}
	return fixed, variable, independent
}

// watchRecord is one LDJSON line of -watch output. Omitted fields were
// false/empty; numeric bandwidths are Mbps.
type watchRecord struct {
	Kind        string      `json:"kind"`
	Seq         uint64      `json:"seq"`
	Epoch       uint64      `json:"epoch"`
	Overflowed  bool        `json:"overflowed,omitempty"`
	Resync      bool        `json:"resync,omitempty"`
	TopoChanged bool        `json:"topoChanged,omitempty"`
	Final       bool        `json:"final,omitempty"`
	Err         string      `json:"err,omitempty"`
	Nodes       int         `json:"nodes,omitempty"`
	Links       []watchLink `json:"links,omitempty"`
	Flows       []watchFlow `json:"flows,omitempty"`
	Value       *float64    `json:"value,omitempty"`
}

type watchLink struct {
	A         string     `json:"a"`
	B         string     `json:"b"`
	CapMbps   float64    `json:"capMbps"`
	AvailMbps [2]float64 `json:"availMbps"`
	LatencyMs float64    `json:"latencyMs"`
}

type watchFlow struct {
	Class     string  `json:"class"`
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	Mbps      float64 `json:"mbps"`
	Satisfied bool    `json:"satisfied"`
}

// gapTracker flags a delivered-Seq gap the stream did not admit to.
// With threshold 0 every generated update is material, so a gap in the
// delivered sequence without an Overflowed or Resync mark means updates
// were silently lost; with a positive threshold gaps are expected
// (immaterial answers are gated out) and never flagged.
type gapTracker struct {
	threshold float64
	last      uint64
	seen      bool
	gapped    bool
}

func (g *gapTracker) observe(seq uint64, overflowed, resync, final bool) {
	if final || seq == 0 {
		return // Final updates carry Seq 0
	}
	if resync {
		// New replica, new sequence space: restart the tracker.
		g.last, g.seen = seq, true
		return
	}
	if g.seen && g.threshold == 0 && seq != g.last+1 && !overflowed {
		g.gapped = true
	}
	g.last, g.seen = seq, true
}

// exit code after the stream closed: 0 clean, 1 transport error,
// 3 unadmitted sequence gap.
func (g *gapTracker) exit(streamErr error) {
	if streamErr != nil {
		fmt.Fprintln(os.Stderr, streamErr)
		os.Exit(1)
	}
	if g.gapped {
		fmt.Fprintln(os.Stderr, "remos-query: watch stream had a sequence gap without an overflow or resync mark")
		os.Exit(3)
	}
	os.Exit(0)
}

// runWatch implements -watch: subscribe to the command's query and
// stream one JSON line per delivered update until the server drains the
// subscription, the stream fails, or the user interrupts.
func runWatch(ctx context.Context, src remos.Source, mod *remos.Modeler, args []string, tf remos.Timeframe, threshold float64) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel() // clean cancel: channels close with Err() == nil
	}()

	enc := json.NewEncoder(os.Stdout)
	gaps := &gapTracker{threshold: threshold}

	switch args[0] {
	case "graph":
		var nodes []remos.NodeID
		for _, a := range args[1:] {
			nodes = append(nodes, remos.NodeID(a))
		}
		w, err := mod.WatchGraph(ctx, nodes, tf, remos.WatchOptions{Threshold: threshold})
		if err != nil {
			fatal(err)
		}
		for u := range w.C {
			rec := watchRecord{Kind: "graph", Seq: u.Seq, Epoch: u.Epoch,
				Overflowed: u.Overflowed, Resync: u.Resync,
				TopoChanged: u.TopoChanged, Final: u.Final}
			if u.Err != nil {
				rec.Err = u.Err.Error()
			}
			if u.Graph != nil {
				rec.Nodes = len(u.Graph.Nodes)
				for _, l := range u.Graph.Links {
					rec.Links = append(rec.Links, watchLink{
						A: string(l.A), B: string(l.B),
						CapMbps:   l.Capacity.Median / 1e6,
						AvailMbps: [2]float64{l.Avail[0].Median / 1e6, l.Avail[1].Median / 1e6},
						LatencyMs: l.Latency.Median * 1e3,
					})
				}
			}
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
			gaps.observe(u.Seq, u.Overflowed, u.Resync, u.Final)
		}
		gaps.exit(w.Err())
	case "flows":
		if len(args) < 2 {
			usage()
		}
		fixed, variable, independent := parseFlowSpecs(args[1:])
		w, err := mod.WatchFlowInfo(ctx, fixed, variable, independent, tf, remos.WatchOptions{Threshold: threshold})
		if err != nil {
			fatal(err)
		}
		for u := range w.C {
			rec := watchRecord{Kind: "flows", Seq: u.Seq, Epoch: u.Epoch,
				Overflowed: u.Overflowed, Resync: u.Resync, Final: u.Final}
			if u.Err != nil {
				rec.Err = u.Err.Error()
			}
			if u.Info != nil {
				for _, r := range u.Info.All() {
					rec.Flows = append(rec.Flows, watchFlow{
						Class: r.Flow.Kind.String(), Src: string(r.Flow.Src), Dst: string(r.Flow.Dst),
						Mbps: r.Bandwidth.Median / 1e6, Satisfied: r.Satisfied,
					})
				}
			}
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
			gaps.observe(u.Seq, u.Overflowed, u.Resync, u.Final)
		}
		gaps.exit(w.Err())
	case "load":
		need(args, 2)
		ws, ok := src.(remos.WatchSource)
		if !ok {
			fatalf("source %T does not support watch subscriptions", src)
		}
		h, err := ws.Watch(ctx, remos.WatchRequest{
			Kind: remos.WatchLoad, Node: args[1], Span: tf.Span, Threshold: threshold,
		})
		if err != nil {
			fatal(err)
		}
		for u := range h.C {
			rec := watchRecord{Kind: "load", Seq: u.Seq, Epoch: u.Epoch,
				Overflowed: u.Overflowed, Resync: u.Resync, Final: u.Final, Err: u.Err}
			if u.Err == "" && !u.Final {
				v := u.Stat.Median
				rec.Value = &v
			}
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
			gaps.observe(u.Seq, u.Overflowed, u.Resync, u.Final)
		}
		gaps.exit(h.Err())
	default:
		fmt.Fprintln(os.Stderr, "remos-query: -watch supports the graph, flows and load commands")
		os.Exit(2)
	}
}

// runMatrix implements -matrix: one batched N×M flow-matrix query in a
// single wire round trip, printed as bandwidth and latency tables.
// Entries the daemon could not answer (agent down, unreachable pair)
// print as "-".
func runMatrix(ctx context.Context, mod *remos.Modeler, args []string, tf remos.Timeframe) {
	parse := func(s string) []remos.NodeID {
		var ids []remos.NodeID
		for _, part := range strings.Split(s, ",") {
			if part = strings.TrimSpace(part); part != "" {
				ids = append(ids, remos.NodeID(part))
			}
		}
		return ids
	}
	var srcs, dsts []remos.NodeID
	switch len(args) {
	case 0:
		g, err := mod.GetGraphCtx(ctx, nil, tf)
		if err != nil {
			fatal(err)
		}
		for _, n := range g.Nodes {
			if n.Kind == remos.ComputeNode {
				srcs = append(srcs, n.ID)
			}
		}
		dsts = srcs
	case 1:
		srcs = parse(args[0])
		dsts = srcs
	case 2:
		srcs, dsts = parse(args[0]), parse(args[1])
	default:
		fmt.Fprintln(os.Stderr, "usage: remos-query -matrix [SRCS] [DSTS] (comma-separated node lists)")
		os.Exit(2)
	}
	mi, err := mod.QueryMatrixCtx(ctx, srcs, dsts, tf)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("matrix %dx%d (%v, epoch %d, term %d)\n", len(srcs), len(dsts), tf.Kind, mi.Epoch, mi.Term)
	printTable := func(title, unit string, scale float64, vals [][]float64) {
		fmt.Printf("%s (%s):\n", title, unit)
		fmt.Printf("%14s", "")
		for _, d := range dsts {
			fmt.Printf(" %12s", d)
		}
		fmt.Println()
		for i, s := range srcs {
			fmt.Printf("%14s", s)
			for j := range dsts {
				if !mi.Valid[i][j] {
					fmt.Printf(" %12s", "-")
					continue
				}
				fmt.Printf(" %12.2f", vals[i][j]*scale)
			}
			fmt.Println()
		}
	}
	printTable("bandwidth", "Mbps", 1e-6, mi.Bandwidth)
	printTable("latency", "ms", 1e3, mi.Latency)
}

func need(args []string, n int) {
	if len(args) != n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: remos-query [-addr HOST:PORT | -collector HOST:PORT ...] {graph [hosts...] | bw SRC DST | latency SRC DST | load HOST | age SRC DST | health | select START K | flows CLASS:SRC,DST[,X]... | -matrix [SRCS [DSTS]]}")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
