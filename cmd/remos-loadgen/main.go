// Command remos-loadgen drives a Remos query plane at high load and
// reports the latency distribution it answered with. It issues a mixed
// workload of point utilization queries and batched flow-matrix queries
// against one or more collector/replica endpoints, in closed loop
// (measure capacity) or open loop (measure latency at a fixed offered
// rate), and can gate CI on the result.
//
// Usage:
//
//	remos-loadgen -collector HOST:7070 -collector HOST:7071 \
//	    -workers 64 -duration 10s -matrix-frac 0.02
//	remos-loadgen -collector HOST:7070 -rate 50000 -duration 10s
//	remos-loadgen -selftest 2 -duration 5s -max-p999 250 -min-rate 100000
//
// With -selftest N the generator spins up an in-process simulated
// testbed, serves it on N real TCP replica endpoints, and drives those —
// a self-contained smoke of the full wire path. Exit status is 1 when
// the run saw protocol errors, missed -min-rate, or blew -max-p999.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/loadgen"
	"repro/remos"
)

func main() {
	var collectors []string
	flag.Func("collector", "collector/replica query address (repeatable)", func(s string) error {
		collectors = append(collectors, s)
		return nil
	})
	selftest := flag.Int("selftest", 0, "serve an in-process simulated testbed on N TCP replicas and drive those instead of -collector endpoints")
	workers := flag.Int("workers", 64, "closed-loop concurrency / open-loop in-flight bound")
	conns := flag.Int("conns", 8, "independent failover handles the workers are spread across (shuffled preference spreads load over replicas)")
	rate := flag.Float64("rate", 0, "open-loop offered load in queries/second (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	matrixFrac := flag.Float64("matrix-frac", 0.01, "fraction of ops issued as batched matrix queries")
	matrixSize := flag.Int("matrix-size", 8, "N of the NxN node set per matrix op")
	span := flag.Float64("span", 10, "measurement window point queries ask over (virtual seconds)")
	seed := flag.Int64("seed", 1, "workload seed")
	maxP999 := flag.Float64("max-p999", 0, "gate: fail when point-query p999 exceeds this (ms, 0 disables)")
	minRate := flag.Float64("min-rate", 0, "gate: fail when completed throughput is below this (q/s, 0 disables)")
	jsonOut := flag.Bool("json", false, "print the result as one JSON object instead of prose")
	flag.Parse()

	if *selftest > 0 {
		tb, err := remos.NewTestbed()
		if err != nil {
			fatal(err)
		}
		tb.Run(30) // collect a real measurement history to query against
		reps, err := tb.ServeReplicas(*selftest)
		if err != nil {
			fatal(err)
		}
		for _, r := range reps {
			collectors = append(collectors, r.Addr())
			defer r.Close()
		}
		fmt.Fprintf(os.Stderr, "selftest: %d replicas over the simulated testbed\n", *selftest)
	}
	if len(collectors) == 0 {
		fatal(fmt.Errorf("remos-loadgen: no endpoints (use -collector or -selftest)"))
	}

	// Each handle shuffles its replica preference independently, so
	// spreading worker groups across handles spreads load across the
	// replica set while every handle still fails over on its own.
	n := *conns
	if n <= 0 {
		n = 1
	}
	if n > *workers {
		n = *workers
	}
	targets := make([]loadgen.Target, n)
	for i := range targets {
		src, err := remos.DialCollectors(collectors...)
		if err != nil {
			fatal(err)
		}
		defer src.Close()
		targets[i] = src
	}

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Targets:    targets,
		Workers:    *workers,
		Rate:       *rate,
		Duration:   *duration,
		MatrixFrac: *matrixFrac,
		MatrixSize: *matrixSize,
		Span:       *span,
		Seed:       *seed,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println(res)
	}

	failed := false
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d protocol errors\n", res.Errors)
		failed = true
	}
	if *minRate > 0 && res.Throughput < *minRate {
		fmt.Fprintf(os.Stderr, "FAIL: throughput %.0f q/s below gate %.0f\n", res.Throughput, *minRate)
		failed = true
	}
	if *maxP999 > 0 && (math.IsNaN(res.QueryP999) || res.QueryP999 > *maxP999) {
		fmt.Fprintf(os.Stderr, "FAIL: query p999 %.3f ms above gate %.3f\n", res.QueryP999, *maxP999)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
