// Quickstart: bring up the simulated testbed, generate some competing
// traffic, and ask Remos the two core questions — what does the network
// look like (remos_get_graph) and what would my flows get
// (remos_flow_info).
package main

import (
	"fmt"

	"repro/remos"
)

func main() {
	tb, err := remos.NewTestbed()
	if err != nil {
		panic(err)
	}

	// Competing traffic: a non-responsive 60 Mbps stream m-6 -> m-8.
	tb.StartBlast("m-6", "m-8", 60e6)

	// Let the collector observe for 30 virtual seconds.
	tb.Run(30)

	// Topology query: the logical network connecting three hosts.
	g, err := tb.Modeler.GetGraph([]remos.NodeID{"m-4", "m-5", "m-7"}, remos.TFHistory(20))
	if err != nil {
		panic(err)
	}
	fmt.Println("Logical topology for {m-4, m-5, m-7}:")
	for _, n := range g.Nodes {
		fmt.Printf("  node %-12s %v\n", n.ID, n.Kind)
	}
	for _, l := range g.Links {
		fmt.Printf("  link %s -- %s: capacity %s Mbps, latency %.2f ms\n",
			l.A, l.B, fmtM(l.Capacity.Median), l.Latency.Median*1e3)
		fmt.Printf("       avail %s->%s: %5.1f Mbps   %s->%s: %5.1f Mbps\n",
			l.A, l.B, l.AvailFrom(l.A).Median/1e6, l.B, l.A, l.AvailFrom(l.B).Median/1e6)
	}

	// Flow query: one fixed audio flow, two proportional video flows,
	// and a bulk transfer, all at once. Remos accounts for the sharing
	// between them (§4.2).
	fi, err := tb.Modeler.QueryFlowInfo(
		[]remos.Flow{{Src: "m-4", Dst: "m-7", Kind: remos.FixedFlow, Bandwidth: 1e6}},
		[]remos.Flow{
			{Src: "m-4", Dst: "m-7", Kind: remos.VariableFlow, Bandwidth: 1},
			{Src: "m-5", Dst: "m-7", Kind: remos.VariableFlow, Bandwidth: 2},
		},
		[]remos.Flow{{Src: "m-5", Dst: "m-4", Kind: remos.IndependentFlow}},
		remos.TFHistory(20),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nFlow query (with 60 Mbps cross traffic on timberline->whiteface):")
	for _, r := range fi.All() {
		fmt.Printf("  %-11s %s -> %s: %7.2f Mbps  (quartiles %s, accuracy %.2f, satisfied=%v)\n",
			r.Flow.Kind, r.Flow.Src, r.Flow.Dst,
			r.Bandwidth.Median/1e6, fmtQuart(r.Bandwidth), r.Bandwidth.Accuracy, r.Satisfied)
	}
}

func fmtM(v float64) string { return fmt.Sprintf("%.0f", v/1e6) }

func fmtQuart(s remos.Stat) string {
	return fmt.Sprintf("[%.1f %.1f %.1f %.1f %.1f]",
		s.Min/1e6, s.Q1/1e6, s.Median/1e6, s.Q3/1e6, s.Max/1e6)
}
