// Nodeselect reproduces the paper's Figure 4 scenario through the public
// API: interfering traffic runs between m-6 and m-8; a parallel job that
// must start at m-4 asks Remos for the best 4 hosts; the selection
// avoids every busy link. The job then runs on both the selected and a
// naive node set to show the difference.
package main

import (
	"fmt"

	"repro/remos"
)

func main() {
	tb, err := remos.NewTestbed()
	if err != nil {
		panic(err)
	}

	// The §8.2 interfering load.
	tb.StartBlast("m-6", "m-8", 90e6)
	tb.StartBlast("m-8", "m-6", 90e6)
	tb.Run(20)

	// Remos-driven node selection (greedy clustering, §7.2).
	selected, err := remos.SelectNodes(tb.Modeler, remos.TestbedHosts(), "m-4", 4, remos.TFHistory(15))
	if err != nil {
		panic(err)
	}
	fmt.Printf("Traffic:  m-6 <-> m-8 at 90 Mbps\n")
	fmt.Printf("Selected: %v (start m-4)\n\n", selected)

	// Run a 512×512 2-D FFT on the selected set and on the set a
	// traffic-oblivious selection would pick.
	naive := []remos.NodeID{"m-4", "m-5", "m-6", "m-7"}
	run := func(nodes []remos.NodeID) float64 {
		rt := tb.NewRuntime()
		rep := rt.RunToCompletion(remos.FFTProgram(512, 1), nodes)
		return rep.Elapsed()
	}
	tSel := run(selected)
	tNaive := run(naive)
	fmt.Printf("FFT(512) on Remos-selected %v: %.3f s\n", selected, tSel)
	fmt.Printf("FFT(512) on naive set      %v: %.3f s  (+%.0f%%)\n",
		naive, tNaive, 100*(tNaive-tSel)/tSel)
}
