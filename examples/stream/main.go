// Stream demonstrates the paper's §2 "application quality metrics" usage
// model: an application that must meet a quality target (here: a video
// stream that should never stall) adjusts itself as the network changes.
//
// A server on m-1 streams to a viewer on m-8. Every 10 virtual seconds
// it asks Remos for the predicted availability of the path over the next
// interval (a Future timeframe) and picks the highest bitrate tier that
// fits inside 80% of the prediction. Competing traffic comes and goes;
// the tier follows.
package main

import (
	"fmt"

	"repro/remos"
)

// tiers are the stream's available encodings, in bits/second.
var tiers = []float64{1.5e6, 4e6, 8e6, 20e6, 40e6}

func pickTier(avail float64) float64 {
	best := tiers[0]
	for _, t := range tiers {
		if t <= 0.8*avail {
			best = t
		}
	}
	return best
}

func main() {
	tb, err := remos.NewTestbed()
	if err != nil {
		panic(err)
	}
	tb.Run(15) // measurement baseline

	// Background load schedule: heavy traffic in [60,120) and a milder
	// load in [180,240).
	var gen remos.TrafficGenerator
	tb.After(60, "load-on", func(now float64) {
		gen = tb.StartBlast("m-4", "m-7", 85e6)
		fmt.Printf("t=%4.0fs  [network] 85 Mbps of competing traffic appears\n", now)
	})
	tb.After(120, "load-off", func(now float64) {
		gen.Stop()
		fmt.Printf("t=%4.0fs  [network] competing traffic stops\n", now)
	})
	tb.After(180, "load2-on", func(now float64) {
		gen = tb.StartBlast("m-4", "m-7", 60e6)
		fmt.Printf("t=%4.0fs  [network] 60 Mbps of competing traffic appears\n", now)
	})
	tb.After(240, "load2-off", func(now float64) {
		gen.Stop()
		fmt.Printf("t=%4.0fs  [network] competing traffic stops\n", now)
	})

	// The stream itself: a rate-capped flow whose cap is the tier.
	//
	// Crucially, the stream registers its own flow with the Modeler and
	// enables self-traffic discounting — otherwise the availability it
	// measures includes its own bits and the tier oscillates (the §8.3
	// fallacy, reproduced in cmd/remos-experiments -ablation).
	mod := remos.NewModeler(remos.Config{Source: tb.Collector, DiscountSelf: true})
	var stream remos.TrafficGenerator
	current := 0.0
	switches := 0
	adapt := func(now float64) {
		st, err := mod.AvailableBandwidth("m-1", "m-8", remos.TFFuture(10))
		if err != nil {
			panic(err)
		}
		tier := pickTier(st.Median)
		if tier != current {
			if stream != nil {
				stream.Stop()
			}
			stream = tb.StartCBR("m-1", "m-8", tier)
			mod.ClearSelfFlows()
			mod.RegisterSelfFlow("m-1", "m-8", tier)
			fmt.Printf("t=%4.0fs  [stream]  predicted %.1f Mbps available -> tier %.1f Mbps\n",
				now, st.Median/1e6, tier/1e6)
			current = tier
			switches++
		}
	}
	adapt(tb.Now())
	for i := 1; i <= 28; i++ {
		tb.After(float64(i)*10, "adapt", adapt)
	}
	tb.Run(290)
	fmt.Printf("\nfinal tier: %.1f Mbps (%d switches)\n", current/1e6, switches)
}
