// Flows demonstrates the three flow classes of §4.2 on a single
// bottleneck, including the paper's worked example: variable flows with
// relative requirements 3 : 4.5 : 9 sharing 5.5 Mbps receive 1, 1.5 and
// 3 Mbps.
package main

import (
	"fmt"

	"repro/internal/topology"
	"repro/remos"
)

func main() {
	// A dumbbell whose core link has exactly 5.5 Mbps.
	tb, err := remos.NewTestbedOn(topology.Dumbbell(4, 100, 5.5))
	if err != nil {
		panic(err)
	}
	tb.Run(5)

	fmt.Println("Paper §4.2 example: variable flows 3 : 4.5 : 9 on a 5.5 Mbps bottleneck")
	fi, err := tb.Modeler.QueryFlowInfo(nil,
		[]remos.Flow{
			{Src: "l0", Dst: "r0", Kind: remos.VariableFlow, Bandwidth: 3e6},
			{Src: "l1", Dst: "r1", Kind: remos.VariableFlow, Bandwidth: 4.5e6},
			{Src: "l2", Dst: "r2", Kind: remos.VariableFlow, Bandwidth: 9e6},
		}, nil, remos.TFCapacity())
	if err != nil {
		panic(err)
	}
	for _, r := range fi.Variable {
		fmt.Printf("  variable flow wanting %3.1f Mbps relative -> gets %4.2f Mbps\n",
			r.Flow.Bandwidth/1e6, r.Bandwidth.Median/1e6)
	}

	fmt.Println("\nAll three classes at once (audio + video tiers + bulk):")
	fi, err = tb.Modeler.QueryFlowInfo(
		[]remos.Flow{{Src: "l0", Dst: "r0", Kind: remos.FixedFlow, Bandwidth: 0.5e6}},
		[]remos.Flow{
			{Src: "l1", Dst: "r1", Kind: remos.VariableFlow, Bandwidth: 1},
			{Src: "l2", Dst: "r2", Kind: remos.VariableFlow, Bandwidth: 3},
		},
		[]remos.Flow{{Src: "l3", Dst: "r3", Kind: remos.IndependentFlow}},
		remos.TFCapacity())
	if err != nil {
		panic(err)
	}
	for _, r := range fi.All() {
		fmt.Printf("  %-11s %s -> %s: %5.2f Mbps (satisfied=%v)\n",
			r.Flow.Kind, r.Flow.Src, r.Flow.Dst, r.Bandwidth.Median/1e6, r.Satisfied)
	}

	// What changes once real traffic occupies the bottleneck?
	tb.StartBlast("l3", "r3", 3e6)
	tb.Run(20)
	fmt.Println("\nSame query against measured history with a 3 Mbps blast running:")
	fi, err = tb.Modeler.QueryFlowInfo(
		[]remos.Flow{{Src: "l0", Dst: "r0", Kind: remos.FixedFlow, Bandwidth: 0.5e6}},
		[]remos.Flow{
			{Src: "l1", Dst: "r1", Kind: remos.VariableFlow, Bandwidth: 1},
			{Src: "l2", Dst: "r2", Kind: remos.VariableFlow, Bandwidth: 3},
		},
		[]remos.Flow{{Src: "l0", Dst: "r1", Kind: remos.IndependentFlow}},
		remos.TFHistory(15))
	if err != nil {
		panic(err)
	}
	for _, r := range fi.All() {
		fmt.Printf("  %-11s %s -> %s: %5.2f Mbps (accuracy %.2f)\n",
			r.Flow.Kind, r.Flow.Src, r.Flow.Dst, r.Bandwidth.Median/1e6, r.Bandwidth.Accuracy)
	}
}
