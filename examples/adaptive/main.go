// Adaptive reproduces the §8.3 runtime-adaptation scenario through the
// public API: an iterative Airshed-like computation starts on the
// timberline/whiteface hosts; midway through, heavy traffic appears on
// its links; the Remos adaptation module notices and migrates the
// program to the quiet side of the testbed.
package main

import (
	"fmt"

	"repro/remos"
)

func main() {
	tb, err := remos.NewTestbed()
	if err != nil {
		panic(err)
	}
	tb.Run(10) // collector baseline

	// Traffic appears 120 virtual seconds into the run.
	tb.After(120, "start-traffic", func(now float64) {
		tb.StartBlast("m-6", "m-8", 90e6)
		tb.StartBlast("m-8", "m-6", 90e6)
		fmt.Printf("t=%6.0fs  interfering traffic m-6 <-> m-8 started\n", now)
	})

	rt := tb.NewRuntime()
	rt.MigrationCost = 8
	rt.Adapter = &remos.RemosAdapter{
		Modeler:      tb.Modeler,
		Pool:         remos.TestbedHosts(),
		Start:        "m-4",
		Metric:       remos.TestbedClusterMetric(),
		Timeframe:    remos.TFHistory(10),
		DecisionCost: 2.5,
	}

	start := []remos.NodeID{"m-4", "m-5", "m-6", "m-7", "m-8"}
	rep := rt.RunToCompletion(remos.AirshedProgram(), start)

	fmt.Printf("\nAirshed finished in %.0f virtual seconds\n", rep.Elapsed())
	fmt.Printf("Initial nodes: %v\n", start)
	fmt.Printf("Final nodes:   %v\n", rep.Nodes)
	fmt.Printf("Migrations:    %d (adaptation overhead %.0f s)\n", len(rep.Migrations), rep.AdaptSeconds)
	for _, m := range rep.Migrations {
		fmt.Printf("  t=%6.0fs  iteration %2d: %v -> %v\n", float64(m.At), m.Iteration, m.From, m.To)
	}
}
