// Broadcast demonstrates the paper's §2 "optimization of communication"
// usage model: using Remos topology information to customize a group
// communication operation for the network at hand.
//
// Eight hosts span two sites joined by a slow wide-area path. A naive
// broadcast pushes one copy of the payload across the WAN per remote
// receiver; the Remos-driven schedule discovers the structure from
// bandwidth measurements and crosses the WAN exactly once.
package main

import (
	"fmt"

	"repro/internal/topology"
	"repro/remos"
)

func main() {
	// Two sites of 4 hosts, 6 backbone hops at 10 Mbps, 100 Mbps LANs.
	build := func() (*remos.Testbed, []remos.NodeID) {
		tb, err := remos.NewTestbedOn(topology.WideArea(4, 6, 100, 10))
		if err != nil {
			panic(err)
		}
		tb.Run(10)
		return tb, []remos.NodeID{"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}
	}

	const payload = 12.5e6 // 12.5 MB = 100 Mbit

	tb, parts := build()
	flat, err := remos.FlatBroadcast("a0", parts, payload)
	if err != nil {
		panic(err)
	}
	flatTime := tb.MeasureSchedule(flat)

	tb, parts = build()
	binom, err := remos.BinomialBroadcast("a0", parts, payload)
	if err != nil {
		panic(err)
	}
	binomTime := tb.MeasureSchedule(binom)

	tb, parts = build()
	aware, err := remos.TopologyAwareBroadcast(tb.Modeler, "a0", parts, payload, remos.TFCapacity())
	if err != nil {
		panic(err)
	}
	awareTime := tb.MeasureSchedule(aware)

	fmt.Printf("Broadcast of %.1f MB from a0 to 7 receivers across a 10 Mbps WAN:\n\n", payload/1e6)
	fmt.Printf("  %-16s %2d rounds  %7.2f s\n", "flat", len(flat.Rounds), flatTime)
	fmt.Printf("  %-16s %2d rounds  %7.2f s\n", "binomial", len(binom.Rounds), binomTime)
	fmt.Printf("  %-16s %2d rounds  %7.2f s\n", "topology-aware", len(aware.Rounds), awareTime)
	fmt.Printf("\n  topology-aware wins %.1fx over flat, %.1fx over binomial\n",
		flatTime/awareTime, binomTime/awareTime)
	fmt.Println("\n  The Remos-built tree crosses the WAN exactly once:")
	for i, r := range aware.Rounds {
		fmt.Printf("    round %d:", i+1)
		for _, f := range r {
			fmt.Printf("  %s->%s", f.Src, f.Dst)
		}
		fmt.Println()
	}
}
