// Shipping demonstrates the paper's §2 "function and data shipping"
// usage model: "a tradeoff is possible between performing a computation
// locally and performing the computation remotely, and such tradeoffs
// depend on the availability of network and compute capacity".
//
// A client on m-1 holds a data set and must run a simulation over it.
// A compute server on m-7 is 8x faster, but using it means shipping the
// data across the network. The decision is made from Remos queries:
//
//	local:  T = work / localPower
//	remote: T = bytes×8 / available(m-1→m-7) + work / remotePower
//
// The example evaluates the decision twice — on a quiet network and with
// heavy traffic on the path — and verifies it by actually running both
// options in the simulator.
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/topofile"
	"repro/remos"
)

const topologyText = `
host client power=1
host server power=8
host other  power=1
router r1
router r2
link client r1 100Mbps 0.5ms
link other  r1 100Mbps 0.5ms
link r1 r2 100Mbps 0.5ms
link server r2 100Mbps 0.5ms
`

const (
	dataBytes = 400e6 // 400 MB input
	work      = 60.0  // work units: 60 s locally, 7.5 s on the server
)

func main() {
	g, err := topofile.ParseString(topologyText)
	if err != nil {
		panic(err)
	}
	tb, err := remos.NewTestbedOn(g)
	if err != nil {
		panic(err)
	}
	tb.Run(15)

	decide := func(label string) {
		bw, err := tb.Modeler.AvailableBandwidth("client", "server", remos.TFHistory(10))
		if err != nil {
			panic(err)
		}
		localT := work / 1.0
		shipT := dataBytes * 8 / bw.Median
		remoteT := shipT + work/8.0
		choice := "compute locally"
		if remoteT < localT {
			choice = "ship to the server"
		}
		fmt.Printf("%s\n", label)
		fmt.Printf("  available client->server: %6.1f Mbps\n", bw.Median/1e6)
		fmt.Printf("  local estimate:  %6.1f s\n", localT)
		fmt.Printf("  remote estimate: %6.1f s  (%.1f s shipping + %.1f s compute)\n",
			remoteT, shipT, work/8.0)
		fmt.Printf("  decision: %s\n\n", choice)
	}

	decide("Quiet network:")

	// Heavy traffic appears on the backbone.
	tb.StartBlast("other", "server", 95e6)
	tb.Run(15)
	decide("With 95 Mbps of competing traffic on the path:")

	// Verify the quiet-network decision by actually doing the transfer.
	fmt.Println("Verification (quiet network, after traffic stops):")
	// Stop traffic by rebuilding a clean testbed for a clean measurement.
	tb2, err := remos.NewTestbedOn(mustParse())
	if err != nil {
		panic(err)
	}
	tb2.Run(15)
	start := tb2.Now()
	done := false
	tb2.Network.StartFlow(remos.FlowSpec{
		Src: "client", Dst: "server", Bytes: dataBytes, Owner: "app",
		OnComplete: func(now simclock.Time, f *netsim.Flow) { done = true },
	})
	for !done {
		tb2.Run(1)
	}
	shipTook := tb2.Now() - start
	fmt.Printf("  actual shipping time: %.1f s; remote total %.1f s vs local %.1f s\n",
		shipTook, shipTook+work/8, work)
}

func mustParse() *graph.Graph {
	g, err := topofile.ParseString(topologyText)
	if err != nil {
		panic(err)
	}
	return g
}
