// Telemetry is sold as cheap enough to leave on: this file holds the
// gate. The test compares the same query on the same environment with
// telemetry enabled and disabled (min-of-N interleaved trials, so a
// one-off scheduler stall cannot decide the verdict) and fails if the
// instrumented path costs more than 5% extra. The benchmark pair feeds
// scripts/bench.sh so BENCH_remos.json records both sides.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

const overheadReps = 40 // queries per trial

func measureGetGraph(t testing.TB, m *core.Modeler) time.Duration {
	start := time.Now()
	for i := 0; i < overheadReps; i++ {
		if _, err := m.GetGraph(nil, core.TFHistory(10)); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

func TestTelemetryOverheadWithinFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	e := experiments.NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 60e6)
	e.Warmup()

	plain := core.New(core.Config{Source: e.Col})
	instr := core.New(core.Config{Source: e.Col, Telemetry: telemetry.NewRegistry()})

	ratio := func(trials int) (float64, time.Duration, time.Duration) {
		// Warm both paths (topology cache, allocator) before timing.
		measureGetGraph(t, plain)
		measureGetGraph(t, instr)
		minPlain, minInstr := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < trials; i++ {
			if d := measureGetGraph(t, plain); d < minPlain {
				minPlain = d
			}
			if d := measureGetGraph(t, instr); d < minInstr {
				minInstr = d
			}
		}
		return float64(minInstr) / float64(minPlain), minPlain, minInstr
	}

	r, p, i := ratio(5)
	if r > 1.05 {
		// Escalate before declaring a regression: more trials shrink the
		// noise floor of the min estimator.
		r, p, i = ratio(15)
	}
	t.Logf("telemetry overhead: plain %v, instrumented %v for %d queries (ratio %.4f)",
		p, i, overheadReps, r)
	if r > 1.05 {
		perOp := (i - p) / overheadReps
		if perOp < 20*time.Microsecond {
			// The absolute delta is below what a loaded CI machine can
			// resolve; the micro-benchmarks in internal/telemetry bound
			// the per-event cost directly.
			t.Skipf("ratio %.4f over budget but delta %v/op is noise-level", r, perOp)
		}
		t.Errorf("instrumented query path %.1f%% slower than uninstrumented (budget 5%%): %v vs %v",
			(r-1)*100, i, p)
	}
}

// BenchmarkModelerGetGraphInstrumented is BenchmarkModelerGetGraph with
// a live telemetry registry — diffing the two in BENCH_remos.json shows
// the observability tax on the paper's central query.
func BenchmarkModelerGetGraphInstrumented(b *testing.B) {
	e := experiments.NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 60e6)
	e.Warmup()
	mod := core.New(core.Config{Source: e.Col, Telemetry: telemetry.NewRegistry()})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mod.GetGraph(nil, core.TFHistory(10)); err != nil {
			b.Fatal(err)
		}
	}
}
