#!/bin/sh
# Full verification gate: build, vet, tests, race detector.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test -timeout 120s ./...

echo "==> go test -count=2 ./internal/collector"
go test -timeout 120s -count=2 ./internal/collector

echo "==> go test -race ./..."
go test -race -timeout 120s ./...

echo "verify: OK"
