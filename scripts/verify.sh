#!/bin/sh
# Full verification gate: build, vet, tests, race detector.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test -timeout 120s ./...

echo "==> go test -count=2 ./internal/collector"
go test -timeout 120s -count=2 ./internal/collector

echo "==> go test -race ./..."
go test -race -timeout 120s ./...

echo "==> chaos suite under -race (seeded; replay failures with -chaos.seed)"
go test -race -timeout 300s -count=1 -run TestChaosLifecycle ./remos -chaos.seed=1 -chaos.events=60

echo "==> fuzz smoke (10s per target)"
go test -fuzz=FuzzDecode -fuzztime=10s -run '^$' ./internal/snmp
go test -fuzz=FuzzReadFrame -fuzztime=10s -run '^$' ./internal/collector

echo "verify: OK"
