#!/bin/sh
# Full verification gate: build, vet, tests, race detector.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt check"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:"
    echo "$fmt"
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test -timeout 120s ./...

echo "==> go test -count=2 ./internal/collector"
go test -timeout 120s -count=2 ./internal/collector

echo "==> go test -race ./..."
go test -race -timeout 120s ./...

echo "==> go test -race -count=2 ./internal/telemetry (concurrent writers vs snapshot readers)"
go test -race -timeout 120s -count=2 ./internal/telemetry

echo "==> chaos suite under -race (seeded; replay failures with -chaos.seed)"
go test -race -timeout 300s -count=1 -run TestChaosLifecycle ./remos -chaos.seed=1 -chaos.events=60

echo "==> replication chaos under -race (feed blackhole, fence, resync)"
go test -race -timeout 300s -count=1 -run 'TestChaosReplicaPartition|TestReplicaFailoverEndToEnd' ./remos -chaos.seed=1

echo "==> ha stage: lease/promotion determinism + leader-failover chaos under -race"
go test -race -timeout 120s -count=1 ./internal/ha
go test -race -timeout 300s -count=1 -run TestChaosLeaderFailover ./remos -chaos.seed=1

echo "==> federation stage: generators + 3-region federation (summaries, fencing, dark region, watch peers) under -race"
go test -race -timeout 300s -count=1 ./internal/topogen ./internal/federation
go test -race -timeout 300s -count=1 -run 'TestFederationThousandNodeAcceptance|TestScaleStudy' ./internal/experiments

echo "==> matrix stage: wire op + admission + fencing under -race, kernel equivalence"
go test -race -timeout 300s -count=1 -run 'TestMatrix' ./remos ./internal/core

echo "==> loadgen smoke: 2 replicas, mixed workload, latency + error gates"
go run ./cmd/remos-loadgen -selftest 2 -workers 8 -conns 4 -duration 3s \
    -matrix-frac 0.5 -matrix-size 8 -max-p999 250

echo "==> fuzz smoke (10s per target)"
go test -fuzz=FuzzDecode -fuzztime=10s -run '^$' ./internal/snmp
go test -fuzz='^FuzzReadFrame$' -fuzztime=10s -run '^$' ./internal/collector
go test -fuzz=FuzzReadMuxFrame -fuzztime=10s -run '^$' ./internal/collector
go test -fuzz=FuzzDecodeMatrixRequest -fuzztime=10s -run '^$' ./internal/collector
go test -fuzz=FuzzDecodeDelta -fuzztime=10s -run '^$' ./internal/replica

echo "verify: OK"
