#!/bin/sh
# Benchmark runner: executes the paper-evaluation benchmarks (root
# package) and the telemetry micro-benchmarks, then writes the results
# as machine-readable JSON (default BENCH_remos.json) for CI artifacts
# and cross-commit diffing. No dependencies beyond the go toolchain and
# POSIX awk.
#
#   scripts/bench.sh [output.json]
#
# ROOT_BENCHTIME (default 1x: each table/figure is a full experiment per
# iteration) and MICRO_BENCHTIME (default 100ms) tune -benchtime.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_remos.json}
ROOT_BENCHTIME=${ROOT_BENCHTIME:-1x}
MICRO_BENCHTIME=${MICRO_BENCHTIME:-100ms}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "==> go test -bench . -benchtime=$ROOT_BENCHTIME . (paper evaluation)"
go test -run '^$' -bench . -benchmem -benchtime "$ROOT_BENCHTIME" . | tee "$TMP/root.txt"

echo "==> go test -bench . -benchtime=$MICRO_BENCHTIME ./internal/telemetry"
go test -run '^$' -bench . -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/telemetry | tee "$TMP/telemetry.txt"

# One JSON object per "BenchmarkName  iters  v unit  v unit ..." line.
bench_json() {
    awk '
        BEGIN { n = 0 }
        /^Benchmark/ {
            sep = n++ ? "," : ""
            printf "%s\n      {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", sep, $1, $2
            m = 0
            for (i = 3; i + 1 <= NF; i += 2) {
                printf "%s\"%s\": %s", (m++ ? ", " : ""), $(i + 1), $i
            }
            printf "}}"
        }
        END { if (n) printf "\n    " }
    ' "$1"
}

{
    printf '{\n'
    printf '  "schema": 1,\n'
    printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go version | sed 's/^go version //')"
    printf '  "root_benchtime": "%s",\n' "$ROOT_BENCHTIME"
    printf '  "micro_benchtime": "%s",\n' "$MICRO_BENCHTIME"
    printf '  "packages": {\n'
    printf '    "repro": ['
    bench_json "$TMP/root.txt"
    printf '],\n'
    printf '    "repro/internal/telemetry": ['
    bench_json "$TMP/telemetry.txt"
    printf ']\n'
    printf '  }\n'
    printf '}\n'
} > "$OUT"

echo "bench: wrote $OUT"
