#!/bin/sh
# Benchmark runner: executes the paper-evaluation benchmarks (root
# package) and the telemetry micro-benchmarks, then writes the results
# as machine-readable JSON (default BENCH_remos.json) for CI artifacts
# and cross-commit diffing. No dependencies beyond the go toolchain and
# POSIX awk.
#
#   scripts/bench.sh [output.json]
#   scripts/bench.sh -compare [baseline.json]
#
# The root package is run in two passes: experiment-scale benchmarks
# (tables, figures, studies — each iteration is a full experiment) at
# ROOT_BENCHTIME (default 1x), and the query-path micro-benchmarks
# (collector poll, modeler queries, parallel scaling) at
# MICRO_BENCHTIME (default 50ms) so their ns/op are averages over
# thousands of iterations rather than one-shot samples.
#
# In -compare mode a fresh run is diffed against the committed baseline
# (default BENCH_remos.json): per benchmark, ns/op and allocs/op changes
# above SOFT_PCT (default 10%) are flagged as warnings — benchmark noise
# on shared runners — and anything above HARD_PCT (default 25%) fails
# the run after one retry. The raw `go test -bench` text is kept at
# BENCH_raw.txt in both modes, ready for benchstat.
set -eu

cd "$(dirname "$0")/.."

ROOT_BENCHTIME=${ROOT_BENCHTIME:-1x}
MICRO_BENCHTIME=${MICRO_BENCHTIME:-50ms}
SOFT_PCT=${SOFT_PCT:-10}
HARD_PCT=${HARD_PCT:-25}
RAW=${RAW:-BENCH_raw.txt}
ATTEMPTS=${ATTEMPTS:-2}

# Micro-benchmarks: per-op costs small enough that -benchtime 1x would
# measure noise instead of code.
MICRO_PAT='BenchmarkCollectorPollRound|BenchmarkModeler|BenchmarkFxIteration|BenchmarkWatchFanout|BenchmarkReplica|BenchmarkFederated'

COMPARE=0
BASELINE=BENCH_remos.json
OUT=BENCH_remos.json
if [ "${1:-}" = "-compare" ]; then
    COMPARE=1
    shift
    [ $# -gt 0 ] && BASELINE=$1
    if [ ! -f "$BASELINE" ]; then
        echo "bench: baseline $BASELINE not found" >&2
        exit 2
    fi
else
    [ $# -gt 0 ] && OUT=$1
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
[ "$COMPARE" = 1 ] && OUT="$TMP/fresh.json"

# One JSON object per "BenchmarkName  iters  v unit  v unit ..." line.
bench_json() {
    awk '
        BEGIN { n = 0 }
        /^Benchmark/ {
            sep = n++ ? "," : ""
            printf "%s\n      {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", sep, $1, $2
            m = 0
            for (i = 3; i + 1 <= NF; i += 2) {
                printf "%s\"%s\": %s", (m++ ? ", " : ""), $(i + 1), $i
            }
            printf "}}"
        }
        END { if (n) printf "\n    " }
    ' "$@"
}

run_benches() {
    echo "==> go test -bench . -skip (micro) -benchtime=$ROOT_BENCHTIME . (paper evaluation)"
    go test -run '^$' -bench . -skip "$MICRO_PAT" -benchmem -benchtime "$ROOT_BENCHTIME" . | tee "$TMP/root.txt"

    echo "==> go test -bench (micro) -benchtime=$MICRO_BENCHTIME . (query path)"
    go test -run '^$' -bench "$MICRO_PAT" -benchmem -benchtime "$MICRO_BENCHTIME" . | tee "$TMP/micro.txt"

    echo "==> go test -bench . -benchtime=$MICRO_BENCHTIME ./internal/telemetry"
    go test -run '^$' -bench . -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/telemetry | tee "$TMP/telemetry.txt"

    echo "==> go test -bench BenchmarkMatrixKernel -benchtime=$MICRO_BENCHTIME ./internal/core (batched kernel ablation)"
    go test -run '^$' -bench 'BenchmarkMatrixKernel' -benchmem -benchtime "$MICRO_BENCHTIME" ./internal/core | tee "$TMP/matrixcore.txt"

    echo "==> go test -bench BenchmarkMatrixWire -benchtime=$MICRO_BENCHTIME ./remos (matrix wire op + p99 latency)"
    go test -run '^$' -bench 'BenchmarkMatrixWire' -benchmem -benchtime "$MICRO_BENCHTIME" ./remos | tee "$TMP/matrixwire.txt"

    # Benchstat-friendly raw output, kept as a CI artifact.
    cat "$TMP/root.txt" "$TMP/micro.txt" "$TMP/telemetry.txt" "$TMP/matrixcore.txt" "$TMP/matrixwire.txt" > "$RAW"

    {
        printf '{\n'
        printf '  "schema": 1,\n'
        printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
        printf '  "go": "%s",\n' "$(go version | sed 's/^go version //')"
        printf '  "root_benchtime": "%s",\n' "$ROOT_BENCHTIME"
        printf '  "micro_benchtime": "%s",\n' "$MICRO_BENCHTIME"
        printf '  "packages": {\n'
        printf '    "repro": ['
        bench_json "$TMP/root.txt" "$TMP/micro.txt"
        printf '],\n'
        printf '    "repro/internal/telemetry": ['
        bench_json "$TMP/telemetry.txt"
        printf '],\n'
        printf '    "repro/internal/core": ['
        bench_json "$TMP/matrixcore.txt"
        printf '],\n'
        printf '    "repro/remos": ['
        bench_json "$TMP/matrixwire.txt"
        printf ']\n'
        printf '  }\n'
        printf '}\n'
    } > "$OUT"

    echo "bench: wrote $OUT (raw: $RAW)"
}

# Extract "name<TAB>ns/op<TAB>allocs/op<TAB>p99_ms" per benchmark from
# the line-oriented JSON (p99_ms is 0 for benchmarks that do not report
# a tail latency). Names are normalized by stripping the trailing
# -GOMAXPROCS suffix so baselines transfer across machines.
bench_extract() {
    awk '
        /"name":/ {
            name = ""; ns = ""; al = ""; p99 = ""
            if (match($0, /"name": "[^"]+"/)) {
                name = substr($0, RSTART + 9, RLENGTH - 10)
                sub(/-[0-9]+$/, "", name)
            }
            if (match($0, /"ns\/op": [0-9.eE+-]+/))
                ns = substr($0, RSTART + 9, RLENGTH - 9)
            if (match($0, /"allocs\/op": [0-9.eE+-]+/))
                al = substr($0, RSTART + 13, RLENGTH - 13)
            if (match($0, /"p99_ms": [0-9.eE+-]+/))
                p99 = substr($0, RSTART + 10, RLENGTH - 10)
            if (name != "" && ns != "")
                printf "%s\t%s\t%s\t%s\n", name, ns, (al == "" ? 0 : al), (p99 == "" ? 0 : p99)
        }
    ' "$1"
}

compare_run() {
    bench_extract "$BASELINE" > "$TMP/base.tsv"
    bench_extract "$OUT" > "$TMP/fresh.tsv"
    awk -F'\t' -v soft="$SOFT_PCT" -v hard="$HARD_PCT" '
        NR == FNR { ns[$1] = $2; al[$1] = $3; p99[$1] = $4; next }
        {
            if (!($1 in ns)) { printf "  new       %-58s (no baseline entry)\n", $1; next }
            seen[$1] = 1
            dns = ns[$1] > 0 ? 100 * ($2 - ns[$1]) / ns[$1] : 0
            dal = al[$1] > 0 ? 100 * ($3 - al[$1]) / al[$1] : 0
            dp99 = p99[$1] > 0 ? 100 * ($4 - p99[$1]) / p99[$1] : 0
            worst = dns > dal ? dns : dal
            if (dp99 > worst) worst = dp99
            flag = "ok"
            if (worst > hard)      { flag = "FAIL"; hardfail++ }
            else if (worst > soft) { flag = "warn"; softfail++ }
            tail = p99[$1] > 0 ? sprintf("  p99 %+8.1f%%", dp99) : ""
            printf "  %-9s %-58s ns/op %+8.1f%%  allocs/op %+8.1f%%%s\n", flag, $1, dns, dal, tail
        }
        END {
            for (n in ns) if (!(n in seen))
                printf "  missing   %-58s (baseline only)\n", n
            if (hardfail) {
                printf "bench-compare: FAIL — %d benchmark(s) regressed more than %d%%\n", hardfail, hard
                exit 1
            }
            if (softfail)
                printf "bench-compare: %d soft regression(s) above %d%% — likely runner noise; refresh the baseline if real\n", softfail, soft
            else
                printf "bench-compare: ok\n"
        }
    ' "$TMP/base.tsv" "$TMP/fresh.tsv"
}

if [ "$COMPARE" = 0 ]; then
    run_benches
    exit 0
fi

attempt=1
while :; do
    run_benches
    echo "==> comparing against $BASELINE (soft >${SOFT_PCT}%, hard >${HARD_PCT}%, attempt $attempt/$ATTEMPTS)"
    if compare_run; then
        exit 0
    fi
    if [ "$attempt" -ge "$ATTEMPTS" ]; then
        echo "bench-compare: regression persisted across $ATTEMPTS runs" >&2
        exit 1
    fi
    attempt=$((attempt + 1))
    echo "bench-compare: hard failure — re-running once to rule out runner noise"
done
