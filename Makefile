GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate CI runs: build, vet, tests, race detector.
verify:
	./scripts/verify.sh

# Paper-evaluation benchmarks + telemetry micro-benchmarks, written as
# machine-readable JSON (BENCH_remos.json).
bench:
	./scripts/bench.sh
