GO ?= go

.PHONY: build test race vet verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate CI runs: build, vet, tests, race detector.
verify:
	./scripts/verify.sh
