package remos_test

import (
	"testing"

	"repro/internal/collector"
	"repro/internal/stats"
	"repro/remos"
)

// Compile-time pins for the exported replication-feed API. A
// replica-of-replica chain (ROADMAP stretch) is written against exactly
// these names; renaming or removing any of them is an API break and
// must fail this file's build, not a downstream consumer's.
var (
	// The in-process collector is a feed producer.
	_ remos.FeedSource = (*collector.Collector)(nil)

	// A feed consumer starts from a zero cursor.
	_ = func(src remos.FeedSource) (*remos.FeedPayload, error) {
		return src.FeedSince(&remos.FeedCursor{})
	}

	// Watch updates carry the feed payload and the producer's lease term.
	_ = func(u remos.WatchUpdate) (*remos.FeedPayload, uint64) {
		return u.Feed, u.Term
	}

	// Every exported payload field, by name. Removing or renaming one
	// breaks replicas built against the feed protocol.
	_ = remos.FeedPayload{
		Epoch:      1,
		Full:       true,
		Now:        1,
		HalfLife:   1,
		WindowLen:  1,
		WindowAge:  1,
		PollPeriod: 1,
		Term:       1,
		Topo: &remos.WireTopo{
			Nodes:        []remos.WireNode{{ID: "n", Kind: 1, InternalBW: 1, ComputePower: 1, MemoryBytes: 1}},
			Links:        []remos.WireLink{{A: "a", B: "b", Capacity: 1, Latency: 1, Global: 1}},
			DiscoveredAt: 1,
		},
		Capacity: map[remos.ChannelKey]float64{},
		Channels: map[remos.ChannelKey][]stats.Sample{},
		Loads:    map[string][]stats.Sample{},
		Health:   map[string]remos.AgentHealth{},
	}

	// The subscription kind and the typed standby refusal.
	_ string = remos.WatchFeed
	_ error  = remos.ErrNotLeader
	_        = func(err error) (string, bool) { return remos.LeaderHint(err) }
)

// TestFeedAPIRoundTrip exercises the exported surface end to end: drive
// a real collector through the FeedSource interface using only remos
// names, decode the wire topology, and apply a delta — the skeleton of
// a replica-of-replica chain.
func TestFeedAPIRoundTrip(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Collector.Stop()
	tb.Run(6)

	var src remos.FeedSource = tb.Collector
	cur := &remos.FeedCursor{}
	p, err := src.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || !p.Full {
		t.Fatalf("first payload on a fresh cursor: %+v, want Full", p)
	}
	topo, err := p.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo == nil || len(topo.Graph.Nodes()) == 0 {
		t.Fatal("full payload decoded to an empty topology")
	}

	tb.Run(4)
	d, err := src.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Full {
		t.Fatalf("second payload after advance: %+v, want a delta", d)
	}
	if d.Epoch <= p.Epoch {
		t.Fatalf("delta epoch %d did not advance past %d", d.Epoch, p.Epoch)
	}
}
