package remos_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/remos"
)

// blackholeListener accepts connections and never answers: the worst
// kind of replica, alive at the TCP layer and dead above it.
func blackholeListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c)
		}
	}()
	return ln
}

// TestBlackholedReplicaDeadline is the ISSUE's acceptance criterion: a
// query with a 50 ms budget against blackholed replicas returns the
// typed remos.ErrDeadlineExceeded within 2x the budget — it never
// hangs, and it never waits out the client's multi-second I/O timeout.
func TestBlackholedReplicaDeadline(t *testing.T) {
	lnA, lnB := blackholeListener(t), blackholeListener(t)
	src, err := remos.DialCollectors(lnA.Addr().String(), lnB.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	mod := remos.NewModeler(remos.Config{Source: src})

	const budget = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	_, err = mod.GetGraphCtx(ctx, nil, remos.TFHistory(10))
	elapsed := time.Since(start)
	if !errors.Is(err, remos.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want remos.ErrDeadlineExceeded", err)
	}
	if !remos.IsLifecycleError(err) {
		t.Fatalf("deadline error not classified as lifecycle: %v", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("blackholed query took %v with a %v budget (limit %v)", elapsed, budget, 2*budget)
	}
}

// TestBlackholedPrimaryFailsOver: with a blackholed primary but a live
// secondary, a budgeted query either fails over inside its budget or
// reports the typed deadline — never a hang, never an untyped error.
func TestBlackholedPrimaryFailsOver(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10)
	reps, err := tb.ServeReplicas(1)
	if err != nil {
		t.Fatal(err)
	}
	defer reps[0].Close()
	dead := blackholeListener(t)

	src, err := remos.DialCollectors(dead.Addr().String(), reps[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	mod := remos.NewModeler(remos.Config{Source: src})

	// First query eats the blackholed attempt; its error must be typed.
	// Once the primary is marked unhealthy, queries divert to the live
	// replica and succeed within budget.
	deadline := time.Now().Add(10 * time.Second)
	for {
		const budget = 250 * time.Millisecond
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		start := time.Now()
		_, err := mod.GetGraphCtx(ctx, nil, remos.TFHistory(10))
		elapsed := time.Since(start)
		cancel()
		if elapsed > 2*budget {
			t.Fatalf("query took %v with a %v budget", elapsed, budget)
		}
		if err == nil {
			return // failed over to the live replica
		}
		if !remos.IsLifecycleError(err) {
			t.Fatalf("untyped error from blackholed primary: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never failed over to the live replica: %v", err)
		}
	}
}
