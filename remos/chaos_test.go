package remos_test

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/snmp"
	"repro/internal/stats"
	"repro/remos"
)

// The chaos suite is seeded: the fault schedule (blackhole windows,
// replica kills/restarts, checkpoint saves, time steps) is generated
// deterministically from -chaos.seed, so a failing run is replayable
// with the same flag. -chaos.events scales the run length.
var (
	chaosSeed   = flag.Int64("chaos.seed", 1, "seed for the chaos fault schedule")
	chaosEvents = flag.Int("chaos.events", 40, "number of chaos events to inject")
)

// lockedSource serializes access to a testbed Collector so TCP server
// handlers (one goroutine per connection) and the virtual-clock driver
// never touch the simulator concurrently — the same discipline the
// remos-collector daemon uses around its clock.
type lockedSource struct {
	mu  *sync.Mutex
	col *collector.Collector
}

func (s *lockedSource) Topology() (*collector.Topology, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Topology()
}
func (s *lockedSource) Utilization(key collector.ChannelKey, span float64) (stats.Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Utilization(key, span)
}
func (s *lockedSource) Samples(key collector.ChannelKey) ([]stats.Sample, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Samples(key)
}
func (s *lockedSource) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.HostLoad(node, span)
}
func (s *lockedSource) DataAge(key collector.ChannelKey) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.DataAge(key)
}
func (s *lockedSource) Health() map[graph.NodeID]collector.AgentHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.Health()
}

// chaosEvent is one step of the deterministic schedule.
type chaosEvent struct {
	kind  int     // 0 blackhole, 1 kill replica A, 2 restart replica A, 3 checkpoint, >=4 quiet
	agent string  // blackhole target
	dur   float64 // blackhole window (virtual seconds)
	dt    float64 // virtual-time advance after the event
}

// TestChaosLifecycle composes everything the robustness PRs built —
// SNMP fault injection, replica kills and restarts, checkpointing,
// admission control, budgets — under concurrent deadline-bounded
// queries, and checks the global invariants: no panic, no query past
// 2x its budget, quartiles ordered, every error typed, and full
// recovery once the chaos stops.
func TestChaosLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(*chaosSeed))
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(20)

	// Pre-generate the whole schedule so determinism depends only on the
	// seed, not on worker interleaving.
	agents := []string{"aspen", "timberline", "whiteface", "m-3", "m-5", "m-8"}
	events := make([]chaosEvent, *chaosEvents)
	for i := range events {
		events[i] = chaosEvent{
			kind:  rng.Intn(6),
			agent: agents[rng.Intn(len(agents))],
			dur:   2 + rng.Float64()*8,
			dt:    0.5 + rng.Float64()*2.5,
		}
	}

	var mu sync.Mutex // serializes clock driver and server handlers
	ls := &lockedSource{mu: &mu, col: tb.Collector}
	scfg := collector.ServerConfig{MaxInflight: 8, QueueDepth: 16, DefaultBudget: 2 * time.Second}
	srvA, err := collector.ServeConfig(ls, "127.0.0.1:0", scfg)
	if err != nil {
		t.Fatal(err)
	}
	addrA := srvA.Addr()
	srvB, err := collector.ServeConfig(ls, "127.0.0.1:0", scfg) // never killed
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	src, err := remos.DialCollectors(addrA, srvB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// The backbone channel used for data-age queries.
	topo, err := tb.Collector.Topology()
	if err != nil {
		t.Fatal(err)
	}
	var backbone remos.ChannelKey
	for _, l := range topo.Graph.Links() {
		if l.A == "aspen" && l.B == "timberline" {
			backbone = topo.Key(l, graph.AtoB)
		}
	}

	// Concurrent query workers under a hard per-query budget.
	const budget = 1 * time.Second
	stop := make(chan struct{})
	var clientShed atomic.Uint64 // ErrLoadShed refusals observed by workers
	var wg sync.WaitGroup
	var violations struct {
		sync.Mutex
		msgs []string
	}
	report := func(format string, args ...any) {
		violations.Lock()
		if len(violations.msgs) < 8 {
			violations.msgs = append(violations.msgs, fmt.Sprintf(format, args...))
		}
		violations.Unlock()
	}
	checkStat := func(who string, st remos.Stat) {
		if !(st.Min <= st.Q1 && st.Q1 <= st.Median && st.Median <= st.Q3 && st.Q3 <= st.Max) {
			report("%s: quartiles out of order: %+v", who, st)
		}
		if math.IsNaN(st.Median) || math.IsInf(st.Median, 0) {
			report("%s: non-finite median: %+v", who, st)
		}
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mod := remos.NewModeler(remos.Config{Source: src})
			flows := []remos.Flow{{Src: "m-1", Dst: "m-8", Kind: remos.IndependentFlow}}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				start := time.Now()
				var err error
				switch (w + i) % 4 {
				case 0:
					var g *remos.Graph
					if g, err = mod.GetGraphCtx(ctx, nil, remos.TFHistory(10)); err == nil {
						for _, l := range g.Links {
							checkStat("graph link", l.AvailFrom(l.A))
						}
					}
				case 1:
					var st remos.Stat
					if st, err = mod.AvailableBandwidthCtx(ctx, "m-1", "m-7", remos.TFHistory(10)); err == nil {
						checkStat("bw", st)
					}
				case 2:
					var fi *remos.FlowInfo
					if fi, err = mod.QueryFlowInfoCtx(ctx, nil, nil, flows, remos.TFCurrent()); err == nil {
						checkStat("flow", fi.Independent[0].Bandwidth)
					}
				case 3:
					var age float64
					if age, err = mod.DataAgeCtx(ctx, backbone); err == nil {
						if age < 0 || math.IsNaN(age) || math.IsInf(age, 0) {
							report("data age invalid: %v", age)
						}
					}
				}
				elapsed := time.Since(start)
				cancel()
				if elapsed > 2*budget {
					report("worker %d query %d took %v (budget %v)", w, i, elapsed, budget)
				}
				if err != nil && !remos.IsLifecycleError(err) {
					report("worker %d query %d: untyped error %v", w, i, err)
				}
				if errors.Is(err, remos.ErrLoadShed) {
					clientShed.Add(1)
				}
			}
		}(w)
	}

	// harvest collects a replica's telemetry invariants. Call it only
	// after Close has returned: Close waits for every serving goroutine,
	// so the span ledger must balance — a started-but-never-finished
	// span means an instrumentation leak on some dispatch path. Shed
	// counts accumulate across replica A's incarnations (each rebind
	// starts a fresh registry).
	var serverShed uint64
	harvest := func(name string, s *collector.Server) {
		started, finished := s.Telemetry().SpanCounts()
		if started != finished {
			t.Errorf("%s: span leak after close: started %d finished %d", name, started, finished)
		}
		serverShed += s.Telemetry().Counter("server.admission.shed").Value()
	}

	// Drive the schedule: advance virtual time under the lock, mutate
	// the world outside it (killing a server waits for its in-flight
	// handlers, which may themselves be waiting on the lock).
	aliveA := true
	for i, ev := range events {
		mu.Lock()
		now := tb.Now()
		if ev.kind == 0 {
			tb.Faults.Blackhole(snmp.Addr(graph.NodeID(ev.agent)), now, now+ev.dur)
		}
		tb.Run(ev.dt)
		mu.Unlock()
		switch ev.kind {
		case 1:
			if aliveA {
				srvA.Close()
				harvest("replica A", srvA)
				aliveA = false
			}
		case 2:
			if !aliveA {
				if srvA, err = collector.ServeConfig(ls, addrA, scfg); err != nil {
					t.Fatalf("event %d: rebinding replica A: %v", i, err)
				}
				aliveA = true
			}
		case 3:
			var ckpt bytes.Buffer
			mu.Lock()
			err := tb.SaveCheckpoint(&ckpt)
			mu.Unlock()
			if err != nil {
				report("event %d: checkpoint under load: %v", i, err)
			}
		}
		time.Sleep(3 * time.Millisecond) // let workers interleave with this state
	}
	close(stop)
	wg.Wait()
	if !aliveA {
		if srvA, err = collector.ServeConfig(ls, addrA, scfg); err != nil {
			t.Fatalf("final rebind of replica A: %v", err)
		}
	}
	defer srvA.Close()

	violations.Lock()
	for _, m := range violations.msgs {
		t.Error(m)
	}
	n := len(violations.msgs)
	violations.Unlock()
	if n > 0 {
		t.Fatalf("%d invariant violations (seed %d)", n, *chaosSeed)
	}

	// Data age is monotone between polls: with both ends of the backbone
	// dark, nothing refreshes the channel, so its age must never move
	// backwards while time advances.
	now := tb.Now()
	tb.Faults.Blackhole(snmp.Addr("aspen"), now, now+100)
	tb.Faults.Blackhole(snmp.Addr("timberline"), now, now+100)
	tb.Run(5) // past the in-flight poll round
	prevAge := -1.0
	for i := 0; i < 10; i++ {
		tb.Run(1)
		age, err := tb.Modeler.DataAge(backbone)
		if err != nil {
			t.Fatalf("data age during outage: %v", err)
		}
		if age < prevAge {
			t.Fatalf("data age moved backwards during outage: %v -> %v", prevAge, age)
		}
		prevAge = age
	}

	// Recovery: once every fault window has passed and the breaker's
	// backoff (capped at 32 virtual seconds) has let the dead agents be
	// re-probed, a budgeted query answers normally again.
	tb.Run(240)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	mod := remos.NewModeler(remos.Config{Source: src})
	st, err := mod.AvailableBandwidthCtx(ctx, "m-1", "m-7", remos.TFHistory(10))
	if err != nil {
		t.Fatalf("query after chaos ended: %v", err)
	}
	if !st.Valid() || st.Accuracy < 0.5 {
		t.Fatalf("system did not recover after chaos: %+v", st)
	}

	// Telemetry invariants over the whole run. Close both replicas so
	// their span ledgers settle, then check the books: every ErrLoadShed
	// a worker saw must correspond to a server-side shed. The failover
	// client retries sheds on the other replica, so the servers may have
	// shed more often than workers observed — never less.
	srvA.Close()
	harvest("replica A (final)", srvA)
	srvB.Close()
	harvest("replica B", srvB)
	if observed := clientShed.Load(); observed > serverShed {
		t.Errorf("workers observed %d ErrLoadShed but servers recorded only %d sheds (seed %d)",
			observed, serverShed, *chaosSeed)
	} else {
		t.Logf("chaos telemetry: %d client-observed sheds, %d server-side sheds", observed, serverShed)
	}
}

// TestChaosWatchBackpressure puts the subscription plane under the
// same kind of hostility: SNMP loss and flap faults corrupting the
// measurement plane, epochs churning at poll rate, one subscriber
// wedged solid, and the serving replica killed mid-stream. Invariants:
// the stalled subscriber is evicted (typed stall counter) while the
// healthy one keeps receiving; server-side queue memory stays bounded
// by the configured depth; the failover watch re-subscribes onto the
// surviving replica with a Resync mark; a fresh subscription after the
// chaos recovers; and tearing everything down leaks no goroutines.
func TestChaosWatchBackpressure(t *testing.T) {
	baseline := runtime.NumGoroutine()
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(20)

	var mu sync.Mutex
	ls := &lockedSource{mu: &mu, col: tb.Collector}
	// lockedSource hides the collector's data version, so the servers
	// fall back to synthetic poll-rate epochs: every WatchPollInterval
	// is a new epoch — a free churn generator for this test.
	const queueDepth = 4
	scfg := collector.ServerConfig{
		MaxInflight: 8, QueueDepth: 16, DefaultBudget: 2 * time.Second,
		WatchQueueDepth: queueDepth, WatchWriteDeadline: 150 * time.Millisecond,
		WatchPollInterval: 2 * time.Millisecond,
	}
	srvA, err := collector.ServeConfig(ls, "127.0.0.1:0", scfg)
	if err != nil {
		t.Fatal(err)
	}
	addrA := srvA.Addr()
	srvB, err := collector.ServeConfig(ls, "127.0.0.1:0", scfg)
	if err != nil {
		t.Fatal(err)
	}

	// Identity probe order (no initial shuffle, unlike DialCollectors):
	// the healthy watch must deterministically land on replica A so that
	// killing A mid-stream exercises the resubscribe path. The shuffle
	// itself is covered by TestFailoverShuffleDeterministic.
	src, err := collector.DialFailover([]string{addrA, srvB.Addr()}, collector.FailoverConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy subscriber through the failover layer: replica A serves
	// it first (preference order).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := src.Watch(ctx, remos.WatchRequest{Kind: remos.WatchVersion})
	if err != nil {
		t.Fatal(err)
	}

	// Consume the healthy stream concurrently, verifying mark/sequence
	// coherence: Seq must only jump when the update admits a loss
	// (Overflowed) or a new stream (Resync).
	var updates, resyncs, overflows atomic.Uint64
	var seqViolation atomic.Value
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		var lastSeq uint64
		sawStream := false
		for u := range h.C {
			if u.Final {
				return
			}
			updates.Add(1)
			if u.Resync {
				resyncs.Add(1)
				sawStream = false
			}
			if u.Overflowed {
				overflows.Add(1)
			}
			if sawStream && u.Seq != lastSeq+1 && !u.Overflowed {
				seqViolation.Store(fmt.Sprintf("seq %d after %d without Overflowed/Resync", u.Seq, lastSeq))
			}
			lastSeq = u.Seq
			sawStream = true
			// A deliberately slow consumer: epochs churn every 2ms,
			// we read an order of magnitude slower.
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Stalled subscriber: subscribes on replica B and then never reads.
	rawConn, err := net.Dial("tcp", srvB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rawConn.Close()
	if tc, ok := rawConn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	if err := collector.SubscribeRaw(rawConn, remos.WatchRequest{Kind: remos.WatchVersion}); err != nil {
		t.Fatalf("raw subscribe: %v", err)
	}

	// Chaos: loss + flaps on the measurement plane while virtual time
	// (and with it the poll-rate epoch churn) advances.
	rng := rand.New(rand.NewSource(*chaosSeed + 1))
	agents := []string{"aspen", "timberline", "whiteface", "m-3", "m-8"}
	killed := false
	for i := 0; i < 60; i++ {
		mu.Lock()
		now := tb.Now()
		switch i % 3 {
		case 0:
			tb.Faults.Loss(snmp.Addr(graph.NodeID(agents[rng.Intn(len(agents))])), 0.3+rng.Float64()*0.4)
		case 1:
			tb.Faults.FlapAt(snmp.Addr(graph.NodeID(agents[rng.Intn(len(agents))])), now, 1+rng.Float64()*3)
		}
		tb.Run(0.5 + rng.Float64())
		mu.Unlock()
		if i == 30 && !killed {
			// Kill the replica serving the healthy watch mid-stream.
			srvA.Close()
			killed = true
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The stalled subscriber must have been evicted by now — its socket
	// jammed thousands of epochs ago — and the server-side queue gauge
	// must never have exceeded the configured depth.
	evicted := srvB.Telemetry().Counter("server.watch.evictions.stalled").Value() +
		srvB.Telemetry().Counter("server.watch.evictions.error").Value()
	deadline := time.Now().Add(10 * time.Second)
	for evicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never evicted under churn")
		}
		time.Sleep(10 * time.Millisecond)
		evicted = srvB.Telemetry().Counter("server.watch.evictions.stalled").Value() +
			srvB.Telemetry().Counter("server.watch.evictions.error").Value()
	}
	if peak := srvB.Telemetry().Gauge("server.watch.queue.peak").Value(); peak > queueDepth {
		t.Errorf("server queue peaked at %v entries (configured depth %d)", peak, queueDepth)
	}

	// The healthy watch survived the replica kill: it re-subscribed on
	// B and marked the switchover.
	deadline = time.Now().Add(10 * time.Second)
	for resyncs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watch never resynced after replica kill (%d updates)", updates.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := seqViolation.Load(); v != nil {
		t.Fatalf("sequence coherence violated: %v (seed %d)", v, *chaosSeed)
	}
	if updates.Load() == 0 {
		t.Fatal("healthy subscriber starved during chaos")
	}
	// A consumer 10x slower than the churn must have been told about
	// its losses rather than silently skipped ahead.
	if overflows.Load() == 0 {
		t.Error("slow consumer never saw an Overflowed mark despite 10x churn")
	}

	// Recovery: faults cleared, replica A back — a fresh subscription
	// answers promptly.
	for _, a := range agents {
		tb.Faults.Restore(snmp.Addr(graph.NodeID(a)))
	}
	srvA2, err := collector.ServeConfig(ls, addrA, scfg)
	if err != nil {
		t.Fatalf("rebinding replica A after chaos: %v", err)
	}
	h2, err := src.Watch(ctx, remos.WatchRequest{Kind: remos.WatchVersion})
	if err != nil {
		t.Fatalf("post-chaos subscribe: %v", err)
	}
	select {
	case u, ok := <-h2.C:
		if !ok {
			t.Fatalf("post-chaos watch closed immediately: %v", h2.Err())
		}
		if u.Final {
			t.Fatal("post-chaos watch began with Final")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("post-chaos watch delivered nothing")
	}
	h2.Cancel()

	// Teardown: graceful drain delivers Final to the live watch, and
	// afterwards nothing may linger — no pusher, evaluator, forwarder,
	// or read-loop goroutines.
	cancel()
	h.Cancel()
	select {
	case <-consumerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("healthy consumer did not finish after cancel")
	}
	src.Close()
	srvA2.Close()
	srvB.Close()
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after drain: %d -> %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
