package remos_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/topology"
	"repro/remos"
)

// TestFailoverEndToEnd is the acceptance scenario for the replicated
// query plane: two replica endpoints serve one testbed collector, a
// Modeler runs over DialCollectors, and the primary is killed in the
// middle of a query stream. Every query must keep being answered (the
// failover is invisible at the application API), and after the primary
// restarts the background prober must restore it to preferred status.
func TestFailoverEndToEnd(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(30)

	reps, err := tb.ServeReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, r := range reps {
			r.Close()
		}
	}()

	src, err := remos.DialCollectors(reps[0].Addr(), reps[1].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	mod := remos.NewModeler(remos.Config{Source: src})

	// Query stream with the primary killed in the middle.
	for i := 0; i < 10; i++ {
		if i == 5 {
			if err := reps[0].Close(); err != nil {
				t.Fatal(err)
			}
		}
		bw, err := mod.AvailableBandwidth("m-1", "m-7", remos.TFHistory(10))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if bw.Median <= 0 || bw.Median > 100e6 {
			t.Fatalf("query %d: implausible bandwidth %v", i, bw.Median)
		}
		if _, err := mod.GetGraph(nil, remos.TFCurrent()); err != nil {
			t.Fatalf("query %d (graph): %v", i, err)
		}
	}
	st := src.Replicas()
	if st[1].Calls == 0 {
		t.Fatalf("secondary never took over: %+v", st)
	}

	// Restart the primary; the prober must re-admit it so it is
	// eligible for routing again. (Which live endpoint routing then
	// prefers is the seeded shuffle's pick, not list position, so the
	// assertion is re-admission plus continued service — not that the
	// recovered endpoint sees the very next call.)
	if err := reps[0].Restart(); err != nil {
		t.Skipf("could not rebind primary: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for src.Replicas()[0].State != remos.AgentHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("primary never re-probed after restart: %+v", src.Replicas()[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := mod.GetGraph(nil, remos.TFCurrent()); err != nil {
		t.Fatalf("query after primary recovery: %v", err)
	}
}

// TestWarmRestartEndToEnd checkpoints a testbed collector, "crashes"
// it, and restores into a fresh collector at a later virtual time: the
// application's first queries succeed with no discovery or poll cycle,
// and the reported staleness includes the downtime.
func TestWarmRestartEndToEnd(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(40)
	var ckpt bytes.Buffer
	if err := tb.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	crashedAt := tb.Now()

	// The "restarted daemon": a fresh collector with a fresh clock,
	// advanced past the checkpoint plus 30s of downtime. No agents are
	// attached — a query that needed a poll or discovery would fail.
	const downtime = 30.0
	clk := simclock.New()
	clk.Advance(crashedAt + downtime)
	col := collector.New(collector.Config{
		Clock:         clk,
		PollPeriod:    2,
		PerHopLatency: topology.PerHopLatency,
	})
	info, err := col.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.SavedAt != crashedAt {
		t.Fatalf("checkpoint SavedAt = %v, want %v", info.SavedAt, crashedAt)
	}

	mod := remos.NewModeler(remos.Config{Source: col})
	g, err := mod.GetGraph(nil, remos.TFHistory(20))
	if err != nil {
		t.Fatalf("first graph query after warm restart: %v", err)
	}
	if len(g.Nodes) != 11 {
		t.Fatalf("restored graph has %d nodes", len(g.Nodes))
	}
	bw, err := mod.AvailableBandwidth("m-1", "m-7", remos.TFHistory(20))
	if err != nil {
		t.Fatalf("first bandwidth query after warm restart: %v", err)
	}
	if bw.Age < downtime {
		t.Fatalf("restored stat age %v does not include the %vs downtime", bw.Age, downtime)
	}
	// Staleness must show up as decayed accuracy relative to the
	// pre-crash answer.
	pre, err := tb.Modeler.AvailableBandwidth("m-1", "m-7", remos.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if bw.Accuracy >= pre.Accuracy {
		t.Fatalf("accuracy did not decay across downtime: %v >= %v", bw.Accuracy, pre.Accuracy)
	}
	if bw.Median != pre.Median {
		t.Fatalf("restored measurement changed: %v != %v", bw.Median, pre.Median)
	}
}
