package remos_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/remos"
)

// feedSource adds the replication-feed capability to the chaos suite's
// lockedSource. It is a separate type on purpose: lockedSource hides
// the collector's data version so watch tests exercise synthetic
// poll-rate epochs, while the replica tests need the real versioned
// feed. FeedSince must hold the simulator lock (it reads windows under
// the collector's own mutex while the clock driver advances polls);
// the version primitives are internally synchronized and skip it.
type feedSource struct {
	*lockedSource
}

func (s *feedSource) FeedSince(cur *collector.FeedCursor) (*collector.FeedPayload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col.FeedSince(cur)
}

func (s *feedSource) DataVersion() (uint64, bool) { return s.col.DataVersion() }

func (s *feedSource) SubscribeVersion() (<-chan struct{}, func()) {
	return s.col.SubscribeVersion()
}

// driveClock advances the testbed's virtual clock in real time under
// the shared simulator lock, like the daemon's 20 Hz driver (here at
// 100 Hz, 20 virtual seconds per wall second, so the 2s poll period
// gives a feed heartbeat every ~100ms wall).
func driveClock(tb *remos.Testbed, mu *sync.Mutex) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	var once sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				mu.Lock()
				tb.Run(0.2)
				mu.Unlock()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }); wg.Wait() }
}

func waitUntil(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", within, what)
}

// TestReplicaFailoverEndToEnd is the paper-level robustness story: an
// application talks to a replica-first failover source; the replica's
// feed is partitioned; before the fence the replica answers with
// honestly aged data, past it the typed ErrStaleReplica routes queries
// to the collector WITHOUT marking the replica down; when the feed
// heals the replica resyncs and rejoins.
func TestReplicaFailoverEndToEnd(t *testing.T) {
	baseline := runtime.NumGoroutine()
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(20)

	var mu sync.Mutex
	ls := &feedSource{&lockedSource{mu: &mu, col: tb.Collector}}
	feedSrv, err := collector.Serve(ls, "127.0.0.1:0") // the replica's feed
	if err != nil {
		t.Fatal(err)
	}
	feedAddr := feedSrv.Addr()
	querySrv, err := collector.Serve(ls, "127.0.0.1:0") // direct collector, never killed
	if err != nil {
		t.Fatal(err)
	}
	defer querySrv.Close()
	stopClock := driveClock(tb, &mu)
	defer stopClock()

	rep := remos.NewReadReplica(remos.ReplicaConfig{
		FeedAddr:      feedAddr,
		MaxStaleness:  time.Second,
		LagThreshold:  250 * time.Millisecond,
		ResyncBackoff: 25 * time.Millisecond,
		Seed:          1,
	})
	rep.Start()
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rep.WaitSynced(ctx); err != nil {
		t.Fatalf("replica never synced: %v", err)
	}
	repAddr, repStop, err := remos.ServeSource(rep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer repStop()

	// Replica preferred, collector as fallback.
	src, err := remos.DialCollectors(repAddr, querySrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.Topology(); err != nil {
		t.Fatalf("replica-first topology query: %v", err)
	}

	// Partition the feed only: the replica's query port stays up.
	feedSrv.Close()

	// Inside the fence: queries served by the replica, ages growing.
	time.Sleep(300 * time.Millisecond)
	if _, err := src.Topology(); err != nil {
		t.Fatalf("pre-fence query through failover: %v", err)
	}

	// Past the fence: the replica refuses typed; direct dial proves
	// the refusal crosses the wire as ErrStaleReplica.
	waitUntil(t, 5*time.Second, "replica fenced", func() bool {
		return rep.State() == remos.ReplicaFenced
	})
	direct, err := remos.DialCollector(repAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Topology(); !errors.Is(err, remos.ErrStaleReplica) {
		t.Fatalf("fenced replica over the wire: err = %v, want ErrStaleReplica", err)
	}
	if !remos.IsLifecycleError(err) {
		// err here is nil (dial); re-derive from a query.
		_, qerr := direct.Topology()
		if !remos.IsLifecycleError(qerr) {
			t.Fatalf("ErrStaleReplica must classify as lifecycle, got %v", qerr)
		}
	}

	// The failover source routes around the fenced replica to the
	// collector — and must NOT mark the replica Down: the refusal
	// proves the process alive.
	for i := 0; i < 5; i++ {
		if _, err := src.Topology(); err != nil {
			t.Fatalf("failover query %d during fence: %v", i, err)
		}
	}
	if st := src.Replicas()[0].State; st == collector.Down {
		t.Fatalf("fenced replica marked Down by failover; want refusal-only degradation")
	}

	// Heal the feed on its old address: the replica resyncs with a
	// fresh snapshot and serves again.
	epochAtFence, _ := rep.DataVersion()
	feedSrv2, err := collector.Serve(ls, feedAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer feedSrv2.Close()
	waitUntil(t, 10*time.Second, "replica recovered past its fence", func() bool {
		if rep.State() != remos.ReplicaLive {
			return false
		}
		ver, _ := rep.DataVersion()
		return ver > epochAtFence
	})
	if _, err := direct.Topology(); err != nil {
		t.Fatalf("recovered replica still refusing: %v", err)
	}

	// Full teardown; nothing may leak.
	src.Close()
	if cl, ok := direct.(interface{ Close() error }); ok {
		cl.Close()
	}
	repStop()
	rep.Close()
	querySrv.Close()
	feedSrv2.Close()
	stopClock()
	waitUntil(t, 10*time.Second, fmt.Sprintf("goroutines back near %d", baseline), func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}
