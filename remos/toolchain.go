package remos

import (
	"repro/internal/apps/airshed"
	"repro/internal/apps/fft"
	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/fx"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The adaptive-parallel-computing tool chain of §6-§7: the Fx-style
// runtime, communication patterns, the two benchmark applications, and
// traffic generation — everything needed to write a network-aware
// parallel program against the simulated testbed.

type (
	// Program is an iterative task/data-parallel application.
	Program = fx.Program

	// ProgramStep is one compute+communicate phase of an iteration.
	ProgramStep = fx.Step

	// Runtime executes Programs on a Testbed's network.
	Runtime = fx.Runtime

	// Report summarizes one program execution.
	Report = fx.Report

	// Adapter decides migrations at iteration boundaries.
	Adapter = fx.Adapter

	// RemosAdapter is the standard Remos-driven adaptation module:
	// query, cluster, migrate when a better set exists.
	RemosAdapter = fx.RemosAdapter

	// FlowSpec describes a transfer injected into the simulated network.
	FlowSpec = netsim.FlowSpec

	// TrafficGenerator is a running synthetic load.
	TrafficGenerator = traffic.Generator

	// ClusterMetric converts measurements into node distances.
	ClusterMetric = cluster.Metric
)

// Communication patterns for ProgramStep.Comm.
var (
	// AllToAll exchanges bytesPerPair between every ordered node pair.
	AllToAll = fx.AllToAll
	// AllToAllTotal exchanges a fixed total volume (matrix transpose).
	AllToAllTotal = fx.AllToAllTotal
	// BroadcastPattern sends from the first node to all others.
	BroadcastPattern = fx.Broadcast
	// GatherPattern sends from all others to the first node.
	GatherPattern = fx.Gather
	// RingPattern exchanges between cyclic neighbors.
	RingPattern = fx.Ring
)

// FFTProgram builds the paper's 2-D FFT benchmark (size n×n, power of
// two) for the given number of transforms.
func FFTProgram(n, iterations int) *Program { return fft.Program(n, iterations) }

// AirshedProgram builds the paper's Airshed pollution-model benchmark
// with the calibrated default parameters.
func AirshedProgram() *Program { return airshed.Program(airshed.DefaultParams()) }

// TestbedClusterMetric is the node-distance metric used in the paper's
// experiments: bandwidth-dominant with a latency tie-break.
func TestbedClusterMetric() ClusterMetric { return cluster.TestbedMetric() }

// StartCBR launches a responsive constant-bit-rate flow on the testbed.
func (t *Testbed) StartCBR(src, dst NodeID, rate float64) TrafficGenerator {
	return traffic.CBR(t.Network, src, dst, rate)
}

// StartBlast launches a non-responsive constant-rate flow (the paper's
// interfering synthetic traffic).
func (t *Testbed) StartBlast(src, dst NodeID, rate float64) TrafficGenerator {
	return traffic.Blast(t.Network, src, dst, rate)
}

// StartOnOff launches a bursty on-off source with exponential periods.
func (t *Testbed) StartOnOff(src, dst NodeID, rate, meanOn, meanOff float64, seed int64) TrafficGenerator {
	return traffic.OnOff(t.Network, src, dst, traffic.OnOffConfig{
		Rate: rate, MeanOn: meanOn, MeanOff: meanOff, Seed: seed,
	})
}

// NewRuntime creates a program runtime over the testbed's network.
func (t *Testbed) NewRuntime() *Runtime { return &Runtime{Net: t.Network} }

// TestbedHosts lists the Figure 3 testbed's hosts (m-1..m-8).
func TestbedHosts() []NodeID {
	return append([]graph.NodeID(nil), topology.TestbedHosts...)
}

// SelectNodesComputeAware runs the computation-aware variant of node
// selection: well-connected hosts, discounted by their measured CPU
// load (the paper's §7.2 compute/communication tradeoff).
func SelectNodesComputeAware(m *Modeler, pool []NodeID, start NodeID, k int, tf Timeframe) ([]NodeID, error) {
	res, err := cluster.ComputeAwareFromModeler(m, pool, start, k, cluster.TestbedMetric(), tf, 1e-7)
	if err != nil {
		return nil, err
	}
	return res.Nodes, nil
}

// Watching -----------------------------------------------------------------

type (
	// WatchConfig parameterizes a bandwidth watch.
	WatchConfig = core.WatchConfig
	// WatchEvent is one threshold crossing.
	WatchEvent = core.WatchEvent
	// Watch is a running periodic availability evaluation.
	Watch = core.Watch
)

// WatchBandwidth starts a periodic availability watch on the testbed,
// invoking fn on threshold crossings (with hysteresis between Low and
// High).
func (t *Testbed) WatchBandwidth(cfg WatchConfig, fn func(WatchEvent)) (*Watch, error) {
	return t.Modeler.WatchBandwidth(t.Clock, cfg, fn)
}

// Collective-communication optimization (§2 "optimization of
// communication"): compile broadcast schedules and run them on the
// testbed.

// BroadcastSchedule is a compiled collective operation.
type BroadcastSchedule = collective.Schedule

// FlatBroadcast compiles the naive root-sends-to-all schedule.
func FlatBroadcast(root NodeID, nodes []NodeID, bytes float64) (*BroadcastSchedule, error) {
	return collective.Flat(root, nodes, bytes)
}

// BinomialBroadcast compiles the topology-oblivious binomial tree.
func BinomialBroadcast(root NodeID, nodes []NodeID, bytes float64) (*BroadcastSchedule, error) {
	return collective.Binomial(root, nodes, bytes)
}

// TopologyAwareBroadcast compiles a broadcast tree from live Remos
// measurements so every slow link is crossed exactly once.
func TopologyAwareBroadcast(m *Modeler, root NodeID, nodes []NodeID, bytes float64, tf Timeframe) (*BroadcastSchedule, error) {
	return collective.TopologyAware(m, root, nodes, bytes, tf)
}

// MeasureSchedule executes a schedule on the testbed and returns its
// virtual completion time in seconds.
func (t *Testbed) MeasureSchedule(s *BroadcastSchedule) float64 {
	return collective.Measure(t.Network, s, "app")
}
