package remos_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/topology"
	"repro/remos"
)

func TestTestbedQuickPath(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(30)

	if got := len(tb.Hosts()); got != 8 {
		t.Fatalf("hosts = %d", got)
	}
	st, err := tb.Modeler.AvailableBandwidth("m-4", "m-7", remos.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-40e6) > 1e5 {
		t.Fatalf("availability = %v", st)
	}
	if tb.Now() < 30 {
		t.Fatalf("Now = %v", tb.Now())
	}
}

func TestTestbedAfter(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	var at float64
	tb.After(5, "cb", func(now float64) { at = now })
	tb.Run(10)
	if at != 5 {
		t.Fatalf("callback at %v", at)
	}
}

func TestGetGraphAndFlowInfoViaFacade(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10)
	g, err := tb.Modeler.GetGraph([]remos.NodeID{"m-1", "m-8"}, remos.TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Links) != 1 {
		t.Fatalf("logical links = %d", len(g.Links))
	}
	fi, err := tb.Modeler.QueryFlowInfo(nil, nil,
		[]remos.Flow{{Src: "m-1", Dst: "m-8", Kind: remos.IndependentFlow}}, remos.TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if fi.Independent[0].Bandwidth.Median != 100e6 {
		t.Fatalf("bw = %v", fi.Independent[0].Bandwidth.Median)
	}
}

func TestSelectNodesFacade(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 90e6)
	tb.StartBlast("m-8", "m-6", 90e6)
	tb.Run(20)
	sel, err := remos.SelectNodes(tb.Modeler, remos.TestbedHosts(), "m-4", 4, remos.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	want := map[remos.NodeID]bool{"m-1": true, "m-2": true, "m-4": true, "m-5": true}
	for _, n := range sel {
		if !want[n] {
			t.Fatalf("selected %v", sel)
		}
	}
}

func TestServeCollectorAndDial(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartCBR("m-1", "m-2", 20e6)
	tb.Run(20)
	addr, shutdown, err := tb.ServeCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	src, err := remos.DialCollector(addr)
	if err != nil {
		t.Fatal(err)
	}
	mod := remos.NewModeler(remos.Config{Source: src})
	st, err := mod.AvailableBandwidth("m-1", "m-2", remos.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-80e6) > 1e5 {
		t.Fatalf("availability over TCP = %v", st)
	}
}

func TestMergeSourcesFacade(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10)
	merged := remos.MergeSources(tb.Collector)
	mod := remos.NewModeler(remos.Config{Source: merged})
	if _, err := mod.GetGraph(nil, remos.TFCapacity()); err != nil {
		t.Fatal(err)
	}
}

func TestToolchainRunProgram(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(5)
	rt := tb.NewRuntime()
	rep := rt.RunToCompletion(remos.FFTProgram(256, 1), []remos.NodeID{"m-1", "m-2"})
	if rep.Elapsed() <= 0 {
		t.Fatalf("elapsed = %v", rep.Elapsed())
	}
	// Custom program through the public types.
	prog := &remos.Program{
		Name:       "custom",
		Iterations: 2,
		Steps: []remos.ProgramStep{
			{Name: "w", WorkPerNode: func(p int) float64 { return 1.0 / float64(p) }},
			{Name: "ring", Comm: remos.RingPattern(1e5)},
		},
	}
	rep = rt.RunToCompletion(prog, []remos.NodeID{"m-4", "m-5"})
	if len(rep.IterationTimes) != 2 {
		t.Fatalf("iterations = %d", len(rep.IterationTimes))
	}
}

func TestCustomTopologyFacade(t *testing.T) {
	tb, err := remos.NewTestbedOn(topology.Dumbbell(2, 100, 10))
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10)
	st, err := tb.Modeler.AvailableBandwidth("l0", "r0", remos.TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if st.Median != 10e6 {
		t.Fatalf("bottleneck = %v", st.Median)
	}
}

func TestOnOffFacade(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	gen := tb.StartOnOff("m-1", "m-2", 50e6, 1, 1, 42)
	tb.Run(60)
	st, err := tb.Modeler.AvailableBandwidth("m-1", "m-2", remos.TFHistory(50))
	if err != nil {
		t.Fatal(err)
	}
	if st.IQR() <= 0 {
		t.Fatalf("bursty traffic produced no spread: %v", st)
	}
	gen.Stop()
}

func TestHistorySaveLoadViaFacade(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 45e6)
	tb.Run(30)
	var buf bytes.Buffer
	if err := tb.SaveHistory(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := remos.LoadHistorySource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mod := remos.NewModeler(remos.Config{Source: src})
	st, err := mod.AvailableBandwidth("m-4", "m-7", remos.TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-55e6) > 1e5 {
		t.Fatalf("offline availability = %v", st)
	}
}

func TestWatchBandwidthViaFacade(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10)
	events := 0
	w, err := tb.WatchBandwidth(remos.WatchConfig{
		Src: "m-4", Dst: "m-7",
		Timeframe: remos.TFHistory(6),
		Low:       30e6, High: 60e6,
		Period: 2,
	}, func(remos.WatchEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 90e6)
	tb.Run(30)
	if events != 1 {
		t.Fatalf("events = %d", events)
	}
	w.Stop()
}

func TestSelectNodesComputeAwareViaFacade(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Network.SetHostLoad("m-5", 0.9)
	tb.Run(15)
	sel, err := remos.SelectNodesComputeAware(tb.Modeler, remos.TestbedHosts(), "m-4", 3, remos.TFHistory(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sel {
		if n == "m-5" {
			t.Fatalf("selection %v includes the saturated host", sel)
		}
	}
}
