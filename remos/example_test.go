package remos_test

import (
	"fmt"

	"repro/remos"
)

// The simulation is deterministic, so these examples double as tests:
// `go test` verifies their output byte for byte.

// ExampleNewTestbed brings up the simulated Figure 3 testbed, generates
// competing traffic, and asks Remos for the availability between two
// hosts whose route crosses the loaded link.
func ExampleNewTestbed() {
	tb, err := remos.NewTestbed()
	if err != nil {
		panic(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6) // 60 Mbps of competing traffic
	tb.Run(30)                        // 30 virtual seconds of measurement

	st, err := tb.Modeler.AvailableBandwidth("m-4", "m-7", remos.TFHistory(20))
	if err != nil {
		panic(err)
	}
	fmt.Printf("m-4 -> m-7: %.0f Mbps available\n", st.Median/1e6)
	// Output: m-4 -> m-7: 40 Mbps available
}

// ExampleModeler_QueryFlowInfo reproduces the paper's §4.2 worked
// example: variable flows with relative requirements 3 : 4.5 : 9 on a
// 5.5 Mbps bottleneck receive 1, 1.5 and 3 Mbps.
func ExampleModeler_QueryFlowInfo() {
	g, err := remos.LoadTopology(`
		host a
		host b
		host c
		host x
		host y
		host z
		router L
		router R
		link a L 100Mbps 0.5ms
		link b L 100Mbps 0.5ms
		link c L 100Mbps 0.5ms
		link x R 100Mbps 0.5ms
		link y R 100Mbps 0.5ms
		link z R 100Mbps 0.5ms
		link L R 5.5Mbps 0.5ms
	`)
	if err != nil {
		panic(err)
	}
	tb, err := remos.NewTestbedOn(g)
	if err != nil {
		panic(err)
	}
	tb.Run(5)

	fi, err := tb.Modeler.QueryFlowInfo(nil, []remos.Flow{
		{Src: "a", Dst: "x", Kind: remos.VariableFlow, Bandwidth: 3e6},
		{Src: "b", Dst: "y", Kind: remos.VariableFlow, Bandwidth: 4.5e6},
		{Src: "c", Dst: "z", Kind: remos.VariableFlow, Bandwidth: 9e6},
	}, nil, remos.TFCapacity())
	if err != nil {
		panic(err)
	}
	for _, r := range fi.Variable {
		fmt.Printf("%s -> %s gets %.1f Mbps\n", r.Flow.Src, r.Flow.Dst, r.Bandwidth.Median/1e6)
	}
	// Output:
	// a -> x gets 1.0 Mbps
	// b -> y gets 1.5 Mbps
	// c -> z gets 3.0 Mbps
}

// ExampleSelectNodes reproduces Figure 4: with interfering traffic
// between m-6 and m-8, greedy clustering from start node m-4 picks the
// four hosts whose communication avoids every busy link.
func ExampleSelectNodes() {
	tb, err := remos.NewTestbed()
	if err != nil {
		panic(err)
	}
	tb.StartBlast("m-6", "m-8", 90e6)
	tb.StartBlast("m-8", "m-6", 90e6)
	tb.Run(20)

	nodes, err := remos.SelectNodes(tb.Modeler, remos.TestbedHosts(), "m-4", 4, remos.TFHistory(15))
	if err != nil {
		panic(err)
	}
	fmt.Println(nodes)
	// Output: [m-4 m-5 m-1 m-2]
}
