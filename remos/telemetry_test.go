package remos_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/remos"
)

// TestTraceEndToEnd drives a query from the remos API edge over the TCP
// service and asserts the trace ID stitches the two sides together: the
// Modeler's query span and the server's rpc spans share one ID, whether
// the caller supplied it via WithTrace or let the Modeler mint one.
func TestTraceEndToEnd(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(20)

	var mu sync.Mutex
	ls := &lockedSource{mu: &mu, col: tb.Collector}
	srv, err := collector.ServeConfig(ls, "127.0.0.1:0", collector.ServerConfig{
		MaxInflight: 8, QueueDepth: 16, DefaultBudget: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	src, err := remos.DialCollector(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}

	modReg := remos.NewTelemetryRegistry()
	mod := remos.NewModeler(remos.Config{Source: src, Telemetry: modReg})

	// Caller-supplied trace: the ID set at the API edge must reach the
	// server's span log on every RPC the query fans out to.
	trace := remos.NewTraceID()
	ctx, cancel := context.WithTimeout(remos.WithTrace(context.Background(), trace), 10*time.Second)
	defer cancel()
	if _, err := mod.GetGraphCtx(ctx, nil, remos.TFHistory(10)); err != nil {
		t.Fatal(err)
	}
	flows := []remos.Flow{{Src: "m-1", Dst: "m-8", Kind: remos.IndependentFlow}}
	if _, err := mod.QueryFlowInfoCtx(ctx, nil, nil, flows, remos.TFCurrent()); err != nil {
		t.Fatal(err)
	}

	names := func(recs []remos.SpanRecord) map[string]int {
		m := map[string]int{}
		for _, r := range recs {
			m[r.Name]++
		}
		return m
	}
	modSpans := names(modReg.SpansFor(trace))
	if modSpans["query.getgraph"] != 1 || modSpans["query.flowinfo"] != 1 {
		t.Errorf("modeler spans for trace = %v, want query.getgraph and query.flowinfo", modSpans)
	}
	srvSpans := srv.Telemetry().SpansFor(trace)
	if len(srvSpans) == 0 {
		t.Fatalf("server span log has no records for trace %q", trace)
	}
	for _, r := range srvSpans {
		if !strings.HasPrefix(r.Name, "rpc.") {
			t.Errorf("server span %q is not an rpc span", r.Name)
		}
		if r.Attrs["verdict"] != "admitted" {
			t.Errorf("server span %s verdict = %q, want admitted", r.Name, r.Attrs["verdict"])
		}
	}
	if got := names(srvSpans); got["rpc.topo"] == 0 {
		t.Errorf("server spans for trace lack rpc.topo: %v", got)
	}

	// Minted trace: with no WithTrace, the Modeler mints an ID at the
	// query edge, and that same ID shows up server-side.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := mod.GetGraphCtx(ctx2, nil, remos.TFHistory(10)); err != nil {
		t.Fatal(err)
	}
	var minted string
	for _, r := range modReg.Spans() {
		if r.Name == "query.getgraph" && r.Trace != trace {
			minted = r.Trace
		}
	}
	if minted == "" {
		t.Fatal("modeler did not mint a trace for the un-traced query")
	}
	if got := srv.Telemetry().SpansFor(minted); len(got) == 0 {
		t.Errorf("minted trace %q absent from server span log", minted)
	}
}
