package remos_test

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/snmp"
	"repro/remos"
)

// TestFaultToleranceEndToEnd is the acceptance scenario for the fault
// pipeline: the backbone routers stop answering SNMP mid-run, and
// remos_flow_info keeps answering from the surviving topology with
// monotonically decaying accuracy — never a hard error — while the
// circuit breaker cuts polling of the dead agents to the backoff
// schedule. When the routers return, accuracy recovers in full. All of
// it runs in virtual time with fixed seeds, so the run is deterministic.
func TestFaultToleranceEndToEnd(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	// Cross traffic m-2 -> m-4 loads the aspen--timberline link, making
	// it the bottleneck of the m-1 -> m-8 path (60 of 100 Mbps left).
	tb.StartBlast("m-2", "m-4", 40e6)
	tb.Run(20)

	flows := []remos.Flow{{Src: "m-1", Dst: "m-8", Kind: remos.IndependentFlow}}
	flowBW := func() remos.Stat {
		fi, err := tb.Modeler.QueryFlowInfo(nil, nil, flows, remos.TFCurrent())
		if err != nil {
			t.Fatalf("flow query failed at t=%v: %v", tb.Now(), err)
		}
		return fi.Independent[0].Bandwidth
	}

	base := flowBW()
	if !base.Valid() || base.Accuracy < 0.5 {
		t.Fatalf("baseline = %v", base)
	}
	if math.Abs(base.Median-60e6) > 6e6 {
		t.Fatalf("baseline bandwidth = %v", base)
	}

	// The backbone channel the outage will starve: with both aspen and
	// timberline dark, no agent refreshes it (host-attached links keep
	// being reported by the host ends).
	topo, err := tb.Collector.Topology()
	if err != nil {
		t.Fatal(err)
	}
	var key remos.ChannelKey
	found := false
	for _, l := range topo.Graph.Links() {
		if l.A == "aspen" && l.B == "timberline" {
			key = topo.Key(l, graph.AtoB)
			found = true
		}
	}
	if !found {
		t.Fatal("no aspen--timberline link discovered")
	}

	outage := tb.Now() // t=20
	tb.Faults.Blackhole(snmp.Addr("aspen"), outage, outage+60)
	tb.Faults.Blackhole(snmp.Addr("timberline"), outage, outage+60)
	attemptsBefore := tb.Faults.CountersFor(snmp.Addr("aspen")).Attempts

	// Queries keep being answered while accuracy decays monotonically.
	prev := base.Accuracy
	for i := 0; i < 5; i++ {
		tb.Run(10)
		st := flowBW()
		if !st.Valid() {
			t.Fatalf("query stopped answering at t=%v", tb.Now())
		}
		if st.Accuracy > prev+1e-9 {
			t.Fatalf("accuracy rose during outage at t=%v: %v -> %v", tb.Now(), prev, st.Accuracy)
		}
		prev = st.Accuracy
	}
	if prev > 0.5*base.Accuracy {
		t.Fatalf("accuracy barely decayed after 50 s of outage: %v of %v", prev, base.Accuracy)
	}
	if age, err := tb.Modeler.DataAge(key); err != nil || age < 40 {
		t.Fatalf("backbone data age = %v, %v", age, err)
	}

	// The breaker throttled probing: ~25 poll rounds elapsed, but the
	// dead agent saw only the backoff-scheduled handful of attempts.
	attempts := tb.Faults.CountersFor(snmp.Addr("aspen")).Attempts - attemptsBefore
	if attempts == 0 || attempts > 8 {
		t.Fatalf("breaker allowed %d attempts during 50 s outage", attempts)
	}
	h := tb.Modeler.Health()
	if h["aspen"].State != remos.AgentDown || h["aspen"].Skipped == 0 {
		t.Fatalf("aspen health during outage = %+v", h["aspen"])
	}
	if h["m-8"].State != remos.AgentHealthy {
		t.Fatalf("m-8 health during outage = %+v", h["m-8"])
	}

	// Routers return at t=80; the breaker's next probe (backoff-capped)
	// succeeds and full accuracy recovers.
	tb.Run(30)
	after := flowBW()
	if after.Accuracy < base.Accuracy-0.02 {
		t.Fatalf("accuracy did not recover: %v vs baseline %v", after.Accuracy, base.Accuracy)
	}
	if math.Abs(after.Median-60e6) > 6e6 {
		t.Fatalf("bandwidth after recovery = %v", after)
	}
	h = tb.Modeler.Health()
	if h["aspen"].State != remos.AgentHealthy {
		t.Fatalf("aspen health after recovery = %+v", h["aspen"])
	}
}
