// Package remos is the public API of the Remos reproduction: a uniform,
// network-independent query interface for network-aware applications
// (Lowekamp et al., "A Resource Query Interface for Network-Aware
// Applications", HPDC 1998).
//
// Applications link a Modeler and ask it two kinds of questions:
//
//   - Topology queries — Modeler.GetGraph, the paper's remos_get_graph:
//     a logical topology of the hosts the application cares about,
//     annotated with capacities, availability and latency.
//
//   - Flow queries — Modeler.QueryFlowInfo, the paper's remos_flow_info:
//     what bandwidth a set of application-level flows would receive,
//     resolved simultaneously under max-min fair sharing, in three
//     classes (fixed, variable, independent).
//
// Every dynamic quantity is a quartile Stat with an accuracy measure.
// Queries carry a Timeframe: invariant capacities, the current
// measurement, a trailing historical window, or a predicted future.
//
// The Modeler is fed by a Collector (see NewTestbed for the simulated
// deployment, and DialCollector for connecting to a collector daemon
// over TCP).
package remos

import (
	"context"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topofile"
	"repro/internal/topology"
)

// Core data types re-exported for applications.
type (
	// NodeID names a host or network node.
	NodeID = graph.NodeID

	// NodeKind distinguishes hosts from routers/switches.
	NodeKind = graph.NodeKind

	// Stat is the quartile summary attached to every dynamic quantity.
	Stat = stats.Stat

	// Timeframe selects the time context of a query.
	Timeframe = core.Timeframe

	// Flow describes one application-level flow in a flow query.
	Flow = core.Flow

	// FlowKind is the flow class (fixed, variable, independent).
	FlowKind = core.FlowKind

	// FlowInfo is the answer to a flow query.
	FlowInfo = core.FlowInfo

	// FlowResult is one flow's entry in a FlowInfo.
	FlowResult = core.FlowResult

	// Graph is the annotated logical topology from a topology query.
	Graph = core.Graph

	// LinkInfo annotates one logical link.
	LinkInfo = core.LinkInfo

	// NodeInfo annotates one node.
	NodeInfo = core.NodeInfo

	// Modeler answers Remos queries; obtain one from NewModeler.
	Modeler = core.Modeler

	// Source supplies the Modeler with topology and measurements: a
	// local Collector, a TCP client to a collector daemon, or a merge
	// of several.
	Source = collector.Source

	// Config parameterizes NewModeler.
	Config = core.Config

	// ChannelKey names one directed link channel in measurement queries
	// (e.g. Modeler.DataAge).
	ChannelKey = collector.ChannelKey

	// AgentHealth is one agent's collection-health snapshot: its state
	// machine position, consecutive-failure count, and the circuit
	// breaker's next allowed probe time.
	AgentHealth = collector.AgentHealth

	// HealthState is an agent's position in the health state machine.
	HealthState = collector.HealthState

	// FaultInjector scripts deterministic agent failures on a testbed's
	// SNMP plane (see Testbed.Faults).
	FaultInjector = faults.Injector

	// FailoverSource is the replicated Source returned by
	// DialCollectors: it routes each query to the preferred healthy
	// collector replica and fails over transparently when one dies.
	FailoverSource = collector.FailoverSource

	// ReplicaStatus is one replica's health snapshot
	// (FailoverSource.Replicas).
	ReplicaStatus = collector.ReplicaStatus

	// CheckpointInfo describes a restored collector checkpoint.
	CheckpointInfo = collector.CheckpointInfo

	// TelemetryRegistry is the dependency-free metrics registry
	// (counters, gauges, quartile summaries, request spans) every layer
	// of the stack records into. Pass one in Config.Telemetry to observe
	// the Modeler's query path.
	TelemetryRegistry = telemetry.Registry

	// TelemetrySnapshot is a point-in-time copy of a registry's metrics
	// — what the daemon's "stats" op and -debug-addr endpoint serve.
	TelemetrySnapshot = telemetry.Snapshot

	// SpanRecord is one finished request span (trace ID, layer name,
	// timing, per-layer attributes).
	SpanRecord = telemetry.SpanRecord

	// WatchRequest names a collector-level subscription: a query kind
	// (version, util, load) plus a change threshold.
	WatchRequest = collector.WatchRequest

	// WatchUpdate is one pushed delta from a collector-level watch,
	// carrying the overflow/resync/final robustness marks.
	WatchUpdate = collector.WatchUpdate

	// WatchHandle is a live collector-level subscription (receive on C,
	// stop with Cancel, inspect transport failures with Err).
	WatchHandle = collector.WatchHandle

	// WatchSource is a Source that supports push subscriptions: the
	// in-process Collector, the TCP client, and FailoverSource.
	WatchSource = collector.WatchSource

	// FeedPayload is one WatchFeed replication update: a Full state
	// snapshot or an epoch delta, stamped with the producer's HA lease
	// term. Exported so downstream feed consumers (read replicas,
	// standby collectors, replica-of-replica chains) can speak the feed
	// protocol without reaching into collector internals.
	FeedPayload = collector.FeedPayload

	// FeedCursor tracks one feed subscription's replication progress;
	// pass a zero cursor to FeedSource.FeedSince to start from a Full
	// snapshot.
	FeedCursor = collector.FeedCursor

	// FeedSource is a Source able to stream its state as WatchFeed
	// payloads — implemented by the in-process Collector; any source
	// implementing it can sit upstream of a ReadReplica.
	FeedSource = collector.FeedSource

	// WireTopo is the wire form of a discovered topology as carried in
	// feed payloads and checkpoint files; decode with
	// FeedPayload.Topology.
	WireTopo = collector.WireTopo

	// WireNode is the wire form of one topology node.
	WireNode = collector.WireNode

	// WireLink is the wire form of one topology link.
	WireLink = collector.WireLink

	// WatchOptions tunes Modeler.WatchGraph / Modeler.WatchFlowInfo
	// (material-change threshold, delivery buffer).
	WatchOptions = core.WatchOptions

	// GraphUpdate is one recomputed topology answer from WatchGraph.
	GraphUpdate = core.GraphUpdate

	// FlowInfoUpdate is one recomputed flow answer from WatchFlowInfo.
	FlowInfoUpdate = core.FlowInfoUpdate

	// GraphWatch is a live WatchGraph subscription.
	GraphWatch = core.GraphWatch

	// FlowInfoWatch is a live WatchFlowInfo subscription.
	FlowInfoWatch = core.FlowInfoWatch

	// MatrixInfo is one batched flow-matrix answer (Modeler.QueryMatrix):
	// row-major bandwidth and latency matrices over Srcs × Dsts with
	// per-entry validity and the epoch/term of the pinned snapshot it
	// was computed from.
	MatrixInfo = core.MatrixInfo

	// MatrixRequest is the wire form of a batched matrix query as
	// carried by the "matrix" collector op (clients normally use
	// Modeler.QueryMatrix instead).
	MatrixRequest = collector.MatrixRequest

	// MatrixAnswer is the wire form of a batched matrix answer.
	MatrixAnswer = collector.MatrixAnswer

	// MatrixSource is implemented by sources that answer matrix batches
	// natively in one round trip — dialed clients (DialCollector),
	// failover groups (DialCollectors), and in-process sources wired to
	// a batched kernel.
	MatrixSource = collector.MatrixSource
)

// Collector-level watch kinds (WatchRequest.Kind).
const (
	// WatchVersion pushes one update per collector data-version change.
	WatchVersion = collector.WatchVersion
	// WatchUtil pushes a channel's utilization when it moves materially.
	WatchUtil = collector.WatchUtil
	// WatchLoad pushes a host's CPU load when it moves materially.
	WatchLoad = collector.WatchLoad
	// WatchFeed is the replication feed consumed by read replicas: a
	// full state snapshot on subscribe, epoch-keyed deltas after.
	// Applications normally never subscribe to it directly — run a
	// ReadReplica (or remos-replica) instead.
	WatchFeed = collector.WatchFeed
)

// Typed query-lifecycle errors; test with errors.Is. Every way a query
// can fail for lifecycle (rather than semantic) reasons maps to one of
// these, so applications can branch on "try again elsewhere/later"
// versus "the question itself was bad".
var (
	// ErrServerBusy is the typed refusal a collector daemon at its
	// connection cap answers with.
	ErrServerBusy = collector.ErrServerBusy

	// ErrDeadlineExceeded is returned when a query's time budget runs
	// out — locally (the context deadline passed) or remotely (the
	// server refused to compute an answer the caller had already
	// abandoned). It also matches context.DeadlineExceeded.
	ErrDeadlineExceeded = collector.ErrDeadlineExceeded

	// ErrLoadShed is the typed refusal of an overloaded daemon whose
	// admission queue is full; RetryAfter extracts the server's hint.
	ErrLoadShed = collector.ErrLoadShed

	// ErrFrameTooLarge rejects an oversized or corrupt wire frame.
	ErrFrameTooLarge = collector.ErrFrameTooLarge

	// ErrTooManySubscriptions is the typed refusal of a daemon at its
	// watch-subscription cap; the failover layer routes around it.
	ErrTooManySubscriptions = collector.ErrTooManySubscriptions

	// ErrStaleReplica is the typed refusal of a read replica whose
	// replication feed has been quiet past its staleness fence (or
	// that has not yet applied its first snapshot): the replica is
	// alive but refuses to present old state as fresh. The failover
	// layer routes around it without marking the replica down.
	ErrStaleReplica = collector.ErrStaleReplica

	// ErrNotLeader is the typed refusal of a hot-standby collector
	// (remos-collector -standby-of): the daemon is healthy but not the
	// pair's current lease holder. The refusal carries the leader's
	// address — LeaderHint extracts it — and the failover layer
	// re-routes to it in one hop.
	ErrNotLeader = collector.ErrNotLeader

	// ErrMatrixTooLarge is the typed, non-retryable refusal of a daemon
	// asked for a matrix whose N×M admission weight exceeds its
	// configured capacity; split the request or query a bigger daemon.
	ErrMatrixTooLarge = collector.ErrMatrixTooLarge

	// ErrMatrixUnsupported is returned by endpoints that do not serve
	// the batched "matrix" op; Modeler.QueryMatrix falls back to
	// computing the matrix locally when it sees this.
	ErrMatrixUnsupported = collector.ErrMatrixUnsupported
)

// LeaderHint extracts the leader's address from an ErrNotLeader chain;
// ok is false when the refusing standby did not know the leader.
func LeaderHint(err error) (addr string, ok bool) {
	return collector.LeaderHint(err)
}

// RetryAfter extracts the retry-after hint from a load-shed error
// chain; ok is false when err carries none.
func RetryAfter(err error) (d time.Duration, ok bool) {
	return collector.RetryAfterHint(err)
}

// IsLifecycleError reports whether err is one of the typed lifecycle
// errors (deadline, cancellation, shed, busy) rather than a semantic
// error about the query itself.
func IsLifecycleError(err error) bool { return collector.IsLifecycleError(err) }

// NewTelemetryRegistry creates a metrics registry, typically passed as
// Config.Telemetry so the Modeler's query spans and latency quartiles
// are recorded.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewTraceID mints a process-unique request trace ID.
func NewTraceID() string { return telemetry.NewTraceID() }

// WithTrace returns ctx carrying a trace ID. Queries issued under the
// returned context stamp the ID into span records on every layer they
// cross — including the collector daemon on the far side of the wire —
// so one slow query can be followed end to end. Queries whose context
// carries no trace get one minted automatically at the API edge.
func WithTrace(ctx context.Context, id string) context.Context {
	return telemetry.WithTrace(ctx, id)
}

// TraceFrom extracts the trace ID from ctx ("" when none is set).
func TraceFrom(ctx context.Context) string { return telemetry.TraceFrom(ctx) }

// Flow classes (§4.2 of the paper).
const (
	FixedFlow       = core.FixedFlow
	VariableFlow    = core.VariableFlow
	IndependentFlow = core.IndependentFlow
)

// Node kinds.
const (
	ComputeNode = graph.Compute
	NetworkNode = graph.Network
)

// Agent health states (see Modeler.Health).
const (
	// AgentHealthy: the last collection attempt succeeded.
	AgentHealthy = collector.Healthy
	// AgentDegraded: recent failures, but the breaker is still probing
	// at full rate.
	AgentDegraded = collector.Degraded
	// AgentDown: enough consecutive failures that attempts are throttled
	// to an exponential-backoff schedule; queries are served from the
	// surviving topology with decaying accuracy.
	AgentDown = collector.Down
)

// Timeframe constructors.
var (
	// TFCapacity queries invariant physical capacities.
	TFCapacity = core.TFCapacity
	// TFCurrent queries the most recent measurements.
	TFCurrent = core.TFCurrent
	// TFHistory queries a trailing measurement window (seconds).
	TFHistory = core.TFHistory
	// TFFuture queries a prediction horizon (seconds ahead).
	TFFuture = core.TFFuture
)

// NewModeler creates a Modeler over a measurement source.
func NewModeler(cfg Config) *Modeler { return core.New(cfg) }

// DialCollector connects to a collector daemon's TCP query service and
// returns it as a Source.
func DialCollector(addr string) (Source, error) { return collector.Dial(addr) }

// DialCollectors connects to several daemons serving the same domain —
// collectors, read replicas (remos-replica), or a mix — and returns a
// failover Source: queries go to the preferred healthy endpoint, fail
// over transparently when it dies, and downed endpoints are re-probed
// in the background. Typed refusals (busy, shed, stale replica) route
// to the next endpoint without marking the refusing one down, so a
// replica fenced by a feed partition rejoins the rotation the moment
// it resyncs. A standby collector's ErrNotLeader refusal carries the
// leader's address, and the failover layer jumps straight to it. At
// least one endpoint must be reachable at dial time.
//
// The initial probe order is a seeded shuffle of addrs, not the list
// order: a fleet of clients all configured with the same endpoint list
// spreads its first connections across the replicas instead of
// stampeding the one listed first. Health-based failover then takes
// over — routing follows live endpoints, not positions. Replicas()
// still reports addrs in the caller's order.
func DialCollectors(addrs ...string) (*FailoverSource, error) {
	return collector.DialFailover(addrs, collector.FailoverConfig{Shuffle: true})
}

// Read-replica re-exports: a ReadReplica subscribes to a collector's
// replication feed, mirrors the state locally, and serves the full
// query surface from the mirror (see cmd/remos-replica for the
// daemon).
type (
	// ReadReplica is an in-process read replica; it implements Source
	// and can be served over TCP with the same machinery as a
	// collector.
	ReadReplica = replica.Replica

	// ReplicaConfig parameterizes a ReadReplica (feed address,
	// staleness fence, resync backoff).
	ReplicaConfig = replica.Config

	// ReplicaState is the replica lifecycle state.
	ReplicaState = replica.State
)

// Replica lifecycle states (see ReadReplica.State).
const (
	// ReplicaSyncing: no snapshot applied yet; queries refuse.
	ReplicaSyncing = replica.Syncing
	// ReplicaLive: fresh within the lag threshold.
	ReplicaLive = replica.Live
	// ReplicaLagging: feed quiet, still inside the staleness fence;
	// answers carry honestly extrapolated ages.
	ReplicaLagging = replica.Lagging
	// ReplicaFenced: feed quiet past the fence; queries refuse with
	// ErrStaleReplica until the feed resumes.
	ReplicaFenced = replica.Fenced
)

// NewReadReplica builds a read replica syncing from the collector at
// cfg.FeedAddr; call Start on it, then optionally WaitSynced.
func NewReadReplica(cfg ReplicaConfig) *ReadReplica { return replica.New(cfg) }

// matrixConfig wires the batched flow-matrix kernel into a server
// config: every remos-served endpoint answers the "matrix" wire op
// through a lazily-snapshotting Modeler over the same source. Sources
// that already forward matrices natively (a dialed Client) are left
// to the server's own MatrixSource passthrough.
func matrixConfig(src Source) collector.ServerConfig {
	if _, ok := src.(collector.MatrixSource); ok {
		return collector.ServerConfig{}
	}
	return collector.ServerConfig{Matrix: core.MatrixHandler(core.New(core.Config{Source: src}))}
}

// ServeSource exposes any Source (e.g. a ReadReplica) on a TCP address
// with the standard query/watch service, including the batched
// "matrix" op; returns the bound address and a shutdown function.
func ServeSource(src Source, addr string) (string, func() error, error) {
	srv, err := collector.ServeConfig(src, addr, matrixConfig(src))
	if err != nil {
		return "", nil, err
	}
	return srv.Addr(), srv.Close, nil
}

// MergeSources combines several collectors into one Source (the paper's
// "multiple cooperating Collectors").
func MergeSources(sources ...Source) Source { return collector.Merge(sources...) }

// LoadHistorySource reads a measurement dump written by
// Testbed.SaveHistory (or a collector daemon) and returns it as an
// offline Source: a Modeler over it answers queries about the recorded
// network without any live collector.
func LoadHistorySource(r io.Reader) (Source, error) { return collector.LoadHistory(r) }

// SelectNodes runs the paper's §7.2 greedy clustering on live Remos
// measurements: choose k well-connected hosts from pool, starting from
// start. It returns the chosen hosts in selection order.
func SelectNodes(m *Modeler, pool []NodeID, start NodeID, k int, tf Timeframe) ([]NodeID, error) {
	res, err := cluster.FromModeler(m, pool, start, k, cluster.TestbedMetric(), tf)
	if err != nil {
		return nil, err
	}
	return res.Nodes, nil
}

// Testbed is a fully wired simulated deployment: the Figure 3 testbed
// (or a custom topology) with SNMP agents, a running Collector, and a
// Modeler — everything an example or experiment needs. Time is virtual:
// advance it with Run.
type Testbed struct {
	Clock     *simclock.Clock
	Network   *netsim.Network
	Agents    *snmp.AttachedAgents
	Collector *collector.Collector
	Modeler   *Modeler

	// Faults scripts deterministic failures on the path between the
	// collector and the agents: blackhole windows, probabilistic loss,
	// added latency, response corruption, flaps. Experiments use it to
	// study how queries degrade when parts of the network stop answering.
	Faults *FaultInjector
}

// NewTestbed builds the standard simulated testbed of the paper's
// Figure 3 (hosts m-1..m-8, routers aspen/timberline/whiteface, 100 Mbps
// links) with a collector polling every 2 virtual seconds.
func NewTestbed() (*Testbed, error) {
	return NewTestbedOn(topology.Testbed())
}

// LoadTopology parses a topofile description (see internal/topofile for
// the format: `host NAME`, `router NAME [internal=BW]`,
// `link A B 100Mbps 0.5ms`) for use with NewTestbedOn.
func LoadTopology(text string) (*graph.Graph, error) {
	return topofile.ParseString(text)
}

// FormatTopology renders a graph in topofile form.
func FormatTopology(g *graph.Graph) string { return topofile.Format(g) }

// NewTestbedOn builds a simulated deployment over a custom topology.
func NewTestbedOn(g *graph.Graph) (*Testbed, error) {
	clk := simclock.New()
	n, err := netsim.New(clk, g)
	if err != nil {
		return nil, err
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	// All collector traffic crosses the fault injector, which is inert
	// until the experiment scripts a failure. The fixed seed keeps
	// probabilistic faults reproducible run to run.
	inj := faults.New(att.Registry, clk, 1)
	col := collector.New(collector.Config{
		Client:        snmp.NewClient(inj, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    2,
		PerHopLatency: topology.PerHopLatency,
	})
	if err := col.Start(); err != nil {
		return nil, err
	}
	return &Testbed{
		Clock:     clk,
		Network:   n,
		Agents:    att,
		Collector: col,
		Modeler:   NewModeler(Config{Source: col}),
		Faults:    inj,
	}, nil
}

// Run advances virtual time by d seconds, executing everything scheduled
// in that span (collector polls, traffic, transfers).
func (t *Testbed) Run(d float64) { t.Clock.Advance(d) }

// After schedules fn to run d virtual seconds from now; the callback
// receives the virtual time in seconds.
func (t *Testbed) After(d float64, label string, fn func(now float64)) {
	t.Clock.After(d, label, func(ts simclock.Time) { fn(float64(ts)) })
}

// Now returns the current virtual time in seconds.
func (t *Testbed) Now() float64 { return float64(t.Clock.Now()) }

// Hosts returns the testbed's compute nodes.
func (t *Testbed) Hosts() []NodeID { return t.Network.Graph().ComputeNodes() }

// SaveHistory writes the testbed collector's topology and measurement
// history to w for later offline analysis via LoadHistorySource.
func (t *Testbed) SaveHistory(w io.Writer) error { return t.Collector.SaveHistory(w) }

// ServeCollector exposes the testbed's collector on a TCP address
// (e.g. "127.0.0.1:0") for out-of-process Modelers; returns the bound
// address and a shutdown function.
func (t *Testbed) ServeCollector(addr string) (string, func() error, error) {
	srv, err := collector.ServeConfig(t.Collector, addr, matrixConfig(t.Collector))
	if err != nil {
		return "", nil, err
	}
	return srv.Addr(), srv.Close, nil
}

// CollectorReplica is one TCP endpoint serving a testbed's collector —
// one member of a replica set for failover experiments. Kill it with
// Close and bring it back on the same address with Restart.
type CollectorReplica struct {
	src  collector.Source
	cfg  collector.ServerConfig
	addr string
	srv  *collector.Server
}

// Addr returns the replica's bound address.
func (r *CollectorReplica) Addr() string { return r.addr }

// Close kills this replica (simulating a daemon crash). In-flight and
// future calls to it fail until Restart.
func (r *CollectorReplica) Close() error {
	if r.srv == nil {
		return nil
	}
	srv := r.srv
	r.srv = nil
	return srv.Close()
}

// Restart re-serves the collector on the replica's original address.
func (r *CollectorReplica) Restart() error {
	if r.srv != nil {
		return nil
	}
	srv, err := collector.ServeConfig(r.src, r.addr, r.cfg)
	if err != nil {
		return err
	}
	r.srv = srv
	return nil
}

// ServeReplicas exposes the testbed's collector on n independent TCP
// endpoints — a deterministic stand-in for n replica daemons sharing
// one network, for exercising client failover end to end. Close every
// replica when done.
func (t *Testbed) ServeReplicas(n int) ([]*CollectorReplica, error) {
	cfg := matrixConfig(t.Collector)
	var reps []*CollectorReplica
	for i := 0; i < n; i++ {
		srv, err := collector.ServeConfig(t.Collector, "127.0.0.1:0", cfg)
		if err != nil {
			for _, r := range reps {
				r.Close()
			}
			return nil, err
		}
		reps = append(reps, &CollectorReplica{src: t.Collector, cfg: cfg, addr: srv.Addr(), srv: srv})
	}
	return reps, nil
}

// SaveCheckpoint writes the testbed collector's full state (topology,
// windows, counters, health, poll statistics) for warm-restart via
// Collector.RestoreCheckpoint.
func (t *Testbed) SaveCheckpoint(w io.Writer) error { return t.Collector.SaveCheckpoint(w) }
