package remos_test

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/ha"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/remos"
)

// countingTransport records the virtual timestamp of every SNMP
// request a collector issues, so the drill can prove two collectors
// never polled concurrently: zero overlap means the deposed leader's
// last request strictly precedes the successor's first.
type countingTransport struct {
	inner snmp.Transport
	clk   *simclock.Clock

	mu    sync.Mutex
	times []float64
}

func (ct *countingTransport) RoundTrip(addr string, req []byte) ([]byte, error) {
	// Polls run inside clk.Advance under the driver lock, so reading
	// the clock here is ordered; the recorder has its own lock because
	// the test's assertions read it from outside.
	now := float64(ct.clk.Now())
	ct.mu.Lock()
	ct.times = append(ct.times, now)
	ct.mu.Unlock()
	return ct.inner.RoundTrip(addr, req)
}

func (ct *countingTransport) stats() (n int, first, last float64) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if len(ct.times) == 0 {
		return 0, 0, 0
	}
	return len(ct.times), ct.times[0], ct.times[len(ct.times)-1]
}

// haSource is the feedSource plus the HA status passthrough, so the
// server stamps lease terms on responses and watch updates.
type haSource struct {
	*feedSource
}

func (s *haSource) HAStatus() (term uint64, leader bool, ok bool) {
	return s.col.HAStatus()
}

// TestChaosLeaderFailover is the hot-standby acceptance drill: a
// leader/standby collector pair over one simulated estate, a read
// replica fed by whichever leads, and a failover client. The leader is
// killed mid-stream; the standby must promote within the lease bound
// and bump the term; the replica must resync exactly once onto the new
// leader; a revived zombie of the old leader must be term-fenced by
// clients; and the healed old leader must rejoin as standby. All of it
// with zero overlapping poll rounds and no goroutine leaks.
func TestChaosLeaderFailover(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const ttl, hb = 3.0, 1.0

	// --- the shared estate: one virtual network, two collectors ---
	clk := simclock.New()
	net, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(net, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	traffic.Blast(net, "m-6", "m-8", 60e6)
	mkCol := func(tr snmp.Transport) *collector.Collector {
		return collector.New(collector.Config{
			Client:        snmp.NewClient(tr, snmp.DefaultCommunity),
			Clock:         clk,
			Addrs:         addrs,
			PollPeriod:    2,
			PerHopLatency: topology.PerHopLatency,
		})
	}
	trA := &countingTransport{inner: att.Registry, clk: clk}
	trB := &countingTransport{inner: att.Registry, clk: clk}
	colA, colB := mkCol(trA), mkCol(trB)

	var mu sync.Mutex // serializes clock driver, servers, and HA sync
	srcA := &haSource{&feedSource{&lockedSource{mu: &mu, col: colA}}}
	srcB := &haSource{&feedSource{&lockedSource{mu: &mu, col: colB}}}

	// Gates read the node through an atomic so a server can exist
	// before (and survive re-creation of) its HA node.
	var nodePtrA, nodePtrB atomic.Pointer[ha.Node]
	gateFor := func(p *atomic.Pointer[ha.Node]) func(string) error {
		return func(op string) error {
			if n := p.Load(); n != nil {
				return n.Gate(op)
			}
			return &collector.NotLeaderError{}
		}
	}
	scfg := func(p *atomic.Pointer[ha.Node]) collector.ServerConfig {
		return collector.ServerConfig{DefaultBudget: 2 * time.Second, Gate: gateFor(p)}
	}
	srvA, err := collector.ServeConfig(srcA, "127.0.0.1:0", scfg(&nodePtrA))
	if err != nil {
		t.Fatal(err)
	}
	addrA := srvA.Addr()
	srvB, err := collector.ServeConfig(srcB, "127.0.0.1:0", scfg(&nodePtrB))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	addrB := srvB.Addr()

	// --- the pair ---
	lease := ha.NewMemoryLease(clk)
	serialize := func(fn func()) {
		mu.Lock()
		defer mu.Unlock()
		fn()
	}
	mkNode := func(col *collector.Collector, id, peer string, onPromote func(uint64)) *ha.Node {
		n, err := ha.New(ha.Config{
			Collector: col,
			Clock:     clk,
			Lease:     lease,
			ID:        id,
			PeerAddr:  peer,
			LeaseTTL:  ttl,
			Heartbeat: hb,
			Client:    collector.ClientConfig{CallTimeout: 2 * time.Second},
			Serialize: serialize,
			OnPromote: onPromote,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	var promotedAt simclock.Time // written under mu (OnPromote runs in the heartbeat)
	nodeA := mkNode(colA, addrA, addrB, nil)
	nodeB := mkNode(colB, addrB, addrA, func(term uint64) {
		if term > 1 {
			promotedAt = clk.Now()
		}
	})
	nodePtrA.Store(nodeA)
	nodePtrB.Store(nodeB)
	mu.Lock()
	err = nodeA.Start(true)
	mu.Unlock()
	if err != nil {
		t.Fatalf("start leader: %v", err)
	}
	mu.Lock()
	err = nodeB.Start(false)
	mu.Unlock()
	if err != nil {
		t.Fatalf("start standby: %v", err)
	}

	// Real-time clock driver, 20 virtual seconds per wall second.
	stopClock := func() {}
	{
		done := make(chan struct{})
		var wg sync.WaitGroup
		var once sync.Once
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					mu.Lock()
					clk.Advance(0.2)
					mu.Unlock()
				case <-done:
					return
				}
			}
		}()
		stopClock = func() { once.Do(func() { close(done) }); wg.Wait() }
	}
	defer stopClock()

	// --- replica and failover client ---
	rep := remos.NewReadReplica(remos.ReplicaConfig{
		FeedAddrs:     []string{addrA, addrB},
		MaxStaleness:  5 * time.Second,
		LagThreshold:  time.Second,
		ResyncBackoff: 25 * time.Millisecond,
		Seed:          *chaosSeed,
		Telemetry:     telemetry.NewRegistry(),
	})
	rep.Start()
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = rep.WaitSynced(ctx)
	cancel()
	if err != nil {
		t.Fatalf("replica never synced off the leader: %v", err)
	}

	fsrc, err := collector.DialFailover([]string{addrA, addrB}, collector.FailoverConfig{
		Client:        collector.ClientConfig{CallTimeout: 2 * time.Second},
		ProbeInterval: 25 * time.Millisecond,
		BackoffBase:   25 * time.Millisecond,
		BackoffMax:    100 * time.Millisecond,
		Seed:          *chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fsrc.Close()

	// A live watch through the failover layer: its updates carry the
	// term, and across the failover the client must see terms only
	// ever increase — the client-visible face of split-brain fencing.
	topo, err := fsrc.Topology()
	if err != nil {
		t.Fatal(err)
	}
	var backbone remos.ChannelKey
	for _, l := range topo.Graph.Links() {
		if l.A == "aspen" && l.B == "timberline" {
			backbone = topo.Key(l, graph.AtoB)
		}
	}
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	wh, err := fsrc.Watch(wctx, collector.WatchRequest{Kind: collector.WatchUtil, Key: backbone, Span: 10})
	if err != nil {
		t.Fatal(err)
	}
	var wmu sync.Mutex
	var watchTerms []uint64
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for u := range wh.C {
			if u.Term != 0 {
				wmu.Lock()
				watchTerms = append(watchTerms, u.Term)
				wmu.Unlock()
			}
		}
	}()

	// --- steady state ---
	waitUntil(t, 10*time.Second, "standby synced from leader feed", func() bool {
		mu.Lock()
		defer mu.Unlock()
		_, err := colB.Topology()
		return err == nil
	})
	if n, _, _ := trB.stats(); n != 0 {
		t.Fatalf("standby polled agents %d times before promotion", n)
	}
	waitUntil(t, 10*time.Second, "leader serving backbone samples", func() bool {
		_, err := fsrc.Utilization(backbone, 10)
		return err == nil
	})
	if term, leader, on := colA.HAStatus(); !on || !leader || term != 1 {
		t.Fatalf("leader HA status: term=%d leader=%v on=%v", term, leader, on)
	}

	// --- kill the leader mid-stream ---
	mu.Lock()
	nodeA.Kill()
	killedAt := clk.Now()
	mu.Unlock()
	pollsA, _, lastPollA := trA.stats()
	srvA.Close()

	waitUntil(t, 10*time.Second, "standby promotion", func() bool {
		return nodeB.Role() == ha.RoleLeader
	})
	mu.Lock()
	promoted := promotedAt
	mu.Unlock()
	if promoted == 0 {
		t.Fatal("OnPromote never fired")
	}
	if d := float64(promoted - killedAt); d > ttl+hb+1e-9 {
		t.Fatalf("promotion took %.2f virtual seconds; bound is %.2f", d, ttl+hb)
	}
	if nodeB.Term() != 2 {
		t.Fatalf("promoted term = %d, want 2", nodeB.Term())
	}

	// Zero overlapping poll rounds: A's requests all precede the kill,
	// B's all follow the promotion.
	if n, _, last := trA.stats(); n != pollsA || last > float64(killedAt) {
		t.Fatalf("dead leader polled after kill: %d -> %d requests, last at t=%.2f (killed t=%.2f)",
			pollsA, n, last, float64(killedAt))
	}
	waitUntil(t, 10*time.Second, "new leader polling", func() bool {
		n, _, _ := trB.stats()
		return n > 0
	})
	if _, first, _ := trB.stats(); first <= lastPollA {
		t.Fatalf("poll overlap: B first polled at t=%.2f, A last at t=%.2f", first, lastPollA)
	}
	if _, first, _ := trB.stats(); first < float64(promoted) {
		t.Fatalf("B polled at t=%.2f before its promotion at t=%.2f", first, float64(promoted))
	}

	// The replica rotates to the new leader, resyncing exactly once.
	waitUntil(t, 10*time.Second, "replica on the new term", func() bool {
		return rep.Status().Term == 2
	})
	if got := rep.Telemetry().Snapshot().Counters["replica.resyncs"]; got != 1 {
		t.Fatalf("replica.resyncs = %d, want exactly 1 (counters: %v)",
			got, rep.Telemetry().Snapshot().Counters)
	}

	// Queries keep working against the new leader.
	if _, err := fsrc.Utilization(backbone, 10); err != nil {
		t.Fatalf("post-failover query: %v", err)
	}

	// --- zombie: revive the deposed leader's server, no HA node ---
	// Its collector still believes it leads at term 1, so its answers
	// are stamped with the stale term; the failover client must fence
	// them and stay on the term-2 leader.
	var srvZ *collector.Server
	waitUntil(t, 5*time.Second, "rebinding the old leader's address", func() bool {
		s, err := collector.ServeConfig(srcA, addrA, collector.ServerConfig{DefaultBudget: 2 * time.Second})
		if err != nil {
			return false
		}
		srvZ = s
		return true
	})
	fenced := func() uint64 {
		return fsrc.Telemetry().Snapshot().Counters["failover.fencing.rejections"]
	}
	waitUntil(t, 10*time.Second, "stale-term answers fenced", func() bool {
		if _, err := fsrc.Utilization(backbone, 10); err != nil {
			t.Fatalf("query during zombie phase: %v", err)
		}
		return fenced() > 0
	})
	if n, _, _ := trA.stats(); n != pollsA {
		t.Fatal("zombie server revived polling")
	}
	srvZ.Close()

	// --- heal: the old leader rejoins, asking for leadership ---
	// The lease is held at term 2, so it must land as standby and sync
	// its collector off the new leader.
	nodeA2 := mkNode(colA, addrA, addrB, nil)
	nodePtrA.Store(nodeA2)
	var srvA2 *collector.Server
	waitUntil(t, 5*time.Second, "re-serving the healed leader", func() bool {
		s, err := collector.ServeConfig(srcA, addrA, scfg(&nodePtrA))
		if err != nil {
			return false
		}
		srvA2 = s
		return true
	})
	defer srvA2.Close()
	mu.Lock()
	err = nodeA2.Start(true)
	mu.Unlock()
	if err != nil {
		t.Fatalf("restart old leader: %v", err)
	}
	if nodeA2.Role() != ha.RoleStandby {
		t.Fatalf("healed old leader grabbed leadership: role=%v", nodeA2.Role())
	}
	waitUntil(t, 10*time.Second, "healed standby synced to term 2", func() bool {
		term, leader, on := colA.HAStatus()
		return on && !leader && term == 2
	})
	waitUntil(t, 10*time.Second, "healed standby applied the leader feed", func() bool {
		return colA.Telemetry().Snapshot().Counters["collector.feed.applied.full"] > 0
	})
	if nodeB.Role() != ha.RoleLeader || nodeB.Term() != 2 {
		t.Fatalf("leadership moved during heal: role=%v term=%d", nodeB.Role(), nodeB.Term())
	}
	if got := colB.Telemetry().Snapshot().Counters["ha.promotions"]; got != 1 {
		t.Fatalf("ha.promotions = %d, want 1", got)
	}
	if n, _, _ := trA.stats(); n != pollsA {
		t.Fatal("rejoined standby polled agents")
	}

	// Watch-stream fencing: the terms delivered to the client never
	// decreased, and both terms were observed across the failover.
	waitUntil(t, 10*time.Second, "watch stream reached term 2", func() bool {
		wmu.Lock()
		defer wmu.Unlock()
		return len(watchTerms) > 0 && watchTerms[len(watchTerms)-1] == 2
	})
	wmu.Lock()
	for i := 1; i < len(watchTerms); i++ {
		if watchTerms[i] < watchTerms[i-1] {
			t.Fatalf("watch terms went backwards: %v", watchTerms)
		}
	}
	sawTerm1 := watchTerms[0] == 1
	wmu.Unlock()
	if !sawTerm1 {
		t.Log("watch stream started after the failover; term-1 phase unobserved")
	}

	// --- exact convergence: freeze time, let the feed drain ---
	stopClock()
	waitUntil(t, 10*time.Second, "replica caught up to the leader's epoch", func() bool {
		v, ok := colB.DataVersion()
		return ok && rep.Status().Epoch == v
	})
	mu.Lock()
	topoB, errTopoB := colB.Topology()
	samplesB, errSampB := colB.Samples(backbone)
	mu.Unlock()
	if errTopoB != nil || errSampB != nil {
		t.Fatalf("leader state read: %v / %v", errTopoB, errSampB)
	}
	topoR, err := rep.Topology()
	if err != nil {
		t.Fatalf("replica topology: %v", err)
	}
	if len(topoR.Graph.Nodes()) != len(topoB.Graph.Nodes()) {
		t.Fatalf("replica topology diverged: %d nodes vs %d",
			len(topoR.Graph.Nodes()), len(topoB.Graph.Nodes()))
	}
	samplesR, err := rep.Samples(backbone)
	if err != nil {
		t.Fatalf("replica samples: %v", err)
	}
	if len(samplesR) != len(samplesB) {
		t.Fatalf("replica has %d backbone samples, leader %d", len(samplesR), len(samplesB))
	}
	for i := range samplesB {
		if samplesR[i] != samplesB[i] {
			t.Fatalf("sample %d diverged: replica %+v, leader %+v", i, samplesR[i], samplesB[i])
		}
	}

	// --- teardown and goroutine hygiene ---
	wcancel()
	wh.Cancel()
	<-watchDone
	fsrc.Close()
	rep.Close()
	srvA2.Close()
	srvB.Close()
	mu.Lock()
	nodeA2.Kill()
	nodeB.Kill()
	mu.Unlock()
	nodeA2.Wait()
	nodeB.Wait()
	waitUntil(t, 10*time.Second, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}
