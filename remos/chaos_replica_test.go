package remos_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/remos"
)

// TestChaosReplicaPartition is the replication chaos drill: a replica
// under continuous concurrent query load has its feed blackholed past
// the staleness fence, heals, and must come back coherent. The global
// invariants, checked across every concurrently issued query:
//
//   - zero unmarked-fresh answers: once the feed is dark, every
//     successful answer carries a data age that includes the partition
//     (ages only grow while no updates apply), and past the fence
//     every query is the typed ErrStaleReplica — never stale data
//     presented as fresh, never an untyped error;
//   - the failover client keeps answering throughout by routing to the
//     collector, without marking the replica Down;
//   - after the heal the replica converges to the collector's exact
//     epoch and sample-for-sample window contents (no Seq gaps — a
//     missed delta would leave a hole the comparison catches);
//   - a replica restarted mid-partition cold-syncs once the feed
//     heals;
//   - nothing leaks: goroutine count returns to baseline.
//
// Run it under -race: the interesting bugs here are feed-apply vs
// query-path races on the copy-on-write store.
func TestChaosReplicaPartition(t *testing.T) {
	baseline := runtime.NumGoroutine()
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(20)

	var mu sync.Mutex
	ls := &feedSource{&lockedSource{mu: &mu, col: tb.Collector}}
	feedSrv, err := collector.Serve(ls, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feedAddr := feedSrv.Addr()
	querySrv, err := collector.Serve(ls, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer querySrv.Close()
	stopClock := driveClock(tb, &mu)
	defer stopClock()

	const fence = time.Second
	rep := remos.NewReadReplica(remos.ReplicaConfig{
		FeedAddr:      feedAddr,
		MaxStaleness:  fence,
		LagThreshold:  fence / 4,
		ResyncBackoff: 25 * time.Millisecond,
		Seed:          *chaosSeed,
	})
	rep.Start()
	defer rep.Close()
	waitUntil(t, 10*time.Second, "replica synced", func() bool {
		return rep.State() == remos.ReplicaLive
	})

	topo, err := rep.Topology()
	if err != nil {
		t.Fatal(err)
	}
	var key collector.ChannelKey
	for _, l := range topo.Graph.Links() {
		if (l.A == "m-6" && l.B == "timberline") || (l.A == "timberline" && l.B == "m-6") {
			key = topo.Key(l, l.DirFrom("m-6"))
		}
	}

	// Continuous concurrent query load on the replica for the whole
	// drill: 4 workers recording (age, error) outcomes with a phase
	// stamp. Phase 0 = live, 1 = partitioned, 2 = healed.
	var phase atomic.Int32
	var killWall atomic.Int64 // wall nanos of the feed kill
	type outcome struct {
		phase   int32
		age     float64
		stale   bool
		err     error
		atNanos int64
	}
	var outMu sync.Mutex
	var outcomes []outcome
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				st, err := rep.Utilization(key, 6)
				o := outcome{phase: phase.Load(), atNanos: time.Now().UnixNano()}
				if err != nil {
					o.err = err
					o.stale = errors.Is(err, remos.ErrStaleReplica)
				} else {
					o.age = st.Age
				}
				outMu.Lock()
				outcomes = append(outcomes, o)
				outMu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	// Failover client: replica preferred, collector fallback; must
	// answer in every phase.
	fsrc, err := remos.DialCollectors(mustServe(t, rep), querySrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fsrc.Close()

	// Phase 0: live for a while.
	time.Sleep(400 * time.Millisecond)
	if _, err := fsrc.Topology(); err != nil {
		t.Fatalf("live-phase failover query: %v", err)
	}

	// Phase 1: blackhole the feed past the fence.
	phase.Store(1)
	killWall.Store(time.Now().UnixNano())
	feedSrv.Close()
	// A second replica restarted "mid-delta": it must sit in Syncing
	// (refusing typed) until the heal, then cold-sync.
	rep2 := remos.NewReadReplica(remos.ReplicaConfig{
		FeedAddr:      feedAddr,
		MaxStaleness:  fence,
		ResyncBackoff: 25 * time.Millisecond,
		Seed:          *chaosSeed + 1,
	})
	rep2.Start()
	defer rep2.Close()
	if _, err := rep2.Utilization(key, 6); !errors.Is(err, remos.ErrStaleReplica) {
		t.Fatalf("unsynced replica answered: err = %v, want ErrStaleReplica", err)
	}

	deadline := time.Now().Add(fence + 800*time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := fsrc.Topology(); err != nil {
			t.Fatalf("failover query during partition: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if rep.State() != remos.ReplicaFenced {
		t.Fatalf("replica state %v after %v dark, want fenced", rep.State(), fence+800*time.Millisecond)
	}
	if st := fsrc.Replicas()[0].State; st == collector.Down {
		t.Fatal("partitioned replica marked Down; stale refusals must not down it")
	}

	// Phase 2: heal. Both replicas must converge.
	phase.Store(2)
	feedSrv2, err := collector.Serve(ls, feedAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer feedSrv2.Close()
	waitUntil(t, 10*time.Second, "replica live again", func() bool {
		return rep.State() == remos.ReplicaLive
	})
	waitUntil(t, 10*time.Second, "restarted replica synced", func() bool {
		return rep2.State() == remos.ReplicaLive
	})
	close(stopLoad)
	loadWG.Wait()

	// Audit the recorded outcomes.
	killAt := killWall.Load()
	var preFenceOK, fencedRefusals int
	for _, o := range outcomes {
		switch o.phase {
		case 1:
			sincePartition := time.Duration(o.atNanos - killAt).Seconds()
			if o.err == nil {
				// Every pre-fence answer must wear the partition in its
				// age: ages only move forward while the feed is dark.
				// (Small slack for an update applied just before kill.)
				if o.age+0.25 < sincePartition {
					t.Fatalf("unmarked-fresh answer %.2fs into partition: age %.2fs", sincePartition, o.age)
				}
				preFenceOK++
			} else if o.stale {
				fencedRefusals++
			} else if !remos.IsLifecycleError(o.err) {
				t.Fatalf("untyped error during partition: %v", o.err)
			}
		case 2:
			if o.err != nil && !o.stale && !remos.IsLifecycleError(o.err) {
				t.Fatalf("untyped error after heal: %v", o.err)
			}
		}
	}
	if preFenceOK == 0 {
		t.Fatal("no degraded-marked answers recorded before the fence")
	}
	if fencedRefusals == 0 {
		t.Fatal("no typed stale refusals recorded after the fence")
	}

	// Convergence: freeze the clock, let the feed drain, and require
	// exact agreement — same epoch, same samples. A single missed or
	// reordered delta (a Seq gap the resync logic failed to catch)
	// breaks this.
	stopClock()
	waitUntil(t, 10*time.Second, "replica drained to collector epoch", func() bool {
		mu.Lock()
		colVer, _ := tb.Collector.DataVersion()
		mu.Unlock()
		repVer, _ := rep.DataVersion()
		rep2Ver, _ := rep2.DataVersion()
		return repVer == colVer && rep2Ver == colVer
	})
	mu.Lock()
	want, err := tb.Collector.Samples(key)
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*remos.ReadReplica{"partitioned": rep, "restarted": rep2} {
		got, err := r.Samples(key)
		if err != nil {
			t.Fatalf("%s replica samples: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s replica holds %d samples, collector %d — a delta was lost",
				name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s replica sample %d = %+v, collector %+v", name, i, got[i], want[i])
			}
		}
	}

	// Teardown: nothing may leak.
	fsrc.Close()
	rep.Close()
	rep2.Close()
	feedSrv2.Close()
	querySrv.Close()
	closeServed(t)
	waitUntil(t, 10*time.Second, fmt.Sprintf("goroutines back near %d", baseline), func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

// servedCloser tracks servers started by mustServe for teardown.
var servedMu sync.Mutex
var served []func() error

func mustServe(t *testing.T, src remos.Source) string {
	t.Helper()
	addr, stop, err := remos.ServeSource(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	servedMu.Lock()
	served = append(served, stop)
	servedMu.Unlock()
	return addr
}

func closeServed(t *testing.T) {
	t.Helper()
	servedMu.Lock()
	defer servedMu.Unlock()
	for _, stop := range served {
		stop()
	}
	served = nil
}
