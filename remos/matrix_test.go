package remos_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/remos"
)

// TestMatrixOverWire proves the matrix op crosses the wire unchanged: a
// modeler over a dialed client forwards the whole batch as one "matrix"
// frame, and the answer is entry-for-entry identical to the local
// kernel over the same collector — same floats, same validity, same
// epoch stamp.
func TestMatrixOverWire(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.StartCBR("m-1", "m-4", 25e6)
	tb.Run(30)
	addr, shutdown, err := tb.ServeCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	src, err := remos.DialCollector(addr)
	if err != nil {
		t.Fatal(err)
	}

	remote := remos.NewModeler(remos.Config{Source: src})
	local := remos.NewModeler(remos.Config{Source: tb.Collector})
	hosts := tb.Hosts()
	tf := remos.TFHistory(20)

	rm, err := remote.QueryMatrix(hosts, hosts, tf)
	if err != nil {
		t.Fatalf("matrix over wire: %v", err)
	}
	lm, err := local.QueryMatrix(hosts, hosts, tf)
	if err != nil {
		t.Fatalf("matrix locally: %v", err)
	}
	if rm.Epoch == 0 || rm.Epoch != lm.Epoch {
		t.Fatalf("epoch over wire %d, local %d; want equal and nonzero", rm.Epoch, lm.Epoch)
	}
	for i := range hosts {
		for j := range hosts {
			if rm.Valid[i][j] != lm.Valid[i][j] ||
				rm.Bandwidth[i][j] != lm.Bandwidth[i][j] ||
				rm.Latency[i][j] != lm.Latency[i][j] {
				t.Fatalf("entry (%s,%s): wire (%v %v %v) != local (%v %v %v)",
					hosts[i], hosts[j],
					rm.Bandwidth[i][j], rm.Latency[i][j], rm.Valid[i][j],
					lm.Bandwidth[i][j], lm.Latency[i][j], lm.Valid[i][j])
			}
			if !rm.Valid[i][j] {
				t.Fatalf("entry (%s,%s) invalid on a healthy testbed", hosts[i], hosts[j])
			}
		}
	}

	// Rectangular N×M shape survives the round trip.
	srcs, dsts := hosts[:3], hosts[3:]
	rect, err := remote.QueryMatrix(srcs, dsts, tf)
	if err != nil {
		t.Fatalf("rectangular matrix over wire: %v", err)
	}
	if len(rect.Bandwidth) != len(srcs) || len(rect.Bandwidth[0]) != len(dsts) {
		t.Fatalf("rectangular shape %dx%d, want %dx%d",
			len(rect.Bandwidth), len(rect.Bandwidth[0]), len(srcs), len(dsts))
	}
}

// TestMatrixAdmissionRefusal proves a matrix is priced by its area: a
// batch whose weight the server's admission gate can never grant is
// refused with the typed, non-retryable ErrMatrixTooLarge — before any
// computation — while small matrices keep flowing through the same
// gate.
func TestMatrixAdmissionRefusal(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10)

	mod := core.New(core.Config{Source: tb.Collector})
	srv, err := collector.ServeConfig(tb.Collector, "127.0.0.1:0", collector.ServerConfig{
		MaxInflight: 4, // weight 17 of a 64×64 batch can never be granted
		Matrix:      core.MatrixHandler(mod),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dialed, err := remos.DialCollector(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	src := dialed.(remos.MatrixSource)

	big := make([]remos.NodeID, 64)
	for i := range big {
		big[i] = remos.NodeID(fmt.Sprintf("h-%d", i))
	}
	ctx := context.Background()
	_, err = src.MatrixQuery(ctx, &remos.MatrixRequest{Srcs: big, Dsts: big, TFKind: 1})
	if !errors.Is(err, remos.ErrMatrixTooLarge) {
		t.Fatalf("64x64 batch against a 4-unit gate: err = %v, want ErrMatrixTooLarge", err)
	}
	if remos.IsLifecycleError(err) {
		t.Fatalf("ErrMatrixTooLarge must be authoritative, not a retryable lifecycle refusal: %v", err)
	}

	hosts := tb.Hosts()[:2]
	if _, err := src.MatrixQuery(ctx, &remos.MatrixRequest{Srcs: hosts, Dsts: hosts, TFKind: 1}); err != nil {
		t.Fatalf("small matrix through the same gate: %v", err)
	}

	// The absolute cell cap refuses independently of the gate.
	capped, err := collector.ServeConfig(tb.Collector, "127.0.0.1:0", collector.ServerConfig{
		MaxMatrixCells: 16,
		Matrix:         core.MatrixHandler(mod),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer capped.Close()
	cdialed, err := remos.DialCollector(capped.Addr())
	if err != nil {
		t.Fatal(err)
	}
	csrc := cdialed.(remos.MatrixSource)
	five := tb.Hosts()[:5]
	if _, err := csrc.MatrixQuery(ctx, &remos.MatrixRequest{Srcs: five, Dsts: five, TFKind: 1}); !errors.Is(err, remos.ErrMatrixTooLarge) {
		t.Fatalf("5x5 batch against MaxMatrixCells 16: err = %v, want ErrMatrixTooLarge", err)
	}
}

// TestMatrixFencedReplica proves the matrix op honors replica staleness
// fencing: a read replica serves matrices while its feed is fresh and
// refuses them with the typed ErrStaleReplica once the feed dies and
// the fence trips — the serving modeler re-checks freshness per call,
// cached snapshot or not.
func TestMatrixFencedReplica(t *testing.T) {
	tb, err := remos.NewTestbed()
	if err != nil {
		t.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(20)

	feedSrv, err := collector.Serve(tb.Collector, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rep := remos.NewReadReplica(remos.ReplicaConfig{
		FeedAddr:      feedSrv.Addr(),
		MaxStaleness:  400 * time.Millisecond,
		LagThreshold:  150 * time.Millisecond,
		ResyncBackoff: 25 * time.Millisecond,
		Seed:          1,
	})
	rep.Start()
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rep.WaitSynced(ctx); err != nil {
		t.Fatalf("replica never synced: %v", err)
	}
	repAddr, repStop, err := remos.ServeSource(rep, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer repStop()
	rdialed, err := remos.DialCollector(repAddr)
	if err != nil {
		t.Fatal(err)
	}
	src := rdialed.(remos.MatrixSource)

	hosts := tb.Hosts()[:4]
	mi, err := src.MatrixQuery(ctx, &remos.MatrixRequest{Srcs: hosts, Dsts: hosts, TFKind: 2, Span: 10})
	if err != nil {
		t.Fatalf("matrix from a fresh replica: %v", err)
	}
	if mi.Epoch == 0 {
		t.Fatal("replica-served matrix missing epoch stamp")
	}

	feedSrv.Close()
	waitUntil(t, 5*time.Second, "replica fenced", func() bool {
		return rep.State() == remos.ReplicaFenced
	})
	_, err = src.MatrixQuery(ctx, &remos.MatrixRequest{Srcs: hosts, Dsts: hosts, TFKind: 2, Span: 10})
	if !errors.Is(err, remos.ErrStaleReplica) {
		t.Fatalf("matrix from a fenced replica: err = %v, want ErrStaleReplica", err)
	}
}

// BenchmarkMatrixWire measures the wire-level win the matrix op exists
// for: answering an 8×8 flow matrix as one batched round trip versus
// 2·8·7 scalar round trips (bandwidth and latency per pair — what the
// old per-pair surface cost a remote consumer). The batched op's p99 is
// reported as p99_ms and gated by scripts/bench.sh -compare.
func BenchmarkMatrixWire(b *testing.B) {
	tb, err := remos.NewTestbed()
	if err != nil {
		b.Fatal(err)
	}
	tb.StartBlast("m-6", "m-8", 60e6)
	tb.Run(30)
	addr, shutdown, err := tb.ServeCollector("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer shutdown()
	src, err := remos.DialCollector(addr)
	if err != nil {
		b.Fatal(err)
	}
	mod := remos.NewModeler(remos.Config{Source: src})
	hosts := tb.Hosts()
	tf := remos.TFHistory(20)
	ctx := context.Background()

	b.Run("per-pair", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range hosts {
				for _, d := range hosts {
					if s == d {
						continue
					}
					if _, err := mod.AvailableBandwidthCtx(ctx, s, d, tf); err != nil {
						b.Fatal(err)
					}
					if _, err := mod.PathLatencyCtx(ctx, s, d); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("matrix", func(b *testing.B) {
		b.ReportAllocs()
		lat := make([]float64, 0, b.N)
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := mod.QueryMatrixCtx(ctx, hosts, hosts, tf); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
		}
		sort.Float64s(lat)
		b.ReportMetric(lat[(len(lat)-1)*99/100], "p99_ms")
	})
}
