package repro_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestCLIEndToEnd builds the remos-collector and remos-query binaries,
// starts the daemon with interfering traffic, and queries it over TCP —
// the full Figure 2 deployment, with real processes and real sockets.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs a daemon")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	collectorBin := build("remos-collector")
	queryBin := build("remos-query")

	daemon := exec.Command(collectorBin,
		"-listen", "127.0.0.1:0",
		"-speed", "50", // 50 virtual seconds per wall second
		"-blast", "m-6,m-8,90",
		"-blast", "m-8,m-6,90",
	)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// Scrape the bound address from the daemon's banner.
	addrRe := regexp.MustCompile(`collector query service on tcp://(\S+)`)
	var addr string
	scanner := bufio.NewScanner(stdout)
	deadline := time.After(20 * time.Second)
	found := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			if m := addrRe.FindStringSubmatch(scanner.Text()); m != nil {
				found <- m[1]
				break
			}
		}
	}()
	select {
	case addr = <-found:
	case <-deadline:
		t.Fatal("daemon never announced its address")
	}

	// Give the accelerated virtual clock time to accumulate samples
	// (~0.5 s wall = ~25 virtual seconds = ~12 poll rounds).
	time.Sleep(1 * time.Second)

	query := func(args ...string) string {
		cmd := exec.Command(queryBin, append([]string{"-addr", addr}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("remos-query %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Topology over the wire.
	graphOut := query("graph")
	if !strings.Contains(graphOut, "timberline") || !strings.Contains(graphOut, "10 logical links") {
		t.Fatalf("graph output:\n%s", graphOut)
	}

	// The loaded path reports reduced availability.
	bwOut := query("-window", "15", "bw", "m-4", "m-7")
	var mbps float64
	if _, err := fmt.Sscanf(bwOut, "m-4 -> m-7: %f Mbps", &mbps); err != nil {
		t.Fatalf("bw output: %q: %v", bwOut, err)
	}
	if mbps > 25 || mbps < 2 {
		t.Fatalf("availability over loaded link = %v Mbps (output %q)", mbps, bwOut)
	}

	// A clean path reports full capacity.
	cleanOut := query("-window", "15", "bw", "m-1", "m-2")
	if _, err := fmt.Sscanf(cleanOut, "m-1 -> m-2: %f Mbps", &mbps); err != nil {
		t.Fatalf("bw output: %q: %v", cleanOut, err)
	}
	if mbps < 95 {
		t.Fatalf("clean availability = %v Mbps", mbps)
	}

	// A flow query from the shell.
	flowsOut := query("-window", "15", "flows", "fixed:m-1,m-2,5", "indep:m-4,m-7")
	if !strings.Contains(flowsOut, "fixed") || !strings.Contains(flowsOut, "independent") {
		t.Fatalf("flows output:\n%s", flowsOut)
	}
	if !strings.Contains(flowsOut, "satisfied=true") {
		t.Fatalf("5 Mbps fixed flow not satisfied:\n%s", flowsOut)
	}

	// Latency and selection.
	latOut := query("latency", "m-1", "m-8")
	if !strings.Contains(latOut, "ms one-way") {
		t.Fatalf("latency output: %q", latOut)
	}
	selOut := query("-window", "15", "select", "m-4", "4")
	for _, want := range []string{"m-4", "m-5", "m-1", "m-2"} {
		if !strings.Contains(selOut, want) {
			t.Fatalf("selection %q missing %s", selOut, want)
		}
	}
	if strings.Contains(selOut, "m-7") || strings.Contains(selOut, "m-8") {
		t.Fatalf("selection %q includes traffic-side nodes", selOut)
	}
}
