// Package repro is a from-scratch Go reproduction of Remos — Lowekamp,
// Miller, Gross, Subhlok, Steenkiste, Sutherland, "A Resource Query
// Interface for Network-Aware Applications", HPDC 1998.
//
// The public API lives in the remos package; the substrates (network
// simulator, SNMP, collector, modeler, clustering, Fx runtime,
// applications) live under internal/. See README.md for a tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
//
// The benchmarks in bench_test.go regenerate each of the paper's tables
// and figures:
//
//	go test -bench=. -benchmem .
package repro
