package repro_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuf collects daemon banner lines; the scanner goroutine writes
// while the test reads.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) WriteLine(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.WriteString(s + "\n")
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startDaemon launches a remos-collector with the given flags, scrapes
// the bound query address from its banner, and returns the process,
// the address, and a buffer accumulating every banner line seen.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *lockedBuf) {
	t.Helper()
	daemon := exec.Command(bin, args...)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	banner := new(lockedBuf)
	addrRe := regexp.MustCompile(`collector query service on tcp://(\S+)`)
	found := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			banner.WriteLine(line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case found <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-found:
		return daemon, addr, banner
	case <-time.After(20 * time.Second):
		daemon.Process.Kill()
		daemon.Wait()
		t.Fatal("daemon never announced its address")
		return nil, "", nil
	}
}

// TestCLIWarmRestart is the daemon-level warm-restart acceptance run: a
// collector daemon writes periodic checkpoints, is killed with SIGTERM
// (graceful drain + final checkpoint), and a second daemon restarted
// from the checkpoint answers util/age queries immediately — no new
// discovery or poll cycle — with data ages that include the downtime.
func TestCLIWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs daemons")
	}
	dir := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		return out
	}
	collectorBin := build("remos-collector")
	queryBin := build("remos-query")
	ckpt := filepath.Join(dir, "collector.ckpt")

	// First life: accumulate measurements fast, checkpoint every 10
	// virtual seconds (0.2 wall seconds at 50x).
	daemon1, addr1, _ := startDaemon(t, collectorBin,
		"-listen", "127.0.0.1:0", "-speed", "50",
		"-blast", "m-6,m-8,90",
		"-checkpoint", ckpt, "-checkpoint-every", "10")
	defer func() {
		daemon1.Process.Kill()
		daemon1.Wait()
	}()

	// Wait until measurements exist and a periodic checkpoint landed.
	time.Sleep(1 * time.Second)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic checkpoint never appeared")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Graceful shutdown: SIGTERM drains and writes a final checkpoint.
	if err := daemon1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon1.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	_ = addr1

	// Downtime: ≥0.2 wall seconds = ≥10 virtual seconds at 50x.
	time.Sleep(300 * time.Millisecond)

	// Second life: restore from the checkpoint. The huge -poll keeps
	// new samples from landing before our queries, so a fresh poll
	// cycle cannot be what answers them.
	daemon2, addr2, banner2 := startDaemon(t, collectorBin,
		"-listen", "127.0.0.1:0", "-speed", "50", "-poll", "1000",
		"-checkpoint", ckpt)
	defer func() {
		daemon2.Process.Kill()
		daemon2.Wait()
	}()

	query := func(args ...string) string {
		cmd := exec.Command(queryBin, append([]string{"-addr", addr2}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("remos-query %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// First queries, immediately: topology and utilization both come
	// from the restored state.
	graphOut := query("graph")
	if !strings.Contains(graphOut, "timberline") || !strings.Contains(graphOut, "10 logical links") {
		t.Fatalf("graph after warm restart:\n%s", graphOut)
	}
	bwOut := query("-window", "15", "bw", "m-4", "m-7")
	var mbps float64
	if _, err := fmt.Sscanf(bwOut, "m-4 -> m-7: %f Mbps", &mbps); err != nil {
		t.Fatalf("bw output %q: %v", bwOut, err)
	}
	if mbps > 25 || mbps < 2 {
		t.Fatalf("restored availability on the loaded path = %v Mbps (want the pre-crash ~10)", mbps)
	}

	// Data age includes the downtime: ≥10 virtual seconds passed while
	// no daemon was running, and -poll 1000 means no sample since.
	ageOut := query("age", "timberline", "whiteface")
	var age float64
	if _, err := fmt.Sscanf(ageOut, "timberline -> whiteface: data age %fs", &age); err != nil {
		t.Fatalf("age output %q: %v", ageOut, err)
	}
	if age < 10 {
		t.Fatalf("data age %vs does not include the downtime (want >= 10 virtual seconds)", age)
	}

	// The daemon said so itself.
	if !strings.Contains(banner2.String(), "warm start") {
		t.Fatalf("daemon did not warm-start:\n%s", banner2.String())
	}
}
