// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§8), plus ablations over the design choices DESIGN.md
// calls out. Each table benchmark executes the full experiment —
// selection, traffic, program run — once per iteration; the reported
// ns/op is the wall cost of regenerating that artifact (all network time
// is virtual).
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fx"
	"repro/internal/graph"
	"repro/internal/ha"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topogen"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/remos"

	airshedapp "repro/internal/apps/airshed"
	fftapp "repro/internal/apps/fft"
)

// --- Figures -------------------------------------------------------------

// BenchmarkFigure1Aggregate regenerates Figure 1's two readings: edge
// links vs switch backplanes as the bottleneck.
func BenchmarkFigure1Aggregate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fast, slow := experiments.Figure1()
		if fast.AggregateBandwidth != 40e6 || slow.AggregateBandwidth != 10e6 {
			b.Fatalf("aggregate = %v / %v", fast.AggregateBandwidth, slow.AggregateBandwidth)
		}
	}
}

// BenchmarkFigure4Clustering regenerates Figure 4: greedy selection
// around busy links.
func BenchmarkFigure4Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4()
		if len(r.Selected) != 4 {
			b.Fatalf("selected %v", r.Selected)
		}
	}
}

// --- Table 1: static node selection --------------------------------------

func benchTable1Row(b *testing.B, program string, nodes int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		found := false
		for _, r := range rows {
			if r.Program == program && r.Nodes == nodes {
				found = true
				b.ReportMetric(r.RemosTime, "virtualSec/run")
			}
		}
		if !found {
			b.Fatalf("row %s/%d missing", program, nodes)
		}
	}
}

// BenchmarkTable1 regenerates the full Table 1 (all six rows).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable1FFT512x2 regenerates the table's first row and reports
// the measured virtual execution time (paper: 0.462 s).
func BenchmarkTable1FFT512x2(b *testing.B) { benchTable1Row(b, "FFT (512)", 2) }

// BenchmarkTable1Airshed5 regenerates the table's last row (paper: 650 s).
func BenchmarkTable1Airshed5(b *testing.B) { benchTable1Row(b, "Airshed", 5) }

// --- Table 2: node selection under traffic --------------------------------

// BenchmarkTable2 regenerates the full Table 2.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		for _, r := range rows {
			if r.PercentIncrease < 40 {
				b.Fatalf("%s/%d: static penalty %.0f%%", r.Program, r.Nodes, r.PercentIncrease)
			}
		}
	}
}

// --- Table 3: runtime adaptation ------------------------------------------

// BenchmarkTable3 regenerates the full Table 3 (eight adaptive/fixed
// Airshed runs). Expensive: seconds per iteration.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// --- Extension studies ------------------------------------------------------

// BenchmarkPredictionStudy regenerates the future-timeframe study
// (4 traffic patterns × 4 predictors).
func BenchmarkPredictionStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if evals := experiments.PredictionStudy(); len(evals) != 16 {
			b.Fatalf("cells = %d", len(evals))
		}
	}
}

// BenchmarkScaleStudy regenerates the federated scale study, one
// sub-benchmark per generated size so bench.sh -compare gates the
// build + poll-round + federated-merge cost growth at each scale point
// independently.
func BenchmarkScaleStudy(b *testing.B) {
	for _, n := range experiments.ScaleStudySizes {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.ScaleStudyAt(n)
				if r.IntraMbps <= 0 || r.CrossMbps <= 0 {
					b.Fatalf("federated queries failed: %+v", r)
				}
			}
		})
	}
}

// BenchmarkOverheadStudy regenerates the poll-period sweep.
func BenchmarkOverheadStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rs := experiments.OverheadStudy(); len(rs) != 5 {
			b.Fatalf("rows = %d", len(rs))
		}
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationSelfTraffic regenerates the §8.3 self-migration
// fallacy comparison.
func BenchmarkAblationSelfTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationSelfTraffic()
		if r.NaiveMigrations <= r.DiscountMigrations {
			b.Fatalf("fallacy did not reproduce: %d vs %d", r.NaiveMigrations, r.DiscountMigrations)
		}
	}
}

// BenchmarkAblationSimultaneousFlowQuery measures the §4.2 design choice
// of answering simultaneous flow queries in one solve, versus issuing
// per-flow queries that ignore internal sharing (and get the answer
// wrong — the benchmark reports the overestimate factor).
func BenchmarkAblationSimultaneousFlowQuery(b *testing.B) {
	tb, err := remos.NewTestbed()
	if err != nil {
		b.Fatal(err)
	}
	tb.Run(10)
	flows := []remos.Flow{
		{Src: "m-4", Dst: "m-7", Kind: remos.IndependentFlow},
		{Src: "m-5", Dst: "m-8", Kind: remos.IndependentFlow},
		{Src: "m-6", Dst: "m-7", Kind: remos.IndependentFlow},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		joint, err := tb.Modeler.QueryFlowInfo(nil, nil, flows, remos.TFCapacity())
		if err != nil {
			b.Fatal(err)
		}
		var solo float64
		for _, f := range flows {
			fi, err := tb.Modeler.QueryFlowInfo(nil, nil, []remos.Flow{f}, remos.TFCapacity())
			if err != nil {
				b.Fatal(err)
			}
			solo += fi.Independent[0].Bandwidth.Median
		}
		var shared float64
		for _, r := range joint.Independent {
			shared += r.Bandwidth.Median
		}
		b.ReportMetric(solo/shared, "soloOverestimate")
	}
}

// BenchmarkAblationSharingPolicy compares max-min against the naive
// proportional sharing model on the same query; the reported metric is
// the fraction of the true leftover bandwidth the proportional model
// fails to promise (§4.2's sharing-policy design choice).
func BenchmarkAblationSharingPolicy(b *testing.B) {
	mk := func(policy core.SharingPolicy) *core.Modeler {
		e := experiments.NewEnvOn(topology.Dumbbell(2, 100, 10))
		for _, l := range e.Net.Graph().Links() {
			if (l.A == "l0" && l.B == "L") || (l.A == "L" && l.B == "l0") {
				e.Net.SetLinkCapacity(l.ID, 2e6)
			}
		}
		if _, err := e.Col.Discover(); err != nil {
			b.Fatal(err)
		}
		mod := core.New(core.Config{Source: e.Col, Sharing: policy})
		e.Clk.Advance(5)
		return mod
	}
	maxminMod := mk(core.ShareMaxMin)
	propMod := mk(core.ShareProportional)
	flows := []core.Flow{
		{Src: "l0", Dst: "r0", Kind: core.IndependentFlow},
		{Src: "l1", Dst: "r1", Kind: core.IndependentFlow},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm, err := maxminMod.QueryFlowInfo(nil, nil, flows, core.TFCapacity())
		if err != nil {
			b.Fatal(err)
		}
		pp, err := propMod.QueryFlowInfo(nil, nil, flows, core.TFCapacity())
		if err != nil {
			b.Fatal(err)
		}
		under := 1 - pp.Independent[1].Bandwidth.Median/mm.Independent[1].Bandwidth.Median
		b.ReportMetric(under, "underPromiseFrac")
	}
}

// BenchmarkAblationTopologyVsFlowMatrix measures the §7.3 observation
// that building the clustering distance matrix from one topology query
// beats O(n²) flow queries.
func BenchmarkAblationTopologyVsFlowMatrix(b *testing.B) {
	tb, err := remos.NewTestbed()
	if err != nil {
		b.Fatal(err)
	}
	tb.Run(10)
	hosts := remos.TestbedHosts()
	b.Run("topology-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tb.Modeler.BandwidthMatrix(hosts, remos.TFHistory(10)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-pair-flow-queries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range hosts {
				for _, d := range hosts {
					if s == d {
						continue
					}
					_, err := tb.Modeler.QueryFlowInfo(nil, nil,
						[]remos.Flow{{Src: s, Dst: d, Kind: remos.IndependentFlow}}, remos.TFHistory(10))
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// --- End-to-end micro-costs -------------------------------------------------

// BenchmarkCollectorPollRound measures one full SNMP poll of the testbed
// (11 agents, 20 directed channels) — the recurring cost a deployment
// pays, which the paper argues must stay low.
func BenchmarkCollectorPollRound(b *testing.B) {
	e := experiments.NewEnv()
	e.Warmup()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Clk.Advance(2) // one poll period
	}
}

// BenchmarkModelerGetGraph measures one remos_get_graph over the full
// testbed with history annotations.
func BenchmarkModelerGetGraph(b *testing.B) {
	e := experiments.NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 60e6)
	e.Warmup()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Mod.GetGraph(nil, core.TFHistory(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelerFlowQuery measures one remos_flow_info with all three
// classes populated.
func BenchmarkModelerFlowQuery(b *testing.B) {
	e := experiments.NewEnv()
	e.Warmup()
	fixed := []core.Flow{{Src: "m-1", Dst: "m-7", Kind: core.FixedFlow, Bandwidth: 2e6}}
	variable := []core.Flow{
		{Src: "m-2", Dst: "m-7", Kind: core.VariableFlow, Bandwidth: 1},
		{Src: "m-3", Dst: "m-8", Kind: core.VariableFlow, Bandwidth: 3},
	}
	ind := []core.Flow{{Src: "m-4", Dst: "m-8", Kind: core.IndependentFlow}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Mod.QueryFlowInfo(fixed, variable, ind, core.TFHistory(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// runConcurrent spreads b.N iterations of fn across exactly `workers`
// goroutines (b.RunParallel pins the goroutine count to GOMAXPROCS,
// which would make the 1/4/16 scaling points machine-dependent).
func runConcurrent(b *testing.B, workers int, fn func() error) {
	b.Helper()
	b.ResetTimer()
	b.ReportAllocs()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				if err := fn(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkModelerGetGraphParallel measures remos_get_graph throughput
// under concurrent callers at 1/4/16 goroutines. Readers share one
// immutable snapshot, plan, and availability memo, so per-op cost should
// stay near-flat as workers are added.
func BenchmarkModelerGetGraphParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", workers), func(b *testing.B) {
			e := experiments.NewEnv()
			traffic.Blast(e.Net, "m-6", "m-8", 60e6)
			e.Warmup()
			ctx := context.Background()
			runConcurrent(b, workers, func() error {
				_, err := e.Mod.GetGraphCtx(ctx, nil, core.TFHistory(10))
				return err
			})
		})
	}
}

// BenchmarkModelerFlowQueryParallel measures remos_flow_info throughput
// under concurrent callers at 1/4/16 goroutines.
func BenchmarkModelerFlowQueryParallel(b *testing.B) {
	fixed := []core.Flow{{Src: "m-1", Dst: "m-7", Kind: core.FixedFlow, Bandwidth: 2e6}}
	variable := []core.Flow{
		{Src: "m-2", Dst: "m-7", Kind: core.VariableFlow, Bandwidth: 1},
		{Src: "m-3", Dst: "m-8", Kind: core.VariableFlow, Bandwidth: 3},
	}
	ind := []core.Flow{{Src: "m-4", Dst: "m-8", Kind: core.IndependentFlow}}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", workers), func(b *testing.B) {
			e := experiments.NewEnv()
			e.Warmup()
			ctx := context.Background()
			runConcurrent(b, workers, func() error {
				_, err := e.Mod.QueryFlowInfoCtx(ctx, fixed, variable, ind, core.TFHistory(10))
				return err
			})
		})
	}
}

// BenchmarkWatchFanout measures the push path end to end: one source
// epoch (a full poll round) fanned out to 1/16/128 TCP watch
// subscribers, each on its own multiplexed connection. ns/op is the
// wall cost of one epoch — poll, change evaluation, and every
// subscriber observing the new version; the spread across sub-counts
// is the fan-out overhead proper.
func BenchmarkWatchFanout(b *testing.B) {
	for _, subs := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			e := experiments.NewEnv()
			e.Warmup()
			srv, err := collector.ServeConfig(e.Col, "127.0.0.1:0", collector.ServerConfig{
				MaxConns: 2 * subs,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			seen := make([]atomic.Uint64, subs)
			clients := make([]*collector.Client, subs)
			for i := 0; i < subs; i++ {
				cl, err := collector.Dial(srv.Addr())
				if err != nil {
					b.Fatal(err)
				}
				clients[i] = cl
				h, err := cl.Watch(ctx, collector.WatchRequest{Kind: collector.WatchVersion})
				if err != nil {
					b.Fatal(err)
				}
				go func(i int, h *collector.WatchHandle) {
					for u := range h.C {
						if u.Epoch > seen[i].Load() {
							seen[i].Store(u.Epoch)
						}
					}
				}(i, h)
			}
			defer func() {
				for _, cl := range clients {
					cl.Close()
				}
			}()

			waitAll := func(target uint64) {
				for i := range seen {
					for seen[i].Load() < target {
						time.Sleep(20 * time.Microsecond)
					}
				}
			}
			// Prime: one epoch through the whole fan-out before timing,
			// so subscription setup is not measured.
			e.Clk.Advance(2)
			if v, ok := e.Col.DataVersion(); ok {
				waitAll(v)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				e.Clk.Advance(2) // one poll period: exactly one version bump
				target, _ := e.Col.DataVersion()
				waitAll(target)
			}
		})
	}
}

// benchFederationEnv is the shared steady-state federation for the
// micro-benchmarks: 100 generated nodes, 3 regions, warmed up.
func benchFederationEnv() *experiments.FederationEnv {
	e := experiments.NewFederationEnv(topogen.Spec{Kind: topogen.KindHier, N: 100, Seed: 11, Regions: 3})
	e.Warmup()
	return e
}

// BenchmarkFederatedMerge measures one federated topology read — the
// local region's full partial composed with two peer regions' summaries
// through the merge — at steady state.
func BenchmarkFederatedMerge(b *testing.B) {
	e := benchFederationEnv()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Views[0].Topology(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFederatedCrossQuery measures one cross-region availability
// query answered through the summarized links, against the intra-region
// full-fidelity baseline in the same view.
func BenchmarkFederatedCrossQuery(b *testing.B) {
	e := benchFederationEnv()
	r0 := e.Topo.Hosts(e.Topo.Regions[0])
	r2 := e.Topo.Hosts(e.Topo.Regions[2])
	mod := e.Mods[0]
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFxIterationUnderContention measures one BSP iteration (compute
// + all-to-all) on the simulator with competing traffic — the simulator's
// end-to-end event cost.
func BenchmarkFxIterationUnderContention(b *testing.B) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		b.Fatal(err)
	}
	traffic.Blast(n, "m-6", "m-8", 60e6)
	rt := &fx.Runtime{Net: n}
	prog := &fx.Program{
		Name: "bench", Iterations: 1,
		Steps: []fx.Step{
			{Name: "w", WorkPerNode: func(p int) float64 { return 0.1 / float64(p) }},
			{Name: "x", Comm: fx.AllToAll(1e6)},
		},
	}
	nodes := []graph.NodeID{"m-1", "m-2", "m-4", "m-5"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.RunToCompletion(prog, nodes)
	}
}

// BenchmarkRealFFT2D runs the actual 2-D FFT computation (the real
// algorithm behind the modeled application).
func BenchmarkRealFFT2D(b *testing.B) {
	n := 256
	m := make([]complex128, n*n)
	for i := range m {
		m[i] = complex(float64(i%31), float64(i%17))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fftapp.Transform2D(m, n)
	}
}

// BenchmarkRealAirshedStep runs the actual advection+chemistry kernel.
func BenchmarkRealAirshedStep(b *testing.B) {
	g := airshedapp.NewGrid(128, 4)
	for s := 0; s < g.Species; s++ {
		for i := range g.C[s] {
			g.C[s][i] = float64(i % 7)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step(0.5, -0.5, 0.01)
	}
}

// BenchmarkReplicaCatchup measures a cold replica resync end to end —
// dial, feed subscription, full gob snapshot over TCP, copy-on-write
// store rebuild — against synthetic star topologies of 8/100/1000
// hosts with seven poll rounds of history. ns/op is the wall time for
// a fresh replica to reach Live; this is the cost a deployment pays
// per partition heal (and its scaling in topology size).
func BenchmarkReplicaCatchup(b *testing.B) {
	for _, hosts := range []int{8, 100, 1000} {
		b.Run(fmt.Sprintf("nodes=%d", hosts), func(b *testing.B) {
			e := experiments.NewEnvOn(topology.Star(hosts, 100, 1000))
			e.Warmup() // seven poll rounds of window history to ship
			srv, err := collector.Serve(e.Col, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ctx := context.Background()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep := remos.NewReadReplica(remos.ReplicaConfig{
					FeedAddr: srv.Addr(),
					Seed:     int64(i) + 1,
				})
				rep.Start()
				if err := rep.WaitSynced(ctx); err != nil {
					b.Fatal(err)
				}
				rep.Close()
			}
		})
	}
}

// benchReplicaModeler wires a Modeler over a live read replica fed by a
// served collector, for comparing the replica query path against the
// direct BenchmarkModelerGetGraph/FlowQuery baselines: the PR 5
// lock-free envelope says sourcing from a replica must stay within 10%
// of sourcing from the collector (enforced by bench.sh -compare against
// the committed baselines).
func benchReplicaModeler(b *testing.B) (*experiments.Env, *core.Modeler, func()) {
	b.Helper()
	e := experiments.NewEnv()
	traffic.Blast(e.Net, "m-6", "m-8", 60e6)
	e.Warmup()
	srv, err := collector.Serve(e.Col, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	rep := remos.NewReadReplica(remos.ReplicaConfig{
		FeedAddr:     srv.Addr(),
		MaxStaleness: -1, // quiescent clock: never fence mid-benchmark
		Seed:         1,
	})
	rep.Start()
	if err := rep.WaitSynced(context.Background()); err != nil {
		b.Fatal(err)
	}
	return e, core.New(core.Config{Source: rep}), func() {
		rep.Close()
		srv.Close()
	}
}

// BenchmarkReplicaModelerGetGraph is BenchmarkModelerGetGraph with the
// Modeler sourced from a read replica instead of the collector.
func BenchmarkReplicaModelerGetGraph(b *testing.B) {
	_, mod, stop := benchReplicaModeler(b)
	defer stop()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mod.GetGraph(nil, core.TFHistory(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicaModelerFlowQuery is BenchmarkModelerFlowQuery with
// the Modeler sourced from a read replica.
func BenchmarkReplicaModelerFlowQuery(b *testing.B) {
	_, mod, stop := benchReplicaModeler(b)
	defer stop()
	fixed := []core.Flow{{Src: "m-1", Dst: "m-7", Kind: core.FixedFlow, Bandwidth: 2e6}}
	variable := []core.Flow{
		{Src: "m-2", Dst: "m-7", Kind: core.VariableFlow, Bandwidth: 1},
		{Src: "m-3", Dst: "m-8", Kind: core.VariableFlow, Bandwidth: 3},
	}
	ind := []core.Flow{{Src: "m-4", Dst: "m-8", Kind: core.IndependentFlow}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mod.QueryFlowInfo(fixed, variable, ind, core.TFHistory(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Collector HA (DESIGN.md §14) ---------------------------------------

// benchPair builds two collectors over one simulated estate for the HA
// benchmarks: one polls as leader, the other stays warm over the feed.
func benchPair(b *testing.B) (*simclock.Clock, [2]*collector.Collector) {
	b.Helper()
	clk := simclock.New()
	net, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		b.Fatal(err)
	}
	att := snmp.Attach(net, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	mk := func() *collector.Collector {
		return collector.New(collector.Config{
			Client:        snmp.NewClient(att.Registry, snmp.DefaultCommunity),
			Clock:         clk,
			Addrs:         addrs,
			PollPeriod:    2,
			PerHopLatency: topology.PerHopLatency,
		})
	}
	traffic.Blast(net, "m-6", "m-8", 60e6)
	return clk, [2]*collector.Collector{mk(), mk()}
}

// BenchmarkPromotionTime measures one leader-failover cycle of a
// hot-standby pair on the virtual clock: kill the leader, drive
// heartbeats until the standby acquires the expired lease and starts
// polling warm, then let the killed daemon rejoin as standby for the
// next iteration. ns/op is the wall cost of the promotion machinery
// (lease churn, role flip, warm collector start); vsec/promotion is
// the virtual promotion delay, bounded by lease TTL + heartbeat
// (TestChaosLeaderFailover asserts the bound).
func BenchmarkPromotionTime(b *testing.B) {
	const ttl, hb = 3.0, 1.0
	clk, cols := benchPair(b)
	lease := ha.NewMemoryLease(clk)
	ids := [2]string{"bench-a", "bench-b"}
	mkNode := func(i int) *ha.Node {
		n, err := ha.New(ha.Config{
			Collector: cols[i],
			Clock:     clk,
			Lease:     lease,
			ID:        ids[i],
			LeaseTTL:  ttl,
			Heartbeat: hb,
		})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}
	var nodes [2]*ha.Node
	nodes[0], nodes[1] = mkNode(0), mkNode(1)
	if err := nodes[0].Start(true); err != nil {
		b.Fatal(err)
	}
	if err := nodes[1].Start(false); err != nil {
		b.Fatal(err)
	}
	clk.Advance(6) // steady state: leader polling, standby observing

	leader := 0
	var vtotal float64
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		standby := 1 - leader
		nodes[leader].Kill()
		killedAt := clk.Now()
		for nodes[standby].Role() != ha.RoleLeader {
			clk.Advance(hb)
		}
		vtotal += float64(clk.Now() - killedAt)
		// Heal: a fresh node over the deposed collector observes the
		// higher term and rejoins as standby.
		nodes[leader].Wait()
		nodes[leader] = mkNode(leader)
		if err := nodes[leader].Start(true); err != nil {
			b.Fatal(err)
		}
		leader = standby
	}
	b.StopTimer()
	b.ReportMetric(vtotal/float64(b.N), "vsec/promotion")
	for _, n := range nodes {
		n.Kill()
		n.Wait()
	}
}

// BenchmarkStandbyFeedLag measures the standby's steady-state sync
// cost: applying one poll round's feed delta onto an already-warm
// collector. This is the per-round lag a standby carries behind its
// leader — the window of samples a promotion could lose.
func BenchmarkStandbyFeedLag(b *testing.B) {
	clk, cols := benchPair(b)
	leader, standby := cols[0], cols[1]
	if err := leader.Start(); err != nil {
		b.Fatal(err)
	}
	defer leader.Stop()
	clk.Advance(14) // window history to ship

	cur := &collector.FeedCursor{}
	full, err := leader.FeedSince(cur)
	if err != nil {
		b.Fatal(err)
	}
	if err := standby.ApplyFeed(full); err != nil {
		b.Fatal(err)
	}
	// Pre-collect the deltas so the timed loop is apply-only.
	payloads := make([]*collector.FeedPayload, 0, b.N)
	for len(payloads) < b.N {
		clk.Advance(2)
		p, err := leader.FeedSince(cur)
		if err != nil {
			b.Fatal(err)
		}
		if p != nil {
			payloads = append(payloads, p)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for _, p := range payloads {
		if err := standby.ApplyFeed(p); err != nil {
			b.Fatal(err)
		}
	}
}
