package netsim

import (
	"math"
	"testing"

	"repro/internal/simclock"
)

// Regression test for the Table 3 deadlock: two priority blasts
// oversubscribing one link must not starve an elastic transfer to a
// literal zero rate — the headroom guarantees progress.
func TestOversubscribedPriorityLeavesHeadroom(t *testing.T) {
	clk, n := dumbbell()
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", RateCap: 90e6, Priority: true})
	n.StartFlow(FlowSpec{Src: "h2", Dst: "h4", RateCap: 90e6, Priority: true})
	var doneAt simclock.Time
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h4", Bytes: 1e5,
		OnComplete: func(now simclock.Time, f *Flow) { doneAt = now }})
	// The elastic flow gets at least the 2% headroom of the 10 Mbps
	// bottleneck: 0.2 Mbps -> 0.1 MB in at most ~4s.
	clk.RunUntil(10)
	if doneAt == 0 {
		t.Fatal("elastic transfer starved by priority traffic")
	}
	want := 1e5 * 8 / (10e6 * PriorityHeadroom)
	if math.Abs(float64(doneAt)-want) > 0.1 {
		t.Fatalf("completed at %v, want ~%v", doneAt, want)
	}
	// The blasts share the remaining 98%.
	for _, f := range n.ActiveFlows() {
		if !f.Spec.Priority {
			continue
		}
		if math.Abs(f.Rate()-10e6*(1-PriorityHeadroom)/2) > 1 {
			t.Fatalf("priority rate = %v", f.Rate())
		}
	}
}

// Priority flows under their cap but within headroom limits keep their
// full rate: the headroom only binds at saturation.
func TestHeadroomOnlyBindsAtSaturation(t *testing.T) {
	_, n := dumbbell()
	f := n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", RateCap: 5e6, Priority: true})
	if math.Abs(f.Rate()-5e6) > 1 {
		t.Fatalf("rate = %v", f.Rate())
	}
}

// Elastic flows with unequal weights split a bottleneck proportionally.
func TestWeightedElasticFlows(t *testing.T) {
	_, n := dumbbell()
	f1 := n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Weight: 1})
	f2 := n.StartFlow(FlowSpec{Src: "h2", Dst: "h4", Weight: 3})
	if math.Abs(f1.Rate()-2.5e6) > 1 || math.Abs(f2.Rate()-7.5e6) > 1 {
		t.Fatalf("rates = %v, %v; want 2.5/7.5 Mbps", f1.Rate(), f2.Rate())
	}
}

func TestPriorityWithoutCapPanics(t *testing.T) {
	_, n := dumbbell()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Priority: true})
}

func TestSetLinkCapacityPanicsOnBadInput(t *testing.T) {
	_, n := dumbbell()
	for name, fn := range map[string]func(){
		"unknown link": func() { n.SetLinkCapacity(999, 1e6) },
		"negative":     func() { n.SetLinkCapacity(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Degrading a link mid-transfer stretches the completion time exactly.
func TestDegradationMidTransfer(t *testing.T) {
	clk, n := dumbbell()
	var doneAt simclock.Time
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Bytes: 10e6 / 8, // 10 Mbit
		OnComplete: func(now simclock.Time, f *Flow) { doneAt = now }})
	// After 0.5s (5 Mbit sent at 10 Mbps), halve the bottleneck.
	clk.Schedule(0.5, "degrade", func(simclock.Time) {
		n.SetLinkCapacity(2, 5e6) // the 10 Mbps core link
	})
	clk.Run(0)
	// Remaining 5 Mbit at 5 Mbps = 1s more: total 1.5s.
	if math.Abs(float64(doneAt)-1.5) > 1e-9 {
		t.Fatalf("done at %v, want 1.5", doneAt)
	}
	if err := n.CheckConservation(1e-9); err != nil {
		t.Fatal(err)
	}
}
