package netsim

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/simclock"
)

// DeliveredBytes returns the total bytes delivered by completed flows.
func (n *Network) DeliveredBytes() float64 { return n.totalDelivered / 8 }

// SetLinkCapacity changes a link's capacity (both directions) at
// runtime — degradation, recovery, or outright failure (capacity 0).
// Active flows are re-allocated immediately; routing stays static, as on
// the paper's testbed, so flows crossing a dead link stall until it
// recovers. Agents report the new capacity as ifSpeed on their next
// poll.
func (n *Network) SetLinkCapacity(id graph.LinkID, capacity float64) {
	l := n.g.Link(id)
	if l == nil {
		panic(fmt.Sprintf("netsim: unknown link %d", id))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("netsim: negative capacity %v", capacity))
	}
	l.Capacity = capacity
	for _, d := range []graph.Dir{graph.AtoB, graph.BtoA} {
		n.capacities[n.chanRes[graph.Channel{Link: id, Dir: d}]] = capacity
	}
	n.recompute()
}

// SetHostLoad sets a background CPU load fraction in [0,1) for a host:
// compute on that host runs at (1-load) of its nominal power. The paper
// focuses on network resources but Remos "does include a simple interface
// to computation and memory resources"; this is the substrate behind it.
func (n *Network) SetHostLoad(id graph.NodeID, load float64) {
	if load < 0 || load >= 1 {
		panic(fmt.Sprintf("netsim: host load %v out of [0,1)", load))
	}
	if n.hostLoad == nil {
		n.hostLoad = make(map[graph.NodeID]float64)
	}
	n.hostLoad[id] = load
}

// HostLoad returns the background CPU load fraction for a host.
func (n *Network) HostLoad(id graph.NodeID) float64 { return n.hostLoad[id] }

// ComputeDuration returns how long `work` units take on a host given its
// power and background load. Panics for non-compute nodes.
func (n *Network) ComputeDuration(id graph.NodeID, work float64) float64 {
	nd := n.g.Node(id)
	if nd == nil || nd.Kind != graph.Compute || nd.ComputePower <= 0 {
		panic(fmt.Sprintf("netsim: %q cannot compute", id))
	}
	eff := nd.ComputePower * (1 - n.hostLoad[id])
	return work / eff
}

// RunCompute schedules `work` units on a host and invokes done when it
// finishes. It returns the completion event.
func (n *Network) RunCompute(id graph.NodeID, work float64, done func(now simclock.Time)) *simclock.Event {
	d := n.ComputeDuration(id, work)
	return n.clock.After(d, "compute:"+string(id), done)
}

// TransferGroup starts a set of finite flows and calls done once when the
// last one completes — the shape of a collective communication step in a
// BSP superstep (the FFT transpose, Airshed redistributions). Flows in
// the group contend with each other (internal sharing, §3) and with
// everything else in the network. An empty group completes immediately
// (at the current time, synchronously).
func (n *Network) TransferGroup(specs []FlowSpec, owner string, done func(now simclock.Time)) {
	pending := 0
	var flows []*Flow
	fire := func(now simclock.Time) {
		if done != nil {
			done(now)
		}
	}
	for _, s := range specs {
		if s.Bytes <= 0 {
			panic("netsim: TransferGroup requires finite flows")
		}
		s.Owner = owner
		pending++
		prev := s.OnComplete
		s.OnComplete = func(now simclock.Time, f *Flow) {
			if prev != nil {
				prev(now, f)
			}
			pending--
			if pending == 0 {
				fire(now)
			}
		}
		flows = append(flows, n.StartFlow(s))
	}
	_ = flows
	if pending == 0 {
		fire(n.clock.Now())
	}
}

// MeasureTransferTime is a convenience for tests and probes: it runs an
// isolated what-if query — if these flows started now, how long would the
// slowest take assuming current competing traffic kept its allocation
// frozen? It does not modify simulator state.
//
// This is the modeler-style computation (predictive), as opposed to
// actually running the flows.
func (n *Network) MeasureTransferTime(specs []FlowSpec) float64 {
	worst := 0.0
	for _, s := range specs {
		p := n.rt.Route(s.Src, s.Dst)
		if p == nil {
			return math.Inf(1)
		}
		// Available bandwidth on the path right now (capacity minus
		// competing usage, floor at a tiny trickle to avoid Inf).
		avail := math.Inf(1)
		for _, ch := range p.Channels() {
			a := n.ChannelCapacity(ch) - n.ChannelRate(ch, "")
			if a < avail {
				avail = a
			}
		}
		if avail < 1 {
			avail = 1
		}
		t := s.Bytes * 8 / avail
		if t > worst {
			worst = t
		}
	}
	return worst
}
