// Package netsim is a deterministic fluid-flow network simulator: the
// stand-in for the paper's physical IP testbed (Figure 3).
//
// The model is flow-level, not packet-level. At any instant a set of flows
// is active; each flow follows a static shortest-hop route; the bandwidth
// each flow receives is the weighted max-min fair allocation over the
// directed link channels (and router backplanes) it crosses — exactly the
// sharing policy Remos assumes of the network (§4.2). Whenever the flow
// set changes, the simulator:
//
//  1. advances per-channel octet counters analytically (rate × elapsed
//     time) — these counters are what the SNMP agents expose, and byte
//     conservation is exact;
//  2. re-solves the max-min allocation;
//  3. reschedules the completion events of finite transfers.
//
// Everything runs on a simclock.Clock, so experiments that take "hours" of
// testbed time finish in milliseconds and are bit-for-bit reproducible.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/maxmin"
	"repro/internal/simclock"
)

// FlowID identifies an active or completed flow.
type FlowID int

// PriorityHeadroom is the fraction of every resource that priority
// (non-responsive) flows can never claim, so elastic flows always make
// progress; see recompute.
const PriorityHeadroom = 0.02

// FlowSpec describes a flow to start.
type FlowSpec struct {
	Src, Dst graph.NodeID

	// Bytes is the transfer size; <= 0 means a persistent flow that runs
	// until stopped (background traffic, long-lived streams).
	Bytes float64

	// RateCap, when positive, limits the sending rate in bits/second
	// (CBR sources). Zero means elastic: take whatever max-min gives.
	RateCap float64

	// Weight scales the max-min share (default 1).
	Weight float64

	// Priority marks a non-responsive source (UDP blaster): it takes its
	// full RateCap before elastic flows share the remainder, like the
	// paper's interfering synthetic traffic. Requires RateCap > 0.
	Priority bool

	// Owner tags the flow's originator ("app", "traffic", ...) so that
	// measurement consumers can discount an application's own traffic —
	// the fix for the paper's §8.3 self-migration fallacy.
	Owner string

	// OnComplete fires when a finite flow delivers its last byte. It runs
	// inside the simulation event, at the completion's virtual time.
	OnComplete func(now simclock.Time, f *Flow)
}

// Flow is a live or finished flow. Fields are owned by the Network; read
// them only from simulation callbacks or between Run calls.
type Flow struct {
	ID    FlowID
	Spec  FlowSpec
	Path  *graph.Path
	Start simclock.Time

	rate      float64 // current allocation, bits/s
	sentBits  float64
	totalBits float64 // target; +Inf for persistent
	done      bool
	completed simclock.Time
	complEv   *simclock.Event
	resources []maxmin.ResourceID
}

// Rate returns the flow's current bandwidth in bits/second.
func (f *Flow) Rate() float64 { return f.rate }

// SentBytes returns the bytes delivered so far.
func (f *Flow) SentBytes() float64 { return f.sentBits / 8 }

// Done reports whether a finite flow has completed.
func (f *Flow) Done() bool { return f.done }

// CompletedAt returns when the flow finished (valid when Done).
func (f *Flow) CompletedAt() simclock.Time { return f.completed }

func (f *Flow) String() string {
	return fmt.Sprintf("flow%d %s->%s rate=%.2fMbps", f.ID, f.Spec.Src, f.Spec.Dst, f.rate/1e6)
}

// Network is the simulator. Construct with New.
type Network struct {
	clock *simclock.Clock
	g     *graph.Graph
	rt    *graph.RouteTable

	// Resource indexing for the max-min solver: one resource per directed
	// channel, plus one per network node with finite internal bandwidth.
	capacities []float64
	chanRes    map[graph.Channel]int
	nodeRes    map[graph.NodeID]int
	resOfChan  []graph.Channel // reverse map for channel resources only

	flows      map[FlowID]*Flow
	order      []FlowID // deterministic iteration
	nextID     FlowID
	lastUpdate simclock.Time

	// counterBits accumulates the total bits ever carried per channel
	// resource index; SNMP agents read these.
	counterBits []float64

	// Conservation bookkeeping: bits delivered by finished flows, and the
	// same weighted by each flow's resource count (a flow crossing h
	// resources contributes h× its bits to the counters).
	totalDelivered        float64
	deliveredWeightedHops float64

	// hostLoad is a background CPU load fraction per host; see compute.go.
	hostLoad map[graph.NodeID]float64

	recomputes uint64
}

// New builds a simulator over the given topology. The route table is
// computed once; the topology must not be mutated afterwards.
func New(clock *simclock.Clock, g *graph.Graph) (*Network, error) {
	rt, err := g.Routes()
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	n := &Network{
		clock:   clock,
		g:       g,
		rt:      rt,
		chanRes: make(map[graph.Channel]int),
		nodeRes: make(map[graph.NodeID]int),
		flows:   make(map[FlowID]*Flow),
	}
	for _, l := range g.Links() {
		for _, d := range []graph.Dir{graph.AtoB, graph.BtoA} {
			ch := graph.Channel{Link: l.ID, Dir: d}
			n.chanRes[ch] = len(n.capacities)
			n.resOfChan = append(n.resOfChan, ch)
			n.capacities = append(n.capacities, l.Capacity)
		}
	}
	for _, id := range g.NetworkNodes() {
		if nd := g.Node(id); nd.InternalBW > 0 {
			n.nodeRes[id] = len(n.capacities)
			n.capacities = append(n.capacities, nd.InternalBW)
		}
	}
	n.counterBits = make([]float64, len(n.capacities))
	return n, nil
}

// Clock returns the simulation clock.
func (n *Network) Clock() *simclock.Clock { return n.clock }

// Graph returns the physical topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Routes returns the static route table (shared with the modeler so that
// predictions and behaviour agree).
func (n *Network) Routes() *graph.RouteTable { return n.rt }

// Recomputes returns how many allocation recomputations have run
// (diagnostic; scales with flow churn).
func (n *Network) Recomputes() uint64 { return n.recomputes }

// resourcesFor maps a path onto solver resources: every directed channel
// plus every transit router with finite internal bandwidth (endpoints'
// hosts never appear in nodeRes).
func (n *Network) resourcesFor(p *graph.Path) []maxmin.ResourceID {
	var out []maxmin.ResourceID
	for _, ch := range p.Channels() {
		out = append(out, maxmin.ResourceID(n.chanRes[ch]))
	}
	for _, node := range p.Nodes {
		if r, ok := n.nodeRes[node]; ok {
			out = append(out, maxmin.ResourceID(r))
		}
	}
	return out
}

// StartFlow begins a flow and returns it. It panics if src/dst are not
// distinct compute nodes with a route — topology bugs, not runtime errors.
func (n *Network) StartFlow(spec FlowSpec) *Flow {
	if spec.Src == spec.Dst {
		panic(fmt.Sprintf("netsim: flow with equal endpoints %s", spec.Src))
	}
	p := n.rt.Route(spec.Src, spec.Dst)
	if p == nil {
		panic(fmt.Sprintf("netsim: no route %s -> %s", spec.Src, spec.Dst))
	}
	if spec.Weight <= 0 {
		spec.Weight = 1
	}
	if spec.Priority && spec.RateCap <= 0 {
		panic("netsim: priority flow requires a positive RateCap")
	}
	f := &Flow{
		ID:    n.nextID,
		Spec:  spec,
		Path:  p,
		Start: n.clock.Now(),
	}
	n.nextID++
	if spec.Bytes > 0 {
		f.totalBits = spec.Bytes * 8
	} else {
		f.totalBits = math.Inf(1)
	}
	f.resources = n.resourcesFor(p)
	n.flows[f.ID] = f
	n.order = append(n.order, f.ID)
	n.recompute()
	return f
}

// StopFlow terminates a flow (persistent or not) immediately. Bytes sent
// so far stay counted. Unknown or finished IDs are no-ops.
func (n *Network) StopFlow(id FlowID) {
	f := n.flows[id]
	if f == nil {
		return
	}
	n.advance()
	n.removeFlow(f)
	n.recomputeAfterRemoval()
}

func (n *Network) removeFlow(f *Flow) {
	if f.complEv != nil {
		n.clock.Cancel(f.complEv)
		f.complEv = nil
	}
	delete(n.flows, f.ID)
	for i, id := range n.order {
		if id == f.ID {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
}

// ActiveFlows returns the live flows in start order.
func (n *Network) ActiveFlows() []*Flow {
	out := make([]*Flow, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.flows[id])
	}
	return out
}

// advance accrues counters and flow progress from lastUpdate to now using
// the current rates. Must run before any allocation change.
func (n *Network) advance() {
	now := n.clock.Now()
	dt := float64(now - n.lastUpdate)
	if dt < 0 {
		panic("netsim: clock moved backwards")
	}
	if dt > 0 {
		for _, id := range n.order {
			f := n.flows[id]
			if f.rate <= 0 {
				continue
			}
			bits := f.rate * dt
			f.sentBits += bits
			if f.sentBits > f.totalBits {
				// Completion events land exactly at the finish time, so
				// overshoot can only be float noise; clamp it.
				f.sentBits = f.totalBits
			}
			for _, r := range f.resources {
				n.counterBits[r] += bits
			}
		}
	}
	n.lastUpdate = now
}

// recompute re-solves the global allocation and reschedules completions.
func (n *Network) recompute() {
	n.advance()
	n.recomputes++
	// Priority (non-responsive) flows are solved first, like the fixed
	// class of §4.2; elastic flows share what remains. The headroom
	// keeps priority traffic from starving elastic flows to an exact
	// zero rate (which would deadlock finite transfers): real
	// non-responsive UDP crushes TCP but never eliminates it.
	cp := &maxmin.ClassedProblem{Capacity: n.capacities, FixedHeadroom: PriorityHeadroom}
	kind := make([]int, len(n.order)) // index within its class
	for i, id := range n.order {
		f := n.flows[id]
		d := maxmin.Demand{
			Resources: f.resources,
			Weight:    f.Spec.Weight,
			Cap:       f.Spec.RateCap,
		}
		if f.Spec.Priority {
			kind[i] = len(cp.Fixed)<<1 | 1
			cp.Fixed = append(cp.Fixed, d)
		} else {
			kind[i] = len(cp.Variable) << 1
			cp.Variable = append(cp.Variable, d)
		}
	}
	res := maxmin.SolveClasses(cp)
	now := n.clock.Now()
	for i, id := range n.order {
		f := n.flows[id]
		if kind[i]&1 == 1 {
			f.rate = res.Fixed[kind[i]>>1]
		} else {
			f.rate = res.Variable[kind[i]>>1]
		}
		if f.complEv != nil {
			n.clock.Cancel(f.complEv)
			f.complEv = nil
		}
		if math.IsInf(f.totalBits, 1) {
			continue
		}
		remaining := f.totalBits - f.sentBits
		fid := f.ID
		if remaining <= 0 {
			// Completed exactly at a recompute boundary. Defer to a
			// zero-delay event: finishing inline would mutate n.order
			// while this loop ranges over it, and completion callbacks
			// may start new flows (re-entrant recompute).
			f.complEv = n.clock.Schedule(now, "flow-complete", func(t simclock.Time) {
				n.completeFlow(fid, t)
			})
			continue
		}
		if f.rate <= 0 {
			continue // starved; will be rescheduled when capacity frees up
		}
		eta := now + simclock.Time(remaining/f.rate)
		f.complEv = n.clock.Schedule(eta, "flow-complete", func(t simclock.Time) {
			n.completeFlow(fid, t)
		})
	}
}

// recomputeAfterRemoval is recompute without the duplicate advance (the
// caller already advanced).
func (n *Network) recomputeAfterRemoval() { n.recompute() }

func (n *Network) completeFlow(id FlowID, now simclock.Time) {
	f := n.flows[id]
	if f == nil || f.done {
		return
	}
	n.advance()
	// Force exact accounting: the event fires precisely at the computed
	// finish time, so remaining bits are float noise.
	short := f.totalBits - f.sentBits
	if short > 0 {
		f.sentBits = f.totalBits
		for _, r := range f.resources {
			n.counterBits[r] += short
		}
	}
	n.finish(f, now)
	n.recomputeAfterRemoval()
}

func (n *Network) finish(f *Flow, now simclock.Time) {
	f.done = true
	f.completed = now
	f.rate = 0
	n.totalDelivered += f.totalBits
	n.deliveredWeightedHops += f.totalBits * float64(len(f.resources))
	n.removeFlow(f)
	if f.Spec.OnComplete != nil {
		f.Spec.OnComplete(now, f)
	}
}

// Sync advances counters to the current time without changing allocations;
// call before reading counters at an arbitrary instant (the SNMP agents
// do).
func (n *Network) Sync() { n.advance() }

// ChannelBits returns the cumulative bits carried by a directed channel.
func (n *Network) ChannelBits(ch graph.Channel) float64 {
	r, ok := n.chanRes[ch]
	if !ok {
		return 0
	}
	return n.counterBits[r]
}

// ChannelRate returns the instantaneous aggregate rate on a channel in
// bits/second, optionally excluding flows with the given owner tag
// (pass "" to include everything).
func (n *Network) ChannelRate(ch graph.Channel, excludeOwner string) float64 {
	r, ok := n.chanRes[ch]
	if !ok {
		return 0
	}
	var sum float64
	for _, id := range n.order {
		f := n.flows[id]
		if excludeOwner != "" && f.Spec.Owner == excludeOwner {
			continue
		}
		for _, fr := range f.resources {
			if int(fr) == r {
				sum += f.rate
			}
		}
	}
	return sum
}

// Channels returns all directed channels in deterministic order.
func (n *Network) Channels() []graph.Channel {
	out := append([]graph.Channel(nil), n.resOfChan...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link != out[j].Link {
			return out[i].Link < out[j].Link
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// ChannelCapacity returns the configured capacity of a channel.
func (n *Network) ChannelCapacity(ch graph.Channel) float64 {
	r, ok := n.chanRes[ch]
	if !ok {
		return 0
	}
	return n.capacities[r]
}

// PathLatency returns the one-way latency along the static route between
// two hosts (the collector's fixed per-hop model rides on link latencies).
func (n *Network) PathLatency(src, dst graph.NodeID) float64 {
	if src == dst {
		return 0
	}
	p := n.rt.Route(src, dst)
	if p == nil {
		return math.Inf(1)
	}
	return p.Latency()
}

// CheckConservation verifies that every channel's counter equals the sum
// of bits its flows pushed through it; returns the first discrepancy. The
// invariant: total counter bits on a flow's channels == hops × flow bits.
// It is cheap and the simulator's main self-check in tests.
func (n *Network) CheckConservation(tol float64) error {
	n.Sync()
	var counted float64
	for _, bits := range n.counterBits {
		counted += bits
	}
	var expected float64
	expected += n.deliveredWeightedHops
	for _, id := range n.order {
		f := n.flows[id]
		expected += f.sentBits * float64(len(f.resources))
	}
	if math.Abs(counted-expected) > tol*(1+expected) {
		return fmt.Errorf("netsim: conservation violated: counters=%v expected=%v", counted, expected)
	}
	return nil
}
