package netsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/simclock"
)

// dumbbell: h1,h2 -- r1 -- r2 -- h3,h4 with a 10 Mbps middle link.
func dumbbell() (*simclock.Clock, *Network) {
	g := graph.New()
	g.AddHost("h1", 1)
	g.AddHost("h2", 1)
	g.AddHost("h3", 1)
	g.AddHost("h4", 1)
	g.AddRouter("r1", 0)
	g.AddRouter("r2", 0)
	g.AddLink("h1", "r1", 100e6, 0.001)
	g.AddLink("h2", "r1", 100e6, 0.001)
	g.AddLink("r1", "r2", 10e6, 0.001)
	g.AddLink("r2", "h3", 100e6, 0.001)
	g.AddLink("r2", "h4", 100e6, 0.001)
	clk := simclock.New()
	n, err := New(clk, g)
	if err != nil {
		panic(err)
	}
	return clk, n
}

func TestSingleFlowCompletionTime(t *testing.T) {
	clk, n := dumbbell()
	// 10 Mbps bottleneck, 10 Mbit transfer -> 1 second.
	var doneAt simclock.Time
	n.StartFlow(FlowSpec{
		Src: "h1", Dst: "h3", Bytes: 10e6 / 8,
		OnComplete: func(now simclock.Time, f *Flow) { doneAt = now },
	})
	clk.Run(0)
	if math.Abs(float64(doneAt)-1.0) > 1e-9 {
		t.Fatalf("completed at %v, want 1.0", doneAt)
	}
	if err := n.CheckConservation(1e-9); err != nil {
		t.Fatal(err)
	}
	if got := n.DeliveredBytes(); math.Abs(got-10e6/8) > 1 {
		t.Fatalf("delivered %v bytes", got)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	clk, n := dumbbell()
	var t1, t2 simclock.Time
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Bytes: 10e6 / 8,
		OnComplete: func(now simclock.Time, f *Flow) { t1 = now }})
	n.StartFlow(FlowSpec{Src: "h2", Dst: "h4", Bytes: 10e6 / 8,
		OnComplete: func(now simclock.Time, f *Flow) { t2 = now }})
	clk.Run(0)
	// Equal shares of 10 Mbps: both finish at 2s.
	if math.Abs(float64(t1)-2.0) > 1e-9 || math.Abs(float64(t2)-2.0) > 1e-9 {
		t.Fatalf("completed at %v, %v, want 2.0 both", t1, t2)
	}
}

func TestLateArrivalSlowsFirstFlow(t *testing.T) {
	clk, n := dumbbell()
	var t1 simclock.Time
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Bytes: 10e6 / 8,
		OnComplete: func(now simclock.Time, f *Flow) { t1 = now }})
	clk.Schedule(0.5, "second", func(simclock.Time) {
		n.StartFlow(FlowSpec{Src: "h2", Dst: "h4", Bytes: 10e6 / 8})
	})
	clk.Run(0)
	// First flow: 0.5s at 10 Mbps (5 Mbit done), then shares at 5 Mbps:
	// remaining 5 Mbit takes 1s -> completes at 1.5s.
	if math.Abs(float64(t1)-1.5) > 1e-9 {
		t.Fatalf("first flow completed at %v, want 1.5", t1)
	}
	if err := n.CheckConservation(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestRateCapCBR(t *testing.T) {
	clk, n := dumbbell()
	f := n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", RateCap: 2e6}) // persistent CBR
	clk.Advance(3)
	n.Sync()
	if math.Abs(f.Rate()-2e6) > 1 {
		t.Fatalf("CBR rate = %v", f.Rate())
	}
	if math.Abs(f.SentBytes()-3*2e6/8) > 1 {
		t.Fatalf("CBR sent %v bytes", f.SentBytes())
	}
	// Elastic flow alongside gets the remaining 8 Mbps.
	e := n.StartFlow(FlowSpec{Src: "h2", Dst: "h4"})
	if math.Abs(e.Rate()-8e6) > 1 {
		t.Fatalf("elastic rate = %v", e.Rate())
	}
	n.StopFlow(f.ID)
	if math.Abs(e.Rate()-10e6) > 1 {
		t.Fatalf("elastic rate after CBR stop = %v", e.Rate())
	}
}

func TestStopFlowAccountsBytes(t *testing.T) {
	clk, n := dumbbell()
	f := n.StartFlow(FlowSpec{Src: "h1", Dst: "h3"})
	clk.Advance(2)
	n.StopFlow(f.ID)
	// 2s at 10 Mbps = 20 Mbit on each of 3 channels.
	ch := f.Path.Channels()[0]
	if math.Abs(n.ChannelBits(ch)-20e6) > 1 {
		t.Fatalf("channel bits = %v", n.ChannelBits(ch))
	}
	if len(n.ActiveFlows()) != 0 {
		t.Fatal("flow still active after stop")
	}
	// Stopping again is a no-op.
	n.StopFlow(f.ID)
}

func TestCountersPerChannelDirectional(t *testing.T) {
	clk, n := dumbbell()
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Bytes: 1e6})
	clk.Run(0)
	p := n.Routes().Route("h1", "h3")
	for _, ch := range p.Channels() {
		if got := n.ChannelBits(ch); math.Abs(got-8e6) > 1 {
			t.Fatalf("forward channel %v bits = %v", ch, got)
		}
		rev := graph.Channel{Link: ch.Link, Dir: ch.Dir.Reverse()}
		if got := n.ChannelBits(rev); got != 0 {
			t.Fatalf("reverse channel %v bits = %v", rev, got)
		}
	}
}

func TestRouterInternalBandwidthLimits(t *testing.T) {
	// Figure 1 of the paper: router with 10 Mbps internal bandwidth
	// limits aggregate crossing traffic even over 100 Mbps links.
	g := graph.New()
	g.AddHost("a", 1)
	g.AddHost("b", 1)
	g.AddHost("c", 1)
	g.AddHost("d", 1)
	g.AddRouter("sw", 10e6)
	for _, h := range []graph.NodeID{"a", "b", "c", "d"} {
		g.AddLink(h, "sw", 100e6, 0.001)
	}
	clk := simclock.New()
	n, err := New(clk, g)
	if err != nil {
		t.Fatal(err)
	}
	f1 := n.StartFlow(FlowSpec{Src: "a", Dst: "c"})
	f2 := n.StartFlow(FlowSpec{Src: "b", Dst: "d"})
	if math.Abs(f1.Rate()-5e6) > 1 || math.Abs(f2.Rate()-5e6) > 1 {
		t.Fatalf("rates = %v, %v; want 5 Mbps each (backplane limit)", f1.Rate(), f2.Rate())
	}
}

func TestChannelRateExcludeOwner(t *testing.T) {
	_, n := dumbbell()
	n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Owner: "app"})
	n.StartFlow(FlowSpec{Src: "h2", Dst: "h4", Owner: "traffic"})
	mid := graph.Channel{Link: 2, Dir: graph.AtoB} // r1->r2
	all := n.ChannelRate(mid, "")
	woApp := n.ChannelRate(mid, "app")
	if math.Abs(all-10e6) > 1 {
		t.Fatalf("total rate = %v", all)
	}
	if math.Abs(woApp-5e6) > 1 {
		t.Fatalf("rate excluding app = %v", woApp)
	}
}

func TestTransferGroupCompletesOnLast(t *testing.T) {
	clk, n := dumbbell()
	var doneAt simclock.Time
	n.TransferGroup([]FlowSpec{
		{Src: "h1", Dst: "h3", Bytes: 10e6 / 8}, // shares bottleneck
		{Src: "h2", Dst: "h4", Bytes: 5e6 / 8},
	}, "app", func(now simclock.Time) { doneAt = now })
	clk.Run(0)
	// Share 5/5 until small flow done at t=1 (5Mbit at 5Mbps); big flow
	// then runs at 10 Mbps: sent 5 Mbit by t=1, remaining 5 Mbit in 0.5s
	// -> 1.5s total.
	if math.Abs(float64(doneAt)-1.5) > 1e-9 {
		t.Fatalf("group done at %v, want 1.5", doneAt)
	}
}

func TestTransferGroupEmpty(t *testing.T) {
	_, n := dumbbell()
	called := false
	n.TransferGroup(nil, "app", func(now simclock.Time) { called = true })
	if !called {
		t.Fatal("empty group callback not invoked")
	}
}

func TestComputeModel(t *testing.T) {
	clk, n := dumbbell()
	if d := n.ComputeDuration("h1", 2); d != 2 {
		t.Fatalf("duration = %v", d)
	}
	n.SetHostLoad("h1", 0.5)
	if d := n.ComputeDuration("h1", 2); d != 4 {
		t.Fatalf("loaded duration = %v", d)
	}
	if n.HostLoad("h1") != 0.5 {
		t.Fatal("HostLoad wrong")
	}
	var doneAt simclock.Time
	n.RunCompute("h2", 3, func(now simclock.Time) { doneAt = now })
	clk.Run(0)
	if doneAt != 3 {
		t.Fatalf("compute done at %v", doneAt)
	}
}

func TestComputeOnRouterPanics(t *testing.T) {
	_, n := dumbbell()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.ComputeDuration("r1", 1)
}

func TestStartFlowPanicsOnBadEndpoints(t *testing.T) {
	_, n := dumbbell()
	for _, spec := range []FlowSpec{
		{Src: "h1", Dst: "h1"},
		{Src: "h1", Dst: "missing"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", spec)
				}
			}()
			n.StartFlow(spec)
		}()
	}
}

func TestMeasureTransferTime(t *testing.T) {
	_, n := dumbbell()
	// Unloaded: 10 Mbit over 10 Mbps = 1s.
	got := n.MeasureTransferTime([]FlowSpec{{Src: "h1", Dst: "h3", Bytes: 10e6 / 8}})
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("unloaded estimate = %v", got)
	}
	// With a CBR hog, availability halves.
	n.StartFlow(FlowSpec{Src: "h2", Dst: "h4", RateCap: 5e6})
	got = n.MeasureTransferTime([]FlowSpec{{Src: "h1", Dst: "h3", Bytes: 10e6 / 8}})
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("loaded estimate = %v", got)
	}
}

func TestManyFlowsConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		clk, n := dumbbell()
		hosts := []graph.NodeID{"h1", "h2", "h3", "h4"}
		launched := 0
		var launch func(now simclock.Time)
		launch = func(now simclock.Time) {
			if launched >= 30 {
				return
			}
			launched++
			src := hosts[rng.Intn(4)]
			dst := hosts[rng.Intn(4)]
			if src == dst {
				dst = hosts[(rng.Intn(3)+1+indexOf(hosts, src))%4]
			}
			spec := FlowSpec{Src: src, Dst: dst, Bytes: 1e4 + rng.Float64()*1e6}
			if rng.Float64() < 0.3 {
				spec.RateCap = 1e6 + rng.Float64()*5e6
			}
			n.StartFlow(spec)
			clk.After(rng.Float64()*0.3, "launch", launch)
		}
		launch(0)
		clk.Run(100000)
		if err := n.CheckConservation(1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(n.ActiveFlows()) != 0 {
			t.Fatalf("trial %d: %d flows never finished", trial, len(n.ActiveFlows()))
		}
	}
}

func indexOf(hosts []graph.NodeID, h graph.NodeID) int {
	for i, x := range hosts {
		if x == h {
			return i
		}
	}
	return -1
}

func TestPathLatency(t *testing.T) {
	_, n := dumbbell()
	if got := n.PathLatency("h1", "h3"); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("latency = %v", got)
	}
	if n.PathLatency("h1", "h1") != 0 {
		t.Fatal("self latency != 0")
	}
}

func TestChannelsDeterministic(t *testing.T) {
	_, n := dumbbell()
	chs := n.Channels()
	if len(chs) != 10 { // 5 links × 2 directions
		t.Fatalf("channels = %d", len(chs))
	}
	for i := 1; i < len(chs); i++ {
		if chs[i].Link < chs[i-1].Link {
			t.Fatal("channels not sorted")
		}
	}
	if n.ChannelCapacity(chs[0]) != 100e6 {
		t.Fatalf("capacity = %v", n.ChannelCapacity(chs[0]))
	}
}

func TestZeroDelayCompletionViaSimultaneousEvents(t *testing.T) {
	// Start two identical flows at the same instant; both complete at the
	// same event time; the second completion must not double-finish.
	clk, n := dumbbell()
	done := 0
	for i := 0; i < 2; i++ {
		n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Bytes: 1e5,
			OnComplete: func(simclock.Time, *Flow) { done++ }})
	}
	clk.Run(0)
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	if err := n.CheckConservation(1e-9); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFlowChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clk, n := dumbbell()
		for j := 0; j < 50; j++ {
			n.StartFlow(FlowSpec{Src: "h1", Dst: "h3", Bytes: 1e5})
			n.StartFlow(FlowSpec{Src: "h2", Dst: "h4", Bytes: 1e5})
		}
		clk.Run(0)
	}
}
