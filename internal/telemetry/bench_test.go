package telemetry

import (
	"sync/atomic"
	"testing"
)

// Telemetry sits on the collector's poll loop and the server's dispatch
// path, so its per-event cost is a first-class concern. These
// micro-benchmarks feed scripts/bench.sh (BENCH_remos.json) and back
// the repo's "instrumented within 5% of uninstrumented" gate.

func BenchmarkTelemetryCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryCounterIncNil(b *testing.B) {
	var c *Counter // the disabled-telemetry path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryQuantileObserve(b *testing.B) {
	r := NewRegistry()
	q := r.Quantile("bench.quantile", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Observe(float64(i))
	}
}

func BenchmarkTelemetrySpan(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("bench-trace", "bench.op")
		sp.SetAttr("verdict", "admitted")
		sp.Finish()
	}
}

func BenchmarkTelemetrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(names20[i%len(names20)]).Inc()
		r.Quantile(names20[i%len(names20)], 128).Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := r.Snapshot()
		sink.Add(uint64(len(snap.Counters)))
	}
}

var sink atomic.Uint64

var names20 = []string{
	"a.one", "a.two", "a.three", "a.four", "a.five",
	"b.one", "b.two", "b.three", "b.four", "b.five",
	"c.one", "c.two", "c.three", "c.four", "c.five",
	"d.one", "d.two", "d.three", "d.four", "d.five",
}
