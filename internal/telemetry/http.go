package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// The daemon's live introspection surface: a JSON metrics endpoint plus
// the standard pprof handlers, mounted on a private mux so enabling it
// (-debug-addr) never leaks handlers onto http.DefaultServeMux.

// Handler serves the merged snapshot of regs as JSON (indented; one
// GET = one consistent-enough snapshot).
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snaps := make([]Snapshot, 0, len(regs))
		for _, reg := range regs {
			snaps = append(snaps, reg.Snapshot())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding a fresh snapshot cannot fail; an error here is the
		// client hanging up mid-write, which needs no handling.
		_ = enc.Encode(MergeSnapshots(snaps...))
	})
}

// DebugMux returns the daemon's debug surface:
//
//	/metrics        JSON metrics (merged across regs)
//	/healthz        200 ok (liveness)
//	/debug/pprof/*  the standard Go profiling handlers
func DebugMux(regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(regs...))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
