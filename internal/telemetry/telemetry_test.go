package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestNilSafety: a nil registry hands out nil instruments whose every
// method is a no-op — the whole "disabled telemetry" contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(3)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %v", got)
	}
	r.Quantile("q", 8).Observe(1)
	if got := r.Quantile("q", 8).Count(); got != 0 {
		t.Errorf("nil quantile count = %d", got)
	}
	if st := r.Quantile("q", 8).Summary(); st.Valid() {
		t.Errorf("nil quantile summary valid: %+v", st)
	}
	sp := r.StartSpan("t", "n")
	sp.SetAttr("k", "v")
	sp.Finish()
	sp.Finish() // idempotent on nil too
	if got := r.Spans(); got != nil {
		t.Errorf("nil registry spans = %v", got)
	}
	if s, f := r.SpanCounts(); s != 0 || f != 0 {
		t.Errorf("nil registry span counts = %d/%d", s, f)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Errorf("nil registry snapshot non-empty: %+v", snap)
	}
}

// TestQuantileWraparound: the ring must summarize exactly the most
// recent window observations once it wraps.
func TestQuantileWraparound(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile("w", 4)
	for i := 1; i <= 10; i++ { // window of 4 ends holding 7, 8, 9, 10
		q.Observe(float64(i))
	}
	snap := q.snapshot()
	if snap.Count != 10 || snap.Window != 4 {
		t.Fatalf("count/window = %d/%d, want 10/4", snap.Count, snap.Window)
	}
	st := snap.Stat
	if st.Min != 7 || st.Max != 10 {
		t.Errorf("window summary min/max = %v/%v, want 7/10", st.Min, st.Max)
	}
	if !(st.Min <= st.Q1 && st.Q1 <= st.Median && st.Median <= st.Q3 && st.Q3 <= st.Max) {
		t.Errorf("quartiles out of order: %+v", st)
	}

	// Partial window: summary covers only what has been observed.
	p := r.Quantile("p", 8)
	p.Observe(5)
	p.Observe(3)
	snap = p.snapshot()
	if snap.Window != 2 || snap.Stat.Min != 3 || snap.Stat.Max != 5 {
		t.Errorf("partial window snapshot = %+v", snap)
	}
}

// TestConcurrentInstruments hammers every instrument kind from many
// writers while readers snapshot — meaningful under -race, and checks
// final counts for lost updates.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const (
		writers = 8
		rounds  = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.Counter("c").Inc()
				r.Counter(fmt.Sprintf("c%d", w%3)).Inc() // contended get-or-create
				r.Gauge("g").Set(float64(i))
				r.Quantile("q", 64).Observe(float64(i))
				sp := r.StartSpan(fmt.Sprintf("t-%d-%d", w, i), "work")
				sp.SetAttr("round", fmt.Sprint(i))
				sp.Finish()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := r.Snapshot()
			if snap.Counters["c"] > writers*rounds {
				t.Errorf("counter overshoot: %d", snap.Counters["c"])
				return
			}
			for _, rec := range snap.Spans {
				if rec.Name != "work" {
					t.Errorf("corrupt span record: %+v", rec)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("c").Value(); got != writers*rounds {
		t.Errorf("lost counter updates: %d, want %d", got, writers*rounds)
	}
	if got := r.Quantile("q", 64).Count(); got != writers*rounds {
		t.Errorf("lost quantile updates: %d, want %d", got, writers*rounds)
	}
	started, finished := r.SpanCounts()
	if started != finished || started != writers*rounds {
		t.Errorf("span counts %d/%d, want %d/%d", started, finished, writers*rounds, writers*rounds)
	}
}

// TestSpanLogRing: the span log retains the most recent DefaultSpanLog
// records, oldest first, and SpansFor filters by trace.
func TestSpanLogRing(t *testing.T) {
	r := NewRegistry()
	total := DefaultSpanLog + 10
	for i := 0; i < total; i++ {
		sp := r.StartSpan(fmt.Sprintf("trace-%d", i), "op")
		sp.Finish()
	}
	recs := r.Spans()
	if len(recs) != DefaultSpanLog {
		t.Fatalf("retained %d spans, want %d", len(recs), DefaultSpanLog)
	}
	if recs[0].Trace != "trace-10" || recs[len(recs)-1].Trace != fmt.Sprintf("trace-%d", total-1) {
		t.Errorf("ring order wrong: first %q last %q", recs[0].Trace, recs[len(recs)-1].Trace)
	}
	if got := r.SpansFor("trace-42"); len(got) != 1 || got[0].Trace != "trace-42" {
		t.Errorf("SpansFor = %+v", got)
	}
	if got := r.SpansFor("trace-0"); len(got) != 0 { // evicted
		t.Errorf("evicted trace still present: %+v", got)
	}
}

// TestSpanFinishIdempotent: double Finish records the span once.
func TestSpanFinishIdempotent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("t", "op")
	sp.Finish()
	sp.Finish()
	sp.SetAttr("late", "ignored")
	if got := len(r.Spans()); got != 1 {
		t.Fatalf("span recorded %d times", got)
	}
	if _, finished := r.SpanCounts(); finished != 1 {
		t.Errorf("finished count = %d", finished)
	}
	if attrs := r.Spans()[0].Attrs; attrs["late"] != "" {
		t.Errorf("attr set after finish leaked: %v", attrs)
	}
}

// TestTraceContext: the context plumbing honors existing IDs and mints
// unique fresh ones.
func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if got := TraceFrom(ctx); got != "" {
		t.Errorf("empty ctx trace = %q", got)
	}
	ctx2, id := EnsureTrace(ctx)
	if id == "" || TraceFrom(ctx2) != id {
		t.Errorf("EnsureTrace minted %q, ctx carries %q", id, TraceFrom(ctx2))
	}
	ctx3, id3 := EnsureTrace(ctx2)
	if id3 != id || ctx3 != ctx2 {
		t.Errorf("EnsureTrace re-minted over existing trace: %q -> %q", id, id3)
	}
	if a, b := NewTraceID(), NewTraceID(); a == b {
		t.Errorf("duplicate trace IDs: %q", a)
	}
	if got := TraceFrom(WithTrace(ctx, "custom")); got != "custom" {
		t.Errorf("WithTrace round trip = %q", got)
	}
}

// TestMergeSnapshots: counters sum, later gauges win, the
// more-populated quantile wins, spans concatenate.
func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(3)
	a.Gauge("g").Set(1)
	a.Quantile("q", 8).Observe(1)
	a.StartSpan("ta", "opa").Finish()

	b := NewRegistry()
	b.Counter("c").Add(4)
	b.Counter("only-b").Inc()
	b.Gauge("g").Set(2)
	qb := b.Quantile("q", 8)
	qb.Observe(5)
	qb.Observe(6)
	b.StartSpan("tb", "opb").Finish()

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if m.Counters["c"] != 7 || m.Counters["only-b"] != 1 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 2 {
		t.Errorf("merged gauge = %v", m.Gauges["g"])
	}
	if m.Quantiles["q"].Count != 2 || m.Quantiles["q"].Stat.Min != 5 {
		t.Errorf("merged quantile = %+v", m.Quantiles["q"])
	}
	if len(m.Spans) != 2 || m.SpansStarted != 2 || m.SpansFinished != 2 {
		t.Errorf("merged spans = %d (%d/%d)", len(m.Spans), m.SpansStarted, m.SpansFinished)
	}
	names := m.CounterNames()
	if len(names) != 2 || names[0] != "c" || names[1] != "only-b" {
		t.Errorf("CounterNames = %v", names)
	}
}

// TestDebugMux: /metrics serves the merged registries as JSON and
// /healthz answers.
func TestDebugMux(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("server.requests").Add(2)
	r2 := NewRegistry()
	r2.Counter("collector.polls").Add(9)
	r2.Quantile("collector.poll.wall_ms", 8).Observe(1.5)

	srv := httptest.NewServer(DebugMux(r1, r2))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests"] != 2 || snap.Counters["collector.polls"] != 9 {
		t.Errorf("metrics endpoint counters = %v", snap.Counters)
	}
	if snap.Quantiles["collector.poll.wall_ms"].Count != 1 {
		t.Errorf("metrics endpoint quantiles = %v", snap.Quantiles)
	}

	hz, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != 200 {
		t.Errorf("healthz status = %d", hz.StatusCode)
	}
}

// TestQuantilePercentiles: the percentile reader interpolates linearly
// over one consistent window snapshot, clamps at the extremes, and
// NaN-fills before the first observation.
func TestQuantilePercentiles(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile("lat", 16)

	for _, v := range q.Percentiles(50, 99) {
		if !math.IsNaN(v) {
			t.Fatalf("empty window percentile = %v, want NaN", v)
		}
	}
	var nilQ *Quantile
	if !math.IsNaN(nilQ.Percentile(50)) {
		t.Fatal("nil quantile percentile must be NaN")
	}

	// 1..10 observed out of order: percentiles see the sorted window.
	for _, v := range []float64{7, 2, 9, 4, 1, 10, 3, 6, 8, 5} {
		q.Observe(v)
	}
	got := q.Percentiles(0, 25, 50, 90, 100)
	want := []float64{1, 3.25, 5.5, 9.1, 10}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("percentiles(0,25,50,90,100) = %v, want %v", got, want)
		}
	}
	if p := q.Percentile(-5); p != 1 {
		t.Fatalf("percentile below 0 = %v, want min", p)
	}
	if p := q.Percentile(200); p != 10 {
		t.Fatalf("percentile above 100 = %v, want max", p)
	}

	// Wraparound: 16 more observations fully replace a 16-slot ring.
	for i := 11; i <= 26; i++ {
		q.Observe(float64(i))
	}
	if p := q.Percentile(0); p != 11 {
		t.Fatalf("post-wrap min = %v, want 11 (window keeps the last 16)", p)
	}
	if p := q.Percentile(100); p != 26 {
		t.Fatalf("post-wrap max = %v, want 26", p)
	}
}
