// Package telemetry is the observability plane of the Remos
// reproduction: a dependency-free, race-safe metrics registry plus
// lightweight request tracing (trace.go) and a debug HTTP surface
// (http.go).
//
// Three instrument kinds cover the system's needs:
//
//   - Counter: a monotonic event count (polls completed, requests shed).
//   - Gauge: a last-written value (queue depth, cache age).
//   - Quantile: a bounded ring of recent observations summarized as the
//     same quartile Stat the Remos API itself reports (§4.4 of the
//     paper: network measurements do not follow a known distribution,
//     so report min/Q1/median/Q3/max, not a mean). Internal telemetry
//     deliberately speaks the same statistical language as the public
//     query interface.
//
// Every instrument is safe for concurrent use, and every instrument
// method is nil-safe: a nil *Registry hands out nil instruments whose
// methods are no-ops. "Telemetry disabled" is therefore spelled simply
// as a nil registry — no flags, no branches at call sites, and the
// disabled path costs one predictable nil check.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// DefaultQuantileWindow is the ring capacity a Quantile gets when the
// caller does not choose one: enough samples for stable quartiles,
// small enough that a snapshot copy is cheap.
const DefaultQuantileWindow = 512

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on a nil Counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil Counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-written float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil Gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Quantile keeps the most recent observations in a fixed ring and
// summarizes them as quartiles on demand. Count is the total number of
// observations ever made, so a snapshot distinguishes "window of the
// last 512" from "only 3 so far".
type Quantile struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	full  bool
	count uint64
}

// Observe records one sample. No-op on a nil Quantile.
func (q *Quantile) Observe(v float64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.buf[q.next] = v
	q.next++
	if q.next == len(q.buf) {
		q.next = 0
		q.full = true
	}
	q.count++
	q.mu.Unlock()
}

// Count returns the total observations ever recorded (0 on nil).
func (q *Quantile) Count() uint64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Summary returns the quartile Stat over the current window contents
// (stats.NoData on nil or before the first observation).
func (q *Quantile) Summary() stats.Stat {
	return q.snapshot().Stat
}

// Percentile returns the p-th percentile (0..100, linearly
// interpolated) of the current window, or NaN on nil or before the
// first observation. For several percentiles of one consistent window
// use Percentiles.
func (q *Quantile) Percentile(p float64) float64 {
	return q.Percentiles(p)[0]
}

// Percentiles returns the requested percentiles (0..100 each, linearly
// interpolated) computed over one consistent snapshot of the window, so
// p50/p99/p999-style tails never straddle an Observe. Entries are NaN
// on nil or before the first observation.
func (q *Quantile) Percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	var window []float64
	if q != nil {
		q.mu.Lock()
		n := len(q.buf)
		if !q.full {
			n = q.next
		}
		window = make([]float64, n)
		if q.full {
			copy(window, q.buf[q.next:])
			copy(window[len(q.buf)-q.next:], q.buf[:q.next])
		} else {
			copy(window, q.buf[:q.next])
		}
		q.mu.Unlock()
	}
	if len(window) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sort.Float64s(window)
	for i, p := range ps {
		switch {
		case p <= 0:
			out[i] = window[0]
		case p >= 100:
			out[i] = window[len(window)-1]
		default:
			pos := p / 100 * float64(len(window)-1)
			lo := int(pos)
			frac := pos - float64(lo)
			out[i] = window[lo]
			if lo+1 < len(window) {
				out[i] += frac * (window[lo+1] - window[lo])
			}
		}
	}
	return out
}

func (q *Quantile) snapshot() QuantileSnapshot {
	if q == nil {
		return QuantileSnapshot{Stat: stats.NoData()}
	}
	q.mu.Lock()
	n := len(q.buf)
	if !q.full {
		n = q.next
	}
	window := make([]float64, n)
	if q.full {
		copy(window, q.buf[q.next:])
		copy(window[len(q.buf)-q.next:], q.buf[:q.next])
	} else {
		copy(window, q.buf[:q.next])
	}
	count := q.count
	q.mu.Unlock()
	return QuantileSnapshot{Stat: stats.Quartiles(window), Count: count, Window: n}
}

// Registry is a named collection of instruments. Lookups get-or-create,
// so call sites never coordinate registration; hot paths should still
// capture the returned instrument once rather than re-resolving the
// name per event.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	quantiles map[string]*Quantile

	spans         spanLog
	spansStarted  atomic.Uint64
	spansFinished atomic.Uint64
}

// NewRegistry creates an empty registry with the default span-log
// capacity.
func NewRegistry() *Registry {
	r := &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		quantiles: make(map[string]*Quantile),
	}
	r.spans.limit = DefaultSpanLog
	return r
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Quantile returns the named quantile ring, creating it with the given
// window capacity on first use (window <= 0 selects
// DefaultQuantileWindow; the window of an existing ring is not
// changed). A nil registry returns a nil (no-op) quantile.
func (r *Registry) Quantile(name string, window int) *Quantile {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	q := r.quantiles[name]
	r.mu.RUnlock()
	if q != nil {
		return q
	}
	if window <= 0 {
		window = DefaultQuantileWindow
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if q = r.quantiles[name]; q == nil {
		q = &Quantile{buf: make([]float64, window)}
		r.quantiles[name] = q
	}
	return q
}

// QuantileSnapshot is one quantile ring's exported state: the quartile
// summary of the current window, the total observation count, and how
// many samples the window held at snapshot time.
type QuantileSnapshot struct {
	Stat   stats.Stat
	Count  uint64
	Window int
}

// Snapshot is a consistent-enough copy of a registry: every instrument
// is read atomically, though the set as a whole is not a transaction
// (counters may advance between reads — fine for monitoring). It is a
// plain data struct so it crosses gob (the collector's `stats` op) and
// JSON (the debug endpoint) unchanged.
type Snapshot struct {
	Counters  map[string]uint64
	Gauges    map[string]float64
	Quantiles map[string]QuantileSnapshot

	// Spans holds the most recent finished span records, oldest first.
	Spans []SpanRecord
	// SpansStarted/SpansFinished count span lifecycle events; a steady
	// state in which they differ is a span leak.
	SpansStarted  uint64
	SpansFinished uint64
}

// Snapshot captures the registry's current state. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:  make(map[string]uint64),
		Gauges:    make(map[string]float64),
		Quantiles: make(map[string]QuantileSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	quantiles := make(map[string]*Quantile, len(r.quantiles))
	for k, v := range r.quantiles {
		quantiles[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range quantiles {
		s.Quantiles[k] = v.snapshot()
	}
	s.Spans = r.spans.records()
	s.SpansStarted = r.spansStarted.Load()
	s.SpansFinished = r.spansFinished.Load()
	return s
}

// MergeSnapshots combines snapshots from several registries (e.g. a
// daemon's server registry and its collector's) into one view. Key
// collisions — which a sane naming scheme avoids — resolve by summing
// counters, keeping the later gauge, and keeping the quantile with more
// total observations. Span logs concatenate; lifecycle counts sum.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:  make(map[string]uint64),
		Gauges:    make(map[string]float64),
		Quantiles: make(map[string]QuantileSnapshot),
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Quantiles {
			if prev, ok := out.Quantiles[k]; !ok || v.Count > prev.Count {
				out.Quantiles[k] = v
			}
		}
		out.Spans = append(out.Spans, s.Spans...)
		out.SpansStarted += s.SpansStarted
		out.SpansFinished += s.SpansFinished
	}
	return out
}

// CounterNames returns the snapshot's counter names sorted — render
// helpers for the CLI dashboard and tests.
func (s Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// GaugeNames returns the snapshot's gauge names sorted.
func (s Snapshot) GaugeNames() []string { return sortedKeys(s.Gauges) }

// QuantileNames returns the snapshot's quantile names sorted.
func (s Snapshot) QuantileNames() []string { return sortedKeys(s.Quantiles) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
