package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing. A trace ID is minted once at the remos API edge
// (core.Modeler's Ctx entry points), rides the context through the
// Modeler and the collector client, crosses the wire in the gob request
// frame next to BudgetMS, and is stamped into span records on both
// sides. Matching the client's span to the server's by trace ID turns
// "this query was slow" into "this query waited 40 ms in replica B's
// admission queue".
//
// IDs are not cryptographic: a random per-process prefix plus an
// atomic counter is collision-free within a process and
// collision-unlikely across the handful of processes one deployment
// runs, which is all log correlation needs.

// DefaultSpanLog is the per-registry cap on retained finished spans.
const DefaultSpanLog = 256

var (
	tracePrefix = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degraded uniqueness (time-based) beats failing to start.
			return uint64(time.Now().UnixNano())
		}
		return binary.BigEndian.Uint64(b[:])
	}()
	traceCounter atomic.Uint64
)

// NewTraceID mints a process-unique trace ID.
func NewTraceID() string {
	return fmt.Sprintf("%08x-%06x", uint32(tracePrefix), traceCounter.Add(1))
}

type traceKey struct{}

// WithTrace returns ctx carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from ctx ("" when none is set).
func TraceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// EnsureTrace returns ctx guaranteed to carry a trace ID, minting one
// when absent, plus the ID either way. The remos API edge calls this so
// a caller-supplied trace (WithTrace) is honored and an undecorated
// call still becomes traceable.
func EnsureTrace(ctx context.Context) (context.Context, string) {
	if id := TraceFrom(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}

// SpanRecord is one finished span: what happened to one request at one
// layer. Attrs carries the layer-specific details (queue wait,
// admission verdict, replica tried, error class) as strings so the
// record crosses gob and JSON without a schema per layer.
type SpanRecord struct {
	Trace    string
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    map[string]string
}

// Span is an in-progress span. Obtain one from Registry.StartSpan;
// Finish is mandatory (and idempotent) — the chaos suite asserts every
// started span is finished.
type Span struct {
	reg *Registry

	mu   sync.Mutex
	rec  SpanRecord
	done bool
}

// StartSpan begins a span for the given trace. A nil registry returns a
// nil (no-op) span, so disabled telemetry costs nothing at call sites.
func (r *Registry) StartSpan(trace, name string) *Span {
	if r == nil {
		return nil
	}
	r.spansStarted.Add(1)
	return &Span{reg: r, rec: SpanRecord{Trace: trace, Name: name, Start: time.Now()}}
}

// SetAttr attaches one key/value detail. No-op on a nil or finished
// span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		if s.rec.Attrs == nil {
			s.rec.Attrs = make(map[string]string, 4)
		}
		s.rec.Attrs[key] = value
	}
	s.mu.Unlock()
}

// Finish stamps the duration and commits the record to the registry's
// span log. Safe to call more than once (later calls are no-ops) and on
// a nil span.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.rec.Duration = time.Since(s.rec.Start)
	rec := s.rec
	s.mu.Unlock()
	s.reg.spansFinished.Add(1)
	s.reg.spans.add(rec)
}

// Spans returns the retained finished spans, oldest first (nil on a nil
// registry).
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	return r.spans.records()
}

// SpansFor returns the retained finished spans carrying the given trace
// ID, oldest first.
func (r *Registry) SpansFor(trace string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range r.Spans() {
		if rec.Trace == trace {
			out = append(out, rec)
		}
	}
	return out
}

// SpanCounts returns (started, finished) span totals.
func (r *Registry) SpanCounts() (started, finished uint64) {
	if r == nil {
		return 0, 0
	}
	return r.spansStarted.Load(), r.spansFinished.Load()
}

// spanLog is a bounded ring of finished spans.
type spanLog struct {
	mu    sync.Mutex
	limit int
	buf   []SpanRecord
	next  int
	full  bool
}

func (l *spanLog) add(rec SpanRecord) {
	l.mu.Lock()
	if l.buf == nil {
		limit := l.limit
		if limit <= 0 {
			limit = DefaultSpanLog
		}
		l.buf = make([]SpanRecord, limit)
	}
	l.buf[l.next] = rec
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

func (l *spanLog) records() []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		return nil
	}
	n := len(l.buf)
	if !l.full {
		n = l.next
	}
	out := make([]SpanRecord, n)
	if l.full {
		copy(out, l.buf[l.next:])
		copy(out[len(l.buf)-l.next:], l.buf[:l.next])
	} else {
		copy(out, l.buf[:l.next])
	}
	return out
}
