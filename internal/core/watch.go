package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// Watching: the paper's applications "periodically check the resource
// availability" (§1); a Watch packages that pattern — evaluate a query
// on a timer, notify on threshold crossings — so adaptation modules
// don't each reimplement the polling loop.

// WatchEvent is one threshold crossing.
type WatchEvent struct {
	At    simclock.Time
	Stat  stats.Stat
	Below bool // true: availability dropped below Low; false: recovered above High
}

// WatchConfig parameterizes a bandwidth watch.
type WatchConfig struct {
	Src, Dst  graph.NodeID
	Timeframe Timeframe

	// Low fires a Below event when the median availability drops under
	// it; High fires a recovery event when it rises above. High must be
	// >= Low (the gap is the hysteresis band that suppresses flapping).
	Low, High float64

	// Period is the evaluation interval in virtual seconds.
	Period float64
}

// Watch is a running periodic evaluation.
type Watch struct {
	cfg    WatchConfig
	ticker *simclock.Ticker
	below  bool
	checks int
	events int
}

// Checks returns how many evaluations have run.
func (w *Watch) Checks() int { return w.checks }

// Events returns how many crossings have fired.
func (w *Watch) Events() int { return w.events }

// Stop halts the watch.
func (w *Watch) Stop() { w.ticker.Stop() }

// WatchBandwidth starts a periodic availability watch between two hosts,
// invoking fn on every threshold crossing. Evaluation errors are skipped
// (the network may be mid-rediscovery); the watch keeps running.
func (m *Modeler) WatchBandwidth(clk *simclock.Clock, cfg WatchConfig, fn func(WatchEvent)) (*Watch, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("core: non-positive watch period %v", cfg.Period)
	}
	if cfg.High < cfg.Low {
		return nil, fmt.Errorf("core: watch High %v < Low %v", cfg.High, cfg.Low)
	}
	if fn == nil {
		return nil, fmt.Errorf("core: watch without a callback")
	}
	w := &Watch{cfg: cfg}
	w.ticker = clk.NewTicker(clk.Now()+simclock.Time(cfg.Period), cfg.Period,
		fmt.Sprintf("watch %s->%s", cfg.Src, cfg.Dst), func(now simclock.Time) {
			st, err := m.AvailableBandwidth(cfg.Src, cfg.Dst, cfg.Timeframe)
			if err != nil || !st.Valid() {
				return
			}
			w.checks++
			if !w.below && st.Median < cfg.Low {
				w.below = true
				w.events++
				fn(WatchEvent{At: now, Stat: st, Below: true})
			} else if w.below && st.Median > cfg.High {
				w.below = false
				w.events++
				fn(WatchEvent{At: now, Stat: st, Below: false})
			}
		})
	return w, nil
}
