package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/collector"
	"repro/internal/graph"
)

// Push subscriptions: WatchGraph and WatchFlowInfo turn the two §4
// queries into standing interests. The Modeler subscribes to the
// source's data-version stream (collector.WatchSource — in-process
// collector, TCP client, or failover set), re-evaluates the query when
// an epoch arrives, and delivers the recomputed answer only when it
// changed materially. The delivery channel is bounded with the same
// drop-oldest discipline as the wire queues: a consumer that falls
// behind loses intermediate answers, never the freshest one, and the
// next update it reads is marked Overflowed.

// DefaultWatchBuffer is the update-channel depth when
// WatchOptions.Buffer is zero.
const DefaultWatchBuffer = 4

// WatchOptions tunes a Modeler subscription.
type WatchOptions struct {
	// Threshold is the minimum relative change (0..1) in any annotated
	// bandwidth median — per link for WatchGraph, per flow for
	// WatchFlowInfo — since the last delivered answer that counts as
	// material. 0 delivers an answer for every source epoch.
	Threshold float64
	// Buffer is the update channel depth (default DefaultWatchBuffer).
	Buffer int
}

func (o WatchOptions) buffer() int {
	if o.Buffer <= 0 {
		return DefaultWatchBuffer
	}
	return o.Buffer
}

// GraphUpdate is one recomputed GetGraph answer.
type GraphUpdate struct {
	// Graph is the recomputed answer; nil when Err is set or Final.
	Graph *Graph
	// Seq is the underlying subscription's dense update sequence
	// number. With Threshold 0 a delivered-Seq gap always rides with an
	// Overflowed or Resync mark; with a positive threshold, gaps also
	// come from answers gated out as immaterial.
	Seq uint64
	// Epoch is the source data version the answer was computed at.
	// After a Resync it restarts: epochs are per-replica.
	Epoch uint64
	// Overflowed marks the first update delivered after older ones were
	// dropped — on the wire or in this channel — because the consumer
	// (or the network) fell behind.
	Overflowed bool
	// Resync marks the first update after the failover layer
	// re-subscribed on a different replica: treat it as a fresh
	// baseline, not a delta.
	Resync bool
	// TopoChanged reports the physical topology was rediscovered since
	// the previous update.
	TopoChanged bool
	// Final is the terminal update: the source drained the subscription
	// (graceful shutdown). The channel closes after it.
	Final bool
	// Err carries a non-terminal evaluation error; the subscription
	// stays live and recovers when evaluation succeeds again.
	Err error
}

// FlowInfoUpdate is one recomputed QueryFlowInfo answer.
type FlowInfoUpdate struct {
	// Info is the recomputed answer; nil when Err is set or Final.
	Info *FlowInfo
	// Seq, Epoch, Overflowed, Resync, Final, Err: as in GraphUpdate.
	Seq        uint64
	Epoch      uint64
	Overflowed bool
	Resync     bool
	Final      bool
	Err        error
}

// GraphWatch is a live WatchGraph subscription.
type GraphWatch struct {
	// C delivers updates in order; it closes after a Final update, a
	// Cancel, or a transport failure (then Err() is non-nil).
	C <-chan GraphUpdate
	h *collector.WatchHandle
}

// Cancel stops the subscription; C closes shortly after. Idempotent.
func (w *GraphWatch) Cancel() { w.h.Cancel() }

// Err reports why C closed: nil after a clean Final or Cancel, the
// transport error otherwise.
func (w *GraphWatch) Err() error { return w.h.Err() }

// FlowInfoWatch is a live WatchFlowInfo subscription.
type FlowInfoWatch struct {
	C <-chan FlowInfoUpdate
	h *collector.WatchHandle
}

func (w *FlowInfoWatch) Cancel()    { w.h.Cancel() }
func (w *FlowInfoWatch) Err() error { return w.h.Err() }

// watchSource returns the Modeler's source as a WatchSource, or a
// typed error when it cannot push.
func (m *Modeler) watchSource() (collector.WatchSource, error) {
	if ws, ok := m.cfg.Source.(collector.WatchSource); ok {
		return ws, nil
	}
	return nil, fmt.Errorf("core: source %T does not support watch subscriptions", m.cfg.Source)
}

// WatchGraph subscribes to GetGraph(nodes, tf): the answer is
// recomputed at every source epoch and delivered when it changed
// materially (see WatchOptions.Threshold), when the topology was
// rediscovered, or after a resync. ctx cancels the subscription.
func (m *Modeler) WatchGraph(ctx context.Context, nodes []graph.NodeID, tf Timeframe, opts WatchOptions) (*GraphWatch, error) {
	ws, err := m.watchSource()
	if err != nil {
		return nil, err
	}
	h, err := ws.Watch(ctx, collector.WatchRequest{Kind: collector.WatchVersion})
	if err != nil {
		return nil, err
	}
	out := make(chan GraphUpdate, opts.buffer())
	w := &GraphWatch{C: out, h: h}
	go func() {
		defer close(out)
		var last []float64 // per-link avail medians of the last delivered answer
		pending := false   // overflow mark carried from a dropped delivery
		for u := range h.C {
			gu := GraphUpdate{Seq: u.Seq, Epoch: u.Epoch, Overflowed: u.Overflowed,
				Resync: u.Resync, TopoChanged: u.TopoChanged, Final: u.Final}
			if u.Final {
				deliverGraph(out, gu, &pending)
				return
			}
			if u.Err != "" {
				gu.Err = errors.New(u.Err)
				deliverGraph(out, gu, &pending)
				continue
			}
			if u.TopoChanged || u.Resync {
				// The cached snapshot predates the rediscovery (or
				// belongs to the previous replica): rebuild it.
				m.Refresh()
			}
			g, err := m.GetGraphCtx(ctx, nodes, tf)
			if err != nil {
				gu.Err = err
				deliverGraph(out, gu, &pending)
				continue
			}
			sig := graphSignature(g)
			if last != nil && !u.TopoChanged && !u.Resync && !u.Overflowed && !pending &&
				opts.Threshold > 0 && maxRelDelta(last, sig) < opts.Threshold {
				continue // below threshold: not material
			}
			last = sig
			gu.Graph = g
			deliverGraph(out, gu, &pending)
		}
	}()
	return w, nil
}

// WatchFlowInfo subscribes to QueryFlowInfo(fixed, variable,
// independent, tf) with the same semantics as WatchGraph: re-evaluated
// per source epoch, delivered on material change.
func (m *Modeler) WatchFlowInfo(ctx context.Context, fixed, variable, independent []Flow, tf Timeframe, opts WatchOptions) (*FlowInfoWatch, error) {
	ws, err := m.watchSource()
	if err != nil {
		return nil, err
	}
	h, err := ws.Watch(ctx, collector.WatchRequest{Kind: collector.WatchVersion})
	if err != nil {
		return nil, err
	}
	out := make(chan FlowInfoUpdate, opts.buffer())
	w := &FlowInfoWatch{C: out, h: h}
	go func() {
		defer close(out)
		var last []float64 // per-flow bandwidth medians of the last delivered answer
		pending := false
		for u := range h.C {
			fu := FlowInfoUpdate{Seq: u.Seq, Epoch: u.Epoch, Overflowed: u.Overflowed,
				Resync: u.Resync, Final: u.Final}
			if u.Final {
				deliverFlowInfo(out, fu, &pending)
				return
			}
			if u.Err != "" {
				fu.Err = errors.New(u.Err)
				deliverFlowInfo(out, fu, &pending)
				continue
			}
			if u.TopoChanged || u.Resync {
				m.Refresh()
			}
			fi, err := m.QueryFlowInfoCtx(ctx, fixed, variable, independent, tf)
			if err != nil {
				fu.Err = err
				deliverFlowInfo(out, fu, &pending)
				continue
			}
			sig := flowSignature(fi)
			if last != nil && !u.TopoChanged && !u.Resync && !u.Overflowed && !pending &&
				opts.Threshold > 0 && maxRelDelta(last, sig) < opts.Threshold {
				continue
			}
			last = sig
			fu.Info = fi
			deliverFlowInfo(out, fu, &pending)
		}
	}()
	return w, nil
}

// deliverGraph sends u without ever blocking the evaluation loop: when
// the buffer is full the oldest buffered update is dropped and its
// loss — plus any marks it carried — folded into u.
func deliverGraph(out chan GraphUpdate, u GraphUpdate, pending *bool) {
	if *pending {
		u.Overflowed = true
		*pending = false
	}
	for {
		select {
		case out <- u:
			return
		default:
		}
		select {
		case old := <-out:
			u.Overflowed = true
			u.Resync = u.Resync || old.Resync
			u.TopoChanged = u.TopoChanged || old.TopoChanged
		default:
			// Consumer drained the channel between our two selects;
			// loop and try the send again.
		}
	}
}

// deliverFlowInfo is deliverGraph for flow updates.
func deliverFlowInfo(out chan FlowInfoUpdate, u FlowInfoUpdate, pending *bool) {
	if *pending {
		u.Overflowed = true
		*pending = false
	}
	for {
		select {
		case out <- u:
			return
		default:
		}
		select {
		case old := <-out:
			u.Overflowed = true
			u.Resync = u.Resync || old.Resync
		default:
		}
	}
}

// graphSignature flattens a Graph's dynamic annotations into the
// vector the material-change threshold compares: both directions'
// availability medians per link, in answer order.
func graphSignature(g *Graph) []float64 {
	sig := make([]float64, 0, 2*len(g.Links))
	for i := range g.Links {
		sig = append(sig, g.Links[i].Avail[0].Median, g.Links[i].Avail[1].Median)
	}
	return sig
}

// flowSignature flattens a FlowInfo into its per-flow allocation
// medians, in query order.
func flowSignature(fi *FlowInfo) []float64 {
	all := fi.All()
	sig := make([]float64, len(all))
	for i := range all {
		sig[i] = all[i].Bandwidth.Median
	}
	return sig
}

// maxRelDelta is the largest relative element-wise change between two
// signature vectors; structurally different vectors (a link or flow
// appeared or vanished) are maximally different.
func maxRelDelta(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range a {
		d := math.Abs(b[i] - a[i])
		if d == 0 {
			continue
		}
		base := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if base == 0 {
			continue
		}
		if r := d / base; r > worst {
			worst = r
		}
	}
	return worst
}
