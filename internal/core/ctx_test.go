package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
)

// lifecycleSource wraps a working Source but answers every measurement
// query with a fixed lifecycle error, the way a remote collector under
// deadline pressure or load shedding would. Topology still works, so
// queries get far enough to hit the availability path.
type lifecycleSource struct {
	collector.Source
	err error
}

func (s *lifecycleSource) TopologyCtx(ctx context.Context) (*collector.Topology, error) {
	return s.Topology()
}
func (s *lifecycleSource) UtilizationCtx(context.Context, collector.ChannelKey, float64) (stats.Stat, error) {
	return stats.NoData(), s.err
}
func (s *lifecycleSource) SamplesCtx(context.Context, collector.ChannelKey) ([]stats.Sample, error) {
	return nil, s.err
}
func (s *lifecycleSource) HostLoadCtx(context.Context, graph.NodeID, float64) (stats.Stat, error) {
	return stats.NoData(), s.err
}
func (s *lifecycleSource) DataAgeCtx(context.Context, collector.ChannelKey) (float64, error) {
	return 0, s.err
}

// TestGraphQueryPropagatesDeadline: when the source refuses with a
// deadline error, GetGraphCtx must surface that typed error — not paper
// over it with the capacity fallback ("no dead answers").
func TestGraphQueryPropagatesDeadline(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(10)
	mod := New(Config{Source: &lifecycleSource{Source: r.col, err: collector.ErrDeadlineExceeded}})
	_, err := mod.GetGraphCtx(context.Background(), nil, TFHistory(5))
	if !errors.Is(err, collector.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
}

// TestFlowQueryPropagatesShed: a load-shed refusal from the source
// aborts the flow query with the typed error and its retry-after hint
// intact through the whole Modeler stack.
func TestFlowQueryPropagatesShed(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(10)
	shed := &collector.ShedError{RetryAfter: 75 * time.Millisecond}
	mod := New(Config{Source: &lifecycleSource{Source: r.col, err: shed}})
	_, err := mod.QueryFlowInfoCtx(context.Background(), nil, nil,
		[]Flow{{Src: "m-1", Dst: "m-8", Kind: IndependentFlow}}, TFHistory(5))
	if !errors.Is(err, collector.ErrLoadShed) {
		t.Fatalf("got %v, want ErrLoadShed", err)
	}
	if ra, ok := collector.RetryAfterHint(err); !ok || ra != 75*time.Millisecond {
		t.Fatalf("retry-after hint lost through the Modeler: %v (ok=%v)", ra, ok)
	}
}

// TestMeasurementErrorStillDegrades: a non-lifecycle measurement error
// keeps the paper's behaviour — degrade to physical capacity at low
// accuracy rather than failing the query.
func TestMeasurementErrorStillDegrades(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(10)
	mod := New(Config{Source: &lifecycleSource{Source: r.col, err: errors.New("sensor exploded")}})
	g, err := mod.GetGraphCtx(context.Background(), []graph.NodeID{"m-1", "m-5"}, TFHistory(5))
	if err != nil {
		t.Fatalf("semantic measurement error escalated to query failure: %v", err)
	}
	for _, l := range g.Links {
		for _, av := range []stats.Stat{l.AvailFrom(l.A), l.AvailFrom(l.B)} {
			if av.Median != l.Capacity.Median {
				t.Fatalf("degraded availability %v != capacity %v", av, l.Capacity)
			}
			if av.Accuracy > 0.1+1e-9 {
				t.Fatalf("degraded answer claims accuracy %v", av.Accuracy)
			}
		}
	}
}

// TestCancelledContextShortCircuits: a dead context stops a query
// against a healthy in-process source before any work happens.
func TestCancelledContextShortCircuits(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.mod.GetGraphCtx(ctx, nil, TFHistory(5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := r.mod.AvailableBandwidthCtx(ctx, "m-1", "m-5", TFHistory(5)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
