package core

import (
	"math/rand"

	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestFlowInfoPaperVariableExample(t *testing.T) {
	// §4.2: variable flows with relative requirements 3 : 4.5 : 9 on a
	// bottleneck with 5.5 Mbps available get 1, 1.5, 3 Mbps. Build a
	// dumbbell whose core has exactly 5.5 Mbps capacity.
	r := newRig(t, topology.Dumbbell(3, 100, 5.5), nil)
	r.clk.RunUntil(3)
	variable := []Flow{
		{Src: "l0", Dst: "r0", Kind: VariableFlow, Bandwidth: 3e6},
		{Src: "l1", Dst: "r1", Kind: VariableFlow, Bandwidth: 4.5e6},
		{Src: "l2", Dst: "r2", Kind: VariableFlow, Bandwidth: 9e6},
	}
	fi, err := r.mod.QueryFlowInfo(nil, variable, nil, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1e6, 1.5e6, 3e6}
	for i, res := range fi.Variable {
		if math.Abs(res.Bandwidth.Median-want[i]) > 1 {
			t.Fatalf("variable[%d] = %v, want %v", i, res.Bandwidth.Median, want[i])
		}
	}
}

func TestFlowInfoClasses(t *testing.T) {
	r := newRig(t, topology.Dumbbell(3, 100, 10), nil)
	r.clk.RunUntil(3)
	fixed := []Flow{{Src: "l0", Dst: "r0", Kind: FixedFlow, Bandwidth: 2e6}}
	variable := []Flow{
		{Src: "l1", Dst: "r1", Kind: VariableFlow, Bandwidth: 1},
		{Src: "l2", Dst: "r2", Kind: VariableFlow, Bandwidth: 3},
	}
	independent := []Flow{{Src: "l0", Dst: "r1", Kind: IndependentFlow}}
	fi, err := r.mod.QueryFlowInfo(fixed, variable, independent, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if !fi.Fixed[0].Satisfied || math.Abs(fi.Fixed[0].Bandwidth.Median-2e6) > 1 {
		t.Fatalf("fixed = %+v", fi.Fixed[0])
	}
	// Remaining 8 Mbps split 1:3 -> 2 and 6.
	if math.Abs(fi.Variable[0].Bandwidth.Median-2e6) > 1 || math.Abs(fi.Variable[1].Bandwidth.Median-6e6) > 1 {
		t.Fatalf("variable = %v, %v", fi.Variable[0].Bandwidth.Median, fi.Variable[1].Bandwidth.Median)
	}
	// Nothing left for the independent flow.
	if fi.Independent[0].Bandwidth.Median > 1 {
		t.Fatalf("independent = %v", fi.Independent[0].Bandwidth.Median)
	}
	if got := len(fi.All()); got != 4 {
		t.Fatalf("All = %d", got)
	}
}

func TestFlowInfoInternalSharing(t *testing.T) {
	// §4.2 "simultaneous queries": two of the app's own flows crossing
	// the same bottleneck must split it, not each see the full amount.
	r := newRig(t, topology.Dumbbell(2, 100, 10), nil)
	r.clk.RunUntil(3)
	solo, err := r.mod.QueryFlowInfo(nil, nil,
		[]Flow{{Src: "l0", Dst: "r0", Kind: IndependentFlow}}, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	both, err := r.mod.QueryFlowInfo(nil, nil, []Flow{
		{Src: "l0", Dst: "r0", Kind: IndependentFlow},
		{Src: "l1", Dst: "r1", Kind: IndependentFlow},
	}, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(solo.Independent[0].Bandwidth.Median-10e6) > 1 {
		t.Fatalf("solo = %v", solo.Independent[0].Bandwidth.Median)
	}
	for i, res := range both.Independent {
		if math.Abs(res.Bandwidth.Median-5e6) > 1 {
			t.Fatalf("shared[%d] = %v, want 5e6", i, res.Bandwidth.Median)
		}
	}
}

func TestFlowInfoUsesMeasuredAvailability(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	r.clk.RunUntil(30)
	fi, err := r.mod.QueryFlowInfo(nil, nil,
		[]Flow{{Src: "m-4", Dst: "m-7", Kind: IndependentFlow}}, TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fi.Independent[0].Bandwidth.Median-40e6) > 1e5 {
		t.Fatalf("independent under load = %v", fi.Independent[0].Bandwidth.Median)
	}
	if fi.Independent[0].Hops != 3 { // m-4, timberline, whiteface, m-7
		t.Fatalf("hops = %d", fi.Independent[0].Hops)
	}
	if fi.Independent[0].Latency.Median <= 0 {
		t.Fatal("latency missing")
	}
}

func TestFlowInfoUnsatisfiableFixed(t *testing.T) {
	r := newRig(t, topology.Dumbbell(2, 100, 10), nil)
	r.clk.RunUntil(3)
	fixed := []Flow{
		{Src: "l0", Dst: "r0", Kind: FixedFlow, Bandwidth: 8e6},
		{Src: "l1", Dst: "r1", Kind: FixedFlow, Bandwidth: 8e6},
	}
	fi, err := r.mod.QueryFlowInfo(fixed, nil, nil, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range fi.Fixed {
		if res.Satisfied {
			t.Fatalf("fixed[%d] reported satisfied", i)
		}
		if math.Abs(res.Bandwidth.Median-5e6) > 1 {
			t.Fatalf("fixed[%d] = %v, want 5e6", i, res.Bandwidth.Median)
		}
	}
}

func TestFlowInfoVariableCap(t *testing.T) {
	r := newRig(t, topology.Dumbbell(2, 100, 12), nil)
	r.clk.RunUntil(3)
	variable := []Flow{
		{Src: "l0", Dst: "r0", Kind: VariableFlow, Bandwidth: 1, MaxBandwidth: 2e6},
		{Src: "l1", Dst: "r1", Kind: VariableFlow, Bandwidth: 1},
	}
	fi, err := r.mod.QueryFlowInfo(nil, variable, nil, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fi.Variable[0].Bandwidth.Median-2e6) > 1 {
		t.Fatalf("capped = %v", fi.Variable[0].Bandwidth.Median)
	}
	if math.Abs(fi.Variable[1].Bandwidth.Median-10e6) > 1 {
		t.Fatalf("uncapped = %v", fi.Variable[1].Bandwidth.Median)
	}
}

func TestFlowInfoFigure1Backplane(t *testing.T) {
	// Figure 1 slow switches: four simultaneous independent flows from
	// n1..n4 to n5..n8 share switch A's (and B's) 10 Mbps backplane.
	r := newRig(t, topology.Figure1(topology.Figure1SlowSwitches()), nil)
	r.clk.RunUntil(3)
	var ind []Flow
	for i := 1; i <= 4; i++ {
		ind = append(ind, Flow{
			Src:  graph.NodeID("n" + string(rune('0'+i))),
			Dst:  graph.NodeID("n" + string(rune('0'+i+4))),
			Kind: IndependentFlow,
		})
	}
	fi, err := r.mod.QueryFlowInfo(nil, nil, ind, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, res := range fi.Independent {
		total += res.Bandwidth.Median
	}
	if math.Abs(total-10e6) > 1 {
		t.Fatalf("aggregate = %v, want backplane-limited 10e6", total)
	}
}

func TestFlowInfoErrors(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(2)
	if _, err := r.mod.QueryFlowInfo(
		[]Flow{{Src: "m-1", Dst: "m-2", Kind: FixedFlow}}, nil, nil, TFCapacity()); err == nil {
		t.Fatal("fixed flow without bandwidth accepted")
	}
	if _, err := r.mod.QueryFlowInfo(nil, nil,
		[]Flow{{Src: "m-1", Dst: "m-1", Kind: IndependentFlow}}, TFCapacity()); err == nil {
		t.Fatal("self flow accepted")
	}
	if _, err := r.mod.QueryFlowInfo(nil, nil,
		[]Flow{{Src: "m-1", Dst: "ghost", Kind: IndependentFlow}}, TFCapacity()); err == nil {
		t.Fatal("unroutable flow accepted")
	}
}

// Property: random simultaneous queries never promise more than any
// channel's availability — summing every returned allocation over each
// physical channel stays within capacity.
func TestQuickFlowQueryFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	hosts := topology.TestbedHosts
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 40e6)
	r.clk.RunUntil(20)
	for trial := 0; trial < 25; trial++ {
		var fixed, variable, independent []Flow
		mk := func() (Flow, bool) {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				return Flow{}, false
			}
			return Flow{Src: src, Dst: dst}, true
		}
		for i := 0; i < rng.Intn(3); i++ {
			if f, ok := mk(); ok {
				f.Kind = FixedFlow
				f.Bandwidth = 1e6 + rng.Float64()*20e6
				fixed = append(fixed, f)
			}
		}
		for i := 0; i < rng.Intn(4); i++ {
			if f, ok := mk(); ok {
				f.Kind = VariableFlow
				f.Bandwidth = 1 + rng.Float64()*5
				variable = append(variable, f)
			}
		}
		for i := 0; i < rng.Intn(3); i++ {
			if f, ok := mk(); ok {
				f.Kind = IndependentFlow
				independent = append(independent, f)
			}
		}
		fi, err := r.mod.QueryFlowInfo(fixed, variable, independent, TFHistory(15))
		if err != nil {
			t.Fatal(err)
		}
		// Accumulate allocations per physical channel.
		load := make(map[graph.Channel]float64)
		rt := r.net.Routes()
		for _, res := range fi.All() {
			p := rt.Route(res.Flow.Src, res.Flow.Dst)
			for _, ch := range p.Channels() {
				load[ch] += res.Bandwidth.Median
			}
		}
		for ch, l := range load {
			if l > r.net.ChannelCapacity(ch)+1 {
				t.Fatalf("trial %d: channel %v promised %v over capacity %v",
					trial, ch, l, r.net.ChannelCapacity(ch))
			}
		}
		// Ordered quartiles everywhere.
		for _, res := range fi.All() {
			if !res.Bandwidth.Ordered() {
				t.Fatalf("trial %d: unordered stat %+v", trial, res.Bandwidth)
			}
		}
	}
}

func TestFlowResultStatShape(t *testing.T) {
	r := testbedRig(t)
	traffic.OnOff(r.net, "m-6", "m-8", traffic.OnOffConfig{Rate: 80e6, MeanOn: 2, MeanOff: 2, Seed: 1})
	r.clk.RunUntil(60)
	fi, err := r.mod.QueryFlowInfo(nil, nil,
		[]Flow{{Src: "m-4", Dst: "m-7", Kind: IndependentFlow}}, TFHistory(50))
	if err != nil {
		t.Fatal(err)
	}
	bw := fi.Independent[0].Bandwidth
	if !bw.Ordered() {
		t.Fatalf("quartiles unordered: %+v", bw)
	}
	if bw.IQR() <= 0 {
		t.Fatalf("bursty load should yield spread: %+v", bw)
	}
	if bw.Accuracy <= 0 || bw.Accuracy > 1 {
		t.Fatalf("accuracy = %v", bw.Accuracy)
	}
}
