package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/stats"
)

// LinkInfo annotates one logical link with static and dynamic data.
type LinkInfo struct {
	A, B graph.NodeID

	// Capacity is the physical capacity (min along a collapsed chain).
	Capacity stats.Stat

	// Avail holds the availability per direction: Avail[0] for A->B,
	// Avail[1] for B->A.
	Avail [2]stats.Stat

	// Latency is the one-way latency (summed along a collapsed chain).
	Latency stats.Stat
}

// NodeInfo annotates one node of the logical topology.
type NodeInfo struct {
	ID   graph.NodeID
	Kind graph.NodeKind

	// InternalBW is the node's aggregate forwarding limit (0=unlimited).
	InternalBW float64

	// Load is the CPU load fraction for compute nodes, when known.
	Load stats.Stat

	// Memory is the compute node's physical memory in bytes (0 =
	// unknown) — Remos's "simple interface to computation and memory
	// resources".
	Memory float64
}

// Graph is the answer to remos_get_graph: a logical topology whose links
// and nodes carry performance annotations. It represents how the network
// behaves as seen by the application, not the physical wiring (§4.3).
type Graph struct {
	Nodes []NodeInfo
	Links []LinkInfo

	// Timeframe records the time context the annotations were computed
	// under.
	Timeframe Timeframe

	// Epoch identifies the topology snapshot the answer was computed
	// against. Two answers carrying the same Epoch saw the same physical
	// topology; a Refresh (or rediscovery) starts a new epoch.
	Epoch uint64

	// nodeIdx/linkIdx index Nodes and Links by node ID. Answers built by
	// GetGraph share these (immutable) maps with the plan they replay;
	// hand-constructed Graphs leave them nil and fall back to scans.
	nodeIdx map[graph.NodeID]int
	linkIdx map[graph.NodeID][]int
}

// Node returns the annotation for a node, or nil.
func (g *Graph) Node(id graph.NodeID) *NodeInfo {
	if g.nodeIdx != nil {
		if i, ok := g.nodeIdx[id]; ok {
			return &g.Nodes[i]
		}
		return nil
	}
	for i := range g.Nodes {
		if g.Nodes[i].ID == id {
			return &g.Nodes[i]
		}
	}
	return nil
}

// LinksAt returns the logical links incident to a node.
func (g *Graph) LinksAt(id graph.NodeID) []*LinkInfo {
	if g.linkIdx != nil {
		idxs := g.linkIdx[id]
		if len(idxs) == 0 {
			return nil
		}
		out := make([]*LinkInfo, len(idxs))
		for i, j := range idxs {
			out[i] = &g.Links[j]
		}
		return out
	}
	var out []*LinkInfo
	for i := range g.Links {
		if g.Links[i].A == id || g.Links[i].B == id {
			out = append(out, &g.Links[i])
		}
	}
	return out
}

// AvailFrom returns the availability stat for traffic leaving `from` over
// this link. It panics if from is not an endpoint.
func (li *LinkInfo) AvailFrom(from graph.NodeID) stats.Stat {
	switch from {
	case li.A:
		return li.Avail[0]
	case li.B:
		return li.Avail[1]
	}
	panic(fmt.Sprintf("core: %s is not an endpoint of %s--%s", from, li.A, li.B))
}

// GetGraph answers remos_get_graph: the logical topology relevant to
// connecting the given compute nodes, annotated for the timeframe.
//
// Construction: (1) take the subgraph induced by the routes among the
// requested nodes — links routing will never use are hidden; (2) collapse
// chains of pass-through network nodes into single logical links
// (capacity/availability: element-wise min; latency: sum), which also
// abstracts a "complex network in the middle" into one edge; (3) annotate
// for the timeframe. Steps 1–2 are purely topological, so they are
// computed once per (snapshot epoch, node set) and cached as a plan
// (snapshot.go); each query replays the plan against availability memos.
func (m *Modeler) GetGraph(nodes []graph.NodeID, tf Timeframe) (*Graph, error) {
	return m.GetGraphCtx(context.Background(), nodes, tf)
}

// GetGraphCtx is GetGraph under a context: every per-link measurement
// fetch carries the caller's deadline, and a budget that expires mid-
// annotation aborts the query with a typed lifecycle error instead of
// finishing it with fabricated numbers.
func (m *Modeler) GetGraphCtx(ctx context.Context, nodes []graph.NodeID, tf Timeframe) (_ *Graph, retErr error) {
	ctx, finish := m.startQuery(ctx, "query.getgraph", m.qGetGraph)
	defer func() { finish(retErr) }()
	s, err := m.snapshot(ctx)
	if err != nil {
		return nil, err
	}
	key := planKey(nodes)
	if len(nodes) == 0 {
		nodes = s.topo.Graph.ComputeNodes()
	} else {
		for _, n := range nodes {
			nd := s.topo.Graph.Node(n)
			if nd == nil {
				return nil, fmt.Errorf("core: unknown node %q", n)
			}
			if nd.Kind != graph.Compute {
				return nil, fmt.Errorf("core: %q is not a compute node", n)
			}
		}
	}
	plan, err := s.plan(key, nodes)
	if err != nil {
		return nil, err
	}

	v := m.view(s, tf)
	out := &Graph{
		Timeframe: tf,
		Epoch:     s.epoch,
		nodeIdx:   plan.nodeIdx,
		linkIdx:   plan.linkIdx,
	}
	out.Nodes = make([]NodeInfo, len(plan.nodes))
	for i, ni := range plan.nodes {
		if ni.Kind == graph.Compute {
			ld, err := v.hostLoad(ctx, ni.ID)
			if err != nil {
				return nil, fmt.Errorf("core: load of %q: %w", ni.ID, err)
			}
			ni.Load = ld
		}
		out.Nodes[i] = ni
	}
	out.Links = make([]LinkInfo, len(plan.links))
	for i := range plan.links {
		pl := &plan.links[i]
		li := LinkInfo{A: pl.a, B: pl.b, Capacity: pl.capacity, Latency: pl.latency}
		if li.Avail[0], err = v.foldAvail(ctx, pl.fwd, pl.limit); err != nil {
			return nil, err
		}
		if li.Avail[1], err = v.foldAvail(ctx, pl.rev, pl.limit); err != nil {
			return nil, err
		}
		out.Links[i] = li
	}
	return out, nil
}

func tfSpan(tf Timeframe) float64 {
	if tf.Kind == History {
		return tf.Span
	}
	return 0
}

// findLink locates the original physical link by endpoints and capacity.
func findLink(g *graph.Graph, a, b graph.NodeID, capacity float64) *graph.Link {
	for _, l := range g.LinksAt(a) {
		if o, ok := l.Other(a); ok && o == b && l.Capacity == capacity {
			return l
		}
	}
	return nil
}
