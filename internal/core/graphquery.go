package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
)

// LinkInfo annotates one logical link with static and dynamic data.
type LinkInfo struct {
	A, B graph.NodeID

	// Capacity is the physical capacity (min along a collapsed chain).
	Capacity stats.Stat

	// Avail holds the availability per direction: Avail[0] for A->B,
	// Avail[1] for B->A.
	Avail [2]stats.Stat

	// Latency is the one-way latency (summed along a collapsed chain).
	Latency stats.Stat
}

// NodeInfo annotates one node of the logical topology.
type NodeInfo struct {
	ID   graph.NodeID
	Kind graph.NodeKind

	// InternalBW is the node's aggregate forwarding limit (0=unlimited).
	InternalBW float64

	// Load is the CPU load fraction for compute nodes, when known.
	Load stats.Stat

	// Memory is the compute node's physical memory in bytes (0 =
	// unknown) — Remos's "simple interface to computation and memory
	// resources".
	Memory float64
}

// Graph is the answer to remos_get_graph: a logical topology whose links
// and nodes carry performance annotations. It represents how the network
// behaves as seen by the application, not the physical wiring (§4.3).
type Graph struct {
	Nodes []NodeInfo
	Links []LinkInfo

	// Timeframe records the time context the annotations were computed
	// under.
	Timeframe Timeframe
}

// Node returns the annotation for a node, or nil.
func (g *Graph) Node(id graph.NodeID) *NodeInfo {
	for i := range g.Nodes {
		if g.Nodes[i].ID == id {
			return &g.Nodes[i]
		}
	}
	return nil
}

// LinksAt returns the logical links incident to a node.
func (g *Graph) LinksAt(id graph.NodeID) []*LinkInfo {
	var out []*LinkInfo
	for i := range g.Links {
		if g.Links[i].A == id || g.Links[i].B == id {
			out = append(out, &g.Links[i])
		}
	}
	return out
}

// AvailFrom returns the availability stat for traffic leaving `from` over
// this link. It panics if from is not an endpoint.
func (li *LinkInfo) AvailFrom(from graph.NodeID) stats.Stat {
	switch from {
	case li.A:
		return li.Avail[0]
	case li.B:
		return li.Avail[1]
	}
	panic(fmt.Sprintf("core: %s is not an endpoint of %s--%s", from, li.A, li.B))
}

// annLink is the internal mutable form used during collapsing.
type annLink struct {
	a, b     graph.NodeID
	capacity stats.Stat
	avail    [2]stats.Stat // [0] = a->b
	latency  stats.Stat
}

// GetGraph answers remos_get_graph: the logical topology relevant to
// connecting the given compute nodes, annotated for the timeframe.
//
// Construction: (1) take the subgraph induced by the routes among the
// requested nodes — links routing will never use are hidden; (2) annotate
// every physical link with capacity, availability and latency; (3)
// collapse chains of pass-through network nodes into single logical links
// (capacity/availability: element-wise min; latency: sum), which also
// abstracts a "complex network in the middle" into one edge.
func (m *Modeler) GetGraph(nodes []graph.NodeID, tf Timeframe) (*Graph, error) {
	return m.GetGraphCtx(context.Background(), nodes, tf)
}

// GetGraphCtx is GetGraph under a context: every per-link measurement
// fetch carries the caller's deadline, and a budget that expires mid-
// annotation aborts the query with a typed lifecycle error instead of
// finishing it with fabricated numbers.
func (m *Modeler) GetGraphCtx(ctx context.Context, nodes []graph.NodeID, tf Timeframe) (_ *Graph, retErr error) {
	ctx, finish := m.startQuery(ctx, "query.getgraph", "modeler.getgraph_ms")
	defer func() { finish(retErr) }()
	topo, rt, err := m.topology(ctx)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		nodes = topo.Graph.ComputeNodes()
	}
	for _, n := range nodes {
		nd := topo.Graph.Node(n)
		if nd == nil {
			return nil, fmt.Errorf("core: unknown node %q", n)
		}
		if nd.Kind != graph.Compute {
			return nil, fmt.Errorf("core: %q is not a compute node", n)
		}
	}
	requested := make(map[graph.NodeID]bool, len(nodes))
	for _, n := range nodes {
		requested[n] = true
	}

	sub := topo.Graph.InducedByRoutes(rt, nodes)

	// Annotate the physical sub-topology. The induced subgraph has fresh
	// link IDs, so map back to original links by endpoints + capacity.
	anns := make([]*annLink, 0, sub.NumLinks())
	adj := make(map[graph.NodeID][]*annLink)
	for _, l := range sub.Links() {
		orig := findLink(topo.Graph, l.A, l.B, l.Capacity)
		if orig == nil {
			return nil, fmt.Errorf("core: internal: lost link %s--%s", l.A, l.B)
		}
		al := &annLink{
			a: l.A, b: l.B,
			capacity: stats.Exact(l.Capacity),
			latency:  stats.Exact(l.Latency),
		}
		if al.avail[0], err = m.channelAvailability(ctx, topo, rt, orig, orig.DirFrom(l.A), tf); err != nil {
			return nil, err
		}
		if al.avail[1], err = m.channelAvailability(ctx, topo, rt, orig, orig.DirFrom(l.B), tf); err != nil {
			return nil, err
		}
		anns = append(anns, al)
		adj[l.A] = append(adj[l.A], al)
		adj[l.B] = append(adj[l.B], al)
	}

	// Collapse pass-through network-node chains over the annotations.
	removed := make(map[graph.NodeID]bool)
	for {
		collapsed := false
		ids := sub.Nodes()
		for _, id := range ids {
			if removed[id] || requested[id] {
				continue
			}
			nd := sub.Node(id)
			if nd == nil || nd.Kind != graph.Network {
				continue
			}
			ls := live(adj[id])
			if len(ls) != 2 {
				continue
			}
			l1, l2 := ls[0], ls[1]
			nbr1, nbr2 := other(l1, id), other(l2, id)
			if nbr1 == nbr2 {
				continue
			}
			merged := mergeAnn(l1, l2, id, nd.InternalBW)
			// Mark originals dead and install the merged link.
			l1.a, l1.b = "", ""
			l2.a, l2.b = "", ""
			adj[nbr1] = append(adj[nbr1], merged)
			adj[nbr2] = append(adj[nbr2], merged)
			anns = append(anns, merged)
			removed[id] = true
			collapsed = true
		}
		if !collapsed {
			break
		}
	}

	out := &Graph{Timeframe: tf}
	for _, id := range sub.Nodes() {
		if removed[id] {
			continue
		}
		nd := sub.Node(id)
		ni := NodeInfo{ID: id, Kind: nd.Kind, InternalBW: nd.InternalBW, Memory: nd.MemoryBytes}
		if nd.Kind == graph.Compute {
			if ld, err := collector.CtxHostLoad(ctx, m.cfg.Source, id, tfSpan(tf)); err == nil {
				ni.Load = ld
			} else if collector.IsLifecycleError(err) {
				return nil, fmt.Errorf("core: load of %q: %w", id, err)
			} else {
				ni.Load = stats.NoData()
			}
		}
		out.Nodes = append(out.Nodes, ni)
	}
	for _, al := range anns {
		if al.a == "" {
			continue // merged away
		}
		out.Links = append(out.Links, LinkInfo{
			A: al.a, B: al.b,
			Capacity: al.capacity,
			Avail:    al.avail,
			Latency:  al.latency,
		})
	}
	sort.Slice(out.Links, func(i, j int) bool {
		if out.Links[i].A != out.Links[j].A {
			return out.Links[i].A < out.Links[j].A
		}
		return out.Links[i].B < out.Links[j].B
	})
	return out, nil
}

func tfSpan(tf Timeframe) float64 {
	if tf.Kind == History {
		return tf.Span
	}
	return 0
}

func live(ls []*annLink) []*annLink {
	var out []*annLink
	for _, l := range ls {
		if l.a != "" {
			out = append(out, l)
		}
	}
	return out
}

func other(l *annLink, id graph.NodeID) graph.NodeID {
	if l.a == id {
		return l.b
	}
	return l.a
}

// availFrom returns the availability for traffic leaving `from`.
func (l *annLink) availFrom(from graph.NodeID) stats.Stat {
	if l.a == from {
		return l.avail[0]
	}
	return l.avail[1]
}

// mergeAnn merges two annotated links sharing the pass-through node mid
// into one logical link between their far endpoints. An internal
// bandwidth limit on mid folds into the capacity and availability.
func mergeAnn(l1, l2 *annLink, mid graph.NodeID, internalBW float64) *annLink {
	a := other(l1, mid)
	b := other(l2, mid)
	out := &annLink{a: a, b: b}
	out.capacity = stats.MinStat(l1.capacity, l2.capacity)
	out.latency = stats.AddStat(l1.latency, l2.latency)
	// a -> b traverses l1 from a, then l2 from mid.
	out.avail[0] = stats.MinStat(l1.availFrom(a), l2.availFrom(mid))
	// b -> a traverses l2 from b, then l1 from mid.
	out.avail[1] = stats.MinStat(l2.availFrom(b), l1.availFrom(mid))
	if internalBW > 0 {
		cap := stats.Exact(internalBW)
		out.capacity = stats.MinStat(out.capacity, cap)
		out.avail[0] = stats.MinStat(out.avail[0], cap)
		out.avail[1] = stats.MinStat(out.avail[1], cap)
	}
	return out
}

// findLink locates the original physical link by endpoints and capacity.
func findLink(g *graph.Graph, a, b graph.NodeID, capacity float64) *graph.Link {
	for _, l := range g.LinksAt(a) {
		if o, ok := l.Other(a); ok && o == b && l.Capacity == capacity {
			return l
		}
	}
	return nil
}
