// Package core implements the Remos Modeler — the paper's primary
// contribution: a query-based, network-independent interface that
// applications link against to ask about the network (Figure 2, right
// half). It consumes a collector.Source (in-process collector, TCP
// client, or multi-collector merge) and answers the two queries of §4:
//
//	remos_get_graph(nodes, graph, timeframe)   -> Modeler.GetGraph
//	remos_flow_info(fixed, variable, indep, t) -> Modeler.FlowInfo
//
// plus the convenience queries the tool chain uses (bandwidth matrices
// for clustering).
//
// All dynamic quantities are reported as quartile Stats (§4.4); flow
// queries resolve sharing with weighted max-min over the queried flows
// simultaneously (§4.2); topology queries return a logical topology with
// unused links pruned and pass-through router chains collapsed (§4.3).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// TimeframeKind selects the variable-timescale semantics of a query.
type TimeframeKind int

const (
	// Capacity reports invariant physical capacities, ignoring traffic.
	Capacity TimeframeKind = iota
	// Current reports the most recent measurement.
	Current
	// History reports measurements averaged over the trailing Span.
	History
	// Future reports a prediction Horizon seconds ahead, derived from
	// the measurement history by the Modeler's predictor.
	Future
)

func (k TimeframeKind) String() string {
	switch k {
	case Capacity:
		return "capacity"
	case Current:
		return "current"
	case History:
		return "history"
	case Future:
		return "future"
	default:
		return fmt.Sprintf("TimeframeKind(%d)", int(k))
	}
}

// Timeframe is the time context of a query (§4.4 "variable timescales").
type Timeframe struct {
	Kind    TimeframeKind
	Span    float64 // History: trailing window in seconds
	Horizon float64 // Future: seconds ahead
}

// TFCapacity, TFCurrent, TFHistory and TFFuture construct timeframes.
func TFCapacity() Timeframe              { return Timeframe{Kind: Capacity} }
func TFCurrent() Timeframe               { return Timeframe{Kind: Current} }
func TFHistory(span float64) Timeframe   { return Timeframe{Kind: History, Span: span} }
func TFFuture(horizon float64) Timeframe { return Timeframe{Kind: Future, Horizon: horizon} }

// Config parameterizes a Modeler.
type Config struct {
	// Source supplies topology and measurements.
	Source collector.Source

	// Predictor is used for Future timeframes (default stats.EWMA).
	Predictor stats.Predictor

	// DiscountSelf subtracts the application's registered own flows from
	// measured utilization before computing availability. The paper
	// observes (§8.3) that without this an application "would migrate to
	// avoid its own traffic, which is clearly a decision based on an
	// inherent fallacy"; registering flows fixes it. Off by default to
	// match the paper's implementation.
	DiscountSelf bool

	// Sharing selects the policy used to resolve flow queries. The
	// default is max-min fair share, the paper's recommendation ("the
	// basic sharing policy assumed by Remos corresponds to the max-min
	// fair share policy"); ShareProportional is the naive model kept for
	// the sharing-policy ablation.
	Sharing SharingPolicy

	// StaleHalfLife decays the accuracy of Future predictions by the age
	// of the measurement history they extrapolate from: accuracy is
	// halved for every StaleHalfLife seconds since the channel's newest
	// sample. Current and History answers already carry collector-side
	// decay (collector.Config.StaleHalfLife); this setting covers the
	// prediction path, which is rebuilt from raw samples. Zero disables.
	StaleHalfLife float64

	// Telemetry, when non-nil, records query-path metrics (latency
	// quartiles per query kind, snapshot epoch, availability-memo hit
	// rates) and per-query spans. Nil disables modeler-side telemetry at
	// zero cost; trace IDs still propagate to the collector either way.
	Telemetry *telemetry.Registry
}

// SharingPolicy selects how QueryFlowInfo splits contended bandwidth.
type SharingPolicy int

const (
	// ShareMaxMin is weighted max-min fairness (the default).
	ShareMaxMin SharingPolicy = iota
	// ShareProportional splits every link proportionally to weights
	// without redistributing what bottlenecked-elsewhere flows leave
	// behind; it systematically under-promises (see the ablation).
	ShareProportional
)

// Modeler answers Remos queries. Safe for concurrent use: queries run
// lock-free against an immutable, epoch-numbered topology snapshot
// (see snapshot.go), so readers never block each other; only a Refresh
// — or the first query after one — takes a lock, to single-flight the
// rebuild.
type Modeler struct {
	cfg Config
	tel *telemetry.Registry // nil when Config.Telemetry was nil

	// vsrc is non-nil when the source reports data versions
	// (collector.VersionedSource), which gates availability memoization.
	vsrc collector.VersionedSource

	// snap is the read side: queries Load it and proceed without locks.
	// buildMu single-flights rebuilds after Refresh (or at first use);
	// epoch numbers each installed snapshot.
	snap    atomic.Pointer[snapshot]
	buildMu sync.Mutex
	epoch   atomic.Uint64

	// selfMu guards the registered self flows; selfGen folds into the
	// memo version so registering or clearing flows invalidates
	// memoized availabilities (DiscountSelf bakes them in).
	selfMu  sync.Mutex
	self    []selfFlow
	selfGen atomic.Uint64

	// Pre-resolved instruments: registry lookups (an RWMutex plus a map
	// hit each) stay off the per-query path. All methods are nil-safe
	// no-ops when telemetry is off.
	gEpoch     *telemetry.Gauge
	gCacheAge  *telemetry.Gauge
	cFetches   *telemetry.Counter
	cMemoHits  *telemetry.Counter
	cMemoMiss  *telemetry.Counter
	qGetGraph  *telemetry.Quantile
	qFlowQuery *telemetry.Quantile
	qBW        *telemetry.Quantile
	qMatrix    *telemetry.Quantile

	// matrixSyncVer is the source data version (plus one) the serving
	// matrix path last verified the topology against; see syncSnapshot.
	matrixSyncVer atomic.Uint64
}

type selfFlow struct {
	src, dst graph.NodeID
	rate     float64
}

// New creates a Modeler over a collector source.
func New(cfg Config) *Modeler {
	if cfg.Source == nil {
		panic("core: Modeler requires a Source")
	}
	if cfg.Predictor == nil {
		cfg.Predictor = stats.EWMA{Alpha: 0.3}
	}
	m := &Modeler{cfg: cfg, tel: cfg.Telemetry}
	if vs, ok := cfg.Source.(collector.VersionedSource); ok {
		if _, vok := vs.DataVersion(); vok {
			m.vsrc = vs
		}
	}
	m.gEpoch = m.tel.Gauge("modeler.snapshot_epoch")
	m.gCacheAge = m.tel.Gauge("modeler.topo_cache_age_s")
	m.cFetches = m.tel.Counter("modeler.topo_fetches")
	m.cMemoHits = m.tel.Counter("modeler.avail_memo_hits")
	m.cMemoMiss = m.tel.Counter("modeler.avail_memo_misses")
	m.qGetGraph = m.tel.Quantile("modeler.getgraph_ms", 0)
	m.qFlowQuery = m.tel.Quantile("modeler.flowquery_ms", 0)
	m.qBW = m.tel.Quantile("modeler.bw_ms", 0)
	m.qMatrix = m.tel.Quantile("modeler.matrix_ms", 0)
	return m
}

// Telemetry returns the Modeler's metrics registry (nil when telemetry
// was not configured).
func (m *Modeler) Telemetry() *telemetry.Registry { return m.tel }

// Refresh drops the current snapshot so the next query re-discovers the
// topology under a fresh epoch. In-flight queries finish against the
// snapshot they already loaded — that is the point of immutability.
func (m *Modeler) Refresh() { m.snap.Store(nil) }

// snapshot returns the current topology snapshot, building (and
// installing) one if Refresh dropped it. The fast path is a single
// atomic load; the build path is single-flighted under buildMu so a
// thundering herd after Refresh does one discovery, not N.
func (m *Modeler) snapshot(ctx context.Context) (*snapshot, error) {
	if s := m.snap.Load(); s != nil {
		if m.tel != nil {
			m.gCacheAge.Set(time.Since(s.fetched).Seconds())
		}
		return s, nil
	}
	m.buildMu.Lock()
	defer m.buildMu.Unlock()
	if s := m.snap.Load(); s != nil {
		return s, nil
	}
	t, err := collector.CtxTopology(ctx, m.cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rt, err := t.Graph.Routes()
	if err != nil {
		return nil, fmt.Errorf("core: routing discovered topology: %w", err)
	}
	s := newSnapshot(m.epoch.Add(1), t, rt, m.vsrc != nil)
	m.snap.Store(s)
	m.cFetches.Inc()
	m.gEpoch.Set(float64(s.epoch))
	m.gCacheAge.Set(0)
	return s, nil
}

// topology returns the current snapshot's topology and routes — the
// compatibility form for callers that don't need epochs or memos.
func (m *Modeler) topology(ctx context.Context) (*collector.Topology, *graph.RouteTable, error) {
	s, err := m.snapshot(ctx)
	if err != nil {
		return nil, nil, err
	}
	return s.topo, s.rt, nil
}

// memoVersion is the combined data version availability memos key on:
// the source's version (bumped per poll/discovery/restore) plus the
// self-flow generation. Both are monotone, so the sum is monotone.
func (m *Modeler) memoVersion() (uint64, bool) {
	if m.vsrc == nil {
		return 0, false
	}
	v, ok := m.vsrc.DataVersion()
	if !ok {
		return 0, false
	}
	return v + m.selfGen.Load(), true
}

// startQuery is the shared telemetry prologue of the public query entry
// points (§4's remos_get_graph and remos_flow_info): it guarantees ctx
// carries a trace ID — minting one if the caller supplied none — and
// opens a span named for the query. The returned finish records the
// latency quantile and commits the span; call it exactly once, with the
// query's final error.
func (m *Modeler) startQuery(ctx context.Context, span string, q *telemetry.Quantile) (context.Context, func(error)) {
	ctx, trace := telemetry.EnsureTrace(ctx)
	sp := m.tel.StartSpan(trace, span)
	start := time.Now()
	return ctx, func(err error) {
		q.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.Finish()
	}
}

// RegisterSelfFlow tells the Modeler about a flow the application itself
// is currently sending, so DiscountSelf can exclude it. Rate is bits/s.
func (m *Modeler) RegisterSelfFlow(src, dst graph.NodeID, rate float64) {
	m.selfMu.Lock()
	defer m.selfMu.Unlock()
	m.self = append(m.self, selfFlow{src, dst, rate})
	m.selfGen.Add(1)
}

// ClearSelfFlows forgets all registered self flows.
func (m *Modeler) ClearSelfFlows() {
	m.selfMu.Lock()
	defer m.selfMu.Unlock()
	m.self = nil
	m.selfGen.Add(1)
}

// selfRateOn returns the registered self-traffic rate crossing a channel.
func (m *Modeler) selfRateOn(topo *collector.Topology, rt *graph.RouteTable, key collector.ChannelKey) float64 {
	m.selfMu.Lock()
	defer m.selfMu.Unlock()
	var sum float64
	for _, sf := range m.self {
		p := rt.Route(sf.src, sf.dst)
		if p == nil {
			continue
		}
		for i, l := range p.Links {
			if topo.Key(l, l.DirFrom(p.Nodes[i])) == key {
				sum += sf.rate
			}
		}
	}
	return sum
}

// computeChannelAvailability computes the availability Stat of one
// channel under a timeframe: capacity for TFCapacity, otherwise capacity
// minus the (possibly predicted) utilization. This is the slow path;
// queries go through view.channelAvailability, which memoizes the answer
// per (snapshot, timeframe, data version).
//
// Error contract: lifecycle errors (deadline, cancellation, shed, busy —
// collector.IsLifecycleError) abort the query and propagate; any other
// measurement error falls back to capacity with low accuracy, matching
// "initial implementations may only support historical performance". The
// distinction matters: a missing measurement degrades an answer, but a
// caller whose budget expired must get the typed error, not a fabricated
// capacity number computed after they stopped listening.
func (m *Modeler) computeChannelAvailability(ctx context.Context, s *snapshot,
	l *graph.Link, d graph.Dir, tf Timeframe) (stats.Stat, error) {

	key := s.topo.Key(l, d)
	if tf.Kind == Capacity {
		return stats.Exact(l.Capacity), nil
	}
	degrade := func(err error) (stats.Stat, error) {
		if err != nil && collector.IsLifecycleError(err) {
			return stats.NoData(), fmt.Errorf("core: availability of %v: %w", key, err)
		}
		return stats.Exact(l.Capacity).WithAccuracy(0.1), nil
	}
	var util stats.Stat
	switch tf.Kind {
	case Current:
		u, err := collector.CtxUtilization(ctx, m.cfg.Source, key, 0)
		if err != nil {
			return degrade(err)
		}
		util = u
	case History:
		u, err := collector.CtxUtilization(ctx, m.cfg.Source, key, tf.Span)
		if err != nil {
			return degrade(err)
		}
		util = u
	case Future:
		samples, err := collector.CtxSamples(ctx, m.cfg.Source, key)
		if err != nil || len(samples) == 0 {
			return degrade(err)
		}
		util = stats.PredictStat(samples, m.cfg.Predictor, tf.Horizon)
		if m.cfg.StaleHalfLife > 0 {
			age, err := collector.CtxDataAge(ctx, m.cfg.Source, key)
			if err != nil && collector.IsLifecycleError(err) {
				return stats.NoData(), fmt.Errorf("core: data age of %v: %w", key, err)
			}
			if err == nil && age > 0 {
				util.Age = age
				util = util.AgeDecayed(m.cfg.StaleHalfLife)
			}
		}
	default:
		panic(fmt.Sprintf("core: bad timeframe kind %v", tf.Kind))
	}
	if !util.Valid() {
		return degrade(nil)
	}
	if m.cfg.DiscountSelf {
		if own := m.selfRateOn(s.topo, s.rt, key); own > 0 {
			util = stats.Stat{
				Min: util.Min - own, Q1: util.Q1 - own, Median: util.Median - own,
				Q3: util.Q3 - own, Max: util.Max - own,
				Accuracy: util.Accuracy, Samples: util.Samples,
			}.ClampNonNegative()
		}
	}
	return stats.SubFrom(l.Capacity, util), nil
}

// AvailableBandwidth reports the bottleneck availability between two
// hosts under a timeframe: the element-wise minimum along the route.
func (m *Modeler) AvailableBandwidth(src, dst graph.NodeID, tf Timeframe) (stats.Stat, error) {
	return m.AvailableBandwidthCtx(context.Background(), src, dst, tf)
}

// AvailableBandwidthCtx is AvailableBandwidth under a context: the
// deadline rides to the collector with every measurement fetch, and
// cancellation aborts between (and inside) link lookups.
func (m *Modeler) AvailableBandwidthCtx(ctx context.Context, src, dst graph.NodeID, tf Timeframe) (_ stats.Stat, retErr error) {
	ctx, finish := m.startQuery(ctx, "query.bw", m.qBW)
	defer func() { finish(retErr) }()
	s, err := m.snapshot(ctx)
	if err != nil {
		return stats.NoData(), err
	}
	if src == dst {
		return stats.Exact(math.Inf(1)), nil
	}
	p := s.rt.Route(src, dst)
	if p == nil {
		return stats.NoData(), fmt.Errorf("core: no route %s -> %s", src, dst)
	}
	v := m.view(s, tf)
	out := stats.NoData()
	for i, l := range p.Links {
		a, err := v.channelAvailability(ctx, l, l.DirFrom(p.Nodes[i]))
		if err != nil {
			return stats.NoData(), err
		}
		out = stats.MinStat(out, a)
	}
	// Router internal bandwidth also caps the path (Figure 1).
	for _, nid := range p.Nodes[1 : len(p.Nodes)-1] {
		if n := s.topo.Graph.Node(nid); n != nil && n.InternalBW > 0 {
			out = stats.MinStat(out, stats.Exact(n.InternalBW))
		}
	}
	return out, nil
}

// PathLatency reports the one-way latency between two hosts (per-hop
// constant model, exact).
func (m *Modeler) PathLatency(src, dst graph.NodeID) (stats.Stat, error) {
	return m.PathLatencyCtx(context.Background(), src, dst)
}

// PathLatencyCtx is PathLatency under a context.
func (m *Modeler) PathLatencyCtx(ctx context.Context, src, dst graph.NodeID) (stats.Stat, error) {
	_, rt, err := m.topology(ctx)
	if err != nil {
		return stats.NoData(), err
	}
	if src == dst {
		return stats.Exact(0), nil
	}
	p := rt.Route(src, dst)
	if p == nil {
		return stats.NoData(), fmt.Errorf("core: no route %s -> %s", src, dst)
	}
	return stats.Exact(p.Latency()), nil
}

// Health reports per-agent collection health when the underlying source
// tracks it (in-process Collector, TCP Client, or Merged over those);
// nil otherwise. Applications use it to tell "the link is idle" apart
// from "nobody has heard from that router lately".
func (m *Modeler) Health() map[graph.NodeID]collector.AgentHealth {
	if hs, ok := m.cfg.Source.(collector.HealthSource); ok {
		return hs.Health()
	}
	return nil
}

// DataAge reports how many seconds old the newest measurement for a
// channel is (+Inf before the first sample).
func (m *Modeler) DataAge(key collector.ChannelKey) (float64, error) {
	return m.DataAgeCtx(context.Background(), key)
}

// DataAgeCtx is DataAge under a context.
func (m *Modeler) DataAgeCtx(ctx context.Context, key collector.ChannelKey) (float64, error) {
	return collector.CtxDataAge(ctx, m.cfg.Source, key)
}

// HostLoad reports a host's CPU load fraction (Remos's "simple interface
// to computation resources").
func (m *Modeler) HostLoad(id graph.NodeID, tf Timeframe) (stats.Stat, error) {
	return m.HostLoadCtx(context.Background(), id, tf)
}

// HostLoadCtx is HostLoad under a context.
func (m *Modeler) HostLoadCtx(ctx context.Context, id graph.NodeID, tf Timeframe) (stats.Stat, error) {
	st, err := collector.CtxHostLoad(ctx, m.cfg.Source, id, tfSpan(tf))
	if err != nil {
		return stats.NoData(), err
	}
	return st, nil
}

// HostMemory reports a host's physical memory in bytes (0 if the agent
// does not expose it). Applications use it for the §2 sizing constraint:
// enough nodes to fit the data set.
func (m *Modeler) HostMemory(id graph.NodeID) (float64, error) {
	topo, _, err := m.topology(context.Background())
	if err != nil {
		return 0, err
	}
	n := topo.Graph.Node(id)
	if n == nil {
		return 0, fmt.Errorf("core: unknown node %q", id)
	}
	if n.Kind != graph.Compute {
		return 0, fmt.Errorf("core: %q is not a compute node", id)
	}
	return n.MemoryBytes, nil
}

// MinNodesForData returns the smallest node count whose pooled memory
// holds dataBytes, given the per-host memories of the candidate pool
// (largest hosts first). It returns an error when even the whole pool is
// too small.
func (m *Modeler) MinNodesForData(pool []graph.NodeID, dataBytes float64) (int, error) {
	var mems []float64
	for _, id := range pool {
		mem, err := m.HostMemory(id)
		if err != nil {
			return 0, err
		}
		mems = append(mems, mem)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mems)))
	var sum float64
	for i, mem := range mems {
		sum += mem
		if sum >= dataBytes {
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("core: pool memory %v bytes cannot hold %v bytes", sum, dataBytes)
}
