package core

import (
	"math"
	"testing"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// rig wires topology -> netsim -> agents -> collector -> modeler.
type rig struct {
	clk *simclock.Clock
	net *netsim.Network
	col *collector.Collector
	mod *Modeler
}

func newRig(t testing.TB, g *graph.Graph, cfgMod func(*Config)) *rig {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, g)
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:        snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    1,
		PerHopLatency: topology.PerHopLatency,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Source: col}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	return &rig{clk: clk, net: n, col: col, mod: New(cfg)}
}

func testbedRig(t *testing.T) *rig { return newRig(t, topology.Testbed(), nil) }

func TestAvailableBandwidthCapacity(t *testing.T) {
	r := testbedRig(t)
	st, err := r.mod.AvailableBandwidth("m-1", "m-5", TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if st.Median != 100e6 {
		t.Fatalf("capacity availability = %v", st)
	}
	if st.Accuracy != 1 {
		t.Fatalf("capacity accuracy = %v", st.Accuracy)
	}
}

func TestAvailableBandwidthUnderLoad(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	r.clk.RunUntil(30)
	// m-4 -> m-7 shares timberline->whiteface with the blast.
	st, err := r.mod.AvailableBandwidth("m-4", "m-7", TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-40e6) > 1e5 {
		t.Fatalf("availability = %v, want ~40e6", st)
	}
	// A pair avoiding the busy link sees full capacity.
	st2, _ := r.mod.AvailableBandwidth("m-1", "m-3", TFHistory(20))
	if math.Abs(st2.Median-100e6) > 1e5 {
		t.Fatalf("clean-path availability = %v", st2)
	}
}

func TestAvailableBandwidthCurrentVsHistory(t *testing.T) {
	r := testbedRig(t)
	// 20s idle then traffic; "current" sees the load, long history mixes.
	r.clk.RunUntil(20)
	traffic.Blast(r.net, "m-6", "m-8", 80e6)
	r.clk.RunUntil(40)
	cur, _ := r.mod.AvailableBandwidth("m-4", "m-7", TFCurrent())
	hist, _ := r.mod.AvailableBandwidth("m-4", "m-7", TFHistory(39))
	if math.Abs(cur.Median-20e6) > 1e5 {
		t.Fatalf("current = %v", cur)
	}
	if hist.Max < 90e6 {
		t.Fatalf("history max = %v, should include idle period", hist.Max)
	}
	if hist.IQR() < 1e6 {
		t.Fatalf("history IQR = %v", hist.IQR())
	}
}

func TestFutureTimeframe(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 50e6)
	r.clk.RunUntil(30)
	fut, err := r.mod.AvailableBandwidth("m-4", "m-7", TFFuture(10))
	if err != nil {
		t.Fatal(err)
	}
	// Steady load: prediction should be close to the steady availability.
	if math.Abs(fut.Median-50e6) > 2e6 {
		t.Fatalf("future = %v", fut)
	}
	if fut.Accuracy <= 0 || fut.Accuracy > 1 {
		t.Fatalf("future accuracy = %v", fut.Accuracy)
	}
}

func TestPathLatencyAndErrors(t *testing.T) {
	r := testbedRig(t)
	st, err := r.mod.PathLatency("m-1", "m-8")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-4*topology.PerHopLatency) > 1e-12 {
		t.Fatalf("latency = %v", st)
	}
	self, _ := r.mod.PathLatency("m-1", "m-1")
	if self.Median != 0 {
		t.Fatal("self latency != 0")
	}
	if _, err := r.mod.AvailableBandwidth("m-1", "nope", TFCurrent()); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestHostLoadQuery(t *testing.T) {
	r := testbedRig(t)
	r.net.SetHostLoad("m-2", 0.3)
	r.clk.RunUntil(5)
	st, err := r.mod.HostLoad("m-2", TFHistory(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-0.3) > 1e-9 {
		t.Fatalf("load = %v", st)
	}
}

func TestGetGraphFullTestbed(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(5)
	g, err := r.mod.GetGraph(nil, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	// All 8 hosts; aspen & whiteface kept (degree > 2); timberline kept
	// (degree 5).
	if got := len(g.Nodes); got != 11 {
		t.Fatalf("nodes = %d", got)
	}
	if got := len(g.Links); got != 10 {
		t.Fatalf("links = %d", got)
	}
	for _, l := range g.Links {
		if l.Capacity.Median != 100e6 {
			t.Fatalf("link %s--%s capacity %v", l.A, l.B, l.Capacity)
		}
	}
}

func TestGetGraphPrunesAndCollapses(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(5)
	// Only m-1 and m-8: route crosses all three routers; m-2..m-7 links
	// pruned; aspen and whiteface become degree-2 pass-throughs and the
	// whole chain collapses to one logical link.
	g, err := r.mod.GetGraph([]graph.NodeID{"m-1", "m-8"}, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 2 {
		names := []graph.NodeID{}
		for _, n := range g.Nodes {
			names = append(names, n.ID)
		}
		t.Fatalf("nodes = %v", names)
	}
	if len(g.Links) != 1 {
		t.Fatalf("links = %d", len(g.Links))
	}
	l := g.Links[0]
	if l.Capacity.Median != 100e6 {
		t.Fatalf("capacity = %v", l.Capacity)
	}
	// Latency = 4 hops.
	if math.Abs(l.Latency.Median-4*topology.PerHopLatency) > 1e-12 {
		t.Fatalf("latency = %v", l.Latency)
	}
}

func TestGetGraphLogicalAvailability(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 70e6) // uses timberline->whiteface
	r.clk.RunUntil(30)
	g, err := r.mod.GetGraph([]graph.NodeID{"m-4", "m-7"}, TFHistory(20))
	if err != nil {
		t.Fatal(err)
	}
	// Logical link m-4 -- m-7 via timberline, whiteface (both collapsed).
	if len(g.Links) != 1 {
		t.Fatalf("links = %d", len(g.Links))
	}
	l := g.Links[0]
	fwd := l.AvailFrom("m-4")
	if math.Abs(fwd.Median-30e6) > 1e5 {
		t.Fatalf("forward avail = %v, want ~30e6", fwd)
	}
	// Reverse direction is unloaded.
	rev := l.AvailFrom("m-7")
	if math.Abs(rev.Median-100e6) > 1e5 {
		t.Fatalf("reverse avail = %v", rev)
	}
}

func TestGetGraphFutureTimeframe(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 50e6)
	r.clk.RunUntil(30)
	g, err := r.mod.GetGraph([]graph.NodeID{"m-4", "m-7"}, TFFuture(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Links) != 1 {
		t.Fatalf("links = %d", len(g.Links))
	}
	fwd := g.Links[0].AvailFrom("m-4")
	// Steady load: the prediction should sit near the 50 Mbps leftover.
	if math.Abs(fwd.Median-50e6) > 3e6 {
		t.Fatalf("future avail = %v", fwd)
	}
	if !fwd.Ordered() || fwd.Accuracy <= 0 {
		t.Fatalf("future stat = %+v", fwd)
	}
	if g.Timeframe.Kind != Future {
		t.Fatalf("timeframe = %v", g.Timeframe)
	}
}

func TestGetGraphRejectsBadNodes(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(2)
	if _, err := r.mod.GetGraph([]graph.NodeID{"m-1", "nope"}, TFCapacity()); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := r.mod.GetGraph([]graph.NodeID{"m-1", "aspen"}, TFCapacity()); err == nil {
		t.Fatal("router accepted as endpoint")
	}
}

func TestGetGraphFigure1InternalBandwidth(t *testing.T) {
	// Figure 1 second reading: switches with 10 Mbps internal bandwidth.
	// n1 -- n5 logical path collapses A and B; capacity limited to 10.
	r := newRig(t, topology.Figure1(topology.Figure1SlowSwitches()), nil)
	r.clk.RunUntil(5)
	g, err := r.mod.GetGraph([]graph.NodeID{"n1", "n5"}, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Links) != 1 {
		t.Fatalf("links = %d", len(g.Links))
	}
	if g.Links[0].Capacity.Median != 10e6 {
		t.Fatalf("capacity = %v, want internal-BW-limited 10e6", g.Links[0].Capacity)
	}
}

func TestBandwidthMatrix(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 80e6)
	r.clk.RunUntil(20)
	nodes := []graph.NodeID{"m-4", "m-5", "m-7"}
	mat, err := r.mod.BandwidthMatrix(nodes, TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(mat[0][0], 1) {
		t.Fatalf("diagonal = %v", mat[0][0])
	}
	// m-4 <-> m-5 avoid the busy link; m-4 -> m-7 crosses it.
	if math.Abs(mat[0][1]-100e6) > 1e5 {
		t.Fatalf("m-4->m-5 = %v", mat[0][1])
	}
	if math.Abs(mat[0][2]-20e6) > 1e5 {
		t.Fatalf("m-4->m-7 = %v", mat[0][2])
	}
	lat, err := r.mod.LatencyMatrix(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if lat[0][1] <= 0 || lat[0][0] != 0 {
		t.Fatalf("latency matrix = %v", lat)
	}
}

func TestSelfTrafficDiscount(t *testing.T) {
	mkRig := func(discount bool) *rig {
		return newRig(t, topology.Testbed(), func(c *Config) { c.DiscountSelf = discount })
	}
	run := func(r *rig) (withSelf float64) {
		// The "application" itself sends 50 Mbps m-4 -> m-7.
		r.net.StartFlow(netsim.FlowSpec{Src: "m-4", Dst: "m-7", RateCap: 50e6, Owner: "app"})
		r.mod.RegisterSelfFlow("m-4", "m-7", 50e6)
		r.clk.RunUntil(30)
		st, err := r.mod.AvailableBandwidth("m-4", "m-7", TFHistory(20))
		if err != nil {
			t.Fatal(err)
		}
		return st.Median
	}
	// Paper-faithful: the app's own traffic makes its path look busy.
	naive := run(mkRig(false))
	if math.Abs(naive-50e6) > 1e5 {
		t.Fatalf("naive availability = %v, want ~50e6", naive)
	}
	// Discounted: its own 50 Mbps is excluded, path looks clean.
	fixed := run(mkRig(true))
	if math.Abs(fixed-100e6) > 1e5 {
		t.Fatalf("discounted availability = %v, want ~100e6", fixed)
	}
}

func TestRefreshAndClearSelfFlows(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(2)
	if _, err := r.mod.GetGraph(nil, TFCapacity()); err != nil {
		t.Fatal(err)
	}
	r.mod.RegisterSelfFlow("m-1", "m-2", 1e6)
	r.mod.ClearSelfFlows()
	r.mod.Refresh()
	if _, err := r.mod.GetGraph(nil, TFCapacity()); err != nil {
		t.Fatal(err)
	}
}
