package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// checkGraph asserts that a remos_get_graph answer is internally
// consistent: built from exactly one snapshot (every link endpoint
// resolves in the same answer's node list) with ordered quartiles.
func checkGraph(g *Graph) error {
	if g.Epoch == 0 {
		return fmt.Errorf("graph answer with zero epoch")
	}
	for i := range g.Links {
		l := &g.Links[i]
		if g.Node(l.A) == nil || g.Node(l.B) == nil {
			return fmt.Errorf("epoch %d: link %s--%s references a node missing from the same answer (mixed snapshots?)",
				g.Epoch, l.A, l.B)
		}
		for _, st := range []struct {
			name string
			v    interface{ Ordered() bool }
		}{
			{"capacity", l.Capacity}, {"avail[0]", l.Avail[0]},
			{"avail[1]", l.Avail[1]}, {"latency", l.Latency},
		} {
			if !st.v.Ordered() {
				return fmt.Errorf("epoch %d: link %s--%s %s quartiles out of order: %+v",
					g.Epoch, l.A, l.B, st.name, st.v)
			}
		}
	}
	return nil
}

// TestConcurrentQueriesConsistentSnapshots hammers the read path from
// many goroutines while another goroutine repeatedly calls Refresh. Run
// under -race this exercises the lock-free snapshot/memo/plan machinery;
// the assertions check that every answer is built from exactly one
// epoch-consistent snapshot with ordered quartiles, and that the epochs
// one goroutine observes never go backwards.
func TestConcurrentQueriesConsistentSnapshots(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	r.clk.RunUntil(30)

	const (
		workers = 8
		iters   = 150
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tfs := []Timeframe{TFHistory(10), TFCurrent(), TFCapacity()}
			var lastEpoch uint64
			for i := 0; i < iters; i++ {
				tf := tfs[(i+w)%len(tfs)]
				switch (i + w) % 4 {
				case 0, 1:
					g, err := r.mod.GetGraphCtx(ctx, nil, tf)
					if err != nil {
						errs <- err
						return
					}
					if err := checkGraph(g); err != nil {
						errs <- err
						return
					}
					if g.Epoch < lastEpoch {
						errs <- fmt.Errorf("worker %d: epoch went backwards: %d after %d", w, g.Epoch, lastEpoch)
						return
					}
					lastEpoch = g.Epoch
				case 2:
					fi, err := r.mod.QueryFlowInfoCtx(ctx,
						[]Flow{{Src: "m-1", Dst: "m-7", Kind: FixedFlow, Bandwidth: 2e6}},
						[]Flow{{Src: "m-2", Dst: "m-7", Kind: VariableFlow, Bandwidth: 1}},
						[]Flow{{Src: "m-4", Dst: "m-8", Kind: IndependentFlow}},
						tf)
					if err != nil {
						errs <- err
						return
					}
					if fi.Epoch == 0 {
						errs <- fmt.Errorf("worker %d: flow answer with zero epoch", w)
						return
					}
					for _, fr := range fi.All() {
						if !fr.Bandwidth.Ordered() {
							errs <- fmt.Errorf("worker %d: flow bandwidth quartiles out of order: %+v", w, fr.Bandwidth)
							return
						}
					}
				case 3:
					st, err := r.mod.AvailableBandwidthCtx(ctx, "m-4", "m-7", tf)
					if err != nil {
						errs <- err
						return
					}
					if !st.Ordered() {
						errs <- fmt.Errorf("worker %d: bandwidth quartiles out of order: %+v", w, st)
						return
					}
				}
			}
		}(w)
	}
	// Churn snapshots while the queries run: every Refresh forces a new
	// epoch, plan cache, and availability memo.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			r.mod.Refresh()
			r.mod.RegisterSelfFlow("m-1", "m-5", 1e5)
			r.mod.ClearSelfFlows()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAvailMemoHitsAndInvalidation pins the availability-memo contract:
// identical queries between poll ticks share memoized channel stats
// (hits, bit-identical answers), and new data — a poll tick — invalidates
// the memo so answers track the network again.
func TestAvailMemoHitsAndInvalidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := newRig(t, topology.Testbed(), func(c *Config) { c.Telemetry = reg })
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	r.clk.RunUntil(30)

	hits := reg.Counter("modeler.avail_memo_hits")
	misses := reg.Counter("modeler.avail_memo_misses")

	g1, err := r.mod.GetGraph(nil, TFHistory(10))
	if err != nil {
		t.Fatal(err)
	}
	if misses.Value() == 0 {
		t.Fatal("first query should miss the memo")
	}
	h0, m0 := hits.Value(), misses.Value()

	g2, err := r.mod.GetGraph(nil, TFHistory(10))
	if err != nil {
		t.Fatal(err)
	}
	if hits.Value() <= h0 {
		t.Fatalf("repeat query should hit the memo (hits %d -> %d)", h0, hits.Value())
	}
	if misses.Value() != m0 {
		t.Fatalf("repeat query should not recompute (misses %d -> %d)", m0, misses.Value())
	}
	if g1.Epoch != g2.Epoch {
		t.Fatalf("same snapshot expected: epochs %d vs %d", g1.Epoch, g2.Epoch)
	}
	for i := range g1.Links {
		if g1.Links[i] != g2.Links[i] {
			t.Fatalf("memoized answers differ at link %d:\n%+v\n%+v", i, g1.Links[i], g2.Links[i])
		}
	}

	// A poll tick bumps the source's data version: the memo generation
	// must be dropped, not served stale.
	r.clk.RunUntil(31)
	m1 := misses.Value()
	if _, err := r.mod.GetGraph(nil, TFHistory(10)); err != nil {
		t.Fatal(err)
	}
	if misses.Value() <= m1 {
		t.Fatal("query after new data should recompute, not serve the stale memo")
	}

	// Registering a self flow also invalidates (DiscountSelf bakes self
	// traffic into memoized availabilities).
	m2 := misses.Value()
	r.mod.RegisterSelfFlow("m-1", "m-5", 1e5)
	if _, err := r.mod.GetGraph(nil, TFHistory(10)); err != nil {
		t.Fatal(err)
	}
	if misses.Value() <= m2 {
		t.Fatal("query after self-flow registration should recompute")
	}
}

// TestSnapshotEpochGauge pins the epoch telemetry: the gauge tracks the
// installed snapshot and Refresh starts a new epoch.
func TestSnapshotEpochGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := newRig(t, topology.Testbed(), func(c *Config) { c.Telemetry = reg })
	r.clk.RunUntil(5)

	if _, err := r.mod.GetGraph(nil, TFCapacity()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("modeler.snapshot_epoch").Value(); got != 1 {
		t.Fatalf("snapshot_epoch after first query = %v, want 1", got)
	}
	r.mod.Refresh()
	g, err := r.mod.GetGraph(nil, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("modeler.snapshot_epoch").Value(); got != 2 {
		t.Fatalf("snapshot_epoch after Refresh = %v, want 2", got)
	}
	if g.Epoch != 2 {
		t.Fatalf("answer epoch after Refresh = %d, want 2", g.Epoch)
	}
	if got := reg.Counter("modeler.topo_fetches").Value(); got != 2 {
		t.Fatalf("topo_fetches = %d, want 2", got)
	}
}
