package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Batched flow-matrix kernel. The clustering consumer needs pairwise
// N×N answers, and the paper notes per-pair flow queries "would have
// been needed, implying a much higher overhead". The per-pair loop
// paid that overhead internally too: snapshot resolution, route
// lookup, and per-link availability folding once per *pair* — O(N²·L)
// availability computations for answers that share one snapshot and
// one set of links. The kernel restructures the computation around
// what is actually shared:
//
//  1. one snapshot pin — every entry is computed against the same
//     epoch-numbered topology, stamped on the result;
//  2. one availability pass — each directed channel any route uses is
//     resolved exactly once per matrix (not once per pair through it);
//  3. one compiled sweep per distinct source — entries for a row are
//     produced by a single bottleneck sweep over the source's
//     shortest-path tree (parent-before-child DP) instead of per-pair
//     path walks. stats.MinStat is associative and commutative, so the
//     sweep's fold is bit-identical to the per-pair fold. The sweep is
//     compiled (node-slot and channel-slot indices pre-resolved, router
//     caps baked in) and cached on the snapshot, so repeated matrices
//     between poll rounds pay only the DP arithmetic, no map lookups;
//  4. rows run on a bounded worker pool with pooled scratch, so large
//     matrices scale across cores without per-query allocation churn.
//
// Degradation is per-entry: an unknown node, a missing route, or an
// invalid stat marks Valid[i][j] false and zero-fills the number — a
// mid-matrix agent outage degrades entries (measurement errors already
// fall back to capacity at low accuracy), it does not abort the batch.
// Only lifecycle errors (the caller's budget, a shed or fenced source)
// abort, exactly as scalar queries do.

// MatrixInfo is the batched answer for the cross product Srcs×Dsts:
// Bandwidth[i][j] is the bottleneck availability median (bits/s) from
// Srcs[i] to Dsts[j] under the timeframe, Latency[i][j] the one-way
// path latency in seconds, and Valid[i][j] whether the entry is backed
// by a route and a valid stat. Epoch identifies the topology snapshot
// every entry saw (see Graph.Epoch); Term carries the answering
// server's HA fencing term for wire-served matrices (zero locally).
type MatrixInfo struct {
	Srcs, Dsts []graph.NodeID
	Timeframe  Timeframe
	Bandwidth  [][]float64
	Latency    [][]float64
	Valid      [][]bool
	Epoch      uint64
	Term       uint64
}

// QueryMatrix is QueryMatrixCtx with a background context.
func (m *Modeler) QueryMatrix(srcs, dsts []graph.NodeID, tf Timeframe) (*MatrixInfo, error) {
	return m.QueryMatrixCtx(context.Background(), srcs, dsts, tf)
}

// QueryMatrixCtx computes the rectangular flow matrix Srcs×Dsts in one
// batch. When the Modeler's source can answer matrices natively
// (collector.MatrixSource — the TCP client and failover group forward
// the "matrix" wire op), the whole batch is one round trip; a source
// that answers ErrMatrixUnsupported falls back to the local kernel.
func (m *Modeler) QueryMatrixCtx(ctx context.Context, srcs, dsts []graph.NodeID, tf Timeframe) (_ *MatrixInfo, retErr error) {
	ctx, finish := m.startQuery(ctx, "query.matrix", m.qMatrix)
	defer func() { finish(retErr) }()
	if len(srcs) == 0 || len(dsts) == 0 {
		return nil, fmt.Errorf("core: matrix query needs srcs and dsts")
	}
	if ms, ok := m.cfg.Source.(collector.MatrixSource); ok {
		ans, err := ms.MatrixQuery(ctx, &collector.MatrixRequest{
			Srcs: srcs, Dsts: dsts,
			TFKind: int(tf.Kind), Span: tf.Span, Horizon: tf.Horizon,
		})
		if err == nil {
			return &MatrixInfo{
				Srcs: srcs, Dsts: dsts, Timeframe: tf,
				Bandwidth: ans.Bandwidth, Latency: ans.Latency, Valid: ans.Valid,
				Epoch: ans.Epoch, Term: ans.Term,
			}, nil
		}
		if !errors.Is(err, collector.ErrMatrixUnsupported) {
			return nil, err
		}
	}
	return m.matrixLocal(ctx, srcs, dsts, tf)
}

// maxMatrixWorkers bounds the row worker pool: matrix parallelism is a
// latency optimization for one query, not a license to occupy every
// core of a shared daemon.
const maxMatrixWorkers = 8

// minParallelCells is the matrix area below which spawning workers
// costs more than the sweep itself.
const minParallelCells = 256

// matrixChan is one directed channel some row sweep will read.
type matrixChan struct {
	l    *graph.Link
	d    graph.Dir
	slot int
}

// compiledStep is one parent-before-child DP step with every index the
// sweep needs pre-resolved against the snapshot: dense node slots for
// the parent and child, the availability slot of the channel between
// them, the interior parent's internal-bandwidth cap (0 when the parent
// is the source or uncapped — see matrixRow), and the hop latency.
type compiledStep struct {
	link      *graph.Link
	dir       graph.Dir
	pSlot     int32
	vSlot     int32
	availSlot int32
	limit     float64
	lat       float64
}

// compiledSweep is one source's full compiled DP program. Topology,
// routing, and slot assignment are all frozen per snapshot, so the
// compilation is cached there (snapshot.sweeps) and shared by every
// matrix until the epoch moves.
type compiledSweep struct {
	srcSlot int
	steps   []compiledStep
}

// sweepFor returns the compiled sweep for src, compiling and caching it
// on first use. A source with no route tree (unknown node, isolated
// host) returns nil: its whole row is invalid except the diagonal.
// Failures are not cached — they are structural and the setup loop has
// already filtered non-compute nodes, so they should not recur hot.
func (s *snapshot) sweepFor(src graph.NodeID) *compiledSweep {
	if v, ok := s.sweeps.Load(src); ok {
		return v.(*compiledSweep)
	}
	t, err := s.rt.Tree(src)
	if err != nil {
		return nil
	}
	g := s.topo.Graph
	sweep := t.Sweep()
	cs := &compiledSweep{srcSlot: s.nodeSlot[src], steps: make([]compiledStep, 0, len(sweep))}
	for _, step := range sweep {
		d := step.Via.DirFrom(step.Parent)
		limit := 0.0
		// A node that forwards traffic onward is an interior hop for
		// everything beyond it: its internal bandwidth caps those paths
		// (Figure 1), but never the path that ends at it — matching the
		// per-pair fold over p.Nodes[1:len-1].
		if step.Parent != src {
			if nd := g.Node(step.Parent); nd != nil && nd.InternalBW > 0 {
				limit = nd.InternalBW
			}
		}
		cs.steps = append(cs.steps, compiledStep{
			link:      step.Via,
			dir:       d,
			pSlot:     int32(s.nodeSlot[step.Parent]),
			vSlot:     int32(s.nodeSlot[step.Node]),
			availSlot: int32(step.Via.ID)*2 + int32(d),
			limit:     limit,
			lat:       step.Via.Latency,
		})
	}
	actual, _ := s.sweeps.LoadOrStore(src, cs)
	return actual.(*compiledSweep)
}

// matrixScratch is the per-matrix shared scratch: the dense
// availability table (indexed linkID*2+dir, like the snapshot memo)
// and the dedup list of channels to fill. Pooled; only touched slots
// are cleared on release.
type matrixScratch struct {
	need  []bool
	avail []stats.Stat
	chans []matrixChan
}

var matrixScratchPool = sync.Pool{New: func() any { return &matrixScratch{} }}

func getMatrixScratch(chanSlots int) *matrixScratch {
	sc := matrixScratchPool.Get().(*matrixScratch)
	if len(sc.need) < chanSlots {
		sc.need = make([]bool, chanSlots)
		sc.avail = make([]stats.Stat, chanSlots)
	}
	return sc
}

func putMatrixScratch(sc *matrixScratch) {
	for _, mc := range sc.chans {
		sc.need[mc.slot] = false
	}
	sc.chans = sc.chans[:0]
	matrixScratchPool.Put(sc)
}

// rowScratch is one worker's DP state, indexed by the snapshot's dense
// node slots. Generation counters make per-row resets O(touched), not
// O(nodes).
type rowScratch struct {
	bw  []stats.Stat
	lat []float64
	gen []uint64
	cur uint64
}

var rowScratchPool = sync.Pool{New: func() any { return &rowScratch{} }}

func getRowScratch(nodes int) *rowScratch {
	rs := rowScratchPool.Get().(*rowScratch)
	if len(rs.bw) < nodes {
		rs.bw = make([]stats.Stat, nodes)
		rs.lat = make([]float64, nodes)
		rs.gen = make([]uint64, nodes)
		rs.cur = 0
	}
	return rs
}

func putRowScratch(rs *rowScratch) { rowScratchPool.Put(rs) }

// matrixLocal is the batched kernel itself.
func (m *Modeler) matrixLocal(ctx context.Context, srcs, dsts []graph.NodeID, tf Timeframe) (*MatrixInfo, error) {
	s, err := m.snapshot(ctx)
	if err != nil {
		return nil, err
	}
	v := m.view(s, tf)

	n, cols := len(srcs), len(dsts)
	out := &MatrixInfo{
		Srcs: srcs, Dsts: dsts, Timeframe: tf, Epoch: s.epoch,
		Bandwidth: make([][]float64, n),
		Latency:   make([][]float64, n),
		Valid:     make([][]bool, n),
	}
	// One backing array per plane keeps a 64×64 matrix at three
	// allocations instead of 3·N.
	bwFlat := make([]float64, n*cols)
	latFlat := make([]float64, n*cols)
	okFlat := make([]bool, n*cols)
	for i := 0; i < n; i++ {
		out.Bandwidth[i] = bwFlat[i*cols : (i+1)*cols : (i+1)*cols]
		out.Latency[i] = latFlat[i*cols : (i+1)*cols : (i+1)*cols]
		out.Valid[i] = okFlat[i*cols : (i+1)*cols : (i+1)*cols]
	}

	// Resolve each distinct source's compiled sweep once (cached on the
	// snapshot, underlying trees shared with per-pair Route answers) and
	// mark every directed channel any sweep will read. A source with no
	// sweep — unknown node, non-compute — leaves a nil entry: its whole
	// row is invalid except the diagonal. Destination slots resolve once
	// per matrix too (-1 = structurally invalid), shared by every row.
	sweeps := make([]*compiledSweep, n)
	sc := getMatrixScratch(s.chanSlots)
	defer putMatrixScratch(sc)
	for i, src := range srcs {
		if nd := s.topo.Graph.Node(src); nd == nil || nd.Kind != graph.Compute {
			continue
		}
		cs := s.sweepFor(src)
		if cs == nil {
			continue
		}
		sweeps[i] = cs
		for k := range cs.steps {
			st := &cs.steps[k]
			slot := int(st.availSlot)
			if !sc.need[slot] {
				sc.need[slot] = true
				sc.chans = append(sc.chans, matrixChan{l: st.link, d: st.dir, slot: slot})
			}
		}
	}
	dstSlots := make([]int32, cols)
	for j, dst := range dsts {
		dstSlots[j] = -1
		if nd := s.topo.Graph.Node(dst); nd == nil || nd.Kind != graph.Compute {
			continue
		}
		if slot, ok := s.nodeSlot[dst]; ok {
			dstSlots[j] = int32(slot)
		}
	}

	// Availability once per directed channel per matrix. Lifecycle
	// errors abort the batch (the caller's budget expired or the
	// source refused); measurement errors already degraded to capacity
	// at low accuracy inside computeChannelAvailability.
	for _, mc := range sc.chans {
		st, aerr := v.channelAvailability(ctx, mc.l, mc.d)
		if aerr != nil {
			return nil, aerr
		}
		sc.avail[mc.slot] = st
	}

	// Row sweeps: serial for small matrices, a bounded worker pool
	// pulling rows off an atomic counter for large ones. Workers write
	// disjoint rows, and read only the shared immutable scratch.
	workers := runtime.GOMAXPROCS(0)
	if workers > maxMatrixWorkers {
		workers = maxMatrixWorkers
	}
	if workers > n {
		workers = n
	}
	if workers < 2 || n*cols < minParallelCells {
		rs := getRowScratch(len(s.nodeSlot))
		for i := range srcs {
			matrixRow(sc, rs, sweeps[i], srcs[i], dsts, dstSlots, out, i)
		}
		putRowScratch(rs)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rs := getRowScratch(len(s.nodeSlot))
				defer putRowScratch(rs)
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					matrixRow(sc, rs, sweeps[i], srcs[i], dsts, dstSlots, out, i)
				}
			}()
		}
		wg.Wait()
	}
	return out, nil
}

// matrixRow fills row i: one parent-before-child DP pass over the
// source's compiled sweep accumulates, for every reachable node, the
// element-wise bottleneck min over the tree path's channel
// availabilities and collapsed-router internal-bandwidth limits —
// exactly the fold AvailableBandwidthCtx performs per pair, in an
// order MinStat's associativity makes equivalent — plus the summed
// path latency. Every index is pre-resolved (compiledStep, dstSlots),
// so the hot loop is pure array arithmetic.
func matrixRow(sc *matrixScratch, rs *rowScratch,
	cs *compiledSweep, src graph.NodeID, dsts []graph.NodeID, dstSlots []int32, out *MatrixInfo, i int) {

	rs.cur++
	cur := rs.cur
	if cs != nil {
		rs.bw[cs.srcSlot] = stats.NoData()
		rs.lat[cs.srcSlot] = 0
		rs.gen[cs.srcSlot] = cur
		for k := range cs.steps {
			st := &cs.steps[k]
			base := rs.bw[st.pSlot]
			if st.limit > 0 {
				base = stats.MinStat(base, stats.Exact(st.limit))
			}
			rs.bw[st.vSlot] = stats.MinStat(base, sc.avail[st.availSlot])
			rs.lat[st.vSlot] = rs.lat[st.pSlot] + st.lat
			rs.gen[st.vSlot] = cur
		}
	}
	for j, dst := range dsts {
		if dst == src {
			out.Bandwidth[i][j] = math.Inf(1)
			out.Latency[i][j] = 0
			out.Valid[i][j] = true
			continue
		}
		if cs == nil {
			continue // row source has no routes: entry stays invalid
		}
		slot := dstSlots[j]
		if slot < 0 || rs.gen[slot] != cur {
			continue // unknown, non-compute, or unreachable under current routing
		}
		out.Latency[i][j] = rs.lat[slot]
		if bw := rs.bw[slot]; bw.Valid() {
			out.Bandwidth[i][j] = bw.Median
			out.Valid[i][j] = true
		}
	}
}

// freshnessChecker is the optional fencing hook a source can expose
// (the read replica does): a cheap check that the source would accept
// a query right now. MatrixHandler consults it on every call so a
// fenced replica refuses matrices even when the serving Modeler holds
// a cached snapshot.
type freshnessChecker interface {
	CheckFresh() error
}

// syncSnapshot keeps a long-lived serving Modeler honest before a
// wire-batched matrix: it re-checks the source's fencing state every
// call, and re-pins the topology snapshot when the source's topology
// pointer moved (rediscovery, replica resync). The topology probe is
// gated on the source's data version when one is available, so between
// poll ticks the cost is one atomic load.
func (m *Modeler) syncSnapshot(ctx context.Context) error {
	if fc, ok := m.cfg.Source.(freshnessChecker); ok {
		if err := fc.CheckFresh(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	s := m.snap.Load()
	if s == nil {
		return nil // first query builds fresh anyway
	}
	var syncTo uint64
	if m.vsrc != nil {
		if v, ok := m.vsrc.DataVersion(); ok {
			if last := m.matrixSyncVer.Load(); last == v+1 {
				return nil // same version: topology cannot have moved
			}
			syncTo = v + 1
		}
	}
	t, err := collector.CtxTopology(ctx, m.cfg.Source)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if s.topo != t {
		m.Refresh()
	}
	if syncTo != 0 {
		m.matrixSyncVer.Store(syncTo)
	}
	return nil
}

// MatrixHandler adapts a Modeler to collector.ServerConfig.Matrix, so
// a collector daemon, a read replica, or a federated view serves the
// "matrix" wire op with the batched kernel. The handler re-syncs the
// Modeler against its source per call (see syncSnapshot): long-lived
// serving Modelers must follow topology changes and honor replica
// fencing, unlike the per-invocation Modelers of CLI clients.
func MatrixHandler(m *Modeler) collector.MatrixHandler {
	return func(ctx context.Context, req *collector.MatrixRequest) (*collector.MatrixAnswer, error) {
		if err := m.syncSnapshot(ctx); err != nil {
			return nil, err
		}
		tf := Timeframe{Kind: TimeframeKind(req.TFKind), Span: req.Span, Horizon: req.Horizon}
		mi, err := m.QueryMatrixCtx(ctx, req.Srcs, req.Dsts, tf)
		if err != nil {
			return nil, err
		}
		return &collector.MatrixAnswer{
			Bandwidth: mi.Bandwidth, Latency: mi.Latency, Valid: mi.Valid, Epoch: mi.Epoch,
		}, nil
	}
}
