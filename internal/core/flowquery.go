package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/maxmin"
	"repro/internal/stats"
)

// FlowKind is the three-class spectrum of §4.2.
type FlowKind int

const (
	// FixedFlow has an absolute bandwidth requirement (audio).
	FixedFlow FlowKind = iota
	// VariableFlow shares bandwidth proportionally to its requirement
	// relative to the other variable flows (video tiers).
	VariableFlow
	// IndependentFlow absorbs whatever is left after the first two
	// classes (bulk transfer).
	IndependentFlow
)

func (k FlowKind) String() string {
	switch k {
	case FixedFlow:
		return "fixed"
	case VariableFlow:
		return "variable"
	case IndependentFlow:
		return "independent"
	default:
		return fmt.Sprintf("FlowKind(%d)", int(k))
	}
}

// Flow is one application-level flow in a query.
type Flow struct {
	Src, Dst graph.NodeID
	Kind     FlowKind

	// Bandwidth is the absolute requirement for FixedFlow and the
	// relative requirement (weight) for VariableFlow; ignored for
	// IndependentFlow.
	Bandwidth float64

	// MaxBandwidth optionally caps a VariableFlow (0 = uncapped).
	MaxBandwidth float64
}

// FlowResult reports what one queried flow would receive.
type FlowResult struct {
	Flow Flow

	// Bandwidth is the predicted allocation as a quartile Stat whose
	// median is the max-min allocation and whose spread follows the
	// bottleneck availability's spread.
	Bandwidth stats.Stat

	// Satisfied reports whether a FixedFlow's full requirement fits.
	Satisfied bool

	// Latency is the one-way path latency.
	Latency stats.Stat

	// Hops is the route length in links.
	Hops int
}

// FlowInfo is the answer to remos_flow_info.
type FlowInfo struct {
	Fixed       []FlowResult
	Variable    []FlowResult
	Independent []FlowResult
	Timeframe   Timeframe

	// Epoch identifies the topology snapshot the answer was computed
	// against (see Graph.Epoch).
	Epoch uint64
}

// All returns every result in query order (fixed, variable, independent).
func (fi *FlowInfo) All() []FlowResult {
	out := make([]FlowResult, 0, len(fi.Fixed)+len(fi.Variable)+len(fi.Independent))
	out = append(out, fi.Fixed...)
	out = append(out, fi.Variable...)
	out = append(out, fi.Independent...)
	return out
}

// QueryFlowInfo answers remos_flow_info(fixed, variable, independent,
// timeframe): all flows are resolved *simultaneously*, so internal
// sharing between the queried flows is accounted for (§4.2 "simultaneous
// queries and sharing"). Fixed flows are satisfied first, then variable
// flows share proportionally, then independent flows absorb the rest,
// all under weighted max-min fairness on the availability implied by the
// timeframe.
func (m *Modeler) QueryFlowInfo(fixed, variable, independent []Flow, tf Timeframe) (*FlowInfo, error) {
	return m.QueryFlowInfoCtx(context.Background(), fixed, variable, independent, tf)
}

// QueryFlowInfoCtx is QueryFlowInfo under a context: the resource-space
// construction fetches one availability per directed channel in use, and
// each fetch carries the caller's deadline. A budget that expires
// mid-construction aborts with a typed lifecycle error.
func (m *Modeler) QueryFlowInfoCtx(ctx context.Context, fixed, variable, independent []Flow, tf Timeframe) (_ *FlowInfo, retErr error) {
	ctx, finish := m.startQuery(ctx, "query.flowinfo", m.qFlowQuery)
	defer func() { finish(retErr) }()
	s, err := m.snapshot(ctx)
	if err != nil {
		return nil, err
	}

	// Build the resource space: one resource per directed channel in use,
	// plus router backplanes with finite internal bandwidth. The index is
	// pooled; nothing it owns escapes into the returned FlowInfo (the
	// solver and allocationStat copy what they keep), so it is released
	// when the query returns.
	idx := newResourceIndex(ctx, m.view(s, tf))
	defer idx.release()
	toDemand := func(f Flow) (maxmin.Demand, *graph.Path, error) {
		if f.Src == f.Dst {
			return maxmin.Demand{}, nil, fmt.Errorf("core: flow with equal endpoints %q", f.Src)
		}
		p := s.rt.Route(f.Src, f.Dst)
		if p == nil {
			return maxmin.Demand{}, nil, fmt.Errorf("core: no route %s -> %s", f.Src, f.Dst)
		}
		res, err := idx.resourcesFor(p)
		if err != nil {
			return maxmin.Demand{}, nil, err
		}
		d := maxmin.Demand{Resources: res, Weight: 1}
		return d, p, nil
	}

	cp := &maxmin.ClassedProblem{}
	paths := make(map[*Flow]*graph.Path)
	fixedFlows := append([]Flow(nil), fixed...)
	varFlows := append([]Flow(nil), variable...)
	indFlows := append([]Flow(nil), independent...)
	for i := range fixedFlows {
		f := &fixedFlows[i]
		if f.Bandwidth <= 0 {
			return nil, fmt.Errorf("core: fixed flow %s->%s needs a positive bandwidth", f.Src, f.Dst)
		}
		d, p, err := toDemand(*f)
		if err != nil {
			return nil, err
		}
		d.Cap = f.Bandwidth
		cp.Fixed = append(cp.Fixed, d)
		paths[f] = p
	}
	for i := range varFlows {
		f := &varFlows[i]
		d, p, err := toDemand(*f)
		if err != nil {
			return nil, err
		}
		if f.Bandwidth > 0 {
			d.Weight = f.Bandwidth
		}
		d.Cap = f.MaxBandwidth
		cp.Variable = append(cp.Variable, d)
		paths[f] = p
	}
	for i := range indFlows {
		f := &indFlows[i]
		d, p, err := toDemand(*f)
		if err != nil {
			return nil, err
		}
		cp.Independent = append(cp.Independent, d)
		paths[f] = p
	}
	cp.Capacity = idx.capacities()

	var res *maxmin.ClassedResult
	if m.cfg.Sharing == ShareProportional {
		res = solveProportionalClasses(cp)
	} else {
		res = maxmin.SolveClasses(cp)
	}

	out := &FlowInfo{Timeframe: tf, Epoch: s.epoch}
	mk := func(f *Flow, alloc float64, satisfied bool) FlowResult {
		p := paths[f]
		bottleneck := idx.bottleneckStat(p)
		return FlowResult{
			Flow:      *f,
			Bandwidth: allocationStat(alloc, bottleneck),
			Satisfied: satisfied,
			Latency:   stats.Exact(p.Latency()),
			Hops:      p.Hops(),
		}
	}
	out.Fixed = make([]FlowResult, 0, len(fixedFlows))
	for i := range fixedFlows {
		out.Fixed = append(out.Fixed, mk(&fixedFlows[i], res.Fixed[i], res.FixedSatisfied[i]))
	}
	out.Variable = make([]FlowResult, 0, len(varFlows))
	for i := range varFlows {
		out.Variable = append(out.Variable, mk(&varFlows[i], res.Variable[i], true))
	}
	out.Independent = make([]FlowResult, 0, len(indFlows))
	for i := range indFlows {
		out.Independent = append(out.Independent, mk(&indFlows[i], res.Independent[i], true))
	}
	return out, nil
}

// solveProportionalClasses resolves all three classes with the naive
// proportional model: one flat solve, no phasing, no redistribution.
// Fixed flows are capped at their requests; "satisfied" means the
// proportional share covers the request.
func solveProportionalClasses(cp *maxmin.ClassedProblem) *maxmin.ClassedResult {
	var demands []maxmin.Demand
	demands = append(demands, cp.Fixed...)
	demands = append(demands, cp.Variable...)
	demands = append(demands, cp.Independent...)
	for i := range demands {
		if demands[i].Weight <= 0 {
			demands[i].Weight = 1
		}
	}
	p := &maxmin.Problem{Capacity: cp.Capacity, Demands: demands}
	alloc := p.SolveProportional()
	res := &maxmin.ClassedResult{Residual: p.Residual(alloc)}
	nf, nv := len(cp.Fixed), len(cp.Variable)
	res.Fixed = alloc[:nf]
	res.Variable = alloc[nf : nf+nv]
	res.Independent = alloc[nf+nv:]
	res.FixedSatisfied = make([]bool, nf)
	for i, d := range cp.Fixed {
		res.FixedSatisfied[i] = res.Fixed[i] >= d.Cap-1e-6
	}
	return res
}

// resourceIndex maps channels (and limited backplanes) to max-min
// resources whose capacities are the timeframe's availability medians.
// Instances are pooled: a flow query borrows one, builds the resource
// space, and releases it on return. Nothing handed out by the index may
// be retained past the owning query (the solver copies capacities it
// mutates; results copy stats by value).
type resourceIndex struct {
	ctx context.Context
	v   view

	ids   map[resKey]int
	caps  []float64
	stats []stats.Stat

	// resbuf is an arena for the per-demand resource-ID lists:
	// resourcesFor returns capacity-clamped subslices of it, so one
	// query's lists share a single growing allocation.
	resbuf []maxmin.ResourceID
}

type resKey struct {
	link graph.LinkID // -1 for node backplane resources
	dir  graph.Dir
	node graph.NodeID
}

var riPool = sync.Pool{
	New: func() any { return &resourceIndex{ids: make(map[resKey]int, 32)} },
}

func newResourceIndex(ctx context.Context, v view) *resourceIndex {
	ri := riPool.Get().(*resourceIndex)
	ri.ctx = ctx
	ri.v = v
	return ri
}

// release returns the index to the pool, dropping query-scoped state but
// keeping the map and slice capacity warm.
func (ri *resourceIndex) release() {
	clear(ri.ids)
	ri.ctx = nil
	ri.v = view{}
	ri.caps = ri.caps[:0]
	ri.stats = ri.stats[:0]
	ri.resbuf = ri.resbuf[:0]
	riPool.Put(ri)
}

func (ri *resourceIndex) intern(k resKey, capacity float64, st stats.Stat) int {
	if id, ok := ri.ids[k]; ok {
		return id
	}
	id := len(ri.caps)
	ri.ids[k] = id
	ri.caps = append(ri.caps, capacity)
	ri.stats = append(ri.stats, st)
	return id
}

func (ri *resourceIndex) resourcesFor(p *graph.Path) ([]maxmin.ResourceID, error) {
	start := len(ri.resbuf)
	for i, l := range p.Links {
		d := l.DirFrom(p.Nodes[i])
		st, err := ri.v.channelAvailability(ri.ctx, l, d)
		if err != nil {
			return nil, err
		}
		capacity := st.Median
		if !st.Valid() {
			capacity = l.Capacity
		}
		id := ri.intern(resKey{link: l.ID, dir: d}, capacity, st)
		ri.resbuf = append(ri.resbuf, maxmin.ResourceID(id))
	}
	for _, nid := range p.Nodes {
		n := ri.v.s.topo.Graph.Node(nid)
		if n != nil && n.Kind == graph.Network && n.InternalBW > 0 {
			id := ri.intern(resKey{link: -1, node: nid}, n.InternalBW, stats.Exact(n.InternalBW))
			ri.resbuf = append(ri.resbuf, maxmin.ResourceID(id))
		}
	}
	// Three-index slice: a later resourcesFor growing resbuf must
	// reallocate rather than overwrite this demand's tail.
	return ri.resbuf[start:len(ri.resbuf):len(ri.resbuf)], nil
}

func (ri *resourceIndex) capacities() []float64 { return ri.caps }

// bottleneckStat returns the availability Stat of the tightest resource
// along the path (by median).
func (ri *resourceIndex) bottleneckStat(p *graph.Path) stats.Stat {
	best := stats.NoData()
	bestMedian := math.Inf(1)
	for i, l := range p.Links {
		d := l.DirFrom(p.Nodes[i])
		if id, ok := ri.ids[resKey{link: l.ID, dir: d}]; ok {
			st := ri.stats[id]
			if st.Valid() && st.Median < bestMedian {
				best, bestMedian = st, st.Median
			}
		}
	}
	for _, nid := range p.Nodes {
		if id, ok := ri.ids[resKey{link: -1, node: nid}]; ok {
			st := ri.stats[id]
			if st.Valid() && st.Median < bestMedian {
				best, bestMedian = st, st.Median
			}
		}
	}
	return best
}

// allocationStat turns a point allocation into a quartile Stat: the
// median is the allocation, and the relative spread follows the
// bottleneck availability's spread (if the bottleneck wobbles ±20%, so
// does the flow's share).
func allocationStat(alloc float64, bottleneck stats.Stat) stats.Stat {
	if math.IsInf(alloc, 1) {
		return stats.Exact(math.Inf(1))
	}
	if !bottleneck.Valid() || bottleneck.Median <= 0 || alloc <= 0 {
		return stats.Exact(alloc).WithAccuracy(bottleneck.Accuracy)
	}
	k := alloc / bottleneck.Median
	out := bottleneck.Scale(k)
	out.Median = alloc
	// The allocation can never exceed what max-min granted under the
	// median availability estimate if the bottleneck were at its max;
	// keep quartiles ordered after the median override.
	if out.Q1 > out.Median {
		out.Q1 = out.Median
	}
	if out.Min > out.Q1 {
		out.Min = out.Q1
	}
	if out.Q3 < out.Median {
		out.Q3 = out.Median
	}
	if out.Max < out.Q3 {
		out.Max = out.Q3
	}
	return out
}

// BandwidthMatrix computes the pairwise available-bandwidth matrix the
// clustering module consumes: entry [i][j] is the bottleneck availability
// median between nodes[i] and nodes[j]. This uses topology information
// (one batched kernel pass, matrix.go) rather than O(n²) flow queries,
// matching the paper's observation that flow queries for the matrix
// "would have been needed, implying a much higher overhead".
func (m *Modeler) BandwidthMatrix(nodes []graph.NodeID, tf Timeframe) ([][]float64, error) {
	return m.BandwidthMatrixCtx(context.Background(), nodes, tf)
}

// BandwidthMatrixCtx is BandwidthMatrix under a context. It runs the
// batched kernel (QueryMatrixCtx) for the square nodes×nodes case:
// entries degrade individually — a mid-matrix agent outage zero-fills
// the affected entries instead of aborting the batch — and only
// lifecycle errors (an expired budget, a fenced source) abort, with
// the typed error. Callers needing per-entry validity or the snapshot
// epoch use QueryMatrixCtx directly.
func (m *Modeler) BandwidthMatrixCtx(ctx context.Context, nodes []graph.NodeID, tf Timeframe) ([][]float64, error) {
	mi, err := m.QueryMatrixCtx(ctx, nodes, nodes, tf)
	if err != nil {
		return nil, err
	}
	return mi.Bandwidth, nil
}

// LatencyMatrix computes pairwise one-way latencies.
func (m *Modeler) LatencyMatrix(nodes []graph.NodeID) ([][]float64, error) {
	return m.LatencyMatrixCtx(context.Background(), nodes)
}

// LatencyMatrixCtx is LatencyMatrix under a context, computed by the
// batched kernel against one pinned snapshot: entries without a route
// are zero-filled rather than aborting the matrix.
func (m *Modeler) LatencyMatrixCtx(ctx context.Context, nodes []graph.NodeID) ([][]float64, error) {
	mi, err := m.QueryMatrixCtx(ctx, nodes, nodes, TFCapacity())
	if err != nil {
		return nil, err
	}
	return mi.Latency, nil
}
