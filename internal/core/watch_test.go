package core

import (
	"testing"

	"repro/internal/netsim"
)

func TestWatchFiresOnCrossings(t *testing.T) {
	r := testbedRig(t)
	var events []WatchEvent
	w, err := r.mod.WatchBandwidth(r.clk, WatchConfig{
		Src: "m-4", Dst: "m-7",
		Timeframe: TFHistory(6),
		Low:       30e6,
		High:      60e6,
		Period:    2,
	}, func(e WatchEvent) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}

	// Quiet for 20s: no events.
	r.clk.RunUntil(20)
	if len(events) != 0 {
		t.Fatalf("events on a quiet network: %+v", events)
	}

	// Heavy traffic: availability collapses -> one Below event.
	f := r.net.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", RateCap: 90e6, Priority: true, Owner: "traffic"})
	r.clk.RunUntil(50)
	if len(events) != 1 || !events[0].Below {
		t.Fatalf("events after load: %+v", events)
	}

	// Sustained load: no repeats (hysteresis).
	r.clk.RunUntil(80)
	if len(events) != 1 {
		t.Fatalf("flapping under steady load: %+v", events)
	}

	// Traffic stops: one recovery event.
	r.net.StopFlow(f.ID)
	r.clk.RunUntil(120)
	if len(events) != 2 || events[1].Below {
		t.Fatalf("events after recovery: %+v", events)
	}
	if w.Events() != 2 || w.Checks() < 20 {
		t.Fatalf("counters: events=%d checks=%d", w.Events(), w.Checks())
	}

	// Stop halts evaluation.
	w.Stop()
	before := w.Checks()
	r.clk.RunUntil(140)
	if w.Checks() != before {
		t.Fatal("watch survived Stop")
	}
}

func TestWatchMidBandNoEvent(t *testing.T) {
	r := testbedRig(t)
	fired := 0
	_, err := r.mod.WatchBandwidth(r.clk, WatchConfig{
		Src: "m-4", Dst: "m-7",
		Timeframe: TFHistory(6),
		Low:       30e6,
		High:      80e6,
		Period:    2,
	}, func(WatchEvent) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	// 50 Mbps of load: availability ~50, inside the hysteresis band.
	r.net.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", RateCap: 50e6, Priority: true, Owner: "traffic"})
	r.clk.RunUntil(60)
	if fired != 0 {
		t.Fatalf("fired %d times inside the band", fired)
	}
}

func TestWatchConfigValidation(t *testing.T) {
	r := testbedRig(t)
	cases := []WatchConfig{
		{Src: "m-1", Dst: "m-2", Low: 1, High: 2},            // no period
		{Src: "m-1", Dst: "m-2", Low: 5, High: 2, Period: 1}, // inverted band
	}
	for i, cfg := range cases {
		if _, err := r.mod.WatchBandwidth(r.clk, cfg, func(WatchEvent) {}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := r.mod.WatchBandwidth(r.clk, WatchConfig{Src: "m-1", Dst: "m-2", Low: 1, High: 2, Period: 1}, nil); err == nil {
		t.Error("nil callback accepted")
	}
}
