package core

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// The sharing-policy ablation (§4.2/§4.3): the paper assumes max-min
// fair share; the naive proportional model is the alternative a simpler
// implementation might pick. When one flow is bottlenecked elsewhere,
// max-min correctly promises the leftovers to its neighbor while the
// proportional model under-promises — and the simulator (ground truth)
// agrees with max-min.
func TestSharingPolicyAblation(t *testing.T) {
	build := func(policy SharingPolicy) (*rig, []Flow) {
		r := newRig(t, topology.Dumbbell(2, 100, 10), func(c *Config) { c.Sharing = policy })
		// Throttle l0's access link to 2 Mbps so flow A is bottlenecked
		// off the shared core link.
		for _, l := range r.net.Graph().Links() {
			if (l.A == "l0" && l.B == "L") || (l.A == "L" && l.B == "l0") {
				r.net.SetLinkCapacity(l.ID, 2e6)
			}
		}
		// Rediscover so the modeler sees the degraded capacity.
		if _, err := r.col.Discover(); err != nil {
			t.Fatal(err)
		}
		r.mod.Refresh()
		r.clk.RunUntil(5)
		flows := []Flow{
			{Src: "l0", Dst: "r0", Kind: IndependentFlow}, // A: stuck at 2
			{Src: "l1", Dst: "r1", Kind: IndependentFlow}, // B
		}
		return r, flows
	}

	// Ground truth from the simulator.
	r, _ := build(ShareMaxMin)
	fa := r.net.StartFlow(netsim.FlowSpec{Src: "l0", Dst: "r0"})
	fb := r.net.StartFlow(netsim.FlowSpec{Src: "l1", Dst: "r1"})
	truthA, truthB := fa.Rate(), fb.Rate()
	r.net.StopFlow(fa.ID)
	r.net.StopFlow(fb.ID)
	if math.Abs(truthA-2e6) > 1 || math.Abs(truthB-8e6) > 1 {
		t.Fatalf("ground truth = %v, %v", truthA, truthB)
	}

	// Max-min prediction matches the truth.
	r, flows := build(ShareMaxMin)
	fi, err := r.mod.QueryFlowInfo(nil, nil, flows, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fi.Independent[0].Bandwidth.Median-2e6) > 1 ||
		math.Abs(fi.Independent[1].Bandwidth.Median-8e6) > 1 {
		t.Fatalf("max-min predictions = %v, %v",
			fi.Independent[0].Bandwidth.Median, fi.Independent[1].Bandwidth.Median)
	}

	// The proportional model under-promises flow B (5 instead of 8).
	r, flows = build(ShareProportional)
	fi, err = r.mod.QueryFlowInfo(nil, nil, flows, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fi.Independent[1].Bandwidth.Median-5e6) > 1 {
		t.Fatalf("proportional prediction for B = %v, want 5e6",
			fi.Independent[1].Bandwidth.Median)
	}
	if fi.Independent[1].Bandwidth.Median >= truthB {
		t.Fatal("proportional did not under-promise")
	}
}

// Proportional still respects classes' basic contracts: fixed
// satisfaction reporting and feasibility.
func TestProportionalClassesContract(t *testing.T) {
	r := newRig(t, topology.Dumbbell(2, 100, 10), func(c *Config) { c.Sharing = ShareProportional })
	r.clk.RunUntil(3)
	fi, err := r.mod.QueryFlowInfo(
		[]Flow{{Src: "l0", Dst: "r0", Kind: FixedFlow, Bandwidth: 3e6}},
		[]Flow{{Src: "l1", Dst: "r1", Kind: VariableFlow, Bandwidth: 1}},
		nil, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if !fi.Fixed[0].Satisfied {
		t.Fatalf("3 Mbps of a 5 Mbps proportional share should satisfy: %+v", fi.Fixed[0])
	}
	var total float64
	for _, res := range fi.All() {
		total += res.Bandwidth.Median
	}
	if total > 10e6+1 {
		t.Fatalf("proportional over-committed: %v", total)
	}
}
