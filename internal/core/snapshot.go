package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Lock-free topology snapshots: the Modeler's read side.
//
// A snapshot freezes everything a query needs — the discovered topology,
// its route table, per-channel slot assignments — behind one atomic
// pointer. Readers Load it and never take a lock; Refresh (or the first
// query after it) installs a fresh snapshot under the next epoch. Each
// snapshot carries two derived, lazily built, lock-free structures:
//
//   - an availability memo: per (timeframe, channel) Stats computed at
//     most once per source data version (collector.VersionedSource), so
//     a burst of queries between poll ticks shares one summary per
//     channel instead of re-deriving quartiles per query;
//   - a plan cache: the logical-topology skeleton remos_get_graph
//     derives for a node set (route induction + chain collapsing, §4.3)
//     is purely topological, so it is built once per (epoch, node set)
//     and every query replays it against memoized availabilities.
type snapshot struct {
	epoch   uint64
	topo    *collector.Topology
	rt      *graph.RouteTable
	fetched time.Time // wall time of the topology fetch

	// nodeSlot assigns every topology node a dense index into tfMemo
	// load arrays; chanSlots is the length of the channel arrays
	// (2 slots per link, indexed linkID*2 + dir).
	nodeSlot  map[graph.NodeID]int
	chanSlots int

	// memoOK gates the availability memo: it needs a versioned source
	// (collector.VersionedSource) to know when measurements may have
	// changed. Unversioned sources (the TCP client) skip memoization.
	memoOK bool
	memo   atomic.Pointer[availMemo]

	plans atomic.Pointer[planMap]

	// sweeps caches compiled per-source matrix sweeps (matrix.go):
	// graph.NodeID -> *compiledSweep. Topology and routing are frozen
	// per snapshot, so a source's sweep compiles once and serves every
	// matrix until the epoch moves.
	sweeps sync.Map
}

func newSnapshot(epoch uint64, topo *collector.Topology, rt *graph.RouteTable, memoOK bool) *snapshot {
	s := &snapshot{epoch: epoch, topo: topo, rt: rt, fetched: time.Now(), memoOK: memoOK}
	ids := topo.Graph.Nodes()
	s.nodeSlot = make(map[graph.NodeID]int, len(ids))
	for i, id := range ids {
		s.nodeSlot[id] = i
	}
	maxID := -1
	for _, l := range topo.Graph.Links() {
		if int(l.ID) > maxID {
			maxID = int(l.ID)
		}
	}
	s.chanSlots = (maxID + 1) * 2
	return s
}

// availMemo is one generation of memoized per-timeframe answers, valid
// for exactly one combined data version (source version + self-flow
// generation). When the version moves the whole generation is dropped
// and rebuilt — there is no per-entry invalidation to race on.
type availMemo struct {
	version uint64
	tfs     atomic.Pointer[[]*tfMemo]
}

// tfMemo holds the memoized stats of one timeframe: dense arrays of
// atomically published Stats (nil = not computed yet). A hit is a Load;
// on a miss two goroutines may race to compute and publish the same
// entry, but both derive it from the same frozen version, so either
// winning is correct.
type tfMemo struct {
	tf    Timeframe
	avail []atomic.Pointer[stats.Stat] // indexed by linkID*2 + dir
	loads []atomic.Pointer[stats.Stat] // indexed by nodeSlot
}

// tfFor returns (building if needed) the memo for one timeframe. The
// slice of timeframes is copy-on-write: distinct timeframes per epoch
// are few (an adaptation loop typically reuses one or two), so a linear
// scan beats any locked map.
func (am *availMemo) tfFor(tf Timeframe, s *snapshot) *tfMemo {
	for {
		lst := am.tfs.Load()
		if lst != nil {
			for _, tm := range *lst {
				if tm.tf == tf {
					return tm
				}
			}
		}
		tm := &tfMemo{
			tf:    tf,
			avail: make([]atomic.Pointer[stats.Stat], s.chanSlots),
			loads: make([]atomic.Pointer[stats.Stat], len(s.nodeSlot)),
		}
		var cur []*tfMemo
		if lst != nil {
			cur = *lst
		}
		next := make([]*tfMemo, len(cur), len(cur)+1)
		copy(next, cur)
		next = append(next, tm)
		if am.tfs.CompareAndSwap(lst, &next) {
			return tm
		}
	}
}

// view is one query's resolved read context: the snapshot it runs
// against, its timeframe, and — when memoization applies — the tfMemo
// for that timeframe at the current data version. Resolving once per
// query keeps the per-channel path to a slot computation and an atomic
// load.
type view struct {
	m  *Modeler
	s  *snapshot
	tf Timeframe
	tm *tfMemo // nil: memo disabled (capacity timeframe or unversioned source)
}

// view builds the read context for one query. The memo generation is
// refreshed (CAS, upgrade-only: versions are monotone) when the source
// reports a newer data version than the installed generation.
func (m *Modeler) view(s *snapshot, tf Timeframe) view {
	v := view{m: m, s: s, tf: tf}
	if tf.Kind == Capacity || !s.memoOK {
		return v
	}
	ver, ok := m.memoVersion()
	if !ok {
		return v
	}
	var am *availMemo
	for {
		am = s.memo.Load()
		if am != nil && am.version >= ver {
			break
		}
		fresh := &availMemo{version: ver}
		if s.memo.CompareAndSwap(am, fresh) {
			am = fresh
			break
		}
	}
	v.tm = am.tfFor(tf, s)
	return v
}

// channelAvailability is the memoized read path for one directed
// channel's availability under the view's timeframe. Lifecycle errors
// (deadline, cancellation, shed, busy) are never memoized: they belong
// to one caller's budget, not to the data.
func (v *view) channelAvailability(ctx context.Context, l *graph.Link, d graph.Dir) (stats.Stat, error) {
	if v.tf.Kind == Capacity {
		return stats.Exact(l.Capacity), nil
	}
	slot := -1
	if v.tm != nil {
		slot = int(l.ID)*2 + int(d)
		if p := v.tm.avail[slot].Load(); p != nil {
			v.m.cMemoHits.Inc()
			return *p, nil
		}
	}
	st, err := v.m.computeChannelAvailability(ctx, v.s, l, d, v.tf)
	if err != nil {
		return st, err
	}
	if slot >= 0 {
		v.m.cMemoMiss.Inc()
		cp := st
		v.tm.avail[slot].Store(&cp)
	}
	return st, nil
}

// hostLoad is the memoized read path for a node's CPU load summary.
// Non-lifecycle measurement errors degrade to no-data (GetGraph's
// contract) and the degraded answer is memoized too — it is a property
// of the current data version, refreshed at the next one.
func (v *view) hostLoad(ctx context.Context, id graph.NodeID) (stats.Stat, error) {
	slot := -1
	if v.tm != nil {
		if i, ok := v.s.nodeSlot[id]; ok {
			slot = i
			if p := v.tm.loads[slot].Load(); p != nil {
				v.m.cMemoHits.Inc()
				return *p, nil
			}
		}
	}
	ld, err := collector.CtxHostLoad(ctx, v.m.cfg.Source, id, tfSpan(v.tf))
	if err != nil {
		if collector.IsLifecycleError(err) {
			return stats.NoData(), err
		}
		ld = stats.NoData()
	}
	if slot >= 0 {
		v.m.cMemoMiss.Inc()
		cp := ld
		v.tm.loads[slot].Store(&cp)
	}
	return ld, nil
}

// foldAvail combines the availabilities of the physical channels behind
// one logical link (element-wise bottleneck min), then folds in any
// collapsed-router internal-bandwidth limit. MinStat is associative and
// commutative, so folding the flat channel list is equivalent to the
// pairwise merging the chain collapse used to do.
func (v *view) foldAvail(ctx context.Context, chans []physChan, limit float64) (stats.Stat, error) {
	out := stats.NoData()
	for _, pc := range chans {
		a, err := v.channelAvailability(ctx, pc.l, pc.d)
		if err != nil {
			return stats.NoData(), err
		}
		out = stats.MinStat(out, a)
	}
	if limit > 0 {
		out = stats.MinStat(out, stats.Exact(limit))
	}
	return out, nil
}

// physChan identifies one directed physical channel contributing to a
// logical link's availability.
type physChan struct {
	l *graph.Link
	d graph.Dir
}

// planLink is one logical link of a graph plan: static annotations
// precomputed, dynamic availability expressed as the channel sets to
// fold at query time.
type planLink struct {
	a, b     graph.NodeID
	capacity stats.Stat
	latency  stats.Stat
	fwd, rev []physChan // physical channels behind a->b / b->a traffic
	limit    float64    // min internal BW of collapsed routers (0 = none)
}

// graphPlan is the frozen skeleton of one remos_get_graph answer: node
// annotations minus the dynamic load, logical links minus the dynamic
// availability, plus the (immutable, shared) index maps the answer's
// Node/LinksAt accessors use.
type graphPlan struct {
	nodes   []NodeInfo
	links   []planLink
	nodeIdx map[graph.NodeID]int
	linkIdx map[graph.NodeID][]int
}

type planMap map[string]*graphPlan

// planKey canonicalizes a node set. The empty key stands for "all
// compute nodes" — the common (and benchmarked) case — so the default
// query never allocates a key.
func planKey(nodes []graph.NodeID) string {
	if len(nodes) == 0 {
		return ""
	}
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = string(n)
	}
	sort.Strings(ids)
	return strings.Join(ids, "\x00")
}

// plan returns the cached plan for a validated node set, building and
// publishing it (copy-on-write map) on first use.
func (s *snapshot) plan(key string, nodes []graph.NodeID) (*graphPlan, error) {
	if pm := s.plans.Load(); pm != nil {
		if p, ok := (*pm)[key]; ok {
			return p, nil
		}
	}
	p, err := s.buildPlan(nodes)
	if err != nil {
		return nil, err
	}
	for {
		old := s.plans.Load()
		if old != nil {
			if q, ok := (*old)[key]; ok {
				return q, nil
			}
		}
		var next planMap
		if old != nil {
			next = make(planMap, len(*old)+1)
			for k, q := range *old {
				next[k] = q
			}
		} else {
			next = make(planMap, 1)
		}
		next[key] = p
		if s.plans.CompareAndSwap(old, &next) {
			return p, nil
		}
	}
}

// buildPlan derives the logical-topology skeleton for a node set:
// (1) the subgraph induced by routes among the requested nodes, (2)
// pass-through network-node chains collapsed into single logical links
// (capacity: min; latency: sum; internal-BW limits folded) — exactly
// the construction of §4.3, but tracking for every logical link which
// physical channels its availability folds over instead of binding any
// timeframe-dependent numbers. The result is immutable and shared by
// every query against this snapshot.
func (s *snapshot) buildPlan(nodes []graph.NodeID) (*graphPlan, error) {
	requested := make(map[graph.NodeID]bool, len(nodes))
	for _, n := range nodes {
		requested[n] = true
	}
	sub := s.topo.Graph.InducedByRoutes(s.rt, nodes)

	type buildLink struct {
		a, b     graph.NodeID
		capacity stats.Stat
		latency  stats.Stat
		fwd, rev []physChan
		limit    float64
	}
	chansFrom := func(l *buildLink, from graph.NodeID) []physChan {
		if l.a == from {
			return l.fwd
		}
		return l.rev
	}
	otherEnd := func(l *buildLink, id graph.NodeID) graph.NodeID {
		if l.a == id {
			return l.b
		}
		return l.a
	}

	// The induced subgraph has fresh link IDs; map each link back to the
	// original by endpoints + capacity so channel identities (and memo
	// slots) refer to the snapshot's physical topology.
	bls := make([]*buildLink, 0, sub.NumLinks())
	adj := make(map[graph.NodeID][]*buildLink)
	for _, l := range sub.Links() {
		orig := findLink(s.topo.Graph, l.A, l.B, l.Capacity)
		if orig == nil {
			return nil, fmt.Errorf("core: internal: lost link %s--%s", l.A, l.B)
		}
		bl := &buildLink{
			a: l.A, b: l.B,
			capacity: stats.Exact(l.Capacity),
			latency:  stats.Exact(l.Latency),
			fwd:      []physChan{{orig, orig.DirFrom(l.A)}},
			rev:      []physChan{{orig, orig.DirFrom(l.B)}},
		}
		bls = append(bls, bl)
		adj[l.A] = append(adj[l.A], bl)
		adj[l.B] = append(adj[l.B], bl)
	}

	// Collapse pass-through network-node chains.
	removed := make(map[graph.NodeID]bool)
	liveAt := func(id graph.NodeID) []*buildLink {
		var out []*buildLink
		for _, l := range adj[id] {
			if l.a != "" {
				out = append(out, l)
			}
		}
		return out
	}
	for {
		collapsed := false
		for _, id := range sub.Nodes() {
			if removed[id] || requested[id] {
				continue
			}
			nd := sub.Node(id)
			if nd == nil || nd.Kind != graph.Network {
				continue
			}
			ls := liveAt(id)
			if len(ls) != 2 {
				continue
			}
			l1, l2 := ls[0], ls[1]
			a, b := otherEnd(l1, id), otherEnd(l2, id)
			if a == b {
				continue
			}
			merged := &buildLink{a: a, b: b}
			merged.capacity = stats.MinStat(l1.capacity, l2.capacity)
			merged.latency = stats.AddStat(l1.latency, l2.latency)
			// a -> b traverses l1 from a, then l2 from mid (and the
			// reverse for b -> a).
			merged.fwd = append(append([]physChan(nil), chansFrom(l1, a)...), chansFrom(l2, id)...)
			merged.rev = append(append([]physChan(nil), chansFrom(l2, b)...), chansFrom(l1, id)...)
			merged.limit = minPositive(l1.limit, l2.limit)
			if nd.InternalBW > 0 {
				merged.capacity = stats.MinStat(merged.capacity, stats.Exact(nd.InternalBW))
				merged.limit = minPositive(merged.limit, nd.InternalBW)
			}
			// Mark originals dead and install the merged link.
			l1.a, l1.b = "", ""
			l2.a, l2.b = "", ""
			adj[a] = append(adj[a], merged)
			adj[b] = append(adj[b], merged)
			bls = append(bls, merged)
			removed[id] = true
			collapsed = true
		}
		if !collapsed {
			break
		}
	}

	p := &graphPlan{}
	for _, id := range sub.Nodes() {
		if removed[id] {
			continue
		}
		nd := sub.Node(id)
		p.nodes = append(p.nodes, NodeInfo{ID: id, Kind: nd.Kind, InternalBW: nd.InternalBW, Memory: nd.MemoryBytes})
	}
	for _, bl := range bls {
		if bl.a == "" {
			continue // merged away
		}
		p.links = append(p.links, planLink{
			a: bl.a, b: bl.b,
			capacity: bl.capacity, latency: bl.latency,
			fwd: bl.fwd, rev: bl.rev, limit: bl.limit,
		})
	}
	sort.Slice(p.links, func(i, j int) bool {
		if p.links[i].a != p.links[j].a {
			return p.links[i].a < p.links[j].a
		}
		return p.links[i].b < p.links[j].b
	})
	p.nodeIdx = make(map[graph.NodeID]int, len(p.nodes))
	for i := range p.nodes {
		p.nodeIdx[p.nodes[i].ID] = i
	}
	p.linkIdx = make(map[graph.NodeID][]int, len(p.nodes))
	for i := range p.links {
		p.linkIdx[p.links[i].a] = append(p.linkIdx[p.links[i].a], i)
		p.linkIdx[p.links[i].b] = append(p.linkIdx[p.links[i].b], i)
	}
	return p, nil
}

// minPositive returns the smaller of two limits, treating <=0 as "no
// limit".
func minPositive(a, b float64) float64 {
	if a <= 0 {
		return b
	}
	if b <= 0 {
		return a
	}
	return math.Min(a, b)
}
