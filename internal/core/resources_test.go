package core

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func TestHostMemoryQuery(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(3)
	mem, err := r.mod.HostMemory("m-1")
	if err != nil {
		t.Fatal(err)
	}
	if mem != topology.HostMemory {
		t.Fatalf("memory = %v", mem)
	}
	if _, err := r.mod.HostMemory("aspen"); err == nil {
		t.Fatal("router memory query succeeded")
	}
	if _, err := r.mod.HostMemory("ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestMinNodesForData(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(3)
	pool := topology.TestbedHosts
	// 256 MB per host: 600 MB needs 3 hosts.
	n, err := r.mod.MinNodesForData(pool, 600e6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("nodes = %d, want 3", n)
	}
	// Exactly one host's worth.
	n, err = r.mod.MinNodesForData(pool, topology.HostMemory)
	if err != nil || n != 1 {
		t.Fatalf("nodes = %d, %v", n, err)
	}
	// More than the pool holds.
	if _, err := r.mod.MinNodesForData(pool, 9*topology.HostMemory); err == nil {
		t.Fatal("oversized data accepted")
	}
}

func TestNodeInfoCarriesMemory(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(3)
	g, err := r.mod.GetGraph(nil, TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	n := g.Node("m-5")
	if n == nil || n.Memory != topology.HostMemory {
		t.Fatalf("node info = %+v", n)
	}
}

func TestLinkDegradationVisibleAfterRediscovery(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(10)

	before, err := r.mod.AvailableBandwidth("m-6", "m-8", TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if before.Median != 100e6 {
		t.Fatalf("before = %v", before)
	}

	// Degrade timberline--whiteface to 25 Mbps.
	for _, l := range r.net.Graph().Links() {
		if (l.A == "timberline" && l.B == "whiteface") || (l.A == "whiteface" && l.B == "timberline") {
			r.net.SetLinkCapacity(l.ID, 25e6)
		}
	}
	// A live transfer sees the new bottleneck immediately.
	f := r.net.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8"})
	if math.Abs(f.Rate()-25e6) > 1 {
		t.Fatalf("flow rate after degradation = %v", f.Rate())
	}
	r.net.StopFlow(f.ID)

	// The modeler still believes the discovery-time capacity …
	stale, _ := r.mod.AvailableBandwidth("m-6", "m-8", TFCapacity())
	if stale.Median != 100e6 {
		t.Fatalf("stale capacity = %v", stale.Median)
	}
	// … until the collector re-discovers (ifSpeed is dynamic) and the
	// modeler refreshes.
	if _, err := r.col.Discover(); err != nil {
		t.Fatal(err)
	}
	r.mod.Refresh()
	fresh, err := r.mod.AvailableBandwidth("m-6", "m-8", TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Median != 25e6 {
		t.Fatalf("fresh capacity = %v", fresh.Median)
	}
}

func TestLinkFailureStallsFlows(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(5)
	var linkID int = -1
	for _, l := range r.net.Graph().Links() {
		if (l.A == "timberline" && l.B == "whiteface") || (l.A == "whiteface" && l.B == "timberline") {
			linkID = int(l.ID)
		}
	}
	f := r.net.StartFlow(netsim.FlowSpec{Src: "m-4", Dst: "m-7"})
	if f.Rate() != 100e6 {
		t.Fatalf("rate = %v", f.Rate())
	}
	r.net.SetLinkCapacity(graph.LinkID(linkID), 0)
	if f.Rate() != 0 {
		t.Fatalf("rate over dead link = %v", f.Rate())
	}
	// Recovery restores service.
	r.net.SetLinkCapacity(graph.LinkID(linkID), 100e6)
	if f.Rate() != 100e6 {
		t.Fatalf("rate after recovery = %v", f.Rate())
	}
	r.net.StopFlow(f.ID)
}
