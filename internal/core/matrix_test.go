package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/collector"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topogen"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// rigHosts enumerates the rig's compute nodes from the collector's map.
func rigHosts(t testing.TB, r *rig) []graph.NodeID {
	t.Helper()
	topo, err := r.col.Topology()
	if err != nil {
		t.Fatal(err)
	}
	return topo.Graph.ComputeNodes()
}

// TestMatrixEquivalencePerPair pins the kernel's core contract: the
// batched DP sweep produces byte-identical medians and latencies to the
// per-pair fold, for every timeframe kind, on the Figure 3 testbed
// under asymmetric load.
func TestMatrixEquivalencePerPair(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	traffic.Blast(r.net, "m-1", "m-4", 25e6)
	r.clk.RunUntil(30)

	ctx := context.Background()
	hosts := rigHosts(t, r)
	if len(hosts) != 8 {
		t.Fatalf("testbed hosts = %d, want 8", len(hosts))
	}
	for _, tf := range []Timeframe{TFCapacity(), TFCurrent(), TFHistory(20), TFFuture(10)} {
		mi, err := r.mod.QueryMatrixCtx(ctx, hosts, hosts, tf)
		if err != nil {
			t.Fatalf("%v: matrix: %v", tf.Kind, err)
		}
		for i, src := range hosts {
			for j, dst := range hosts {
				if !mi.Valid[i][j] {
					t.Fatalf("%v: entry %s->%s invalid on a fully connected testbed", tf.Kind, src, dst)
				}
				if src == dst {
					if !math.IsInf(mi.Bandwidth[i][j], 1) || mi.Latency[i][j] != 0 {
						t.Fatalf("%v: diagonal %s = bw %v lat %v", tf.Kind, src, mi.Bandwidth[i][j], mi.Latency[i][j])
					}
					continue
				}
				st, err := r.mod.AvailableBandwidthCtx(ctx, src, dst, tf)
				if err != nil {
					t.Fatalf("%v: per-pair %s->%s: %v", tf.Kind, src, dst, err)
				}
				if mi.Bandwidth[i][j] != st.Median {
					t.Fatalf("%v: %s->%s matrix bw %v != per-pair %v",
						tf.Kind, src, dst, mi.Bandwidth[i][j], st.Median)
				}
				lat, err := r.mod.PathLatencyCtx(ctx, src, dst)
				if err != nil {
					t.Fatalf("%v: per-pair latency %s->%s: %v", tf.Kind, src, dst, err)
				}
				if mi.Latency[i][j] != lat.Median {
					t.Fatalf("%v: %s->%s matrix latency %v != per-pair %v",
						tf.Kind, src, dst, mi.Latency[i][j], lat.Median)
				}
			}
		}
	}
}

// TestMatrixEpochAndLatencyCtx pins the snapshot stamping satellite:
// matrix answers carry the same epoch the graph answer reports, repeat
// answers reuse the snapshot, Refresh moves the epoch, and
// LatencyMatrixCtx/BandwidthMatrixCtx agree with the full kernel.
func TestMatrixEpochAndLatencyCtx(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(10)
	ctx := context.Background()
	hosts := rigHosts(t, r)

	g, err := r.mod.GetGraphCtx(ctx, nil, TFHistory(5))
	if err != nil {
		t.Fatal(err)
	}
	mi, err := r.mod.QueryMatrixCtx(ctx, hosts, hosts, TFHistory(5))
	if err != nil {
		t.Fatal(err)
	}
	if mi.Epoch == 0 || mi.Epoch != g.Epoch {
		t.Fatalf("matrix epoch %d, graph epoch %d", mi.Epoch, g.Epoch)
	}
	mi2, err := r.mod.QueryMatrixCtx(ctx, hosts, hosts, TFHistory(5))
	if err != nil {
		t.Fatal(err)
	}
	if mi2.Epoch != mi.Epoch {
		t.Fatalf("repeat matrix moved epoch %d -> %d without refresh", mi.Epoch, mi2.Epoch)
	}
	r.mod.Refresh()
	mi3, err := r.mod.QueryMatrixCtx(ctx, hosts, hosts, TFHistory(5))
	if err != nil {
		t.Fatal(err)
	}
	if mi3.Epoch <= mi.Epoch {
		t.Fatalf("epoch after Refresh = %d, want > %d", mi3.Epoch, mi.Epoch)
	}

	lat, err := r.mod.LatencyMatrixCtx(ctx, hosts)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := r.mod.BandwidthMatrixCtx(ctx, hosts, TFHistory(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range hosts {
		for j := range hosts {
			if lat[i][j] != mi3.Latency[i][j] {
				t.Fatalf("LatencyMatrixCtx[%d][%d] = %v, kernel %v", i, j, lat[i][j], mi3.Latency[i][j])
			}
			if i != j && bw[i][j] != mi3.Bandwidth[i][j] {
				t.Fatalf("BandwidthMatrixCtx[%d][%d] = %v, kernel %v", i, j, bw[i][j], mi3.Bandwidth[i][j])
			}
		}
	}
}

// TestMatrixPartialValidity pins per-entry degradation: unknown nodes
// and network (non-compute) nodes in the request invalidate exactly
// their rows and columns — the batch itself still answers, and the
// diagonal of a known-but-unroutable source stays valid.
func TestMatrixPartialValidity(t *testing.T) {
	r := testbedRig(t)
	r.clk.RunUntil(10)
	ctx := context.Background()

	nodes := []graph.NodeID{"m-1", "ghost-node", "timberline", "m-7"}
	mi, err := r.mod.QueryMatrixCtx(ctx, nodes, nodes, TFHistory(5))
	if err != nil {
		t.Fatalf("matrix with bad nodes should degrade per entry, got %v", err)
	}
	for i, src := range nodes {
		for j, dst := range nodes {
			bad := src == "ghost-node" || dst == "ghost-node" ||
				src == "timberline" || dst == "timberline"
			if i == j && src != "ghost-node" && src != "timberline" {
				bad = false
			}
			if i == j && (src == "ghost-node" || src == "timberline") {
				// Diagonal answers Inf/0 even for nodes the matrix
				// cannot route: src==dst needs no route, matching the
				// scalar query's short-circuit.
				if !mi.Valid[i][j] {
					t.Fatalf("diagonal %s invalid", src)
				}
				continue
			}
			if mi.Valid[i][j] == bad {
				t.Fatalf("Valid[%s][%s] = %v, want %v", src, dst, mi.Valid[i][j], !bad)
			}
			if bad && (mi.Bandwidth[i][j] != 0 || mi.Latency[i][j] != 0) {
				t.Fatalf("invalid entry %s->%s not zero-filled: bw %v lat %v",
					src, dst, mi.Bandwidth[i][j], mi.Latency[i][j])
			}
		}
	}
}

// TestMatrixSurvivesAgentDown pins the no-mid-matrix-abort satellite:
// with an agent marked Down (circuit broken, health map reports it) the
// matrix still answers every entry rather than aborting the batch.
func TestMatrixSurvivesAgentDown(t *testing.T) {
	clk := simclock.New()
	net, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(net, snmp.DefaultCommunity)
	inj := faults.New(att.Registry, clk, 1)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:        snmp.NewClient(inj, snmp.DefaultCommunity),
		Clock:         clk,
		Addrs:         addrs,
		PollPeriod:    1,
		PerHopLatency: topology.PerHopLatency,
		DownAfter:     2,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	mod := New(Config{Source: col})
	r := &rig{clk: clk, net: net, col: col, mod: mod}

	r.clk.RunUntil(10)
	// Kill m-7's agent and advance past DownAfter consecutive failures.
	inj.Blackhole(snmp.Addr("m-7"), 10, 0)
	r.clk.RunUntil(30)
	if h := mod.Health(); h["m-7"].State != collector.Down {
		t.Fatalf("m-7 health = %v, want Down", h["m-7"].State)
	}

	ctx := context.Background()
	hosts := rigHosts(t, r)
	mi, err := r.mod.QueryMatrixCtx(ctx, hosts, hosts, TFCurrent())
	if err != nil {
		t.Fatalf("matrix with a down agent aborted: %v", err)
	}
	for i := range hosts {
		for j := range hosts {
			if !mi.Valid[i][j] {
				t.Fatalf("entry %s->%s invalid: down agents should degrade, not invalidate",
					hosts[i], hosts[j])
			}
		}
	}
}

// TestMatrixConcurrentWithPollRounds hammers the matrix path from many
// goroutines while poll rounds advance the clock and another goroutine
// churns snapshots — run under -race this exercises the shared scratch
// pools, the tree memo, and the row worker pool.
func TestMatrixConcurrentWithPollRounds(t *testing.T) {
	r := testbedRig(t)
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	r.clk.RunUntil(10)

	ctx := context.Background()
	hosts := rigHosts(t, r)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tfs := []Timeframe{TFHistory(10), TFCurrent(), TFCapacity()}
			var lastEpoch uint64
			for i := 0; i < 60; i++ {
				mi, err := r.mod.QueryMatrixCtx(ctx, hosts, hosts, tfs[(i+w)%len(tfs)])
				if err != nil {
					errs <- err
					return
				}
				if mi.Epoch < lastEpoch {
					errs <- errEpochBack(w, mi.Epoch, lastEpoch)
					return
				}
				lastEpoch = mi.Epoch
				for a := range hosts {
					for b := range hosts {
						if !mi.Valid[a][b] {
							errs <- errInvalidEntry(hosts[a], hosts[b], mi.Epoch)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			r.mod.Refresh()
		}
	}()
	// Poll rounds run concurrently with the queries, exactly like the
	// real-time daemon's clock driver.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			r.clk.RunUntil(simclock.Time(10 + float64(i)*0.5))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func errEpochBack(w int, got, last uint64) error {
	return &matrixTestErr{s: "epoch went backwards"}
}

func errInvalidEntry(a, b graph.NodeID, epoch uint64) error {
	return &matrixTestErr{s: "unexpected invalid entry " + string(a) + "->" + string(b)}
}

type matrixTestErr struct{ s string }

func (e *matrixTestErr) Error() string { return e.s }

// benchTopo builds a generated topology with at least n hosts and
// returns the rig plus the first n host IDs, with enough simulated
// polling behind it that history queries answer from real windows.
func benchMatrixRig(b *testing.B, n int) (*rig, []graph.NodeID) {
	tp, err := topogen.Generate(topogen.Spec{Kind: "hier", N: 3 * n, Seed: 7, Regions: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := newRig(b, tp.Graph, nil)
	r.clk.RunUntil(5)
	hosts := tp.Graph.ComputeNodes()
	if len(hosts) < n {
		b.Fatalf("generated topology has %d hosts, want >= %d", len(hosts), n)
	}
	return r, hosts[:n]
}

// BenchmarkMatrixKernel is the tentpole ablation: a 64-host flow matrix
// via the per-pair scalar loop (the old BandwidthMatrixCtx+LatencyMatrix
// shape — one bandwidth and one latency answer per pair) versus the
// batched single-snapshot kernel producing the same two planes in one
// call. The kernel must show ≥5× lower latency and ≥10× fewer
// allocs/op.
func BenchmarkMatrixKernel(b *testing.B) {
	const n = 64
	r, hosts := benchMatrixRig(b, n)
	ctx := context.Background()
	tf := TFHistory(4)

	b.Run("per-pair", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, src := range hosts {
				for _, dst := range hosts {
					if src == dst {
						continue
					}
					if _, err := r.mod.AvailableBandwidthCtx(ctx, src, dst, tf); err != nil {
						b.Fatal(err)
					}
					if _, err := r.mod.PathLatencyCtx(ctx, src, dst); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.mod.QueryMatrixCtx(ctx, hosts, hosts, tf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
