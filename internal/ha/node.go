package ha

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// Role is a node's current position in the pair.
type Role int32

const (
	RoleStandby Role = iota
	RoleLeader
)

func (r Role) String() string {
	if r == RoleLeader {
		return "leader"
	}
	return "standby"
}

// Defaults for Config knobs left zero.
const (
	defaultLeaseTTL  = 3.0 // lease units (virtual or wall seconds)
	defaultHeartbeat = 1.0 // virtual seconds between lease heartbeats
	defaultBackoff   = 250 * time.Millisecond
	maxBackoffMult   = 16
)

// Config wires a Node to its collector, lease, and peer.
type Config struct {
	// Collector is the local collector the node drives: started when
	// the node is leader, fed from the peer's WatchFeed while standby.
	Collector *collector.Collector
	// Clock schedules the lease heartbeat in virtual time — the same
	// clock the collector polls on, so failover tests are deterministic.
	Clock *simclock.Clock
	// Lease is the election primitive shared by the pair.
	Lease Lease
	// ID is this node's advertised query address. It doubles as the
	// lease holder identity and as the leader hint peers return from
	// ErrNotLeader refusals, so it must be dialable by clients.
	ID string
	// PeerAddr is the peer node's query address: the feed-sync source
	// while standby, and the fallback leader hint.
	PeerAddr string
	// LeaseTTL is the lease grant length, in the Lease's own time units
	// (default 3). Promotion after a leader crash is bounded by
	// LeaseTTL + Heartbeat: the grant must lapse, then the standby's
	// next heartbeat claims it.
	LeaseTTL float64
	// Heartbeat is the virtual-seconds period of lease renewal
	// (leader) and observation (standby). Default 1.
	Heartbeat float64
	// Client configures the standby's feed subscription to PeerAddr.
	Client collector.ClientConfig
	// Telemetry receives the ha.* metrics; defaults to the collector's
	// own registry so they surface through the "stats" op.
	Telemetry *telemetry.Registry
	// Serialize runs fn mutually excluded with the clock driver. Every
	// collector mutation from the sync goroutine goes through it. The
	// default runs fn inline, which is only safe when nothing advances
	// the clock concurrently.
	Serialize func(fn func())
	// OnPromote and OnDemote are called (inside the heartbeat, under
	// the clock driver's serialization) after a role transition
	// completes. The daemon uses OnDemote to drain watch subscribers.
	OnPromote func(term uint64)
	OnDemote  func(term uint64)
}

// Node runs one side of a hot-standby pair.
type Node struct {
	cfg Config
	col *collector.Collector
	tel *telemetry.Registry

	role atomic.Int32
	term atomic.Uint64
	hint atomic.Value // string: last observed leader address
	dead atomic.Bool

	hb *simclock.Ticker

	// syncTerm is the highest feed term ever applied; touched only
	// under cfg.Serialize, which also covers role transitions.
	syncTerm uint64
	// lastRenew is the virtual time of the last confirmed lease grant
	// (acquire or renew); heartbeat-only, so unsynchronized.
	lastRenew simclock.Time

	syncMu     sync.Mutex
	syncCancel context.CancelFunc
	syncDone   chan struct{}

	telRole       *telemetry.Gauge
	telTerm       *telemetry.Gauge
	telPromotions *telemetry.Counter
	telDemotions  *telemetry.Counter
	telFenceRej   *telemetry.Counter
	telSyncErrs   *telemetry.Counter
	telResyncs    *telemetry.Counter
}

// New validates cfg and builds a Node. Call Start to join the pair.
func New(cfg Config) (*Node, error) {
	if cfg.Collector == nil {
		return nil, errors.New("ha: Config.Collector is required")
	}
	if cfg.Clock == nil {
		return nil, errors.New("ha: Config.Clock is required")
	}
	if cfg.Lease == nil {
		return nil, errors.New("ha: Config.Lease is required")
	}
	if cfg.ID == "" {
		return nil, errors.New("ha: Config.ID is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = defaultLeaseTTL
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = defaultHeartbeat
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = cfg.Collector.Telemetry()
	}
	if cfg.Serialize == nil {
		cfg.Serialize = func(fn func()) { fn() }
	}
	n := &Node{
		cfg: cfg,
		col: cfg.Collector,
		tel: cfg.Telemetry,

		telRole:       cfg.Telemetry.Gauge("ha.role"),
		telTerm:       cfg.Telemetry.Gauge("ha.term"),
		telPromotions: cfg.Telemetry.Counter("ha.promotions"),
		telDemotions:  cfg.Telemetry.Counter("ha.demotions"),
		telFenceRej:   cfg.Telemetry.Counter("ha.fencing.rejections"),
		telSyncErrs:   cfg.Telemetry.Counter("ha.sync.errors"),
		telResyncs:    cfg.Telemetry.Counter("ha.sync.resyncs"),
	}
	n.hint.Store("")
	return n, nil
}

// Start joins the pair. A node started with leader=true tries to take
// the lease immediately and falls back to standby when someone else
// holds it; leader=false always starts standby (remos-collector
// -standby-of). Must run under the clock driver's serialization.
func (n *Node) Start(leader bool) error {
	took := false
	if leader {
		term, ok, err := n.cfg.Lease.Acquire(n.cfg.ID, n.cfg.LeaseTTL)
		if err != nil {
			return err
		}
		if ok {
			if err := n.promote(term); err != nil {
				return err
			}
			took = true
		}
	}
	if !took {
		n.enterStandby(0)
	}
	now := n.cfg.Clock.Now()
	n.hb = n.cfg.Clock.NewTicker(now+simclock.Time(n.cfg.Heartbeat),
		n.cfg.Heartbeat, "ha-heartbeat", n.heartbeat)
	return nil
}

// Role reports the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// Term reports the highest lease term the node has seen.
func (n *Node) Term() uint64 { return n.term.Load() }

// LeaderHint is the address the node believes currently leads: itself,
// the observed lease holder, or the configured peer.
func (n *Node) LeaderHint() string {
	if h, _ := n.hint.Load().(string); h != "" {
		return h
	}
	return n.cfg.PeerAddr
}

// Gate implements collector.ServerConfig.Gate: a standby refuses every
// query and watch registration with ErrNotLeader carrying the leader
// hint, so failover clients re-route in one hop.
func (n *Node) Gate(op string) error {
	if n.Role() == RoleLeader {
		return nil
	}
	hint := n.LeaderHint()
	if hint == n.cfg.ID {
		hint = ""
	}
	return &collector.NotLeaderError{Leader: hint}
}

// heartbeat is the lease tick: leaders renew, standbys observe and
// claim an expired lease. Runs inside the clock, i.e. under the
// driver's serialization.
func (n *Node) heartbeat(now simclock.Time) {
	if n.dead.Load() {
		return
	}
	if n.Role() == RoleLeader {
		ok, err := n.cfg.Lease.Renew(n.cfg.ID, n.term.Load(), n.cfg.LeaseTTL)
		switch {
		case err != nil:
			// Lease store unreachable. The grant stays ours until it
			// lapses, but once we can no longer confirm it before the
			// standby's acquisition horizon we must self-fence — one
			// heartbeat early, so our last poll round and the
			// successor's first can never overlap.
			n.telSyncErrs.Inc()
			if float64(now-n.lastRenew) >= n.cfg.LeaseTTL-n.cfg.Heartbeat {
				n.demote()
			}
		case !ok:
			// The lease moved on: a standby minted a higher term while
			// we were dark. Step down instead of double-polling.
			n.demote()
		default:
			n.lastRenew = now
		}
		return
	}
	st, err := n.cfg.Lease.Observe()
	if err != nil {
		n.telSyncErrs.Inc()
		return
	}
	if st.Holder != "" && st.Holder != n.cfg.ID && !st.Expired {
		// A live leader exists: track its identity and term so query
		// refusals hint at it and stamped responses carry the term.
		n.hint.Store(st.Holder)
		if st.Term > n.term.Load() {
			n.term.Store(st.Term)
			n.telTerm.Set(float64(st.Term))
			n.col.SetHA(st.Term, false)
		}
		return
	}
	term, ok, err := n.cfg.Lease.Acquire(n.cfg.ID, n.cfg.LeaseTTL)
	if err != nil || !ok {
		return
	}
	if err := n.promote(term); err != nil {
		// Could not start polling; give the lease back so the peer can
		// lead instead of the pair going dark for a full TTL.
		n.cfg.Lease.Release(n.cfg.ID, term)
		n.enterStandby(term)
	}
}

// promote takes leadership at term: stop syncing from the peer, stamp
// the new term on everything, start polling. The collector state is
// whatever the feed synced, so the start is warm — the first poll
// round re-baselines counters rather than fabricating a rate across
// the failover.
func (n *Node) promote(term uint64) error {
	n.stopSync()
	n.syncTerm = term
	n.lastRenew = n.cfg.Clock.Now()
	n.term.Store(term)
	n.hint.Store(n.cfg.ID)
	n.col.SetHA(term, true)
	if err := n.col.Start(); err != nil {
		n.col.SetHA(term, false)
		return err
	}
	n.role.Store(int32(RoleLeader))
	n.telRole.Set(1)
	n.telTerm.Set(float64(term))
	n.telPromotions.Inc()
	if n.cfg.OnPromote != nil {
		n.cfg.OnPromote(term)
	}
	return nil
}

// demote steps down after losing the lease: stop polling, adopt the
// observed term, resume syncing from the new leader.
func (n *Node) demote() {
	n.col.Stop()
	term := n.term.Load()
	hint := n.cfg.PeerAddr
	if st, err := n.cfg.Lease.Observe(); err == nil {
		if st.Term > term {
			term = st.Term
		}
		if st.Holder != "" && st.Holder != n.cfg.ID {
			hint = st.Holder
		}
	}
	n.enterStandby(term)
	if hint != "" {
		n.hint.Store(hint)
	}
	n.telDemotions.Inc()
	if n.cfg.OnDemote != nil {
		n.cfg.OnDemote(term)
	}
}

// enterStandby publishes the standby role and (re)starts the feed-sync
// goroutine.
func (n *Node) enterStandby(term uint64) {
	n.role.Store(int32(RoleStandby))
	if term > n.term.Load() {
		n.term.Store(term)
	}
	n.col.SetHA(n.term.Load(), false)
	n.telRole.Set(0)
	n.telTerm.Set(float64(n.term.Load()))
	n.startSync()
}

// syncPeer resolves where the standby syncs from: the configured peer,
// or — for a node started without one, e.g. an ex-leader restarted
// with its original flags — the observed lease holder's advertised
// address.
func (n *Node) syncPeer() string {
	if n.cfg.PeerAddr != "" {
		return n.cfg.PeerAddr
	}
	if h, _ := n.hint.Load().(string); h != "" && h != n.cfg.ID {
		return h
	}
	return ""
}

// Kill simulates a crash for tests: everything stops, the lease is NOT
// released — the standby must wait out the TTL, exactly like a real
// leader death. Safe under the clock driver's serialization.
func (n *Node) Kill() {
	if !n.dead.CompareAndSwap(false, true) {
		return
	}
	if n.hb != nil {
		n.hb.Stop()
	}
	n.stopSync()
	n.col.Stop()
}

// Close shuts the node down gracefully: a leader releases its lease so
// the peer can take over without waiting out the TTL. Close blocks for
// the sync goroutine, so it must NOT be called while holding the
// Serialize lock — call Kill under the lock, then Wait outside it.
func (n *Node) Close() {
	wasLeader := n.Role() == RoleLeader
	term := n.term.Load()
	n.Kill()
	if wasLeader {
		n.cfg.Lease.Release(n.cfg.ID, term)
	}
	n.Wait()
}

// Wait blocks until the sync goroutine (if any) has exited.
func (n *Node) Wait() {
	n.syncMu.Lock()
	done := n.syncDone
	n.syncMu.Unlock()
	if done != nil {
		<-done
	}
}

// startSync launches the standby's feed-sync goroutine, replacing any
// previous one.
func (n *Node) startSync() {
	n.stopSync()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	n.syncMu.Lock()
	n.syncCancel = cancel
	n.syncDone = done
	n.syncMu.Unlock()
	go n.syncLoop(ctx, done)
}

// stopSync cancels the sync goroutine without waiting: the goroutine
// may be blocked acquiring the Serialize lock the caller holds, and
// its apply closure re-checks the role, so a late wakeup is a no-op.
func (n *Node) stopSync() {
	n.syncMu.Lock()
	cancel := n.syncCancel
	n.syncCancel = nil
	n.syncMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// syncLoop keeps one feed subscription to the peer alive, with
// exponential backoff between attempts (wall time — the peer dial is
// real I/O even when the pair shares a virtual clock).
func (n *Node) syncLoop(ctx context.Context, done chan struct{}) {
	defer close(done)
	backoff := defaultBackoff
	for ctx.Err() == nil {
		progress, err := n.syncOnce(ctx)
		if ctx.Err() != nil || errors.Is(err, errStopped) {
			return
		}
		if err != nil {
			if errors.Is(err, errResync) {
				n.telResyncs.Inc()
			} else {
				n.telSyncErrs.Inc()
			}
		}
		if progress {
			backoff = defaultBackoff
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return
		}
		if backoff < defaultBackoff*maxBackoffMult {
			backoff *= 2
		}
	}
}

// errResync mirrors the replica's coherence signal: the stream broke
// in a way only a fresh full snapshot can fix.
var errResync = errors.New("ha: feed coherence lost, resyncing")

// syncOnce runs one subscription lifetime against the peer: dial,
// subscribe to WatchFeed, apply payloads into the local collector
// until the stream ends. Coherence rules match the read replica: Seq
// must be dense, Overflowed or a late Resync mark forces a fresh
// subscription, and term fencing rejects payloads from a deposed
// leader.
func (n *Node) syncOnce(ctx context.Context) (progress bool, err error) {
	peer := n.syncPeer()
	if peer == "" {
		return false, errors.New("ha: no peer to sync from yet")
	}
	cl, err := collector.DialConfig(peer, n.cfg.Client)
	if err != nil {
		return false, err
	}
	defer cl.Close()
	h, err := cl.Watch(ctx, collector.WatchRequest{Kind: collector.WatchFeed})
	if err != nil {
		return false, err
	}
	defer h.Cancel()
	var lastSeq uint64
	for {
		var u collector.WatchUpdate
		var open bool
		select {
		case u, open = <-h.C:
		case <-ctx.Done():
			return progress, ctx.Err()
		}
		if !open {
			if werr := h.Err(); werr != nil {
				return progress, werr
			}
			return progress, errors.New("ha: feed stream closed")
		}
		if u.Final {
			return progress, errors.New("ha: feed drained by server")
		}
		if u.Seq != 0 && lastSeq != 0 && u.Seq != lastSeq+1 {
			return progress, errResync
		}
		if u.Overflowed {
			return progress, errResync
		}
		// Same in-band re-base rule as the read replica: a Resync mark
		// whose update carries a self-contained Full payload (the leader
		// restored a checkpoint or changed term) is applied in place.
		if u.Resync && progress && (u.Feed == nil || !u.Feed.Full) {
			return progress, errResync
		}
		if u.Seq != 0 {
			lastSeq = u.Seq
		}
		if u.Err != "" || u.Feed == nil {
			continue
		}
		applied, aerr := n.applyPayload(u.Feed)
		if aerr != nil {
			if errors.Is(aerr, errStopped) {
				return progress, aerr
			}
			return progress, errResync
		}
		if applied {
			progress = true
		}
	}
}

// applyPayload installs one feed payload under the Serialize lock,
// where the role and syncTerm checks are ordered with promotions.
func (n *Node) applyPayload(p *collector.FeedPayload) (applied bool, err error) {
	n.cfg.Serialize(func() {
		if n.dead.Load() || n.Role() != RoleStandby {
			err = errStopped
			return
		}
		if p.Term < n.syncTerm {
			// A deposed leader is still feeding us: fence it. The
			// resulting resync redials, and the dial lands on whatever
			// PeerAddr now serves.
			n.telFenceRej.Inc()
			err = errors.New("ha: feed payload from deposed leader term")
			return
		}
		if p.Term > n.syncTerm && !p.Full {
			// A term advanced mid-stream without a re-snapshot: the
			// delta chains from a state we never saw.
			err = errors.New("ha: feed delta across term change")
			return
		}
		if aerr := n.col.ApplyFeed(p); aerr != nil {
			err = aerr
			return
		}
		n.syncTerm = p.Term
		if p.Term > n.term.Load() {
			n.term.Store(p.Term)
			n.telTerm.Set(float64(p.Term))
			n.col.SetHA(p.Term, false)
		}
		applied = true
	})
	return applied, err
}
