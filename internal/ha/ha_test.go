package ha

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topofile"
)

const pairTopo = `
host h1
host h2
router r1
link h1 r1 100Mbps 0.5ms
link h2 r1 100Mbps 0.5ms
`

// pair is a two-collector harness on one shared virtual network: both
// collectors poll the same agents, exactly like a hot-standby pair
// deployed against one estate.
type pair struct {
	clk   *simclock.Clock
	lease *MemoryLease
	colA  *collector.Collector
	colB  *collector.Collector
}

func newPair(t *testing.T) *pair {
	t.Helper()
	g, err := topofile.ParseString(pairTopo)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	clk := simclock.New()
	net, err := netsim.New(clk, g)
	if err != nil {
		t.Fatalf("netsim: %v", err)
	}
	att := snmp.Attach(net, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	mk := func() *collector.Collector {
		return collector.New(collector.Config{
			Client:     snmp.NewClient(att.Registry, snmp.DefaultCommunity),
			Clock:      clk,
			Addrs:      addrs,
			PollPeriod: 2,
		})
	}
	return &pair{clk: clk, lease: NewMemoryLease(clk), colA: mk(), colB: mk()}
}

func (p *pair) node(t *testing.T, col *collector.Collector, id, peer string, ttl, hb float64) *Node {
	t.Helper()
	n, err := New(Config{
		Collector: col,
		Clock:     p.clk,
		Lease:     p.lease,
		ID:        id,
		PeerAddr:  peer,
		LeaseTTL:  ttl,
		Heartbeat: hb,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { n.Kill(); n.Wait() })
	return n
}

func polls(col *collector.Collector) uint64 {
	return col.Telemetry().Snapshot().Counters["collector.polls"]
}

func TestMemoryLeaseTermsMonotonic(t *testing.T) {
	clk := simclock.New()
	l := NewMemoryLease(clk)

	term, ok, err := l.Acquire("a", 3)
	if err != nil || !ok || term != 1 {
		t.Fatalf("first acquire: term=%d ok=%v err=%v", term, ok, err)
	}
	// Held and unexpired: a rival cannot take it.
	if _, ok, _ := l.Acquire("b", 3); ok {
		t.Fatal("rival acquired a live lease")
	}
	// The holder renews; a rival's renewal fails.
	if ok, _ := l.Renew("a", 1, 3); !ok {
		t.Fatal("holder renewal failed")
	}
	if ok, _ := l.Renew("b", 1, 3); ok {
		t.Fatal("rival renewed someone else's lease")
	}
	// Expiry opens the door, and the next term is minted.
	clk.Advance(3.5)
	term, ok, _ = l.Acquire("b", 3)
	if !ok || term != 2 {
		t.Fatalf("post-expiry acquire: term=%d ok=%v", term, ok)
	}
	// The deposed holder's renewal at the old term fails.
	if ok, _ := l.Renew("a", 1, 3); ok {
		t.Fatal("deposed holder renewed at a stale term")
	}
	st, _ := l.Observe()
	if st.Holder != "b" || st.Term != 2 || st.Expired {
		t.Fatalf("observe: %+v", st)
	}
	// Release frees the grant but preserves the term counter.
	if err := l.Release("b", 2); err != nil {
		t.Fatal(err)
	}
	term, ok, _ = l.Acquire("a", 3)
	if !ok || term != 3 {
		t.Fatalf("post-release acquire: term=%d ok=%v", term, ok)
	}
}

func TestFileLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease.json")
	now := time.Unix(1000, 0)
	mk := func() *FileLease {
		l := NewFileLease(path)
		l.now = func() time.Time { return now }
		return l
	}
	// Two independent handles (two daemons) on one file.
	la, lb := mk(), mk()

	term, ok, err := la.Acquire("a", 3)
	if err != nil || !ok || term != 1 {
		t.Fatalf("acquire: term=%d ok=%v err=%v", term, ok, err)
	}
	if _, ok, _ := lb.Acquire("b", 3); ok {
		t.Fatal("rival acquired a live lease")
	}
	st, err := lb.Observe()
	if err != nil || st.Holder != "a" || st.Term != 1 || st.Expired {
		t.Fatalf("observe: %+v err=%v", st, err)
	}
	now = now.Add(4 * time.Second)
	term, ok, _ = lb.Acquire("b", 3)
	if !ok || term != 2 {
		t.Fatalf("post-expiry acquire: term=%d ok=%v", term, ok)
	}
	if ok, _ := la.Renew("a", 1, 3); ok {
		t.Fatal("deposed holder renewed")
	}
	if ok, _ := lb.Renew("b", 2, 3); !ok {
		t.Fatal("holder renewal failed")
	}
}

// TestPromotionAfterLeaderDeath is the core deterministic drill: the
// leader dies without releasing its lease, and the standby must
// promote within LeaseTTL + Heartbeat of the death, with the term
// advanced and no overlap in poll rounds.
func TestPromotionAfterLeaderDeath(t *testing.T) {
	p := newPair(t)
	const ttl, hb = 3.0, 1.0
	nodeA := p.node(t, p.colA, "addrA", "", ttl, hb)
	nodeB := p.node(t, p.colB, "addrB", "", ttl, hb)

	var promotedAt simclock.Time
	nodeB.cfg.OnPromote = func(term uint64) { promotedAt = p.clk.Now() }

	if err := nodeA.Start(true); err != nil {
		t.Fatalf("start A: %v", err)
	}
	if nodeA.Role() != RoleLeader || nodeA.Term() != 1 {
		t.Fatalf("A after start: role=%v term=%d", nodeA.Role(), nodeA.Term())
	}
	if err := nodeB.Start(false); err != nil {
		t.Fatalf("start B: %v", err)
	}

	// Steady state: A leads and polls, B observes and stays standby.
	p.clk.Advance(10)
	if nodeB.Role() != RoleStandby || nodeB.Term() != 1 {
		t.Fatalf("B in steady state: role=%v term=%d", nodeB.Role(), nodeB.Term())
	}
	if polls(p.colA) == 0 {
		t.Fatal("leader never polled")
	}
	if polls(p.colB) != 0 {
		t.Fatal("standby polled agents")
	}
	// The standby's gate refuses with the observed leader's address.
	err := nodeB.Gate("topology")
	if hint, ok := collector.LeaderHint(err); !ok || hint != "addrA" {
		t.Fatalf("standby gate: err=%v hint=%q", err, hint)
	}
	if nodeA.Gate("topology") != nil {
		t.Fatal("leader gate refused")
	}

	// Crash the leader mid-estate: lease NOT released.
	nodeA.Kill()
	killedAt := p.clk.Now()
	pollsABefore := polls(p.colA)

	p.clk.Advance(ttl + 2*hb)

	if nodeB.Role() != RoleLeader || nodeB.Term() != 2 {
		t.Fatalf("B after failover: role=%v term=%d", nodeB.Role(), nodeB.Term())
	}
	if promotedAt == 0 {
		t.Fatal("OnPromote never fired")
	}
	if d := float64(promotedAt - killedAt); d > ttl+hb+1e-9 {
		t.Fatalf("promotion took %.2fs, bound is %.2fs", d, ttl+hb)
	}
	// Zero dual-leader rounds: the dead leader's poll counter froze.
	if got := polls(p.colA); got != pollsABefore {
		t.Fatalf("dead leader kept polling: %d -> %d", pollsABefore, got)
	}
	if polls(p.colB) == 0 {
		t.Fatal("promoted standby never polled")
	}
	snap := p.colB.Telemetry().Snapshot()
	if snap.Counters["ha.promotions"] != 1 {
		t.Fatalf("ha.promotions = %d", snap.Counters["ha.promotions"])
	}
	if snap.Gauges["ha.role"] != 1 || snap.Gauges["ha.term"] != 2 {
		t.Fatalf("ha gauges: role=%v term=%v", snap.Gauges["ha.role"], snap.Gauges["ha.term"])
	}
}

// TestGracefulHandoff: Close releases the lease, so the peer takes
// over on its next heartbeat instead of waiting out the TTL.
func TestGracefulHandoff(t *testing.T) {
	p := newPair(t)
	nodeA := p.node(t, p.colA, "addrA", "", 5, 1)
	nodeB := p.node(t, p.colB, "addrB", "", 5, 1)
	if err := nodeA.Start(true); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Start(false); err != nil {
		t.Fatal(err)
	}
	p.clk.Advance(3)
	nodeA.Close()
	p.clk.Advance(1.5) // one heartbeat, well under the 5s TTL
	if nodeB.Role() != RoleLeader || nodeB.Term() != 2 {
		t.Fatalf("B after handoff: role=%v term=%d", nodeB.Role(), nodeB.Term())
	}
}

// TestLeaderStepsDown: a leader whose renewals lag its TTL (a stand-in
// for a partition from the lease store) must detect the higher term on
// its next renewal and demote instead of double-polling.
func TestLeaderStepsDown(t *testing.T) {
	p := newPair(t)
	// A renews every 5s against a 1s TTL; B checks every 1s.
	nodeA := p.node(t, p.colA, "addrA", "", 1, 5)
	nodeB := p.node(t, p.colB, "addrB", "", 3, 1)
	demoted := false
	nodeA.cfg.OnDemote = func(term uint64) { demoted = true }
	if err := nodeA.Start(true); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Start(false); err != nil {
		t.Fatal(err)
	}

	// t=1: A's grant lapses; B's heartbeat claims term 2. t=5: A's
	// renewal fails and it steps down.
	p.clk.Advance(6)

	if nodeB.Role() != RoleLeader || nodeB.Term() != 2 {
		t.Fatalf("B: role=%v term=%d", nodeB.Role(), nodeB.Term())
	}
	if nodeA.Role() != RoleStandby || nodeA.Term() != 2 {
		t.Fatalf("A: role=%v term=%d", nodeA.Role(), nodeA.Term())
	}
	if !demoted {
		t.Fatal("OnDemote never fired")
	}
	if p.colA.Telemetry().Snapshot().Counters["ha.demotions"] != 1 {
		t.Fatal("ha.demotions != 1")
	}
	// The deposed leader's gate now routes to the new one.
	err := nodeA.Gate("topology")
	if !errors.Is(err, collector.ErrNotLeader) {
		t.Fatalf("deposed gate: %v", err)
	}
	if hint, ok := collector.LeaderHint(err); !ok || hint != "addrB" {
		t.Fatalf("deposed hint: %q", hint)
	}
	// A is stopped; B keeps polling alone.
	pa := polls(p.colA)
	p.clk.Advance(10)
	if polls(p.colA) != pa {
		t.Fatal("deposed leader kept polling")
	}
	if polls(p.colB) == 0 {
		t.Fatal("new leader never polled")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil || !strings.Contains(err.Error(), "Collector") {
		t.Fatalf("want Collector error, got %v", err)
	}
	p := newPair(t)
	if _, err := New(Config{Collector: p.colA}); err == nil || !strings.Contains(err.Error(), "Clock") {
		t.Fatalf("want Clock error, got %v", err)
	}
	if _, err := New(Config{Collector: p.colA, Clock: p.clk}); err == nil || !strings.Contains(err.Error(), "Lease") {
		t.Fatalf("want Lease error, got %v", err)
	}
	if _, err := New(Config{Collector: p.colA, Clock: p.clk, Lease: p.lease}); err == nil || !strings.Contains(err.Error(), "ID") {
		t.Fatalf("want ID error, got %v", err)
	}
}

// errLease wraps a MemoryLease, failing every operation for holders in
// its deny set — a stand-in for a lease-store partition.
type errLease struct {
	*MemoryLease
	mu     sync.Mutex
	denied map[string]bool
}

func (l *errLease) deny(id string, on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.denied == nil {
		l.denied = make(map[string]bool)
	}
	l.denied[id] = on
}

func (l *errLease) bad(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.denied[id]
}

func (l *errLease) Acquire(id string, ttl float64) (uint64, bool, error) {
	if l.bad(id) {
		return 0, false, errors.New("lease store unreachable")
	}
	return l.MemoryLease.Acquire(id, ttl)
}

func (l *errLease) Renew(id string, term uint64, ttl float64) (bool, error) {
	if l.bad(id) {
		return false, errors.New("lease store unreachable")
	}
	return l.MemoryLease.Renew(id, term, ttl)
}

// TestLeaderSelfFencesOnLeaseStorePartition: a leader that cannot
// reach the lease store must step down BEFORE the standby's
// acquisition horizon — its last poll round and the successor's first
// must never overlap, even though neither node ever saw the other.
func TestLeaderSelfFencesOnLeaseStorePartition(t *testing.T) {
	p := newPair(t)
	lease := &errLease{MemoryLease: p.lease}
	const ttl, hb = 3.0, 1.0
	mk := func(col *collector.Collector, id string) *Node {
		n, err := New(Config{
			Collector: col, Clock: p.clk, Lease: lease,
			ID: id, LeaseTTL: ttl, Heartbeat: hb,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Kill(); n.Wait() })
		return n
	}
	nodeA, nodeB := mk(p.colA, "addrA"), mk(p.colB, "addrB")

	var demotedAt, promotedAt simclock.Time
	nodeA.cfg.OnDemote = func(uint64) { demotedAt = p.clk.Now() }
	nodeB.cfg.OnPromote = func(uint64) { promotedAt = p.clk.Now() }

	if err := nodeA.Start(true); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Start(false); err != nil {
		t.Fatal(err)
	}
	p.clk.Advance(5)

	// Partition A from the lease store.
	lease.deny("addrA", true)
	p.clk.Advance(ttl + 2*hb)

	if nodeA.Role() != RoleStandby {
		t.Fatalf("partitioned leader still leads: role=%v", nodeA.Role())
	}
	if nodeB.Role() != RoleLeader || nodeB.Term() != 2 {
		t.Fatalf("B: role=%v term=%d", nodeB.Role(), nodeB.Term())
	}
	if demotedAt == 0 || promotedAt == 0 {
		t.Fatalf("transitions not observed: demote=%v promote=%v", demotedAt, promotedAt)
	}
	// Self-fence strictly before takeover: A stopped polling before B
	// could have started.
	if demotedAt >= promotedAt {
		t.Fatalf("overlap window: A demoted at %v, B promoted at %v", demotedAt, promotedAt)
	}
	// A heals: it must rejoin as standby at B's term, not grab back.
	lease.deny("addrA", false)
	p.clk.Advance(5)
	if nodeA.Role() != RoleStandby || nodeA.Term() != 2 {
		t.Fatalf("healed A: role=%v term=%d", nodeA.Role(), nodeA.Term())
	}
	if nodeB.Role() != RoleLeader {
		t.Fatal("B lost leadership after A healed")
	}
}
