// Package ha implements hot-standby collector pairs: a lease-based
// leader election with monotonic terms, live state sync over the
// collector's replication feed, and split-brain fencing.
//
// Exactly one collector of a pair holds the lease and polls agents
// (the leader); the other subscribes to the leader's WatchFeed stream
// and applies payloads straight into its own collector so its windows
// stay warm (the standby). When the lease expires — leader crash,
// partition from the lease store — the standby acquires it at the next
// term, starts polling, and every frame it emits carries the new term
// so replicas and failover clients fence the deposed leader. A deposed
// leader discovers the higher term on its next renewal and steps down
// instead of double-polling.
package ha

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/simclock"
)

// LeaseState is one observation of the lease: who holds it, at what
// term, and whether the holder's grant has lapsed. Term is monotonic
// across holders — every successful Acquire mints the next term — so
// a higher term always denotes a later leadership epoch.
type LeaseState struct {
	Holder  string
	Term    uint64
	Expired bool
}

// Lease is the election primitive of a hot-standby pair. TTL units are
// owned by the implementation: MemoryLease counts virtual seconds on a
// simclock (deterministic tests), FileLease counts wall seconds.
//
// The contract the Node depends on:
//
//   - Acquire succeeds only while the lease is free or expired, and
//     mints term = previous term + 1. Two racing acquirers cannot both
//     succeed at the same term.
//   - Renew succeeds only while id still holds the lease at exactly
//     term; once another node acquires, every renewal by the old
//     holder fails — that failure is how a deposed leader learns to
//     step down.
//   - Observe never mutates state.
type Lease interface {
	Acquire(id string, ttl float64) (term uint64, ok bool, err error)
	Renew(id string, term uint64, ttl float64) (ok bool, err error)
	Observe() (LeaseState, error)
	Release(id string, term uint64) error
}

// MemoryLease is an in-process Lease on virtual time, for tests and
// single-process pairs. TTLs are virtual seconds on the shared clock.
type MemoryLease struct {
	clk *simclock.Clock

	mu     sync.Mutex
	holder string
	term   uint64
	expiry simclock.Time
}

// NewMemoryLease returns a free lease at term 0 on clk.
func NewMemoryLease(clk *simclock.Clock) *MemoryLease {
	return &MemoryLease{clk: clk}
}

// Acquire takes the lease if it is free or expired, minting the next
// term.
func (l *MemoryLease) Acquire(id string, ttl float64) (uint64, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clk.Now()
	if l.holder != "" && l.holder != id && now < l.expiry {
		return 0, false, nil
	}
	l.term++
	l.holder = id
	l.expiry = now + simclock.Time(ttl)
	return l.term, true, nil
}

// Renew extends the grant while id still holds the lease at term.
func (l *MemoryLease) Renew(id string, term uint64, ttl float64) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.holder != id || l.term != term {
		return false, nil
	}
	// Expired but unclaimed is still ours: nobody minted a newer term.
	l.expiry = l.clk.Now() + simclock.Time(ttl)
	return true, nil
}

// Observe reports the current holder, term, and expiry.
func (l *MemoryLease) Observe() (LeaseState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LeaseState{
		Holder:  l.holder,
		Term:    l.term,
		Expired: l.holder == "" || l.clk.Now() >= l.expiry,
	}, nil
}

// Release gives the lease up immediately if id holds it at term. The
// term survives so the next Acquire still mints term+1.
func (l *MemoryLease) Release(id string, term uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.holder == id && l.term == term {
		l.holder = ""
	}
	return nil
}

// FileLease is a Lease backed by a flock-serialized JSON file, for
// pairs sharing a filesystem (the remos-collector -lease flag). Every
// operation is one read-modify-write under an exclusive flock, so two
// daemons racing an expired lease cannot both mint the same term. TTLs
// are wall-clock seconds.
type FileLease struct {
	path string
	now  func() time.Time // test hook; defaults to time.Now
}

// fileLeaseState is the on-disk representation.
type fileLeaseState struct {
	Holder string `json:"holder"`
	Term   uint64 `json:"term"`
	Expiry int64  `json:"expiry_unix_nano"`
}

// NewFileLease returns a lease stored at path. The file is created on
// first use; an empty or missing file is a free lease at term 0.
func NewFileLease(path string) *FileLease {
	return &FileLease{path: path, now: time.Now}
}

// withLocked runs fn with the lease file exclusively flocked, writing
// the state back when fn reports a mutation.
func (l *FileLease) withLocked(fn func(st *fileLeaseState) (write bool)) error {
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("ha: lease file: %w", err)
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("ha: lease flock: %w", err)
	}
	defer syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	var st fileLeaseState
	raw, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("ha: lease read: %w", err)
	}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &st); err != nil {
			return fmt.Errorf("ha: lease file corrupt: %w", err)
		}
	}
	if !fn(&st) {
		return nil
	}
	out, err := json.Marshal(&st)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("ha: lease write: %w", err)
	}
	if _, err := f.WriteAt(out, 0); err != nil {
		return fmt.Errorf("ha: lease write: %w", err)
	}
	return f.Sync()
}

// Acquire takes the lease if it is free or expired, minting the next
// term.
func (l *FileLease) Acquire(id string, ttl float64) (uint64, bool, error) {
	var term uint64
	var ok bool
	err := l.withLocked(func(st *fileLeaseState) bool {
		now := l.now()
		if st.Holder != "" && st.Holder != id && now.UnixNano() < st.Expiry {
			return false
		}
		st.Term++
		st.Holder = id
		st.Expiry = now.Add(time.Duration(ttl * float64(time.Second))).UnixNano()
		term, ok = st.Term, true
		return true
	})
	return term, ok, err
}

// Renew extends the grant while id still holds the lease at term.
func (l *FileLease) Renew(id string, term uint64, ttl float64) (bool, error) {
	var ok bool
	err := l.withLocked(func(st *fileLeaseState) bool {
		if st.Holder != id || st.Term != term {
			return false
		}
		st.Expiry = l.now().Add(time.Duration(ttl * float64(time.Second))).UnixNano()
		ok = true
		return true
	})
	return ok, err
}

// Observe reports the current holder, term, and expiry.
func (l *FileLease) Observe() (LeaseState, error) {
	var out LeaseState
	err := l.withLocked(func(st *fileLeaseState) bool {
		out = LeaseState{
			Holder:  st.Holder,
			Term:    st.Term,
			Expired: st.Holder == "" || l.now().UnixNano() >= st.Expiry,
		}
		return false
	})
	return out, err
}

// Release gives the lease up immediately if id holds it at term.
func (l *FileLease) Release(id string, term uint64) error {
	return l.withLocked(func(st *fileLeaseState) bool {
		if st.Holder != id || st.Term != term {
			return false
		}
		st.Holder = ""
		return true
	})
}

var errStopped = errors.New("ha: node stopped")
