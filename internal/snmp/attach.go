package snmp

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/netsim"
)

// DefaultCommunity is the community string the simulated testbed uses.
const DefaultCommunity = "public"

// AttachedAgents is the set of agents instrumenting a simulated network:
// one per node (routers expose the interfaces table; hosts additionally
// expose a CPU load gauge). Addresses are "snmp://<node-id>".
type AttachedAgents struct {
	Registry *InProcRegistry
	Agents   map[graph.NodeID]*Agent
}

// Addr returns the registry address of a node's agent.
func Addr(id graph.NodeID) string { return "snmp://" + string(id) }

// Attach instruments every node of the simulated network with an SNMP
// agent. Interface indices are 1-based in the order of graph.LinksAt
// (link-ID order), matching how real agents number ifTable rows.
//
// Counter semantics: a router interface's ifInOctets counts octets
// arriving from the attached neighbor (neighbor->node channel);
// ifOutOctets counts octets departing toward it. Counters wrap at 2^32
// octets like real Counter32s — the collector must handle wraparound.
func Attach(n *netsim.Network, community string) *AttachedAgents {
	g := n.Graph()
	out := &AttachedAgents{
		Registry: NewInProcRegistry(),
		Agents:   make(map[graph.NodeID]*Agent),
	}
	for _, id := range g.Nodes() {
		node := g.Node(id)
		a := NewAgent(string(id), community)
		mib := a.MIB
		mib.Set(OIDSysName, OctetString(string(id)))
		mib.Set(OIDSysDescr, OctetString(fmt.Sprintf("remos-sim %s node", node.Kind)))
		clk := n.Clock()
		mib.SetFunc(OIDSysUpTime, func() Value {
			return TimeTicks(uint64(float64(clk.Now()) * 100))
		})
		kind := int64(0)
		if node.Kind == graph.Network {
			kind = 1
		}
		mib.Set(OIDRemosNodeKind, Integer(kind))
		mib.Set(OIDRemosInternalBW, Gauge32(uint64(node.InternalBW)))

		links := g.LinksAt(id)
		mib.Set(OIDIfNumber, Integer(int64(len(links))))
		for i, l := range links {
			idx := uint32(i + 1)
			neighbor, _ := l.Other(id)
			inCh := graph.Channel{Link: l.ID, Dir: l.DirFrom(neighbor)} // toward this node
			outCh := graph.Channel{Link: l.ID, Dir: l.DirFrom(id)}      // away from this node
			mib.Set(OIDIfIndex.Append(idx), Integer(int64(idx)))
			mib.Set(OIDIfDescr.Append(idx), OctetString(fmt.Sprintf("eth%d to %s", idx, neighbor)))
			// Dynamic: the simulator can degrade links at runtime.
			link := l
			mib.SetFunc(OIDIfSpeed.Append(idx), func() Value {
				return Gauge32(uint64(link.Capacity))
			})
			mib.SetFunc(OIDIfInOctets.Append(idx), func() Value {
				n.Sync()
				return Counter32(uint64(n.ChannelBits(inCh) / 8))
			})
			mib.SetFunc(OIDIfOutOctets.Append(idx), func() Value {
				n.Sync()
				return Counter32(uint64(n.ChannelBits(outCh) / 8))
			})
			mib.Set(OIDRemosNeighbor.Append(idx), OctetString(string(neighbor)))
			mib.Set(OIDRemosLinkID.Append(idx), Integer(int64(l.ID)))
		}
		if node.Kind == graph.Compute {
			hid := id
			mib.SetFunc(OIDHrProcessorLoad, func() Value {
				return Integer(int64(n.HostLoad(hid) * 100))
			})
			if node.MemoryBytes > 0 {
				mib.Set(OIDHrMemorySize, Integer(int64(node.MemoryBytes/1024)))
			}
		}
		out.Agents[id] = a
		out.Registry.Register(Addr(id), a)
	}
	return out
}
