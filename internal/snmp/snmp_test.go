package snmp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseOID(t *testing.T) {
	oid, err := ParseOID("1.3.6.1.2.1.2.2.1.10.3")
	if err != nil {
		t.Fatal(err)
	}
	if oid.String() != "1.3.6.1.2.1.2.2.1.10.3" {
		t.Fatalf("roundtrip = %q", oid.String())
	}
	if _, err := ParseOID(""); err == nil {
		t.Fatal("empty OID accepted")
	}
	if _, err := ParseOID("1.x.3"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseOID(".1.3"); err != nil {
		t.Fatal("leading dot rejected")
	}
}

func TestOIDCmpPrefix(t *testing.T) {
	a := MustOID("1.3.6")
	b := MustOID("1.3.6.1")
	c := MustOID("1.3.7")
	if a.Cmp(b) >= 0 || b.Cmp(a) <= 0 {
		t.Fatal("prefix ordering wrong")
	}
	if b.Cmp(c) >= 0 {
		t.Fatal("sibling ordering wrong")
	}
	if a.Cmp(a.Clone()) != 0 {
		t.Fatal("equal ordering wrong")
	}
	if !b.HasPrefix(a) || a.HasPrefix(b) {
		t.Fatal("HasPrefix wrong")
	}
	d := a.Append(9, 9)
	if d.String() != "1.3.6.9.9" {
		t.Fatalf("Append = %v", d)
	}
	if len(a) != 3 {
		t.Fatal("Append mutated receiver")
	}
}

func TestValueConstructors(t *testing.T) {
	if Counter32(1<<32+5).Uint != 5 {
		t.Fatal("Counter32 does not wrap")
	}
	if Gauge32(1<<33).Uint != 0xFFFFFFFF {
		t.Fatal("Gauge32 does not saturate")
	}
	if Integer(-7).String() != "-7" {
		t.Fatal("Integer string")
	}
	if OctetString("hi").String() != "hi" {
		t.Fatal("OctetString string")
	}
	if !Null().Equal(Null()) || Null().Equal(Integer(0)) {
		t.Fatal("Equal wrong")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := &Message{
		Community: "public",
		Type:      PDUGet,
		RequestID: 12345,
		VarBinds: []VarBind{
			{OID: MustOID("1.3.6.1.2.1.1.5.0"), Value: OctetString("aspen")},
			{OID: MustOID("1.3.6.1.2.1.2.2.1.10.3"), Value: Counter32(4000000000)},
			{OID: MustOID("1.3"), Value: Integer(-99)},
			{OID: MustOID("1.4"), Value: Gauge32(100000000)},
			{OID: MustOID("1.5"), Value: TimeTicks(4242)},
			{OID: MustOID("1.6"), Value: Null()},
		},
	}
	raw, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Community != m.Community || got.Type != m.Type || got.RequestID != m.RequestID {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.VarBinds) != len(m.VarBinds) {
		t.Fatalf("varbinds = %d", len(got.VarBinds))
	}
	for i := range m.VarBinds {
		if got.VarBinds[i].OID.Cmp(m.VarBinds[i].OID) != 0 {
			t.Fatalf("OID %d mismatch", i)
		}
		if !got.VarBinds[i].Value.Equal(m.VarBinds[i].Value) {
			t.Fatalf("value %d mismatch: %v vs %v", i, got.VarBinds[i].Value, m.VarBinds[i].Value)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		{0xFF, 0xFF, 1, 0},        // bad magic
		{0x52, 0x4D, 9, 0},        // bad version
		{0x52, 0x4D, 1, 200, 'a'}, // community length beyond buffer
		append([]byte{0x52, 0x4D, 1, 0}, make([]byte, 3)...), // truncated header
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
	// Trailing bytes rejected.
	m := &Message{Community: "c", Type: PDUGet, RequestID: 1}
	raw, _ := Encode(m)
	if _, err := Decode(append(raw, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// Property: random valid messages survive a round trip.
func TestQuickCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		rng.Seed(seed)
		m := &Message{
			Community: string(rune('a' + rng.Intn(26))),
			Type:      PDUType(rng.Intn(3)),
			RequestID: rng.Uint32(),
			Error:     ErrorStatus(rng.Intn(4)),
		}
		for i := 0; i < rng.Intn(6); i++ {
			oid := OID{}
			for j := 0; j < 1+rng.Intn(10); j++ {
				oid = append(oid, rng.Uint32()%1000)
			}
			var v Value
			switch rng.Intn(5) {
			case 0:
				v = Integer(rng.Int63() - 1<<62)
			case 1:
				v = Counter32(uint64(rng.Uint32()))
			case 2:
				v = Gauge32(uint64(rng.Uint32()))
			case 3:
				v = OctetString(string(rune('A' + rng.Intn(26))))
			case 4:
				v = Null()
			}
			m.VarBinds = append(m.VarBinds, VarBind{OID: oid, Value: v})
		}
		raw, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		if got.Community != m.Community || got.RequestID != m.RequestID || len(got.VarBinds) != len(m.VarBinds) {
			return false
		}
		for i := range m.VarBinds {
			if got.VarBinds[i].OID.Cmp(m.VarBinds[i].OID) != 0 || !got.VarBinds[i].Value.Equal(m.VarBinds[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on random bytes.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMIBGetNext(t *testing.T) {
	m := NewMIB()
	m.Set(MustOID("1.2.3"), Integer(1))
	m.Set(MustOID("1.2.4"), Integer(2))
	m.Set(MustOID("1.2.3.1"), Integer(3))
	oid, v, ok := m.Next(MustOID("1.2.3"))
	if !ok || oid.String() != "1.2.3.1" || v.Int != 3 {
		t.Fatalf("Next = %v %v %v", oid, v, ok)
	}
	oid, _, ok = m.Next(MustOID("1.2.3.1"))
	if !ok || oid.String() != "1.2.4" {
		t.Fatalf("Next = %v", oid)
	}
	if _, _, ok := m.Next(MustOID("1.2.4")); ok {
		t.Fatal("Next past end succeeded")
	}
	// Next from before everything returns the first entry.
	oid, _, ok = m.Next(MustOID("1"))
	if !ok || oid.String() != "1.2.3" {
		t.Fatalf("Next from root = %v", oid)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMIBDynamicValue(t *testing.T) {
	m := NewMIB()
	n := 0
	m.SetFunc(MustOID("1.1"), func() Value { n++; return Integer(int64(n)) })
	v, _ := m.Get(MustOID("1.1"))
	v2, _ := m.Get(MustOID("1.1"))
	if v.Int != 1 || v2.Int != 2 {
		t.Fatalf("dynamic values = %v, %v", v, v2)
	}
	// Overwriting keeps a single sorted entry.
	m.Set(MustOID("1.1"), Integer(9))
	if m.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", m.Len())
	}
}

func newTestAgent() *Agent {
	a := NewAgent("aspen", "public")
	a.MIB.Set(OIDSysName, OctetString("aspen"))
	a.MIB.Set(OIDIfNumber, Integer(2))
	a.MIB.Set(OIDIfInOctets.Append(1), Counter32(100))
	a.MIB.Set(OIDIfInOctets.Append(2), Counter32(200))
	return a
}

func TestAgentGet(t *testing.T) {
	a := newTestAgent()
	resp := a.Handle(&Message{Community: "public", Type: PDUGet, RequestID: 7,
		VarBinds: []VarBind{{OID: OIDSysName}}})
	if resp.Error != NoError || resp.RequestID != 7 {
		t.Fatalf("resp = %+v", resp)
	}
	if string(resp.VarBinds[0].Value.Bytes) != "aspen" {
		t.Fatalf("value = %v", resp.VarBinds[0].Value)
	}
	// Missing OID.
	resp = a.Handle(&Message{Community: "public", Type: PDUGet,
		VarBinds: []VarBind{{OID: MustOID("9.9.9")}}})
	if resp.Error != NoSuchName || resp.ErrorIndex != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	// Wrong community.
	resp = a.Handle(&Message{Community: "private", Type: PDUGet})
	if resp.Error != BadCommunity {
		t.Fatalf("resp = %+v", resp)
	}
	if a.Requests() != 3 {
		t.Fatalf("requests = %d", a.Requests())
	}
}

func TestAgentHandleBytesDropsGarbage(t *testing.T) {
	a := newTestAgent()
	if a.HandleBytes([]byte{1, 2, 3}) != nil {
		t.Fatal("garbage answered")
	}
}

func TestClientInProc(t *testing.T) {
	a := newTestAgent()
	reg := NewInProcRegistry()
	reg.Register("snmp://aspen", a)
	c := NewClient(reg, "public")
	vbs, err := c.Get("snmp://aspen", OIDSysName, OIDIfNumber)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 2 || vbs[1].Value.Int != 2 {
		t.Fatalf("vbs = %v", vbs)
	}
	if _, err := c.Get("snmp://missing", OIDSysName); err == nil {
		t.Fatal("missing agent succeeded")
	}
	if _, err := c.Get("snmp://aspen", MustOID("9.9")); err == nil {
		t.Fatal("missing OID succeeded")
	}
}

func TestClientWalk(t *testing.T) {
	a := newTestAgent()
	reg := NewInProcRegistry()
	reg.Register("a", a)
	c := NewClient(reg, "public")
	vbs, err := c.Walk("a", OIDIfInOctets)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 2 {
		t.Fatalf("walk = %v", vbs)
	}
	if vbs[0].Value.Uint != 100 || vbs[1].Value.Uint != 200 {
		t.Fatalf("walk values = %v", vbs)
	}
	// Walk of absent subtree is empty, not an error.
	vbs, err = c.Walk("a", MustOID("5.5"))
	if err != nil || len(vbs) != 0 {
		t.Fatalf("walk absent = %v, %v", vbs, err)
	}
}

func TestClientWrongCommunity(t *testing.T) {
	a := newTestAgent()
	reg := NewInProcRegistry()
	reg.Register("a", a)
	c := NewClient(reg, "wrong")
	if _, err := c.Get("a", OIDSysName); err == nil {
		t.Fatal("wrong community succeeded")
	}
	if _, err := c.GetNext("a", OIDSysName); err == nil || errors.Is(err, ErrNoSuchName) {
		t.Fatal("wrong community GetNext mis-handled")
	}
}

func TestUDPTransport(t *testing.T) {
	a := newTestAgent()
	srv, err := ServeUDP(a, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(NewUDPTransport(), "public")
	vbs, err := c.Get(srv.Addr(), OIDSysName)
	if err != nil {
		t.Fatal(err)
	}
	if string(vbs[0].Value.Bytes) != "aspen" {
		t.Fatalf("value = %v", vbs[0].Value)
	}
	// Walk over UDP too.
	walked, err := c.Walk(srv.Addr(), OIDIfInOctets)
	if err != nil || len(walked) != 2 {
		t.Fatalf("walk = %v, %v", walked, err)
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	m := &Message{
		Community: "public", Type: PDUGet, RequestID: 1,
		VarBinds: []VarBind{
			{OID: OIDIfInOctets.Append(1), Value: Counter32(12345678)},
			{OID: OIDIfOutOctets.Append(1), Value: Counter32(87654321)},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
