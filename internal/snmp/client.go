package snmp

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport moves one request to one agent and returns its response.
// Implementations: InProc (virtual-time experiments) and UDP (daemon
// mode, integration tests).
type Transport interface {
	// RoundTrip sends an encoded request to the named agent address and
	// returns the encoded response.
	RoundTrip(addr string, req []byte) ([]byte, error)
}

// InProcRegistry is an in-process transport: agents register under
// string addresses; RoundTrip runs the full encode/decode path without a
// socket, so collector polls stay inside virtual time.
type InProcRegistry struct {
	mu     sync.RWMutex
	agents map[string]*Agent
}

// NewInProcRegistry returns an empty registry.
func NewInProcRegistry() *InProcRegistry {
	return &InProcRegistry{agents: make(map[string]*Agent)}
}

// Register binds an agent to an address.
func (r *InProcRegistry) Register(addr string, a *Agent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.agents[addr] = a
}

// RoundTrip implements Transport.
func (r *InProcRegistry) RoundTrip(addr string, req []byte) ([]byte, error) {
	r.mu.RLock()
	a := r.agents[addr]
	r.mu.RUnlock()
	if a == nil {
		return nil, fmt.Errorf("snmp: no agent at %q", addr)
	}
	resp := a.HandleBytes(req)
	if resp == nil {
		return nil, fmt.Errorf("snmp: agent %q dropped request", addr)
	}
	return resp, nil
}

// UDPTransport sends requests over UDP with timeout and retry. The zero
// value is literal: Timeout 0 means no I/O deadline and Retries 0 means
// a single attempt. Use NewUDPTransport for sensible defaults.
type UDPTransport struct {
	Timeout time.Duration // per attempt; 0 = no deadline
	Retries int           // attempts beyond the first; 0 = one attempt
	Backoff time.Duration // pause between attempts; 0 = none
}

// DefaultUDPTimeout, DefaultUDPRetries, and DefaultUDPBackoff are the
// NewUDPTransport defaults.
const (
	DefaultUDPTimeout = 500 * time.Millisecond
	DefaultUDPRetries = 2
	DefaultUDPBackoff = 100 * time.Millisecond
)

// NewUDPTransport returns a transport with the default timeout, retry
// count, and inter-attempt backoff.
func NewUDPTransport() *UDPTransport {
	return &UDPTransport{
		Timeout: DefaultUDPTimeout,
		Retries: DefaultUDPRetries,
		Backoff: DefaultUDPBackoff,
	}
}

// RoundTrip implements Transport. One socket is dialed per call and
// reused across retry attempts; dial errors count as failed attempts
// (they can be as transient as packet loss), so they retry too.
func (t *UDPTransport) RoundTrip(addr string, req []byte) ([]byte, error) {
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	attempt := func() ([]byte, error) {
		if conn == nil {
			c, err := net.Dial("udp", addr)
			if err != nil {
				return nil, err
			}
			conn = c
		}
		if t.Timeout > 0 {
			if err := conn.SetDeadline(time.Now().Add(t.Timeout)); err != nil {
				return nil, err
			}
		}
		if _, err := conn.Write(req); err != nil {
			return nil, err
		}
		buf := make([]byte, 65536)
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		return buf[:n], nil
	}
	var lastErr error
	for i := 0; i <= t.Retries; i++ {
		if i > 0 && t.Backoff > 0 {
			time.Sleep(t.Backoff)
		}
		resp, err := attempt()
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("snmp: %d attempts failed: %w", t.Retries+1, lastErr)
}

// Client issues Get/GetNext/Walk requests through a Transport.
type Client struct {
	Transport Transport
	Community string

	mu     sync.Mutex
	nextID uint32
}

// NewClient creates a client.
func NewClient(tr Transport, community string) *Client {
	return &Client{Transport: tr, Community: community}
}

func (c *Client) id() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

func (c *Client) roundTrip(addr string, req *Message) (*Message, error) {
	raw, err := Encode(req)
	if err != nil {
		return nil, err
	}
	rawResp, err := c.Transport.RoundTrip(addr, raw)
	if err != nil {
		return nil, err
	}
	resp, err := Decode(rawResp)
	if err != nil {
		return nil, err
	}
	if resp.RequestID != req.RequestID {
		return nil, fmt.Errorf("snmp: response ID %d != request ID %d", resp.RequestID, req.RequestID)
	}
	if resp.Type != PDUResponse {
		return nil, fmt.Errorf("snmp: unexpected PDU type %v", resp.Type)
	}
	return resp, nil
}

// Get fetches exact OIDs. A NoSuchName error from the agent is returned
// as an error carrying the failing index.
func (c *Client) Get(addr string, oids ...OID) ([]VarBind, error) {
	req := &Message{Community: c.Community, Type: PDUGet, RequestID: c.id()}
	for _, o := range oids {
		req.VarBinds = append(req.VarBinds, VarBind{OID: o, Value: Null()})
	}
	resp, err := c.roundTrip(addr, req)
	if err != nil {
		return nil, err
	}
	if resp.Error != NoError {
		return resp.VarBinds, fmt.Errorf("snmp: %v at index %d", resp.Error, resp.ErrorIndex)
	}
	return resp.VarBinds, nil
}

// ErrNoSuchName reports that an OID has no successor (end of MIB) or
// does not exist.
var ErrNoSuchName = errors.New("snmp: noSuchName")

// GetNext fetches the lexicographic successor of one OID.
func (c *Client) GetNext(addr string, oid OID) (VarBind, error) {
	req := &Message{
		Community: c.Community, Type: PDUGetNext, RequestID: c.id(),
		VarBinds: []VarBind{{OID: oid, Value: Null()}},
	}
	resp, err := c.roundTrip(addr, req)
	if err != nil {
		return VarBind{}, err
	}
	if resp.Error == NoSuchName {
		return VarBind{}, ErrNoSuchName
	}
	if resp.Error != NoError {
		return VarBind{}, fmt.Errorf("snmp: %v", resp.Error)
	}
	if len(resp.VarBinds) != 1 {
		return VarBind{}, fmt.Errorf("snmp: %d varbinds in GetNext response", len(resp.VarBinds))
	}
	return resp.VarBinds[0], nil
}

// GetBulk fetches up to maxRepetitions successors of oid in one round
// trip. A zero maxRepetitions uses the agent's default (10).
func (c *Client) GetBulk(addr string, oid OID, maxRepetitions int) ([]VarBind, error) {
	req := &Message{
		Community: c.Community, Type: PDUGetBulk, RequestID: c.id(),
		ErrorIndex: uint32(maxRepetitions),
		VarBinds:   []VarBind{{OID: oid, Value: Null()}},
	}
	resp, err := c.roundTrip(addr, req)
	if err != nil {
		return nil, err
	}
	if resp.Error != NoError {
		return nil, fmt.Errorf("snmp: %v", resp.Error)
	}
	return resp.VarBinds, nil
}

// BulkWalk retrieves every entry under prefix using GetBulk batches —
// the same result as Walk with ~maxRepetitions× fewer round trips.
func (c *Client) BulkWalk(addr string, prefix OID, maxRepetitions int) ([]VarBind, error) {
	if maxRepetitions <= 0 {
		maxRepetitions = 10
	}
	var out []VarBind
	cur := prefix.Clone()
	for {
		vbs, err := c.GetBulk(addr, cur, maxRepetitions)
		if err != nil {
			return out, err
		}
		if len(vbs) == 0 {
			return out, nil // end of MIB
		}
		for _, vb := range vbs {
			if !vb.OID.HasPrefix(prefix) {
				return out, nil
			}
			out = append(out, vb)
			if len(out) > maxVarBinds {
				return out, fmt.Errorf("snmp: bulk walk under %v exceeded %d entries", prefix, maxVarBinds)
			}
		}
		cur = vbs[len(vbs)-1].OID
	}
}

// Walk retrieves every entry under prefix via repeated GetNext — how the
// collector discovers interface tables.
func (c *Client) Walk(addr string, prefix OID) ([]VarBind, error) {
	var out []VarBind
	cur := prefix.Clone()
	for {
		vb, err := c.GetNext(addr, cur)
		if err != nil {
			if errors.Is(err, ErrNoSuchName) {
				// End of MIB.
				return out, nil
			}
			return out, err
		}
		if !vb.OID.HasPrefix(prefix) {
			return out, nil
		}
		out = append(out, vb)
		cur = vb.OID
		if len(out) > maxVarBinds {
			return out, fmt.Errorf("snmp: walk under %v exceeded %d entries", prefix, maxVarBinds)
		}
	}
}
