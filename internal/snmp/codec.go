package snmp

import (
	"encoding/binary"
	"fmt"
)

// Wire format (all multi-byte integers big-endian):
//
//	magic   uint16  0x524D ("RM")
//	version uint8   1
//	community: len uint8, bytes
//	type    uint8
//	reqid   uint32
//	error   uint8
//	erridx  uint32
//	nbinds  uint16
//	per varbind:
//	  oidlen uint8, oid components uint32 each
//	  kind   uint8
//	  payload:
//	    Integer:      int64 (two's complement, 8 bytes)
//	    Counter32/Gauge32/TimeTicks: uint32
//	    OctetString:  len uint16, bytes
//	    Null:         nothing
//
// Limits below bound decoding work on hostile input.
const (
	wireMagic   = 0x524D
	wireVersion = 1

	maxCommunity = 255
	maxVarBinds  = 1024
	maxOIDLen    = 128
	maxOctets    = 4096
)

// Encode serializes a message.
func Encode(m *Message) ([]byte, error) {
	if len(m.Community) > maxCommunity {
		return nil, fmt.Errorf("snmp: community too long (%d)", len(m.Community))
	}
	if len(m.VarBinds) > maxVarBinds {
		return nil, fmt.Errorf("snmp: too many varbinds (%d)", len(m.VarBinds))
	}
	buf := make([]byte, 0, 64+32*len(m.VarBinds))
	buf = binary.BigEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, wireVersion)
	buf = append(buf, byte(len(m.Community)))
	buf = append(buf, m.Community...)
	buf = append(buf, byte(m.Type))
	buf = binary.BigEndian.AppendUint32(buf, m.RequestID)
	buf = append(buf, byte(m.Error))
	buf = binary.BigEndian.AppendUint32(buf, m.ErrorIndex)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.VarBinds)))
	for _, vb := range m.VarBinds {
		if len(vb.OID) > maxOIDLen {
			return nil, fmt.Errorf("snmp: OID too long (%d)", len(vb.OID))
		}
		buf = append(buf, byte(len(vb.OID)))
		for _, c := range vb.OID {
			buf = binary.BigEndian.AppendUint32(buf, c)
		}
		buf = append(buf, byte(vb.Value.Kind))
		switch vb.Value.Kind {
		case KindNull:
		case KindInteger:
			buf = binary.BigEndian.AppendUint64(buf, uint64(vb.Value.Int))
		case KindCounter32, KindGauge32, KindTimeTicks:
			buf = binary.BigEndian.AppendUint32(buf, vb.Value.Uint)
		case KindOctetString:
			if len(vb.Value.Bytes) > maxOctets {
				return nil, fmt.Errorf("snmp: octet string too long (%d)", len(vb.Value.Bytes))
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(vb.Value.Bytes)))
			buf = append(buf, vb.Value.Bytes...)
		default:
			return nil, fmt.Errorf("snmp: cannot encode value kind %v", vb.Value.Kind)
		}
	}
	return buf, nil
}

// decoder is a bounds-checked cursor.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("snmp: truncated message (need %d at %d of %d)", n, d.off, len(d.buf))
	}
	return nil
}

func (d *decoder) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if err := d.need(n); err != nil {
		return nil, err
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v, nil
}

// Decode parses a message, rejecting malformed or oversized input.
func Decode(buf []byte) (*Message, error) {
	d := &decoder{buf: buf}
	magic, err := d.u16()
	if err != nil {
		return nil, err
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("snmp: bad magic %#x", magic)
	}
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("snmp: unsupported version %d", ver)
	}
	clen, err := d.u8()
	if err != nil {
		return nil, err
	}
	comm, err := d.bytes(int(clen))
	if err != nil {
		return nil, err
	}
	m := &Message{Community: string(comm)}
	pt, err := d.u8()
	if err != nil {
		return nil, err
	}
	if pt > uint8(PDUGetBulk) {
		return nil, fmt.Errorf("snmp: bad PDU type %d", pt)
	}
	m.Type = PDUType(pt)
	if m.RequestID, err = d.u32(); err != nil {
		return nil, err
	}
	es, err := d.u8()
	if err != nil {
		return nil, err
	}
	if es > uint8(GenErr) {
		return nil, fmt.Errorf("snmp: bad error status %d", es)
	}
	m.Error = ErrorStatus(es)
	if m.ErrorIndex, err = d.u32(); err != nil {
		return nil, err
	}
	nb, err := d.u16()
	if err != nil {
		return nil, err
	}
	if int(nb) > maxVarBinds {
		return nil, fmt.Errorf("snmp: too many varbinds (%d)", nb)
	}
	for i := 0; i < int(nb); i++ {
		olen, err := d.u8()
		if err != nil {
			return nil, err
		}
		if int(olen) > maxOIDLen {
			return nil, fmt.Errorf("snmp: OID too long (%d)", olen)
		}
		oid := make(OID, olen)
		for j := range oid {
			if oid[j], err = d.u32(); err != nil {
				return nil, err
			}
		}
		kind, err := d.u8()
		if err != nil {
			return nil, err
		}
		var v Value
		switch ValueKind(kind) {
		case KindNull:
			v = Null()
		case KindInteger:
			u, err := d.u64()
			if err != nil {
				return nil, err
			}
			v = Integer(int64(u))
		case KindCounter32, KindGauge32, KindTimeTicks:
			u, err := d.u32()
			if err != nil {
				return nil, err
			}
			v = Value{Kind: ValueKind(kind), Uint: u}
		case KindOctetString:
			slen, err := d.u16()
			if err != nil {
				return nil, err
			}
			if int(slen) > maxOctets {
				return nil, fmt.Errorf("snmp: octet string too long (%d)", slen)
			}
			b, err := d.bytes(int(slen))
			if err != nil {
				return nil, err
			}
			v = Value{Kind: KindOctetString, Bytes: append([]byte(nil), b...)}
		default:
			return nil, fmt.Errorf("snmp: bad value kind %d", kind)
		}
		m.VarBinds = append(m.VarBinds, VarBind{OID: oid, Value: v})
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("snmp: %d trailing bytes", len(buf)-d.off)
	}
	return m, nil
}
