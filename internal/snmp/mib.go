package snmp

import (
	"sort"
	"sync"
)

// MIB is an OID-addressed store. Entries may be static values or dynamic
// getters evaluated at query time (counters read from the simulator).
// MIB is safe for concurrent use: the UDP transport serves from its own
// goroutine.
type MIB struct {
	mu      sync.RWMutex
	entries map[string]func() Value
	sorted  []OID // lexicographically sorted keys for GETNEXT
	dirty   bool
}

// NewMIB returns an empty MIB.
func NewMIB() *MIB {
	return &MIB{entries: make(map[string]func() Value)}
}

// Set installs a static value at an OID.
func (m *MIB) Set(oid OID, v Value) {
	m.SetFunc(oid, func() Value { return v })
}

// SetFunc installs a dynamic value. The getter runs on every query.
func (m *MIB) SetFunc(oid OID, get func() Value) {
	key := oid.String()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.entries[key]; !exists {
		m.sorted = append(m.sorted, oid.Clone())
		m.dirty = true
	}
	m.entries[key] = get
}

// Get returns the value at exactly oid.
func (m *MIB) Get(oid OID) (Value, bool) {
	m.mu.RLock()
	get, ok := m.entries[oid.String()]
	m.mu.RUnlock()
	if !ok {
		return Null(), false
	}
	return get(), true
}

// Next returns the first entry strictly after oid in lexicographic
// order — GETNEXT semantics, which Walk builds on.
func (m *MIB) Next(oid OID) (OID, Value, bool) {
	m.mu.Lock()
	if m.dirty {
		sort.Slice(m.sorted, func(i, j int) bool { return m.sorted[i].Cmp(m.sorted[j]) < 0 })
		m.dirty = false
	}
	// Binary search for the first key > oid.
	idx := sort.Search(len(m.sorted), func(i int) bool { return m.sorted[i].Cmp(oid) > 0 })
	if idx == len(m.sorted) {
		m.mu.Unlock()
		return nil, Null(), false
	}
	next := m.sorted[idx]
	get := m.entries[next.String()]
	m.mu.Unlock()
	return next.Clone(), get(), true
}

// Len returns the number of entries.
func (m *MIB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}
