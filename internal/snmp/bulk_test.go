package snmp

import (
	"testing"
)

func bulkAgent() (*Agent, *InProcRegistry, *Client) {
	a := NewAgent("bulk", "public")
	for i := uint32(1); i <= 25; i++ {
		a.MIB.Set(OIDIfInOctets.Append(i), Counter32(uint64(i*100)))
	}
	a.MIB.Set(OIDSysName, OctetString("bulk"))
	reg := NewInProcRegistry()
	reg.Register("a", a)
	return a, reg, NewClient(reg, "public")
}

func TestGetBulk(t *testing.T) {
	_, _, c := bulkAgent()
	vbs, err := c.GetBulk("a", OIDIfInOctets, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 5 {
		t.Fatalf("got %d varbinds", len(vbs))
	}
	for i, vb := range vbs {
		if vb.Value.Uint != uint32((i+1)*100) {
			t.Fatalf("vb[%d] = %v", i, vb.Value)
		}
	}
	// Default repetitions when 0.
	vbs, err = c.GetBulk("a", OIDIfInOctets, 0)
	if err != nil || len(vbs) != 10 {
		t.Fatalf("default reps: %d, %v", len(vbs), err)
	}
}

func TestGetBulkStopsAtEndOfMIB(t *testing.T) {
	_, _, c := bulkAgent()
	// sysName (1.3.6.1.2.1.1.5.0) sorts before the ifTable, so from the
	// 24th octet entry only the 25th remains.
	vbs, err := c.GetBulk("a", OIDIfInOctets.Append(24), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 1 {
		t.Fatalf("got %d varbinds at MIB tail", len(vbs))
	}
}

func TestBulkWalkMatchesWalk(t *testing.T) {
	a, _, c := bulkAgent()
	slow, err := c.Walk("a", OIDIfInOctets)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := c.BulkWalk("a", OIDIfInOctets, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) || len(fast) != 25 {
		t.Fatalf("bulk %d vs walk %d", len(fast), len(slow))
	}
	for i := range slow {
		if fast[i].OID.Cmp(slow[i].OID) != 0 || !fast[i].Value.Equal(slow[i].Value) {
			t.Fatalf("entry %d differs", i)
		}
	}
	// BulkWalk should need ~ceil(25/7)+1 = 5 requests vs 26+ for Walk.
	before := a.Requests()
	if _, err := c.BulkWalk("a", OIDIfInOctets, 7); err != nil {
		t.Fatal(err)
	}
	bulkReqs := a.Requests() - before
	before = a.Requests()
	if _, err := c.Walk("a", OIDIfInOctets); err != nil {
		t.Fatal(err)
	}
	walkReqs := a.Requests() - before
	if bulkReqs*3 > walkReqs {
		t.Fatalf("bulk used %d requests vs walk's %d — no savings", bulkReqs, walkReqs)
	}
}

func TestGetBulkOverUDP(t *testing.T) {
	a, _, _ := bulkAgent()
	srv, err := ServeUDP(a, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(NewUDPTransport(), "public")
	vbs, err := c.BulkWalk(srv.Addr(), OIDIfInOctets, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 25 {
		t.Fatalf("got %d entries over UDP", len(vbs))
	}
}

func TestGetBulkWrongCommunity(t *testing.T) {
	_, reg, _ := bulkAgent()
	c := NewClient(reg, "nope")
	if _, err := c.GetBulk("a", OIDIfInOctets, 5); err == nil {
		t.Fatal("wrong community accepted")
	}
}

func BenchmarkWalkVsBulkWalk(b *testing.B) {
	_, _, c := bulkAgent()
	b.Run("walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Walk("a", OIDIfInOctets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bulkwalk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.BulkWalk("a", OIDIfInOctets, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}
