package snmp

import (
	"fmt"
	"net"
	"sync"
)

// Agent serves a MIB under a community string. Handle implements the
// request/response logic; transports feed it bytes.
type Agent struct {
	Name      string // diagnostic: usually the sysName
	Community string
	MIB       *MIB

	// Serialize, when set, wraps each request's MIB access. Daemon mode
	// sets it to a shared lock so UDP handlers reading live simulator
	// counters don't race the clock-advancing goroutine; virtual-time
	// experiments leave it nil.
	Serialize func(fn func())

	mu       sync.Mutex
	requests uint64
}

// NewAgent creates an agent with an empty MIB.
func NewAgent(name, community string) *Agent {
	return &Agent{Name: name, Community: community, MIB: NewMIB()}
}

// Requests returns how many PDUs the agent has handled (diagnostic).
func (a *Agent) Requests() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.requests
}

// Handle processes one decoded request and returns the response message.
func (a *Agent) Handle(req *Message) *Message {
	if a.Serialize != nil {
		var resp *Message
		a.Serialize(func() { resp = a.handle(req) })
		return resp
	}
	return a.handle(req)
}

func (a *Agent) handle(req *Message) *Message {
	a.mu.Lock()
	a.requests++
	a.mu.Unlock()
	resp := &Message{
		Community: req.Community,
		Type:      PDUResponse,
		RequestID: req.RequestID,
	}
	if req.Community != a.Community {
		resp.Error = BadCommunity
		return resp
	}
	switch req.Type {
	case PDUGet:
		for i, vb := range req.VarBinds {
			v, ok := a.MIB.Get(vb.OID)
			if !ok {
				resp.Error = NoSuchName
				resp.ErrorIndex = uint32(i + 1)
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: Null()})
				continue
			}
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: v})
		}
	case PDUGetNext:
		for i, vb := range req.VarBinds {
			noid, v, ok := a.MIB.Next(vb.OID)
			if !ok {
				resp.Error = NoSuchName
				resp.ErrorIndex = uint32(i + 1)
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID, Value: Null()})
				continue
			}
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: noid, Value: v})
		}
	case PDUGetBulk:
		maxReps := int(req.ErrorIndex)
		if maxReps <= 0 {
			maxReps = 10
		}
		if maxReps > maxVarBinds {
			maxReps = maxVarBinds
		}
		for _, vb := range req.VarBinds {
			cur := vb.OID
			for r := 0; r < maxReps; r++ {
				noid, v, ok := a.MIB.Next(cur)
				if !ok {
					break // end of MIB: return fewer repetitions
				}
				resp.VarBinds = append(resp.VarBinds, VarBind{OID: noid, Value: v})
				cur = noid
				if len(resp.VarBinds) >= maxVarBinds {
					break
				}
			}
		}
	default:
		resp.Error = GenErr
	}
	return resp
}

// HandleBytes decodes, handles, and re-encodes — the full path a
// transport exercises. Malformed requests yield a nil response (agents
// drop garbage rather than answering it, like real SNMP daemons).
func (a *Agent) HandleBytes(req []byte) []byte {
	m, err := Decode(req)
	if err != nil {
		return nil
	}
	resp := a.Handle(m)
	out, err := Encode(resp)
	if err != nil {
		return nil
	}
	return out
}

// UDPServer runs an agent on a UDP socket until Close is called.
type UDPServer struct {
	agent *Agent
	conn  *net.UDPConn
	done  chan struct{}
}

// ServeUDP binds the agent to a localhost UDP port (pass "127.0.0.1:0"
// for an ephemeral port) and serves until Close.
func ServeUDP(a *Agent, addr string) (*UDPServer, error) {
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("snmp: %w", err)
	}
	s := &UDPServer{agent: a, conn: conn, done: make(chan struct{})}
	go s.loop()
	return s, nil
}

// Addr returns the bound address.
func (s *UDPServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the server.
func (s *UDPServer) Close() error {
	err := s.conn.Close()
	<-s.done
	return err
}

func (s *UDPServer) loop() {
	defer close(s.done)
	buf := make([]byte, 65536)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		resp := s.agent.HandleBytes(buf[:n])
		if resp != nil {
			// Best effort, like UDP itself.
			_, _ = s.conn.WriteToUDP(resp, raddr)
		}
	}
}
