package snmp

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the wire decoder. Malformed
// input must be rejected with an error — never a panic or an unbounded
// allocation — and anything that does decode must re-encode and decode
// again to a stable wire form.
func FuzzDecode(f *testing.F) {
	seeds := []*Message{
		{Community: "public", Type: PDUGet, RequestID: 1,
			VarBinds: []VarBind{{OID: OID{1, 3, 6, 1, 2, 1}, Value: Null()}}},
		{Community: "c", Type: PDUResponse, RequestID: 42, Error: NoSuchName, ErrorIndex: 1,
			VarBinds: []VarBind{
				{OID: OID{1, 2}, Value: Integer(-5)},
				{OID: OID{1, 3}, Value: Value{Kind: KindCounter32, Uint: 7}},
				{OID: OID{1, 4}, Value: Value{Kind: KindGauge32, Uint: 100e6}},
				{OID: OID{1, 5}, Value: Value{Kind: KindTimeTicks, Uint: 12345}},
				{OID: OID{1, 6}, Value: Value{Kind: KindOctetString, Bytes: []byte("eth0")}},
			}},
		{Community: "", Type: PDUGetBulk, RequestID: 0, ErrorIndex: 16},
	}
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x4D})       // magic only
	f.Add([]byte{0x52, 0x4D, 0x02}) // wrong version
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected: that is the contract for garbage
		}
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
		}
		m2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		b2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("wire form not stable:\n  %x\n  %x", b, b2)
		}
	})
}
