// Package snmp implements the management-protocol substrate the Remos
// Collector polls: a compact SNMP-v2c-like protocol with OID-addressed
// values, GET/GETNEXT/WALK semantics, agents attached to simulated
// routers and hosts, and two interchangeable transports (in-process for
// virtual-time experiments, UDP for daemon mode and integration tests).
//
// Substitution note (see DESIGN.md): the paper's collector speaks real
// SNMP (RFC 1905) to router firmware. Here the wire encoding is a
// simpler TLV format — BER adds parsing complexity without changing any
// measured behaviour — but the data model (MIB-II interfaces table with
// 32-bit wrapping octet counters, ifSpeed gauges, sysUpTime) and the poll
// semantics are faithful, so the Collector's logic is the same as against
// real agents.
package snmp

import (
	"fmt"
	"strconv"
	"strings"
)

// OID is an object identifier: a dotted sequence of nonnegative integers.
type OID []uint32

// ParseOID parses "1.3.6.1.2.1.2.2.1.10.3" into an OID.
func ParseOID(s string) (OID, error) {
	s = strings.TrimPrefix(s, ".")
	if s == "" {
		return nil, fmt.Errorf("snmp: empty OID")
	}
	parts := strings.Split(s, ".")
	oid := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID component %q: %v", p, err)
		}
		oid[i] = uint32(v)
	}
	return oid, nil
}

// MustOID is ParseOID for static tables; panics on error.
func MustOID(s string) OID {
	oid, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return oid
}

func (o OID) String() string {
	var b strings.Builder
	for i, v := range o {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(v), 10))
	}
	return b.String()
}

// Cmp compares OIDs in lexicographic order, the ordering GETNEXT walks.
func (o OID) Cmp(other OID) int {
	n := len(o)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// HasPrefix reports whether o lies under the given prefix.
func (o OID) HasPrefix(prefix OID) bool {
	if len(o) < len(prefix) {
		return false
	}
	for i, v := range prefix {
		if o[i] != v {
			return false
		}
	}
	return true
}

// Append returns a new OID with extra components appended.
func (o OID) Append(parts ...uint32) OID {
	out := make(OID, 0, len(o)+len(parts))
	out = append(out, o...)
	out = append(out, parts...)
	return out
}

// Clone returns a copy.
func (o OID) Clone() OID { return append(OID(nil), o...) }

// Well-known OIDs (MIB-II and the private Remos enterprise subtree).
var (
	// System group.
	OIDSysDescr  = MustOID("1.3.6.1.2.1.1.1.0")
	OIDSysUpTime = MustOID("1.3.6.1.2.1.1.3.0")
	OIDSysName   = MustOID("1.3.6.1.2.1.1.5.0")

	// Interfaces group.
	OIDIfNumber    = MustOID("1.3.6.1.2.1.2.1.0")
	OIDIfTable     = MustOID("1.3.6.1.2.1.2.2.1")
	OIDIfIndex     = MustOID("1.3.6.1.2.1.2.2.1.1")
	OIDIfDescr     = MustOID("1.3.6.1.2.1.2.2.1.2")
	OIDIfSpeed     = MustOID("1.3.6.1.2.1.2.2.1.5")
	OIDIfInOctets  = MustOID("1.3.6.1.2.1.2.2.1.10")
	OIDIfOutOctets = MustOID("1.3.6.1.2.1.2.2.1.16")

	// Host resources: 1-minute CPU load percentage and physical memory
	// size (KBytes, as in HOST-RESOURCES-MIB).
	OIDHrProcessorLoad = MustOID("1.3.6.1.2.1.25.3.3.1.2.1")
	OIDHrMemorySize    = MustOID("1.3.6.1.2.1.25.2.2.0")

	// Private enterprise subtree standing in for topology discovery
	// (real deployments would use ipRouteTable or CDP; the collector
	// only needs "which node is on the other end of interface i").
	OIDRemosEnterprise = MustOID("1.3.6.1.4.1.53270")
	OIDRemosNeighbor   = MustOID("1.3.6.1.4.1.53270.1.1") // .i = neighbor sysName
	OIDRemosLinkID     = MustOID("1.3.6.1.4.1.53270.1.2") // .i = graph link ID
	OIDRemosNodeKind   = MustOID("1.3.6.1.4.1.53270.1.3.0")
	OIDRemosInternalBW = MustOID("1.3.6.1.4.1.53270.1.4.0")
)
