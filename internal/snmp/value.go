package snmp

import "fmt"

// ValueKind tags the wire type of a value.
type ValueKind uint8

const (
	// KindNull marks an absent value (error varbinds).
	KindNull ValueKind = iota
	// KindInteger is a signed 64-bit integer.
	KindInteger
	// KindCounter32 is a monotonically increasing counter that wraps at
	// 2^32, exactly like SNMP's Counter32 — the collector must handle
	// wraparound when differencing octet counters.
	KindCounter32
	// KindGauge32 is a non-wrapping unsigned value (ifSpeed).
	KindGauge32
	// KindTimeTicks counts hundredths of a second (sysUpTime).
	KindTimeTicks
	// KindOctetString is a byte string (sysName, ifDescr).
	KindOctetString
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "Null"
	case KindInteger:
		return "Integer"
	case KindCounter32:
		return "Counter32"
	case KindGauge32:
		return "Gauge32"
	case KindTimeTicks:
		return "TimeTicks"
	case KindOctetString:
		return "OctetString"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a typed SNMP value.
type Value struct {
	Kind  ValueKind
	Int   int64  // Integer
	Uint  uint32 // Counter32, Gauge32, TimeTicks
	Bytes []byte // OctetString
}

// Null returns the null value.
func Null() Value { return Value{Kind: KindNull} }

// Integer wraps an int64.
func Integer(v int64) Value { return Value{Kind: KindInteger, Int: v} }

// Counter32 wraps a counter, truncating to 32 bits like a real agent.
func Counter32(v uint64) Value { return Value{Kind: KindCounter32, Uint: uint32(v)} }

// Gauge32 wraps a gauge, saturating at 2^32-1 like SNMP's Gauge32.
func Gauge32(v uint64) Value {
	if v > 0xFFFFFFFF {
		v = 0xFFFFFFFF
	}
	return Value{Kind: KindGauge32, Uint: uint32(v)}
}

// TimeTicks wraps hundredths of seconds.
func TimeTicks(hundredths uint64) Value { return Value{Kind: KindTimeTicks, Uint: uint32(hundredths)} }

// OctetString wraps a string.
func OctetString(s string) Value { return Value{Kind: KindOctetString, Bytes: []byte(s)} }

func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInteger:
		return fmt.Sprintf("%d", v.Int)
	case KindCounter32, KindGauge32, KindTimeTicks:
		return fmt.Sprintf("%d", v.Uint)
	case KindOctetString:
		return string(v.Bytes)
	default:
		return "?"
	}
}

// Equal compares two values structurally.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Int != o.Int || v.Uint != o.Uint {
		return false
	}
	return string(v.Bytes) == string(o.Bytes)
}

// VarBind pairs an OID with a value, as in a PDU.
type VarBind struct {
	OID   OID
	Value Value
}

// PDUType is the request/response discriminator.
type PDUType uint8

const (
	// PDUGet requests exact OIDs.
	PDUGet PDUType = iota
	// PDUGetNext requests the lexicographic successor of each OID.
	PDUGetNext
	// PDUResponse answers any request.
	PDUResponse
	// PDUGetBulk requests up to Message.ErrorIndex successors of each
	// OID in one round trip (as in SNMPv2, the request reuses the
	// error-index field for max-repetitions). Collectors use it to walk
	// interface tables with far fewer round trips.
	PDUGetBulk
)

// ErrorStatus mirrors SNMP's error-status field.
type ErrorStatus uint8

const (
	// NoError means success.
	NoError ErrorStatus = iota
	// NoSuchName means an OID does not exist (Get) or has no successor
	// (GetNext).
	NoSuchName
	// BadCommunity means authentication failed.
	BadCommunity
	// GenErr covers everything else.
	GenErr
)

func (e ErrorStatus) String() string {
	switch e {
	case NoError:
		return "noError"
	case NoSuchName:
		return "noSuchName"
	case BadCommunity:
		return "badCommunity"
	case GenErr:
		return "genErr"
	default:
		return fmt.Sprintf("ErrorStatus(%d)", uint8(e))
	}
}

// Message is one protocol message (request or response).
type Message struct {
	Community  string
	Type       PDUType
	RequestID  uint32
	Error      ErrorStatus
	ErrorIndex uint32 // 1-based index of the offending varbind
	VarBinds   []VarBind
}
