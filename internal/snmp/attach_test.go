package snmp

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/topology"
)

func TestAttachTestbed(t *testing.T) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := Attach(n, DefaultCommunity)
	if len(att.Agents) != 11 {
		t.Fatalf("agents = %d, want 11", len(att.Agents))
	}
	c := NewClient(att.Registry, DefaultCommunity)

	// Timberline has 5 interfaces: m-4, m-5, m-6, aspen, whiteface.
	vbs, err := c.Get(Addr("timberline"), OIDIfNumber, OIDSysName)
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Int != 5 {
		t.Fatalf("timberline ifNumber = %v", vbs[0].Value)
	}
	if string(vbs[1].Value.Bytes) != "timberline" {
		t.Fatalf("sysName = %v", vbs[1].Value)
	}

	// Neighbor discovery walk.
	nbrs, err := c.Walk(Addr("timberline"), OIDRemosNeighbor)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, vb := range nbrs {
		found[string(vb.Value.Bytes)] = true
	}
	for _, want := range []string{"m-4", "m-5", "m-6", "aspen", "whiteface"} {
		if !found[want] {
			t.Fatalf("neighbor %s missing from %v", want, found)
		}
	}
}

func TestAttachCountersTrackSimulator(t *testing.T) {
	clk := simclock.New()
	n, _ := netsim.New(clk, topology.Testbed())
	att := Attach(n, DefaultCommunity)
	c := NewClient(att.Registry, DefaultCommunity)

	// Start a 60 Mbps CBR m-6 -> m-8 and advance 10 seconds.
	n.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", RateCap: 60e6})
	clk.Advance(10)

	// Find timberline's interface toward whiteface.
	nbrs, _ := c.Walk(Addr("timberline"), OIDRemosNeighbor)
	var idx uint32
	for _, vb := range nbrs {
		if string(vb.Value.Bytes) == "whiteface" {
			idx = vb.OID[len(vb.OID)-1]
		}
	}
	if idx == 0 {
		t.Fatal("whiteface interface not found")
	}
	vbs, err := c.Get(Addr("timberline"), OIDIfOutOctets.Append(idx), OIDIfInOctets.Append(idx), OIDIfSpeed.Append(idx))
	if err != nil {
		t.Fatal(err)
	}
	wantOctets := 60e6 * 10 / 8
	if got := float64(vbs[0].Value.Uint); math.Abs(got-wantOctets) > 1 {
		t.Fatalf("ifOutOctets = %v, want %v", got, wantOctets)
	}
	if vbs[1].Value.Uint != 0 {
		t.Fatalf("ifInOctets = %v, want 0 (one-way flow)", vbs[1].Value.Uint)
	}
	if vbs[2].Value.Uint != 100e6 {
		t.Fatalf("ifSpeed = %v", vbs[2].Value.Uint)
	}
}

func TestAttachCounterWraps(t *testing.T) {
	// Counter32 wraps at 2^32 octets = ~4.3 GB. At 100 Mbps that is
	// ~344 s; run 400 s and verify wrap.
	clk := simclock.New()
	n, _ := netsim.New(clk, topology.Testbed())
	att := Attach(n, DefaultCommunity)
	c := NewClient(att.Registry, DefaultCommunity)
	n.StartFlow(netsim.FlowSpec{Src: "m-1", Dst: "m-2", RateCap: 100e6})
	clk.Advance(400)
	// m-1's agent interface 1 is its only link (to aspen).
	vbs, err := c.Get(Addr("m-1"), OIDIfOutOctets.Append(1))
	if err != nil {
		t.Fatal(err)
	}
	total := 100e6 * 400 / 8 // 5e9 octets
	want := uint32(uint64(total) % (1 << 32))
	if vbs[0].Value.Uint != want {
		t.Fatalf("wrapped counter = %v, want %v", vbs[0].Value.Uint, want)
	}
}

func TestAttachHostLoadGauge(t *testing.T) {
	clk := simclock.New()
	n, _ := netsim.New(clk, topology.Testbed())
	n.SetHostLoad("m-3", 0.4)
	att := Attach(n, DefaultCommunity)
	c := NewClient(att.Registry, DefaultCommunity)
	vbs, err := c.Get(Addr("m-3"), OIDHrProcessorLoad)
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Int != 40 {
		t.Fatalf("load = %v", vbs[0].Value)
	}
	// Routers have no processor-load OID.
	if _, err := c.Get(Addr("aspen"), OIDHrProcessorLoad); err == nil {
		t.Fatal("router answered hrProcessorLoad")
	}
	_ = clk
}

func TestAttachSysUpTime(t *testing.T) {
	clk := simclock.New()
	n, _ := netsim.New(clk, topology.Testbed())
	att := Attach(n, DefaultCommunity)
	c := NewClient(att.Registry, DefaultCommunity)
	clk.Advance(12.5)
	vbs, err := c.Get(Addr("aspen"), OIDSysUpTime)
	if err != nil {
		t.Fatal(err)
	}
	if vbs[0].Value.Uint != 1250 {
		t.Fatalf("sysUpTime = %v, want 1250 ticks", vbs[0].Value.Uint)
	}
}
