package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	fired := false
	c.After(1.5, "x", func(now Time) { fired = true })
	c.Run(0)
	if !fired {
		t.Fatal("event did not fire")
	}
	if c.Now() != 1.5 {
		t.Fatalf("Now = %v, want 1.5", c.Now())
	}
}

func TestOrdering(t *testing.T) {
	c := New()
	var order []string
	c.Schedule(2, "b", func(Time) { order = append(order, "b") })
	c.Schedule(1, "a", func(Time) { order = append(order, "a") })
	c.Schedule(3, "c", func(Time) { order = append(order, "c") })
	c.Run(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(5, "tie", func(Time) { order = append(order, i) })
	}
	c.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := New()
	c.Schedule(10, "x", func(Time) {})
	c.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	c.Schedule(5, "past", func(Time) {})
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	e := c.Schedule(1, "x", func(Time) { fired = true })
	if !c.Cancel(e) {
		t.Fatal("Cancel reported not pending")
	}
	if c.Cancel(e) {
		t.Fatal("double Cancel reported pending")
	}
	c.Run(0)
	if fired {
		t.Fatal("canceled event fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", c.Pending())
	}
}

func TestReschedule(t *testing.T) {
	c := New()
	var at Time
	e := c.Schedule(1, "x", func(now Time) { at = now })
	c.Reschedule(e, 7)
	c.Run(0)
	if at != 7 {
		t.Fatalf("fired at %v, want 7", at)
	}
	if c.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", c.Fired())
	}
}

func TestRunUntil(t *testing.T) {
	c := New()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 4, 5} {
		d := d
		c.Schedule(d, "x", func(now Time) { fired = append(fired, now) })
	}
	n := c.RunUntil(3)
	if n != 3 {
		t.Fatalf("executed %d, want 3", n)
	}
	if c.Now() != 3 {
		t.Fatalf("Now = %v, want 3", c.Now())
	}
	n = c.RunUntil(10)
	if n != 2 {
		t.Fatalf("executed %d, want 2", n)
	}
	if c.Now() != 10 {
		t.Fatalf("Now = %v, want 10 (advance to deadline)", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(2.5)
	if c.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", c.Now())
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	c := New()
	var times []Time
	var chain func(now Time)
	chain = func(now Time) {
		times = append(times, now)
		if len(times) < 5 {
			c.After(1, "chain", chain)
		}
	}
	c.After(1, "chain", chain)
	c.Run(0)
	if len(times) != 5 || times[4] != 5 {
		t.Fatalf("chain times = %v", times)
	}
}

func TestTicker(t *testing.T) {
	c := New()
	var ticks []Time
	tk := c.NewTicker(0.5, 1.0, "tick", func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 4 {
			// Stop from within the callback.
		}
	})
	c.RunUntil(3.6)
	tk.Stop()
	c.RunUntil(10)
	want := []Time{0.5, 1.5, 2.5, 3.5}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	if tk.Ticks != 4 {
		t.Fatalf("Ticks = %d, want 4", tk.Ticks)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	c := New()
	var tk *Ticker
	n := 0
	tk = c.NewTicker(0, 1, "t", func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	c.Run(0)
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestNextDue(t *testing.T) {
	c := New()
	if c.NextDue() != Infinity {
		t.Fatal("empty queue NextDue != Infinity")
	}
	e := c.Schedule(4, "x", func(Time) {})
	if c.NextDue() != 4 {
		t.Fatalf("NextDue = %v, want 4", c.NextDue())
	}
	c.Cancel(e)
	if c.NextDue() != Infinity {
		t.Fatal("canceled event still visible via NextDue")
	}
}

// Property: for any set of due times, events fire in nondecreasing time
// order and the clock ends at the max time.
func TestQuickOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		c := New()
		var fired []Time
		for _, r := range raw {
			d := Time(r) / 100
			c.Schedule(d, "q", func(now Time) { fired = append(fired, now) })
		}
		c.Run(0)
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of schedule/cancel never fire a canceled
// event and fire every live event exactly once.
func TestQuickCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		c := New()
		type tracked struct {
			e     *Event
			alive bool
		}
		var evs []*tracked
		firedCount := make(map[int]int)
		for i := 0; i < 50; i++ {
			i := i
			tr := &tracked{alive: true}
			tr.e = c.Schedule(Time(rng.Float64()*100), "q", func(Time) { firedCount[i]++ })
			evs = append(evs, tr)
		}
		for _, tr := range evs {
			if rng.Float64() < 0.3 {
				c.Cancel(tr.e)
				tr.alive = false
			}
		}
		c.Run(0)
		for i, tr := range evs {
			want := 0
			if tr.alive {
				want = 1
			}
			if firedCount[i] != want {
				t.Fatalf("trial %d event %d fired %d times, want %d", trial, i, firedCount[i], want)
			}
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New()
		for j := 0; j < 1000; j++ {
			c.Schedule(Time(j%97), "b", func(Time) {})
		}
		c.Run(0)
	}
}
