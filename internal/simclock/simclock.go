// Package simclock provides a deterministic discrete-event simulation
// kernel: a virtual clock and an event queue with stable ordering.
//
// All Remos experiments run in virtual time so that collector polling,
// background traffic, and application phases interleave reproducibly.
// Time is a float64 number of seconds since the start of the simulation;
// double precision keeps sub-microsecond resolution over the hour-long
// horizons the experiments need.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration = float64

// Infinity is a time later than any event the simulator will schedule.
const Infinity Time = Time(math.MaxFloat64)

// Event is a scheduled callback. The callback runs with the clock set to
// the event's due time and may schedule further events.
type Event struct {
	due      Time
	seq      uint64 // tie-breaker: FIFO among events at the same time
	index    int    // heap index; -1 when not queued
	canceled bool
	fn       func(now Time)
	label    string
}

// Due reports when the event fires.
func (e *Event) Due() Time { return e.due }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 && !e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].due != q[j].due {
		return q[i].due < q[j].due
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a virtual clock with an event queue. The zero value is ready to
// use and starts at time 0.
type Clock struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	running bool
	fired   uint64
}

// New returns a clock starting at time 0.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Fired returns the number of events executed so far (diagnostic).
func (c *Clock) Fired() uint64 { return c.fired }

// Pending returns the number of events still queued.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("simclock: schedule in the past")

// Schedule queues fn to run at the absolute time due. It panics if due is
// before the current time: scheduling into the past is always a programming
// error in a discrete-event simulation.
func (c *Clock) Schedule(due Time, label string, fn func(now Time)) *Event {
	if due < c.now {
		panic(fmt.Errorf("%w: due=%v now=%v label=%q", ErrPast, due, c.now, label))
	}
	e := &Event{due: due, seq: c.nextSeq, fn: fn, label: label}
	c.nextSeq++
	heap.Push(&c.queue, e)
	return e
}

// After queues fn to run d seconds from now.
func (c *Clock) After(d Duration, label string, fn func(now Time)) *Event {
	if d < 0 {
		panic(fmt.Errorf("%w: negative delay %v label=%q", ErrPast, d, label))
	}
	return c.Schedule(c.now+Time(d), label, fn)
}

// Cancel removes a pending event. Canceling an already-fired or already-
// canceled event is a no-op. Cancel returns whether the event was pending.
func (c *Clock) Cancel(e *Event) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	// Leave it in the heap; it is skipped when popped. This keeps Cancel
	// O(1) amortized, which matters because the network simulator cancels
	// and reschedules completion events on every allocation change.
	return true
}

// Reschedule moves a pending event to a new due time, preserving FIFO
// fairness at the new time. If the event already fired it is re-queued.
func (c *Clock) Reschedule(e *Event, due Time) *Event {
	c.Cancel(e)
	return c.Schedule(due, e.label, e.fn)
}

// Step runs the single earliest pending event. It returns false when the
// queue is empty.
func (c *Clock) Step() bool {
	for len(c.queue) > 0 {
		e := heap.Pop(&c.queue).(*Event)
		if e.canceled {
			continue
		}
		c.now = e.due
		c.fired++
		e.fn(c.now)
		return true
	}
	return false
}

// peek returns the due time of the earliest live event, or Infinity.
func (c *Clock) peek() Time {
	for len(c.queue) > 0 {
		if c.queue[0].canceled {
			heap.Pop(&c.queue)
			continue
		}
		return c.queue[0].due
	}
	return Infinity
}

// NextDue reports when the next live event fires, or Infinity if none.
func (c *Clock) NextDue() Time { return c.peek() }

// RunUntil executes events in order until the queue is exhausted or the
// next event is strictly after the deadline, then advances the clock to the
// deadline. It returns the number of events executed.
func (c *Clock) RunUntil(deadline Time) int {
	if deadline < c.now {
		panic(fmt.Errorf("%w: deadline=%v now=%v", ErrPast, deadline, c.now))
	}
	if c.running {
		panic("simclock: reentrant RunUntil")
	}
	c.running = true
	defer func() { c.running = false }()
	n := 0
	for {
		next := c.peek()
		if next > deadline {
			break
		}
		c.Step()
		n++
	}
	if c.now < deadline {
		c.now = deadline
	}
	return n
}

// Run executes events until the queue is empty and returns the count.
// A runaway simulation is cut off after maxEvents (0 means no limit).
func (c *Clock) Run(maxEvents int) int {
	n := 0
	for c.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// Advance moves the clock forward by d, executing any events that fall due.
func (c *Clock) Advance(d Duration) int {
	return c.RunUntil(c.now + Time(d))
}

// Ticker schedules fn every period seconds starting at start, until Stop is
// called. fn runs with the tick's virtual time.
type Ticker struct {
	clock  *Clock
	period Duration
	event  *Event
	stop   bool
	label  string
	fn     func(now Time)
	Ticks  uint64
}

// NewTicker starts a periodic callback. start is an absolute virtual time;
// period must be positive.
func (c *Clock) NewTicker(start Time, period Duration, label string, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive ticker period %v (%s)", period, label))
	}
	t := &Ticker{clock: c, period: period, label: label, fn: fn}
	t.event = c.Schedule(start, label, t.tick)
	return t
}

func (t *Ticker) tick(now Time) {
	if t.stop {
		return
	}
	t.Ticks++
	t.fn(now)
	if !t.stop {
		t.event = t.clock.Schedule(now+Time(t.period), t.label, t.tick)
	}
}

// Stop halts the ticker. Safe to call multiple times and from within fn.
func (t *Ticker) Stop() {
	t.stop = true
	t.clock.Cancel(t.event)
}
