package federation_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/collector"
	"repro/internal/federation"
	"repro/internal/graph"
)

// TestMergeDuplicateBorderAcrossRegions: two remote regions both claim
// the same border router (a shared exchange point). The merge must
// unify it into one router attached to both hubs instead of erroring or
// duplicating — the node-name union rule doing its job on summaries.
func TestMergeDuplicateBorderAcrossRegions(t *testing.T) {
	e := newFed(t)
	mkPeer := func(region, other string, epoch uint64) federation.Peer {
		return federation.FuncPeer(region, func() (*collector.RegionSummary, error) {
			return &collector.RegionSummary{
				Region: region, Epoch: epoch, GeneratedAt: 1,
				Hosts:   []collector.RegionHost{{ID: region + "-h0", Power: 1, AccessBps: 1e8, AvailableBps: 9e7}},
				Borders: []collector.RegionBorder{{ID: "xchg", InteriorBps: 5e8}},
				Pairs:   []collector.RegionPair{{Peer: other, Links: 2, CapacityBps: 4e8, AvailableBps: 3e8, HopCount: 1}},
			}, nil
		})
	}
	v := federation.NewView(federation.Config{
		Region: e.Regions[0],
		Peers:  []federation.Peer{mkPeer("pA", "pB", 3), mkPeer("pB", "pA", 8)},
		Clock:  e.Clk,
	})
	topo, err := v.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.LastPartialError(); err != nil {
		t.Fatalf("partial merge: %v", err)
	}
	g := topo.Graph
	x := g.Node("xchg")
	if x == nil || x.Kind != graph.Network {
		t.Fatalf("shared border not unified as a router: %+v", x)
	}
	if got := len(g.LinksAt("xchg")); got != 2 {
		t.Fatalf("shared border has %d links, want 2 (one per hub)", got)
	}
	// Both regions declared the pA–pB pair; the canonical synthetic link
	// ID must collapse them to a single link.
	hA, hB := federation.HubID("pA"), federation.HubID("pB")
	pairs := 0
	for _, l := range g.Links() {
		if (l.A == hA && l.B == hB) || (l.A == hB && l.B == hA) {
			pairs++
		}
	}
	if pairs != 1 {
		t.Fatalf("pA–pB pair links = %d, want 1", pairs)
	}
}

// TestMergeEpochSkewBetweenPartials: one member frozen at an old epoch,
// another advancing every pull. The merge must stay whole while each
// member's staleness is reported honestly and independently.
func TestMergeEpochSkewBetweenPartials(t *testing.T) {
	e := newFed(t)
	frozen := federation.FuncPeer("old", func() (*collector.RegionSummary, error) {
		return &collector.RegionSummary{
			Region: "old", Epoch: 100, GeneratedAt: 1,
			Hosts: []collector.RegionHost{{ID: "old-h0", Power: 1, AccessBps: 1e8, AvailableBps: 9e7}},
		}, nil
	})
	var liveEpoch uint64 = 100
	live := federation.FuncPeer("new", func() (*collector.RegionSummary, error) {
		liveEpoch++
		return &collector.RegionSummary{
			Region: "new", Epoch: liveEpoch, GeneratedAt: float64(liveEpoch),
			Hosts: []collector.RegionHost{{ID: "new-h0", Power: 1, AccessBps: 1e8, AvailableBps: 9e7}},
		}, nil
	})
	v := federation.NewView(federation.Config{
		Region: e.Regions[0],
		Peers:  []federation.Peer{frozen, live},
		Clock:  e.Clk,
	})
	if _, err := v.Topology(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.Clk.Advance(2)
		if _, err := v.Topology(); err != nil {
			t.Fatal(err)
		}
	}
	ages := map[string]federation.RegionAge{}
	for _, ra := range v.RegionAges() {
		ages[ra.Region] = ra
	}
	if ages["old"].Epoch != 100 {
		t.Fatalf("frozen epoch drifted: %+v", ages["old"])
	}
	if ages["new"].Epoch <= 100 {
		t.Fatalf("live epoch did not advance: %+v", ages["new"])
	}
	// The unchanged-summary skip keeps the frozen member's receipt time
	// at its first apply, so its age dwarfs the live member's.
	if ages["old"].Age <= ages["new"].Age {
		t.Fatalf("epoch-skewed ages not honest: old %v <= new %v", ages["old"].Age, ages["new"].Age)
	}
	if err := v.LastPartialError(); err != nil {
		t.Fatalf("skewed partials broke the merge: %v", err)
	}
}

// TestMergeRegionFlappingMidMerge: a peer that alternates between
// erroring and answering, pulled while concurrent readers walk the
// merged topology. The view must never go partial after the first
// apply, never change shape, and never trip the race detector.
func TestMergeRegionFlappingMidMerge(t *testing.T) {
	e := newFed(t)
	var mu sync.Mutex
	up := true
	epoch := uint64(0)
	flappy := federation.FuncPeer("flap", func() (*collector.RegionSummary, error) {
		mu.Lock()
		defer mu.Unlock()
		up = !up
		if !up {
			return nil, errors.New("flap: transient outage")
		}
		epoch++
		return &collector.RegionSummary{
			Region: "flap", Epoch: epoch, GeneratedAt: float64(epoch),
			Hosts: []collector.RegionHost{{ID: "flap-h0", Power: 1, AccessBps: 1e8, AvailableBps: 9e7}},
		}, nil
	})
	v := federation.NewView(federation.Config{
		Region: e.Regions[0],
		Peers:  []federation.Peer{federation.SourcePeer(e.Regions[1]), flappy},
		Clock:  e.Clk,
	})
	// Prime until the first successful apply.
	for i := 0; ; i++ {
		if _, err := v.Topology(); err == nil && v.LastPartialError() == nil {
			break
		}
		e.Clk.Advance(2)
		if i > 10 {
			t.Fatal("flappy peer never applied")
		}
	}
	base, err := v.Topology()
	if err != nil {
		t.Fatal(err)
	}
	wantNodes, wantLinks := len(base.Graph.Nodes()), base.Graph.NumLinks()

	// Ten flap rounds; after each advance (virtual time is
	// single-threaded) concurrent readers hammer the merged view while
	// the refresh pass — triggered by whichever reader gets there first
	// — applies or rejects the flapping peer's answer.
	for round := 0; round < 10; round++ {
		e.Clk.Advance(2)
		var wg sync.WaitGroup
		errc := make(chan error, 16)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					topo, err := v.Topology()
					if err != nil {
						errc <- err
						return
					}
					if len(topo.Graph.Nodes()) != wantNodes || topo.Graph.NumLinks() != wantLinks {
						errc <- errors.New("merged shape changed mid-flap")
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
	}
	if err := v.LastPartialError(); err != nil {
		t.Fatalf("flapping went partial: %v", err)
	}
	// Flapping shows as Degraded blips at worst, never Down: each
	// success resets the failure streak before DownAfter accumulates.
	if h := v.Health()[graph.NodeID("federation/region-flap")]; h.State == collector.Down {
		t.Fatalf("flapping peer marked Down: %+v", h)
	}
}
