package federation

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Peer is a feed of one remote region's summaries. Fetch is expected to
// be cheap and non-blocking: implementations cache and the View polls.
type Peer interface {
	// Region names the remote region ("" until known).
	Region() string
	// Fetch returns the peer's current summary. Errors mean "no fresh
	// summary available" — the View keeps serving the last good one.
	Fetch() (*collector.RegionSummary, error)
}

// SourcePeer adapts an in-process RegionSummarySource (another Region,
// or a View federating elsewhere) into a Peer.
func SourcePeer(src collector.RegionSummarySource) Peer { return &sourcePeer{src: src} }

type sourcePeer struct{ src collector.RegionSummarySource }

func (p *sourcePeer) Region() string                           { return p.src.RegionName() }
func (p *sourcePeer) Fetch() (*collector.RegionSummary, error) { return p.src.RegionSummary() }

// FuncPeer adapts a fetch function into a Peer — the seam fault tests
// use to make a region go dark deterministically.
func FuncPeer(region string, fetch func() (*collector.RegionSummary, error)) Peer {
	return &funcPeer{region: region, fetch: fetch}
}

type funcPeer struct {
	region string
	fetch  func() (*collector.RegionSummary, error)
}

func (p *funcPeer) Region() string                           { return p.region }
func (p *funcPeer) Fetch() (*collector.RegionSummary, error) { return p.fetch() }

// WatchPeer subscribes to a remote collector's "region-summary" watch
// kind and caches the latest push, reconnecting with backoff after
// transport loss. Fetch never blocks on the network: it returns the
// cached summary (or an error before the first push / after Close).
type WatchPeer struct {
	region string
	dial   func() (collector.WatchSource, error)
	owned  bool // close the WatchSource when a stream ends (we dialed it)

	mu   sync.Mutex
	sum  *collector.RegionSummary
	err  error
	stop context.CancelFunc
	done chan struct{}
}

// NewWatchPeer starts the subscription loop against ws (typically a
// *collector.Client or *collector.FailoverSource). region is the
// expected remote region name, used for labeling before the first push.
// The caller keeps ownership of ws and closes it after Close.
func NewWatchPeer(region string, ws collector.WatchSource) *WatchPeer {
	return newWatchPeer(region, func() (collector.WatchSource, error) { return ws, nil }, false)
}

// NewDialWatchPeer is NewWatchPeer with the connection made (and remade)
// inside the background loop: dial is called before each subscription
// attempt and the result closed when its stream ends. Daemons of one
// federation use this so every listener comes up before any peer needs
// to be reachable — a mutual-subscription cycle converges in any
// startup order instead of deadlocking on connect-before-listen.
func NewDialWatchPeer(region string, dial func() (collector.WatchSource, error)) *WatchPeer {
	return newWatchPeer(region, dial, true)
}

func newWatchPeer(region string, dial func() (collector.WatchSource, error), owned bool) *WatchPeer {
	ctx, cancel := context.WithCancel(context.Background())
	p := &WatchPeer{
		region: region,
		dial:   dial,
		owned:  owned,
		err:    fmt.Errorf("federation: no summary received yet from %q", region),
		stop:   cancel,
		done:   make(chan struct{}),
	}
	go p.loop(ctx)
	return p
}

func (p *WatchPeer) loop(ctx context.Context) {
	defer close(p.done)
	backoff := 100 * time.Millisecond
	// fail records err and sleeps the backoff; false means ctx is done.
	fail := func(err error) bool {
		p.mu.Lock()
		p.err = err
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
		return true
	}
	for ctx.Err() == nil {
		ws, err := p.dial()
		if err != nil {
			if !fail(err) {
				return
			}
			continue
		}
		h, err := ws.Watch(ctx, collector.WatchRequest{Kind: collector.WatchRegionSummary})
		if err != nil {
			p.release(ws)
			if !fail(err) {
				return
			}
			continue
		}
		for u := range h.C {
			if u.Summary == nil {
				continue // error updates, finals
			}
			p.mu.Lock()
			p.sum, p.err = u.Summary, nil
			if p.region == "" {
				p.region = u.Summary.Region
			}
			p.mu.Unlock()
			backoff = 100 * time.Millisecond
		}
		h.Cancel()
		p.release(ws)
		// A dead stream means the peer may be dark: Fetch errors until
		// the next push, so the View's health walk and breaker see the
		// outage while queries keep answering from the last-good
		// summary it already applied.
		p.mu.Lock()
		p.err = fmt.Errorf("federation: watch stream to %q ended", p.region)
		p.mu.Unlock()
	}
}

// release closes a loop-dialed WatchSource; caller-owned sources are
// left alone.
func (p *WatchPeer) release(ws collector.WatchSource) {
	if !p.owned {
		return
	}
	if c, ok := ws.(interface{ Close() error }); ok {
		c.Close()
	}
}

// Region implements Peer.
func (p *WatchPeer) Region() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.region
}

// Fetch implements Peer: the latest pushed summary while the stream is
// live, an error while it is down (before the first push, or after a
// disconnect until the next push lands). The View's member keeps its
// own last-good copy, so a Fetch error degrades health without losing
// answers.
func (p *WatchPeer) Fetch() (*collector.RegionSummary, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return nil, p.err
	}
	return p.sum, nil
}

// Close stops the subscription loop.
func (p *WatchPeer) Close() {
	p.stop()
	<-p.done
}

// ---- synthetic member source ----

// synthBase tags federation-generated global link IDs, far above any
// ID discovery mints, so synthetic channels never collide with real
// ones when merged.
const synthBase = 1 << 62

// synthGID derives a deterministic global link ID from a label. Both
// sides of a federated pair derive the same ID for the same pair link
// without coordination, which is what lets collector.Merge unify them.
func synthGID(label string) int {
	h := fnv.New64a()
	h.Write([]byte(label))
	return synthBase | int(h.Sum64()&(1<<40-1))
}

// HubID is the synthetic router standing in for a summarized region's
// interior in the federated topology.
func HubID(region string) graph.NodeID { return graph.NodeID("region:" + region) }

// peerMember presents one remote region's last-good summary as a
// collector.Source, so collector.Merge can compose it with the local
// region's full-fidelity view. Its topology contribution is the
// summary's logical form: a hub router, the region's hosts on access
// links, its border routers on interior-aggregate links, and one
// aggregate link per remote region pair. Measurement queries answer
// for exactly those synthetic channels, with ages that grow from the
// moment the summary was received.
type peerMember struct {
	feed   Peer
	view   *View
	local  string // the View's own region: pairs back to it are real links, skip
	labelN int    // member index, for synthetic health entries before the name is known

	mu          sync.Mutex
	name        string
	sum         *collector.RegionSummary
	receivedAt  float64 // virtual time the summary was applied
	lastAttempt float64
	nextAttempt float64
	fails       int
	applied     uint64 // successful applies: the member's version component
	chans       map[int]synthChan
}

type synthChan struct {
	capacity float64
	util     float64
}

// refresh pulls the peer if its schedule allows, applying term fencing
// and epoch monotonicity. Called under the View's refresh pass.
func (p *peerMember) refresh(now float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now < p.nextAttempt {
		return
	}
	p.lastAttempt = now
	sum, err := p.feed.Fetch()
	v := p.view
	if err != nil {
		p.fails++
		// Same breaker shape as agent polling: exponential backoff on
		// consecutive failures, capped.
		back := v.cfg.RefreshPeriod
		for i := 1; i < p.fails && back < v.cfg.BackoffMax; i++ {
			back *= 2
		}
		if back > v.cfg.BackoffMax {
			back = v.cfg.BackoffMax
		}
		p.nextAttempt = now + back
		v.tel.Counter("federation.pull.errors").Inc()
		return
	}
	p.nextAttempt = now + v.cfg.RefreshPeriod
	if p.sum != nil {
		if sum.Term < p.sum.Term {
			// A deposed leader's summary: fence it, keep the newer state.
			v.tel.Counter("federation.fencing.rejections").Inc()
			p.fails++
			return
		}
		if sum.Term == p.sum.Term && sum.Epoch < p.sum.Epoch {
			// Stale replay at the same term: ignore, not an outage.
			p.fails = 0
			return
		}
	}
	p.fails = 0
	if p.sum != nil && sum.Epoch == p.sum.Epoch && sum.Term == p.sum.Term &&
		sum.GeneratedAt == p.sum.GeneratedAt {
		return // unchanged: keep receivedAt honest about actual data age
	}
	p.sum = sum
	p.name = sum.Region
	p.receivedAt = now
	p.applied++
	p.rebuildChansLocked()
	v.tel.Counter("federation.summary.applied").Inc()
}

// rebuildChansLocked recomputes the synthetic channel table from the
// current summary.
func (p *peerMember) rebuildChansLocked() {
	s := p.sum
	p.chans = make(map[int]synthChan)
	hub := string(HubID(s.Region))
	for _, h := range s.Hosts {
		cap := h.AccessBps
		if cap <= 0 {
			cap = topology.Mbps
		}
		util := cap - h.AvailableBps
		if util < 0 {
			util = 0
		}
		p.chans[synthGID("host:"+h.ID+"|"+hub)] = synthChan{capacity: cap, util: util}
	}
	for _, b := range s.Borders {
		cap := b.InteriorBps
		if cap <= 0 {
			cap = topology.Mbps
		}
		p.chans[synthGID("border:"+b.ID+"|"+hub)] = synthChan{capacity: cap}
	}
	for _, pr := range s.Pairs {
		if pr.Peer == p.local {
			continue // the cut back to the local region is real links
		}
		cap := pr.CapacityBps
		if cap <= 0 {
			cap = topology.Mbps
		}
		util := cap - pr.AvailableBps
		if util < 0 {
			util = 0
		}
		p.chans[synthGID(pairLabel(s.Region, pr.Peer))] = synthChan{capacity: cap, util: util}
	}
}

// pairLabel is symmetric in its arguments, so both regions of a pair
// derive the same synthetic link ID.
func pairLabel(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return "pair:" + a + "|" + b
}

// age is the honest staleness of answers derived from this member's
// summary: time since it was received plus how stale it already was at
// the source.
func (p *peerMember) ageLocked(now float64) float64 {
	return (now - p.receivedAt) + p.sum.MaxDataAge
}

func (p *peerMember) now() float64 { return float64(p.view.cfg.Clock.Now()) }

// Topology implements collector.Source with the summary's logical
// topology. No summary yet means a member error, which Merged surfaces
// as a partial view with a synthetic Down health entry — the same
// degradation discipline an unreachable agent gets.
func (p *peerMember) Topology() (*collector.Topology, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sum == nil {
		return nil, fmt.Errorf("federation: region %q: no summary yet", p.feed.Region())
	}
	s := p.sum
	g := graph.New()
	hub := HubID(s.Region)
	g.AddRouter(hub, 0)
	t := &collector.Topology{Graph: g, GlobalID: make(map[graph.LinkID]int), DiscoveredAt: p.receivedAt}
	addLink := func(a, b graph.NodeID, cap, lat float64, gid int) {
		if cap <= 0 {
			cap = topology.Mbps
		}
		l := g.AddLink(a, b, cap, lat)
		t.GlobalID[l.ID] = gid
	}
	for _, h := range s.Hosts {
		id := graph.NodeID(h.ID)
		n := g.AddHost(id, h.Power)
		n.MemoryBytes = h.MemoryBytes
		addLink(id, hub, h.AccessBps, topology.PerHopLatency, synthGID("host:"+h.ID+"|"+string(hub)))
	}
	for _, b := range s.Borders {
		id := graph.NodeID(b.ID)
		g.AddRouter(id, 0)
		addLink(id, hub, b.InteriorBps, topology.PerHopLatency, synthGID("border:"+b.ID+"|"+string(hub)))
	}
	for _, pr := range s.Pairs {
		if pr.Peer == p.local {
			continue
		}
		peerHub := HubID(pr.Peer)
		if g.Node(peerHub) == nil {
			g.AddRouter(peerHub, 0)
		}
		lat := pr.LatencySec
		if lat <= 0 {
			lat = topology.PerHopLatency
		}
		// Canonical endpoint order: both regions of a pair declare the
		// same (A, B), so the merge unifies instead of conflicting.
		a, b := hub, peerHub
		if a > b {
			a, b = b, a
		}
		addLink(a, b, pr.CapacityBps, lat*float64(pr.HopCount), synthGID(pairLabel(s.Region, pr.Peer)))
	}
	return t, nil
}

// Utilization implements collector.Source for the member's synthetic
// channels: the summary's aggregate utilization as an exact-quartile
// Stat aged from receipt.
func (p *peerMember) Utilization(key collector.ChannelKey, span float64) (stats.Stat, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, ok := p.chans[key.Global]
	if !ok || p.sum == nil {
		return stats.NoData(), fmt.Errorf("federation: unknown channel %v", key)
	}
	st := stats.Exact(ch.util)
	st.Age = p.ageLocked(p.now())
	return st, nil
}

// Samples implements collector.Source. Summaries carry aggregates, not
// sample histories; predictive timeframes degrade at the Modeler the
// same way an unmeasured channel does.
func (p *peerMember) Samples(key collector.ChannelKey) ([]stats.Sample, error) {
	return nil, fmt.Errorf("federation: no sample history for summarized channel %v", key)
}

// HostLoad implements collector.Source. Load detail stays inside the
// owning region.
func (p *peerMember) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return stats.NoData(), fmt.Errorf("federation: host load of %s is owned by region %q", node, p.regionLabel())
}

// DataAge implements collector.Source for synthetic channels.
func (p *peerMember) DataAge(key collector.ChannelKey) (float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.chans[key.Global]; !ok || p.sum == nil {
		return 0, fmt.Errorf("federation: unknown channel %v", key)
	}
	return p.ageLocked(p.now()), nil
}

// DataVersion implements collector.VersionedSource: bumps once per
// applied summary, so the Modeler's availability memo invalidates when
// (and only when) federated state actually moved.
func (p *peerMember) DataVersion() (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied, true
}

// Health implements collector.HealthSource with one synthetic entry per
// region, following the agent health state machine: Healthy while
// pulls succeed, Degraded on the first failures, Down past DownAfter —
// at which point answers keep flowing from the last summary with their
// ages telling the truth.
func (p *peerMember) Health() map[graph.NodeID]collector.AgentHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	state := collector.Healthy
	switch {
	case p.fails >= p.view.cfg.DownAfter:
		state = collector.Down
	case p.fails > 0:
		state = collector.Degraded
	}
	last := -1.0
	if p.sum != nil {
		last = p.receivedAt
	}
	att := p.lastAttempt
	if att == 0 && p.sum == nil {
		att = -1
	}
	return map[graph.NodeID]collector.AgentHealth{
		graph.NodeID("federation/region-" + p.regionLabelLocked()): {
			State:               state,
			ConsecutiveFailures: p.fails,
			LastSuccess:         last,
			LastAttempt:         att,
			NextAttempt:         p.nextAttempt,
		},
	}
}

func (p *peerMember) regionLabel() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regionLabelLocked()
}

func (p *peerMember) regionLabelLocked() string {
	if p.name != "" {
		return p.name
	}
	if r := p.feed.Region(); r != "" {
		return r
	}
	return fmt.Sprintf("peer-%d", p.labelN)
}

// summaryAges returns (region, age) pairs for every member holding a
// summary, sorted by region — the per-region staleness surface the
// telemetry gauges and FEDERATION dashboard line render.
func summaryAges(members []*peerMember, now float64) []RegionAge {
	out := make([]RegionAge, 0, len(members))
	for _, p := range members {
		p.mu.Lock()
		if p.sum != nil {
			out = append(out, RegionAge{
				Region: p.regionLabelLocked(),
				Age:    p.ageLocked(now),
				Epoch:  p.sum.Epoch,
				Fails:  p.fails,
			})
		} else {
			out = append(out, RegionAge{Region: p.regionLabelLocked(), Age: -1, Fails: p.fails})
		}
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// RegionAge reports one federated region's staleness: Age is seconds
// since its data was current (-1 = no summary received yet).
type RegionAge struct {
	Region string
	Age    float64
	Epoch  uint64
	Fails  int
}
