// Package federation turns independent regional collectors into one
// queryable network view — the paper's hierarchical-query design
// (collectors that own a region and answer about the rest of the world
// via summaries) built on the existing collector machinery.
//
// Three pieces:
//
//   - Region wraps a regional collector (or HA pair / failover client)
//     with a region name and the global region partition, and digests
//     its full-fidelity state into a compact collector.RegionSummary
//     (hosts + border routers + per-region-pair aggregates).
//
//   - Peer is a feed of another region's summaries: SourcePeer pulls an
//     in-process RegionSummarySource, WatchPeer rides the TCP
//     "region-summary" watch kind.
//
//   - View composes the local region's detail with every peer's
//     last-good summary into one collector.Source, by extending
//     collector.Merge: each remote region is presented as a synthetic
//     member source (a hub router, its hosts, its border routers, and
//     aggregate cross-region links), and the stock merge rules — union
//     by node name and global link ID, Network kind wins, partial
//     members surface as synthetic Down health — do the composition.
//     Intra-region queries hit the local collector at full fidelity;
//     cross-region flows resolve through the summarized links; a dark
//     region degrades to its last summary with an honestly growing
//     DataAge, reusing the health/breaker discipline.
package federation

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// DefaultSummarySpan is the trailing window (virtual seconds) summary
// aggregates are computed over.
const DefaultSummarySpan = 30.0

// Region wraps one region's full-fidelity source with its place in the
// global partition. It implements collector.Source (by delegation) plus
// collector.RegionSummarySource, so it can be served directly by
// collector.ServeConfig and federated from by peers.
type Region struct {
	// Name is this region's name in the partition.
	Name string
	// Src is the region's full-fidelity source: the in-process
	// *collector.Collector, a TCP client, or an HA failover client.
	Src collector.Source
	// RegionOf maps any node to its owning region ("" = unknown). All
	// federating daemons must share this partition — with generated
	// topologies (internal/topogen) it derives deterministically from
	// the (kind, n, seed, regions) spec.
	RegionOf func(graph.NodeID) string
	// Clock stamps summaries with virtual generation times.
	Clock *simclock.Clock
	// Span is the trailing window for summary aggregates (0 =
	// DefaultSummarySpan).
	Span float64

	mu    sync.Mutex
	synth uint64 // epoch fallback for unversioned sources
}

// RegionName implements collector.RegionSummarySource.
func (r *Region) RegionName() string { return r.Name }

// RegionSummary implements collector.RegionSummarySource: digest the
// region's current state. Output field order is deterministic (hosts,
// borders, and pairs sorted), so two calls at the same epoch are
// byte-identical — the property federation convergence tests pin.
func (r *Region) RegionSummary() (*collector.RegionSummary, error) {
	span := r.Span
	if span <= 0 {
		span = DefaultSummarySpan
	}
	epoch := uint64(0)
	if vs, ok := r.Src.(collector.VersionedSource); ok {
		if v, vok := vs.DataVersion(); vok {
			epoch = v
		}
	}
	if epoch == 0 {
		r.mu.Lock()
		r.synth++
		epoch = r.synth
		r.mu.Unlock()
	}
	var term uint64
	if hs, ok := r.Src.(collector.HAStatusSource); ok {
		if t, _, on := hs.HAStatus(); on {
			term = t
		}
	}
	s, err := Summarize(r.Name, r.Src, r.RegionOf, float64(r.Clock.Now()), span)
	if err != nil {
		return nil, err
	}
	s.Epoch = epoch
	s.Term = term
	return s, nil
}

// Summarize digests src's current state into a RegionSummary for the
// named region: its compute nodes, its border routers, and one
// aggregate entry per neighbouring region. Epoch and Term are left for
// the caller to stamp.
func Summarize(name string, src collector.Source, regionOf func(graph.NodeID) string,
	now, span float64) (*collector.RegionSummary, error) {
	topo, err := src.Topology()
	if err != nil {
		return nil, fmt.Errorf("federation: summarize %s: %w", name, err)
	}
	g := topo.Graph
	s := &collector.RegionSummary{Region: name, GeneratedAt: now}

	// utilOf reads the worse direction's median utilization of a link
	// (0 when unmeasured — capacity is then the honest aggregate) and
	// folds the channel's data age into MaxDataAge.
	utilOf := func(l *graph.Link) float64 {
		worst := 0.0
		got := false
		for _, d := range []graph.Dir{graph.AtoB, graph.BtoA} {
			key := topo.Key(l, d)
			if st, err := src.Utilization(key, span); err == nil && st.Valid() {
				if !got || st.Median > worst {
					worst = st.Median
				}
				got = true
				if st.Age > s.MaxDataAge {
					s.MaxDataAge = st.Age
				}
			}
			if age, err := src.DataAge(key); err == nil && age > s.MaxDataAge {
				s.MaxDataAge = age
			}
		}
		return worst
	}

	pairs := make(map[string]*collector.RegionPair)
	for _, id := range g.Nodes() {
		if regionOf(id) != name {
			continue
		}
		n := g.Node(id)
		if n.Kind == graph.Compute {
			h := collector.RegionHost{ID: string(id), Power: n.ComputePower, MemoryBytes: n.MemoryBytes}
			for _, l := range g.LinksAt(id) {
				if h.AccessBps == 0 || l.Capacity < h.AccessBps {
					util := utilOf(l)
					h.AccessBps = l.Capacity
					h.AvailableBps = l.Capacity - util
					if h.AvailableBps < 0 {
						h.AvailableBps = 0
					}
				}
			}
			s.Hosts = append(s.Hosts, h)
			continue
		}
		// Router: border when any incident link leaves the region.
		var interior float64
		var border bool
		for _, l := range g.LinksAt(id) {
			other, _ := l.Other(id)
			or := regionOf(other)
			if or == name || or == "" {
				interior += l.Capacity
				continue
			}
			border = true
			p := pairs[or]
			if p == nil {
				p = &collector.RegionPair{Peer: or, HopCount: 1}
				pairs[or] = p
			}
			util := utilOf(l)
			p.Links++
			p.CapacityBps += l.Capacity
			avail := l.Capacity - util
			if avail > 0 {
				p.AvailableBps += avail
			}
			if l.Latency > p.LatencySec {
				p.LatencySec = l.Latency
			}
		}
		if border {
			s.Borders = append(s.Borders, collector.RegionBorder{ID: string(id), InteriorBps: interior})
		}
	}
	sort.Slice(s.Hosts, func(i, j int) bool { return s.Hosts[i].ID < s.Hosts[j].ID })
	sort.Slice(s.Borders, func(i, j int) bool { return s.Borders[i].ID < s.Borders[j].ID })
	for _, p := range pairs {
		s.Pairs = append(s.Pairs, *p)
	}
	sort.Slice(s.Pairs, func(i, j int) bool { return s.Pairs[i].Peer < s.Pairs[j].Peer })
	return s, nil
}

// ---- Source delegation ----

// Topology implements collector.Source.
func (r *Region) Topology() (*collector.Topology, error) { return r.Src.Topology() }

// Utilization implements collector.Source.
func (r *Region) Utilization(key collector.ChannelKey, span float64) (stats.Stat, error) {
	return r.Src.Utilization(key, span)
}

// Samples implements collector.Source.
func (r *Region) Samples(key collector.ChannelKey) ([]stats.Sample, error) {
	return r.Src.Samples(key)
}

// HostLoad implements collector.Source.
func (r *Region) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return r.Src.HostLoad(node, span)
}

// DataAge implements collector.Source.
func (r *Region) DataAge(key collector.ChannelKey) (float64, error) { return r.Src.DataAge(key) }

// DataVersion implements collector.VersionedSource by probing Src.
func (r *Region) DataVersion() (uint64, bool) {
	if vs, ok := r.Src.(collector.VersionedSource); ok {
		return vs.DataVersion()
	}
	return 0, false
}

// Health implements collector.HealthSource by probing Src.
func (r *Region) Health() map[graph.NodeID]collector.AgentHealth {
	if hs, ok := r.Src.(collector.HealthSource); ok {
		return hs.Health()
	}
	return nil
}

// Region deliberately does not implement collector.VersionNotifier:
// the watch plane's type assertion must see the real capability, and a
// Region over a notifier-less source degrades to the poll-driven path
// instead of advertising a channel that never fires.
