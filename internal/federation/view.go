package federation

import (
	"context"
	"sync"

	"repro/internal/collector"
	"repro/internal/graph"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Defaults for the View's pull discipline (virtual seconds).
const (
	DefaultRefreshPeriod = 2.0
	DefaultBackoffMax    = 60.0
	DefaultDownAfter     = 3
)

// Config configures a federated View.
type Config struct {
	// Region is the local region: full fidelity, polled by this
	// process (or its HA pair). Required.
	Region *Region
	// Peers feed the other regions' summaries.
	Peers []Peer
	// Clock is the virtual clock shared with the local collector.
	Clock *simclock.Clock
	// RefreshPeriod is how often (virtual seconds) each peer is pulled
	// (0 = DefaultRefreshPeriod).
	RefreshPeriod float64
	// BackoffMax caps the per-peer failure backoff (0 =
	// DefaultBackoffMax).
	BackoffMax float64
	// DownAfter is how many consecutive pull failures mark a region
	// Down (0 = DefaultDownAfter).
	DownAfter int
}

// View composes one local region's full detail with the last-good
// summaries of every peer region into a single queryable
// collector.Source — the federation tier. Composition is
// collector.Merge doing what it already does: the local region and one
// synthetic member per peer are merged by node name and global link
// ID, so intra-region queries resolve against local full fidelity and
// cross-region flows traverse hub routers standing in for remote
// interiors. Peer pulls happen lazily on the query path under the
// virtual clock (deterministic in tests); a peer that stops answering
// keeps its last summary, its health entry walks Healthy → Degraded →
// Down, and every answer derived from it carries a growing DataAge.
type View struct {
	cfg     Config
	local   *Region
	members []*peerMember
	merged  *collector.Merged
	tel     *telemetry.Registry

	mu          sync.Mutex
	lastRefresh float64
	refreshed   bool
}

// NewView builds the federated view.
func NewView(cfg Config) *View {
	if cfg.Region == nil {
		panic("federation: Config.Region is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = cfg.Region.Clock
	}
	if cfg.RefreshPeriod <= 0 {
		cfg.RefreshPeriod = DefaultRefreshPeriod
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = DefaultDownAfter
	}
	v := &View{cfg: cfg, local: cfg.Region}
	sources := []collector.Source{cfg.Region}
	for i, peer := range cfg.Peers {
		m := &peerMember{feed: peer, view: v, local: cfg.Region.Name, labelN: i}
		v.members = append(v.members, m)
		sources = append(sources, m)
	}
	v.merged = collector.Merge(sources...)
	v.tel = v.merged.Telemetry()
	v.tel.Gauge("federation.regions").Set(float64(1 + len(v.members)))
	return v
}

// refresh runs one pull pass over the peers when the refresh period
// elapsed, then re-publishes the per-region staleness gauges. Cheap
// when nothing is due: one clock read and a mutex.
func (v *View) refresh() {
	now := float64(v.cfg.Clock.Now())
	v.mu.Lock()
	if v.refreshed && now-v.lastRefresh < v.cfg.RefreshPeriod && now >= v.lastRefresh {
		v.mu.Unlock()
		return
	}
	v.lastRefresh = now
	v.refreshed = true
	v.mu.Unlock()
	for _, m := range v.members {
		m.refresh(now)
	}
	v.tel.Counter("federation.pulls").Inc()
	for _, ra := range summaryAges(v.members, now) {
		v.tel.Gauge("federation.region." + ra.Region + ".age").Set(ra.Age)
		v.tel.Gauge("federation.region." + ra.Region + ".epoch").Set(float64(ra.Epoch))
		v.tel.Gauge("federation.region." + ra.Region + ".fails").Set(float64(ra.Fails))
	}
}

// RegionAges reports each peer region's current staleness.
func (v *View) RegionAges() []RegionAge {
	v.refresh()
	return summaryAges(v.members, float64(v.cfg.Clock.Now()))
}

// ---- collector.Source ----

// Topology implements collector.Source.
func (v *View) Topology() (*collector.Topology, error) {
	v.refresh()
	return v.merged.Topology()
}

// Utilization implements collector.Source.
func (v *View) Utilization(key collector.ChannelKey, span float64) (stats.Stat, error) {
	v.refresh()
	return v.merged.Utilization(key, span)
}

// Samples implements collector.Source.
func (v *View) Samples(key collector.ChannelKey) ([]stats.Sample, error) {
	v.refresh()
	return v.merged.Samples(key)
}

// HostLoad implements collector.Source.
func (v *View) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	v.refresh()
	return v.merged.HostLoad(node, span)
}

// DataAge implements collector.Source.
func (v *View) DataAge(key collector.ChannelKey) (float64, error) {
	v.refresh()
	return v.merged.DataAge(key)
}

// ---- collector.ContextSource ----

// TopologyCtx implements collector.ContextSource.
func (v *View) TopologyCtx(ctx context.Context) (*collector.Topology, error) {
	v.refresh()
	return v.merged.TopologyCtx(ctx)
}

// UtilizationCtx implements collector.ContextSource.
func (v *View) UtilizationCtx(ctx context.Context, key collector.ChannelKey, span float64) (stats.Stat, error) {
	v.refresh()
	return v.merged.UtilizationCtx(ctx, key, span)
}

// SamplesCtx implements collector.ContextSource.
func (v *View) SamplesCtx(ctx context.Context, key collector.ChannelKey) ([]stats.Sample, error) {
	v.refresh()
	return v.merged.SamplesCtx(ctx, key)
}

// HostLoadCtx implements collector.ContextSource.
func (v *View) HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error) {
	v.refresh()
	return v.merged.HostLoadCtx(ctx, node, span)
}

// DataAgeCtx implements collector.ContextSource.
func (v *View) DataAgeCtx(ctx context.Context, key collector.ChannelKey) (float64, error) {
	v.refresh()
	return v.merged.DataAgeCtx(ctx, key)
}

// ---- optional refinements ----

// DataVersion implements collector.VersionedSource: the merged sum of
// the local version and every member's applied-summary count.
func (v *View) DataVersion() (uint64, bool) { return v.merged.DataVersion() }

// Health implements collector.HealthSource: local agent health plus one
// synthetic federation/region-<name> entry per peer.
func (v *View) Health() map[graph.NodeID]collector.AgentHealth {
	v.refresh()
	return v.merged.Health()
}

// Telemetry implements collector.TelemetrySource: the merge registry,
// which also carries the federation.* metrics.
func (v *View) Telemetry() *telemetry.Registry { return v.tel }

// LastPartialError surfaces the most recent partial-merge condition
// (nil = every region contributed to the last topology).
func (v *View) LastPartialError() error { return v.merged.LastPartialError() }

// ---- federation surface ----

// RegionName implements collector.RegionSummarySource: a View is itself
// summarizable, so federations can tier (a super-collector federating
// federated views) and peers can subscribe symmetrically.
func (v *View) RegionName() string { return v.local.Name }

// RegionSummary implements collector.RegionSummarySource: the local
// region's digest (remote summaries are not re-exported — each region
// is owned, and summarized, by exactly one collector).
func (v *View) RegionSummary() (*collector.RegionSummary, error) {
	return v.local.RegionSummary()
}

// Watch implements collector.WatchSource in-process.
func (v *View) Watch(ctx context.Context, req collector.WatchRequest) (*collector.WatchHandle, error) {
	return collector.WatchLocal(ctx, v, req)
}

// HAStatus implements collector.HAStatusSource when the local source
// participates in a hot-standby pair.
func (v *View) HAStatus() (term uint64, leader bool, ok bool) {
	if hs, ok2 := v.local.Src.(collector.HAStatusSource); ok2 {
		return hs.HAStatus()
	}
	return 0, false, false
}
