package federation_test

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/graph"
	"repro/internal/topogen"
)

// fedSpec is the shared small 3-region testbed: big enough to have
// borders and cross-region paths in every region, small enough for -race.
var fedSpec = topogen.Spec{Kind: topogen.KindHier, N: 60, Seed: 7, Regions: 3}

func newFed(t *testing.T) *experiments.FederationEnv {
	t.Helper()
	e := experiments.NewFederationEnv(fedSpec)
	e.Warmup()
	return e
}

// TestRegionSummaryDeterministic: summarizing the same collector state
// twice yields identical summaries (sorted hosts/borders/pairs, same
// epoch), and the summary covers exactly the region's hosts.
func TestRegionSummaryDeterministic(t *testing.T) {
	e := newFed(t)
	reg := e.Regions[0]
	s1, err := reg.RegionSummary()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := reg.RegionSummary()
	if err != nil {
		t.Fatal(err)
	}
	if s2.GeneratedAt != s1.GeneratedAt || s2.Epoch != s1.Epoch {
		t.Fatalf("unstable stamps: %+v vs %+v", s1, s2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("summary not deterministic:\n%+v\n%+v", s1, s2)
	}
	hosts := e.Topo.Hosts(reg.Name)
	if len(s1.Hosts) != len(hosts) {
		t.Fatalf("summary hosts = %d, region has %d", len(s1.Hosts), len(hosts))
	}
	for i, h := range s1.Hosts {
		if h.ID != string(hosts[i]) {
			t.Fatalf("host[%d] = %s, want %s (sorted)", i, h.ID, hosts[i])
		}
		if h.AccessBps <= 0 || h.AvailableBps < 0 || h.AvailableBps > h.AccessBps {
			t.Fatalf("host %s has nonsense access figures: %+v", h.ID, h)
		}
	}
	if len(s1.Borders) == 0 {
		t.Fatal("region has no border routers — topology too small to federate")
	}
	if len(s1.Pairs) == 0 {
		t.Fatal("region has no cross-region pairs")
	}
	for _, p := range s1.Pairs {
		if p.Peer == reg.Name {
			t.Fatalf("pair with self: %+v", p)
		}
		if p.Links <= 0 || p.CapacityBps <= 0 {
			t.Fatalf("empty pair aggregate: %+v", p)
		}
	}
}

// TestFederatedTopologyComposition: a View's merged topology carries the
// local region at full fidelity plus each remote region's logical form —
// hub router, hosts, borders — with shared border routers and pair links
// unified rather than conflicting.
func TestFederatedTopologyComposition(t *testing.T) {
	e := newFed(t)
	v := e.Views[0]
	topo, err := v.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.LastPartialError(); err != nil {
		t.Fatalf("federated merge was partial: %v", err)
	}
	g := topo.Graph
	// Every host of every region is present and still a compute node.
	for _, region := range e.Topo.Regions {
		for _, h := range e.Topo.Hosts(region) {
			n := g.Node(h)
			if n == nil || n.Kind != graph.Compute {
				t.Fatalf("host %s of %s missing or re-kinded: %+v", h, region, n)
			}
		}
	}
	// Remote regions appear as hub routers.
	for _, region := range e.Topo.Regions[1:] {
		hub := g.Node(federation.HubID(region))
		if hub == nil || hub.Kind != graph.Network {
			t.Fatalf("no hub router for %s", region)
		}
	}
	if g.Node(federation.HubID(e.Topo.Regions[0])) != nil {
		t.Fatal("local region must not be summarized into a hub")
	}
	// Remote border routers keep router kind even though the local
	// collector discovered some of them as leaf neighbours.
	s1, err := e.Regions[1].RegionSummary()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s1.Borders {
		n := g.Node(graph.NodeID(b.ID))
		if n == nil || n.Kind != graph.Network {
			t.Fatalf("border %s missing or demoted: %+v", b.ID, n)
		}
	}
	// The r1–r2 pair link is declared by both members with one canonical
	// global ID, so it must merge to a single link.
	h1, h2 := federation.HubID(e.Topo.Regions[1]), federation.HubID(e.Topo.Regions[2])
	pairs := 0
	for _, l := range g.Links() {
		if (l.A == h1 && l.B == h2) || (l.A == h2 && l.B == h1) {
			pairs++
		}
	}
	if pairs != 1 {
		t.Fatalf("hub–hub pair links = %d, want exactly 1 unified link", pairs)
	}
	// Byte-determinism end to end: a second, independently wired
	// federation over the same spec renders the identical topology.
	e2 := experiments.NewFederationEnv(fedSpec)
	e2.Warmup()
	topo2, err := e2.Views[0].Topology()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(topo2), render(topo); got != want {
		t.Fatalf("federated topology not reproducible:\n%s\n----\n%s", got, want)
	}
}

func render(topo *collector.Topology) string {
	out := ""
	for _, id := range topo.Graph.Nodes() {
		out += string(id) + "|" + topo.Graph.Node(id).Kind.String() + "\n"
	}
	for _, l := range topo.Graph.Links() {
		out += string(l.A) + "-" + string(l.B) + "\n"
	}
	return out
}

// TestFederatedQueries: intra-region flows answer at full fidelity;
// cross-region flows answer through the summarized links.
func TestFederatedQueries(t *testing.T) {
	e := newFed(t)
	mod := e.Mods[0]
	r0 := e.Topo.Hosts(e.Topo.Regions[0])
	r2 := e.Topo.Hosts(e.Topo.Regions[2])

	intra, err := mod.AvailableBandwidth(r0[0], r0[len(r0)-1], core.TFHistory(10))
	if err != nil {
		t.Fatalf("intra-region query: %v", err)
	}
	if !intra.Valid() || intra.Median <= 0 {
		t.Fatalf("intra-region stat invalid: %+v", intra)
	}
	cross, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10))
	if err != nil {
		t.Fatalf("cross-region query: %v", err)
	}
	if !cross.Valid() || cross.Median <= 0 {
		t.Fatalf("cross-region stat invalid: %+v", cross)
	}
	lat, err := mod.PathLatency(r0[0], r2[0])
	if err != nil {
		t.Fatalf("cross-region latency: %v", err)
	}
	if lat.Median <= 0 {
		t.Fatalf("cross-region latency = %+v", lat)
	}
}

// TestFederationDarkRegionAndHeal is the acceptance scenario: one region
// goes dark; the federation keeps answering from its last summary with
// an honestly growing age while health walks Degraded → Down; when the
// region heals, the age collapses and health returns to Healthy.
func TestFederationDarkRegionAndHeal(t *testing.T) {
	e := newFed(t)
	var dark atomic.Bool
	darkRegion := e.Topo.Regions[2]
	gate := federation.FuncPeer(darkRegion, func() (*collector.RegionSummary, error) {
		if dark.Load() {
			return nil, errors.New("region unreachable")
		}
		return e.Regions[2].RegionSummary()
	})
	v := federation.NewView(federation.Config{
		Region: e.Regions[0],
		Peers:  []federation.Peer{federation.SourcePeer(e.Regions[1]), gate},
		Clock:  e.Clk,
	})
	mod := core.New(core.Config{Source: v})
	r0 := e.Topo.Hosts(e.Topo.Regions[0])
	r2 := e.Topo.Hosts(darkRegion)

	ageOf := func(region string) float64 {
		for _, ra := range v.RegionAges() {
			if ra.Region == region {
				return ra.Age
			}
		}
		t.Fatalf("no age entry for %s", region)
		return 0
	}
	healthOf := func(region string) collector.AgentHealth {
		h, ok := v.Health()[graph.NodeID("federation/region-"+region)]
		if !ok {
			t.Fatalf("no federation health entry for %s", region)
		}
		return h
	}

	if _, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10)); err != nil {
		t.Fatalf("healthy cross query: %v", err)
	}
	if st := healthOf(darkRegion).State; st != collector.Healthy {
		t.Fatalf("pre-dark state = %v", st)
	}
	base := ageOf(darkRegion)

	dark.Store(true)
	e.Clk.Advance(2)
	if st := healthOf(darkRegion).State; st != collector.Degraded {
		t.Fatalf("first missed pull: state = %v, want Degraded", st)
	}
	prev := ageOf(darkRegion)
	if prev <= base {
		t.Fatalf("age did not grow while dark: %v <= %v", prev, base)
	}
	// Keep failing through the breaker's backoff until Down.
	deadline := 0
	for healthOf(darkRegion).State != collector.Down {
		e.Clk.Advance(2)
		if deadline++; deadline > 50 {
			t.Fatal("region never reached Down")
		}
	}
	if age := ageOf(darkRegion); age <= prev {
		t.Fatalf("age stopped growing: %v <= %v", age, prev)
	} else {
		prev = age
	}
	// Degraded answers, not refusals: the last summary still serves.
	mod.Refresh()
	st, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10))
	if err != nil {
		t.Fatalf("dark cross query: %v", err)
	}
	if !st.Valid() || st.Median <= 0 {
		t.Fatalf("dark cross stat invalid: %+v", st)
	}
	if err := v.LastPartialError(); err != nil {
		t.Fatalf("last-good summary should avert a partial merge, got %v", err)
	}

	// Heal: ride out the remaining backoff, then expect recovery.
	dark.Store(false)
	deadline = 0
	for healthOf(darkRegion).State != collector.Healthy {
		e.Clk.Advance(2)
		if deadline++; deadline > 100 {
			t.Fatal("region never healed")
		}
	}
	h := healthOf(darkRegion)
	if h.ConsecutiveFailures != 0 {
		t.Fatalf("healed region still counts failures: %+v", h)
	}
	if age := ageOf(darkRegion); age >= prev {
		t.Fatalf("age did not collapse on heal: %v >= %v", age, prev)
	}
	if _, err := mod.AvailableBandwidth(r0[0], r2[0], core.TFHistory(10)); err != nil {
		t.Fatalf("healed cross query: %v", err)
	}
}

// TestFederationTermFencing: summaries from a deposed leader (lower
// term) are fenced; same-term epoch regressions are ignored without
// counting as an outage; genuinely newer state applies.
func TestFederationTermFencing(t *testing.T) {
	e := newFed(t)
	mk := func(term, epoch uint64, gen float64) *collector.RegionSummary {
		return &collector.RegionSummary{
			Region: "rx", Term: term, Epoch: epoch, GeneratedAt: gen,
			Hosts: []collector.RegionHost{{ID: "rx-h0", Power: 1, AccessBps: 1e8, AvailableBps: 9e7}},
		}
	}
	script := []*collector.RegionSummary{
		mk(2, 5, 1), // applied
		mk(1, 9, 2), // lower term: fenced
		mk(2, 4, 3), // same term, older epoch: ignored quietly
		mk(2, 6, 4), // newer: applied
	}
	i := 0
	peer := federation.FuncPeer("rx", func() (*collector.RegionSummary, error) {
		s := script[i]
		if i < len(script)-1 {
			i++
		}
		return s, nil
	})
	v := federation.NewView(federation.Config{
		Region: e.Regions[0], Peers: []federation.Peer{peer}, Clock: e.Clk,
	})
	epochOf := func() (uint64, int) {
		for _, ra := range v.RegionAges() {
			if ra.Region == "rx" {
				return ra.Epoch, ra.Fails
			}
		}
		t.Fatal("no rx entry")
		return 0, 0
	}
	fenced := v.Telemetry().Counter("federation.fencing.rejections")

	if ep, _ := epochOf(); ep != 5 {
		t.Fatalf("initial apply: epoch = %d, want 5", ep)
	}
	e.Clk.Advance(2)
	if ep, fails := epochOf(); ep != 5 || fails != 1 {
		t.Fatalf("after deposed-leader summary: epoch=%d fails=%d, want 5/1", ep, fails)
	}
	if fenced.Value() != 1 {
		t.Fatalf("fencing rejections = %v, want 1", fenced.Value())
	}
	e.Clk.Advance(2)
	if ep, fails := epochOf(); ep != 5 || fails != 0 {
		t.Fatalf("after stale replay: epoch=%d fails=%d, want 5/0", ep, fails)
	}
	e.Clk.Advance(2)
	if ep, _ := epochOf(); ep != 6 {
		t.Fatalf("newer summary not applied: epoch = %d, want 6", ep)
	}
	if fenced.Value() != 1 {
		t.Fatalf("fencing rejections drifted: %v", fenced.Value())
	}
}

// TestWatchPeerOverWire: a remote Region served over TCP pushes its
// summaries through the "region-summary" watch kind; a WatchPeer caches
// them and feeds a federated View.
func TestWatchPeerOverWire(t *testing.T) {
	e := newFed(t)
	srv, err := collector.ServeConfig(e.Regions[1], "127.0.0.1:0", collector.ServerConfig{
		WatchPollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := collector.DialConfig(srv.Addr(), collector.ClientConfig{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	wp := federation.NewWatchPeer(e.Topo.Regions[1], cli)
	defer wp.Close()
	var sum *collector.RegionSummary
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sum, err = wp.Fetch(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no summary pushed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sum.Region != e.Topo.Regions[1] {
		t.Fatalf("summary region = %q, want %q", sum.Region, e.Topo.Regions[1])
	}
	if want := len(e.Topo.Hosts(sum.Region)); len(sum.Hosts) != want {
		t.Fatalf("summary hosts = %d, want %d", len(sum.Hosts), want)
	}

	v := federation.NewView(federation.Config{
		Region: e.Regions[0],
		Peers:  []federation.Peer{wp, federation.SourcePeer(e.Regions[2])},
		Clock:  e.Clk,
	})
	topo, err := v.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Graph.Node(federation.HubID(sum.Region)) == nil {
		t.Fatal("watch-fed region missing from federated topology")
	}
}
