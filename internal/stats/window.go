package stats

import "fmt"

// Sample is one timestamped measurement. Time is virtual seconds (the
// collector's poll timestamps).
type Sample struct {
	Time  float64
	Value float64
}

// Window is a bounded time-series of samples, oldest first. The collector
// keeps one per directed channel (utilization) and per host (CPU load).
// The zero value is unusable; call NewWindow.
type Window struct {
	maxAge  float64 // samples older than newest-maxAge are dropped; 0 = keep all
	maxLen  int     // hard cap on retained samples
	samples []Sample
	start   int // ring start
	count   int
	dropped uint64
}

// NewWindow creates a window retaining at most maxLen samples no older
// than maxAge seconds relative to the most recent sample. maxLen must be
// positive.
func NewWindow(maxLen int, maxAge float64) *Window {
	if maxLen <= 0 {
		panic(fmt.Sprintf("stats: non-positive window length %d", maxLen))
	}
	return &Window{maxAge: maxAge, maxLen: maxLen, samples: make([]Sample, maxLen)}
}

// Add appends a sample. Samples must arrive in nondecreasing time order;
// out-of-order samples are rejected with an error (a multi-collector merge
// bug, worth surfacing, not panicking over).
func (w *Window) Add(t, v float64) error {
	if w.count > 0 {
		last := w.at(w.count - 1)
		if t < last.Time {
			return fmt.Errorf("stats: out-of-order sample t=%v after t=%v", t, last.Time)
		}
	}
	if w.count == w.maxLen {
		w.start = (w.start + 1) % w.maxLen
		w.count--
		w.dropped++
	}
	w.samples[(w.start+w.count)%w.maxLen] = Sample{Time: t, Value: v}
	w.count++
	w.expire(t)
	return nil
}

func (w *Window) expire(now float64) {
	if w.maxAge <= 0 {
		return
	}
	for w.count > 0 && w.at(0).Time < now-w.maxAge {
		w.start = (w.start + 1) % w.maxLen
		w.count--
		w.dropped++
	}
}

func (w *Window) at(i int) Sample { return w.samples[(w.start+i)%w.maxLen] }

// Len returns the number of retained samples.
func (w *Window) Len() int { return w.count }

// Dropped returns how many samples have aged or been evicted (diagnostic).
func (w *Window) Dropped() uint64 { return w.dropped }

// Latest returns the most recent sample and whether one exists.
func (w *Window) Latest() (Sample, bool) {
	if w.count == 0 {
		return Sample{}, false
	}
	return w.at(w.count - 1), true
}

// Since returns the values of samples with Time >= t, oldest first.
func (w *Window) Since(t float64) []float64 {
	var out []float64
	for i := 0; i < w.count; i++ {
		s := w.at(i)
		if s.Time >= t {
			out = append(out, s.Value)
		}
	}
	return out
}

// Samples returns a copy of all retained samples, oldest first.
func (w *Window) Samples() []Sample {
	out := make([]Sample, w.count)
	for i := range out {
		out[i] = w.at(i)
	}
	return out
}

// SamplesSince returns a copy of the samples with Time strictly after
// t, oldest first. This is the replication-feed cursor primitive: a
// subscriber that has already shipped everything up to time t asks only
// for what arrived since.
func (w *Window) SamplesSince(t float64) []Sample {
	var out []Sample
	for i := 0; i < w.count; i++ {
		s := w.at(i)
		if s.Time > t {
			out = append(out, s)
		}
	}
	return out
}

// Clone returns an independent copy of the window. Copy-on-write
// consumers (the read replica's snapshot store) clone a window before
// appending to it, so readers of the previous snapshot never observe
// mutation.
func (w *Window) Clone() *Window {
	cp := *w
	cp.samples = make([]Sample, len(w.samples))
	copy(cp.samples, w.samples)
	return &cp
}

// Summary computes the quartile Stat over the samples in the last `span`
// seconds (ending at the newest sample), matching the paper's variable-
// timescale queries: "data collected and averaged for a specific time
// window". Accuracy combines sample-count saturation with how much of the
// requested span the samples actually cover.
func (w *Window) Summary(span float64) Stat {
	latest, ok := w.Latest()
	if !ok {
		return NoData()
	}
	if span <= 0 {
		// "current": just the most recent measurement.
		return Exact(latest.Value).WithAccuracy(0.5)
	}
	cut := latest.Time - span
	vals := w.Since(cut)
	st := Quartiles(vals)
	if !st.Valid() {
		return NoData()
	}
	// Coverage: fraction of the span the retained samples actually cover.
	oldest := w.at(0).Time
	covered := latest.Time - oldest
	if covered > span {
		covered = span
	}
	coverage := 1.0
	if span > 0 && w.count > 1 {
		coverage = covered / span
	} else if w.count == 1 {
		coverage = 0.5
	}
	return st.WithAccuracy(st.Accuracy * coverage)
}
