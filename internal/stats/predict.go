package stats

import "math"

// Predictor estimates future values of a time series. The paper (§4.4)
// notes that "initial implementations may only support historical
// performance, or use a simplistic model to predict future performance
// from current and historical data" — these are those simplistic models.
type Predictor interface {
	// Predict returns the expected value `horizon` seconds after the last
	// sample, with a confidence in [0,1].
	Predict(samples []Sample, horizon float64) (value, confidence float64)
	Name() string
}

// LastValue predicts the most recent observation (random-walk model).
type LastValue struct{}

// Name implements Predictor.
func (LastValue) Name() string { return "last-value" }

// Predict implements Predictor.
func (LastValue) Predict(samples []Sample, horizon float64) (float64, float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	// Confidence decays with horizon relative to observed history length.
	conf := 0.8
	if n := len(samples); n > 1 {
		hist := samples[n-1].Time - samples[0].Time
		if hist > 0 {
			conf = 0.8 * math.Min(1, hist/(hist+horizon))
		}
	}
	return samples[len(samples)-1].Value, conf
}

// MovingAverage predicts the mean of the last K samples.
type MovingAverage struct {
	K int // number of samples; 0 means all
}

// Name implements Predictor.
func (m MovingAverage) Name() string { return "moving-average" }

// Predict implements Predictor.
func (m MovingAverage) Predict(samples []Sample, horizon float64) (float64, float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	k := m.K
	if k <= 0 || k > n {
		k = n
	}
	var sum float64
	for _, s := range samples[n-k:] {
		sum += s.Value
	}
	return sum / float64(k), float64(k) / float64(k+2)
}

// EWMA predicts with an exponentially weighted moving average.
type EWMA struct {
	Alpha float64 // smoothing factor in (0,1]; typical 0.25
}

// Name implements Predictor.
func (e EWMA) Name() string { return "ewma" }

// Predict implements Predictor.
func (e EWMA) Predict(samples []Sample, horizon float64) (float64, float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.25
	}
	v := samples[0].Value
	for _, s := range samples[1:] {
		v = a*s.Value + (1-a)*v
	}
	return v, float64(len(samples)) / float64(len(samples)+2)
}

// LinearTrend fits value = a + b*t by least squares and extrapolates.
// Useful when load ramps steadily; degrades to LastValue with <2 samples.
type LinearTrend struct{}

// Name implements Predictor.
func (LinearTrend) Name() string { return "linear-trend" }

// Predict implements Predictor.
func (LinearTrend) Predict(samples []Sample, horizon float64) (float64, float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return samples[0].Value, 0.3
	}
	var st, sv, stt, stv float64
	for _, s := range samples {
		st += s.Time
		sv += s.Value
		stt += s.Time * s.Time
		stv += s.Time * s.Value
	}
	fn := float64(n)
	den := fn*stt - st*st
	if den == 0 {
		return sv / fn, 0.3
	}
	b := (fn*stv - st*sv) / den
	a := (sv - b*st) / fn
	t := samples[n-1].Time + horizon
	pred := a + b*t
	// Confidence from fit quality (1 - normalized residual).
	var ss, ssRes float64
	mean := sv / fn
	for _, s := range samples {
		ss += (s.Value - mean) * (s.Value - mean)
		r := s.Value - (a + b*s.Time)
		ssRes += r * r
	}
	conf := 0.5
	if ss > 0 {
		conf = math.Max(0, math.Min(1, 1-ssRes/ss)) * float64(n) / float64(n+2)
	}
	return pred, conf
}

// PredictStat turns a point prediction into a Stat by reusing the
// historical spread around the predicted center: the quartile offsets of
// the samples are translated so their median sits at the prediction. This
// keeps the variability information while moving the location, which is
// what a future-timeframe Remos query reports.
func PredictStat(samples []Sample, p Predictor, horizon float64) Stat {
	if len(samples) == 0 {
		return NoData()
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = s.Value
	}
	hist := Quartiles(vals)
	center, conf := p.Predict(samples, horizon)
	shift := center - hist.Median
	out := Stat{
		Min:     hist.Min + shift,
		Q1:      hist.Q1 + shift,
		Median:  center,
		Q3:      hist.Q3 + shift,
		Max:     hist.Max + shift,
		Samples: hist.Samples,
	}
	return out.WithAccuracy(hist.Accuracy * conf).ClampNonNegative()
}
