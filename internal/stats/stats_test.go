package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestExactAndNoData(t *testing.T) {
	e := Exact(42)
	if !e.Valid() || e.Median != 42 || e.Min != 42 || e.Max != 42 || e.Accuracy != 1 {
		t.Fatalf("Exact = %+v", e)
	}
	nd := NoData()
	if nd.Valid() || nd.Accuracy != 0 {
		t.Fatalf("NoData = %+v", nd)
	}
	if nd.String() != "no-data" {
		t.Fatalf("String = %q", nd.String())
	}
}

func TestQuartilesKnown(t *testing.T) {
	// 1..9: Q1=3, median=5, Q3=7 under R-7 interpolation.
	s := Quartiles([]float64{9, 1, 8, 2, 7, 3, 6, 4, 5})
	if s.Min != 1 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Q1 != 3 || s.Median != 5 || s.Q3 != 7 {
		t.Fatalf("quartiles = %v %v %v", s.Q1, s.Median, s.Q3)
	}
	if s.IQR() != 4 {
		t.Fatalf("IQR = %v", s.IQR())
	}
	if s.Samples != 9 {
		t.Fatalf("Samples = %d", s.Samples)
	}
}

func TestQuartilesInterpolation(t *testing.T) {
	s := Quartiles([]float64{1, 2, 3, 4})
	// positions: Q1 at 0.75 -> 1.75; median at 1.5 -> 2.5; Q3 at 2.25 -> 3.25
	if math.Abs(s.Q1-1.75) > 1e-12 || math.Abs(s.Median-2.5) > 1e-12 || math.Abs(s.Q3-3.25) > 1e-12 {
		t.Fatalf("got %+v", s)
	}
}

func TestQuartilesSingle(t *testing.T) {
	s := Quartiles([]float64{5})
	if !s.Ordered() || s.Median != 5 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("got %+v", s)
	}
}

func TestQuartilesDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Quartiles(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

// Property: quartile ordering invariant holds for any sample set.
func TestQuickQuartilesOrdered(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		s := Quartiles(clean)
		if len(clean) == 0 {
			return !s.Valid()
		}
		return s.Ordered() && s.Accuracy > 0 && s.Accuracy <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quartiles bound the data.
func TestQuickQuartilesBoundData(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Quartiles(clean)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinStatAddStat(t *testing.T) {
	a := Stat{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5, Accuracy: 0.9, Samples: 10}
	b := Stat{Min: 2, Q1: 2, Median: 2, Q3: 6, Max: 7, Accuracy: 0.5, Samples: 3}
	m := MinStat(a, b)
	if m.Min != 1 || m.Median != 2 || m.Q3 != 4 || m.Max != 5 {
		t.Fatalf("MinStat = %+v", m)
	}
	if m.Accuracy != 0.5 || m.Samples != 3 {
		t.Fatalf("MinStat meta = %+v", m)
	}
	s := AddStat(a, b)
	if s.Min != 3 || s.Median != 5 || s.Max != 12 {
		t.Fatalf("AddStat = %+v", s)
	}
	// Identity with NoData.
	if MinStat(a, NoData()) != a || MinStat(NoData(), b) != b {
		t.Fatal("MinStat NoData identity broken")
	}
	if AddStat(NoData(), a) != a {
		t.Fatal("AddStat NoData identity broken")
	}
}

func TestScaleClamp(t *testing.T) {
	a := Stat{Min: -2, Q1: -1, Median: 0, Q3: 1, Max: 2, Accuracy: 1, Samples: 5}
	c := a.ClampNonNegative()
	if c.Min != 0 || c.Q1 != 0 || c.Median != 0 || c.Q3 != 1 {
		t.Fatalf("clamped = %+v", c)
	}
	s := Exact(10).Scale(0.5)
	if s.Median != 5 {
		t.Fatalf("scaled = %+v", s)
	}
}

func TestSubFrom(t *testing.T) {
	util := Stat{Min: 10, Q1: 20, Median: 30, Q3: 40, Max: 50, Accuracy: 0.8, Samples: 9}
	avail := SubFrom(100, util)
	want := Stat{Min: 50, Q1: 60, Median: 70, Q3: 80, Max: 90, Accuracy: 0.8, Samples: 9}
	if avail != want {
		t.Fatalf("SubFrom = %+v, want %+v", avail, want)
	}
	if !avail.Ordered() {
		t.Fatal("not ordered")
	}
	// Over-utilization clamps to zero.
	over := SubFrom(25, util)
	if over.Min != 0 || over.Q1 != 0 || !over.Ordered() {
		t.Fatalf("clamped = %+v", over)
	}
	if SubFrom(100, NoData()).Valid() {
		t.Fatal("SubFrom of NoData produced data")
	}
}

func TestWithAccuracyClamps(t *testing.T) {
	if Exact(1).WithAccuracy(2).Accuracy != 1 {
		t.Fatal("accuracy > 1 not clamped")
	}
	if Exact(1).WithAccuracy(-1).Accuracy != 0 {
		t.Fatal("accuracy < 0 not clamped")
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(4, 0)
	for i := 0; i < 6; i++ {
		if err := w.Add(float64(i), float64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want 4", w.Len())
	}
	if w.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", w.Dropped())
	}
	last, ok := w.Latest()
	if !ok || last.Value != 50 {
		t.Fatalf("Latest = %+v", last)
	}
	vals := w.Since(3)
	if len(vals) != 3 || vals[0] != 30 {
		t.Fatalf("Since(3) = %v", vals)
	}
	all := w.Samples()
	if len(all) != 4 || all[0].Time != 2 {
		t.Fatalf("Samples = %v", all)
	}
}

func TestWindowOutOfOrderRejected(t *testing.T) {
	w := NewWindow(4, 0)
	w.Add(5, 1)
	if err := w.Add(4, 2); err == nil {
		t.Fatal("out-of-order sample accepted")
	}
	// Equal timestamps are fine (two pollers at the same tick).
	if err := w.Add(5, 3); err != nil {
		t.Fatal(err)
	}
}

func TestWindowMaxAge(t *testing.T) {
	w := NewWindow(100, 10)
	for i := 0; i <= 20; i++ {
		w.Add(float64(i), 1)
	}
	// Samples older than 20-10=10 expire.
	if w.Len() != 11 {
		t.Fatalf("Len = %d, want 11", w.Len())
	}
	if w.Samples()[0].Time != 10 {
		t.Fatalf("oldest = %v", w.Samples()[0])
	}
}

func TestWindowSummary(t *testing.T) {
	w := NewWindow(100, 0)
	if w.Summary(10).Valid() {
		t.Fatal("empty window produced data")
	}
	for i := 0; i < 10; i++ {
		w.Add(float64(i), float64(i))
	}
	s := w.Summary(4) // samples at t in [5,9]: values 5..9
	if s.Min != 5 || s.Max != 9 {
		t.Fatalf("Summary(4) = %+v", s)
	}
	if s.Accuracy <= 0 || s.Accuracy > 1 {
		t.Fatalf("accuracy = %v", s.Accuracy)
	}
	// span 0 means "current": latest value only.
	cur := w.Summary(0)
	if cur.Median != 9 {
		t.Fatalf("current = %+v", cur)
	}
}

func TestWindowSummaryCoveragePenalty(t *testing.T) {
	w := NewWindow(100, 0)
	w.Add(0, 1)
	w.Add(1, 2)
	short := w.Summary(1)  // fully covered
	long := w.Summary(100) // 1s of data over a 100s request
	if long.Accuracy >= short.Accuracy {
		t.Fatalf("coverage penalty missing: long=%v short=%v", long.Accuracy, short.Accuracy)
	}
}

func TestPredictors(t *testing.T) {
	var samples []Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, Sample{Time: float64(i), Value: 2*float64(i) + 1})
	}
	lv, conf := LastValue{}.Predict(samples, 5)
	if lv != 19 || conf <= 0 {
		t.Fatalf("LastValue = %v conf %v", lv, conf)
	}
	ma, _ := MovingAverage{K: 2}.Predict(samples, 5)
	if ma != 18 {
		t.Fatalf("MovingAverage = %v", ma)
	}
	maAll, _ := MovingAverage{}.Predict(samples, 5)
	if maAll != 10 { // mean of 1,3,...,19
		t.Fatalf("MovingAverage all = %v", maAll)
	}
	lt, conf := LinearTrend{}.Predict(samples, 5)
	want := 2*14.0 + 1 // extrapolate to t=14
	if math.Abs(lt-want) > 1e-9 {
		t.Fatalf("LinearTrend = %v, want %v", lt, want)
	}
	if conf < 0.7 {
		t.Fatalf("perfect fit confidence = %v", conf)
	}
	ew, _ := EWMA{Alpha: 1}.Predict(samples, 5)
	if ew != 19 { // alpha=1 -> last value
		t.Fatalf("EWMA(1) = %v", ew)
	}
}

func TestPredictorsEmptyAndDegenerate(t *testing.T) {
	for _, p := range []Predictor{LastValue{}, MovingAverage{}, EWMA{}, LinearTrend{}} {
		v, c := p.Predict(nil, 1)
		if v != 0 || c != 0 {
			t.Fatalf("%s on empty = %v, %v", p.Name(), v, c)
		}
	}
	one := []Sample{{Time: 0, Value: 7}}
	v, _ := LinearTrend{}.Predict(one, 10)
	if v != 7 {
		t.Fatalf("LinearTrend single = %v", v)
	}
	// Identical timestamps: no trend denominator.
	same := []Sample{{Time: 1, Value: 2}, {Time: 1, Value: 4}}
	v, _ = LinearTrend{}.Predict(same, 1)
	if v != 3 {
		t.Fatalf("LinearTrend degenerate = %v", v)
	}
}

func TestPredictStat(t *testing.T) {
	var samples []Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		samples = append(samples, Sample{Time: float64(i), Value: 100 + rng.Float64()*10})
	}
	st := PredictStat(samples, LastValue{}, 10)
	if !st.Valid() || !st.Ordered() {
		t.Fatalf("PredictStat = %+v", st)
	}
	// Median equals the prediction.
	pred, _ := LastValue{}.Predict(samples, 10)
	if math.Abs(st.Median-pred) > 1e-9 {
		t.Fatalf("median %v != prediction %v", st.Median, pred)
	}
	if PredictStat(nil, LastValue{}, 1).Valid() {
		t.Fatal("PredictStat on empty produced data")
	}
}

// Property: PredictStat always yields ordered, nonnegative quartiles.
func TestQuickPredictStatOrdered(t *testing.T) {
	f := func(raw []uint8) bool {
		var samples []Sample
		for i, r := range raw {
			samples = append(samples, Sample{Time: float64(i), Value: float64(r)})
		}
		for _, p := range []Predictor{LastValue{}, MovingAverage{K: 3}, EWMA{Alpha: 0.3}, LinearTrend{}} {
			st := PredictStat(samples, p, 7)
			if len(samples) == 0 {
				if st.Valid() {
					return false
				}
				continue
			}
			if !st.Ordered() || st.Min < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func BenchmarkQuartiles(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 512)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Quartiles(samples)
	}
}

func BenchmarkWindowAddSummary(b *testing.B) {
	w := NewWindow(256, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(float64(i), float64(i%17))
		if i%64 == 0 {
			w.Summary(60)
		}
	}
}
