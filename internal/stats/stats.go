// Package stats implements the statistical machinery of §4.4 of the Remos
// paper: every dynamic quantity is reported as a set of quartile measures
// plus an estimation-accuracy value, because network measurements do not
// follow a known distribution. It also provides the sliding sample windows
// the Collector keeps per link and the simple predictors the Modeler uses
// for future-timeframe queries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stat is the probabilistic quartile summary Remos attaches to every
// dynamic quantity (bandwidth, latency). Min/Q1/Median/Q3/Max are the
// 0/25/50/75/100th percentiles of the underlying samples.
//
// Accuracy is in [0,1]: a measure of how much the estimate can be trusted,
// derived from how many samples back it and how much of the requested
// window they cover. 1 means exact (e.g. a physical capacity), 0 means no
// data at all.
type Stat struct {
	Min      float64
	Q1       float64
	Median   float64
	Q3       float64
	Max      float64
	Accuracy float64
	Samples  int

	// Age is how many seconds old the newest underlying sample was when
	// the query was answered (0 for invariant quantities). Composite
	// stats carry the age of their stalest input, so an application can
	// always tell how current an answer is — the collection pipeline
	// keeps answering through agent outages and reports the staleness
	// here instead of failing.
	Age float64
}

// Exact returns a Stat for an invariant quantity such as a physical link
// capacity: all quartiles equal, full accuracy.
func Exact(v float64) Stat {
	return Stat{Min: v, Q1: v, Median: v, Q3: v, Max: v, Accuracy: 1, Samples: 1}
}

// NoData is the Stat returned when no samples exist.
func NoData() Stat { return Stat{Accuracy: 0, Samples: 0} }

// Valid reports whether the Stat carries any information.
func (s Stat) Valid() bool { return s.Samples > 0 }

// IQR returns the interquartile range, the paper's preferred variability
// measure for unknown distributions.
func (s Stat) IQR() float64 { return s.Q3 - s.Q1 }

// Ordered checks the quartile ordering invariant.
func (s Stat) Ordered() bool {
	return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
}

// Scale returns the Stat with every quartile multiplied by k (k >= 0).
// Accuracy is unchanged: scaling is exact.
func (s Stat) Scale(k float64) Stat {
	if k < 0 {
		panic(fmt.Sprintf("stats: negative scale %v", k))
	}
	s.Min *= k
	s.Q1 *= k
	s.Median *= k
	s.Q3 *= k
	s.Max *= k
	return s
}

// ClampNonNegative truncates negative quartiles at zero. Available
// bandwidth derived by subtraction can transiently go negative when a
// counter window straddles a burst; Remos never reports negative
// availability.
func (s Stat) ClampNonNegative() Stat {
	s.Min = math.Max(0, s.Min)
	s.Q1 = math.Max(0, s.Q1)
	s.Median = math.Max(0, s.Median)
	s.Q3 = math.Max(0, s.Q3)
	s.Max = math.Max(0, s.Max)
	return s
}

// MinStat returns the element-wise minimum of two Stats: the summary of
// the bottleneck when a flow crosses both quantities in series. Accuracy
// combines pessimistically (min), because the weaker estimate dominates.
func MinStat(a, b Stat) Stat {
	if !a.Valid() {
		return b
	}
	if !b.Valid() {
		return a
	}
	return Stat{
		Min:      math.Min(a.Min, b.Min),
		Q1:       math.Min(a.Q1, b.Q1),
		Median:   math.Min(a.Median, b.Median),
		Q3:       math.Min(a.Q3, b.Q3),
		Max:      math.Min(a.Max, b.Max),
		Accuracy: math.Min(a.Accuracy, b.Accuracy),
		Samples:  minInt(a.Samples, b.Samples),
		Age:      math.Max(a.Age, b.Age),
	}
}

// SubFrom returns the distribution of (c - X) given the distribution of X:
// available bandwidth from a capacity and a utilization summary. Order
// reverses (high utilization = low availability) and negatives clamp to
// zero, since measured utilization can transiently exceed nominal capacity.
func SubFrom(c float64, util Stat) Stat {
	if !util.Valid() {
		return NoData()
	}
	out := Stat{
		Min:      c - util.Max,
		Q1:       c - util.Q3,
		Median:   c - util.Median,
		Q3:       c - util.Q1,
		Max:      c - util.Min,
		Accuracy: util.Accuracy,
		Samples:  util.Samples,
		Age:      util.Age,
	}
	return out.ClampNonNegative()
}

// AddStat returns the element-wise sum (series latency composition).
func AddStat(a, b Stat) Stat {
	if !a.Valid() {
		return b
	}
	if !b.Valid() {
		return a
	}
	return Stat{
		Min:      a.Min + b.Min,
		Q1:       a.Q1 + b.Q1,
		Median:   a.Median + b.Median,
		Q3:       a.Q3 + b.Q3,
		Max:      a.Max + b.Max,
		Accuracy: math.Min(a.Accuracy, b.Accuracy),
		Samples:  minInt(a.Samples, b.Samples),
		Age:      math.Max(a.Age, b.Age),
	}
}

func (s Stat) String() string {
	if !s.Valid() {
		return "no-data"
	}
	return fmt.Sprintf("[%.3g %.3g %.3g %.3g %.3g] acc=%.2f n=%d",
		s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Accuracy, s.Samples)
}

// Quartiles summarizes a sample set. The input is not modified. Accuracy
// here reflects only sample count saturation (n/(n+4)); callers with
// window-coverage information should overwrite it via WithAccuracy.
func Quartiles(samples []float64) Stat {
	n := len(samples)
	if n == 0 {
		return NoData()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	st := Stat{
		Min:     s[0],
		Q1:      percentileSorted(s, 0.25),
		Median:  percentileSorted(s, 0.50),
		Q3:      percentileSorted(s, 0.75),
		Max:     s[n-1],
		Samples: n,
	}
	st.Accuracy = float64(n) / float64(n+4)
	return st
}

// WithAccuracy returns the Stat with accuracy replaced (clamped to [0,1]).
func (s Stat) WithAccuracy(a float64) Stat {
	s.Accuracy = math.Max(0, math.Min(1, a))
	return s
}

// AgeDecayed discounts Accuracy for data age: it halves for every
// halfLife seconds the newest sample is old. This is how an agent outage
// surfaces to applications — the channel keeps answering from the last
// known samples, but the estimation-accuracy measure (§4.4) decays
// toward zero instead of the query turning into a hard error. halfLife
// <= 0 disables decay.
func (s Stat) AgeDecayed(halfLife float64) Stat {
	if halfLife <= 0 || s.Age <= 0 {
		return s
	}
	return s.WithAccuracy(s.Accuracy * math.Exp2(-s.Age/halfLife))
}

// percentileSorted interpolates the p-th percentile (p in [0,1]) of an
// ascending sample set using the linear method (R-7, the spreadsheet
// default).
func percentileSorted(s []float64, p float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
