package maxmin

import (
	"fmt"
	"math"
)

// ClassedProblem is the §4.2 three-class flow query:
//
//	remos_flow_info(fixed_flows, variable_flows, independent_flow, timeframe)
//
// "Remos tries to satisfy the fixed_flows, then the variable_flows
// simultaneously, and finally the independent_flow." Fixed flows name an
// absolute bandwidth; variable flows name relative requirements and share
// proportionally; independent flows absorb whatever is left.
type ClassedProblem struct {
	Capacity    []float64
	Fixed       []Demand // Cap = requested bandwidth (required > 0)
	Variable    []Demand // Weight = relative requirement; Cap optional
	Independent []Demand // weights ignored (equal split of leftovers)

	// FixedHeadroom reserves a fraction of every resource from the fixed
	// class: fixed flows solve against (1-FixedHeadroom)×Capacity, so
	// later classes always see at least that fraction. The network
	// simulator uses this to model that non-responsive traffic crushes
	// but never fully starves elastic flows. Must be in [0,1).
	FixedHeadroom float64
}

// ClassedResult carries per-class allocations plus the residual capacity
// after all three classes, which the modeler reports as remaining
// availability.
type ClassedResult struct {
	Fixed       []float64
	Variable    []float64
	Independent []float64
	Residual    []float64

	// FixedSatisfied[i] reports whether fixed flow i received its full
	// request; the paper's "filled in to the extent that the flow
	// requests can be satisfied".
	FixedSatisfied []bool
}

// SolveClasses resolves the three classes sequentially. Each phase sees
// the capacity left over by the previous one.
func SolveClasses(cp *ClassedProblem) *ClassedResult {
	if cp.FixedHeadroom < 0 || cp.FixedHeadroom >= 1 {
		panic(fmt.Sprintf("maxmin: FixedHeadroom %v out of [0,1)", cp.FixedHeadroom))
	}
	res := &ClassedResult{}
	capacity := append([]float64(nil), cp.Capacity...)

	// Phase 1: fixed flows. Equal weights, capped at the request; if a
	// bottleneck cannot fit them all, max-min decides who gets how much of
	// their request. The fixed class sees capacities shrunk by the
	// headroom fraction.
	fixedCap := capacity
	if cp.FixedHeadroom > 0 {
		fixedCap = make([]float64, len(capacity))
		for i, c := range capacity {
			fixedCap[i] = c * (1 - cp.FixedHeadroom)
		}
	}
	fixed := make([]Demand, len(cp.Fixed))
	for i, d := range cp.Fixed {
		if d.Cap <= 0 {
			panic("maxmin: fixed flow without a positive requested bandwidth")
		}
		fixed[i] = Demand{Resources: d.Resources, Weight: 1, Cap: d.Cap}
	}
	p1 := &Problem{Capacity: fixedCap, Demands: fixed}
	res.Fixed = p1.Solve()
	res.FixedSatisfied = make([]bool, len(fixed))
	for i := range fixed {
		res.FixedSatisfied[i] = res.Fixed[i] >= fixed[i].Cap-eps
	}
	// Residual relative to the FULL capacity: the headroom remains for
	// the later classes. In-place: capacity already holds its own copy of
	// the full capacities and is not aliased by fixedCap when headroom
	// shrunk it.
	capacity = (&Problem{Capacity: capacity, Demands: fixed}).residualInto(capacity, res.Fixed)

	// Phase 2: variable flows. Weight = relative requirement.
	variable := make([]Demand, len(cp.Variable))
	for i, d := range cp.Variable {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		variable[i] = Demand{Resources: d.Resources, Weight: w, Cap: d.Cap}
	}
	p2 := &Problem{Capacity: capacity, Demands: variable}
	res.Variable = p2.Solve()
	capacity = p2.residualInto(capacity, res.Variable)

	// Phase 3: independent flows split the leftovers equally.
	independent := make([]Demand, len(cp.Independent))
	for i, d := range cp.Independent {
		independent[i] = Demand{Resources: d.Resources, Weight: 1}
	}
	p3 := &Problem{Capacity: capacity, Demands: independent}
	res.Independent = p3.Solve()
	res.Residual = p3.Residual(res.Independent)

	// Infinite allocations only arise for resource-free demands; report
	// them as 0 for independent flows with no path (same-node flows are
	// filtered before reaching the solver).
	for i, a := range res.Independent {
		if math.IsInf(a, 1) && len(independent[i].Resources) == 0 {
			res.Independent[i] = math.Inf(1)
		}
	}
	return res
}
