package maxmin

import "math"

// SolveProportional computes the naive proportional-share allocation:
// each demand receives, on every resource it crosses, capacity scaled by
// its weight fraction among that resource's users, and is limited by the
// worst such share along its path (plus its cap).
//
// This is the simpler sharing model one might assume instead of max-min
// (§4.2 discusses the choice; §4.3 recommends verifying the equal-share
// assumption with queries). It is provided as the comparison policy for
// the sharing-policy ablation: unlike max-min it never redistributes the
// bandwidth that bottlenecked-elsewhere flows leave behind, so it
// systematically under-promises on shared links — the ablation measures
// exactly how much.
func (p *Problem) SolveProportional() []float64 {
	// Weight sums per resource.
	wsum := make([]float64, len(p.Capacity))
	for _, d := range p.Demands {
		for _, r := range d.Resources {
			wsum[r] += d.Weight
		}
	}
	out := make([]float64, len(p.Demands))
	for i, d := range p.Demands {
		if len(d.Resources) == 0 {
			if d.Cap > 0 {
				out[i] = d.Cap
			} else {
				out[i] = math.Inf(1)
			}
			continue
		}
		share := math.Inf(1)
		for _, r := range d.Resources {
			s := p.Capacity[r] * d.Weight / wsum[r]
			if s < share {
				share = s
			}
		}
		if d.Cap > 0 && d.Cap < share {
			share = d.Cap
		}
		out[i] = share
	}
	return out
}
