package maxmin

import (
	"math"
	"math/rand"
	"testing"
)

func TestProportionalEqualsMaxMinWhenSymmetric(t *testing.T) {
	p := &Problem{
		Capacity: []float64{30},
		Demands: []Demand{
			{Resources: []ResourceID{0}, Weight: 1},
			{Resources: []ResourceID{0}, Weight: 1},
			{Resources: []ResourceID{0}, Weight: 1},
		},
	}
	prop := p.SolveProportional()
	mm := p.Solve()
	for i := range prop {
		if math.Abs(prop[i]-mm[i]) > tol {
			t.Fatalf("symmetric case diverged: %v vs %v", prop, mm)
		}
	}
}

func TestProportionalUnderPromisesVsMaxMin(t *testing.T) {
	// The classic topology: flow B shares link 0 with A, but A is
	// bottlenecked on link 1. Max-min gives B the leftovers (8); the
	// proportional model blindly splits link 0 (5).
	p := &Problem{
		Capacity: []float64{10, 2},
		Demands: []Demand{
			{Resources: []ResourceID{0, 1}, Weight: 1}, // A: stuck at 2
			{Resources: []ResourceID{0}, Weight: 1},    // B
		},
	}
	prop := p.SolveProportional()
	mm := p.Solve()
	if math.Abs(mm[1]-8) > tol {
		t.Fatalf("maxmin B = %v", mm[1])
	}
	if math.Abs(prop[1]-5) > tol {
		t.Fatalf("proportional B = %v", prop[1])
	}
	if prop[1] >= mm[1] {
		t.Fatal("proportional did not under-promise")
	}
}

func TestProportionalRespectsCapsAndFreeDemands(t *testing.T) {
	p := &Problem{
		Capacity: []float64{10},
		Demands: []Demand{
			{Resources: []ResourceID{0}, Weight: 1, Cap: 2},
			{Weight: 1},
			{Weight: 1, Cap: 3},
		},
	}
	out := p.SolveProportional()
	if out[0] != 2 {
		t.Fatalf("capped = %v", out[0])
	}
	if !math.IsInf(out[1], 1) || out[2] != 3 {
		t.Fatalf("free demands = %v", out[1:])
	}
}

// Property: proportional never exceeds max-min for any demand (max-min
// is Pareto-optimal; proportional only wastes).
func TestQuickProportionalNeverBeatsMaxMin(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		nRes := 1 + rng.Intn(4)
		p := &Problem{Capacity: make([]float64, nRes)}
		for r := range p.Capacity {
			p.Capacity[r] = 1 + rng.Float64()*100
		}
		for d := 0; d < 1+rng.Intn(6); d++ {
			dem := Demand{Weight: 0.5 + rng.Float64()*3}
			dem.Resources = []ResourceID{ResourceID(rng.Intn(nRes))}
			if rng.Float64() < 0.5 && nRes > 1 {
				r2 := ResourceID(rng.Intn(nRes))
				if r2 != dem.Resources[0] {
					dem.Resources = append(dem.Resources, r2)
				}
			}
			p.Demands = append(p.Demands, dem)
		}
		prop := p.SolveProportional()
		mm := p.Solve()
		// Proportional must at least be feasible.
		if err := p.Feasible(prop, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var propSum, mmSum float64
		for i := range prop {
			propSum += prop[i]
			mmSum += mm[i]
		}
		if propSum > mmSum+1e-6 {
			t.Fatalf("trial %d: proportional total %v exceeds max-min %v", trial, propSum, mmSum)
		}
	}
}
