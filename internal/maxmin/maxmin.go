// Package maxmin implements weighted max-min fair bandwidth allocation
// (Jaffe, "Bottleneck flow control", 1981), the sharing policy Remos
// assumes for bottleneck links (§4.2): "all else being equal, the
// bottleneck link bandwidth will be shared equally by all flows (not being
// bottlenecked elsewhere)".
//
// The same solver serves two masters:
//
//   - the network simulator, which uses it to decide what bandwidth each
//     active flow actually receives, and
//   - the Remos modeler, which uses it to answer remos_flow_info queries
//     for the three flow classes of §4.2 (fixed, variable, independent).
//
// Resources are abstract: a resource is anything with a capacity that
// flows consume in series — one direction of a link, or the internal
// bandwidth of a router (the paper's Figure 1 case).
package maxmin

import (
	"fmt"
	"math"
	"sync"
)

// ResourceID indexes a capacity in a Problem.
type ResourceID int

// Demand is one flow's claim on a set of resources it uses in series.
type Demand struct {
	// Resources the flow consumes capacity on. Duplicates are legal (a
	// route that crosses the same router's backplane twice) and count
	// double on that resource.
	Resources []ResourceID

	// Weight scales the flow's share when competing at a bottleneck.
	// Variable flows use their relative bandwidth requirement as the
	// weight (the paper's 3 : 4.5 : 9 example). Must be positive.
	Weight float64

	// Cap, when positive, limits the allocation (fixed flows set Cap to
	// their requested bandwidth; rate-limited traffic sources set it to
	// their sending rate). Zero means uncapped.
	Cap float64
}

// Problem is a set of capacitated resources and demands over them.
type Problem struct {
	Capacity []float64
	Demands  []Demand
}

// eps guards float comparisons; capacities are in bits/second so 1e-6 bps
// is far below any meaningful quantity.
const eps = 1e-6

// solveScratch pools Solve's working state. The solver runs on two hot
// paths — every simulator bandwidth recomputation and every
// remos_flow_info phase — and all of this state is dead when Solve
// returns; only the allocation slice escapes.
type solveScratch struct {
	active   []bool
	usage    [][]int
	residual []float64
	wsum     []float64
}

var scratchPool = sync.Pool{New: func() any { return new(solveScratch) }}

func (sc *solveScratch) boolsN(n int) []bool {
	if cap(sc.active) < n {
		sc.active = make([]bool, n)
	}
	return sc.active[:n]
}

func (sc *solveScratch) usageN(n int) [][]int {
	if cap(sc.usage) < n {
		sc.usage = make([][]int, n)
	}
	u := sc.usage[:n]
	for i := range u {
		u[i] = u[i][:0] // keep grown inner slices, drop stale contents
	}
	return u
}

func (sc *solveScratch) floatsN(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// Solve computes the weighted max-min fair allocation by progressive
// filling: all active flows' normalized rates rise together; a flow
// freezes when it hits its cap or when one of its resources saturates.
// The returned slice has one allocation per demand, in order.
//
// Demands with no resources are only limited by their caps (uncapped ones
// get +Inf, meaning "unconstrained by the network"; callers decide what
// that means). Solve panics on non-positive weights or capacities — those
// are construction bugs, not runtime conditions.
func (p *Problem) Solve() []float64 {
	for i, c := range p.Capacity {
		if c < 0 || math.IsNaN(c) {
			panic(fmt.Sprintf("maxmin: negative capacity %v at resource %d", c, i))
		}
	}
	n := len(p.Demands)
	alloc := make([]float64, n) // escapes: always freshly allocated
	sc := scratchPool.Get().(*solveScratch)
	defer scratchPool.Put(sc)
	// No zeroing needed for active: the demand loop below writes every
	// index before anything reads it.
	active := sc.boolsN(n)
	// usage[r] lists demand indices using resource r (with multiplicity).
	usage := sc.usageN(len(p.Capacity))
	for i, d := range p.Demands {
		if d.Weight <= 0 || math.IsNaN(d.Weight) {
			panic(fmt.Sprintf("maxmin: non-positive weight %v on demand %d", d.Weight, i))
		}
		if d.Cap < 0 {
			panic(fmt.Sprintf("maxmin: negative cap %v on demand %d", d.Cap, i))
		}
		active[i] = true
		for _, r := range d.Resources {
			if int(r) < 0 || int(r) >= len(p.Capacity) {
				panic(fmt.Sprintf("maxmin: demand %d references resource %d of %d", i, r, len(p.Capacity)))
			}
			usage[r] = append(usage[r], i)
		}
	}
	residual := sc.floatsN(&sc.residual, len(p.Capacity))
	copy(residual, p.Capacity)

	// Handle resource-free demands immediately.
	for i, d := range p.Demands {
		if len(d.Resources) == 0 {
			if d.Cap > 0 {
				alloc[i] = d.Cap
			} else {
				alloc[i] = math.Inf(1)
			}
			active[i] = false
		}
	}

	// level is the common normalized rate: each active demand i currently
	// holds alloc[i] = level * Weight_i (minus freezes applied earlier at
	// lower levels).
	remaining := 0
	for i := range active {
		if active[i] {
			remaining++
		}
	}
	wsums := sc.floatsN(&sc.wsum, len(p.Capacity))
	for remaining > 0 {
		// Find the largest uniform normalized increase t such that no
		// resource oversaturates and no cap is exceeded. The per-resource
		// active weight sums are kept for the apply step below — the
		// active set does not change in between.
		t := math.Inf(1)
		for r, users := range usage {
			var wsum float64
			for _, i := range users {
				if active[i] {
					wsum += p.Demands[i].Weight
				}
			}
			wsums[r] = wsum
			if wsum <= 0 {
				continue
			}
			cand := residual[r] / wsum
			if cand < t {
				t = cand
			}
		}
		for i, d := range p.Demands {
			if !active[i] || d.Cap <= 0 {
				continue
			}
			cand := (d.Cap - alloc[i]) / d.Weight
			if cand < t {
				t = cand
			}
		}
		if math.IsInf(t, 1) {
			// Active demands exist but none touches a finite constraint:
			// all their resources have no competing weight (impossible —
			// they themselves are weight) — can only happen with no
			// resources and no cap, already handled. Guard anyway.
			for i := range active {
				if active[i] {
					alloc[i] = math.Inf(1)
					active[i] = false
				}
			}
			break
		}
		if t < 0 {
			t = 0
		}
		// Apply the increase.
		for i, d := range p.Demands {
			if active[i] {
				alloc[i] += t * d.Weight
			}
		}
		for r := range usage {
			residual[r] -= t * wsums[r]
			if residual[r] < 0 {
				residual[r] = 0
			}
		}
		// Freeze demands at saturated resources or caps.
		frozen := 0
		for i, d := range p.Demands {
			if !active[i] {
				continue
			}
			if d.Cap > 0 && alloc[i] >= d.Cap-eps {
				alloc[i] = d.Cap
				active[i] = false
				frozen++
				continue
			}
			for _, r := range d.Resources {
				if residual[r] <= eps {
					active[i] = false
					frozen++
					break
				}
			}
		}
		if frozen == 0 {
			// t was limited by something but nothing froze: numerical
			// corner. Freeze the demand with the tightest constraint to
			// guarantee termination.
			for i := range active {
				if active[i] {
					active[i] = false
					frozen++
					break
				}
			}
		}
		remaining -= frozen
	}
	return alloc
}

// Residual returns the capacity left on each resource after the given
// allocation (never negative).
func (p *Problem) Residual(alloc []float64) []float64 {
	return p.residualInto(append([]float64(nil), p.Capacity...), alloc)
}

// residualInto subtracts the allocation from dst in place and returns
// it. dst must hold the resource capacities on entry — Residual passes a
// fresh copy; SolveClasses reuses its working capacity slice across
// phases to avoid the copies.
func (p *Problem) residualInto(dst []float64, alloc []float64) []float64 {
	for i, d := range p.Demands {
		a := alloc[i]
		if math.IsInf(a, 1) {
			continue
		}
		for _, r := range d.Resources {
			dst[r] -= a
			if dst[r] < 0 {
				dst[r] = 0
			}
		}
	}
	return dst
}

// Feasible checks that an allocation respects all capacities and caps
// within tolerance; used by tests and by the simulator's self-checks.
func (p *Problem) Feasible(alloc []float64, tol float64) error {
	if len(alloc) != len(p.Demands) {
		return fmt.Errorf("maxmin: allocation length %d != %d demands", len(alloc), len(p.Demands))
	}
	load := make([]float64, len(p.Capacity))
	for i, d := range p.Demands {
		a := alloc[i]
		if a < 0 {
			return fmt.Errorf("maxmin: negative allocation %v for demand %d", a, i)
		}
		if d.Cap > 0 && a > d.Cap+tol {
			return fmt.Errorf("maxmin: demand %d allocated %v above cap %v", i, a, d.Cap)
		}
		if math.IsInf(a, 1) {
			if len(d.Resources) > 0 {
				return fmt.Errorf("maxmin: demand %d infinite allocation with resources", i)
			}
			continue
		}
		for _, r := range d.Resources {
			load[r] += a
		}
	}
	for r, l := range load {
		if l > p.Capacity[r]+tol {
			return fmt.Errorf("maxmin: resource %d loaded %v above capacity %v", r, l, p.Capacity[r])
		}
	}
	return nil
}

// IsMaxMinFair verifies the bottleneck condition: every demand is either
// at its cap or crosses at least one saturated resource on which its
// normalized rate (alloc/weight) is maximal among that resource's users.
// This is the classical characterization of weighted max-min fairness.
func (p *Problem) IsMaxMinFair(alloc []float64, tol float64) error {
	if err := p.Feasible(alloc, tol); err != nil {
		return err
	}
	load := make([]float64, len(p.Capacity))
	for i, d := range p.Demands {
		if math.IsInf(alloc[i], 1) {
			continue
		}
		for _, r := range d.Resources {
			load[r] += alloc[i]
		}
	}
	for i, d := range p.Demands {
		if d.Cap > 0 && alloc[i] >= d.Cap-tol {
			continue // capped
		}
		if len(d.Resources) == 0 {
			if !math.IsInf(alloc[i], 1) {
				return fmt.Errorf("maxmin: free demand %d not unbounded", i)
			}
			continue
		}
		norm := alloc[i] / d.Weight
		ok := false
		for _, r := range d.Resources {
			if load[r] < p.Capacity[r]-tol {
				continue // not saturated
			}
			// Is demand i's normalized rate maximal on r?
			maximal := true
			for j, dj := range p.Demands {
				if usesResource(dj, int(r)) && alloc[j]/dj.Weight > norm+tol {
					maximal = false
					_ = j
					break
				}
			}
			if maximal {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("maxmin: demand %d (alloc %v) has no bottleneck", i, alloc[i])
		}
	}
	return nil
}

func usesResource(d Demand, r int) bool {
	for _, rr := range d.Resources {
		if int(rr) == r {
			return true
		}
	}
	return false
}
