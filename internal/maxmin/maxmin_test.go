package maxmin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-6

func TestEqualShareSingleLink(t *testing.T) {
	p := &Problem{
		Capacity: []float64{30},
		Demands: []Demand{
			{Resources: []ResourceID{0}, Weight: 1},
			{Resources: []ResourceID{0}, Weight: 1},
			{Resources: []ResourceID{0}, Weight: 1},
		},
	}
	alloc := p.Solve()
	for i, a := range alloc {
		if math.Abs(a-10) > tol {
			t.Fatalf("alloc[%d] = %v, want 10", i, a)
		}
	}
	if err := p.IsMaxMinFair(alloc, tol); err != nil {
		t.Fatal(err)
	}
}

// The classic three-link example: flows A (links 0,1), B (link 0), C (link 1).
// Capacities 10 and 20: A and B split link0 (5 each would leave link1 at 15
// for C)... max-min: level rises to 5 -> link0 saturates, A,B freeze at 5;
// C continues to 15 on link1.
func TestClassicBottleneck(t *testing.T) {
	p := &Problem{
		Capacity: []float64{10, 20},
		Demands: []Demand{
			{Resources: []ResourceID{0, 1}, Weight: 1}, // A
			{Resources: []ResourceID{0}, Weight: 1},    // B
			{Resources: []ResourceID{1}, Weight: 1},    // C
		},
	}
	alloc := p.Solve()
	want := []float64{5, 5, 15}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > tol {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
	if err := p.IsMaxMinFair(alloc, tol); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedShare(t *testing.T) {
	// Paper §4.2: requirements 3, 4.5, 9 relative; bottleneck 5.5 Mbps ->
	// 1, 1.5, 3 Mbps.
	p := &Problem{
		Capacity: []float64{5.5e6},
		Demands: []Demand{
			{Resources: []ResourceID{0}, Weight: 3},
			{Resources: []ResourceID{0}, Weight: 4.5},
			{Resources: []ResourceID{0}, Weight: 9},
		},
	}
	alloc := p.Solve()
	want := []float64{1e6, 1.5e6, 3e6}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1 {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
	if err := p.IsMaxMinFair(alloc, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCapFreesBandwidthForOthers(t *testing.T) {
	p := &Problem{
		Capacity: []float64{30},
		Demands: []Demand{
			{Resources: []ResourceID{0}, Weight: 1, Cap: 4},
			{Resources: []ResourceID{0}, Weight: 1},
			{Resources: []ResourceID{0}, Weight: 1},
		},
	}
	alloc := p.Solve()
	want := []float64{4, 13, 13}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > tol {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
}

func TestFreeDemand(t *testing.T) {
	p := &Problem{
		Capacity: []float64{10},
		Demands: []Demand{
			{Weight: 1},         // no resources, uncapped
			{Weight: 1, Cap: 7}, // no resources, capped
		},
	}
	alloc := p.Solve()
	if !math.IsInf(alloc[0], 1) {
		t.Fatalf("free uncapped = %v", alloc[0])
	}
	if alloc[1] != 7 {
		t.Fatalf("free capped = %v", alloc[1])
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &Problem{}
	if got := p.Solve(); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestZeroCapacityResource(t *testing.T) {
	p := &Problem{
		Capacity: []float64{0},
		Demands:  []Demand{{Resources: []ResourceID{0}, Weight: 1}},
	}
	alloc := p.Solve()
	if alloc[0] != 0 {
		t.Fatalf("alloc over dead link = %v", alloc[0])
	}
}

func TestDuplicateResourceCountsDouble(t *testing.T) {
	// A flow crossing the same resource twice gets half.
	p := &Problem{
		Capacity: []float64{10},
		Demands:  []Demand{{Resources: []ResourceID{0, 0}, Weight: 1}},
	}
	alloc := p.Solve()
	if math.Abs(alloc[0]-5) > tol {
		t.Fatalf("alloc = %v, want 5", alloc[0])
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, p := range map[string]*Problem{
		"negative weight": {Capacity: []float64{1}, Demands: []Demand{{Resources: []ResourceID{0}, Weight: -1}}},
		"zero weight":     {Capacity: []float64{1}, Demands: []Demand{{Resources: []ResourceID{0}}}},
		"bad resource":    {Capacity: []float64{1}, Demands: []Demand{{Resources: []ResourceID{5}, Weight: 1}}},
		"negative cap":    {Capacity: []float64{1}, Demands: []Demand{{Resources: []ResourceID{0}, Weight: 1, Cap: -2}}},
		"negative capcty": {Capacity: []float64{-1}, Demands: nil},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			p.Solve()
		}()
	}
}

func TestResidual(t *testing.T) {
	p := &Problem{
		Capacity: []float64{10, 20},
		Demands: []Demand{
			{Resources: []ResourceID{0, 1}, Weight: 1, Cap: 3},
		},
	}
	alloc := p.Solve()
	res := p.Residual(alloc)
	if math.Abs(res[0]-7) > tol || math.Abs(res[1]-17) > tol {
		t.Fatalf("residual = %v", res)
	}
}

func TestFeasibleDetectsViolations(t *testing.T) {
	p := &Problem{
		Capacity: []float64{10},
		Demands:  []Demand{{Resources: []ResourceID{0}, Weight: 1, Cap: 5}},
	}
	if err := p.Feasible([]float64{11}, tol); err == nil {
		t.Fatal("overload not detected")
	}
	if err := p.Feasible([]float64{6}, tol); err == nil {
		t.Fatal("cap violation not detected")
	}
	if err := p.Feasible([]float64{-1}, tol); err == nil {
		t.Fatal("negative allocation not detected")
	}
	if err := p.Feasible([]float64{1, 2}, tol); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

// Property: on random problems the solution is feasible and max-min fair.
func TestQuickRandomProblemsFair(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nRes := 1 + rng.Intn(6)
		nDem := 1 + rng.Intn(8)
		p := &Problem{Capacity: make([]float64, nRes)}
		for r := range p.Capacity {
			p.Capacity[r] = 1 + rng.Float64()*100
		}
		for d := 0; d < nDem; d++ {
			dem := Demand{Weight: 0.5 + rng.Float64()*4}
			used := map[int]bool{}
			for r := 0; r < 1+rng.Intn(nRes); r++ {
				rr := rng.Intn(nRes)
				if !used[rr] {
					used[rr] = true
					dem.Resources = append(dem.Resources, ResourceID(rr))
				}
			}
			if rng.Float64() < 0.3 {
				dem.Cap = rng.Float64() * 60
				if dem.Cap == 0 {
					dem.Cap = 1
				}
			}
			p.Demands = append(p.Demands, dem)
		}
		alloc := p.Solve()
		if err := p.IsMaxMinFair(alloc, 1e-5); err != nil {
			t.Fatalf("trial %d: %v\nproblem: %+v\nalloc: %v", trial, err, p, alloc)
		}
	}
}

// Property: scaling all capacities and caps scales the solution linearly.
func TestQuickScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Problem{Capacity: []float64{10 + rng.Float64()*50, 5 + rng.Float64()*20}}
		for d := 0; d < 4; d++ {
			dem := Demand{Weight: 1 + rng.Float64()}
			dem.Resources = []ResourceID{ResourceID(rng.Intn(2))}
			if rng.Float64() < 0.5 {
				dem.Cap = 1 + rng.Float64()*30
			}
			p.Demands = append(p.Demands, dem)
		}
		a1 := p.Solve()
		const k = 3.5
		p2 := &Problem{Capacity: []float64{p.Capacity[0] * k, p.Capacity[1] * k}}
		for _, d := range p.Demands {
			d2 := d
			d2.Cap = d.Cap * k
			p2.Demands = append(p2.Demands, d2)
		}
		a2 := p2.Solve()
		for i := range a1 {
			if math.Abs(a2[i]-k*a1[i]) > 1e-6*(1+a1[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveClassesPhases(t *testing.T) {
	// One 10 Mbps link. Fixed flow wants 2. Variable flows 1:3 share the
	// remaining 8 -> 2 and 6. Independent gets 0.
	cp := &ClassedProblem{
		Capacity: []float64{10},
		Fixed:    []Demand{{Resources: []ResourceID{0}, Cap: 2}},
		Variable: []Demand{
			{Resources: []ResourceID{0}, Weight: 1},
			{Resources: []ResourceID{0}, Weight: 3},
		},
		Independent: []Demand{{Resources: []ResourceID{0}}},
	}
	r := SolveClasses(cp)
	if math.Abs(r.Fixed[0]-2) > tol || !r.FixedSatisfied[0] {
		t.Fatalf("fixed = %v sat=%v", r.Fixed, r.FixedSatisfied)
	}
	if math.Abs(r.Variable[0]-2) > tol || math.Abs(r.Variable[1]-6) > tol {
		t.Fatalf("variable = %v", r.Variable)
	}
	if r.Independent[0] > tol {
		t.Fatalf("independent = %v", r.Independent)
	}
	if r.Residual[0] > tol {
		t.Fatalf("residual = %v", r.Residual)
	}
}

func TestSolveClassesIndependentGetsLeftover(t *testing.T) {
	cp := &ClassedProblem{
		Capacity:    []float64{10},
		Fixed:       []Demand{{Resources: []ResourceID{0}, Cap: 3}},
		Independent: []Demand{{Resources: []ResourceID{0}}},
	}
	r := SolveClasses(cp)
	if math.Abs(r.Independent[0]-7) > tol {
		t.Fatalf("independent = %v, want 7", r.Independent[0])
	}
}

func TestSolveClassesUnsatisfiableFixed(t *testing.T) {
	// Two fixed flows want 8 each over a 10 link: max-min gives 5 each,
	// neither satisfied.
	cp := &ClassedProblem{
		Capacity: []float64{10},
		Fixed: []Demand{
			{Resources: []ResourceID{0}, Cap: 8},
			{Resources: []ResourceID{0}, Cap: 8},
		},
	}
	r := SolveClasses(cp)
	if math.Abs(r.Fixed[0]-5) > tol || math.Abs(r.Fixed[1]-5) > tol {
		t.Fatalf("fixed = %v", r.Fixed)
	}
	if r.FixedSatisfied[0] || r.FixedSatisfied[1] {
		t.Fatalf("satisfied = %v", r.FixedSatisfied)
	}
}

func TestSolveClassesVariableCap(t *testing.T) {
	// Variable flow with a cap stops at the cap; partner takes the rest.
	cp := &ClassedProblem{
		Capacity: []float64{12},
		Variable: []Demand{
			{Resources: []ResourceID{0}, Weight: 1, Cap: 2},
			{Resources: []ResourceID{0}, Weight: 1},
		},
	}
	r := SolveClasses(cp)
	if math.Abs(r.Variable[0]-2) > tol || math.Abs(r.Variable[1]-10) > tol {
		t.Fatalf("variable = %v", r.Variable)
	}
}

func TestSolveClassesPaperVariableExample(t *testing.T) {
	// §4.2: three variable flows 3:4.5:9 on a 5.5 Mbps bottleneck yield
	// 1, 1.5, 3 Mbps.
	cp := &ClassedProblem{
		Capacity: []float64{5.5e6},
		Variable: []Demand{
			{Resources: []ResourceID{0}, Weight: 3e6},
			{Resources: []ResourceID{0}, Weight: 4.5e6},
			{Resources: []ResourceID{0}, Weight: 9e6},
		},
	}
	r := SolveClasses(cp)
	want := []float64{1e6, 1.5e6, 3e6}
	for i := range want {
		if math.Abs(r.Variable[i]-want[i]) > 1 {
			t.Fatalf("variable = %v, want %v", r.Variable, want)
		}
	}
}

// Property: classed solve never over-commits any resource.
func TestQuickClassedFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		nRes := 1 + rng.Intn(4)
		cp := &ClassedProblem{Capacity: make([]float64, nRes)}
		for r := range cp.Capacity {
			cp.Capacity[r] = rng.Float64() * 100
		}
		mk := func() Demand {
			d := Demand{Weight: 0.5 + rng.Float64()*3}
			d.Resources = []ResourceID{ResourceID(rng.Intn(nRes))}
			return d
		}
		for i := 0; i < rng.Intn(4); i++ {
			d := mk()
			d.Cap = 1 + rng.Float64()*50
			cp.Fixed = append(cp.Fixed, d)
		}
		for i := 0; i < rng.Intn(4); i++ {
			cp.Variable = append(cp.Variable, mk())
		}
		for i := 0; i < rng.Intn(3); i++ {
			cp.Independent = append(cp.Independent, mk())
		}
		r := SolveClasses(cp)
		load := make([]float64, nRes)
		add := func(ds []Demand, as []float64) {
			for i, d := range ds {
				for _, rr := range d.Resources {
					load[rr] += as[i]
				}
			}
		}
		add(cp.Fixed, r.Fixed)
		add(cp.Variable, r.Variable)
		add(cp.Independent, r.Independent)
		for rr := range load {
			if load[rr] > cp.Capacity[rr]+1e-5 {
				t.Fatalf("trial %d: resource %d overloaded %v > %v", trial, rr, load[rr], cp.Capacity[rr])
			}
			if math.Abs(load[rr]+r.Residual[rr]-math.Min(load[rr]+r.Residual[rr], cp.Capacity[rr])) > 1e-5 &&
				load[rr]+r.Residual[rr] > cp.Capacity[rr]+1e-5 {
				t.Fatalf("trial %d: residual accounting off at %d", trial, rr)
			}
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := &Problem{Capacity: make([]float64, 50)}
	for r := range p.Capacity {
		p.Capacity[r] = 10e6 + rng.Float64()*90e6
	}
	for d := 0; d < 200; d++ {
		dem := Demand{Weight: 1}
		for h := 0; h < 3; h++ {
			dem.Resources = append(dem.Resources, ResourceID(rng.Intn(50)))
		}
		p.Demands = append(p.Demands, dem)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Solve()
	}
}
