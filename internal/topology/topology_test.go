package topology

import (
	"testing"

	"repro/internal/graph"
)

func TestTestbedShape(t *testing.T) {
	g := Testbed()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(g.ComputeNodes()); got != 8 {
		t.Fatalf("hosts = %d", got)
	}
	if got := len(g.NetworkNodes()); got != 3 {
		t.Fatalf("routers = %d", got)
	}
	if got := g.NumLinks(); got != 10 {
		t.Fatalf("links = %d", got)
	}
	if !g.Connected() {
		t.Fatal("testbed not connected")
	}
	for _, l := range g.Links() {
		if l.Capacity != 100*Mbps {
			t.Fatalf("link %d capacity %v", l.ID, l.Capacity)
		}
	}
}

func TestTestbedThreeHopDiameter(t *testing.T) {
	// §8.1: "any node can be reached from any other node with at most 3
	// hops".
	g := Testbed()
	rt, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	maxHops := 0
	for _, pair := range rt.Pairs() {
		p := rt.Route(pair[0], pair[1])
		if p.Hops() > maxHops {
			maxHops = p.Hops()
		}
	}
	// Hosts hang one hop off their router; m-1 -> m-8 is host-aspen-
	// timberline-whiteface-host = 4 links. The paper counts router hops;
	// our link count for the farthest pair is 4.
	if maxHops != 4 {
		t.Fatalf("max link hops = %d, want 4 (3 router hops)", maxHops)
	}
}

func TestTestbedTrafficRoute(t *testing.T) {
	// §8.2: traffic m-6 -> m-8 routes via timberline -> whiteface.
	g := Testbed()
	rt, _ := g.Routes()
	p := rt.Route("m-6", "m-8")
	want := []graph.NodeID{"m-6", "timberline", "whiteface", "m-8"}
	if len(p.Nodes) != len(want) {
		t.Fatalf("route = %v", p)
	}
	for i := range want {
		if p.Nodes[i] != want[i] {
			t.Fatalf("route = %v, want %v", p.Nodes, want)
		}
	}
}

func TestFigure1Scenarios(t *testing.T) {
	fast := Figure1(Figure1FastSwitches())
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
	if fast.Node("A").InternalBW != 100*Mbps {
		t.Fatalf("A internal = %v", fast.Node("A").InternalBW)
	}
	slow := Figure1(Figure1SlowSwitches())
	if slow.Node("A").InternalBW != 10*Mbps {
		t.Fatalf("slow A internal = %v", slow.Node("A").InternalBW)
	}
	if got := len(fast.ComputeNodes()); got != 8 {
		t.Fatalf("hosts = %d", got)
	}
	rt, err := fast.Routes()
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Route("n1", "n5")
	if p.Hops() != 3 {
		t.Fatalf("n1->n5 hops = %d", p.Hops())
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(3, 100, 10)
	if !g.Connected() {
		t.Fatal("not connected")
	}
	rt, _ := g.Routes()
	p := rt.Route("l0", "r0")
	if p.Bottleneck() != 10*Mbps {
		t.Fatalf("bottleneck = %v", p.Bottleneck())
	}
}

func TestStar(t *testing.T) {
	g := Star(5, 100, 50)
	if got := g.NumLinks(); got != 5 {
		t.Fatalf("links = %d", got)
	}
	if g.Node("hub").InternalBW != 50*Mbps {
		t.Fatal("hub internal wrong")
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
}

func TestRouterChain(t *testing.T) {
	g := RouterChain(12, 4, 100)
	if !g.Connected() {
		t.Fatal("not connected")
	}
	if got := len(g.ComputeNodes()); got != 12 {
		t.Fatalf("hosts = %d", got)
	}
	rt, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	// h0 on rt0, h3 on rt3: 1 + 3 + 1 links.
	if p := rt.Route("h0", "h3"); p.Hops() != 5 {
		t.Fatalf("hops = %d", p.Hops())
	}
}

func TestRouterChainPanicsWithoutRouters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RouterChain(2, 0, 100)
}

func TestWideAreaCollapses(t *testing.T) {
	g := WideArea(2, 5, 100, 45)
	if !g.Connected() {
		t.Fatal("not connected")
	}
	// Collapsing the backbone should eliminate all bb* routers.
	c := g.CollapseChains(nil)
	for _, id := range c.Nodes() {
		if len(id) >= 2 && id[:2] == "bb" {
			t.Fatalf("backbone router %s survived collapse", id)
		}
	}
	rt, _ := g.Routes()
	p := rt.Route("a0", "b0")
	crt, _ := c.Routes()
	cp := crt.Route("a0", "b0")
	if p.Bottleneck() != cp.Bottleneck() {
		t.Fatalf("bottleneck changed: %v -> %v", p.Bottleneck(), cp.Bottleneck())
	}
}
