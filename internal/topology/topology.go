// Package topology constructs the canonical network topologies of the
// Remos paper plus parametric families used for scaling studies.
package topology

import (
	"fmt"

	"repro/internal/graph"
)

// Mbps converts megabits/second to bits/second.
const Mbps = 1e6

// Testbed node names, matching Figure 3 of the paper.
var (
	// TestbedHosts are the DEC Alpha endpoints m-1..m-8 ("manchester-*").
	TestbedHosts = []graph.NodeID{"m-1", "m-2", "m-3", "m-4", "m-5", "m-6", "m-7", "m-8"}
	// TestbedRouters are the Pentium Pro routers.
	TestbedRouters = []graph.NodeID{"aspen", "timberline", "whiteface"}
)

// HostPower is the calibrated compute speed of a testbed host in work
// units per second. Application work constants in internal/apps are in
// the same unit, chosen so Table 1's absolute seconds land near the
// paper's.
const HostPower = 1.0

// PerHopLatency is the fixed per-hop delay the paper's collector assumes.
const PerHopLatency = 0.0005 // 0.5 ms

// HostMemory is the physical memory of each testbed host (the DEC
// Alphas of the era shipped with a few hundred MB).
const HostMemory = 256e6

// Testbed builds the Figure 3/4 testbed:
//
//	m-1  m-2    m-4          m-5  m-6
//	  \   |      |            |   /
//	   [ aspen ]---[ timberline ]---[ whiteface ]
//	      |               |              |  \
//	     m-3             (m-4,m-5 above) m-7 m-8
//
// Exact host attachment follows the figure: aspen carries m-1,m-2,m-3;
// timberline carries m-4,m-5,m-6; whiteface carries m-7,m-8. All links
// are 100 Mbps point-to-point Ethernet; routers are connected in a chain
// aspen—timberline—whiteface, so any host reaches any other in at most 3
// hops (§8.1).
func Testbed() *graph.Graph {
	g := graph.New()
	for _, h := range TestbedHosts {
		g.AddNode(graph.Node{ID: h, Kind: graph.Compute, ComputePower: HostPower, MemoryBytes: HostMemory})
	}
	for _, r := range TestbedRouters {
		g.AddRouter(r, 0)
	}
	attach := map[graph.NodeID]graph.NodeID{
		"m-1": "aspen", "m-2": "aspen", "m-3": "aspen",
		"m-4": "timberline", "m-5": "timberline", "m-6": "timberline",
		"m-7": "whiteface", "m-8": "whiteface",
	}
	// Deterministic insertion order for links.
	for _, h := range TestbedHosts {
		g.AddLink(h, attach[h], 100*Mbps, PerHopLatency)
	}
	g.AddLink("aspen", "timberline", 100*Mbps, PerHopLatency)
	g.AddLink("timberline", "whiteface", 100*Mbps, PerHopLatency)
	return g
}

// Figure1 builds the example network of Figure 1: compute nodes 1–4
// attach to network node A, 5–8 to network node B, and A—B are joined by
// one link. Link speeds and the nodes' internal bandwidths come from the
// two scenarios discussed in §4.3.
type Figure1Config struct {
	HostLinkMbps   float64 // links host—switch (paper: 10)
	BackboneMbps   float64 // link A—B (paper: 100 in the first reading)
	InternalAMbps  float64 // internal bandwidth of A (0 = unlimited)
	InternalBMbps  float64 // internal bandwidth of B
	HostComputePow float64
}

// Figure1FastSwitches is the first reading of Figure 1: switches with
// 100 Mbps internal bandwidth, so the 10 Mbps host links throttle and
// "all nodes can send and receive messages at up to 10 Mbps
// simultaneously".
func Figure1FastSwitches() Figure1Config {
	return Figure1Config{HostLinkMbps: 10, BackboneMbps: 100, InternalAMbps: 100, InternalBMbps: 100, HostComputePow: 1}
}

// Figure1SlowSwitches is the second reading: switches with 10 Mbps
// internal bandwidth become the bottleneck, so "the aggregate bandwidth
// of nodes 1-4 and 5-8 will be limited to 10 Mbps" — equivalently two
// 10 Mbps Ethernets joined by a fast link.
func Figure1SlowSwitches() Figure1Config {
	return Figure1Config{HostLinkMbps: 10, BackboneMbps: 100, InternalAMbps: 10, InternalBMbps: 10, HostComputePow: 1}
}

// Figure1 builds the 8-host, 2-switch example graph.
func Figure1(cfg Figure1Config) *graph.Graph {
	g := graph.New()
	for i := 1; i <= 8; i++ {
		g.AddHost(graph.NodeID(fmt.Sprintf("n%d", i)), cfg.HostComputePow)
	}
	g.AddRouter("A", cfg.InternalAMbps*Mbps)
	g.AddRouter("B", cfg.InternalBMbps*Mbps)
	for i := 1; i <= 4; i++ {
		g.AddLink(graph.NodeID(fmt.Sprintf("n%d", i)), "A", cfg.HostLinkMbps*Mbps, PerHopLatency)
	}
	for i := 5; i <= 8; i++ {
		g.AddLink(graph.NodeID(fmt.Sprintf("n%d", i)), "B", cfg.HostLinkMbps*Mbps, PerHopLatency)
	}
	g.AddLink("A", "B", cfg.BackboneMbps*Mbps, PerHopLatency)
	return g
}

// Dumbbell builds n hosts on each side of a two-router bottleneck link —
// the standard congestion topology used by unit tests and ablations.
func Dumbbell(nPerSide int, edgeMbps, coreMbps float64) *graph.Graph {
	g := graph.New()
	g.AddRouter("L", 0)
	g.AddRouter("R", 0)
	g.AddLink("L", "R", coreMbps*Mbps, PerHopLatency)
	for i := 0; i < nPerSide; i++ {
		l := graph.NodeID(fmt.Sprintf("l%d", i))
		r := graph.NodeID(fmt.Sprintf("r%d", i))
		g.AddHost(l, 1)
		g.AddHost(r, 1)
		g.AddLink(l, "L", edgeMbps*Mbps, PerHopLatency)
		g.AddLink(r, "R", edgeMbps*Mbps, PerHopLatency)
	}
	return g
}

// Star builds n hosts around one switch.
func Star(n int, linkMbps, internalMbps float64) *graph.Graph {
	g := graph.New()
	g.AddRouter("hub", internalMbps*Mbps)
	for i := 0; i < n; i++ {
		h := graph.NodeID(fmt.Sprintf("s%d", i))
		g.AddHost(h, 1)
		g.AddLink(h, "hub", linkMbps*Mbps, PerHopLatency)
	}
	return g
}

// RouterChain builds `hosts` hosts spread round-robin across `routers`
// routers connected in a chain — a generalization of the testbed used for
// scalability benchmarks.
func RouterChain(hosts, routers int, linkMbps float64) *graph.Graph {
	if routers < 1 {
		panic("topology: need at least one router")
	}
	g := graph.New()
	for r := 0; r < routers; r++ {
		g.AddRouter(graph.NodeID(fmt.Sprintf("rt%d", r)), 0)
	}
	for r := 1; r < routers; r++ {
		g.AddLink(graph.NodeID(fmt.Sprintf("rt%d", r-1)), graph.NodeID(fmt.Sprintf("rt%d", r)), linkMbps*Mbps, PerHopLatency)
	}
	for h := 0; h < hosts; h++ {
		id := graph.NodeID(fmt.Sprintf("h%d", h))
		g.AddHost(id, 1)
		g.AddLink(id, graph.NodeID(fmt.Sprintf("rt%d", h%routers)), linkMbps*Mbps, PerHopLatency)
	}
	return g
}

// WideArea builds two site LANs joined by a long chain of backbone
// routers — the "complex network in the middle" case that logical-
// topology collapsing reduces to a single link (§4.3).
func WideArea(hostsPerSite, backboneHops int, lanMbps, wanMbps float64) *graph.Graph {
	g := graph.New()
	g.AddRouter("siteA", 0)
	g.AddRouter("siteB", 0)
	for i := 0; i < hostsPerSite; i++ {
		a := graph.NodeID(fmt.Sprintf("a%d", i))
		b := graph.NodeID(fmt.Sprintf("b%d", i))
		g.AddHost(a, 1)
		g.AddHost(b, 1)
		g.AddLink(a, "siteA", lanMbps*Mbps, PerHopLatency)
		g.AddLink(b, "siteB", lanMbps*Mbps, PerHopLatency)
	}
	prev := graph.NodeID("siteA")
	for i := 0; i < backboneHops; i++ {
		bb := graph.NodeID(fmt.Sprintf("bb%d", i))
		g.AddRouter(bb, 0)
		g.AddLink(prev, bb, wanMbps*Mbps, 0.005)
		prev = bb
	}
	g.AddLink(prev, "siteB", wanMbps*Mbps, 0.005)
	return g
}
