// Package cluster implements node selection for network-aware
// applications (§7.2): given Remos-measured bandwidth and latency between
// a pool of candidate hosts, pick a well-connected subset to run on.
//
// The paper uses a greedy heuristic — start from an application-provided
// node, repeatedly add the candidate closest to the current cluster —
// because the exact problem is NP-hard (equivalent to k-clique). Both
// the greedy heuristic and an exhaustive optimal search (feasible at
// testbed sizes, used to evaluate the heuristic) are provided.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Metric converts (bandwidth, latency) into a scalar distance:
//
//	d = BandwidthWeight/bw + LatencyWeight*latency
//
// On the paper's testbed "the distance is based only on bandwidth since
// latency between any pair of nodes is virtually the same" — that is
// Metric{BandwidthWeight: 1}.
type Metric struct {
	BandwidthWeight float64
	LatencyWeight   float64
}

// DefaultMetric matches the paper's testbed setting: bandwidth only.
func DefaultMetric() Metric { return Metric{BandwidthWeight: 1} }

// TestbedMetric is bandwidth-dominant with a small latency term that
// breaks ties toward fewer hops, reproducing the paper's Figure 4
// selection exactly: at 100 Mbps the bandwidth term is 1e-8 per pair,
// congestion penalties are ~1e-7, and the latency term contributes
// ~0.5e-8 per hop — big enough to order equal-bandwidth candidates,
// too small to override a congested link.
func TestbedMetric() Metric { return Metric{BandwidthWeight: 1, LatencyWeight: 1e-5} }

// Distance computes the scalar distance for one pair.
func (m Metric) Distance(bw, latency float64) float64 {
	d := 0.0
	if m.BandwidthWeight > 0 {
		if bw <= 0 {
			return math.Inf(1)
		}
		d += m.BandwidthWeight / bw
	}
	d += m.LatencyWeight * latency
	return d
}

// DistanceMatrix combines bandwidth and latency matrices into distances.
// Diagonal entries are zero.
func DistanceMatrix(bw, lat [][]float64, m Metric) [][]float64 {
	n := len(bw)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i == j {
				continue
			}
			l := 0.0
			if lat != nil {
				l = lat[i][j]
			}
			out[i][j] = m.Distance(bw[i][j], l)
		}
	}
	return out
}

// Result is a selected node set with its communication score.
type Result struct {
	// Nodes is the selected subset, in selection order for Greedy and
	// sorted order for Optimal.
	Nodes []graph.NodeID

	// Score is the mean pairwise distance within the cluster; lower is
	// better. This is the "measure of the expected communication
	// performance" returned to the adaptation module (§7.3).
	Score float64
}

// Score computes the mean pairwise distance among the given indices.
// A single-node cluster scores 0.
func Score(dist [][]float64, idx []int) float64 {
	if len(idx) < 2 {
		return 0
	}
	var sum float64
	var pairs int
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			// Use the worse of the two directions: synchronous exchange
			// is limited by the slower one.
			d := math.Max(dist[idx[a]][idx[b]], dist[idx[b]][idx[a]])
			sum += d
			pairs++
		}
	}
	return sum / float64(pairs)
}

func indexOf(nodes []graph.NodeID, id graph.NodeID) int {
	for i, n := range nodes {
		if n == id {
			return i
		}
	}
	return -1
}

func validate(nodes []graph.NodeID, dist [][]float64, start graph.NodeID, k int) (int, error) {
	if k < 1 || k > len(nodes) {
		return 0, fmt.Errorf("cluster: k=%d out of range for %d candidates", k, len(nodes))
	}
	if len(dist) != len(nodes) {
		return 0, fmt.Errorf("cluster: distance matrix is %d×?, want %d", len(dist), len(nodes))
	}
	for i := range dist {
		if len(dist[i]) != len(nodes) {
			return 0, fmt.Errorf("cluster: distance row %d has %d entries, want %d", i, len(dist[i]), len(nodes))
		}
	}
	s := indexOf(nodes, start)
	if s < 0 {
		return 0, fmt.Errorf("cluster: start node %q not among candidates", start)
	}
	return s, nil
}

// Greedy runs the paper's heuristic: seed with start, then repeatedly add
// the candidate with the smallest total distance to the nodes already in
// the cluster, until k nodes are selected. Ties break toward the earlier
// candidate, making the result deterministic.
func Greedy(nodes []graph.NodeID, dist [][]float64, start graph.NodeID, k int) (Result, error) {
	s, err := validate(nodes, dist, start, k)
	if err != nil {
		return Result{}, err
	}
	selected := []int{s}
	in := make([]bool, len(nodes))
	in[s] = true
	for len(selected) < k {
		best := -1
		bestD := math.Inf(1)
		for cand := range nodes {
			if in[cand] {
				continue
			}
			var d float64
			for _, m := range selected {
				// Symmetric worst-direction distance, as in Score.
				d += math.Max(dist[m][cand], dist[cand][m])
			}
			if d < bestD {
				bestD, best = d, cand
			}
		}
		if best < 0 || math.IsInf(bestD, 1) {
			return Result{}, fmt.Errorf("cluster: only %d of %d nodes reachable from %q", len(selected), k, start)
		}
		selected = append(selected, best)
		in[best] = true
	}
	res := Result{Score: Score(dist, selected)}
	for _, i := range selected {
		res.Nodes = append(res.Nodes, nodes[i])
	}
	return res, nil
}

// Optimal exhaustively searches all k-subsets containing start and
// returns the one with the lowest Score. Exponential in len(nodes);
// intended for evaluating the heuristic at testbed scale.
func Optimal(nodes []graph.NodeID, dist [][]float64, start graph.NodeID, k int) (Result, error) {
	s, err := validate(nodes, dist, start, k)
	if err != nil {
		return Result{}, err
	}
	var best []int
	bestScore := math.Inf(1)
	subset := make([]int, 0, k)
	var rec func(next int)
	rec = func(next int) {
		if len(subset) == k {
			sc := Score(dist, subset)
			if sc < bestScore {
				bestScore = sc
				best = append(best[:0], subset...)
			}
			return
		}
		need := k - len(subset)
		for i := next; i <= len(nodes)-need; i++ {
			if i == s {
				continue // start is always included
			}
			subset = append(subset, i)
			rec(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	subset = append(subset, s)
	rec(0)
	if best == nil {
		return Result{}, fmt.Errorf("cluster: no feasible %d-subset", k)
	}
	if math.IsInf(bestScore, 1) {
		return Result{}, fmt.Errorf("cluster: best %d-subset is disconnected", k)
	}
	sort.Ints(best)
	res := Result{Score: bestScore}
	for _, i := range best {
		res.Nodes = append(res.Nodes, nodes[i])
	}
	return res, nil
}

// FromModeler runs greedy selection on live Remos measurements: the
// §7.3 sequence remos_get_graph -> distance matrix -> clustering, in one
// call. pool lists candidate hosts; tf selects the measurement timeframe.
func FromModeler(m *core.Modeler, pool []graph.NodeID, start graph.NodeID, k int, metric Metric, tf core.Timeframe) (Result, error) {
	bw, err := m.BandwidthMatrix(pool, tf)
	if err != nil {
		return Result{}, err
	}
	var lat [][]float64
	if metric.LatencyWeight > 0 {
		lat, err = m.LatencyMatrix(pool)
		if err != nil {
			return Result{}, err
		}
	}
	dist := DistanceMatrix(bw, lat, metric)
	return Greedy(pool, dist, start, k)
}
