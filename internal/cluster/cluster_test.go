package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"

	collectorpkg "repro/internal/collector"
)

func TestMetricDistance(t *testing.T) {
	m := DefaultMetric()
	if m.Distance(100e6, 0.001) >= m.Distance(10e6, 0.001) {
		t.Fatal("higher bandwidth should mean lower distance")
	}
	if !math.IsInf(m.Distance(0, 0), 1) {
		t.Fatal("zero bandwidth should be infinite distance")
	}
	lm := Metric{LatencyWeight: 1}
	if lm.Distance(1, 0.5) != 0.5 {
		t.Fatalf("latency-only distance = %v", lm.Distance(1, 0.5))
	}
}

func TestDistanceMatrix(t *testing.T) {
	bw := [][]float64{{0, 10}, {20, 0}}
	lat := [][]float64{{0, 1}, {2, 0}}
	d := DistanceMatrix(bw, lat, Metric{BandwidthWeight: 10, LatencyWeight: 1})
	if d[0][0] != 0 || d[1][1] != 0 {
		t.Fatal("diagonal not zero")
	}
	if d[0][1] != 2 || d[1][0] != 2.5 {
		t.Fatalf("matrix = %v", d)
	}
	// Without latency matrix.
	d2 := DistanceMatrix(bw, nil, Metric{BandwidthWeight: 10})
	if d2[0][1] != 1 {
		t.Fatalf("matrix = %v", d2)
	}
}

// fourPlusTwo builds a distance matrix with a tight group {a,b,c,d} and
// two distant stragglers {e,f}.
func fourPlusTwo() ([]graph.NodeID, [][]float64) {
	nodes := []graph.NodeID{"a", "b", "c", "d", "e", "f"}
	n := len(nodes)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i == j {
				continue
			}
			if i < 4 && j < 4 {
				d[i][j] = 1
			} else {
				d[i][j] = 10
			}
		}
	}
	return nodes, d
}

func TestGreedyPicksTightGroup(t *testing.T) {
	nodes, d := fourPlusTwo()
	res, err := Greedy(nodes, d, "a", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.NodeID{"a", "b", "c", "d"}
	if !reflect.DeepEqual(res.Nodes, want) {
		t.Fatalf("greedy = %v", res.Nodes)
	}
	if res.Score != 1 {
		t.Fatalf("score = %v", res.Score)
	}
}

func TestGreedyStartsFromGivenNode(t *testing.T) {
	nodes, d := fourPlusTwo()
	res, err := Greedy(nodes, d, "e", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0] != "e" {
		t.Fatalf("start = %v", res.Nodes[0])
	}
}

func TestGreedySingleNode(t *testing.T) {
	nodes, d := fourPlusTwo()
	res, err := Greedy(nodes, d, "c", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 || res.Nodes[0] != "c" || res.Score != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestGreedyErrors(t *testing.T) {
	nodes, d := fourPlusTwo()
	if _, err := Greedy(nodes, d, "zz", 2); err == nil {
		t.Fatal("unknown start accepted")
	}
	if _, err := Greedy(nodes, d, "a", 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Greedy(nodes, d, "a", 7); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Greedy(nodes, [][]float64{{0}}, "a", 2); err == nil {
		t.Fatal("bad matrix accepted")
	}
	// Unreachable nodes (infinite distance) fail when k demands them.
	inf := math.Inf(1)
	d2 := [][]float64{{0, inf}, {inf, 0}}
	if _, err := Greedy([]graph.NodeID{"a", "b"}, d2, "a", 2); err == nil {
		t.Fatal("disconnected selection accepted")
	}
}

func TestOptimalMatchesGreedyOnEasyCase(t *testing.T) {
	nodes, d := fourPlusTwo()
	g, _ := Greedy(nodes, d, "a", 4)
	o, err := Optimal(nodes, d, "a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Score != g.Score {
		t.Fatalf("optimal %v vs greedy %v", o.Score, g.Score)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 6 + rng.Intn(3)
		nodes := make([]graph.NodeID, n)
		for i := range nodes {
			nodes[i] = graph.NodeID(string(rune('a' + i)))
		}
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64() * 10
				d[i][j], d[j][i] = v, v
			}
		}
		k := 2 + rng.Intn(n-2)
		g, err := Greedy(nodes, d, nodes[0], k)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Optimal(nodes, d, nodes[0], k)
		if err != nil {
			t.Fatal(err)
		}
		if o.Score > g.Score+1e-12 {
			t.Fatalf("trial %d: optimal %v worse than greedy %v", trial, o.Score, g.Score)
		}
		if o.Nodes[0] != nodes[0] && indexOf(o.Nodes, nodes[0]) < 0 {
			t.Fatalf("optimal dropped the start node: %v", o.Nodes)
		}
	}
}

// TestFigure4Selection reproduces the paper's Figure 4: with blast
// traffic m-6 -> m-8, greedy selection from start m-4 must pick
// {m-1, m-2, m-4, m-5} — a set whose internal communication avoids the
// loaded timberline->whiteface link.
func TestFigure4Selection(t *testing.T) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collectorpkg.New(collectorpkg.Config{
		Client:     snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:      clk,
		Addrs:      addrs,
		PollPeriod: 1,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	mod := core.New(core.Config{Source: col})
	traffic.Blast(n, "m-6", "m-8", 90e6)
	clk.RunUntil(20)

	res, err := FromModeler(mod, topology.TestbedHosts, "m-4", 4, TestbedMetric(), core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	got := map[graph.NodeID]bool{}
	for _, id := range res.Nodes {
		got[id] = true
	}
	for _, want := range []graph.NodeID{"m-1", "m-2", "m-4", "m-5"} {
		if !got[want] {
			t.Fatalf("figure 4 selection = %v, want m-1,m-2,m-4,m-5", res.Nodes)
		}
	}

	// With bandwidth-only distances the heuristic picks a set that is
	// performance-equivalent (avoids the loaded link) but may differ in
	// names; verify the avoidance property.
	res2, err := FromModeler(mod, topology.TestbedHosts, "m-4", 4, DefaultMetric(), core.TFHistory(15))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res2.Nodes {
		if id == "m-6" || id == "m-7" || id == "m-8" {
			t.Fatalf("bandwidth-only selection %v includes a traffic-side node", res2.Nodes)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = graph.NodeID(string(rune('a'+i%26)) + string(rune('a'+i/26)))
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = rng.Float64()
			}
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(nodes, d, nodes[0], 16); err != nil {
			b.Fatal(err)
		}
	}
}
