package cluster

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// Computation-aware selection — the paper's stated next step for
// clustering (§7.2): "we have focused on communication resources, but in
// general, tradeoffs between computation and communication resources
// would have to be considered for clustering."
//
// The extension adds a per-node cost to the pairwise communication
// distance: a host at CPU load L effectively computes at (1-L) speed, so
// a BSP iteration on it stretches by 1/(1-L). LoadPenalty converts that
// stretch into the distance unit.

// ComputeAwareGreedy runs the greedy heuristic with per-node load
// penalties: when choosing the next node, the candidate's cost is its
// total distance to the cluster plus LoadPenalty × load/(1-load).
func ComputeAwareGreedy(nodes []graph.NodeID, dist [][]float64, loads []float64,
	start graph.NodeID, k int, loadPenalty float64) (Result, error) {

	if len(loads) != len(nodes) {
		return Result{}, fmt.Errorf("cluster: %d loads for %d nodes", len(loads), len(nodes))
	}
	s, err := validate(nodes, dist, start, k)
	if err != nil {
		return Result{}, err
	}
	nodeCost := func(i int) float64 {
		l := loads[i]
		if l >= 1 {
			return math.Inf(1)
		}
		if l < 0 {
			l = 0
		}
		return loadPenalty * l / (1 - l)
	}
	selected := []int{s}
	in := make([]bool, len(nodes))
	in[s] = true
	for len(selected) < k {
		best := -1
		bestD := math.Inf(1)
		for cand := range nodes {
			if in[cand] {
				continue
			}
			d := nodeCost(cand)
			for _, m := range selected {
				d += math.Max(dist[m][cand], dist[cand][m])
			}
			if d < bestD {
				bestD, best = d, cand
			}
		}
		if best < 0 || math.IsInf(bestD, 1) {
			return Result{}, fmt.Errorf("cluster: only %d of %d nodes selectable from %q", len(selected), k, start)
		}
		selected = append(selected, best)
		in[best] = true
	}
	res := Result{Score: Score(dist, selected)}
	for _, i := range selected {
		res.Nodes = append(res.Nodes, nodes[i])
	}
	return res, nil
}

// ComputeAwareFromModeler gathers distances and host loads from Remos
// and runs ComputeAwareGreedy. The load penalty is expressed in the same
// unit as the metric's distances; a reasonable default for the testbed
// metric is the distance equivalent of one congested link (~1e-7).
func ComputeAwareFromModeler(m *core.Modeler, pool []graph.NodeID, start graph.NodeID,
	k int, metric Metric, tf core.Timeframe, loadPenalty float64) (Result, error) {

	bw, err := m.BandwidthMatrix(pool, tf)
	if err != nil {
		return Result{}, err
	}
	var lat [][]float64
	if metric.LatencyWeight > 0 {
		lat, err = m.LatencyMatrix(pool)
		if err != nil {
			return Result{}, err
		}
	}
	dist := DistanceMatrix(bw, lat, metric)
	loads := make([]float64, len(pool))
	for i, id := range pool {
		if st, err := m.HostLoad(id, tf); err == nil && st.Valid() {
			loads[i] = st.Median
		}
	}
	return ComputeAwareGreedy(pool, dist, loads, start, k, loadPenalty)
}
