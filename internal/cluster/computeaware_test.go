package cluster

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"

	collectorpkg "repro/internal/collector"
)

func TestComputeAwareAvoidsLoadedHost(t *testing.T) {
	nodes, d := fourPlusTwo() // a,b,c,d tight; e,f distant
	loads := []float64{0, 0, 0.9, 0, 0, 0}
	// Without load awareness, {a,b,c} is the natural pick from a.
	plain, err := Greedy(nodes, d, "a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(plain.Nodes, "c") {
		t.Fatalf("plain greedy = %v (expected to include c)", plain.Nodes)
	}
	// With a strong penalty, the 90%-loaded c is skipped for d.
	aware, err := ComputeAwareGreedy(nodes, d, loads, "a", 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if contains(aware.Nodes, "c") {
		t.Fatalf("compute-aware selection still picked the loaded host: %v", aware.Nodes)
	}
	if !contains(aware.Nodes, "d") {
		t.Fatalf("compute-aware selection = %v", aware.Nodes)
	}
}

func TestComputeAwareZeroPenaltyMatchesGreedy(t *testing.T) {
	nodes, d := fourPlusTwo()
	loads := []float64{0, 0.5, 0.2, 0.9, 0, 0.1}
	plain, _ := Greedy(nodes, d, "a", 4)
	aware, err := ComputeAwareGreedy(nodes, d, loads, "a", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Nodes) != len(aware.Nodes) {
		t.Fatal("length mismatch")
	}
	for i := range plain.Nodes {
		if plain.Nodes[i] != aware.Nodes[i] {
			t.Fatalf("zero penalty diverged: %v vs %v", aware.Nodes, plain.Nodes)
		}
	}
}

func TestComputeAwareFullyLoadedHostUnselectable(t *testing.T) {
	nodes, d := fourPlusTwo()
	loads := []float64{0, 1.0, 1.0, 1.0, 1.0, 1.0} // only the start is usable
	if _, err := ComputeAwareGreedy(nodes, d, loads, "a", 3, 1); err == nil {
		t.Fatal("selected fully loaded hosts")
	}
	// k=1 (just the start) still fine.
	res, err := ComputeAwareGreedy(nodes, d, loads, "a", 1, 1)
	if err != nil || res.Nodes[0] != "a" {
		t.Fatalf("res = %+v, %v", res, err)
	}
}

func TestComputeAwareErrors(t *testing.T) {
	nodes, d := fourPlusTwo()
	if _, err := ComputeAwareGreedy(nodes, d, []float64{0}, "a", 2, 1); err == nil {
		t.Fatal("bad load vector accepted")
	}
}

// End to end: two candidate hosts are equally well-connected but one is
// CPU-saturated; compute-aware selection from live Remos data picks the
// idle one.
func TestComputeAwareFromModeler(t *testing.T) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collectorpkg.New(collectorpkg.Config{
		Client:     snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:      clk,
		Addrs:      addrs,
		PollPeriod: 1,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	mod := core.New(core.Config{Source: col})
	// m-5 is pegged; m-6 idle. Both are one hop from m-4.
	traffic.HostLoadWalk(n, "m-5", traffic.HostLoadWalkConfig{Mean: 0.9, Jitter: 0.01, Period: 1, Seed: 1})
	clk.Advance(15)

	res, err := ComputeAwareFromModeler(mod, topology.TestbedHosts, "m-4", 3,
		TestbedMetric(), core.TFHistory(10), 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if contains(res.Nodes, "m-5") {
		t.Fatalf("selection %v includes the saturated host", res.Nodes)
	}
	// Communication-only selection would have taken m-5 (closest to
	// m-4 with the latency tie-break).
	plain, err := FromModeler(mod, topology.TestbedHosts, "m-4", 3, TestbedMetric(), core.TFHistory(10))
	if err != nil {
		t.Fatal(err)
	}
	if !contains(plain.Nodes, "m-5") {
		t.Fatalf("plain selection = %v (expected m-5)", plain.Nodes)
	}
}

func contains(nodes []graph.NodeID, id graph.NodeID) bool {
	for _, n := range nodes {
		if n == id {
			return true
		}
	}
	return false
}
