package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. Compute nodes are boxes,
// network nodes are ellipses, and links are labeled with capacity (Mbps)
// and latency (ms). Used by cmd/remos-topo.
func (g *Graph) DOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", title)
	b.WriteString("  overlap=false;\n")
	for _, id := range g.Nodes() {
		n := g.Node(id)
		shape := "ellipse"
		extra := ""
		if n.Kind == Compute {
			shape = "box"
		} else if n.InternalBW > 0 {
			extra = fmt.Sprintf("\\n%.0fMbps internal", n.InternalBW/1e6)
		}
		fmt.Fprintf(&b, "  %q [shape=%s,label=\"%s%s\"];\n", id, shape, id, extra)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  %q -- %q [label=\"%.0fMbps/%.2fms\"];\n",
			l.A, l.B, l.Capacity/1e6, l.Latency*1e3)
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a compact textual summary of the graph: one line per node
// with its links, suitable for terminals. Used by cmd/remos-topo.
func (g *Graph) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes, %d links\n", g.NumNodes(), g.NumLinks())
	for _, id := range g.Nodes() {
		n := g.Node(id)
		fmt.Fprintf(&b, "%-12s %-8s", id, n.Kind)
		if n.Kind == Network && n.InternalBW > 0 {
			fmt.Fprintf(&b, " internal=%.0fMbps", n.InternalBW/1e6)
		}
		if n.Kind == Compute && n.ComputePower > 0 {
			fmt.Fprintf(&b, " power=%.2f", n.ComputePower)
		}
		b.WriteString("\n")
		for _, l := range g.LinksAt(id) {
			o, _ := l.Other(id)
			fmt.Fprintf(&b, "    --%-12s %.0f Mbps, %.2f ms (link %d)\n",
				o, l.Capacity/1e6, l.Latency*1e3, l.ID)
		}
	}
	return b.String()
}
