package graph

import "sort"

// CollapseChains produces the logical-topology reduction of §4.3: network
// nodes of degree 2 that are not protected by keep are removed and their
// two links merged into one logical link whose capacity is the minimum and
// whose latency is the sum of the originals. Chains of such nodes collapse
// into a single link, which is how Remos represents "two sets of hosts
// connected by a complex network" as one edge.
//
// The input graph is not modified; a new graph is returned. Link IDs in
// the result are freshly assigned.
func (g *Graph) CollapseChains(keep func(NodeID) bool) *Graph {
	work := g.Clone()
	for {
		collapsed := false
		// Deterministic scan order.
		ids := work.Nodes()
		for _, id := range ids {
			n := work.Node(id)
			if n == nil || n.Kind != Network {
				continue
			}
			if keep != nil && keep(id) {
				continue
			}
			ls := work.LinksAt(id)
			if len(ls) != 2 {
				continue
			}
			l1, l2 := ls[0], ls[1]
			a, _ := l1.Other(id)
			b, _ := l2.Other(id)
			if a == b {
				// Parallel links through this node would become a
				// self-link; leave the node in place.
				continue
			}
			// A node with its own internal bandwidth limit below the
			// merged link capacity still constrains traffic; fold the
			// limit into the merged capacity.
			mergedCap := minf(l1.Capacity, l2.Capacity)
			if n.InternalBW > 0 && n.InternalBW < mergedCap {
				mergedCap = n.InternalBW
			}
			mergedLat := l1.Latency + l2.Latency
			work.RemoveNode(id)
			work.AddLink(a, b, mergedCap, mergedLat)
			collapsed = true
		}
		if !collapsed {
			break
		}
	}
	return renumber(work)
}

// InducedByRoutes returns the subgraph containing exactly the nodes and
// links that appear on routes between the given compute nodes, which is
// the first step of answering remos_get_graph for a node subset: links the
// routing rules will never use are hidden (§4.3).
func (g *Graph) InducedByRoutes(rt *RouteTable, hosts []NodeID) *Graph {
	usedNodes := make(map[NodeID]bool)
	usedLinks := make(map[LinkID]bool)
	for _, h := range hosts {
		usedNodes[h] = true
	}
	for i, a := range hosts {
		for j, b := range hosts {
			if i == j {
				continue
			}
			p := rt.Route(a, b)
			if p == nil {
				continue
			}
			for _, n := range p.Nodes {
				usedNodes[n] = true
			}
			for _, l := range p.Links {
				usedLinks[l.ID] = true
			}
		}
	}
	sub := New()
	for _, id := range g.Nodes() {
		if usedNodes[id] {
			sub.AddNode(*g.Node(id))
		}
	}
	var ls []*Link
	for _, l := range g.Links() {
		if usedLinks[l.ID] {
			ls = append(ls, l)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].ID < ls[j].ID })
	for _, l := range ls {
		sub.AddLink(l.A, l.B, l.Capacity, l.Latency)
	}
	return sub
}

// renumber rebuilds a graph with dense link IDs after removals.
func renumber(g *Graph) *Graph {
	out := New()
	for _, id := range g.Nodes() {
		out.AddNode(*g.Node(id))
	}
	for _, l := range g.Links() {
		out.AddLink(l.A, l.B, l.Capacity, l.Latency)
	}
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
