package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Path is a walk from Nodes[0] to Nodes[len-1]; Links[i] joins Nodes[i] and
// Nodes[i+1].
type Path struct {
	Nodes []NodeID
	Links []*Link
}

// Hops returns the number of links on the path.
func (p *Path) Hops() int { return len(p.Links) }

// Latency returns the summed one-way latency along the path.
func (p *Path) Latency() float64 {
	var sum float64
	for _, l := range p.Links {
		sum += l.Latency
	}
	return sum
}

// Bottleneck returns the minimum link capacity along the path, or +Inf for
// an empty (same-node) path.
func (p *Path) Bottleneck() float64 {
	min := math.Inf(1)
	for _, l := range p.Links {
		if l.Capacity < min {
			min = l.Capacity
		}
	}
	return min
}

// Channels returns the directed channels traversed, in order.
func (p *Path) Channels() []Channel {
	out := make([]Channel, len(p.Links))
	for i, l := range p.Links {
		out[i] = Channel{Link: l.ID, Dir: l.DirFrom(p.Nodes[i])}
	}
	return out
}

func (p *Path) String() string {
	if p == nil {
		return "<no path>"
	}
	s := ""
	for i, n := range p.Nodes {
		if i > 0 {
			s += " -> "
		}
		s += string(n)
	}
	return s
}

// Weight computes the cost of traversing a link. Returning +Inf excludes
// the link.
type Weight func(*Link) float64

// HopWeight charges 1 per link: shortest-hop routing, the paper's testbed
// behaviour ("any node can be reached from any other node with at most 3
// hops").
func HopWeight(*Link) float64 { return 1 }

// LatencyWeight charges the link latency.
func LatencyWeight(l *Link) float64 { return l.Latency }

// priority queue for Dijkstra.
type pqItem struct {
	node  NodeID
	dist  float64
	seq   int // deterministic tie-break: discovery order
	index int
}

type pq []*pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q pq) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *pq) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPath returns a minimum-weight path from src to dst under w,
// breaking ties deterministically by (weight, hop count, link ID). The
// second result is false when dst is unreachable. Paths never transit a
// compute node other than the endpoints: hosts do not forward (§4.3).
func (g *Graph) ShortestPath(src, dst NodeID, w Weight) (*Path, bool) {
	tree, err := g.ShortestPathTree(src, w)
	if err != nil {
		return nil, false
	}
	return tree.PathTo(dst)
}

// PathTree is the single-source shortest-path tree rooted at Src.
type PathTree struct {
	Src  NodeID
	g    *Graph
	dist map[NodeID]float64
	via  map[NodeID]*Link // link used to reach the node

	sweepOnce sync.Once
	sweep     []SweepStep
}

// SweepStep is one parent-before-child visit of a PathTree. For every
// node reachable from Src (excluding Src itself) it reports the node,
// the node it is reached through, the tree link joining them, and the
// accumulated path weight. Because every step's Parent appears in an
// earlier step (or is Src), a single pass over the steps supports
// dynamic programming along tree paths — accumulating a per-node value
// from its parent's — without materializing any Path.
type SweepStep struct {
	Node   NodeID
	Parent NodeID
	Via    *Link
	Dist   float64
}

// Sweep returns the tree's nodes in a deterministic parent-before-child
// order (breadth-first from Src, children visited in NodeID order). The
// order is computed once per tree and shared; the returned slice must
// not be mutated. Safe for concurrent use.
func (t *PathTree) Sweep() []SweepStep {
	t.sweepOnce.Do(func() {
		children := make(map[NodeID][]NodeID, len(t.via))
		for n, l := range t.via {
			p, _ := l.Other(n)
			children[p] = append(children[p], n)
		}
		for _, cs := range children {
			sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		}
		order := make([]SweepStep, 0, len(t.via))
		queue := []NodeID{t.Src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, c := range children[u] {
				order = append(order, SweepStep{Node: c, Parent: u, Via: t.via[c], Dist: t.dist[c]})
				queue = append(queue, c)
			}
		}
		t.sweep = order
	})
	return t.sweep
}

// ShortestPathTree runs Dijkstra from src. Weights must be nonnegative;
// +Inf excludes a link. Compute nodes other than src are treated as
// non-forwarding: edges are not relaxed *through* them.
func (g *Graph) ShortestPathTree(src NodeID, w Weight) (*PathTree, error) {
	if g.nodes[src] == nil {
		return nil, fmt.Errorf("graph: unknown source %q", src)
	}
	t := &PathTree{
		Src:  src,
		g:    g,
		dist: map[NodeID]float64{src: 0},
		via:  make(map[NodeID]*Link),
	}
	hops := map[NodeID]int{src: 0}
	var q pq
	seq := 0
	push := func(n NodeID, d float64) {
		heap.Push(&q, &pqItem{node: n, dist: d, seq: seq})
		seq++
	}
	push(src, 0)
	done := make(map[NodeID]bool)
	for q.Len() > 0 {
		it := heap.Pop(&q).(*pqItem)
		u := it.node
		if done[u] || it.dist > t.dist[u] {
			continue
		}
		done[u] = true
		// Hosts terminate traffic; only the source host forwards its own.
		if u != src && g.nodes[u].Kind == Compute {
			continue
		}
		// Iterate adjacency directly (already ID-ordered): these loops
		// don't mutate the graph, so LinksAt's defensive copy would only
		// add an allocation per visited node.
		for _, l := range g.adj[u] {
			wl := w(l)
			if math.IsInf(wl, 1) {
				continue
			}
			if wl < 0 {
				return nil, fmt.Errorf("graph: negative weight %v on link %d", wl, l.ID)
			}
			v, _ := l.Other(u)
			nd := t.dist[u] + wl
			nh := hops[u] + 1
			old, seen := t.dist[v]
			better := !seen || nd < old
			if !better && nd == old {
				// Deterministic tie-break: fewer hops, then smaller
				// link ID on the final edge.
				if nh < hops[v] || (nh == hops[v] && l.ID < t.via[v].ID) {
					better = true
				}
			}
			if better {
				t.dist[v] = nd
				t.via[v] = l
				hops[v] = nh
				push(v, nd)
			}
		}
	}
	return t, nil
}

// Dist returns the path weight to dst and whether dst is reachable.
func (t *PathTree) Dist(dst NodeID) (float64, bool) {
	d, ok := t.dist[dst]
	return d, ok
}

// PathTo materializes the tree path to dst.
func (t *PathTree) PathTo(dst NodeID) (*Path, bool) {
	if _, ok := t.dist[dst]; !ok {
		return nil, false
	}
	var rlinks []*Link
	var rnodes []NodeID
	cur := dst
	for cur != t.Src {
		l := t.via[cur]
		rlinks = append(rlinks, l)
		rnodes = append(rnodes, cur)
		cur, _ = l.Other(cur)
	}
	rnodes = append(rnodes, t.Src)
	// Reverse into forward order.
	p := &Path{
		Nodes: make([]NodeID, len(rnodes)),
		Links: make([]*Link, len(rlinks)),
	}
	for i := range rnodes {
		p.Nodes[i] = rnodes[len(rnodes)-1-i]
	}
	for i := range rlinks {
		p.Links[i] = rlinks[len(rlinks)-1-i]
	}
	return p, true
}

// WidestPath returns the path from src to dst maximizing the bottleneck
// value of each link under cap (typically Link.Capacity or measured
// availability), breaking ties by fewer hops. Returns false when
// unreachable.
func (g *Graph) WidestPath(src, dst NodeID, capOf func(*Link) float64) (*Path, bool) {
	if g.nodes[src] == nil || g.nodes[dst] == nil {
		return nil, false
	}
	width := map[NodeID]float64{src: math.Inf(1)}
	hops := map[NodeID]int{src: 0}
	via := make(map[NodeID]*Link)
	var q pq
	seq := 0
	heap.Push(&q, &pqItem{node: src, dist: 0, seq: seq}) // dist = -width for max-heap behaviour
	done := make(map[NodeID]bool)
	for q.Len() > 0 {
		it := heap.Pop(&q).(*pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u != src && g.nodes[u].Kind == Compute {
			continue
		}
		for _, l := range g.adj[u] { // no mutation: safe to skip LinksAt's copy
			c := capOf(l)
			if c <= 0 {
				continue
			}
			v, _ := l.Other(u)
			nw := math.Min(width[u], c)
			nh := hops[u] + 1
			old, seen := width[v]
			better := !seen || nw > old || (nw == old && nh < hops[v])
			if better {
				width[v] = nw
				hops[v] = nh
				via[v] = l
				seq++
				heap.Push(&q, &pqItem{node: v, dist: -nw, seq: seq})
			}
		}
	}
	if _, ok := width[dst]; !ok {
		return nil, false
	}
	t := &PathTree{Src: src, g: g, dist: width, via: via}
	return t.PathTo(dst)
}

// Reachable returns the set of nodes reachable from src through the
// forwarding rules (hosts do not forward).
func (g *Graph) Reachable(src NodeID) map[NodeID]bool {
	out := make(map[NodeID]bool)
	if g.nodes[src] == nil {
		return out
	}
	out[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u != src && g.nodes[u].Kind == Compute {
			continue
		}
		for _, l := range g.adj[u] { // no mutation: safe to skip LinksAt's copy
			v, _ := l.Other(u)
			if !out[v] {
				out[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// Connected reports whether all compute nodes can reach each other.
func (g *Graph) Connected() bool {
	hosts := g.ComputeNodes()
	if len(hosts) <= 1 {
		return true
	}
	r := g.Reachable(hosts[0])
	for _, h := range hosts {
		if !r[h] {
			return false
		}
	}
	return true
}

// RouteTable resolves a static route (a Path) for every ordered pair of
// compute nodes from the physical topology. Routes are computed lazily —
// one single-source Dijkstra tree per queried source, memoized — so
// building a table over a 5k-node generated topology costs one
// connectivity check, not an all-pairs sweep; only the pairs a workload
// actually asks about pay for path construction. The simulator and the
// modeler share route tables so that predictions match behaviour.
type RouteTable struct {
	g *Graph
	w Weight

	mu     sync.RWMutex
	trees  map[NodeID]*PathTree
	routes map[[2]NodeID]*Path
}

// routeWeight is the standard routing metric: hops first, latency as
// tie-break.
func routeWeight(l *Link) float64 { return 1 + l.Latency/1e3 }

// Routes builds the lazy route table for shortest-hop routes (latency
// tie-break) between compute nodes. Routes are symmetric in node
// sequence because weights are symmetric and tie-breaking is
// deterministic. It errors when any compute-node pair is disconnected
// (one reachability sweep; undirected connectivity is transitive), so
// callers keep the eager-construction error contract without the
// all-pairs cost.
func (g *Graph) Routes() (*RouteTable, error) {
	hosts := g.ComputeNodes()
	if len(hosts) > 1 {
		r := g.Reachable(hosts[0])
		for _, h := range hosts {
			if !r[h] {
				return nil, fmt.Errorf("graph: no route %s -> %s", hosts[0], h)
			}
		}
	}
	return &RouteTable{
		g:      g,
		w:      routeWeight,
		trees:  make(map[NodeID]*PathTree),
		routes: make(map[[2]NodeID]*Path),
	}, nil
}

// Route returns the path from src to dst, or nil for unknown pairs or
// src == dst. Safe for concurrent use: first resolution of a pair runs
// (at most) one Dijkstra from src and memoizes both the tree and the
// path; later calls are a read-locked map hit.
func (rt *RouteTable) Route(src, dst NodeID) *Path {
	if src == dst {
		return nil
	}
	key := [2]NodeID{src, dst}
	rt.mu.RLock()
	p, ok := rt.routes[key]
	rt.mu.RUnlock()
	if ok {
		return p
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if p, ok := rt.routes[key]; ok {
		return p
	}
	ns, nd := rt.g.nodes[src], rt.g.nodes[dst]
	if ns == nil || nd == nil || ns.Kind != Compute || nd.Kind != Compute {
		rt.routes[key] = nil // memoize the miss: non-compute pairs have no route
		return nil
	}
	tree := rt.trees[src]
	if tree == nil {
		t, err := rt.g.ShortestPathTree(src, rt.w)
		if err != nil {
			rt.routes[key] = nil
			return nil
		}
		tree = t
		rt.trees[src] = tree
	}
	p, _ = tree.PathTo(dst) // nil when unreachable (graph mutated post-build)
	rt.routes[key] = p
	return p
}

// Tree returns the memoized shortest-path tree rooted at src — the same
// tree Route materializes paths from, so DP sweeps over it (see
// PathTree.Sweep) agree link-for-link with per-pair Route answers. It
// errors for unknown or non-compute sources, mirroring Route's nil for
// such pairs.
func (rt *RouteTable) Tree(src NodeID) (*PathTree, error) {
	ns := rt.g.nodes[src]
	if ns == nil || ns.Kind != Compute {
		return nil, fmt.Errorf("graph: no routes from %q", src)
	}
	rt.mu.RLock()
	t := rt.trees[src]
	rt.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if t := rt.trees[src]; t != nil {
		return t, nil
	}
	t, err := rt.g.ShortestPathTree(src, rt.w)
	if err != nil {
		return nil, err
	}
	rt.trees[src] = t
	return t, nil
}

// Graph returns the graph the table was computed from.
func (rt *RouteTable) Graph() *Graph { return rt.g }

// Pairs returns all ordered pairs with routes, deterministically ordered.
func (rt *RouteTable) Pairs() [][2]NodeID {
	hosts := rt.g.ComputeNodes()
	var out [][2]NodeID
	for _, a := range hosts {
		for _, b := range hosts {
			if a != b {
				out = append(out, [2]NodeID{a, b})
			}
		}
	}
	return out
}
