// Package graph implements the annotated network graph used throughout the
// Remos reproduction: compute and network nodes joined by point-to-point
// links carrying capacity and latency annotations, plus the path and
// topology algorithms the Collector and Modeler need (shortest and widest
// paths, routed-subgraph extraction, degree-2 chain collapsing for logical
// topologies, and DOT export).
//
// The representation follows §4.3 of the paper: nodes are either compute
// nodes (hosts, the only senders and receivers) or network nodes (routers
// and switches, forwarding only), every link is annotated with physical
// characteristics, and network nodes may carry an internal bandwidth that
// limits the aggregate traffic crossing them (the paper's Figure 1
// discussion).
package graph

import (
	"fmt"
)

// NodeID names a node. IDs follow the paper's testbed convention
// ("m-1".."m-8", "aspen", "timberline", "whiteface") but are opaque here.
type NodeID string

// NodeKind distinguishes hosts from forwarding elements.
type NodeKind int

const (
	// Compute nodes run applications and terminate flows.
	Compute NodeKind = iota
	// Network nodes (routers, switches) only forward.
	Network
)

func (k NodeKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a vertex in the network graph.
type Node struct {
	ID   NodeID
	Kind NodeKind

	// InternalBW is the aggregate bandwidth, in bits per second, the node
	// can move between its interfaces. Zero means unlimited. Figure 1 of
	// the paper shows how this single number determines whether edge links
	// or switches are the bottleneck.
	InternalBW float64

	// ComputePower is a relative speed factor for compute nodes: work
	// units per second. Zero means the node cannot compute (the default
	// for network nodes).
	ComputePower float64

	// MemoryBytes is a compute node's physical memory (0 = unknown).
	// Node selection uses it for the paper's §2 constraint that "a
	// certain minimum number of nodes are often required to fit the
	// data sets into the physical memory of all participating nodes".
	MemoryBytes float64
}

// LinkID identifies a link within its graph. IDs are dense and assigned in
// insertion order, which gives deterministic iteration everywhere.
type LinkID int

// Dir selects one direction of a full-duplex link.
type Dir int

const (
	// AtoB is the direction from Link.A to Link.B.
	AtoB Dir = iota
	// BtoA is the reverse direction.
	BtoA
)

func (d Dir) String() string {
	if d == AtoB {
		return "a->b"
	}
	return "b->a"
}

// Reverse flips the direction.
func (d Dir) Reverse() Dir { return 1 - d }

// Link is a full-duplex point-to-point link. Capacity applies to each
// direction independently, matching switched Ethernet.
type Link struct {
	ID LinkID
	A  NodeID
	B  NodeID

	// Capacity is bits per second available in each direction.
	Capacity float64

	// Latency is the one-way propagation plus forwarding delay in
	// seconds. The paper's collector assumes a fixed per-hop delay; this
	// is where that constant lives.
	Latency float64
}

// Other returns the endpoint opposite n, and whether n is an endpoint.
func (l *Link) Other(n NodeID) (NodeID, bool) {
	switch n {
	case l.A:
		return l.B, true
	case l.B:
		return l.A, true
	}
	return "", false
}

// DirFrom returns the direction of travel when leaving node n over this
// link. It panics if n is not an endpoint.
func (l *Link) DirFrom(n NodeID) Dir {
	switch n {
	case l.A:
		return AtoB
	case l.B:
		return BtoA
	}
	panic(fmt.Sprintf("graph: node %s is not an endpoint of link %d (%s--%s)", n, l.ID, l.A, l.B))
}

// Head returns the node the given direction points at.
func (l *Link) Head(d Dir) NodeID {
	if d == AtoB {
		return l.B
	}
	return l.A
}

// Tail returns the node the given direction leaves from.
func (l *Link) Tail(d Dir) NodeID {
	if d == AtoB {
		return l.A
	}
	return l.B
}

// Channel is one direction of one link: the unit of capacity accounting in
// the simulator and the collector.
type Channel struct {
	Link LinkID
	Dir  Dir
}

func (c Channel) String() string { return fmt.Sprintf("link%d/%s", c.Link, c.Dir) }

// Graph is a mutable annotated network graph. The zero value is not ready
// to use; call New.
type Graph struct {
	nodes map[NodeID]*Node
	order []NodeID // insertion order, for deterministic iteration
	links []*Link
	adj   map[NodeID][]*Link
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		adj:   make(map[NodeID][]*Link),
	}
}

// AddNode inserts a node. It panics on duplicate IDs: topology files are
// static data and a duplicate is a bug, not an environmental error.
func (g *Graph) AddNode(n Node) *Node {
	if n.ID == "" {
		panic("graph: empty node ID")
	}
	if _, ok := g.nodes[n.ID]; ok {
		panic(fmt.Sprintf("graph: duplicate node %q", n.ID))
	}
	cp := n
	g.nodes[n.ID] = &cp
	g.order = append(g.order, n.ID)
	return &cp
}

// AddHost adds a compute node with the given compute power.
func (g *Graph) AddHost(id NodeID, power float64) *Node {
	return g.AddNode(Node{ID: id, Kind: Compute, ComputePower: power})
}

// AddRouter adds a network node with the given internal bandwidth
// (0 = unlimited).
func (g *Graph) AddRouter(id NodeID, internalBW float64) *Node {
	return g.AddNode(Node{ID: id, Kind: Network, InternalBW: internalBW})
}

// AddLink connects two existing nodes with a full-duplex link and returns
// it. Capacity must be positive; latency must be nonnegative.
func (g *Graph) AddLink(a, b NodeID, capacity, latency float64) *Link {
	if a == b {
		panic(fmt.Sprintf("graph: self-link at %q", a))
	}
	if _, ok := g.nodes[a]; !ok {
		panic(fmt.Sprintf("graph: link endpoint %q not in graph", a))
	}
	if _, ok := g.nodes[b]; !ok {
		panic(fmt.Sprintf("graph: link endpoint %q not in graph", b))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: non-positive capacity %v on %s--%s", capacity, a, b))
	}
	if latency < 0 {
		panic(fmt.Sprintf("graph: negative latency %v on %s--%s", latency, a, b))
	}
	l := &Link{ID: LinkID(len(g.links)), A: a, B: b, Capacity: capacity, Latency: latency}
	g.links = append(g.links, l)
	g.adj[a] = append(g.adj[a], l)
	g.adj[b] = append(g.adj[b], l)
	return l
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id NodeID) bool { return g.nodes[id] != nil }

// Link returns the link with the given ID, or nil. Removed links stay
// addressable (nil) so LinkIDs remain stable.
func (g *Graph) Link(id LinkID) *Link {
	if int(id) < 0 || int(id) >= len(g.links) {
		return nil
	}
	return g.links[int(id)]
}

// Nodes returns all node IDs in insertion order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.order))
	for _, id := range g.order {
		if g.nodes[id] != nil {
			out = append(out, id)
		}
	}
	return out
}

// ComputeNodes returns the IDs of all compute nodes in insertion order.
func (g *Graph) ComputeNodes() []NodeID {
	var out []NodeID
	for _, id := range g.Nodes() {
		if g.nodes[id].Kind == Compute {
			out = append(out, id)
		}
	}
	return out
}

// NetworkNodes returns the IDs of all network nodes in insertion order.
func (g *Graph) NetworkNodes() []NodeID {
	var out []NodeID
	for _, id := range g.Nodes() {
		if g.nodes[id].Kind == Network {
			out = append(out, id)
		}
	}
	return out
}

// Links returns all live links in ID order.
func (g *Graph) Links() []*Link {
	out := make([]*Link, 0, len(g.links))
	for _, l := range g.links {
		if l != nil {
			out = append(out, l)
		}
	}
	return out
}

// NumNodes returns the number of live nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of live links.
func (g *Graph) NumLinks() int {
	n := 0
	for _, l := range g.links {
		if l != nil {
			n++
		}
	}
	return n
}

// LinksAt returns the live links incident to a node, in ID order.
//
// The adjacency lists are maintained in ascending link-ID order by
// construction (AddLink assigns increasing IDs and appends; removals
// and Clone preserve relative order), so no sort is needed. The copy
// stays: callers iterate the result while mutating the graph (chain
// collapsing removes links mid-walk), which edits adj in place.
func (g *Graph) LinksAt(id NodeID) []*Link {
	return append([]*Link(nil), g.adj[id]...)
}

// Degree returns the number of live links at a node.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Neighbors returns the IDs adjacent to a node, in link-ID order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	for _, l := range g.LinksAt(id) {
		o, _ := l.Other(id)
		out = append(out, o)
	}
	return out
}

// RemoveLink deletes a link. The LinkID is not reused.
func (g *Graph) RemoveLink(id LinkID) {
	l := g.Link(id)
	if l == nil {
		return
	}
	g.links[int(id)] = nil
	g.adj[l.A] = removeLink(g.adj[l.A], l)
	g.adj[l.B] = removeLink(g.adj[l.B], l)
}

// RemoveNode deletes a node and all incident links.
func (g *Graph) RemoveNode(id NodeID) {
	if g.nodes[id] == nil {
		return
	}
	for _, l := range append([]*Link(nil), g.adj[id]...) {
		g.RemoveLink(l.ID)
	}
	delete(g.nodes, id)
	delete(g.adj, id)
	for i, o := range g.order {
		if o == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// Clone returns a deep copy. Link IDs are preserved.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, id := range g.order {
		if n := g.nodes[id]; n != nil {
			c.AddNode(*n)
		}
	}
	c.links = make([]*Link, len(g.links))
	for i, l := range g.links {
		if l == nil {
			continue
		}
		cp := *l
		c.links[i] = &cp
		c.adj[l.A] = append(c.adj[l.A], &cp)
		c.adj[l.B] = append(c.adj[l.B], &cp)
	}
	return c
}

// Validate checks structural invariants and returns the first violation.
func (g *Graph) Validate() error {
	for id, n := range g.nodes {
		if n.ID != id {
			return fmt.Errorf("graph: node map key %q != node ID %q", id, n.ID)
		}
		if n.Kind == Network && n.ComputePower != 0 {
			return fmt.Errorf("graph: network node %q has compute power", id)
		}
	}
	for _, l := range g.links {
		if l == nil {
			continue
		}
		if g.nodes[l.A] == nil || g.nodes[l.B] == nil {
			return fmt.Errorf("graph: link %d references missing node", l.ID)
		}
		if l.Capacity <= 0 {
			return fmt.Errorf("graph: link %d non-positive capacity", l.ID)
		}
	}
	return nil
}

func removeLink(ls []*Link, target *Link) []*Link {
	for i, l := range ls {
		if l == target {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}
