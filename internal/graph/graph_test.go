package graph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// diamond builds:
//
//	h1 -- r1 -- r2 -- h2
//	       \         /
//	        --- r3 --
//
// with a slow detour through r3.
func diamond() *Graph {
	g := New()
	g.AddHost("h1", 1)
	g.AddHost("h2", 1)
	g.AddRouter("r1", 0)
	g.AddRouter("r2", 0)
	g.AddRouter("r3", 0)
	g.AddLink("h1", "r1", 100e6, 0.001) // 0
	g.AddLink("r1", "r2", 100e6, 0.001) // 1
	g.AddLink("r2", "h2", 100e6, 0.001) // 2
	g.AddLink("r1", "r3", 10e6, 0.001)  // 3
	g.AddLink("r3", "r2", 10e6, 0.001)  // 4
	return g
}

func TestAddAndLookup(t *testing.T) {
	g := diamond()
	if g.NumNodes() != 5 || g.NumLinks() != 5 {
		t.Fatalf("got %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if g.Node("h1").Kind != Compute {
		t.Fatal("h1 not compute")
	}
	if g.Node("r1").Kind != Network {
		t.Fatal("r1 not network")
	}
	if g.Node("nope") != nil {
		t.Fatal("lookup of missing node returned non-nil")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.ComputeNodes(); len(got) != 2 || got[0] != "h1" || got[1] != "h2" {
		t.Fatalf("ComputeNodes = %v", got)
	}
	if got := g.NetworkNodes(); len(got) != 3 {
		t.Fatalf("NetworkNodes = %v", got)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	g := New()
	g.AddHost("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	g.AddHost("a", 1)
}

func TestSelfLinkPanics(t *testing.T) {
	g := New()
	g.AddHost("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-link")
		}
	}()
	g.AddLink("a", "a", 1e6, 0)
}

func TestLinkDirections(t *testing.T) {
	g := diamond()
	l := g.Link(1) // r1 -- r2
	if l.DirFrom("r1") != AtoB || l.DirFrom("r2") != BtoA {
		t.Fatal("DirFrom wrong")
	}
	if l.Head(AtoB) != "r2" || l.Tail(AtoB) != "r1" {
		t.Fatal("Head/Tail wrong")
	}
	if l.Head(BtoA) != "r1" || l.Tail(BtoA) != "r2" {
		t.Fatal("reverse Head/Tail wrong")
	}
	if AtoB.Reverse() != BtoA || BtoA.Reverse() != AtoB {
		t.Fatal("Reverse wrong")
	}
	if o, ok := l.Other("r1"); !ok || o != "r2" {
		t.Fatal("Other wrong")
	}
	if _, ok := l.Other("h1"); ok {
		t.Fatal("Other accepted non-endpoint")
	}
}

func TestShortestPathHops(t *testing.T) {
	g := diamond()
	p, ok := g.ShortestPath("h1", "h2", HopWeight)
	if !ok {
		t.Fatal("no path")
	}
	if p.Hops() != 3 {
		t.Fatalf("hops = %d, want 3 (via r1-r2)", p.Hops())
	}
	if p.Nodes[1] != "r1" || p.Nodes[2] != "r2" {
		t.Fatalf("path = %v", p)
	}
	if got := p.Bottleneck(); got != 100e6 {
		t.Fatalf("bottleneck = %v", got)
	}
	if got := p.Latency(); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("latency = %v", got)
	}
}

func TestPathChannels(t *testing.T) {
	g := diamond()
	p, _ := g.ShortestPath("h1", "h2", HopWeight)
	chs := p.Channels()
	if len(chs) != 3 {
		t.Fatalf("channels = %v", chs)
	}
	// First hop leaves h1 over link 0 (h1 is A).
	if chs[0] != (Channel{Link: 0, Dir: AtoB}) {
		t.Fatalf("first channel = %v", chs[0])
	}
	// Reverse path uses reverse channels.
	rp, _ := g.ShortestPath("h2", "h1", HopWeight)
	rchs := rp.Channels()
	if rchs[2] != (Channel{Link: 0, Dir: BtoA}) {
		t.Fatalf("reverse channel = %v", rchs[2])
	}
}

func TestHostsDoNotForward(t *testing.T) {
	// h1 -- hmid -- h2 : no route because hmid is a host.
	g := New()
	g.AddHost("h1", 1)
	g.AddHost("hmid", 1)
	g.AddHost("h2", 1)
	g.AddLink("h1", "hmid", 1e6, 0)
	g.AddLink("hmid", "h2", 1e6, 0)
	if _, ok := g.ShortestPath("h1", "h2", HopWeight); ok {
		t.Fatal("path transits a compute node")
	}
	r := g.Reachable("h1")
	if r["h2"] {
		t.Fatal("h2 reachable through a host")
	}
	if !r["hmid"] {
		t.Fatal("direct neighbor not reachable")
	}
	if g.Connected() {
		t.Fatal("graph reported connected")
	}
}

func TestWidestPath(t *testing.T) {
	g := diamond()
	// Make the direct path narrow and the detour wide.
	g.Link(1).Capacity = 5e6
	p, ok := g.WidestPath("h1", "h2", func(l *Link) float64 { return l.Capacity })
	if !ok {
		t.Fatal("no widest path")
	}
	if p.Bottleneck() != 10e6 {
		t.Fatalf("widest bottleneck = %v, want 10e6 via r3", p.Bottleneck())
	}
	if p.Nodes[2] != "r3" {
		t.Fatalf("widest path = %v", p)
	}
}

func TestWidestPathTieBreaksByHops(t *testing.T) {
	g := diamond() // both paths 100e6 vs 10e6; set equal
	g.Link(3).Capacity = 100e6
	g.Link(4).Capacity = 100e6
	p, _ := g.WidestPath("h1", "h2", func(l *Link) float64 { return l.Capacity })
	if p.Hops() != 3 {
		t.Fatalf("tie not broken by hops: %v", p)
	}
}

func TestRoutes(t *testing.T) {
	g := diamond()
	rt, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Route("h1", "h2")
	if p == nil || p.Hops() != 3 {
		t.Fatalf("route = %v", p)
	}
	if rt.Route("h1", "h1") != nil {
		t.Fatal("self route present")
	}
	back := rt.Route("h2", "h1")
	if back.Hops() != p.Hops() {
		t.Fatal("asymmetric route lengths")
	}
	if len(rt.Pairs()) != 2 {
		t.Fatalf("pairs = %v", rt.Pairs())
	}
}

func TestRoutesDisconnectedError(t *testing.T) {
	g := New()
	g.AddHost("a", 1)
	g.AddHost("b", 1)
	if _, err := g.Routes(); err == nil {
		t.Fatal("expected error for disconnected hosts")
	}
}

func TestRemoveNodeAndLink(t *testing.T) {
	g := diamond()
	g.RemoveLink(1) // cut r1--r2
	p, ok := g.ShortestPath("h1", "h2", HopWeight)
	if !ok {
		t.Fatal("detour should still exist")
	}
	if p.Hops() != 4 {
		t.Fatalf("hops after cut = %d, want 4", p.Hops())
	}
	g.RemoveNode("r3")
	if _, ok := g.ShortestPath("h1", "h2", HopWeight); ok {
		t.Fatal("still connected after removing r3")
	}
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.Link(0).Capacity = 1
	c.RemoveNode("r3")
	if g.Link(0).Capacity != 100e6 {
		t.Fatal("clone shares link storage")
	}
	if g.Node("r3") == nil {
		t.Fatal("clone shares node storage")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseChains(t *testing.T) {
	// h1 - r1 - r2 - r3 - h2 : r1,r2,r3 all degree 2 -> single link.
	g := New()
	g.AddHost("h1", 1)
	g.AddHost("h2", 1)
	g.AddRouter("r1", 0)
	g.AddRouter("r2", 0)
	g.AddRouter("r3", 0)
	g.AddLink("h1", "r1", 100e6, 0.001)
	g.AddLink("r1", "r2", 50e6, 0.002)
	g.AddLink("r2", "r3", 80e6, 0.003)
	g.AddLink("r3", "h2", 100e6, 0.004)
	c := g.CollapseChains(nil)
	if c.NumNodes() != 2 || c.NumLinks() != 1 {
		t.Fatalf("collapsed to %d nodes %d links", c.NumNodes(), c.NumLinks())
	}
	l := c.Links()[0]
	if l.Capacity != 50e6 {
		t.Fatalf("merged capacity = %v, want min 50e6", l.Capacity)
	}
	if math.Abs(l.Latency-0.010) > 1e-12 {
		t.Fatalf("merged latency = %v, want sum 0.010", l.Latency)
	}
}

func TestCollapsePreservesPathMetrics(t *testing.T) {
	g := New()
	g.AddHost("h1", 1)
	g.AddHost("h2", 1)
	g.AddRouter("r1", 0)
	g.AddRouter("r2", 0)
	g.AddLink("h1", "r1", 100e6, 0.001)
	g.AddLink("r1", "r2", 30e6, 0.005)
	g.AddLink("r2", "h2", 100e6, 0.001)
	before, _ := g.ShortestPath("h1", "h2", LatencyWeight)
	c := g.CollapseChains(nil)
	after, ok := c.ShortestPath("h1", "h2", LatencyWeight)
	if !ok {
		t.Fatal("no path after collapse")
	}
	if math.Abs(before.Latency()-after.Latency()) > 1e-12 {
		t.Fatalf("latency changed: %v -> %v", before.Latency(), after.Latency())
	}
	if before.Bottleneck() != after.Bottleneck() {
		t.Fatalf("bottleneck changed: %v -> %v", before.Bottleneck(), after.Bottleneck())
	}
}

func TestCollapseRespectsKeepAndInternalBW(t *testing.T) {
	g := New()
	g.AddHost("h1", 1)
	g.AddHost("h2", 1)
	g.AddRouter("slow", 20e6) // internal bandwidth lower than links
	g.AddLink("h1", "slow", 100e6, 0.001)
	g.AddLink("slow", "h2", 100e6, 0.001)
	c := g.CollapseChains(nil)
	if c.NumLinks() != 1 {
		t.Fatalf("links = %d", c.NumLinks())
	}
	if c.Links()[0].Capacity != 20e6 {
		t.Fatalf("internal BW not folded: %v", c.Links()[0].Capacity)
	}
	kept := g.CollapseChains(func(id NodeID) bool { return id == "slow" })
	if kept.Node("slow") == nil {
		t.Fatal("keep function ignored")
	}
}

func TestCollapseSkipsTriangleToSelfLink(t *testing.T) {
	// r mid between a pair already directly linked would create a parallel
	// edge — allowed; but two links to the SAME neighbor must not collapse.
	g := New()
	g.AddHost("h1", 1)
	g.AddRouter("r", 0)
	g.AddRouter("hub", 0)
	g.AddHost("h2", 1)
	g.AddLink("h1", "hub", 10e6, 0)
	g.AddLink("r", "hub", 10e6, 0)
	g.AddLink("r", "hub", 20e6, 0) // parallel pair: r has degree 2, both to hub
	g.AddLink("hub", "h2", 10e6, 0)
	c := g.CollapseChains(nil)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Node("r") == nil {
		t.Fatal("r collapsed into a self-link")
	}
}

func TestInducedByRoutes(t *testing.T) {
	g := diamond()
	rt, _ := g.Routes()
	sub := g.InducedByRoutes(rt, []NodeID{"h1", "h2"})
	// Route uses h1-r1-r2-h2; r3 and its links must be hidden.
	if sub.Node("r3") != nil {
		t.Fatal("r3 should be pruned")
	}
	if sub.NumLinks() != 3 {
		t.Fatalf("links = %d, want 3", sub.NumLinks())
	}
	if _, ok := sub.ShortestPath("h1", "h2", HopWeight); !ok {
		t.Fatal("induced graph lost connectivity")
	}
}

func TestDOTAndASCII(t *testing.T) {
	g := diamond()
	dot := g.DOT("test")
	for _, want := range []string{"graph \"test\"", "\"h1\"", "shape=box", "100Mbps"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	ascii := g.ASCII()
	if !strings.Contains(ascii, "5 nodes, 5 links") {
		t.Fatalf("ASCII header wrong:\n%s", ascii)
	}
	if !strings.Contains(ascii, "--r1") {
		t.Fatalf("ASCII missing adjacency:\n%s", ascii)
	}
}

// Property-style test: on random connected graphs, Routes succeeds, every
// route's intermediate nodes are network nodes, and route channels stay
// consistent with the node sequence.
func TestRandomGraphRouteInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := New()
		nHosts := 2 + rng.Intn(5)
		nRouters := 1 + rng.Intn(5)
		for i := 0; i < nHosts; i++ {
			g.AddHost(NodeID(string(rune('a'+i))+"-host"), 1)
		}
		for i := 0; i < nRouters; i++ {
			g.AddRouter(NodeID(string(rune('A'+i))+"-rtr"), 0)
		}
		routers := g.NetworkNodes()
		// Ring of routers guarantees router connectivity.
		if len(routers) > 1 {
			for i := range routers {
				g.AddLink(routers[i], routers[(i+1)%len(routers)], 10e6+float64(rng.Intn(90))*1e6, 0.001)
			}
		}
		for _, h := range g.ComputeNodes() {
			g.AddLink(h, routers[rng.Intn(len(routers))], 100e6, 0.001)
		}
		// Extra random router-router links.
		for i := 0; i < rng.Intn(4); i++ {
			a := routers[rng.Intn(len(routers))]
			b := routers[rng.Intn(len(routers))]
			if a != b {
				g.AddLink(a, b, 10e6, 0.001)
			}
		}
		rt, err := g.Routes()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, pair := range rt.Pairs() {
			p := rt.Route(pair[0], pair[1])
			if p.Nodes[0] != pair[0] || p.Nodes[len(p.Nodes)-1] != pair[1] {
				t.Fatalf("route endpoints wrong: %v", p)
			}
			for _, mid := range p.Nodes[1 : len(p.Nodes)-1] {
				if g.Node(mid).Kind != Network {
					t.Fatalf("route transits host %s: %v", mid, p)
				}
			}
			for i, ch := range p.Channels() {
				l := g.Link(ch.Link)
				if l.Tail(ch.Dir) != p.Nodes[i] || l.Head(ch.Dir) != p.Nodes[i+1] {
					t.Fatalf("channel %v inconsistent with path %v", ch, p)
				}
			}
		}
	}
}

func BenchmarkShortestPathTree(b *testing.B) {
	g := New()
	// 10x10 grid of routers with hosts on the corners.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			g.AddRouter(NodeID(gridName(i, j)), 0)
		}
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i+1 < 10 {
				g.AddLink(NodeID(gridName(i, j)), NodeID(gridName(i+1, j)), 100e6, 0.001)
			}
			if j+1 < 10 {
				g.AddLink(NodeID(gridName(i, j)), NodeID(gridName(i, j+1)), 100e6, 0.001)
			}
		}
	}
	g.AddHost("src", 1)
	g.AddLink("src", NodeID(gridName(0, 0)), 100e6, 0.001)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPathTree("src", HopWeight); err != nil {
			b.Fatal(err)
		}
	}
}

func gridName(i, j int) string {
	return "g" + string(rune('0'+i)) + string(rune('0'+j))
}
