// Package topofile reads and writes a small declarative topology format,
// so deployments can describe their network the way the paper's testbed
// configuration did, instead of constructing graphs in code:
//
//	# the CMU testbed (Figure 3)
//	host   m-1    power=1.0
//	router aspen
//	router slowsw internal=10Mbps
//	link   m-1 aspen 100Mbps 0.5ms
//
// Lines are `host NAME [power=F]`, `router NAME [internal=BW]`, and
// `link A B BANDWIDTH LATENCY`. Bandwidth accepts bps with an optional
// Kbps/Mbps/Gbps suffix; latency accepts s/ms/us. '#' starts a comment.
package topofile

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Parse reads a topology description.
func Parse(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := parseLine(g, fields); err != nil {
			return nil, fmt.Errorf("topofile: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topofile: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topofile: %w", err)
	}
	return g, nil
}

// ParseString parses a topology from a string.
func ParseString(s string) (*graph.Graph, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(g *graph.Graph, fields []string) (err error) {
	defer func() {
		// The graph builder panics on structural errors (duplicate
		// nodes, unknown endpoints); surface those as parse errors.
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	switch fields[0] {
	case "host":
		if len(fields) < 2 {
			return fmt.Errorf("host needs a name")
		}
		power := 1.0
		for _, opt := range fields[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return fmt.Errorf("bad option %q", opt)
			}
			switch k {
			case "power":
				power, err = strconv.ParseFloat(v, 64)
				if err != nil {
					return fmt.Errorf("bad power %q", v)
				}
				// strconv.ParseFloat accepts "NaN" and "Inf"; a compute
				// power must be a finite positive number.
				if math.IsNaN(power) || math.IsInf(power, 0) || power <= 0 {
					return fmt.Errorf("power must be a finite positive number, got %q", v)
				}
			default:
				return fmt.Errorf("unknown host option %q", k)
			}
		}
		g.AddHost(graph.NodeID(fields[1]), power)
	case "router", "switch":
		if len(fields) < 2 {
			return fmt.Errorf("router needs a name")
		}
		internal := 0.0
		for _, opt := range fields[2:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return fmt.Errorf("bad option %q", opt)
			}
			switch k {
			case "internal":
				internal, err = ParseBandwidth(v)
				if err != nil {
					return err
				}
			default:
				return fmt.Errorf("unknown router option %q", k)
			}
		}
		g.AddRouter(graph.NodeID(fields[1]), internal)
	case "link":
		if len(fields) != 5 {
			return fmt.Errorf("link needs: link A B BANDWIDTH LATENCY")
		}
		bw, err := ParseBandwidth(fields[3])
		if err != nil {
			return err
		}
		lat, err := ParseLatency(fields[4])
		if err != nil {
			return err
		}
		g.AddLink(graph.NodeID(fields[1]), graph.NodeID(fields[2]), bw, lat)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

// ParseBandwidth parses "100Mbps", "1.5Gbps", "64Kbps", or a raw
// bits-per-second number.
func ParseBandwidth(s string) (float64, error) {
	mult := 1.0
	num := s
	for _, suf := range []struct {
		name string
		mult float64
	}{
		{"Gbps", 1e9}, {"Mbps", 1e6}, {"Kbps", 1e3}, {"bps", 1},
	} {
		if strings.HasSuffix(s, suf.name) {
			mult = suf.mult
			num = strings.TrimSuffix(s, suf.name)
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad bandwidth %q", s)
	}
	// ParseFloat accepts "NaN" and "Inf"; a NaN capacity entering the
	// graph poisons every max-min computation downstream, so reject it
	// here at the edge.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bandwidth must be finite, got %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative bandwidth %q", s)
	}
	return v * mult, nil
}

// ParseLatency parses "0.5ms", "2us", "1s", or a raw seconds number.
func ParseLatency(s string) (float64, error) {
	mult := 1.0
	num := s
	for _, suf := range []struct {
		name string
		mult float64
	}{
		{"ms", 1e-3}, {"us", 1e-6}, {"s", 1},
	} {
		if strings.HasSuffix(s, suf.name) {
			mult = suf.mult
			num = strings.TrimSuffix(s, suf.name)
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad latency %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("latency must be finite, got %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative latency %q", s)
	}
	return v * mult, nil
}

// Format writes a graph in canonical topofile form: hosts, routers, then
// links, each sorted; bandwidths in Mbps, latencies in ms.
func Format(g *graph.Graph) string {
	var b strings.Builder
	hosts := g.ComputeNodes()
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, id := range hosts {
		n := g.Node(id)
		if n.ComputePower != 1 {
			fmt.Fprintf(&b, "host %s power=%g\n", id, n.ComputePower)
		} else {
			fmt.Fprintf(&b, "host %s\n", id)
		}
	}
	routers := g.NetworkNodes()
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	for _, id := range routers {
		n := g.Node(id)
		if n.InternalBW > 0 {
			fmt.Fprintf(&b, "router %s internal=%gMbps\n", id, n.InternalBW/1e6)
		} else {
			fmt.Fprintf(&b, "router %s\n", id)
		}
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "link %s %s %gMbps %gms\n", l.A, l.B, l.Capacity/1e6, l.Latency*1e3)
	}
	return b.String()
}
