package topofile

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

const testbedFile = `
# the CMU testbed (Figure 3)
host m-1
host m-2
router aspen
router slowsw internal=10Mbps
link m-1 aspen 100Mbps 0.5ms
link m-2 slowsw 10Mbps 0.5ms
link aspen slowsw 100Mbps 2ms
`

func TestParseBasics(t *testing.T) {
	g, err := ParseString(testbedFile)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumLinks() != 3 {
		t.Fatalf("%d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if g.Node("m-1").Kind != graph.Compute || g.Node("m-1").ComputePower != 1 {
		t.Fatalf("m-1 = %+v", g.Node("m-1"))
	}
	if g.Node("slowsw").InternalBW != 10e6 {
		t.Fatalf("slowsw internal = %v", g.Node("slowsw").InternalBW)
	}
	l := g.Links()[2]
	if l.Capacity != 100e6 || math.Abs(l.Latency-0.002) > 1e-12 {
		t.Fatalf("link = %+v", l)
	}
}

func TestParseHostPowerAndSwitchAlias(t *testing.T) {
	g, err := ParseString("host fast power=2.5\nswitch sw internal=1Gbps\nlink fast sw 1Gbps 1us\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("fast").ComputePower != 2.5 {
		t.Fatalf("power = %v", g.Node("fast").ComputePower)
	}
	if g.Node("sw").InternalBW != 1e9 {
		t.Fatalf("internal = %v", g.Node("sw").InternalBW)
	}
	if math.Abs(g.Links()[0].Latency-1e-6) > 1e-18 {
		t.Fatalf("latency = %v", g.Links()[0].Latency)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate x\n",
		"host no name":      "host\n",
		"bad option":        "host a power\n",
		"bad power":         "host a power=abc\n",
		"unknown host opt":  "host a speed=2\n",
		"router no name":    "router\n",
		"bad internal":      "router r internal=xyz\n",
		"unknown rtr opt":   "router r color=red\n",
		"short link":        "host a\nhost b\nlink a b 100Mbps\n",
		"bad bandwidth":     "host a\nrouter r\nlink a r fast 1ms\n",
		"bad latency":       "host a\nrouter r\nlink a r 1Mbps soon\n",
		"duplicate node":    "host a\nhost a\n",
		"unknown endpoint":  "host a\nlink a b 1Mbps 1ms\n",
		"negative bw":       "host a\nrouter r\nlink a r -5Mbps 1ms\n",
		"negative latency":  "host a\nrouter r\nlink a r 5Mbps -1ms\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	g, err := ParseString("# only comments\n\n   \nhost a # trailing comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
}

func TestParseBandwidthUnits(t *testing.T) {
	cases := map[string]float64{
		"100Mbps": 100e6,
		"1.5Gbps": 1.5e9,
		"64Kbps":  64e3,
		"250bps":  250,
		"1000":    1000,
	}
	for s, want := range cases {
		got, err := ParseBandwidth(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", s, got, want)
		}
	}
}

func TestParseLatencyUnits(t *testing.T) {
	cases := map[string]float64{
		"0.5ms": 0.0005,
		"2us":   2e-6,
		"1s":    1,
		"0.25":  0.25,
	}
	for s, want := range cases {
		got, err := ParseLatency(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if math.Abs(got-want) > 1e-15 {
			t.Fatalf("%s = %v, want %v", s, got, want)
		}
	}
}

// Round trip: Format(Parse(x)) == Format(Parse(Format(Parse(x)))) and
// the graphs match structurally.
func TestRoundTripTestbed(t *testing.T) {
	orig := topology.Testbed()
	text := Format(orig)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if back.NumNodes() != orig.NumNodes() || back.NumLinks() != orig.NumLinks() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			back.NumNodes(), back.NumLinks(), orig.NumNodes(), orig.NumLinks())
	}
	for _, id := range orig.Nodes() {
		on, bn := orig.Node(id), back.Node(id)
		if bn == nil || on.Kind != bn.Kind || on.InternalBW != bn.InternalBW || on.ComputePower != bn.ComputePower {
			t.Fatalf("node %s changed: %+v vs %+v", id, on, bn)
		}
	}
	if Format(back) != text {
		t.Fatal("Format not canonical")
	}
	// Routes computed from the round-tripped graph agree.
	rt1, _ := orig.Routes()
	rt2, err := back.Routes()
	if err != nil {
		t.Fatal(err)
	}
	p1 := rt1.Route("m-1", "m-8")
	p2 := rt2.Route("m-1", "m-8")
	if p1.Hops() != p2.Hops() {
		t.Fatalf("routes differ: %v vs %v", p1, p2)
	}
}

func TestRoundTripFigure1(t *testing.T) {
	orig := topology.Figure1(topology.Figure1SlowSwitches())
	back, err := ParseString(Format(orig))
	if err != nil {
		t.Fatal(err)
	}
	if back.Node("A").InternalBW != 10e6 {
		t.Fatalf("internal BW lost: %v", back.Node("A").InternalBW)
	}
}

func TestFormatReadable(t *testing.T) {
	text := Format(topology.Testbed())
	if !strings.Contains(text, "host m-1\n") {
		t.Fatalf("format:\n%s", text)
	}
	if !strings.Contains(text, "link m-1 aspen 100Mbps 0.5ms") {
		t.Fatalf("format:\n%s", text)
	}
}
