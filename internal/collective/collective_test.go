package collective

import (
	"math"
	"testing"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
)

func wideAreaEnv(t *testing.T) (*simclock.Clock, *netsim.Network, *core.Modeler) {
	t.Helper()
	// Two sites of 4 hosts, 5-hop 10 Mbps backbone, 100 Mbps LANs.
	g := topology.WideArea(4, 5, 100, 10)
	clk := simclock.New()
	n, err := netsim.New(clk, g)
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client:     snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:      clk,
		Addrs:      addrs,
		PollPeriod: 2,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10)
	return clk, n, core.New(core.Config{Source: col})
}

func participants() []graph.NodeID {
	return []graph.NodeID{"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}
}

func TestFlatSchedule(t *testing.T) {
	s, err := Flat("a0", participants(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) != 1 || len(s.Rounds[0]) != 7 {
		t.Fatalf("rounds = %+v", s.Rounds)
	}
	recv := s.Receivers()
	if len(recv) != 7 || recv["a0"] != 0 {
		t.Fatalf("receivers = %v", recv)
	}
	if s.TotalBytes() != 7e6 {
		t.Fatalf("total = %v", s.TotalBytes())
	}
}

func TestBinomialSchedule(t *testing.T) {
	s, err := Binomial("a0", participants(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// 8 participants -> 3 rounds (1+1, 2, 4).
	if len(s.Rounds) != 3 {
		t.Fatalf("rounds = %d", len(s.Rounds))
	}
	if len(s.Rounds[0]) != 1 || len(s.Rounds[1]) != 2 || len(s.Rounds[2]) != 4 {
		t.Fatalf("round sizes = %d,%d,%d", len(s.Rounds[0]), len(s.Rounds[1]), len(s.Rounds[2]))
	}
	// Every non-root receives exactly once.
	for n, c := range s.Receivers() {
		if c != 1 {
			t.Fatalf("%s received %d times", n, c)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Flat("zz", participants(), 1e6); err == nil {
		t.Fatal("root outside participants accepted")
	}
	if _, err := Flat("a0", participants(), 0); err == nil {
		t.Fatal("zero payload accepted")
	}
	if _, err := Binomial("a0", []graph.NodeID{"a0", "a1", "a1"}, 1); err == nil {
		t.Fatal("duplicate participant accepted")
	}
}

func TestSingleParticipantBroadcast(t *testing.T) {
	s, err := Flat("a0", []graph.NodeID{"a0"}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) != 0 {
		t.Fatalf("rounds = %d", len(s.Rounds))
	}
	_, n, _ := wideAreaEnv(t)
	if got := Measure(n, s, "app"); got != 0 {
		t.Fatalf("empty broadcast took %v", got)
	}
}

func TestMaxBottleneckTreeCrossesWANOnce(t *testing.T) {
	_, _, mod := wideAreaEnv(t)
	bw, err := mod.BandwidthMatrix(participants(), core.TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := MaxBottleneckTree("a0", participants(), bw)
	if err != nil {
		t.Fatal(err)
	}
	// Count tree edges that cross sites: must be exactly 1.
	cross := 0
	for child, parent := range tree.Parent {
		if child[0] != parent[0] {
			cross++
		}
	}
	if cross != 1 {
		t.Fatalf("tree crosses the WAN %d times, want 1", cross)
	}
	// All 7 non-roots have parents.
	if len(tree.Parent) != 7 {
		t.Fatalf("parents = %d", len(tree.Parent))
	}
}

func TestTopologyAwareBeatsFlatAcrossWAN(t *testing.T) {
	payload := 10e6 / 8 * 10 // 12.5 MB

	flatTime := func() float64 {
		_, n, _ := wideAreaEnv(t)
		s, err := Flat("a0", participants(), payload)
		if err != nil {
			t.Fatal(err)
		}
		return Measure(n, s, "app")
	}()
	awareTime := func() float64 {
		_, n, mod := wideAreaEnv(t)
		s, err := TopologyAware(mod, "a0", participants(), payload, core.TFCapacity())
		if err != nil {
			t.Fatal(err)
		}
		return Measure(n, s, "app")
	}()
	binomTime := func() float64 {
		_, n, _ := wideAreaEnv(t)
		s, err := Binomial("a0", participants(), payload)
		if err != nil {
			t.Fatal(err)
		}
		return Measure(n, s, "app")
	}()

	// Flat pushes 4 copies through the 10 Mbps WAN; topology-aware pushes
	// one. Expect ~3-4x improvement.
	if awareTime*2.5 > flatTime {
		t.Fatalf("topology-aware %v vs flat %v: less than 2.5x win", awareTime, flatTime)
	}
	// The oblivious binomial tree also crosses the WAN multiple times
	// (participant order interleaves sites), so topology-aware beats it
	// too on this network.
	if awareTime >= binomTime {
		t.Fatalf("topology-aware %v not better than binomial %v", awareTime, binomTime)
	}
}

func TestBroadcastDeliversExactBytes(t *testing.T) {
	_, n, mod := wideAreaEnv(t)
	payload := 2e6
	s, err := TopologyAware(mod, "a0", participants(), payload, core.TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	before := n.DeliveredBytes()
	Measure(n, s, "app")
	delivered := n.DeliveredBytes() - before
	if math.Abs(delivered-7*payload) > 1 {
		t.Fatalf("delivered %v bytes, want %v", delivered, 7*payload)
	}
	for node, c := range s.Receivers() {
		if c != 1 {
			t.Fatalf("%s received %d times", node, c)
		}
	}
}

func TestGatherSchedule(t *testing.T) {
	_, n, mod := wideAreaEnv(t)
	bw, err := mod.BandwidthMatrix(participants(), core.TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := MaxBottleneckTree("a0", participants(), bw)
	if err != nil {
		t.Fatal(err)
	}
	s := tree.GatherSchedule("gather", 1e6)
	if s.Op != "gather" {
		t.Fatalf("op = %s", s.Op)
	}
	// Total bytes: every node's 1 MB crosses each tree edge above it
	// exactly once; with subtree aggregation, sum over edges of subtree
	// size = sum over non-root nodes of their depth... just verify the
	// root ends up receiving 7 MB worth of distinct contributions:
	// the flows into the root sum to 7 MB.
	var intoRoot float64
	for _, r := range s.Rounds {
		for _, f := range r {
			if f.Dst == "a0" {
				intoRoot += f.Bytes
			}
		}
	}
	if math.Abs(intoRoot-7e6) > 1 {
		t.Fatalf("root received %v bytes of payload, want 7e6", intoRoot)
	}
	// Runs to completion.
	if d := Measure(n, s, "app"); d <= 0 {
		t.Fatalf("gather took %v", d)
	}
}

func TestMeasureUnderCompetingTraffic(t *testing.T) {
	_, n, mod := wideAreaEnv(t)
	s, err := TopologyAware(mod, "a0", participants(), 1e6, core.TFCapacity())
	if err != nil {
		t.Fatal(err)
	}
	clean := Measure(n, s, "app")
	// Occupy the WAN with a blast; the same schedule slows down.
	n.StartFlow(netsim.FlowSpec{Src: "a1", Dst: "b1", RateCap: 9e6, Priority: true, Owner: "traffic"})
	busy := Measure(n, s, "app")
	if busy <= clean*2 {
		t.Fatalf("busy %v vs clean %v: WAN contention not visible", busy, clean)
	}
}

func BenchmarkTopologyAwareCompile(b *testing.B) {
	g := topology.WideArea(8, 5, 100, 10)
	clk := simclock.New()
	n, err := netsim.New(clk, g)
	if err != nil {
		b.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := collector.New(collector.Config{
		Client: snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:  clk, Addrs: addrs, PollPeriod: 2,
	})
	if err := col.Start(); err != nil {
		b.Fatal(err)
	}
	clk.Advance(10)
	mod := core.New(core.Config{Source: col})
	parts := n.Graph().ComputeNodes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TopologyAware(mod, parts[0], parts, 1e6, core.TFCapacity()); err != nil {
			b.Fatal(err)
		}
	}
}
