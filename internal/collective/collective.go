// Package collective implements Remos-driven optimization of group
// communication — the paper's §2 "Optimization of communication" usage
// model: "if an application relies heavily on broadcasts, some subnets
// may be better platforms than others", and Remos can be used "to
// optimize primitives in a communication library by customizing the
// implementation of group communication operations for a particular
// network".
//
// A collective operation is compiled into a Schedule: a sequence of
// rounds, each a set of point-to-point transfers that run concurrently;
// rounds run back to back. Three broadcast strategies are provided:
//
//   - Flat: the root sends to every participant directly (what a naive
//     library does). All copies leave the root's access link and cross
//     any shared backbone once per receiver.
//   - Binomial: the classic topology-oblivious binomial tree: informed
//     nodes recruit the rest in ceil(log2 P) rounds.
//   - TopologyAware: a maximum-bottleneck spanning tree built from
//     Remos bandwidth measurements, so each slow link is crossed exactly
//     once and fan-out happens behind it.
//
// Gather schedules are the same trees run in reverse.
package collective

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
)

// Round is a set of transfers that run concurrently.
type Round []netsim.FlowSpec

// Schedule is a compiled collective operation.
type Schedule struct {
	Name   string
	Op     string // "broadcast" or "gather"
	Root   graph.NodeID
	Rounds []Round
}

// TotalBytes sums the payload bytes moved by the schedule.
func (s *Schedule) TotalBytes() float64 {
	var sum float64
	for _, r := range s.Rounds {
		for _, f := range r {
			sum += f.Bytes
		}
	}
	return sum
}

// Receivers returns every distinct destination (diagnostic; for a
// broadcast this must equal the non-root participants).
func (s *Schedule) Receivers() map[graph.NodeID]int {
	out := make(map[graph.NodeID]int)
	for _, r := range s.Rounds {
		for _, f := range r {
			out[f.Dst]++
		}
	}
	return out
}

func validate(root graph.NodeID, nodes []graph.NodeID, bytes float64) error {
	if bytes <= 0 {
		return fmt.Errorf("collective: non-positive payload %v", bytes)
	}
	found := false
	seen := make(map[graph.NodeID]bool)
	for _, n := range nodes {
		if seen[n] {
			return fmt.Errorf("collective: duplicate participant %q", n)
		}
		seen[n] = true
		if n == root {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("collective: root %q not among participants", root)
	}
	return nil
}

// Flat builds the naive one-round broadcast: root sends to everyone.
func Flat(root graph.NodeID, nodes []graph.NodeID, bytes float64) (*Schedule, error) {
	if err := validate(root, nodes, bytes); err != nil {
		return nil, err
	}
	var round Round
	for _, n := range nodes {
		if n != root {
			round = append(round, netsim.FlowSpec{Src: root, Dst: n, Bytes: bytes})
		}
	}
	s := &Schedule{Name: "flat", Op: "broadcast", Root: root}
	if len(round) > 0 {
		s.Rounds = append(s.Rounds, round)
	}
	return s, nil
}

// Binomial builds the topology-oblivious binomial-tree broadcast: in
// each round every informed node sends to one uninformed node, doubling
// the informed set, in participant order.
func Binomial(root graph.NodeID, nodes []graph.NodeID, bytes float64) (*Schedule, error) {
	if err := validate(root, nodes, bytes); err != nil {
		return nil, err
	}
	informed := []graph.NodeID{root}
	var rest []graph.NodeID
	for _, n := range nodes {
		if n != root {
			rest = append(rest, n)
		}
	}
	s := &Schedule{Name: "binomial", Op: "broadcast", Root: root}
	for len(rest) > 0 {
		var round Round
		var newly []graph.NodeID
		for _, sender := range informed {
			if len(rest) == 0 {
				break
			}
			dst := rest[0]
			rest = rest[1:]
			round = append(round, netsim.FlowSpec{Src: sender, Dst: dst, Bytes: bytes})
			newly = append(newly, dst)
		}
		informed = append(informed, newly...)
		s.Rounds = append(s.Rounds, round)
	}
	return s, nil
}

// Tree is a rooted spanning tree over participants.
type Tree struct {
	Root     graph.NodeID
	Children map[graph.NodeID][]graph.NodeID
	Parent   map[graph.NodeID]graph.NodeID
}

// MaxBottleneckTree builds a spanning tree over the participants that
// maximizes the bottleneck bandwidth of every root-to-leaf path (Prim on
// negated widest-path weights), using a pairwise bandwidth matrix.
func MaxBottleneckTree(root graph.NodeID, nodes []graph.NodeID, bw [][]float64) (*Tree, error) {
	idx := make(map[graph.NodeID]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	ri, ok := idx[root]
	if !ok {
		return nil, fmt.Errorf("collective: root %q not among participants", root)
	}
	t := &Tree{
		Root:     root,
		Children: make(map[graph.NodeID][]graph.NodeID),
		Parent:   make(map[graph.NodeID]graph.NodeID),
	}
	inTree := make([]bool, len(nodes))
	inTree[ri] = true
	// width[i] = best bottleneck from the tree to node i; via[i] = the
	// tree node achieving it.
	width := make([]float64, len(nodes))
	via := make([]int, len(nodes))
	for i := range nodes {
		if i != ri {
			width[i] = math.Min(bw[ri][i], bw[i][ri])
			via[i] = ri
		}
	}
	for added := 1; added < len(nodes); added++ {
		best, bestW := -1, -1.0
		for i := range nodes {
			if !inTree[i] && width[i] > bestW {
				best, bestW = i, width[i]
			}
		}
		if best < 0 || bestW <= 0 {
			return nil, fmt.Errorf("collective: participants not fully connected")
		}
		inTree[best] = true
		parent := nodes[via[best]]
		t.Parent[nodes[best]] = parent
		t.Children[parent] = append(t.Children[parent], nodes[best])
		for i := range nodes {
			if !inTree[i] {
				w := math.Min(bw[best][i], bw[i][best])
				if w > width[i] {
					width[i] = w
					via[i] = best
				}
			}
		}
	}
	return t, nil
}

// subtreeSize counts nodes under (and including) n.
func (t *Tree) subtreeSize(n graph.NodeID) int {
	size := 1
	for _, c := range t.Children[n] {
		size += t.subtreeSize(c)
	}
	return size
}

// BroadcastSchedule compiles the tree into rounds: each informed node
// sends to one child per round, largest subtree first (the classical
// ordering that minimizes completion rounds).
func (t *Tree) BroadcastSchedule(name string, bytes float64) *Schedule {
	// Per-node child queues, ordered by descending subtree size.
	queues := make(map[graph.NodeID][]graph.NodeID)
	for n, cs := range t.Children {
		q := append([]graph.NodeID(nil), cs...)
		sort.SliceStable(q, func(i, j int) bool {
			return t.subtreeSize(q[i]) > t.subtreeSize(q[j])
		})
		queues[n] = q
	}
	s := &Schedule{Name: name, Op: "broadcast", Root: t.Root}
	informed := []graph.NodeID{t.Root}
	for {
		var round Round
		var newly []graph.NodeID
		for _, sender := range informed {
			q := queues[sender]
			if len(q) == 0 {
				continue
			}
			dst := q[0]
			queues[sender] = q[1:]
			round = append(round, netsim.FlowSpec{Src: sender, Dst: dst, Bytes: bytes})
			newly = append(newly, dst)
		}
		if len(round) == 0 {
			break
		}
		s.Rounds = append(s.Rounds, round)
		informed = append(informed, newly...)
	}
	return s
}

// GatherSchedule compiles the reverse operation: leaves push toward the
// root, a node forwarding its subtree's accumulated payload once its
// own children have delivered.
func (t *Tree) GatherSchedule(name string, bytesPerNode float64) *Schedule {
	s := &Schedule{Name: name, Op: "gather", Root: t.Root}
	// Process by decreasing depth: all nodes at the deepest level send
	// first (their subtree totals), then the next level, etc.
	depth := make(map[graph.NodeID]int)
	var walk func(n graph.NodeID, d int) int
	maxDepth := 0
	walk = func(n graph.NodeID, d int) int {
		depth[n] = d
		if d > maxDepth {
			maxDepth = d
		}
		for _, c := range t.Children[n] {
			walk(c, d+1)
		}
		return 0
	}
	walk(t.Root, 0)
	for d := maxDepth; d >= 1; d-- {
		var round Round
		for n, nd := range depth {
			if nd != d {
				continue
			}
			payload := float64(t.subtreeSize(n)) * bytesPerNode
			round = append(round, netsim.FlowSpec{Src: n, Dst: t.Parent[n], Bytes: payload})
		}
		sort.Slice(round, func(i, j int) bool { return round[i].Src < round[j].Src })
		if len(round) > 0 {
			s.Rounds = append(s.Rounds, round)
		}
	}
	return s
}

// TopologyAware builds a broadcast schedule from live Remos
// measurements: bandwidth matrix -> max-bottleneck tree -> round
// schedule.
func TopologyAware(m *core.Modeler, root graph.NodeID, nodes []graph.NodeID, bytes float64, tf core.Timeframe) (*Schedule, error) {
	if err := validate(root, nodes, bytes); err != nil {
		return nil, err
	}
	bw, err := m.BandwidthMatrix(nodes, tf)
	if err != nil {
		return nil, err
	}
	t, err := MaxBottleneckTree(root, nodes, bw)
	if err != nil {
		return nil, err
	}
	return t.BroadcastSchedule("topology-aware", bytes), nil
}

// Execute runs the schedule's rounds back to back on the simulator and
// calls done at the completion time of the last round.
func Execute(n *netsim.Network, s *Schedule, owner string, done func(now simclock.Time)) {
	var runRound func(now simclock.Time, i int)
	runRound = func(now simclock.Time, i int) {
		if i >= len(s.Rounds) {
			if done != nil {
				done(now)
			}
			return
		}
		n.TransferGroup(s.Rounds[i], owner, func(t simclock.Time) { runRound(t, i+1) })
	}
	runRound(n.Clock().Now(), 0)
}

// Measure executes the schedule and drives the clock to completion,
// returning the elapsed virtual seconds. Other scheduled activity
// (traffic, collectors) keeps running meanwhile.
func Measure(n *netsim.Network, s *Schedule, owner string) float64 {
	start := n.Clock().Now()
	var end simclock.Time
	finished := false
	Execute(n, s, owner, func(now simclock.Time) {
		end = now
		finished = true
	})
	clk := n.Clock()
	deadline := start + simclock.Time(365*24*3600)
	for !finished {
		if !clk.Step() {
			panic(fmt.Sprintf("collective: schedule %q never completed", s.Name))
		}
		if clk.Now() > deadline {
			panic(fmt.Sprintf("collective: schedule %q starved", s.Name))
		}
	}
	return float64(end - start)
}
