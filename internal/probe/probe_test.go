package probe

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/topology"
)

func sim(t *testing.T) (*simclock.Clock, *netsim.Network) {
	t.Helper()
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	return clk, n
}

func TestProbeUnloadedPath(t *testing.T) {
	clk, n := sim(t)
	p := New(n)
	var got Result
	p.ProbeOnce("m-1", "m-5", func(r Result) { got = r })
	clk.Run(0)
	if math.Abs(got.Bandwidth-100e6) > 1 {
		t.Fatalf("bandwidth = %v, want 100e6", got.Bandwidth)
	}
	// m-1 -> aspen -> timberline -> m-5: 3 links, RTT = 2 × 3 × 0.5 ms.
	if math.Abs(got.RTT-2*3*topology.PerHopLatency) > 1e-12 {
		t.Fatalf("rtt = %v", got.RTT)
	}
}

func TestProbeSeesCongestion(t *testing.T) {
	clk, n := sim(t)
	// A 60 Mbps responsive CBR shares max-min with the elastic probe on
	// the 100 Mbps link: both converge to 50 Mbps (the CBR's cap is above
	// the fair share, so it does not bind).
	cbr := n.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", RateCap: 60e6, Owner: "traffic"})
	p := New(n)
	var got Result
	p.ProbeOnce("m-4", "m-7", func(r Result) { got = r })
	clk.Run(0)
	if math.Abs(got.Bandwidth-50e6) > 1e5 {
		t.Fatalf("bandwidth vs responsive CBR = %v, want ~50e6", got.Bandwidth)
	}
	n.StopFlow(cbr.ID)

	// A non-responsive 60 Mbps blaster takes its full rate first; the
	// probe measures the 40 Mbps leftover.
	n.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", RateCap: 60e6, Priority: true, Owner: "traffic"})
	p.ProbeOnce("m-4", "m-7", func(r Result) { got = r })
	clk.Run(0)
	if math.Abs(got.Bandwidth-40e6) > 1e5 {
		t.Fatalf("bandwidth vs blaster = %v, want ~40e6", got.Bandwidth)
	}
}

func TestPeriodicProbing(t *testing.T) {
	clk, n := sim(t)
	p := New(n)
	p.ProbeBytes = 1e5
	p.StartPeriodic("m-1", "m-5", 1.0)
	clk.RunUntil(10.5)
	st := p.Bandwidth("m-1", "m-5", 100)
	if !st.Valid() || st.Samples < 8 {
		t.Fatalf("stat = %+v", st)
	}
	if math.Abs(st.Median-100e6) > 1e3 {
		t.Fatalf("median = %v", st.Median)
	}
	rtt := p.RTTStat("m-1", "m-5", 100)
	if !rtt.Valid() {
		t.Fatal("no rtt stat")
	}
	p.StopAll()
	before := len(p.Samples("m-1", "m-5"))
	clk.Advance(10)
	if len(p.Samples("m-1", "m-5")) != before {
		t.Fatal("probing continued after StopAll")
	}
}

func TestUnknownPairNoData(t *testing.T) {
	_, n := sim(t)
	p := New(n)
	if p.Bandwidth("m-1", "m-2", 10).Valid() {
		t.Fatal("unprobed pair has data")
	}
	if p.RTTStat("m-1", "m-2", 10).Valid() {
		t.Fatal("unprobed pair has rtt data")
	}
	if p.Samples("m-1", "m-2") != nil {
		t.Fatal("unprobed pair has samples")
	}
}

func TestProbeQuartilesReflectBurstyTraffic(t *testing.T) {
	clk, n := sim(t)
	// Alternate a 90 Mbps hog on/off deterministically; probes land in
	// both regimes, so quartile spread must be wide.
	hogOn := false
	var hog *netsim.Flow
	clk.NewTicker(0.25, 2.0, "hog-toggle", func(now simclock.Time) {
		if hogOn {
			n.StopFlow(hog.ID)
			hogOn = false
		} else {
			hog = n.StartFlow(netsim.FlowSpec{Src: "m-6", Dst: "m-8", RateCap: 90e6, Priority: true, Owner: "traffic"})
			hogOn = true
		}
	})
	p := New(n)
	p.ProbeBytes = 1e5
	p.StartPeriodic("m-4", "m-7", 0.5)
	clk.RunUntil(30)
	st := p.Bandwidth("m-4", "m-7", 100)
	if !st.Valid() {
		t.Fatal("no data")
	}
	if st.IQR() < 10e6 {
		t.Fatalf("IQR = %v; expected wide spread from bursty hog (stat %v)", st.IQR(), st)
	}
	if st.Min > 15e6 || st.Max < 90e6 {
		t.Fatalf("range [%v, %v] does not span both regimes", st.Min, st.Max)
	}
}
