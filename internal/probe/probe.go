// Package probe is the active-measurement substrate behind the paper's
// second Collector flavor: "a Collector that uses benchmarks to probe
// networks that do not respond to our SNMP queries (e.g. wide-area
// networks run by commercial ISPs)".
//
// A Prober injects real transfers into the simulated network and measures
// them, so — exactly like a benchmark on a physical network — the probes
// themselves perturb the system and their results reflect competing
// traffic.
package probe

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// Owner tags probe flows in the simulator.
const Owner = "probe"

// Result is one probe measurement.
type Result struct {
	Src, Dst  graph.NodeID
	When      simclock.Time
	Bandwidth float64 // bits/s achieved by the probe transfer
	RTT       float64 // seconds
}

// Prober issues timed transfers and RTT pings between host pairs.
type Prober struct {
	n *netsim.Network

	// ProbeBytes is the transfer size per bandwidth probe. Large probes
	// measure better but disturb more; 1 MB is the default.
	ProbeBytes float64

	windows map[[2]graph.NodeID]*pairWindows
	tickers []*simclock.Ticker
}

type pairWindows struct {
	bw  *stats.Window
	rtt *stats.Window
}

// New creates a prober over a simulated network.
func New(n *netsim.Network) *Prober {
	return &Prober{
		n:          n,
		ProbeBytes: 1e6,
		windows:    make(map[[2]graph.NodeID]*pairWindows),
	}
}

// RTT returns the round-trip latency between two hosts (twice the one-way
// path latency; the paper's collector assumes fixed per-hop delay, so no
// transfer is needed).
func (p *Prober) RTT(src, dst graph.NodeID) float64 {
	return 2 * p.n.PathLatency(src, dst)
}

// ProbeOnce starts a bandwidth probe and delivers the Result when the
// transfer finishes. The probe is an elastic flow, so its achieved rate
// is the max-min share available between src and dst right now — the
// same thing iperf measures.
func (p *Prober) ProbeOnce(src, dst graph.NodeID, done func(Result)) {
	start := p.n.Clock().Now()
	p.n.StartFlow(netsim.FlowSpec{
		Src: src, Dst: dst, Bytes: p.ProbeBytes, Owner: Owner,
		OnComplete: func(now simclock.Time, f *netsim.Flow) {
			elapsed := float64(now - start)
			if elapsed <= 0 {
				elapsed = 1e-9
			}
			r := Result{
				Src: src, Dst: dst, When: now,
				Bandwidth: p.ProbeBytes * 8 / elapsed,
				RTT:       p.RTT(src, dst),
			}
			p.record(r)
			if done != nil {
				done(r)
			}
		},
	})
}

func (p *Prober) record(r Result) {
	key := [2]graph.NodeID{r.Src, r.Dst}
	w := p.windows[key]
	if w == nil {
		w = &pairWindows{
			bw:  stats.NewWindow(128, 0),
			rtt: stats.NewWindow(128, 0),
		}
		p.windows[key] = w
	}
	// Probes complete in order per pair, so Add cannot fail; a failure
	// indicates a simulator bug and must surface.
	if err := w.bw.Add(float64(r.When), r.Bandwidth); err != nil {
		panic(fmt.Sprintf("probe: %v", err))
	}
	if err := w.rtt.Add(float64(r.When), r.RTT); err != nil {
		panic(fmt.Sprintf("probe: %v", err))
	}
}

// StartPeriodic probes the pair every period seconds until StopAll.
func (p *Prober) StartPeriodic(src, dst graph.NodeID, period float64) {
	clk := p.n.Clock()
	t := clk.NewTicker(clk.Now()+simclock.Time(period), period,
		fmt.Sprintf("probe %s->%s", src, dst),
		func(now simclock.Time) { p.ProbeOnce(src, dst, nil) })
	p.tickers = append(p.tickers, t)
}

// StopAll halts periodic probing.
func (p *Prober) StopAll() {
	for _, t := range p.tickers {
		t.Stop()
	}
	p.tickers = nil
}

// Bandwidth summarizes measured bandwidth for a pair over the last span
// seconds (stats.NoData if never probed).
func (p *Prober) Bandwidth(src, dst graph.NodeID, span float64) stats.Stat {
	w := p.windows[[2]graph.NodeID{src, dst}]
	if w == nil {
		return stats.NoData()
	}
	return w.bw.Summary(span)
}

// RTTStat summarizes measured RTT for a pair.
func (p *Prober) RTTStat(src, dst graph.NodeID, span float64) stats.Stat {
	w := p.windows[[2]graph.NodeID{src, dst}]
	if w == nil {
		return stats.NoData()
	}
	return w.rtt.Summary(span)
}

// Samples returns the raw bandwidth samples for a pair (for predictors).
func (p *Prober) Samples(src, dst graph.NodeID) []stats.Sample {
	w := p.windows[[2]graph.NodeID{src, dst}]
	if w == nil {
		return nil
	}
	return w.bw.Samples()
}
