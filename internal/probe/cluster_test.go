package probe

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traffic"

	simclockpkg "repro/internal/simclock"
)

// TestClusteringFromProbes demonstrates the paper's second collector
// path end to end: on a network whose routers answer no SNMP, the
// benchmark prober measures pairwise bandwidth and the §7.2 clustering
// runs on those measurements alone — no agents, no collector.
func TestClusteringFromProbes(t *testing.T) {
	clk := simclockpkg.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 4 situation: traffic between m-6 and m-8.
	traffic.Blast(n, "m-6", "m-8", 90e6)
	traffic.Blast(n, "m-8", "m-6", 90e6)

	p := New(n)
	p.ProbeBytes = 2e5
	hosts := topology.TestbedHosts
	// Probe every ordered pair a few times.
	for round := 0; round < 3; round++ {
		for _, src := range hosts {
			for _, dst := range hosts {
				if src != dst {
					p.ProbeOnce(src, dst, nil)
				}
			}
		}
		clk.Advance(5)
	}
	clk.Run(0)

	// Build the distance matrix from probe medians.
	nh := len(hosts)
	bw := make([][]float64, nh)
	lat := make([][]float64, nh)
	for i := range hosts {
		bw[i] = make([]float64, nh)
		lat[i] = make([]float64, nh)
		for j := range hosts {
			if i == j {
				continue
			}
			st := p.Bandwidth(hosts[i], hosts[j], 1e9)
			if !st.Valid() {
				t.Fatalf("no probe data %s->%s", hosts[i], hosts[j])
			}
			bw[i][j] = st.Median
			lat[i][j] = p.RTT(hosts[i], hosts[j]) / 2
		}
	}
	dist := cluster.DistanceMatrix(bw, lat, cluster.TestbedMetric())
	res, err := cluster.Greedy(hosts, dist, "m-4", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.NodeID]bool{"m-1": true, "m-2": true, "m-4": true, "m-5": true}
	for _, id := range res.Nodes {
		if !want[id] {
			t.Fatalf("probe-driven selection = %v, want m-1,m-2,m-4,m-5", res.Nodes)
		}
	}
}
