package collector

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Checkpoint/warm-restart: a collector can serialize its full state —
// topology, measurement windows, counter baselines, per-agent health,
// poll statistics — and a restarted collector can restore it and answer
// queries immediately, with honest data ages that include the downtime,
// instead of erroring through a cold discovery-and-poll warmup. The
// format is gob with a versioned magic header so a restore from a
// corrupt, truncated, or incompatible file is rejected loudly rather
// than half-applied.

// checkpointMagic identifies a collector checkpoint stream.
const checkpointMagic = "REMOS-CKPT"

// CheckpointVersion is the current checkpoint format version. Restores
// reject any other version: state formats evolve and a silent
// misdecode is worse than a cold start.
const CheckpointVersion = 1

// checkpointHeader precedes the dump. It is encoded as its own gob
// value so header validation happens before the (much larger) dump is
// even read.
type checkpointHeader struct {
	Magic   string
	Version int
}

// wireCounter is counterState with exported fields for gob.
type wireCounter struct {
	At     float64
	Octets uint32
	Valid  bool
}

// checkpointDump is the serialized collector state.
type checkpointDump struct {
	// SavedAt is the virtual time of the save; SavedAtWallNanos is the
	// wall clock (UnixNano) at the same moment, letting a restarting
	// daemon translate real downtime into virtual seconds.
	SavedAt          float64
	SavedAtWallNanos int64

	Polls       uint64
	PollErrors  uint64
	Discoveries uint64

	Topo     *WireTopo
	Counters map[ChannelKey]wireCounter
	Channels map[ChannelKey][]stats.Sample
	Capacity map[ChannelKey]float64
	Loads    map[string][]stats.Sample
	Health   map[string]AgentHealth
}

// CheckpointInfo describes a restored checkpoint.
type CheckpointInfo struct {
	// SavedAt is the virtual time at which the checkpoint was taken.
	// The caller should advance its clock to at least SavedAt (plus the
	// virtual equivalent of the downtime) before starting the
	// collector, so restored samples stay in the past and reported data
	// ages are honest.
	SavedAt float64
	// SavedAtWall is the wall time of the save.
	SavedAtWall time.Time
	// Version is the format version read from the file.
	Version int
}

// SaveCheckpoint writes the collector's full state to w.
func (c *Collector) SaveCheckpoint(w io.Writer) error {
	wallStart := time.Now()
	defer func() {
		c.tel.Counter("collector.checkpoint.saves").Inc()
		c.tel.Quantile("collector.checkpoint.save_ms", 0).
			Observe(float64(time.Since(wallStart)) / float64(time.Millisecond))
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.topo == nil {
		return fmt.Errorf("collector: nothing to checkpoint before discovery")
	}
	dump := checkpointDump{
		SavedAt:          float64(c.cfg.Clock.Now()),
		SavedAtWallNanos: time.Now().UnixNano(),
		Polls:            c.polls,
		PollErrors:       c.pollErrors,
		Discoveries:      c.discoveries,
		Topo:             topoToWire(c.topo),
		Counters:         make(map[ChannelKey]wireCounter, len(c.counters)),
		Channels:         make(map[ChannelKey][]stats.Sample, len(c.windows)),
		Capacity:         make(map[ChannelKey]float64, len(c.capacity)),
		Loads:            make(map[string][]stats.Sample, len(c.loads)),
		Health:           make(map[string]AgentHealth, len(c.health)),
	}
	for k, cs := range c.counters {
		dump.Counters[k] = wireCounter{At: cs.at, Octets: cs.octets, Valid: cs.valid}
	}
	for k, win := range c.windows {
		dump.Channels[k] = win.Samples()
	}
	for k, v := range c.capacity {
		dump.Capacity[k] = v
	}
	for id, win := range c.loads {
		dump.Loads[string(id)] = win.Samples()
	}
	for id, h := range c.health {
		dump.Health[string(id)] = *h
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&checkpointHeader{Magic: checkpointMagic, Version: CheckpointVersion}); err != nil {
		return fmt.Errorf("collector: writing checkpoint header: %w", err)
	}
	if err := enc.Encode(&dump); err != nil {
		return fmt.Errorf("collector: writing checkpoint: %w", err)
	}
	return nil
}

// RestoreCheckpoint loads state saved by SaveCheckpoint into c,
// replacing any existing state. It validates the header first and
// decodes the whole dump before touching the collector, so a corrupt or
// truncated file leaves c unchanged.
func (c *Collector) RestoreCheckpoint(r io.Reader) (CheckpointInfo, error) {
	dec := gob.NewDecoder(r)
	var hdr checkpointHeader
	if err := dec.Decode(&hdr); err != nil {
		return CheckpointInfo{}, fmt.Errorf("collector: reading checkpoint header: %w", err)
	}
	if hdr.Magic != checkpointMagic {
		return CheckpointInfo{}, fmt.Errorf("collector: not a collector checkpoint (magic %q)", hdr.Magic)
	}
	if hdr.Version != CheckpointVersion {
		return CheckpointInfo{}, fmt.Errorf("collector: unsupported checkpoint version %d (want %d)",
			hdr.Version, CheckpointVersion)
	}
	var dump checkpointDump
	if err := dec.Decode(&dump); err != nil {
		return CheckpointInfo{}, fmt.Errorf("collector: corrupt checkpoint: %w", err)
	}
	if dump.Topo == nil {
		return CheckpointInfo{}, fmt.Errorf("collector: corrupt checkpoint: no topology")
	}

	// Rebuild windows outside the lock; install everything at once.
	rebuild := func(samples []stats.Sample) (*stats.Window, error) {
		w := stats.NewWindow(c.cfg.WindowLen, c.cfg.WindowAge)
		for _, s := range samples {
			if err := w.Add(s.Time, s.Value); err != nil {
				return nil, fmt.Errorf("collector: corrupt checkpoint: %w", err)
			}
		}
		return w, nil
	}
	windows := make(map[ChannelKey]*stats.Window, len(dump.Channels))
	for k, samples := range dump.Channels {
		w, err := rebuild(samples)
		if err != nil {
			return CheckpointInfo{}, err
		}
		windows[k] = w
	}
	loads := make(map[graph.NodeID]*stats.Window, len(dump.Loads))
	for id, samples := range dump.Loads {
		w, err := rebuild(samples)
		if err != nil {
			return CheckpointInfo{}, err
		}
		loads[graph.NodeID(id)] = w
	}
	counters := make(map[ChannelKey]counterState, len(dump.Counters))
	for k, wc := range dump.Counters {
		counters[k] = counterState{at: wc.At, octets: wc.Octets, valid: wc.Valid}
	}
	capacity := make(map[ChannelKey]float64, len(dump.Capacity))
	for k, v := range dump.Capacity {
		capacity[k] = v
	}
	health := make(map[graph.NodeID]*AgentHealth, len(dump.Health))
	for id, h := range dump.Health {
		hc := h
		health[graph.NodeID(id)] = &hc
	}

	c.mu.Lock()
	c.topo = topoFromWire(dump.Topo)
	c.counters = counters
	c.windows = windows
	c.capacity = capacity
	c.loads = loads
	c.health = health
	c.polls = dump.Polls
	c.pollErrors = dump.PollErrors
	c.discoveries = dump.Discoveries
	// The restore replaced every window wholesale: feed subscriptions
	// must re-snapshot rather than delta against the old state.
	c.stateGen++
	c.mu.Unlock()
	c.dataVersion.Add(1)
	c.notifyVersion()
	c.tel.Counter("collector.checkpoint.restores").Inc()

	return CheckpointInfo{
		SavedAt:     dump.SavedAt,
		SavedAtWall: time.Unix(0, dump.SavedAtWallNanos),
		Version:     hdr.Version,
	}, nil
}
