package collector

import (
	"context"
	"fmt"
)

// Federation wire surface: the "region-summary" watch kind ships a
// compact, epoch-stamped digest of one region's state to federating
// peers. It is the paper's hierarchical-query idea made concrete: a
// regional collector keeps full intra-region detail for itself and
// exports only border nodes plus per-region-pair aggregates upward, so
// a federation over R regions moves O(hosts + borders + R) state per
// round instead of the full measurement stream the "feed" kind carries.
//
// The summary rides the multiplexed watch plane unchanged — bounded
// per-subscription queues, dense Seq numbers, Overflowed marks, stalled
// -subscriber eviction, terminal Final on drain — and is evaluated per
// source epoch like every other kind. Consumers (internal/federation)
// keep the last good summary per region and age it honestly: a region
// gone dark keeps answering from its last summary with a growing
// DataAge, never silently fresh.

// WatchRegionSummary is the federation watch kind (WatchRequest.Kind):
// one RegionSummary per source epoch. Only sources implementing
// RegionSummarySource accept it.
const WatchRegionSummary = "region-summary"

// RegionHost is one compute node in a region summary: enough for a
// federated Modeler to answer "what can this host do" without the
// region's full topology.
type RegionHost struct {
	ID           string
	Power        float64 // compute power (work units/s)
	MemoryBytes  float64
	AccessBps    float64 // bottleneck capacity of the host's access link(s)
	AvailableBps float64 // measured available bandwidth on the access link
}

// RegionBorder is one border router — a node with at least one link
// leaving the region. InteriorBps aggregates the capacity from the
// border node into the region's interior, bounding how much traffic
// the region can absorb through it.
type RegionBorder struct {
	ID          string
	InteriorBps float64
}

// RegionPair summarizes the cut between this region and one peer: the
// physical cross-region links collapse to aggregate figures the way
// §4.3's logical topologies collapse unshared interiors.
type RegionPair struct {
	Peer         string  // the other region's name
	Links        int     // physical links in the cut
	CapacityBps  float64 // aggregate capacity across the cut
	AvailableBps float64 // aggregate measured available bandwidth
	HopCount     int     // representative hop count across the cut
	LatencySec   float64 // representative one-way latency across the cut
}

// RegionSummary is the epoch-stamped digest one region exports.
type RegionSummary struct {
	// Region is the exporting region's name.
	Region string
	// Epoch is the exporting source's DataVersion at generation time.
	Epoch uint64
	// Term is the exporter's HA lease term (0 without HA); consumers
	// fence exactly like feed consumers do.
	Term uint64
	// GeneratedAt is the exporter's virtual clock at generation.
	// Consumers compute staleness as (their now − GeneratedAt) plus
	// MaxDataAge, so a summary's age degrades honestly end to end.
	GeneratedAt float64
	// MaxDataAge is the worst data age across the summarized channels
	// at generation time: how stale the freshest possible answer
	// derived from this summary already was at the source.
	MaxDataAge float64

	Hosts   []RegionHost
	Borders []RegionBorder
	Pairs   []RegionPair
}

// RegionSummarySource is a Source that can digest itself into a
// RegionSummary. Implemented by federation.Region; servers refuse
// WatchRegionSummary subscriptions on sources that lack it.
type RegionSummarySource interface {
	// RegionName returns the region this source owns.
	RegionName() string
	// RegionSummary digests the region's current state. Implementations
	// must emit deterministic field order (sorted hosts/borders/pairs)
	// so two pulls at the same epoch are byte-identical.
	RegionSummary() (*RegionSummary, error)
}

// WatchLocal runs an in-process watch subscription against any Source
// — the same evaluation, bounded-queue, and backpressure semantics as
// Collector.Watch, for sources (federation regions, merged views) that
// are not a *Collector. Version-notifier-driven when src implements
// VersionNotifier, poll-driven otherwise.
func WatchLocal(ctx context.Context, src Source, req WatchRequest) (*WatchHandle, error) {
	if !validWatchKind(req.Kind) {
		return nil, fmt.Errorf("collector: unknown watch kind %q", req.Kind)
	}
	vn, _ := src.(VersionNotifier)
	return watchLocal(ctx, src, vn, req, DefaultWatchQueueDepth), nil
}

// init warms gob's engines for summary-carrying update frames.
func init() {
	warmGob(&muxFrame{Stream: 1, Kind: mfUpdate, Update: &WatchUpdate{
		Seq: 1, Epoch: 1, Term: 1,
		Summary: &RegionSummary{
			Region: "r0", Epoch: 1, Term: 1, GeneratedAt: 1, MaxDataAge: 1,
			Hosts:   []RegionHost{{ID: "h", Power: 1, MemoryBytes: 1, AccessBps: 1, AvailableBps: 1}},
			Borders: []RegionBorder{{ID: "b", InteriorBps: 1}},
			Pairs:   []RegionPair{{Peer: "r1", Links: 1, CapacityBps: 1, AvailableBps: 1, HopCount: 1, LatencySec: 1}},
		},
	}})
}
