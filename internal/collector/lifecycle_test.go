package collector

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// blockingSource returns a fakeSource whose Utilization blocks until the
// returned release func is called (idempotent), and a channel that
// signals each time a call enters the block.
func blockingSource() (*fakeSource, func(), chan struct{}) {
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	src := &fakeSource{utilHook: func() {
		entered <- struct{}{}
		<-release
	}}
	var once func()
	closed := false
	once = func() {
		if !closed {
			closed = true
			close(release)
		}
	}
	return src, once, entered
}

// TestClientCtxDeadline: a context deadline bounds the whole call. The
// typed error matches both the package sentinel and the stdlib idiom,
// and the call returns within 2x the budget — never hangs on a stuck
// server.
func TestClientCtxDeadline(t *testing.T) {
	src, release, entered := blockingSource()
	srv, err := Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer release() // before Close: a blocked handler would deadlock wg.Wait
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const budget = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	_, err = cli.UtilizationCtx(ctx, ChannelKey{Global: 1}, 5)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("typed error does not match context.DeadlineExceeded: %v", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("deadline-bounded call took %v (budget %v, limit %v)", elapsed, budget, 2*budget)
	}
	<-entered // the server did receive the call; the client just stopped waiting
}

// TestClientCancelMidCallThenReusable: cancelling mid-call aborts the
// blocked read immediately, and the client reconnects cleanly on the
// next call — no poisoned stream, no lingering wait.
func TestClientCancelMidCallThenReusable(t *testing.T) {
	src, release, entered := blockingSource()
	srv, err := Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer release() // before Close: a blocked handler would deadlock wg.Wait
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.UtilizationCtx(ctx, ChannelKey{Global: 1}, 5)
		done <- err
	}()
	<-entered // the request is in flight inside the Source
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled call: got %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("cancellation took %v to abort the in-flight read", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call never returned")
	}

	// The same client keeps working: the next call reconnects.
	if _, err := cli.Topology(); err != nil {
		t.Fatalf("client unusable after mid-call cancel: %v", err)
	}
}

// TestServerEnforcesBudgetHint: a request whose declared budget expires
// in the admission queue is answered with a typed deadline refusal by
// the server itself — proven with a raw connection so no client-side
// deadline can be the one firing.
func TestServerEnforcesBudgetHint(t *testing.T) {
	src, release, entered := blockingSource()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{MaxInflight: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer release() // before Close: a blocked handler would deadlock wg.Wait

	// Saturate the gate with one in-flight request.
	occupier, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer occupier.Close()
	go occupier.Utilization(ChannelKey{Global: 1}, 5)
	<-entered

	// Raw second request with a 40 ms budget and no client deadline at
	// all: the refusal must come from the server.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeFrame(conn, &muxFrame{Stream: 1, Kind: mfRequest,
		Req: &request{Op: "util", Key: ChannelKey{Global: 1}, BudgetMS: 40}}, 0); err != nil {
		t.Fatal(err)
	}
	var f muxFrame
	start := time.Now()
	if err := readFrame(conn, &f, 0); err != nil {
		t.Fatal(err)
	}
	if f.Stream != 1 || f.Kind != mfResponse || f.Resp == nil {
		t.Fatalf("unexpected frame: stream %d kind %d", f.Stream, f.Kind)
	}
	resp := *f.Resp
	if resp.Code != codeDeadline {
		t.Fatalf("saturated server answered code %d (%q), want codeDeadline", resp.Code, resp.Err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("server held an expired-budget request for %v", elapsed)
	}
	if st := srv.GateStats(); st.TimedOut != 1 {
		t.Fatalf("gate stats after budget expiry: %+v", st)
	}
}

// TestServerDefaultBudget: an unbudgeted request inherits the server's
// DefaultBudget instead of waiting the full DefaultQueueWait.
func TestServerDefaultBudget(t *testing.T) {
	src, release, entered := blockingSource()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{
		MaxInflight: 1, QueueDepth: 4, DefaultBudget: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer release() // before Close: a blocked handler would deadlock wg.Wait

	occupier, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer occupier.Close()
	go occupier.Utilization(ChannelKey{Global: 1}, 5)
	<-entered

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	_, err = cli.Utilization(ChannelKey{Global: 1}, 5) // no ctx, no budget hint
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want server-side ErrDeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("default budget of 60ms enforced only after %v", elapsed)
	}
}

// TestServerShedsWithRetryAfter: with no queue, a saturated server sheds
// immediately and the client can read the retry-after hint.
func TestServerShedsWithRetryAfter(t *testing.T) {
	src, release, entered := blockingSource()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{MaxInflight: 1, QueueDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer release() // before Close: a blocked handler would deadlock wg.Wait

	occupier, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer occupier.Close()
	go occupier.Utilization(ChannelKey{Global: 1}, 5)
	<-entered

	cli, err := DialConfig(srv.Addr(), ClientConfig{SingleAttempt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Utilization(ChannelKey{Global: 1}, 5)
	if !errors.Is(err, ErrLoadShed) {
		t.Fatalf("got %v, want ErrLoadShed", err)
	}
	if ra, ok := RetryAfterHint(err); !ok || ra <= 0 {
		t.Fatalf("shed refusal carries no retry-after: %v (ra=%v)", err, ra)
	}
	if st := srv.GateStats(); st.Shed != 1 {
		t.Fatalf("gate stats after shed: %+v", st)
	}

	// Liveness probes still pass the saturated gate: ping is free.
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping refused by saturated gate: %v", err)
	}
}

// TestFailoverRoutesAroundShed: a load-shedding replica is routed
// around — the query lands on the healthy replica — and the refusal
// marks the shedding replica Degraded, not Down (it answered; it is
// alive).
func TestFailoverRoutesAroundShed(t *testing.T) {
	srcA, release, entered := blockingSource()
	srvA, err := ServeConfig(srcA, "127.0.0.1:0", ServerConfig{MaxInflight: 1, QueueDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	defer release() // before Close: a blocked handler would deadlock wg.Wait
	srvB, err := Serve(&fakeSource{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	occupier, err := DialConfig(srvA.Addr(), ClientConfig{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer occupier.Close()
	go occupier.Utilization(ChannelKey{Global: 1}, 5)
	<-entered

	f, err := DialFailover([]string{srvA.Addr(), srvB.Addr()}, FailoverConfig{
		ProbeInterval: -1, // no background prober in this test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	st, err := f.Utilization(ChannelKey{Global: 1}, 5)
	if err != nil {
		t.Fatalf("failover did not route around the shedding replica: %v", err)
	}
	if st.Median != 42 {
		t.Fatalf("answer came from the wrong place: %v", st)
	}
	reps := f.Replicas()
	if reps[0].State == Down {
		t.Fatalf("shedding replica marked Down: %+v (a refusal proves it alive)", reps[0])
	}
	if reps[0].Failures == 0 {
		t.Fatalf("refusal not recorded on replica 0: %+v", reps[0])
	}
}

// TestCtxDeadlineSkipsRetry: when the context is already dead after a
// failed attempt, the client must not burn RetryBackoff sleeping — it
// returns the typed error immediately.
func TestCtxDeadlineSkipsRetry(t *testing.T) {
	// A listener that accepts and never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	cli, err := DialConfig(ln.Addr().String(), ClientConfig{
		CallTimeout:  10 * time.Second,
		RetryBackoff: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const budget = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	_, err = cli.UtilizationCtx(ctx, ChannelKey{Global: 1}, 5)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("blackholed call with %v budget took %v (retry backoff not skipped?)", budget, elapsed)
	}
}
