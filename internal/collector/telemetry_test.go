package collector

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestShedCountMatchesTelemetry pins the accounting exactly: with one
// work unit, no queue, and the only slot held by a blocked request,
// every further arrival is shed — and the client-observed ErrLoadShed
// count, the gate's Shed counter, and the server.admission.shed
// telemetry counter must all agree to the unit.
func TestShedCountMatchesTelemetry(t *testing.T) {
	src, release, entered := blockingSource()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{
		MaxInflight:   1,
		QueueDepth:    0,
		DefaultBudget: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	blocker, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	blocked := make(chan error, 1)
	go func() {
		_, err := blocker.Utilization(ChannelKey{Global: 1}, 5)
		blocked <- err
	}()
	<-entered // the handler holds the gate's only work unit

	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const attempts = 7
	clientShed := 0
	for i := 0; i < attempts; i++ {
		_, err := cli.Utilization(ChannelKey{Global: 1}, 5)
		if !errors.Is(err, ErrLoadShed) {
			t.Fatalf("attempt %d: got %v, want ErrLoadShed", i, err)
		}
		clientShed++
	}
	release()
	if err := <-blocked; err != nil {
		t.Fatalf("blocked request should have succeeded: %v", err)
	}

	if st := srv.GateStats(); st.Shed != attempts {
		t.Errorf("gate shed = %d, want %d", st.Shed, attempts)
	}
	if got := srv.Telemetry().Counter("server.admission.shed").Value(); got != attempts {
		t.Errorf("server.admission.shed = %d, want %d", got, attempts)
	}
	if got := srv.Telemetry().Counter("server.admission.admitted").Value(); got != 1 {
		t.Errorf("server.admission.admitted = %d, want 1 (the blocked request)", got)
	}

	// Every shed request still gets a span, with the shed verdict.
	verdicts := 0
	for _, sp := range srv.Telemetry().Spans() {
		if sp.Name == "rpc.util" && sp.Attrs["verdict"] == "shed" {
			verdicts++
		}
	}
	if verdicts != attempts {
		t.Errorf("spans with verdict=shed = %d, want %d", verdicts, attempts)
	}

	// After the server drains, no span may be left open.
	srv.Close()
	started, finished := srv.Telemetry().SpanCounts()
	if started != finished {
		t.Errorf("span leak after Close: started %d finished %d", started, finished)
	}
}

// TestClientTelemetryAndStatsOp: a client-side registry records call
// latencies, the stats op merges server and source registries, and the
// wire carries the caller's trace ID into the server's span log.
func TestClientTelemetryAndStatsOp(t *testing.T) {
	srv, err := ServeConfig(&fakeSource{}, "127.0.0.1:0", ServerConfig{
		MaxInflight: 4,
		QueueDepth:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := telemetry.NewRegistry()
	cli, err := DialConfig(srv.Addr(), ClientConfig{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	trace := telemetry.NewTraceID()
	ctx := telemetry.WithTrace(context.Background(), trace)
	if _, err := cli.UtilizationCtx(ctx, ChannelKey{Global: 1}, 5); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("client.calls").Value(); got != 1 {
		t.Errorf("client.calls = %d, want 1", got)
	}
	if q := reg.Quantile("client.call_ms", 0); q.Count() != 1 {
		t.Errorf("client.call_ms count = %d, want 1", q.Count())
	}

	// The trace ID crossed the wire: the server's span log has it.
	recs := srv.Telemetry().SpansFor(trace)
	if len(recs) != 1 || recs[0].Name != "rpc.util" {
		t.Fatalf("server spans for trace %q = %+v", trace, recs)
	}
	if recs[0].Attrs["verdict"] != "admitted" {
		t.Errorf("span verdict = %q, want admitted", recs[0].Attrs["verdict"])
	}

	// The stats op returns a merged snapshot covering the server's own
	// counters and admission gauges.
	snap, err := cli.TelemetrySnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.op.util"] != 1 {
		t.Errorf("snapshot server.op.util = %d, want 1", snap.Counters["server.op.util"])
	}
	if _, ok := snap.Gauges["server.admission.in_use"]; !ok {
		t.Errorf("snapshot missing server.admission.in_use gauge: %v", snap.Gauges)
	}
}
