package collector

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Per-agent health tracking: the collector's reaction layer. Every poll
// or discovery attempt feeds a small state machine per agent —
//
//	Healthy --failure--> Degraded --DownAfter failures--> Down
//	   ^___________________success___________________________|
//
// — and failing agents are retried on an exponential-backoff schedule
// (a circuit breaker) instead of on every poll tick, so a dead router
// costs a handful of probe attempts per backoff period while healthy
// agents keep being polled at full rate. Queries keep being answered
// from the surviving topology; staleness surfaces through Stat.Age and
// accuracy decay rather than errors.

// HealthState is an agent's position in the health state machine.
type HealthState int

const (
	// Healthy: the last attempt succeeded.
	Healthy HealthState = iota
	// Degraded: at least one failure since the last success, but fewer
	// than Config.DownAfter consecutive ones.
	Degraded
	// Down: DownAfter or more consecutive failures; the circuit breaker
	// is throttling attempts to the backoff schedule.
	Down
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// AgentHealth is a snapshot of one agent's collection health.
type AgentHealth struct {
	State HealthState

	// ConsecutiveFailures counts failed attempts since the last success.
	ConsecutiveFailures int

	// LastSuccess and LastAttempt are virtual times; -1 before the first.
	LastSuccess float64
	LastAttempt float64

	// NextAttempt is the earliest virtual time the breaker allows another
	// attempt (0 when the agent is healthy).
	NextAttempt float64

	// Skipped counts poll opportunities the breaker suppressed.
	Skipped uint64
}

// HealthSource is implemented by Sources that track per-agent health
// (the in-process Collector, the TCP Client, and Merged). A nil map
// means the source has no health information.
type HealthSource interface {
	Health() map[graph.NodeID]AgentHealth
}

// healthLocked returns (creating if needed) the mutable health record
// for an agent. Callers hold c.mu.
func (c *Collector) healthLocked(id graph.NodeID) *AgentHealth {
	h := c.health[id]
	if h == nil {
		h = &AgentHealth{LastSuccess: -1, LastAttempt: -1}
		c.health[id] = h
	}
	return h
}

// allowAttempt consults the circuit breaker: it reports whether the
// agent may be contacted now, recording either the attempt or the skip.
func (c *Collector) allowAttempt(id graph.NodeID, now float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.healthLocked(id)
	if now < h.NextAttempt {
		h.Skipped++
		c.tel.Counter("collector.breaker.skips").Inc()
		return false
	}
	h.LastAttempt = now
	return true
}

// noteTransitionLocked counts a health state change in the telemetry
// registry, so breaker flips are visible without diffing Health() maps.
func (c *Collector) noteTransitionLocked(from, to HealthState) {
	if from == to {
		return
	}
	c.tel.Counter("collector.health.to_" + to.String()).Inc()
}

// recordSuccess closes the breaker and resets the agent to Healthy.
func (c *Collector) recordSuccess(id graph.NodeID, now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.healthLocked(id)
	c.noteTransitionLocked(h.State, Healthy)
	h.State = Healthy
	h.ConsecutiveFailures = 0
	h.LastSuccess = now
	h.NextAttempt = 0
}

// recordFailure advances the state machine and re-arms the breaker with
// exponential backoff (plus optional seeded jitter so a fleet of
// collectors does not re-probe a recovering router in lockstep).
func (c *Collector) recordFailure(id graph.NodeID, now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pollErrors++
	c.telPollErrors.Inc()
	h := c.healthLocked(id)
	h.ConsecutiveFailures++
	next := Degraded
	if h.ConsecutiveFailures >= c.cfg.DownAfter {
		next = Down
	}
	c.noteTransitionLocked(h.State, next)
	h.State = next
	backoff := c.cfg.BackoffBase * math.Exp2(float64(h.ConsecutiveFailures-1))
	if backoff > c.cfg.BackoffMax {
		backoff = c.cfg.BackoffMax
	}
	if j := c.cfg.BackoffJitter; j > 0 {
		backoff *= 1 + j*(2*c.rng.Float64()-1)
	}
	h.NextAttempt = now + backoff
}

// Health implements HealthSource: a snapshot of every agent's health,
// keyed by node ID.
func (c *Collector) Health() map[graph.NodeID]AgentHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[graph.NodeID]AgentHealth, len(c.health))
	for id, h := range c.health {
		out[id] = *h
	}
	return out
}

// HealthOf returns one agent's health snapshot.
func (c *Collector) HealthOf(id graph.NodeID) (AgentHealth, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.health[id]
	if !ok {
		return AgentHealth{}, false
	}
	return *h, true
}
