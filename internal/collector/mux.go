package collector

// Stream-multiplexed framing for the TCP query protocol. The original
// protocol was strict lockstep: one request frame, one response frame,
// one connection per outstanding call. Every frame is now a muxFrame
// envelope carrying a client-chosen stream ID, which buys two things on
// the same single connection:
//
//   - pipelining: a client may have any number of ordinary calls in
//     flight at once; the server answers each on its own stream in
//     whatever order the handlers finish, and
//   - long-lived subscription streams (the "watch" op, watch.go): a
//     stream that stays open after its subscribe ack and carries
//     server-pushed WatchUpdate frames until cancelled, evicted, or
//     drained with a terminal Final update. The replication feed
//     (feed.go) is such a stream whose updates carry FeedPayload
//     snapshots/deltas for stateless read replicas.
//
// The envelope rides on the existing length-prefixed independent-gob
// frames (frame.go), so the bounded-allocation and abort-mid-frame
// properties carry over unchanged. Stream IDs are allocated by the
// client, monotonically per connection; the server only ever echoes
// them back.

// muxFrame kinds. Exactly one of Req/Resp/Update is set, matching Kind.
const (
	mfRequest  = 1 // client -> server: open a stream with one request
	mfResponse = 2 // server -> client: the stream's (single) response
	mfUpdate   = 3 // server -> client: one watch delta on a live stream
	mfCancel   = 4 // client -> server: tear down a watch stream
)

// muxFrame is the wire envelope: every frame on a connection is one of
// these. Unset pointer fields cost nothing on the wire (gob omits
// them), so an ordinary request frame is only a few bytes larger than
// the pre-mux protocol's.
type muxFrame struct {
	Stream uint64
	Kind   int
	Req    *request
	Resp   *response
	Update *WatchUpdate
}

// init warms gob's engines for the envelope shapes the first real
// connection will see (request/response warming lives in service.go).
func init() {
	warmGob(
		&muxFrame{Stream: 1, Kind: mfRequest, Req: &request{Op: "ping"}},
		&muxFrame{Stream: 1, Kind: mfResponse, Resp: &response{Code: 1}},
		&muxFrame{Stream: 1, Kind: mfUpdate, Update: &WatchUpdate{Seq: 1, Epoch: 1}},
		&muxFrame{Stream: 1, Kind: mfCancel},
	)
}
