// Package collector implements the Remos Collector (Figure 2): the
// network-facing half of the system. It discovers topology and polls
// octet counters over SNMP, maintains per-channel utilization time
// series, and answers the Modeler's queries either in-process or over a
// TCP service (service.go). Multiple collectors covering different parts
// of a network can be merged (merge.go), the paper's "large environment
// may require multiple cooperating Collectors".
package collector

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"time"
)

// ChannelKey names one direction of one physical link in a way that is
// stable across collectors: the global link ID published by agents in the
// Remos enterprise MIB, plus a direction relative to the canonical
// (lexicographically smaller endpoint = A) orientation.
type ChannelKey struct {
	Global int
	Dir    graph.Dir
}

func (k ChannelKey) String() string { return fmt.Sprintf("glink%d/%s", k.Global, k.Dir) }

// Topology is a discovered network map.
type Topology struct {
	// Graph holds the discovered nodes and links. Links are inserted in
	// ascending global-ID order with canonical endpoint orientation, so
	// local IDs are deterministic.
	Graph *graph.Graph
	// GlobalID maps the Graph's local link IDs to global link IDs.
	GlobalID map[graph.LinkID]int
	// DiscoveredAt is the virtual time of discovery.
	DiscoveredAt float64
}

// Key returns the ChannelKey for a directed traversal of a local link.
func (t *Topology) Key(l *graph.Link, d graph.Dir) ChannelKey {
	return ChannelKey{Global: t.GlobalID[l.ID], Dir: d}
}

// VersionedSource is an optional Source refinement exposing a cheap,
// monotonically increasing data version: the version changes whenever
// the measurements or topology behind the source may have changed (a
// poll round ran, a rediscovery completed, a checkpoint was restored).
// The Modeler uses it to invalidate its per-snapshot availability memo
// without re-fetching every channel per query; sources that cannot
// report a version cheaply (the TCP Client — a version probe would cost
// the round trip the memo exists to avoid) return ok=false and the
// Modeler simply skips memoization for them.
type VersionedSource interface {
	DataVersion() (version uint64, ok bool)
}

// Source is the query surface the Modeler consumes. Implemented by
// *Collector (in-process), *Client (TCP), and *Merged.
type Source interface {
	// Topology returns the discovered network map.
	Topology() (*Topology, error)
	// Utilization summarizes the traffic rate (bits/s) observed on a
	// channel over the trailing span seconds; span 0 means latest sample.
	Utilization(key ChannelKey, span float64) (stats.Stat, error)
	// Samples returns the raw utilization samples for predictors.
	Samples(key ChannelKey) ([]stats.Sample, error)
	// HostLoad summarizes a host's CPU load fraction over the span.
	HostLoad(node graph.NodeID, span float64) (stats.Stat, error)
	// DataAge reports how many seconds old the newest sample for a
	// channel is — the staleness a Modeler uses to decay prediction
	// accuracy at query time.
	DataAge(key ChannelKey) (float64, error)
}

// Config parameterizes a Collector.
type Config struct {
	Client *snmp.Client
	Clock  *simclock.Clock

	// Addrs maps node IDs to agent addresses; the collector polls all of
	// them and discovers topology from them. This is the collector's
	// administrative domain.
	Addrs map[graph.NodeID]string

	// PollPeriod is the counter-polling interval in (virtual) seconds.
	PollPeriod float64

	// WindowLen and WindowAge bound the per-channel sample windows.
	WindowLen int
	WindowAge float64

	// PerHopLatency is the fixed per-hop delay annotated on discovered
	// links, matching the paper's collector.
	PerHopLatency float64

	// RediscoverPeriod, when positive, re-runs topology discovery every
	// that many virtual seconds, picking up capacity changes (degraded
	// links report a new ifSpeed) and newly reachable agents. Zero
	// disables periodic rediscovery.
	RediscoverPeriod float64

	// DownAfter is the number of consecutive failed attempts at which an
	// agent's health goes from Degraded to Down (default 3). The first
	// failure already marks it Degraded.
	DownAfter int

	// BackoffBase and BackoffMax bound the exponential retry backoff the
	// circuit breaker applies to failing agents, in virtual seconds:
	// after the n-th consecutive failure the next attempt waits
	// min(BackoffBase·2^(n-1), BackoffMax). Defaults: PollPeriod and
	// 16×PollPeriod.
	BackoffBase float64
	BackoffMax  float64

	// BackoffJitter randomizes each backoff by ±(jitter fraction),
	// drawn from the seeded RNG so schedules stay reproducible. Zero
	// (the default) keeps the schedule exact.
	BackoffJitter float64

	// Seed seeds the jitter RNG (default 1).
	Seed int64

	// StaleHalfLife is the data age, in virtual seconds, at which a
	// channel's reported Accuracy has decayed to half — the §4.4
	// estimation-accuracy channel carrying outage information. Zero
	// means 10×PollPeriod; negative disables decay.
	StaleHalfLife float64
}

func (c *Config) fill() {
	if c.PollPeriod <= 0 {
		c.PollPeriod = 2.0
	}
	if c.WindowLen <= 0 {
		c.WindowLen = 512
	}
	if c.PerHopLatency <= 0 {
		c.PerHopLatency = 0.0005
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = c.PollPeriod
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 16 * c.BackoffBase
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StaleHalfLife == 0 {
		c.StaleHalfLife = 10 * c.PollPeriod
	}
}

// staleHalfLife returns the effective half-life (0 = decay disabled).
func (c *Config) staleHalfLife() float64 {
	if c.StaleHalfLife < 0 {
		return 0
	}
	return c.StaleHalfLife
}

// Collector polls agents and accumulates utilization history.
type Collector struct {
	cfg Config
	tel *telemetry.Registry

	mu         sync.Mutex
	topo       *Topology
	counters   map[ChannelKey]counterState
	windows    map[ChannelKey]*stats.Window
	capacity   map[ChannelKey]float64
	loads      map[graph.NodeID]*stats.Window
	health     map[graph.NodeID]*AgentHealth
	lastNode   map[graph.NodeID]*nodeInfo
	rng        *rand.Rand
	ticker     *simclock.Ticker
	rediscover *simclock.Ticker

	polls       uint64
	pollErrors  uint64
	discoveries uint64

	// stateGen counts wholesale state replacements (checkpoint
	// restores). Feed cursors (feed.go) remember the generation they
	// were built against; a mismatch means per-channel sample cursors
	// reference windows that no longer exist, so the subscription gets
	// a fresh Full payload instead of a bogus delta. Guarded by mu.
	stateGen uint64

	// dataVersion increments whenever stored measurements or topology
	// may have changed (poll round, discovery, checkpoint restore); see
	// VersionedSource. Atomic so readers never touch c.mu.
	dataVersion atomic.Uint64

	// haTerm/haMode publish the HA lease term and role (ha.go): set by
	// the ha.Node on role transitions, read by the feed, watch, and
	// query paths to stamp fencing state on everything that leaves the
	// process. Atomics so stamping never touches c.mu.
	haTerm atomic.Uint64
	haMode atomic.Uint32

	// versionSubs holds edge-triggered version-change listeners
	// (VersionNotifier, watch.go); its own lock so notifyVersion never
	// contends with query-path readers on c.mu.
	versionMu   sync.Mutex
	versionSubs map[chan struct{}]struct{}

	// Hot-path instruments, resolved once at construction so PollOnce
	// pays pointer dereferences, not registry lookups, per round.
	telPolls      *telemetry.Counter
	telPollErrors *telemetry.Counter
	telPollMS     *telemetry.Quantile
	telSamples    *telemetry.Counter
}

type counterState struct {
	at     float64
	octets uint32
	valid  bool
}

// New creates a Collector; call Discover (or Start, which discovers
// first) before querying.
func New(cfg Config) *Collector {
	cfg.fill()
	tel := telemetry.NewRegistry()
	return &Collector{
		cfg:      cfg,
		tel:      tel,
		counters: make(map[ChannelKey]counterState),
		windows:  make(map[ChannelKey]*stats.Window),
		capacity: make(map[ChannelKey]float64),
		loads:    make(map[graph.NodeID]*stats.Window),
		health:   make(map[graph.NodeID]*AgentHealth),
		lastNode: make(map[graph.NodeID]*nodeInfo),
		rng:      rand.New(rand.NewSource(cfg.Seed)),

		telPolls:      tel.Counter("collector.polls"),
		telPollErrors: tel.Counter("collector.poll.errors"),
		telPollMS:     tel.Quantile("collector.poll.wall_ms", 0),
		telSamples:    tel.Counter("collector.samples.ingested"),
	}
}

// Telemetry returns the collector's metrics registry: poll latencies,
// health transitions, checkpoint activity. Always non-nil.
func (c *Collector) Telemetry() *telemetry.Registry { return c.tel }

// Polls returns how many poll rounds completed.
func (c *Collector) Polls() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.polls
}

// PollErrors returns how many per-agent poll failures occurred.
func (c *Collector) PollErrors() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pollErrors
}

// Start discovers the topology and begins periodic polling on the
// clock. A collector that already has a topology — restored from a
// checkpoint via RestoreCheckpoint — starts warm: the blocking cold
// discovery and baseline poll are skipped, queries are answerable from
// the first instant with honest (downtime-inclusive) data ages, and
// polling resumes at the next tick using the restored counter
// baselines.
func (c *Collector) Start() error {
	c.mu.Lock()
	warm := c.topo != nil
	c.mu.Unlock()
	if !warm {
		if _, err := c.Discover(); err != nil {
			return err
		}
		c.PollOnce() // baseline counters
	}
	clk := c.cfg.Clock
	c.ticker = clk.NewTicker(clk.Now()+simclock.Time(c.cfg.PollPeriod), c.cfg.PollPeriod,
		"collector-poll", func(simclock.Time) { c.PollOnce() })
	if c.cfg.RediscoverPeriod > 0 {
		c.rediscover = clk.NewTicker(clk.Now()+simclock.Time(c.cfg.RediscoverPeriod),
			c.cfg.RediscoverPeriod, "collector-rediscover", func(simclock.Time) {
				// Failures leave the previous topology in place; the
				// error count already tracks them.
				_, _ = c.Discover()
			})
	}
	return nil
}

// Stop halts periodic polling and rediscovery.
func (c *Collector) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
	if c.rediscover != nil {
		c.rediscover.Stop()
		c.rediscover = nil
	}
}

// Discoveries returns how many topology discoveries have completed.
func (c *Collector) Discoveries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.discoveries
}

// Topology implements Source.
func (c *Collector) Topology() (*Topology, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.topo == nil {
		return nil, fmt.Errorf("collector: topology not discovered yet")
	}
	return c.topo, nil
}

// ageAdjustLocked stamps the data age onto a summary and decays its
// accuracy by the configured half-life: how an agent outage shows up in
// query answers (stale-but-served) instead of as an error.
func (c *Collector) ageAdjustLocked(st stats.Stat, w *stats.Window) stats.Stat {
	latest, ok := w.Latest()
	if !ok {
		return st
	}
	st.Age = math.Max(0, float64(c.cfg.Clock.Now())-latest.Time)
	return st.AgeDecayed(c.cfg.staleHalfLife())
}

// Utilization implements Source.
func (c *Collector) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.windows[key]
	if w == nil {
		return stats.NoData(), fmt.Errorf("collector: unknown channel %v", key)
	}
	return c.ageAdjustLocked(w.Summary(span), w), nil
}

// DataAge implements Source: seconds since the newest sample for key.
func (c *Collector) DataAge(key ChannelKey) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.windows[key]
	if w == nil {
		return 0, fmt.Errorf("collector: unknown channel %v", key)
	}
	latest, ok := w.Latest()
	if !ok {
		return math.Inf(1), nil
	}
	return math.Max(0, float64(c.cfg.Clock.Now())-latest.Time), nil
}

// Samples implements Source.
func (c *Collector) Samples(key ChannelKey) ([]stats.Sample, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.windows[key]
	if w == nil {
		return nil, fmt.Errorf("collector: unknown channel %v", key)
	}
	return w.Samples(), nil
}

// HostLoad implements Source.
func (c *Collector) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.loads[node]
	if w == nil {
		return stats.NoData(), fmt.Errorf("collector: no load data for %q", node)
	}
	return c.ageAdjustLocked(w.Summary(span), w), nil
}

// Capacity returns the discovered capacity of a channel in bits/s.
func (c *Collector) Capacity(key ChannelKey) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.capacity[key]
	return v, ok
}

// sortedNodes returns the domain's node IDs in stable order.
func (c *Collector) sortedNodes() []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(c.cfg.Addrs))
	for id := range c.cfg.Addrs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// PollOnce polls every agent in the domain once, recording one
// utilization sample per channel. Agent failures are counted and
// skipped: a collector must survive unreachable routers.
func (c *Collector) PollOnce() {
	wallStart := time.Now()
	defer func() {
		c.telPolls.Inc()
		c.telPollMS.Observe(float64(time.Since(wallStart)) / float64(time.Millisecond))
	}()
	now := float64(c.cfg.Clock.Now())
	type obs struct {
		key    ChannelKey
		octets uint32
	}
	var observations []obs
	seen := make(map[ChannelKey]bool)
	var loadObs []struct {
		node graph.NodeID
		load float64
	}

	for _, id := range c.sortedNodes() {
		// Circuit breaker: agents on a backoff schedule are skipped, so
		// a dead router costs a few probes per backoff period while the
		// surviving topology keeps being polled at full rate.
		if !c.allowAttempt(id, now) {
			continue
		}
		addr := c.cfg.Addrs[id]
		ifaces, err := c.walkInterfaces(addr)
		if err != nil {
			c.recordFailure(id, now)
			continue
		}
		for _, iface := range ifaces {
			outKey := canonicalKey(iface.global, string(id), iface.neighbor)
			inKey := canonicalKey(iface.global, iface.neighbor, string(id))
			if !seen[outKey] {
				seen[outKey] = true
				observations = append(observations, obs{outKey, iface.outOctets})
			}
			if !seen[inKey] {
				seen[inKey] = true
				observations = append(observations, obs{inKey, iface.inOctets})
			}
		}
		// Host CPU load, when exposed. A misbehaving agent can report
		// anything; negative or non-finite loads are rejected at ingest
		// so they never reach a sample window.
		if vbs, err := c.cfg.Client.Get(addr, snmp.OIDHrProcessorLoad); err == nil && len(vbs) == 1 {
			load := float64(vbs[0].Value.Int) / 100
			if math.IsNaN(load) || math.IsInf(load, 0) || load < 0 {
				c.noteIngestError()
			} else {
				loadObs = append(loadObs, struct {
					node graph.NodeID
					load float64
				}{id, load})
			}
		}
		c.recordSuccess(id, now)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, o := range observations {
		prev := c.counters[o.key]
		c.counters[o.key] = counterState{at: now, octets: o.octets, valid: true}
		if !prev.valid || now <= prev.at {
			continue // baseline sample
		}
		// Counter32 wraparound-safe difference.
		delta := uint32(o.octets - prev.octets)
		rate := float64(delta) * 8 / (now - prev.at)
		// Ingest validation: a rate must be a finite non-negative number
		// before it may enter a window. maxmin's guards downstream are
		// the second line of defense, not the first.
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			c.pollErrors++
			c.telPollErrors.Inc()
			continue
		}
		w := c.windows[o.key]
		if w == nil {
			w = stats.NewWindow(c.cfg.WindowLen, c.cfg.WindowAge)
			c.windows[o.key] = w
		}
		if err := w.Add(now, rate); err != nil {
			c.pollErrors++
			c.telPollErrors.Inc()
		} else {
			c.telSamples.Inc()
		}
	}
	for _, lo := range loadObs {
		w := c.loads[lo.node]
		if w == nil {
			w = stats.NewWindow(c.cfg.WindowLen, c.cfg.WindowAge)
			c.loads[lo.node] = w
		}
		if err := w.Add(now, lo.load); err != nil {
			c.pollErrors++
			c.telPollErrors.Inc()
		} else {
			c.telSamples.Inc()
		}
	}
	c.polls++
	// Bump even on an all-failures round: data *ages* (and accuracy
	// decays) are clock-relative, and the poll tick is the granularity at
	// which memoized answers may drift from a recomputation.
	c.dataVersion.Add(1)
	c.notifyVersion()
}

// DataVersion implements VersionedSource.
func (c *Collector) DataVersion() (uint64, bool) { return c.dataVersion.Load(), true }

// noteIngestError counts a rejected measurement; callers must not hold
// c.mu (PollOnce's collection phase runs before it takes the lock).
func (c *Collector) noteIngestError() {
	c.mu.Lock()
	c.pollErrors++
	c.mu.Unlock()
	c.telPollErrors.Inc()
}

// The in-process Collector answers immediately, so its ContextSource
// implementation only needs the liveness check: a caller whose budget
// already expired gets the typed error instead of a computed answer.

// TopologyCtx implements ContextSource.
func (c *Collector) TopologyCtx(ctx context.Context) (*Topology, error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	return c.Topology()
}

// UtilizationCtx implements ContextSource.
func (c *Collector) UtilizationCtx(ctx context.Context, key ChannelKey, span float64) (stats.Stat, error) {
	if err := ctxError(ctx); err != nil {
		return stats.NoData(), err
	}
	return c.Utilization(key, span)
}

// SamplesCtx implements ContextSource.
func (c *Collector) SamplesCtx(ctx context.Context, key ChannelKey) ([]stats.Sample, error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	return c.Samples(key)
}

// HostLoadCtx implements ContextSource.
func (c *Collector) HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error) {
	if err := ctxError(ctx); err != nil {
		return stats.NoData(), err
	}
	return c.HostLoad(node, span)
}

// DataAgeCtx implements ContextSource.
func (c *Collector) DataAgeCtx(ctx context.Context, key ChannelKey) (float64, error) {
	if err := ctxError(ctx); err != nil {
		return 0, err
	}
	return c.DataAge(key)
}

// canonicalKey orients a directed channel relative to the canonical
// (smaller-name = A) endpoint ordering.
func canonicalKey(global int, from, to string) ChannelKey {
	d := graph.AtoB
	if from > to {
		d = graph.BtoA
	}
	return ChannelKey{Global: global, Dir: d}
}
