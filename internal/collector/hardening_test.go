package collector

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
)

// fakeSource is a minimal Source for server-lifecycle tests, with
// per-method hooks to inject panics and slowness.
type fakeSource struct {
	utilHook func() // runs inside Utilization, before answering
}

func fakeTopo() *Topology {
	g := graph.New()
	g.AddHost("a", 1)
	g.AddHost("b", 1)
	l := g.AddLink("a", "b", 100e6, 0.0005)
	return &Topology{Graph: g, GlobalID: map[graph.LinkID]int{l.ID: 1}}
}

func (f *fakeSource) Topology() (*Topology, error) { return fakeTopo(), nil }

func (f *fakeSource) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	if f.utilHook != nil {
		f.utilHook()
	}
	return stats.Exact(42), nil
}

func (f *fakeSource) Samples(key ChannelKey) ([]stats.Sample, error) {
	return []stats.Sample{{Time: 1, Value: 42}}, nil
}

func (f *fakeSource) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return stats.Exact(0.5), nil
}

func (f *fakeSource) DataAge(key ChannelKey) (float64, error) { return 0, nil }

// TestPanicRecovery: a panic in one request must cost the client one
// errored response — never the daemon process or even the connection.
func TestPanicRecovery(t *testing.T) {
	src := &fakeSource{utilHook: func() { panic("modeler bug") }}
	srv, err := Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.Utilization(ChannelKey{Global: 1}, 5)
	if err == nil {
		t.Fatal("panicking request returned no error")
	}
	if got := err.Error(); !strings.Contains(got, "internal error") || !strings.Contains(got, "modeler bug") {
		t.Fatalf("panic not surfaced as typed internal error: %v", err)
	}
	// The same connection keeps serving.
	if _, err := cli.Topology(); err != nil {
		t.Fatalf("daemon did not survive the panic: %v", err)
	}
}

// TestGarbageFrameDropsOnlyThatConn: a client sending a garbage gob
// frame loses its connection; concurrent well-behaved clients are
// untouched.
func TestGarbageFrameDropsOnlyThatConn(t *testing.T) {
	// A short idle deadline bounds the test even when the garbage looks
	// to gob like the prefix of an enormous frame.
	srv, err := ServeConfig(&fakeSource{}, "127.0.0.1:0", ServerConfig{
		IdleTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.Topology(); err != nil {
		t.Fatal(err)
	}

	bad, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write([]byte("\xff\xfe\xfdnot gob at all\x00\x01")); err != nil {
		t.Fatal(err)
	}
	// The server must drop the garbage connection...
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if _, err := bad.Read(buf); err == nil {
		// A first read may observe buffered bytes only if the server
		// somehow answered; it must not.
		t.Fatal("server answered a garbage frame")
	}
	// ...while the good client keeps working.
	if _, err := good.Topology(); err != nil {
		t.Fatalf("well-behaved client disturbed by garbage peer: %v", err)
	}
}

// TestIdleConnReaped: a client that connects and sends nothing is
// dropped at the idle deadline instead of pinning a goroutine forever.
func TestIdleConnReaped(t *testing.T) {
	srv, err := ServeConfig(&fakeSource{}, "127.0.0.1:0", ServerConfig{
		IdleTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("silent connection got data")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle connection survived %v (want ~100ms reap)", elapsed)
	}
}

// TestMaxConnsBusyRefusal: connections over the cap get a typed
// ErrServerBusy answer instead of silently queueing; capacity freed by
// a departing client is reusable.
func TestMaxConnsBusyRefusal(t *testing.T) {
	srv, err := ServeConfig(&fakeSource{}, "127.0.0.1:0", ServerConfig{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Topology(); err != nil {
		t.Fatal(err)
	}

	second, err := DialConfig(srv.Addr(), ClientConfig{
		CallTimeout:   2 * time.Second,
		RetryBackoff:  time.Millisecond,
		SingleAttempt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	_, err = second.Topology()
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-cap connection: got %v, want ErrServerBusy", err)
	}

	// Free the slot; a new client must eventually get in.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		third, err := Dial(srv.Addr())
		if err == nil {
			_, qerr := third.Topology()
			third.Close()
			if qerr == nil {
				break
			}
			err = qerr
		}
		if time.Now().After(deadline) {
			t.Fatalf("freed capacity never became usable: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownDrain: Shutdown lets an in-flight request finish, then
// refuses new work.
func TestShutdownDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	src := &fakeSource{utilHook: func() {
		close(started)
		<-release
	}}
	srv, err := Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	type result struct {
		st  stats.Stat
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := cli.Utilization(ChannelKey{Global: 1}, 5)
		done <- result{st, err}
	}()
	<-started // the request is in flight inside the Source

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()
	time.Sleep(50 * time.Millisecond) // let Shutdown begin draining
	close(release)                    // in-flight request completes

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request killed by graceful drain: %v", res.err)
	}
	if res.st.Median != 42 {
		t.Fatalf("drained request answered %v", res.st)
	}
	if err := <-shutdownDone; err != nil {
		t.Logf("shutdown listener close: %v", err)
	}
	// New connections are refused after drain.
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Fatal("server still accepting after Shutdown")
	}
}

// TestShutdownForceClosesStragglers: a request still running past the
// drain budget is force-closed rather than blocking shutdown forever.
func TestShutdownForceClosesStragglers(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	src := &fakeSource{utilHook: func() {
		close(started)
		<-release
	}}
	srv, err := Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	go cli.Utilization(ChannelKey{Global: 1}, 5)
	<-started

	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown(100 * time.Millisecond)
		close(shutdownDone)
	}()
	// Shutdown must return even though the handler is stuck...
	select {
	case <-shutdownDone:
		t.Fatal("shutdown returned while a handler goroutine was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release) // unstick the handler; now shutdown can complete
	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hung after drain budget expired")
	}
}

// TestConcurrentClientsNoCrossTalk hammers one server with 10 clients
// issuing mixed operations and checks every answer against the
// expected per-query value: interleaved gob streams must never leak a
// response to the wrong client. Run under -race by `make verify`.
func TestConcurrentClientsNoCrossTalk(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	// Give every host a distinct CPU load so a cross-talked response is
	// detectable by value.
	hosts := []graph.NodeID{"m-1", "m-2", "m-3", "m-4", "m-5", "m-6", "m-7", "m-8"}
	for i, h := range hosts {
		r.net.SetHostLoad(h, float64(i+1)/10)
	}
	r.clk.RunUntil(30)

	srv, err := Serve(r.col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	topo, _ := r.col.Topology()
	key := keyFor(t, topo, "timberline", "whiteface")
	wantNodes := topo.Graph.NumNodes()

	const clients = 10
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			host := hosts[ci%len(hosts)]
			wantLoad := float64(ci%len(hosts)+1) / 10
			for it := 0; it < iters; it++ {
				switch it % 5 {
				case 0:
					tp, err := cli.Topology()
					if err != nil {
						errs <- fmt.Errorf("client %d topo: %w", ci, err)
						return
					}
					if tp.Graph.NumNodes() != wantNodes {
						errs <- fmt.Errorf("client %d: topo has %d nodes, want %d", ci, tp.Graph.NumNodes(), wantNodes)
						return
					}
				case 1:
					ld, err := cli.HostLoad(host, 20)
					if err != nil {
						errs <- fmt.Errorf("client %d load: %w", ci, err)
						return
					}
					if diff := ld.Median - wantLoad; diff > 1e-9 || diff < -1e-9 {
						errs <- fmt.Errorf("client %d: load(%s) = %v, want %v (cross-talk?)", ci, host, ld.Median, wantLoad)
						return
					}
				case 2:
					if _, err := cli.Samples(key); err != nil {
						errs <- fmt.Errorf("client %d samples: %w", ci, err)
						return
					}
				case 3:
					if _, err := cli.DataAge(key); err != nil {
						errs <- fmt.Errorf("client %d age: %w", ci, err)
						return
					}
				case 4:
					if h := cli.Health(); h == nil {
						errs <- fmt.Errorf("client %d: no health snapshot", ci)
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
