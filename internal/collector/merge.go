package collector

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Merged combines several collectors covering (possibly overlapping)
// parts of one network into a single Source — the paper's "multiple
// cooperating Collectors" for large environments. Topologies are unioned
// by node name and global link ID; measurement queries go to the first
// member that has data for the channel.
type Merged struct {
	sources []Source
	tel     *telemetry.Registry

	// mu guards memberErr: the last topology-merge error per member (""
	// when the member's last merge contribution succeeded). A partial
	// merge — some member unreachable while others answered — used to be
	// silently dropped; now it is counted (merge.topology.partial),
	// queryable (LastPartialError), and surfaced through Health.
	mu        sync.Mutex
	memberErr []string
}

// Merge creates a merged source. At least one member is required.
func Merge(sources ...Source) *Merged {
	if len(sources) == 0 {
		panic("collector: Merge requires at least one source")
	}
	return &Merged{
		sources:   sources,
		tel:       telemetry.NewRegistry(),
		memberErr: make([]string, len(sources)),
	}
}

// Telemetry implements TelemetrySource (never nil).
func (m *Merged) Telemetry() *telemetry.Registry { return m.tel }

// LastPartialError returns the first member error from the most recent
// topology merge, or nil when every member contributed (or no merge has
// run yet). A non-nil result means the current merged topology is a
// partial view.
func (m *Merged) LastPartialError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, msg := range m.memberErr {
		if msg != "" {
			return fmt.Errorf("collector: merge member %d: %s", i, msg)
		}
	}
	return nil
}

// Topology implements Source: the union of member topologies.
func (m *Merged) Topology() (*Topology, error) {
	return m.TopologyCtx(context.Background())
}

// TopologyCtx implements ContextSource: the union of member topologies,
// each member queried under the caller's context.
func (m *Merged) TopologyCtx(ctx context.Context) (*Topology, error) {
	type linkRec struct {
		a, b     graph.NodeID
		capacity float64
		latency  float64
	}
	nodes := make(map[graph.NodeID]graph.Node)
	links := make(map[int]linkRec)
	latest := 0.0
	any := false
	var firstErr error
	memberErr := make([]string, len(m.sources))
	for i, s := range m.sources {
		t, err := CtxTopology(ctx, s)
		if err != nil {
			if IsLifecycleError(err) {
				return nil, err
			}
			memberErr[i] = err.Error()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		any = true
		if t.DiscoveredAt > latest {
			latest = t.DiscoveredAt
		}
		for _, id := range t.Graph.Nodes() {
			n := *t.Graph.Node(id)
			// A member that only heard of a node as a leaf neighbor
			// defaults it to Compute; a member that polled it directly
			// knows better. Prefer Network kind when any member says so.
			if prev, ok := nodes[id]; ok && prev.Kind == graph.Network {
				continue
			}
			nodes[id] = n
		}
		for _, l := range t.Graph.Links() {
			gid := t.GlobalID[l.ID]
			if prev, ok := links[gid]; ok {
				if prev.a != l.A || prev.b != l.B {
					return nil, fmt.Errorf("collector: merge conflict on link %d: %s--%s vs %s--%s",
						gid, prev.a, prev.b, l.A, l.B)
				}
				continue
			}
			links[gid] = linkRec{a: l.A, b: l.B, capacity: l.Capacity, latency: l.Latency}
		}
	}
	if !any {
		return nil, firstErr
	}
	m.mu.Lock()
	m.memberErr = memberErr
	m.mu.Unlock()
	if firstErr != nil {
		// At least one member went unheard while others answered: the
		// merged topology is a partial view, and callers deserve to know
		// without the call failing.
		m.tel.Counter("merge.topology.partial").Inc()
	}
	g := graph.New()
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		g.AddNode(nodes[graph.NodeID(id)])
	}
	gids := make([]int, 0, len(links))
	for gid := range links {
		gids = append(gids, gid)
	}
	sort.Ints(gids)
	out := &Topology{Graph: g, GlobalID: make(map[graph.LinkID]int), DiscoveredAt: latest}
	for _, gid := range gids {
		rec := links[gid]
		l := g.AddLink(rec.a, rec.b, rec.capacity, rec.latency)
		out.GlobalID[l.ID] = gid
	}
	return out, nil
}

// DataVersion implements VersionedSource: the sum of member versions
// (each monotone, so the sum is monotone). Memoization stays sound only
// when every member is versioned; one opaque member disables it.
func (m *Merged) DataVersion() (uint64, bool) {
	var sum uint64
	for _, s := range m.sources {
		vs, ok := s.(VersionedSource)
		if !ok {
			return 0, false
		}
		v, ok := vs.DataVersion()
		if !ok {
			return 0, false
		}
		sum += v
	}
	return sum, true
}

// Utilization implements Source.
func (m *Merged) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	return m.UtilizationCtx(context.Background(), key, span)
}

// UtilizationCtx implements ContextSource.
func (m *Merged) UtilizationCtx(ctx context.Context, key ChannelKey, span float64) (stats.Stat, error) {
	var firstErr error
	for _, s := range m.sources {
		st, err := CtxUtilization(ctx, s, key, span)
		if err == nil {
			return st, nil
		}
		if IsLifecycleError(err) {
			return stats.NoData(), err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return stats.NoData(), firstErr
}

// Samples implements Source.
func (m *Merged) Samples(key ChannelKey) ([]stats.Sample, error) {
	return m.SamplesCtx(context.Background(), key)
}

// SamplesCtx implements ContextSource.
func (m *Merged) SamplesCtx(ctx context.Context, key ChannelKey) ([]stats.Sample, error) {
	var firstErr error
	for _, s := range m.sources {
		sm, err := CtxSamples(ctx, s, key)
		if err == nil {
			return sm, nil
		}
		if IsLifecycleError(err) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// HostLoad implements Source.
func (m *Merged) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return m.HostLoadCtx(context.Background(), node, span)
}

// HostLoadCtx implements ContextSource.
func (m *Merged) HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error) {
	var firstErr error
	for _, s := range m.sources {
		st, err := CtxHostLoad(ctx, s, node, span)
		if err == nil {
			return st, nil
		}
		if IsLifecycleError(err) {
			return stats.NoData(), err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return stats.NoData(), firstErr
}

// DataAge implements Source: the freshest age any member reports for the
// channel (overlapping members may poll at different rates).
func (m *Merged) DataAge(key ChannelKey) (float64, error) {
	return m.DataAgeCtx(context.Background(), key)
}

// DataAgeCtx implements ContextSource.
func (m *Merged) DataAgeCtx(ctx context.Context, key ChannelKey) (float64, error) {
	best := 0.0
	any := false
	var firstErr error
	for _, s := range m.sources {
		age, err := CtxDataAge(ctx, s, key)
		if err != nil {
			if IsLifecycleError(err) {
				return 0, err
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !any || age < best {
			best = age
		}
		any = true
	}
	if !any {
		return 0, firstErr
	}
	return best, nil
}

// Health implements HealthSource: the union of member health maps. When
// members overlap on an agent, the healthier view wins — one collector
// still reaching the agent means the data keeps flowing. Members whose
// last topology merge failed appear as synthetic "merged/member-<i>"
// entries marked Down, so a partial merged view is visible in the same
// place agent outages are.
func (m *Merged) Health() map[graph.NodeID]AgentHealth {
	var out map[graph.NodeID]AgentHealth
	for _, s := range m.sources {
		hs, ok := s.(HealthSource)
		if !ok {
			continue
		}
		for id, h := range hs.Health() {
			if out == nil {
				out = make(map[graph.NodeID]AgentHealth)
			}
			if prev, ok := out[id]; ok && prev.State <= h.State {
				continue
			}
			out[id] = h
		}
	}
	m.mu.Lock()
	for i, msg := range m.memberErr {
		if msg == "" {
			continue
		}
		if out == nil {
			out = make(map[graph.NodeID]AgentHealth)
		}
		id := graph.NodeID(fmt.Sprintf("merged/member-%d", i))
		out[id] = AgentHealth{State: Down, ConsecutiveFailures: 1, LastSuccess: -1, LastAttempt: -1}
	}
	m.mu.Unlock()
	return out
}
