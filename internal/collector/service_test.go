package collector

import (
	"io"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/snmp"
	"repro/internal/traffic"
)

// TestTCPService exercises the full daemon path: simulated network ->
// SNMP agents -> collector -> TCP/gob service -> client, over a real
// localhost socket.
func TestTCPService(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 40e6)
	r.net.SetHostLoad("m-5", 0.25)
	r.clk.RunUntil(30)

	srv, err := Serve(r.col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Topology round-trips.
	remote, err := cli.Topology()
	if err != nil {
		t.Fatal(err)
	}
	local, _ := r.col.Topology()
	if remote.Graph.NumNodes() != local.Graph.NumNodes() || remote.Graph.NumLinks() != local.Graph.NumLinks() {
		t.Fatalf("topology mismatch: %d/%d vs %d/%d nodes/links",
			remote.Graph.NumNodes(), remote.Graph.NumLinks(),
			local.Graph.NumNodes(), local.Graph.NumLinks())
	}
	if remote.Graph.Node("timberline").Kind != graph.Network {
		t.Fatal("node kind lost in transit")
	}

	// Utilization agrees with the in-process answer.
	k := keyFor(t, local, "timberline", "whiteface")
	want, _ := r.col.Utilization(k, 20)
	got, err := cli.Utilization(k, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Median-want.Median) > 1e-9 {
		t.Fatalf("util = %v, want %v", got, want)
	}

	// Samples.
	samples, err := cli.Samples(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples over TCP")
	}

	// Host load.
	load, err := cli.HostLoad("m-5", 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load.Median-0.25) > 1e-9 {
		t.Fatalf("load = %v", load)
	}

	// Errors propagate.
	if _, err := cli.Utilization(ChannelKey{Global: 999}, 5); err == nil {
		t.Fatal("bogus channel succeeded over TCP")
	}
	if _, err := cli.HostLoad("aspen", 5); err == nil {
		t.Fatal("router load succeeded over TCP")
	}
}

func TestClientReconnects(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	r.clk.RunUntil(10)
	srv, err := Serve(r.col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Topology(); err != nil {
		t.Fatal(err)
	}
	// Kill the connection server-side; the next call must reconnect.
	srv.Close()
	srv2, err := Serve(r.col, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := cli.Topology(); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
}

// TestServerRestartMidQueryStream kills and rebinds the server in the
// middle of a stream of queries; the client's reconnect-with-backoff
// path must hide the restart from the caller entirely.
func TestServerRestartMidQueryStream(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 40e6)
	r.clk.RunUntil(20)

	srv, err := Serve(r.col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli, err := DialConfig(addr, ClientConfig{
		CallTimeout:  2 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	local, _ := r.col.Topology()
	k := keyFor(t, local, "timberline", "whiteface")
	for i := 0; i < 10; i++ {
		if i == 5 {
			srv.Close()
			srv, err = Serve(r.col, addr)
			if err != nil {
				t.Skipf("could not rebind %s: %v", addr, err)
			}
		}
		if _, err := cli.Utilization(k, 10); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if _, err := cli.Topology(); err != nil {
			t.Fatalf("query %d (topo): %v", i, err)
		}
	}
	srv.Close()
}

// TestClientCallDeadline points the client at a server that accepts and
// reads but never answers: calls must fail within the configured
// deadline instead of blocking the Modeler forever.
func TestClientCallDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	cli, err := DialConfig(ln.Addr().String(), ClientConfig{
		CallTimeout:  150 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	if _, err := cli.Topology(); err == nil {
		t.Fatal("hung server produced an answer")
	}
	// Two attempts at 150 ms each plus slack.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: call took %v", elapsed)
	}
}

func TestMergeDisjointDomains(t *testing.T) {
	r := newRig(t, 2)
	// Build two collectors over disjoint halves of the testbed.
	mk := func(ids ...graph.NodeID) *Collector {
		addrs := make(map[graph.NodeID]string)
		for _, id := range ids {
			addrs[id] = snmp.Addr(id)
		}
		return New(Config{
			Client:     snmp.NewClient(r.att.Registry, snmp.DefaultCommunity),
			Clock:      r.clk,
			Addrs:      addrs,
			PollPeriod: 2,
		})
	}
	west := mk("aspen", "timberline", "m-1", "m-2", "m-3", "m-4", "m-5", "m-6")
	east := mk("whiteface", "m-7", "m-8")
	if err := west.Start(); err != nil {
		t.Fatal(err)
	}
	if err := east.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-7", "m-8", 30e6)
	r.clk.RunUntil(30)

	m := Merge(west, east)
	topo, err := m.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Graph.NumLinks() != 10 {
		t.Fatalf("merged links = %d", topo.Graph.NumLinks())
	}
	// whiteface appears as a leaf host to west but as a router to east;
	// the merge must keep the router view.
	if topo.Graph.Node("whiteface").Kind != graph.Network {
		t.Fatal("merge lost router kind")
	}
	if !topo.Graph.Connected() {
		t.Fatal("merged topology disconnected")
	}
	// Utilization on an east-side link is only known to east.
	k := keyFor(t, topo, "m-7", "whiteface")
	st, err := m.Utilization(k, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-30e6) > 1e4 {
		t.Fatalf("merged util = %v", st)
	}
	// Host load via merge.
	r.net.SetHostLoad("m-7", 0.5)
	r.clk.RunUntil(40)
	ld, err := m.HostLoad("m-7", 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ld.Median-0.5) > 1e-9 {
		t.Fatalf("merged load = %v", ld)
	}
	if _, err := m.Samples(ChannelKey{Global: 999}); err == nil {
		t.Fatal("bogus channel succeeded via merge")
	}
}
