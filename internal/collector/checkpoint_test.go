package collector

import (
	"bytes"
	"context"
	"encoding/gob"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// checkpointedRig runs a collector long enough to have real state and
// returns it plus its serialized checkpoint.
func checkpointedRig(t *testing.T) (*rig, []byte) {
	t.Helper()
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 40e6)
	r.net.SetHostLoad("m-5", 0.25)
	r.clk.RunUntil(40)
	var buf bytes.Buffer
	if err := r.col.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return r, buf.Bytes()
}

// restoreInto restores a checkpoint into a fresh collector whose clock
// has been advanced to `at` virtual seconds.
func restoreInto(t *testing.T, ckpt []byte, at float64) *Collector {
	t.Helper()
	clk := simclock.New()
	clk.Advance(at)
	col := New(Config{Clock: clk, PollPeriod: 2, PerHopLatency: topology.PerHopLatency})
	info, err := col.RestoreCheckpoint(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != CheckpointVersion {
		t.Fatalf("restored version %d", info.Version)
	}
	return col
}

// TestCheckpointRoundTrip saves, restores into a fresh collector at the
// same virtual time, and asserts Topology/Utilization/Health/DataAge
// agree bit-for-bit.
func TestCheckpointRoundTrip(t *testing.T) {
	r, ckpt := checkpointedRig(t)
	col2 := restoreInto(t, ckpt, float64(r.clk.Now()))

	// Topology: identical structure, kinds, capacities, global IDs.
	t1, err := r.col.Topology()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := col2.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topoToWire(t1), topoToWire(t2)) {
		t.Fatal("topology did not round-trip bit-for-bit")
	}

	// Every channel: Utilization (several spans), Samples, DataAge.
	for _, l := range t1.Graph.Links() {
		for _, d := range []graph.Dir{graph.AtoB, graph.BtoA} {
			k := t1.Key(l, d)
			for _, span := range []float64{0, 5, 20} {
				u1, e1 := r.col.Utilization(k, span)
				u2, e2 := col2.Utilization(k, span)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("util(%v,%v) error mismatch: %v vs %v", k, span, e1, e2)
				}
				if e1 == nil && !reflect.DeepEqual(u1, u2) {
					t.Fatalf("util(%v,%v) = %+v, restored %+v", k, span, u1, u2)
				}
			}
			s1, e1 := r.col.Samples(k)
			s2, e2 := col2.Samples(k)
			if (e1 == nil) != (e2 == nil) || !reflect.DeepEqual(s1, s2) {
				t.Fatalf("samples(%v) mismatch", k)
			}
			a1, e1 := r.col.DataAge(k)
			a2, e2 := col2.DataAge(k)
			if (e1 == nil) != (e2 == nil) || a1 != a2 {
				t.Fatalf("age(%v) = %v/%v, restored %v/%v", k, a1, e1, a2, e2)
			}
		}
	}

	// Host loads.
	l1, err := r.col.HostLoad("m-5", 20)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := col2.HostLoad("m-5", 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("load = %+v, restored %+v", l1, l2)
	}

	// Health and poll statistics.
	if !reflect.DeepEqual(r.col.Health(), col2.Health()) {
		t.Fatal("health map did not round-trip")
	}
	if r.col.Polls() != col2.Polls() || r.col.PollErrors() != col2.PollErrors() ||
		r.col.Discoveries() != col2.Discoveries() {
		t.Fatalf("poll statistics lost: %d/%d/%d vs %d/%d/%d",
			r.col.Polls(), r.col.PollErrors(), r.col.Discoveries(),
			col2.Polls(), col2.PollErrors(), col2.Discoveries())
	}
}

// TestCheckpointHonestAges: restored at a later virtual time (the
// downtime), reported data ages include the gap instead of resetting.
func TestCheckpointHonestAges(t *testing.T) {
	r, ckpt := checkpointedRig(t)
	saveAt := float64(r.clk.Now())
	const downtime = 60.0
	col2 := restoreInto(t, ckpt, saveAt+downtime)

	topo, _ := col2.Topology()
	k := keyFor(t, topo, "timberline", "whiteface")
	ageBefore, err := r.col.DataAge(k)
	if err != nil {
		t.Fatal(err)
	}
	ageAfter, err := col2.DataAge(k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ageAfter-(ageBefore+downtime)) > 1e-9 {
		t.Fatalf("age after restart = %v, want %v (pre-crash %v + downtime %v)",
			ageAfter, ageBefore+downtime, ageBefore, downtime)
	}
	// The staleness shows up as decayed accuracy too.
	st, err := col2.Utilization(k, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Age < downtime {
		t.Fatalf("stat age %v does not include downtime %v", st.Age, downtime)
	}
	fresh, _ := r.col.Utilization(k, 20)
	if st.Accuracy >= fresh.Accuracy {
		t.Fatalf("accuracy did not decay across downtime: %v >= %v", st.Accuracy, fresh.Accuracy)
	}
}

// TestWarmStartSkipsDiscovery: a restored collector starts warm — no
// new discovery cycle; polling resumes on the restored topology.
func TestWarmStartSkipsDiscovery(t *testing.T) {
	r, ckpt := checkpointedRig(t)
	preDiscoveries := r.col.Discoveries()

	// Fresh collector over the same live network and clock.
	col2 := New(Config{
		Client:        r.col.cfg.Client,
		Clock:         r.clk,
		Addrs:         r.col.cfg.Addrs,
		PollPeriod:    2,
		PerHopLatency: topology.PerHopLatency,
	})
	if _, err := col2.RestoreCheckpoint(bytes.NewReader(ckpt)); err != nil {
		t.Fatal(err)
	}
	if err := col2.Start(); err != nil {
		t.Fatal(err)
	}
	defer col2.Stop()
	if got := col2.Discoveries(); got != preDiscoveries {
		t.Fatalf("warm start ran a new discovery: %d -> %d", preDiscoveries, got)
	}
	// Queries are answerable immediately, and polling still works: new
	// samples keep arriving on the restored windows.
	topo2, err := col2.Topology()
	if err != nil {
		t.Fatal(err)
	}
	k := keyFor(t, topo2, "timberline", "whiteface")
	before, err := col2.Samples(k)
	if err != nil {
		t.Fatal(err)
	}
	r.clk.RunUntil(r.clk.Now() + 10)
	after, err := col2.Samples(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("polling did not resume after warm start: %d -> %d samples", len(before), len(after))
	}
}

// TestCheckpointRejection: corrupt, truncated, alien, and
// wrong-version files are rejected with a clear error and leave the
// collector untouched.
func TestCheckpointRejection(t *testing.T) {
	_, ckpt := checkpointedRig(t)

	fresh := func() *Collector {
		clk := simclock.New()
		return New(Config{Clock: clk, PollPeriod: 2})
	}
	expectErr := func(name string, data []byte, wantSub string) {
		t.Helper()
		col := fresh()
		_, err := col.RestoreCheckpoint(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: restore succeeded", name)
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q lacks %q", name, err, wantSub)
		}
		// The failed restore must not have half-applied state.
		if _, terr := col.Topology(); terr == nil {
			t.Fatalf("%s: collector has a topology after failed restore", name)
		}
	}

	expectErr("empty", nil, "header")
	expectErr("garbage", []byte("definitely not a gob stream"), "")
	for _, frac := range []float64{0.25, 0.5, 0.9} {
		expectErr("truncated", ckpt[:int(float64(len(ckpt))*frac)], "")
	}

	var alien bytes.Buffer
	gob.NewEncoder(&alien).Encode(&checkpointHeader{Magic: "SOMETHING", Version: CheckpointVersion})
	expectErr("alien magic", alien.Bytes(), "not a collector checkpoint")

	var vnext bytes.Buffer
	gob.NewEncoder(&vnext).Encode(&checkpointHeader{Magic: checkpointMagic, Version: CheckpointVersion + 1})
	expectErr("future version", vnext.Bytes(), "unsupported checkpoint version")

	// Bit-flip corruption inside the dump body.
	flipped := append([]byte(nil), ckpt...)
	flipped[len(flipped)/2] ^= 0xff
	col := fresh()
	if _, err := col.RestoreCheckpoint(bytes.NewReader(flipped)); err == nil {
		// A single flipped byte may survive gob decoding (it can land in
		// sample payload); only structural corruption must error. But it
		// must never panic — reaching here at all is the assertion.
		t.Log("bit flip decoded cleanly (landed in payload)")
	}
}

// lockedFeedCol serializes a collector and its virtual clock behind one
// mutex so watch evaluators, a restore storm, and the test's clock
// driver can interleave under -race. (Production deployments get this
// ordering from the TCP server; in-process tests must provide it.)
type lockedFeedCol struct {
	mu  *sync.Mutex
	col *Collector
}

func (l *lockedFeedCol) Topology() (*Topology, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.col.Topology()
}

func (l *lockedFeedCol) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.col.Utilization(key, span)
}

func (l *lockedFeedCol) Samples(key ChannelKey) ([]stats.Sample, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.col.Samples(key)
}

func (l *lockedFeedCol) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.col.HostLoad(node, span)
}

func (l *lockedFeedCol) DataAge(key ChannelKey) (float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.col.DataAge(key)
}

func (l *lockedFeedCol) FeedSince(cur *FeedCursor) (*FeedPayload, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.col.FeedSince(cur)
}

func (l *lockedFeedCol) DataVersion() (uint64, bool) { return l.col.DataVersion() }

// TestRestoreCheckpointRacingSubscriptions: a restore replaces the
// collector's windows wholesale while watch/feed subscriptions are
// live. Every feed subscriber must observe the replacement as a
// Resync-marked Full payload — never a torn delta that chains new
// samples onto windows that no longer exist, and never a Resync mark
// without the self-contained snapshot that makes it safe to apply in
// place. Run under -race: restores, polls, and subscription evaluators
// all interleave here.
func TestRestoreCheckpointRacingSubscriptions(t *testing.T) {
	cases := []struct {
		name  string
		kinds []string
	}{
		{"one feed", []string{WatchFeed}},
		{"feed plus version watch", []string{WatchFeed, WatchVersion}},
		{"two independent feeds", []string{WatchFeed, WatchFeed}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, ckpt := checkpointedRig(t)
			defer r.col.Stop()
			var mu sync.Mutex
			locked := &lockedFeedCol{mu: &mu, col: r.col}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			type result struct {
				updates     int
				resyncFulls int
				torn        string // first violation, "" if clean
			}
			results := make([]result, len(tc.kinds))
			started := make([]chan struct{}, len(tc.kinds))
			var wg sync.WaitGroup
			for i, kind := range tc.kinds {
				h := watchLocal(ctx, locked, r.col, WatchRequest{Kind: kind}, DefaultWatchQueueDepth)
				defer h.Cancel()
				started[i] = make(chan struct{})
				wg.Add(1)
				go func(i, idx int, kind string, h *WatchHandle) {
					defer wg.Done()
					res := &results[i]
					lastEpoch := uint64(0)
					// Per-channel newest sample time the subscriber has
					// applied; nil means "must receive a Full first".
					var last map[ChannelKey]float64
					firstDone := false
					for u := range h.C {
						res.updates++
						if !firstDone {
							firstDone = true
							close(started[i])
						}
						if u.Err != "" {
							continue
						}
						if u.Epoch < lastEpoch && res.torn == "" {
							res.torn = "epoch went backwards"
						}
						lastEpoch = u.Epoch
						if kind != WatchFeed {
							continue
						}
						p := u.Feed
						if p == nil {
							continue
						}
						if u.Overflowed {
							// Queue fold: continuity is unknowable until
							// the next Full; a real replica resubscribes.
							last = nil
							continue
						}
						if u.Resync && !p.Full && res.torn == "" {
							res.torn = "Resync mark without a Full payload"
						}
						if p.Full {
							if u.Resync {
								res.resyncFulls++
							}
							last = make(map[ChannelKey]float64)
							for k, ss := range p.Channels {
								last[k] = ss[len(ss)-1].Time
							}
							continue
						}
						if last == nil {
							if res.torn == "" {
								res.torn = "delta before any Full payload"
							}
							continue
						}
						// A delta must extend the applied windows: its
						// samples strictly newer, per channel. A delta
						// computed against pre-restore windows ships
						// samples at or before what we already hold.
						for k, ss := range p.Channels {
							if prev, ok := last[k]; ok && ss[0].Time <= prev && res.torn == "" {
								res.torn = "torn delta: sample not newer than applied window"
							}
							last[k] = ss[len(ss)-1].Time
						}
					}
				}(i, i, kind, h)
			}

			// Let every subscription receive its baseline before the storm.
			advance := func(d float64) {
				mu.Lock()
				r.clk.Advance(d)
				mu.Unlock()
				time.Sleep(time.Millisecond) // let evaluators drain
			}
			advance(2)
			for _, ch := range started {
				select {
				case <-ch:
				case <-time.After(5 * time.Second):
					t.Fatal("subscription never delivered its baseline update")
				}
			}

			// The storm: restores from another goroutine racing poll
			// rounds and subscription evaluation.
			const restores = 6
			restoreDone := make(chan error, 1)
			go func() {
				for i := 0; i < restores; i++ {
					mu.Lock()
					_, err := r.col.RestoreCheckpoint(bytes.NewReader(ckpt))
					mu.Unlock()
					if err != nil {
						restoreDone <- err
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
				restoreDone <- nil
			}()
			for i := 0; i < 30; i++ {
				advance(2)
			}
			if err := <-restoreDone; err != nil {
				t.Fatalf("restore: %v", err)
			}
			advance(2) // one more round so the final restore's Full ships

			cancel()
			wg.Wait()
			for i, res := range results {
				if res.torn != "" {
					t.Errorf("subscriber %d (%s): %s", i, tc.kinds[i], res.torn)
				}
				if tc.kinds[i] == WatchFeed && res.resyncFulls == 0 {
					t.Errorf("subscriber %d: no Resync-marked Full observed across %d restores (%d updates)",
						i, restores, res.updates)
				}
			}
		})
	}
}
