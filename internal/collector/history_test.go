package collector

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/traffic"
)

func TestSaveLoadHistoryRoundTrip(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 55e6)
	r.net.SetHostLoad("m-3", 0.35)
	r.clk.RunUntil(40)

	var buf bytes.Buffer
	if err := r.col.SaveHistory(&buf); err != nil {
		t.Fatal(err)
	}
	rp, err := LoadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Topology survives.
	topo, err := rp.Topology()
	if err != nil {
		t.Fatal(err)
	}
	live, _ := r.col.Topology()
	if topo.Graph.NumNodes() != live.Graph.NumNodes() || topo.Graph.NumLinks() != live.Graph.NumLinks() {
		t.Fatal("topology changed in the dump")
	}

	// Measurements answer identically.
	k := keyFor(t, live, "timberline", "whiteface")
	want, _ := r.col.Utilization(k, 20)
	got, err := rp.Utilization(k, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Median-want.Median) > 1e-9 || got.Samples != want.Samples {
		t.Fatalf("replayed util %v vs live %v", got, want)
	}
	samples, err := rp.Samples(k)
	if err != nil || len(samples) == 0 {
		t.Fatalf("samples: %d, %v", len(samples), err)
	}
	ld, err := rp.HostLoad("m-3", 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ld.Median-0.35) > 1e-9 {
		t.Fatalf("replayed load = %v", ld)
	}

	// Unknown keys error like the live collector.
	if _, err := rp.Utilization(ChannelKey{Global: 999}, 5); err == nil {
		t.Fatal("bogus channel succeeded")
	}
	if _, err := rp.HostLoad("aspen", 5); err == nil {
		t.Fatal("router load succeeded")
	}
}

func TestSaveHistoryBeforeDiscoveryFails(t *testing.T) {
	r := newRig(t, 2)
	var buf bytes.Buffer
	if err := r.col.SaveHistory(&buf); err == nil {
		t.Fatal("saved without a topology")
	}
}

func TestLoadHistoryRejectsGarbage(t *testing.T) {
	if _, err := LoadHistory(strings.NewReader("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadHistory(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty accepted")
	}
}

// A Modeler over a Replay answers availability queries offline.
func TestModelerOverReplay(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 60e6)
	r.clk.RunUntil(30)
	var buf bytes.Buffer
	if err := r.col.SaveHistory(&buf); err != nil {
		t.Fatal(err)
	}
	rp, err := LoadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The Replay implements Source; the core package can't be imported
	// here (cycle-free layering: collector below core), so just check
	// the Source contract directly.
	var src Source = rp
	topo, err := src.Topology()
	if err != nil {
		t.Fatal(err)
	}
	k := keyFor(t, topo, "timberline", "whiteface")
	st, err := src.Utilization(k, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Median-60e6) > 1e4 {
		t.Fatalf("offline utilization = %v", st)
	}
}
