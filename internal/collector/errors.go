package collector

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Typed query-lifecycle errors. The query path distinguishes three ways
// a request can fail without an answer being wrong:
//
//   - the caller's time budget ran out (ErrDeadlineExceeded),
//   - the server refused the work to protect itself (ErrLoadShed, and
//     the older connection-cap ErrServerBusy in service.go),
//   - the wire carried something structurally unacceptable
//     (ErrFrameTooLarge in frame.go).
//
// All are sentinel errors tested with errors.Is; FailoverSource routes
// around the refusals, and the Modeler propagates them instead of
// falling back to fabricated capacity answers.

// deadlineErr is ErrDeadlineExceeded's concrete type. Its Is method
// makes errors.Is(err, context.DeadlineExceeded) succeed too, so code
// written against the standard context idiom keeps working.
type deadlineErr struct{}

func (deadlineErr) Error() string { return "collector: deadline exceeded" }

func (deadlineErr) Is(target error) bool { return target == context.DeadlineExceeded }

// ErrDeadlineExceeded is returned when a query's time budget expires —
// client-side (the context deadline passed before or during the call)
// or server-side (the budget hint in the request frame ran out before
// the server could compute an answer). Test with errors.Is; it also
// matches context.DeadlineExceeded.
var ErrDeadlineExceeded error = deadlineErr{}

// ErrStaleReplica is the typed refusal of a read replica whose feed
// has been partitioned longer than its staleness fence — or that has
// not yet applied its first snapshot. The replica will serve answers
// with honestly growing ages up to the fence, and refuses past it
// rather than presenting old state as fresh. Like the overload
// refusals, it proves the replica process alive: FailoverSource routes
// the call to the next replica (or the collector itself) without
// marking the stale one Down.
var ErrStaleReplica = errors.New("collector: replica stale beyond fence")

// ErrNotLeader is the typed refusal of a standby collector in a
// hot-standby pair (internal/ha): the process is alive and state-synced
// but not the leader, so it must not answer queries that would shadow
// the leader's authoritative state. Like the overload refusals it
// proves the process alive; FailoverSource routes the call to the
// leader (following the hint when the refusal carries one) without
// marking the standby Down.
var ErrNotLeader = errors.New("collector: not the leader")

// NotLeaderError wraps ErrNotLeader with the refusing node's best guess
// at the current leader's query address ("" when unknown).
type NotLeaderError struct {
	// Leader is the advertised query address of the node believed to
	// hold the lease, for client-side rerouting.
	Leader string
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return ErrNotLeader.Error()
	}
	return fmt.Sprintf("collector: not the leader (leader at %s)", e.Leader)
}

func (e *NotLeaderError) Unwrap() error { return ErrNotLeader }

// LeaderHint extracts the leader address from a not-leader error chain;
// ok is false when err carries no hint.
func LeaderHint(err error) (string, bool) {
	var nl *NotLeaderError
	if errors.As(err, &nl) && nl.Leader != "" {
		return nl.Leader, true
	}
	return "", false
}

// ErrLoadShed is the typed refusal an overloaded server answers with
// when its admission queue is full: the request was never started, so
// retrying elsewhere (or later — see RetryAfter) is safe.
// FailoverSource treats it like ErrServerBusy: try the next replica.
var ErrLoadShed = errors.New("collector: load shed")

// ShedError wraps ErrLoadShed with the server's retry-after hint.
type ShedError struct {
	// RetryAfter is how long the server suggests waiting before
	// retrying this replica.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("collector: load shed (retry after %v)", e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return ErrLoadShed }

// RetryAfterHint extracts the retry-after duration from a load-shed
// error chain; ok is false when err carries no hint.
func RetryAfterHint(err error) (time.Duration, bool) {
	var se *ShedError
	if errors.As(err, &se) {
		return se.RetryAfter, true
	}
	return 0, false
}

// ctxError maps a finished context to the typed lifecycle error: a
// passed deadline becomes ErrDeadlineExceeded, a cancellation stays
// context.Canceled. It returns nil while the context is live.
func ctxError(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadlineExceeded
	default:
		return err
	}
}

// ctxCallError is ctxError plus a wall-clock deadline check: when a
// call's I/O deadline is set to the context deadline, the blocked read
// can fail a hair before the context's own timer fires. The deadline
// having passed is authoritative either way — the caller's budget is
// spent — so it maps to ErrDeadlineExceeded even if ctx.Err() is still
// nil.
func ctxCallError(ctx context.Context) error {
	if err := ctxError(ctx); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return ErrDeadlineExceeded
	}
	return nil
}

// IsLifecycleError reports whether err is one of the typed
// query-lifecycle errors (deadline, cancellation, shed, busy): the
// class of errors that mean "the caller gave up or the server refused",
// which consumers must propagate rather than paper over with degraded
// answers.
func IsLifecycleError(err error) bool {
	return errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrLoadShed) ||
		errors.Is(err, ErrServerBusy) ||
		errors.Is(err, ErrStaleReplica) ||
		errors.Is(err, ErrNotLeader) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
