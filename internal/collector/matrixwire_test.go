package collector

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func nodeList(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(strings.Repeat("x", 1+i%3))
	}
	return out
}

func TestMatrixWeight(t *testing.T) {
	cases := []struct {
		n, m, want int
	}{
		{1, 1, 1},    // scalar-sized batch costs like a scalar op
		{8, 8, 1},    // 64 cells still under one extra unit
		{16, 16, 2},  // 256 cells = 1 + 1
		{64, 64, 17}, // 4096 cells = 1 + 16
		{256, 256, 257},
	}
	for _, c := range cases {
		mr := &MatrixRequest{Srcs: nodeList(c.n), Dsts: nodeList(c.m)}
		if got := matrixWeight(mr); got != c.want {
			t.Errorf("matrixWeight(%dx%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
	if got := matrixWeight(nil); got != 1 {
		t.Errorf("matrixWeight(nil) = %d, want 1", got)
	}
}

func TestValidateMatrixRequest(t *testing.T) {
	ok := &MatrixRequest{Srcs: nodeList(2), Dsts: nodeList(3), TFKind: 2, Span: 10}
	if err := validateMatrixRequest(ok); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []*MatrixRequest{
		nil,
		{Dsts: nodeList(1)},
		{Srcs: nodeList(1)},
		{Srcs: nodeList(1), Dsts: nodeList(1), TFKind: -1},
		{Srcs: nodeList(1), Dsts: nodeList(1), TFKind: 4},
	}
	for i, mr := range bad {
		if err := validateMatrixRequest(mr); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, mr)
		}
	}
}

func TestCheckMatrixShape(t *testing.T) {
	mr := &MatrixRequest{Srcs: nodeList(2), Dsts: nodeList(3)}
	good := &MatrixAnswer{
		Bandwidth: [][]float64{{1, 2, 3}, {4, 5, 6}},
		Latency:   [][]float64{{1, 2, 3}, {4, 5, 6}},
		Valid:     [][]bool{{true, true, true}, {true, true, true}},
	}
	if err := checkMatrixShape(mr, good); err != nil {
		t.Fatalf("well-shaped answer rejected: %v", err)
	}
	missingRow := &MatrixAnswer{
		Bandwidth: [][]float64{{1, 2, 3}},
		Latency:   [][]float64{{1, 2, 3}},
		Valid:     [][]bool{{true, true, true}},
	}
	if err := checkMatrixShape(mr, missingRow); err == nil {
		t.Fatal("short answer accepted")
	}
	raggedCol := &MatrixAnswer{
		Bandwidth: [][]float64{{1, 2, 3}, {4, 5}},
		Latency:   [][]float64{{1, 2, 3}, {4, 5, 6}},
		Valid:     [][]bool{{true, true, true}, {true, true, true}},
	}
	if err := checkMatrixShape(mr, raggedCol); err == nil {
		t.Fatal("ragged answer accepted")
	}
}

// FuzzDecodeMatrixRequest hammers the matrix-op decode path: any byte
// string the frame decoder accepts as a matrix-carrying request must
// survive validation and admission pricing without panicking, and must
// re-encode. Seeds cover the representative shapes plus hostile sizes.
func FuzzDecodeMatrixRequest(f *testing.F) {
	add := func(mr *MatrixRequest) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, &request{Op: "matrix", Matrix: mr}, 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	add(&MatrixRequest{Srcs: []graph.NodeID{"m-1"}, Dsts: []graph.NodeID{"m-2"}, TFKind: 0})
	add(&MatrixRequest{Srcs: nodeList(8), Dsts: nodeList(8), TFKind: 2, Span: 10})
	add(&MatrixRequest{Srcs: nodeList(3), Dsts: nodeList(5), TFKind: 3, Horizon: 30})
	add(&MatrixRequest{TFKind: -7})
	add(&MatrixRequest{Srcs: nodeList(64), Dsts: nodeList(64), TFKind: 1, Span: -1e300})
	add(nil)

	const maxFrame = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		var req request
		if err := readFrame(bytes.NewReader(data), &req, maxFrame); err != nil {
			return
		}
		// Whatever decoded must price and validate without panics …
		_ = matrixWeight(req.Matrix)
		verr := validateMatrixRequest(req.Matrix)
		if verr == nil {
			if len(req.Matrix.Srcs) == 0 || len(req.Matrix.Dsts) == 0 {
				t.Fatalf("validation accepted an empty side: %+v", req.Matrix)
			}
		}
		// … and an accepted frame must be re-encodable.
		var out bytes.Buffer
		if err := writeFrame(&out, &req, 0); err != nil {
			t.Fatalf("accepted matrix request does not re-encode: %v (%+v)", err, req)
		}
	})
}
