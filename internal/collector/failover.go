package collector

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Client-side replication: a FailoverSource wraps N replica collector
// daemons behind one Source, the query-plane mirror of the per-agent
// breaker the collection pipeline already has. Each replica gets its own
// Client and a small health record; calls go to the preferred (earliest
// listed) healthy replica and fail over transparently — including in the
// middle of a query stream — when one dies. Downed replicas are
// re-probed in the background on an exponential-backoff schedule and
// rejoin the preference order as soon as they answer.

// DefaultProbeInterval is how often the background prober wakes to
// re-check downed replicas.
const DefaultProbeInterval = 500 * time.Millisecond

// DefaultReplicaDownAfter is the consecutive-failure count at which a
// replica is marked Down and removed from the preference order until a
// probe succeeds. The first failure already makes the replica
// less-preferred for the failing call (it fails over immediately);
// Down additionally stops routing new calls at it.
const DefaultReplicaDownAfter = 2

// FailoverConfig tunes a FailoverSource. The zero value of each field
// selects its default.
type FailoverConfig struct {
	// Client configures each per-replica client. SingleAttempt is
	// forced on: the failover layer owns retries, and trying the next
	// replica beats retrying the one that just failed.
	Client ClientConfig
	// DownAfter is the consecutive-failure threshold for marking a
	// replica Down (default DefaultReplicaDownAfter).
	DownAfter int
	// ProbeInterval is the background re-probe wakeup period for downed
	// replicas (default DefaultProbeInterval); negative disables the
	// prober (downed replicas are then only retried as a last resort
	// when every other replica fails).
	ProbeInterval time.Duration
	// BackoffBase and BackoffMax bound the exponential backoff between
	// probe attempts at a downed replica: after the n-th consecutive
	// failure the next attempt waits min(BackoffBase·2^(n-1),
	// BackoffMax). Defaults: ProbeInterval and 16×BackoffBase.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter randomizes each backoff by ±(jitter fraction) —
	// the same discipline as the collection breaker's
	// Config.BackoffJitter. Without it a fleet of clients that all
	// watched the same replica die re-probes it at synchronized
	// instants, a thundering herd at the worst possible moment (its
	// restart). Default DefaultFailoverJitter; negative disables.
	BackoffJitter float64
	// Seed seeds the jitter RNG. Zero derives a per-process seed so a
	// fleet's probe schedules decorrelate; tests set it explicitly for
	// reproducible schedules.
	Seed int64
	// Shuffle randomizes the initial routing order (seeded by Seed).
	// Without it every client in a fleet prefers the first listed
	// address, hammering one replica and failing over in lockstep when
	// it dies. Replicas() still reports in caller order.
	Shuffle bool
}

// DefaultFailoverJitter is the default ±fraction applied to replica
// probe backoffs.
const DefaultFailoverJitter = 0.2

func (fc *FailoverConfig) fill() {
	fc.Client.fill()
	fc.Client.SingleAttempt = true
	if fc.DownAfter <= 0 {
		fc.DownAfter = DefaultReplicaDownAfter
	}
	if fc.ProbeInterval == 0 {
		fc.ProbeInterval = DefaultProbeInterval
	}
	if fc.BackoffBase <= 0 {
		if fc.ProbeInterval > 0 {
			fc.BackoffBase = fc.ProbeInterval
		} else {
			fc.BackoffBase = DefaultProbeInterval
		}
	}
	if fc.BackoffMax <= 0 {
		fc.BackoffMax = 16 * fc.BackoffBase
	}
	if fc.BackoffJitter == 0 {
		fc.BackoffJitter = DefaultFailoverJitter
	}
	if fc.Seed == 0 {
		fc.Seed = time.Now().UnixNano()
	}
}

// ReplicaStatus is an observability snapshot of one replica.
type ReplicaStatus struct {
	Addr                string
	State               HealthState
	ConsecutiveFailures int
	// Calls counts calls this replica answered (including app-level
	// errors, which prove the replica alive); Failures counts transport
	// failures and busy refusals; Sheds counts the subset of refusals
	// that were admission-queue load sheds.
	Calls    uint64
	Failures uint64
	Sheds    uint64
	LastErr  string
}

// replica is the mutable per-replica record; fields are guarded by
// FailoverSource.mu. The client has its own lock and is used outside it.
type replica struct {
	addr   string
	client *Client

	state       HealthState
	consec      int
	calls       uint64
	failures    uint64
	sheds       uint64
	lastErr     string
	nextAttempt time.Time
}

// FailoverSource is a replicated Source over several collector daemons.
type FailoverSource struct {
	cfg      FailoverConfig
	replicas []*replica
	order    []int // routing preference: indexes into replicas (shuffled when cfg.Shuffle)
	tel      *telemetry.Registry

	mu       sync.Mutex
	rng      *rand.Rand // probe-backoff jitter; guarded by mu
	maxTerm  uint64     // highest HA lease term observed; guarded by mu
	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
}

// DialFailover connects to a set of replica collector daemons. At least
// one replica must be reachable at dial time; unreachable ones start out
// Down and are re-probed in the background.
func DialFailover(addrs []string, cfg FailoverConfig) (*FailoverSource, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("collector: DialFailover needs at least one address")
	}
	cfg.fill()
	tel := cfg.Client.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	f := &FailoverSource{cfg: cfg, tel: tel, stop: make(chan struct{}),
		rng: rand.New(rand.NewSource(cfg.Seed))}
	reachable := 0
	var firstErr error
	for _, addr := range addrs {
		// Replica clients share the failover registry, so client.calls /
		// client.call_ms aggregate across the replica set.
		r := &replica{addr: addr, client: &Client{addr: addr, cfg: cfg.Client, tel: tel}}
		if _, err := r.client.connect(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			r.state = Down
			r.consec = cfg.DownAfter
			r.lastErr = err.Error()
			r.nextAttempt = time.Now().Add(cfg.BackoffBase)
		} else {
			reachable++
		}
		f.replicas = append(f.replicas, r)
	}
	if reachable == 0 {
		f.closeClients()
		return nil, fmt.Errorf("collector: no replica reachable (tried %d): %w", len(addrs), firstErr)
	}
	f.order = make([]int, len(f.replicas))
	for i := range f.order {
		f.order[i] = i
	}
	if cfg.Shuffle {
		f.rng.Shuffle(len(f.order), func(i, j int) { f.order[i], f.order[j] = f.order[j], f.order[i] })
	}
	if cfg.ProbeInterval > 0 {
		f.probeWG.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// Close stops the background prober and closes every replica client.
func (f *FailoverSource) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.probeWG.Wait()
	f.closeClients()
	return nil
}

func (f *FailoverSource) closeClients() {
	for _, r := range f.replicas {
		r.client.Close()
	}
}

// Telemetry implements TelemetrySource: the registry shared by this
// failover layer and its per-replica clients (never nil).
func (f *FailoverSource) Telemetry() *telemetry.Registry { return f.tel }

// noteReplicaStateLocked counts a replica health transition. Callers
// hold f.mu.
func (f *FailoverSource) noteReplicaStateLocked(from, to HealthState) {
	if from == to {
		return
	}
	f.tel.Counter("failover.replica.to_" + to.String()).Inc()
}

// Replicas returns a status snapshot in preference order.
func (f *FailoverSource) Replicas() []ReplicaStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ReplicaStatus, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = ReplicaStatus{
			Addr: r.addr, State: r.state,
			ConsecutiveFailures: r.consec,
			Calls:               r.calls, Failures: r.failures, Sheds: r.sheds,
			LastErr: r.lastErr,
		}
	}
	return out
}

// eligible reports whether the routing pass may use replica i now: not
// Down, or Down but due for a retry.
func (f *FailoverSource) eligible(i int, now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.replicas[i]
	return r.state != Down || !now.Before(r.nextAttempt)
}

func (f *FailoverSource) recordSuccess(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.replicas[i]
	f.noteReplicaStateLocked(r.state, Healthy)
	r.state = Healthy
	r.consec = 0
	r.calls++
	r.lastErr = ""
	r.nextAttempt = time.Time{}
}

func (f *FailoverSource) recordFailure(i int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.replicas[i]
	r.failures++
	r.consec++
	f.tel.Counter("failover.failures").Inc()
	if err != nil {
		r.lastErr = err.Error()
	}
	next := Degraded
	if r.consec >= f.cfg.DownAfter {
		next = Down
	}
	f.noteReplicaStateLocked(r.state, next)
	r.state = next
	backoff := f.cfg.BackoffBase << uint(min(r.consec-1, 30))
	if backoff > f.cfg.BackoffMax {
		backoff = f.cfg.BackoffMax
	}
	// Jitter desynchronizes probe schedules across a client fleet: N
	// clients that all saw the replica die must not all re-probe it at
	// the same instants (health.go's breaker applies the same ±fraction
	// to agent retries).
	if j := f.cfg.BackoffJitter; j > 0 {
		backoff = time.Duration(float64(backoff) * (1 + j*(2*f.rng.Float64()-1)))
	}
	r.nextAttempt = time.Now().Add(backoff)
}

// errFencedTerm is the internal routing error for an answer rejected by
// term fencing: a node still claiming leadership at a term below one
// this source has already observed — a deposed leader that has not yet
// noticed its demotion. Routing treats it like a refusal (the process
// is alive; it just must not be believed).
var errFencedTerm = errors.New("collector: answer fenced (stale leader term)")

// observeTerm folds one HA term observation into the source-wide
// maximum and reports whether a leadership claim at that term is
// fenced. Term 0 (no HA) always passes.
func (f *FailoverSource) observeTerm(term uint64, leader bool) (fenced bool) {
	if term == 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if leader && term < f.maxTerm {
		return true
	}
	if term > f.maxTerm {
		f.maxTerm = term
	}
	return false
}

// indexOf maps a replica address to its index (-1 when unknown).
func (f *FailoverSource) indexOf(addr string) int {
	for i, r := range f.replicas {
		if r.addr == addr {
			return i
		}
	}
	return -1
}

// nextIndex picks the next replica for a routing pass: a pending
// leader hint first (fresh information beats stale health records —
// it bypasses eligibility), then the first untried replica in routing
// order that the pass admits. -1 ends the pass.
func (f *FailoverSource) nextIndex(tried []bool, pass int, now time.Time, hint *int) int {
	if *hint >= 0 && !tried[*hint] {
		i := *hint
		*hint = -1
		return i
	}
	*hint = -1
	for _, i := range f.order {
		if tried[i] {
			continue
		}
		if pass == 0 && !f.eligible(i, now) {
			continue
		}
		return i
	}
	return -1
}

// call implements caller by routing one request across the replica set:
// first over eligible replicas in routing order, then — if every one
// of those failed — over anything not yet tried, because a marked-Down
// replica that actually recovered beats returning an error. A replica
// that answers (even with an application-level error such as "unknown
// channel") is authoritative — unless term fencing rejects it as a
// deposed leader's answer; transport failures and typed refusals
// (busy connection caps, load sheds, standby not-leader) move on to
// the next replica, a not-leader refusal promoting its leader hint to
// the next attempt. The context is re-checked between attempts so an
// expired budget or a cancellation stops the routing loop instead of
// walking every replica with a dead deadline.
func (f *FailoverSource) call(ctx context.Context, req *request) (*response, error) {
	now := time.Now()
	tried := make([]bool, len(f.replicas))
	var firstErr error
	hint := -1
	for pass := 0; pass < 2; pass++ {
		for {
			i := f.nextIndex(tried, pass, now, &hint)
			if i < 0 {
				break
			}
			if cerr := ctxCallError(ctx); cerr != nil {
				if firstErr == nil {
					firstErr = cerr
				}
				return nil, fmt.Errorf("collector: failover aborted after %v: %w", firstErr, cerr)
			}
			tried[i] = true
			r := f.replicas[i]
			f.tel.Counter("failover.attempts").Inc()
			resp, err := r.client.call(ctx, req)
			if resp != nil && !errors.Is(err, ErrServerBusy) && !errors.Is(err, ErrLoadShed) &&
				!errors.Is(err, ErrStaleReplica) && !errors.Is(err, ErrNotLeader) {
				if f.observeTerm(resp.Term, resp.Leader) {
					// The answer is from a node claiming leadership at a
					// term we know is over: a deposed leader double-
					// serving. Reject it and route on.
					f.tel.Counter("failover.fencing.rejections").Inc()
					f.recordRefusal(i, errFencedTerm)
					if firstErr == nil {
						firstErr = errFencedTerm
					}
					continue
				}
				f.recordSuccess(i)
				return resp, err
			}
			// An overload, staleness, or not-leader refusal proves the
			// replica alive — don't penalize its health, just route
			// around it this call. (A fenced read replica recovers by
			// itself the moment its feed resyncs; a standby answers the
			// moment it is promoted.)
			switch {
			case errors.Is(err, ErrNotLeader):
				f.recordRefusal(i, err)
				if addr, ok := LeaderHint(err); ok {
					if j := f.indexOf(addr); j >= 0 && !tried[j] {
						hint = j
					}
				}
			case errors.Is(err, ErrServerBusy) || errors.Is(err, ErrLoadShed) ||
				errors.Is(err, ErrStaleReplica):
				f.recordRefusal(i, err)
			default:
				f.recordFailure(i, err)
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	f.tel.Counter("failover.exhausted").Inc()
	if cerr := ctxCallError(ctx); cerr != nil {
		return nil, fmt.Errorf("collector: failover exhausted (%v): %w", firstErr, cerr)
	}
	return nil, fmt.Errorf("collector: all %d replicas failed: %w", len(f.replicas), firstErr)
}

// recordRefusal notes an overload refusal without dinging the replica's
// failure counters: the replica answered, it is alive, it just declined
// the work right now.
func (f *FailoverSource) recordRefusal(i int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.replicas[i]
	r.failures++
	switch {
	case errors.Is(err, ErrLoadShed):
		r.sheds++
		f.tel.Counter("failover.refusals.shed").Inc()
	case errors.Is(err, ErrStaleReplica):
		f.tel.Counter("failover.refusals.stale").Inc()
	case errors.Is(err, ErrNotLeader):
		f.tel.Counter("failover.refusals.not_leader").Inc()
	case errors.Is(err, errFencedTerm):
		f.tel.Counter("failover.refusals.fenced").Inc()
	default:
		f.tel.Counter("failover.refusals.busy").Inc()
	}
	if err != nil {
		r.lastErr = err.Error()
	}
	if r.state == Healthy {
		f.noteReplicaStateLocked(r.state, Degraded)
		r.state = Degraded
	}
}

// probeLoop re-probes downed replicas in the background so a restarted
// primary rejoins the preference order without waiting for a foreground
// call to gamble on it.
func (f *FailoverSource) probeLoop() {
	defer f.probeWG.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		for i, r := range f.replicas {
			f.mu.Lock()
			due := r.state == Down && !time.Now().Before(r.nextAttempt)
			f.mu.Unlock()
			if !due {
				continue
			}
			resp, err := r.client.call(context.Background(), &request{Op: "ping"})
			if resp != nil && !errors.Is(err, ErrServerBusy) {
				f.recordSuccess(i)
			} else {
				f.recordFailure(i, err)
			}
		}
	}
}

// Topology implements Source.
func (f *FailoverSource) Topology() (*Topology, error) {
	return callTopology(context.Background(), f)
}

// TopologyCtx implements ContextSource.
func (f *FailoverSource) TopologyCtx(ctx context.Context) (*Topology, error) {
	return callTopology(ctx, f)
}

// Utilization implements Source.
func (f *FailoverSource) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	return callUtilization(context.Background(), f, key, span)
}

// UtilizationCtx implements ContextSource.
func (f *FailoverSource) UtilizationCtx(ctx context.Context, key ChannelKey, span float64) (stats.Stat, error) {
	return callUtilization(ctx, f, key, span)
}

// Samples implements Source.
func (f *FailoverSource) Samples(key ChannelKey) ([]stats.Sample, error) {
	return callSamples(context.Background(), f, key)
}

// SamplesCtx implements ContextSource.
func (f *FailoverSource) SamplesCtx(ctx context.Context, key ChannelKey) ([]stats.Sample, error) {
	return callSamples(ctx, f, key)
}

// HostLoad implements Source.
func (f *FailoverSource) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	return callHostLoad(context.Background(), f, node, span)
}

// HostLoadCtx implements ContextSource.
func (f *FailoverSource) HostLoadCtx(ctx context.Context, node graph.NodeID, span float64) (stats.Stat, error) {
	return callHostLoad(ctx, f, node, span)
}

// DataAge implements Source.
func (f *FailoverSource) DataAge(key ChannelKey) (float64, error) {
	return callDataAge(context.Background(), f, key)
}

// DataAgeCtx implements ContextSource.
func (f *FailoverSource) DataAgeCtx(ctx context.Context, key ChannelKey) (float64, error) {
	return callDataAge(ctx, f, key)
}

// Health implements HealthSource: the serving replica's view of the
// per-agent collection health.
func (f *FailoverSource) Health() map[graph.NodeID]AgentHealth {
	return callHealth(context.Background(), f)
}

// TelemetrySnapshot fetches the serving replica's merged metrics
// snapshot (routed like any other call, so it fails over too).
func (f *FailoverSource) TelemetrySnapshot(ctx context.Context) (*telemetry.Snapshot, error) {
	return callTelemetry(ctx, f)
}

// Watch implements WatchSource with transparent re-subscribe: the
// subscription is placed on the preferred eligible replica, and when
// that replica's stream dies with a transport error the proxy
// re-subscribes on the next one and marks the first update from the
// new stream Resync — epochs are per-replica and not comparable, so
// the consumer must treat that update as a fresh baseline rather than
// a delta. A clean Final (the serving replica drained its
// subscriptions on shutdown) is forwarded and ends the watch.
func (f *FailoverSource) Watch(ctx context.Context, wr WatchRequest) (*WatchHandle, error) {
	if err := ctxError(ctx); err != nil {
		return nil, err
	}
	if !validWatchKind(wr.Kind) {
		return nil, fmt.Errorf("collector: unknown watch kind %q", wr.Kind)
	}
	inner, err := f.subscribeAny(ctx, wr)
	if err != nil {
		return nil, err
	}
	h := newWatchHandle(0)
	stop := context.AfterFunc(ctx, h.Cancel)
	go f.proxyWatch(ctx, wr, h, inner, stop)
	return h, nil
}

// subscribeAny routes one subscribe across the replica set with the
// same two-pass preference order as call(): eligible replicas first,
// then anything not yet tried. Overload refusals (busy, shed, at the
// subscription cap) prove a replica alive and just route past it.
func (f *FailoverSource) subscribeAny(ctx context.Context, wr WatchRequest) (*WatchHandle, error) {
	now := time.Now()
	tried := make([]bool, len(f.replicas))
	var firstErr error
	hint := -1
	for pass := 0; pass < 2; pass++ {
		for {
			i := f.nextIndex(tried, pass, now, &hint)
			if i < 0 {
				break
			}
			if cerr := ctxCallError(ctx); cerr != nil {
				if firstErr == nil {
					firstErr = cerr
				}
				return nil, fmt.Errorf("collector: failover aborted after %v: %w", firstErr, cerr)
			}
			tried[i] = true
			r := f.replicas[i]
			f.tel.Counter("failover.attempts").Inc()
			h, err := r.client.Watch(ctx, wr)
			if err == nil {
				f.recordSuccess(i)
				return h, nil
			}
			switch {
			case errors.Is(err, ErrNotLeader):
				f.recordRefusal(i, err)
				if addr, ok := LeaderHint(err); ok {
					if j := f.indexOf(addr); j >= 0 && !tried[j] {
						hint = j
					}
				}
			case errors.Is(err, ErrServerBusy) || errors.Is(err, ErrLoadShed) ||
				errors.Is(err, ErrTooManySubscriptions) || errors.Is(err, ErrStaleReplica):
				f.recordRefusal(i, err)
			default:
				f.recordFailure(i, err)
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	f.tel.Counter("failover.exhausted").Inc()
	if cerr := ctxCallError(ctx); cerr != nil {
		return nil, fmt.Errorf("collector: failover exhausted (%v): %w", firstErr, cerr)
	}
	return nil, fmt.Errorf("collector: all %d replicas failed: %w", len(f.replicas), firstErr)
}

// proxyWatch forwards updates from replica streams onto h until a
// clean Final, a Cancel, or an unrecoverable subscribe failure. Each
// transport loss triggers a re-subscribe sweep; while every replica is
// down it keeps retrying on the backoff base, because a watch is a
// standing interest — "the collectors are all restarting" is exactly
// when the subscriber most wants the stream back.
func (f *FailoverSource) proxyWatch(ctx context.Context, wr WatchRequest, h *WatchHandle, inner *WatchHandle, stop func() bool) {
	defer stop()
	defer close(h.out)
	resync := false
	for {
		for inner != nil {
			select {
			case u, ok := <-inner.C:
				if !ok {
					if err := inner.Err(); err == nil {
						// Clean end without Final: the inner handle was
						// cancelled (our ctx ended) — nothing to resync.
						return
					}
					inner = nil // transport loss: fall through to re-subscribe
					continue
				}
				if f.observeTerm(u.Term, u.Term > 0) {
					// The stream is fed by a deposed leader still pushing
					// at its old term: abandon it and re-subscribe (the
					// hint routing lands on the new leader).
					f.tel.Counter("failover.fencing.rejections").Inc()
					inner.Cancel()
					inner = nil
					continue
				}
				if resync {
					u.Resync = true
					resync = false
					f.tel.Counter("failover.watch.resyncs").Inc()
				}
				select {
				case h.out <- u:
				case <-h.cancelCh:
					inner.Cancel()
					return
				}
				if u.Final {
					inner.Cancel()
					return
				}
			case <-h.cancelCh:
				inner.Cancel()
				return
			}
		}
		for inner == nil {
			select {
			case <-h.cancelCh:
				return
			default:
			}
			nh, err := f.subscribeAny(ctx, wr)
			if err == nil {
				inner = nh
				resync = true
				f.tel.Counter("failover.watch.resubscribes").Inc()
				break
			}
			if cerr := ctxCallError(ctx); cerr != nil {
				h.setErr(cerr)
				return
			}
			t := time.NewTimer(f.cfg.BackoffBase)
			select {
			case <-t.C:
			case <-h.cancelCh:
				t.Stop()
				return
			}
		}
	}
}
