package collector

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Watch subscriptions: the push half of the query interface. A client
// registers a query plus a change threshold; the server evaluates the
// query whenever the source's data version (epoch) moves and pushes a
// delta only when the answer changed materially. Robustness discipline:
//
//   - every subscriber gets a bounded FIFO delta queue that drops its
//     oldest entry on overflow and marks the next delivered update
//     Overflowed, so a slow consumer sees fresh state plus an explicit
//     "you missed some" signal instead of an ever-growing backlog;
//   - a stalled subscriber (TCP write blocked past the write-deadline
//     budget) is evicted — its connection closed — instead of wedging
//     the fan-out;
//   - server shutdown drains every subscription with a terminal Final
//     update before closing the connection;
//   - the failover client re-subscribes on a fresh replica after a
//     transport loss and marks the first update from the new replica
//     Resync, because epochs are per-replica and not comparable.

// Watch kinds: what a subscription evaluates each epoch.
const (
	// WatchVersion pushes one update per data-version change, with
	// TopoChanged set when the topology's discovery time moved. This is
	// the kind the Modeler's WatchGraph/WatchFlowInfo ride on.
	WatchVersion = "version"
	// WatchUtil pushes the utilization Stat of one channel when its
	// median moved by at least Threshold (bits/s) since the last push.
	WatchUtil = "util"
	// WatchLoad pushes the CPU-load Stat of one host when its median
	// moved by at least Threshold since the last push.
	WatchLoad = "load"
	// WatchFeed (feed.go) streams the source's full state to read
	// replicas: a Full snapshot payload first, epoch deltas after.
)

// WatchRequest names the query a subscription evaluates.
type WatchRequest struct {
	// Kind selects the query: WatchVersion, WatchUtil, or WatchLoad
	// ("" means WatchVersion).
	Kind string
	// Key is the channel for WatchUtil.
	Key ChannelKey
	// Node is the host for WatchLoad.
	Node string
	// Span is the trailing summary window (seconds) for util/load.
	Span float64
	// Threshold is the minimum |change in median| since the last
	// delivered update that counts as material; 0 pushes every epoch.
	Threshold float64
}

// WatchUpdate is one pushed delta.
type WatchUpdate struct {
	// Seq numbers generated updates densely per subscription (1, 2,
	// ...). A gap in delivered Seqs means queue overflow dropped the
	// missing updates — always accompanied by Overflowed on the first
	// update after the gap. Final updates carry Seq 0.
	Seq uint64
	// Epoch is the source data version the update was evaluated at.
	Epoch uint64
	// Overflowed marks the first update delivered after the bounded
	// queue dropped older ones: states were missed.
	Overflowed bool
	// Resync marks the first update after the failover client
	// re-subscribed on a different replica: epochs restart and the
	// value is a fresh baseline, not a delta from the previous one.
	Resync bool
	// Final is the terminal update: the server drained the
	// subscription (graceful shutdown) or the stream ended cleanly.
	// No further updates follow.
	Final bool
	// TopoChanged reports that the topology's discovery time moved
	// since the last update (WatchVersion kind).
	TopoChanged bool
	// Term is the source's HA lease term at evaluation time (0 when the
	// source is not part of a hot-standby pair). Feed consumers fence on
	// it: a payload with a lower term than one already applied is from a
	// deposed leader and must be rejected.
	Term uint64
	// Stat is the evaluated answer for util/load kinds.
	Stat stats.Stat
	// Feed is the replication payload for WatchFeed subscriptions
	// (nil for every other kind; costs nothing on the wire unset).
	Feed *FeedPayload
	// Summary is the federation payload for WatchRegionSummary
	// subscriptions (region.go); nil for every other kind.
	Summary *RegionSummary
	// Err carries a non-terminal evaluation error (e.g. "unknown
	// channel"); the subscription stays live and recovers when the
	// query evaluates cleanly again.
	Err string
}

// WatchHandle is a live subscription: receive on C, stop with Cancel.
type WatchHandle struct {
	// C delivers updates in order. It closes after a Final update, a
	// Cancel, or a transport failure (then Err is non-nil).
	C <-chan WatchUpdate

	out      chan WatchUpdate
	cancelCh chan struct{}
	cancelFn func() // extra teardown (sends mfCancel, unsubscribes, ...)
	once     sync.Once

	mu  sync.Mutex
	err error
}

func newWatchHandle(buf int) *WatchHandle {
	out := make(chan WatchUpdate, buf)
	return &WatchHandle{C: out, out: out, cancelCh: make(chan struct{})}
}

// Cancel stops the subscription. Idempotent; C closes shortly after.
func (h *WatchHandle) Cancel() {
	h.once.Do(func() {
		close(h.cancelCh)
		if h.cancelFn != nil {
			h.cancelFn()
		}
	})
}

// Err reports why C closed: nil after a clean Final or Cancel, the
// transport error otherwise.
func (h *WatchHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

func (h *WatchHandle) setErr(err error) {
	h.mu.Lock()
	if h.err == nil {
		h.err = err
	}
	h.mu.Unlock()
}

// WatchSource is a Source that supports watch subscriptions.
// Implemented by *Collector (in-process), *Client (TCP), and
// *FailoverSource (replicated, with transparent re-subscribe).
type WatchSource interface {
	Watch(ctx context.Context, req WatchRequest) (*WatchHandle, error)
}

// VersionNotifier is an optional refinement of VersionedSource: a
// cheap edge-triggered signal that DataVersion may have advanced, so
// watchers wake on change instead of polling. SubscribeVersion returns
// a channel that receives (coalesced) after each version bump and a
// release func. Implemented by *Collector.
type VersionNotifier interface {
	SubscribeVersion() (<-chan struct{}, func())
}

// ErrTooManySubscriptions is the typed refusal a server at its
// WatchMaxSubs cap answers new watch requests with. Like other
// overload refusals it proves the server alive; the failover client
// tries the next replica.
var ErrTooManySubscriptions = errors.New("collector: too many subscriptions")

// SubscribeRaw performs one watch handshake on an existing connection
// at the wire level — subscribe frame out, ack frame back — and then
// leaves every subsequent read to the caller. It exists for low-level
// diagnostics and misbehaving-subscriber tests (a client that
// deliberately never reads its updates); real consumers should use
// Client.Watch, which demultiplexes and bounds the stream properly.
func SubscribeRaw(conn net.Conn, req WatchRequest) error {
	if err := writeFrame(conn, &muxFrame{Stream: 1, Kind: mfRequest,
		Req: &request{Op: "watch", Watch: &req}}, 0); err != nil {
		return err
	}
	var ack muxFrame
	if err := readFrame(conn, &ack, 0); err != nil {
		return err
	}
	if ack.Kind != mfResponse || ack.Resp == nil {
		return fmt.Errorf("collector: unexpected subscribe ack (kind %d)", ack.Kind)
	}
	_, err := decodeResponse(ack.Resp)
	return err
}

// watchQueue is the bounded per-subscriber FIFO. push never blocks: at
// capacity it drops the oldest entry and remembers the overflow, which
// pop folds into the next delivered update's Overflowed mark. A Final
// push seals the queue — later pushes are discarded — so drain frames
// cannot be followed by stragglers.
type watchQueue struct {
	mu       sync.Mutex
	buf      []WatchUpdate
	head, n  int
	overflow bool
	sealed   bool
	wake     chan struct{} // cap 1, coalesced
}

func newWatchQueue(depth int) *watchQueue {
	if depth <= 0 {
		depth = DefaultWatchQueueDepth
	}
	return &watchQueue{buf: make([]WatchUpdate, depth), wake: make(chan struct{}, 1)}
}

// push enqueues u, dropping the oldest entry when full. It reports
// whether an entry was dropped.
func (q *watchQueue) push(u WatchUpdate) (dropped bool) {
	q.mu.Lock()
	if q.sealed {
		q.mu.Unlock()
		return false
	}
	if u.Final {
		q.sealed = true
	}
	if q.n == len(q.buf) {
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		q.overflow = true
		dropped = true
	}
	q.buf[(q.head+q.n)%len(q.buf)] = u
	q.n++
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return dropped
}

// pop dequeues the oldest pending update, folding a pending overflow
// into its Overflowed mark.
func (q *watchQueue) pop() (WatchUpdate, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return WatchUpdate{}, false
	}
	u := q.buf[q.head]
	q.buf[q.head] = WatchUpdate{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if q.overflow {
		u.Overflowed = true
		q.overflow = false
	}
	return u, true
}

func (q *watchQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// watchEval is one subscription's evaluation state, owned by a single
// evaluator goroutine (the server's watchLoop, or an in-process
// watcher). It decides, per epoch, whether the answer changed enough
// to push.
type watchEval struct {
	req     WatchRequest
	started bool

	lastEpoch uint64
	lastDisc  float64
	lastStat  stats.Stat
	lastErr   string
	seq       uint64
	cursor    *FeedCursor // WatchFeed replication progress
}

// eval evaluates the subscription at epoch against src. ok=false means
// nothing to push (epoch unchanged, or change below threshold).
func (e *watchEval) eval(src Source, epoch uint64) (WatchUpdate, bool) {
	if e.started && epoch == e.lastEpoch {
		return WatchUpdate{}, false
	}
	e.lastEpoch = epoch
	u := WatchUpdate{Epoch: epoch}
	var median float64
	switch e.req.Kind {
	case WatchVersion, "":
		t, err := src.Topology()
		if err != nil {
			return e.errUpdate(u, err)
		}
		u.TopoChanged = e.started && t.DiscoveredAt != e.lastDisc
		e.lastDisc = t.DiscoveredAt
		// Every epoch is material for a version watch: the epoch
		// moving IS the event.
		median = math.NaN()
	case WatchUtil:
		st, err := src.Utilization(e.req.Key, e.req.Span)
		if err != nil {
			return e.errUpdate(u, err)
		}
		u.Stat = st
		median = st.Median
	case WatchLoad:
		st, err := src.HostLoad(graph.NodeID(e.req.Node), e.req.Span)
		if err != nil {
			return e.errUpdate(u, err)
		}
		u.Stat = st
		median = st.Median
	case WatchFeed:
		fs, ok := src.(FeedSource)
		if !ok {
			return e.errUpdate(u, fmt.Errorf("collector: source does not support feed subscriptions"))
		}
		if e.cursor == nil {
			e.cursor = &FeedCursor{}
		}
		p, err := fs.FeedSince(e.cursor)
		if err != nil {
			return e.errUpdate(u, err)
		}
		if p == nil {
			return WatchUpdate{}, false // cursor already at the source's epoch
		}
		// The payload's epoch is authoritative: FeedSince reads it under
		// the source lock, after the (possibly newer) epoch this round
		// observed.
		u.Epoch = p.Epoch
		e.lastEpoch = p.Epoch
		u.Feed = p
		// A Full payload on an already-started subscription means the
		// source's state was replaced wholesale (checkpoint restore, HA
		// term change): mark the update Resync so subscribers know this
		// is a re-base, not a delta — and never see a torn delta that
		// chains across the replacement.
		if e.started && p.Full {
			u.Resync = true
		}
		median = math.NaN() // every shipped payload is material
	case WatchRegionSummary:
		rs, ok := src.(RegionSummarySource)
		if !ok {
			return e.errUpdate(u, fmt.Errorf("collector: source does not support region summaries"))
		}
		s, err := rs.RegionSummary()
		if err != nil {
			return e.errUpdate(u, err)
		}
		u.Summary = s
		median = math.NaN() // a new epoch's summary is always material
	default:
		return e.errUpdate(u, fmt.Errorf("collector: unknown watch kind %q", e.req.Kind))
	}
	if e.started && e.lastErr == "" && !math.IsNaN(median) &&
		e.req.Threshold > 0 && math.Abs(median-e.lastStat.Median) < e.req.Threshold {
		return WatchUpdate{}, false // below threshold: not material
	}
	e.started = true
	e.lastErr = ""
	e.lastStat = u.Stat
	e.seq++
	u.Seq = e.seq
	return u, true
}

// errUpdate turns an evaluation error into a non-terminal Err update,
// pushed once per distinct error so a persistently failing query does
// not flood the queue every epoch.
func (e *watchEval) errUpdate(u WatchUpdate, err error) (WatchUpdate, bool) {
	msg := err.Error()
	if e.started && msg == e.lastErr {
		return WatchUpdate{}, false
	}
	e.started = true
	e.lastErr = msg
	e.seq++
	u.Seq = e.seq
	u.Err = msg
	return u, true
}

// validKind reports whether a wire watch request names a known kind.
func validWatchKind(kind string) bool {
	switch kind {
	case WatchVersion, "", WatchUtil, WatchLoad, WatchFeed, WatchRegionSummary:
		return true
	}
	return false
}

// ---- server-side subscription registry ----

// subscription is one server-side watch: a bounded queue filled by the
// server's watchLoop and drained by a per-subscription pusher goroutine
// that writes mfUpdate frames on the subscriber's connection.
type subscription struct {
	stream uint64
	sc     *servedConn
	eval   watchEval
	q      *watchQueue
	cancel chan struct{} // closed to stop the pusher
	done   chan struct{} // closed when the pusher exits
	once   sync.Once
}

// registerWatch admits one watch request on a connection: the response
// is its subscribe ack (or typed refusal), sub is non-nil on success.
func (s *Server) registerWatch(sc *servedConn, stream uint64, req *request) (*response, *subscription) {
	if req.Watch == nil || !validWatchKind(req.Watch.Kind) {
		return &response{Err: fmt.Sprintf("collector: malformed watch request (kind %q)",
			func() string {
				if req.Watch == nil {
					return "<nil>"
				}
				return req.Watch.Kind
			}())}, nil
	}
	if req.Watch.Kind == WatchFeed {
		// Capability check at the handshake: a replica pointed at a
		// source that cannot feed it should fail its subscribe loudly,
		// not receive error updates forever.
		if _, ok := s.src.(FeedSource); !ok {
			return &response{Err: "collector: source does not support feed subscriptions"}, nil
		}
	}
	if req.Watch.Kind == WatchRegionSummary {
		// Same loud handshake failure for federation subscriptions.
		if _, ok := s.src.(RegionSummarySource); !ok {
			return &response{Err: "collector: source does not support region summaries"}, nil
		}
	}
	if s.cfg.Gate != nil {
		// HA gating: a standby refuses new subscriptions (including feed
		// subs — replicas must follow the leader) with a typed refusal
		// carrying the leader hint, so subscribers re-route.
		if err := s.cfg.Gate("watch"); err != nil {
			resp := &response{}
			appError(resp, err)
			return resp, nil
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return &response{Err: busyMsg, Code: codeBusy}, nil
	}
	s.mu.Unlock()
	sub := &subscription{
		stream: stream,
		sc:     sc,
		eval:   watchEval{req: *req.Watch},
		q:      newWatchQueue(s.cfg.WatchQueueDepth),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.watchMu.Lock()
	if s.cfg.WatchMaxSubs > 0 && len(s.watchSubs) >= s.cfg.WatchMaxSubs {
		s.watchMu.Unlock()
		s.tel.Counter("server.watch.refusals.limit").Inc()
		return &response{Err: ErrTooManySubscriptions.Error(), Code: codeWatchLimit}, nil
	}
	s.watchSubs[sub] = struct{}{}
	s.tel.Gauge("server.watch.active").Set(float64(len(s.watchSubs)))
	s.watchMu.Unlock()
	sc.addSub(sub)
	s.tel.Counter("server.watch.subscribed").Inc()
	s.wg.Add(1)
	go s.pushLoop(sub)
	return &response{}, sub
}

// dropSub removes a subscription from the registry (idempotent).
func (s *Server) dropSub(sub *subscription) {
	sub.once.Do(func() {
		s.watchMu.Lock()
		delete(s.watchSubs, sub)
		s.tel.Gauge("server.watch.active").Set(float64(len(s.watchSubs)))
		s.watchMu.Unlock()
		sub.sc.removeSub(sub)
	})
}

// cancelSub is dropSub plus stopping the pusher (client cancel, conn
// teardown).
func (s *Server) cancelSub(sub *subscription) {
	s.dropSub(sub)
	select {
	case <-sub.cancel:
	default:
		close(sub.cancel)
	}
}

// pushLoop drains one subscription's queue onto its connection. A
// write that fails — including by exceeding the WatchWriteDeadline
// budget because the subscriber stopped reading — evicts the
// subscriber: its connection is closed and the subscription dropped,
// so one wedged consumer never stalls the fan-out for anyone else.
func (s *Server) pushLoop(sub *subscription) {
	defer s.wg.Done()
	defer close(sub.done)
	for {
		select {
		case <-sub.q.wake:
		case <-sub.cancel:
			return
		case <-s.watchStop:
			return
		}
		for {
			u, ok := sub.q.pop()
			if !ok {
				break
			}
			err := sub.sc.writeFrame(&muxFrame{Stream: sub.stream, Kind: mfUpdate, Update: &u},
				s.cfg.WatchWriteDeadline)
			if err != nil {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					s.tel.Counter("server.watch.evictions.stalled").Inc()
				} else {
					s.tel.Counter("server.watch.evictions.error").Inc()
				}
				// A blocked or broken stream cannot be resynced
				// mid-frame: evict by closing the whole connection.
				sub.sc.conn.Close()
				s.dropSub(sub)
				return
			}
			s.tel.Counter("server.watch.deltas").Inc()
			if u.Final {
				s.tel.Counter("server.watch.final").Inc()
				s.dropSub(sub)
				return
			}
		}
	}
}

// watchLoop is the server's single evaluator: it wakes on source
// version notifications (VersionNotifier), or on a poll ticker when
// the source offers none, plus a kick whenever a subscription
// registers, and evaluates every live subscription at the new epoch.
// One goroutine evaluates for all subscribers; per-subscriber queues
// and pushers keep one slow consumer from stalling the rest.
func (s *Server) watchLoop() {
	defer s.wg.Done()
	var notify <-chan struct{}
	if vn, ok := s.src.(VersionNotifier); ok {
		ch, release := vn.SubscribeVersion()
		notify = ch
		defer release()
	}
	var tickC <-chan time.Time
	if notify == nil {
		t := time.NewTicker(s.cfg.WatchPollInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-s.watchStop:
			return
		case <-notify:
		case <-tickC:
		case <-s.watchKick:
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			continue // drainWatches owns the terminal updates now
		}
		s.evalWatches()
	}
}

// haTermOf reads the source's HA lease term for stamping on watch
// updates (0 when the source has no HA state).
func haTermOf(src Source) uint64 {
	if hs, ok := src.(HAStatusSource); ok {
		if term, _, on := hs.HAStatus(); on {
			return term
		}
	}
	return 0
}

// evalWatches runs one evaluation round over all live subscriptions.
func (s *Server) evalWatches() {
	s.watchMu.Lock()
	subs := make([]*subscription, 0, len(s.watchSubs))
	for sub := range s.watchSubs {
		subs = append(subs, sub)
	}
	s.watchMu.Unlock()
	if len(subs) == 0 {
		return
	}
	epoch := s.watchEpoch()
	term := haTermOf(s.src)
	peak := 0
	for _, sub := range subs {
		u, ok := sub.eval.eval(s.src, epoch)
		if !ok {
			continue
		}
		u.Term = term
		if sub.q.push(u) {
			s.tel.Counter("server.watch.drops.overflow").Inc()
		}
		if l := sub.q.len(); l > peak {
			peak = l
		}
	}
	if g := s.tel.Gauge("server.watch.queue.peak"); float64(peak) > g.Value() {
		g.Set(float64(peak))
	}
}

// watchEpoch returns the current epoch: the source's data version when
// it reports one, otherwise a synthetic counter that advances per
// evaluation round (so unversioned sources degrade to poll-rate
// epochs instead of losing the feature).
func (s *Server) watchEpoch() uint64 {
	if vs, ok := s.src.(VersionedSource); ok {
		if v, vok := vs.DataVersion(); vok {
			return v
		}
	}
	s.synthEpoch++
	return s.synthEpoch
}

// DrainWatches ends every live subscription gracefully: each gets a
// terminal Final update, the pushers are given up to timeout to flush
// it, and the drained connections are closed. The HA layer calls it on
// demotion so subscribers of a deposed leader learn the stream ended
// cleanly and re-route, instead of reading stale pushes until the
// connection rots.
func (s *Server) DrainWatches(timeout time.Duration) {
	s.drainWatches(time.Now().Add(timeout))
}

// drainWatches pushes a terminal Final update to every live
// subscription and waits (until deadline) for the pushers to flush it,
// then closes the drained connections so their read loops exit.
func (s *Server) drainWatches(deadline time.Time) {
	s.watchMu.Lock()
	subs := make([]*subscription, 0, len(s.watchSubs))
	for sub := range s.watchSubs {
		subs = append(subs, sub)
	}
	s.watchMu.Unlock()
	for _, sub := range subs {
		sub.q.push(WatchUpdate{Final: true})
	}
	for _, sub := range subs {
		select {
		case <-sub.done:
		case <-time.After(time.Until(deadline)):
		}
		sub.sc.conn.Close()
	}
}

// ---- in-process watch (Collector) ----

// SubscribeVersion implements VersionNotifier: ch receives (coalesced)
// after every data-version bump until release is called.
func (c *Collector) SubscribeVersion() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	c.versionMu.Lock()
	if c.versionSubs == nil {
		c.versionSubs = make(map[chan struct{}]struct{})
	}
	c.versionSubs[ch] = struct{}{}
	c.versionMu.Unlock()
	release := func() {
		c.versionMu.Lock()
		delete(c.versionSubs, ch)
		c.versionMu.Unlock()
	}
	return ch, release
}

// notifyVersion signals subscribed watchers after a dataVersion bump.
// Non-blocking: a watcher that has not consumed the previous signal is
// already going to re-read the latest version.
func (c *Collector) notifyVersion() {
	c.versionMu.Lock()
	for ch := range c.versionSubs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	c.versionMu.Unlock()
}

// Watch implements WatchSource in-process: same evaluation and
// bounded-queue semantics as the TCP server, minus the wire.
func (c *Collector) Watch(ctx context.Context, req WatchRequest) (*WatchHandle, error) {
	if !validWatchKind(req.Kind) {
		return nil, fmt.Errorf("collector: unknown watch kind %q", req.Kind)
	}
	return watchLocal(ctx, c, c, req, DefaultWatchQueueDepth), nil
}

// watchLocal runs a watch evaluation loop against an in-process
// source: notifier-driven when available, poll-driven otherwise.
func watchLocal(ctx context.Context, src Source, vn VersionNotifier, req WatchRequest, depth int) *WatchHandle {
	h := newWatchHandle(0)
	q := newWatchQueue(depth)
	var notify <-chan struct{}
	var release func()
	if vn != nil {
		notify, release = vn.SubscribeVersion()
	}
	var tickC <-chan time.Time
	var tick *time.Ticker
	if notify == nil {
		tick = time.NewTicker(DefaultWatchPollInterval)
		tickC = tick.C
	}
	stop := context.AfterFunc(ctx, h.Cancel)
	eval := watchEval{req: req}
	var synth uint64
	epochOf := func() uint64 {
		if vs, ok := src.(VersionedSource); ok {
			if v, vok := vs.DataVersion(); vok {
				return v
			}
		}
		synth++
		return synth
	}
	// Evaluator: pushes into the bounded queue.
	go func() {
		defer func() {
			if release != nil {
				release()
			}
			if tick != nil {
				tick.Stop()
			}
		}()
		for {
			if u, ok := eval.eval(src, epochOf()); ok {
				u.Term = haTermOf(src)
				q.push(u)
			}
			select {
			case <-h.cancelCh:
				return
			case <-notify:
			case <-tickC:
			}
		}
	}()
	// Forwarder: drains the queue onto the handle's channel.
	go func() {
		defer stop()
		defer close(h.out)
		for {
			select {
			case <-q.wake:
			case <-h.cancelCh:
				return
			}
			for {
				u, ok := q.pop()
				if !ok {
					break
				}
				select {
				case h.out <- u:
				case <-h.cancelCh:
					return
				}
				if u.Final {
					return
				}
			}
		}
	}()
	return h
}
