package collector

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// feedRig is a rig with traffic and a few completed poll rounds, so
// feed payloads have real samples to carry.
func feedRig(t *testing.T) *rig {
	t.Helper()
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 40e6)
	r.clk.Advance(10)
	return r
}

func TestFeedSinceFullThenDelta(t *testing.T) {
	r := feedRig(t)
	cur := &FeedCursor{}

	p, err := r.col.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || !p.Full {
		t.Fatalf("first payload = %+v, want full", p)
	}
	if topo, err := p.Topology(); err != nil || topo == nil {
		t.Fatalf("full payload topology = %v, %v", topo, err)
	}
	if len(p.Channels) == 0 || len(p.Capacity) == 0 {
		t.Fatalf("full payload missing data: %d channels, %d capacities",
			len(p.Channels), len(p.Capacity))
	}
	ver, _ := r.col.DataVersion()
	if p.Epoch != ver {
		t.Fatalf("epoch = %d, want DataVersion %d", p.Epoch, ver)
	}
	total := 0
	for _, s := range p.Channels {
		total += len(s)
	}
	if total == 0 {
		t.Fatal("full payload carries no samples")
	}

	// Nothing new: nil payload.
	p2, err := r.col.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != nil {
		t.Fatalf("no-change payload = %+v, want nil", p2)
	}

	// Two more poll rounds: a delta with exactly the new samples.
	r.clk.Advance(4)
	p3, err := r.col.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == nil || p3.Full {
		t.Fatalf("delta payload = %+v, want non-full", p3)
	}
	for k, s := range p3.Channels {
		if len(s) > 2 {
			t.Fatalf("channel %v delta carries %d samples, want <= 2 poll rounds", k, len(s))
		}
	}
	if p3.Epoch <= p.Epoch {
		t.Fatalf("delta epoch %d not after full epoch %d", p3.Epoch, p.Epoch)
	}
}

// TestFeedSinceDeltaExtendsCleanly replays full + deltas into plain
// windows and checks the result matches the collector's own samples —
// the property the read replica depends on.
func TestFeedSinceDeltaExtendsCleanly(t *testing.T) {
	r := feedRig(t)
	cur := &FeedCursor{}
	got := make(map[ChannelKey][]stats.Sample)
	for i := 0; i < 5; i++ {
		r.clk.Advance(2)
		p, err := r.col.FeedSince(cur)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			for k, s := range p.Channels {
				got[k] = append(got[k], s...)
			}
		}
	}
	topo, _ := r.col.Topology()
	key := keyFor(t, topo, "m-6", "timberline")
	want, err := r.col.Samples(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[key]) != len(want) {
		t.Fatalf("replayed %d samples, collector holds %d", len(got[key]), len(want))
	}
	for i := range want {
		if got[key][i] != want[i] {
			t.Fatalf("sample %d: replayed %+v, collector %+v", i, got[key][i], want[i])
		}
	}
}

// TestFeedStateGenForcesFull: restoring a checkpoint replaces the
// window state wholesale, so an existing cursor must be re-based with
// a full snapshot, not a delta against windows that no longer exist.
func TestFeedStateGenForcesFull(t *testing.T) {
	r := feedRig(t)
	cur := &FeedCursor{}
	if _, err := r.col.FeedSince(cur); err != nil {
		t.Fatal(err)
	}

	f, err := os.CreateTemp(t.TempDir(), "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.col.SaveCheckpoint(f); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.col.RestoreCheckpoint(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p, err := r.col.FeedSince(cur)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || !p.Full {
		t.Fatalf("post-restore payload = %+v, want full re-snapshot", p)
	}
}

// TestRestoreCheckpointWakesWatchers is the warm-restart regression
// test: RestoreCheckpoint must bump DataVersion and notify, so
// version watchers (and feed subscriptions) learn about the state
// replacement instead of silently holding a pre-restart epoch.
func TestRestoreCheckpointWakesWatchers(t *testing.T) {
	r := feedRig(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	hv, err := r.col.Watch(ctx, WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Cancel()
	hf, err := r.col.Watch(ctx, WatchRequest{Kind: WatchFeed})
	if err != nil {
		t.Fatal(err)
	}
	defer hf.Cancel()
	first := recvUpdate(t, hv, 2*time.Second) // initial version baseline
	ff := recvUpdate(t, hf, 2*time.Second)
	if ff.Feed == nil || !ff.Feed.Full {
		t.Fatalf("first feed update = %+v, want full payload", ff)
	}

	f, err := os.CreateTemp(t.TempDir(), "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.col.SaveCheckpoint(f); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.col.RestoreCheckpoint(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	u := recvUpdate(t, hv, 2*time.Second)
	if u.Epoch <= first.Epoch {
		t.Fatalf("post-restore version epoch = %d, want > %d", u.Epoch, first.Epoch)
	}
	fu := recvUpdate(t, hf, 2*time.Second)
	if fu.Feed == nil {
		t.Fatalf("post-restore feed update = %+v, want payload", fu)
	}
	if !fu.Feed.Full {
		t.Fatal("post-restore feed update is a delta; state was replaced wholesale, want full")
	}
}

// TestWatchFeedCapabilityRefused: a server over a Source that cannot
// produce feed payloads must refuse the subscription cleanly.
func TestWatchFeedCapabilityRefused(t *testing.T) {
	v := newVersionedFake()
	srv, err := Serve(v, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Watch(context.Background(), WatchRequest{Kind: WatchFeed})
	if err == nil {
		t.Fatal("feed subscription on a feedless source succeeded")
	}
}

// TestFailoverProbeBackoffJitter: consecutive failures must schedule
// re-probes with seeded jitter, not in lockstep — two clients with
// different seeds that watch the same replica die must diverge.
func TestFailoverProbeBackoffJitter(t *testing.T) {
	mk := func(seed int64) *FailoverSource {
		cfg := FailoverConfig{BackoffBase: time.Second, Seed: seed}
		cfg.fill()
		return &FailoverSource{
			cfg:      cfg,
			replicas: []*replica{{addr: "x"}},
			tel:      telemetry.NewRegistry(),
			stop:     make(chan struct{}),
			rng:      rand.New(rand.NewSource(cfg.Seed)),
		}
	}
	offsets := func(f *FailoverSource) []time.Duration {
		var out []time.Duration
		for i := 0; i < 6; i++ {
			before := time.Now()
			f.recordFailure(0, errors.New("boom"))
			out = append(out, f.replicas[0].nextAttempt.Sub(before))
		}
		return out
	}
	a, b := offsets(mk(1)), offsets(mk(2))
	same := true
	for i := range a {
		// The deterministic ladder is 1s,2s,4s,...; jitter must move
		// each step off the exact power of two, within ±25%.
		base := time.Second << uint(i)
		if base > 16*time.Second {
			base = 16 * time.Second
		}
		lo := time.Duration(float64(base) * (1 - DefaultFailoverJitter - 0.05))
		hi := time.Duration(float64(base) * (1 + DefaultFailoverJitter + 0.05))
		if a[i] < lo || a[i] > hi {
			t.Fatalf("seed 1 step %d backoff %v outside [%v, %v]", i, a[i], lo, hi)
		}
		if a[i]/time.Millisecond != b[i]/time.Millisecond {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced identical probe schedules; jitter is not applied")
	}
	// Same seed must reproduce exactly (determinism for tests).
	c, d := offsets(mk(7)), offsets(mk(7))
	for i := range c {
		if c[i]-d[i] > time.Millisecond || d[i]-c[i] > time.Millisecond {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, c[i], d[i])
		}
	}
}

// TestStaleReplicaOverWire: an ErrStaleReplica from a source must cross
// the wire as the typed error (code path: appError -> codeStale ->
// decodeResponse).
func TestStaleReplicaOverWire(t *testing.T) {
	v := &staleFake{}
	srv, err := Serve(v, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Topology(); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("Topology err = %v, want ErrStaleReplica", err)
	}
	if _, err := cl.Utilization(ChannelKey{Global: 1}, 0); !errors.Is(err, ErrStaleReplica) {
		t.Fatalf("Utilization err = %v, want ErrStaleReplica", err)
	}
}

// staleFake refuses everything with ErrStaleReplica, like a fenced
// replica.
type staleFake struct{ fakeSource }

func (s *staleFake) Topology() (*Topology, error) { return nil, ErrStaleReplica }
func (s *staleFake) Utilization(ChannelKey, float64) (stats.Stat, error) {
	return stats.NoData(), ErrStaleReplica
}
