package collector

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
)

// The "matrix" wire op: one round trip for a rectangular N×M batch of
// flow answers. The paper's clustering consumer needs pairwise N×N
// matrices and notes that per-pair flow queries "would have been
// needed, implying a much higher overhead" — with only scalar ops on
// the wire that overhead is N×M round trips. The matrix op moves the
// batch boundary to the server: node sets go in, an epoch- and
// term-stamped matrix of bottleneck-bandwidth medians and path
// latencies comes out, computed by the server's batched kernel
// (core.QueryMatrixCtx) against one topology snapshot.
//
// The collector package stays ignorant of the modeler: servers carry
// the computation as an injected ServerConfig.Matrix handler (or a
// Source that implements MatrixSource, which is how a proxying server
// forwards the op to its upstream). Admission control prices a matrix
// by its area — see matrixWeight — and a matrix too large for the
// server's gate is refused with a typed, non-retryable error instead
// of being clamped to a weight it doesn't pay.

// MatrixRequest names the batch: every (src, dst) pair of the cross
// product gets one matrix entry. TFKind/Span/Horizon mirror the
// modeler's Timeframe (the collector package does not interpret them
// beyond range-checking TFKind).
type MatrixRequest struct {
	Srcs, Dsts []graph.NodeID
	TFKind     int
	Span       float64
	Horizon    float64
}

// MatrixAnswer is the batch result. Bandwidth[i][j] is the bottleneck
// availability median (bits/s) from Srcs[i] to Dsts[j], Latency[i][j]
// the one-way path latency; Valid[i][j] is false where no answer
// exists (unknown node, no route, invalid stat) — partial degradation
// is per-entry, never a whole-matrix abort. Epoch identifies the
// serving modeler's topology snapshot; Term is filled client-side from
// the response's HA stamp (zero on sources without HA).
type MatrixAnswer struct {
	Bandwidth [][]float64
	Latency   [][]float64
	Valid     [][]bool
	Epoch     uint64
	Term      uint64
}

// MatrixHandler computes one matrix server-side. ctx carries the
// request's admission-adjusted deadline.
type MatrixHandler func(ctx context.Context, req *MatrixRequest) (*MatrixAnswer, error)

// MatrixSource is implemented by sources that can answer matrix
// batches natively — the TCP Client and FailoverSource (forwarding the
// op upstream), and any in-process source wired to a batched kernel.
// The modeler delegates to it when present so a matrix costs one round
// trip instead of N×M.
type MatrixSource interface {
	MatrixQuery(ctx context.Context, req *MatrixRequest) (*MatrixAnswer, error)
}

// ErrMatrixUnsupported is the typed answer of a server (or source)
// that cannot compute matrix batches. It is authoritative, not a
// lifecycle refusal: clients fall back to per-pair computation.
var ErrMatrixUnsupported = errors.New("collector: matrix op unsupported")

// ErrMatrixTooLarge is the typed refusal for a matrix whose
// admission weight exceeds what the server will ever grant (its
// inflight capacity or MaxMatrixCells). Unlike ErrLoadShed this is not
// transient — retrying the same request cannot succeed; split the
// matrix instead.
var ErrMatrixTooLarge = errors.New("collector: matrix too large")

// DefaultMaxMatrixCells caps a matrix request's area (N×M) when
// ServerConfig.MaxMatrixCells is zero.
const DefaultMaxMatrixCells = 65536

// matrixCellsPerUnit converts matrix area into admission-gate work
// units: a small matrix costs one unit like a scalar query, and the
// price grows linearly with area so one huge matrix cannot slip under
// a gate tuned for scalar ops.
const matrixCellsPerUnit = 256

// matrixWeight prices a matrix request for the admission gate.
func matrixWeight(mr *MatrixRequest) int {
	if mr == nil {
		return 1
	}
	return 1 + (len(mr.Srcs)*len(mr.Dsts))/matrixCellsPerUnit
}

// validateMatrixRequest range-checks a decoded matrix payload. It must
// hold for any payload the fuzzer can construct: empty sides, a
// timeframe kind outside the modeler's enum, and oversized dimensions
// all get typed errors, never a panic downstream.
func validateMatrixRequest(mr *MatrixRequest) error {
	if mr == nil {
		return errors.New("collector: matrix request missing payload")
	}
	if len(mr.Srcs) == 0 || len(mr.Dsts) == 0 {
		return errors.New("collector: matrix request needs srcs and dsts")
	}
	if mr.TFKind < 0 || mr.TFKind > 3 {
		return fmt.Errorf("collector: matrix request: bad timeframe kind %d", mr.TFKind)
	}
	return nil
}

// matrixAdmissible applies the server's size policy before the gate:
// structural validation, the absolute cell cap, and — when admission
// control is on — whether the gate could ever grant the weight.
func (s *Server) matrixAdmissible(mr *MatrixRequest) error {
	if err := validateMatrixRequest(mr); err != nil {
		return err
	}
	cells := len(mr.Srcs) * len(mr.Dsts)
	maxCells := s.cfg.MaxMatrixCells
	if maxCells > 0 && cells > maxCells {
		return fmt.Errorf("%w: %d cells exceeds the server cap %d", ErrMatrixTooLarge, cells, maxCells)
	}
	if s.gate != nil {
		if w := matrixWeight(mr); w > s.gate.capacity {
			return fmt.Errorf("%w: weight %d exceeds the admission capacity %d", ErrMatrixTooLarge, w, s.gate.capacity)
		}
	}
	return nil
}

// handleMatrix serves one admitted matrix request.
func (s *Server) handleMatrix(ctx context.Context, resp *response, mr *MatrixRequest) {
	h := s.cfg.Matrix
	if h == nil {
		if ms, ok := s.src.(MatrixSource); ok {
			h = ms.MatrixQuery
		}
	}
	if h == nil {
		appError(resp, ErrMatrixUnsupported)
		return
	}
	ans, err := h(ctx, mr)
	if err != nil {
		appError(resp, err)
		return
	}
	if ans == nil {
		resp.Err = "collector: matrix handler returned no answer"
		return
	}
	resp.Matrix = ans
}

// callMatrix is the shared client-side wrapper: one "matrix" round
// trip through any caller (direct Client or FailoverSource), with the
// response's HA term copied onto the answer.
func callMatrix(ctx context.Context, c caller, mr *MatrixRequest) (*MatrixAnswer, error) {
	if err := validateMatrixRequest(mr); err != nil {
		return nil, err
	}
	resp, err := c.call(ctx, &request{Op: "matrix", Matrix: mr})
	if err != nil {
		return nil, err
	}
	if resp.Matrix == nil {
		return nil, errors.New("collector: matrix response missing payload")
	}
	ans := resp.Matrix
	ans.Term = resp.Term
	if err := checkMatrixShape(mr, ans); err != nil {
		return nil, err
	}
	return ans, nil
}

// checkMatrixShape rejects a malformed answer (a lying or corrupt
// server) before callers index into it.
func checkMatrixShape(mr *MatrixRequest, ans *MatrixAnswer) error {
	n, m := len(mr.Srcs), len(mr.Dsts)
	if len(ans.Bandwidth) != n || len(ans.Latency) != n || len(ans.Valid) != n {
		return fmt.Errorf("collector: matrix answer has %d rows, want %d", len(ans.Bandwidth), n)
	}
	for i := 0; i < n; i++ {
		if len(ans.Bandwidth[i]) != m || len(ans.Latency[i]) != m || len(ans.Valid[i]) != m {
			return fmt.Errorf("collector: matrix answer row %d has %d cols, want %d", i, len(ans.Bandwidth[i]), m)
		}
	}
	return nil
}

// MatrixQuery implements MatrixSource over the TCP client.
func (c *Client) MatrixQuery(ctx context.Context, mr *MatrixRequest) (*MatrixAnswer, error) {
	return callMatrix(ctx, c, mr)
}

// MatrixQuery implements MatrixSource over the failover group: typed
// refusals (shed, stale, not-leader) route to the next replica like
// every other op; ErrMatrixTooLarge and ErrMatrixUnsupported are
// authoritative and returned as-is.
func (f *FailoverSource) MatrixQuery(ctx context.Context, mr *MatrixRequest) (*MatrixAnswer, error) {
	return callMatrix(ctx, f, mr)
}
