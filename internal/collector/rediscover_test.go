package collector

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestPeriodicRediscoveryPicksUpDegradation(t *testing.T) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := New(Config{
		Client:           snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:            clk,
		Addrs:            addrs,
		PollPeriod:       1,
		RediscoverPeriod: 10,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5)
	if col.Discoveries() != 1 {
		t.Fatalf("discoveries = %d", col.Discoveries())
	}

	// Degrade m-1--aspen to 30 Mbps; within a rediscovery period the
	// collector's topology reflects it.
	var target graph.LinkID = -1
	for _, l := range n.Graph().Links() {
		if (l.A == "m-1" && l.B == "aspen") || (l.A == "aspen" && l.B == "m-1") {
			target = l.ID
		}
	}
	n.SetLinkCapacity(target, 30e6)
	clk.Advance(12)
	if col.Discoveries() < 2 {
		t.Fatalf("discoveries = %d after rediscovery period", col.Discoveries())
	}
	topo, err := col.Topology()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range topo.Graph.Links() {
		if (l.A == "m-1" && l.B == "aspen") || (l.A == "aspen" && l.B == "m-1") {
			found = true
			if l.Capacity != 30e6 {
				t.Fatalf("rediscovered capacity = %v", l.Capacity)
			}
		}
	}
	if !found {
		t.Fatal("link vanished from topology")
	}
	// Stopping also halts rediscovery.
	col.Stop()
	before := col.Discoveries()
	clk.Advance(30)
	if col.Discoveries() != before {
		t.Fatal("rediscovery survived Stop")
	}
}

// TestAgentFlapBreakerAndAccuracyRecovery flaps the backbone routers
// through a fault injector and checks the whole reaction chain: health
// goes Down, the breaker throttles probing, rediscovery during the
// outage keeps the dead routers in the topology (as routers, with their
// links), query accuracy decays with data age, and everything — health,
// topology, accuracy — recovers once the agents answer again.
func TestAgentFlapBreakerAndAccuracyRecovery(t *testing.T) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	inj := faults.New(att.Registry, clk, 7)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := New(Config{
		Client:           snmp.NewClient(inj, snmp.DefaultCommunity),
		Clock:            clk,
		Addrs:            addrs,
		PollPeriod:       1,
		RediscoverPeriod: 10,
		StaleHalfLife:    5,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(n, "m-2", "m-4", 40e6)
	clk.Advance(10)

	topo, err := col.Topology()
	if err != nil {
		t.Fatal(err)
	}
	k := keyFor(t, topo, "aspen", "timberline")
	base, err := col.Utilization(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy < 0.5 {
		t.Fatalf("baseline = %v", base)
	}

	// Both ends of the backbone link go dark in [10, 40): nothing can
	// refresh its utilization channel.
	inj.FlapAt(snmp.Addr("aspen"), 10, 30)
	inj.FlapAt(snmp.Addr("timberline"), 10, 30)
	attemptsBefore := inj.CountersFor(snmp.Addr("aspen")).Attempts

	clk.Advance(20) // t=30: 20 s into the outage, one rediscovery behind us
	h := col.Health()
	if h["aspen"].State != Down || h["timberline"].State != Down {
		t.Fatalf("health during outage: aspen=%+v timberline=%+v", h["aspen"], h["timberline"])
	}
	if h["aspen"].Skipped == 0 {
		t.Fatal("breaker never skipped an attempt")
	}
	if h["m-1"].State != Healthy {
		t.Fatalf("healthy agent mislabeled: %+v", h["m-1"])
	}
	// Poll ticks and a rediscovery offered ~25 contact opportunities;
	// the breaker let only the backoff-scheduled few through.
	attempts := inj.CountersFor(snmp.Addr("aspen")).Attempts - attemptsBefore
	if attempts == 0 || attempts > 8 {
		t.Fatalf("breaker allowed %d attempts during outage", attempts)
	}
	// The rediscovery at t=20 must not have demoted the unreachable
	// routers: last-good records keep them in the topology.
	topo, err = col.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Graph.Node("aspen") == nil || topo.Graph.Node("aspen").Kind != graph.Network {
		t.Fatal("dead router demoted or dropped during rediscovery")
	}
	if topo.Graph.NumLinks() != 10 {
		t.Fatalf("links during outage = %d", topo.Graph.NumLinks())
	}
	// The starved channel still answers, with age-decayed accuracy.
	mid, err := col.Utilization(k, 0)
	if err != nil {
		t.Fatalf("query during outage: %v", err)
	}
	if mid.Accuracy >= base.Accuracy/2 {
		t.Fatalf("accuracy did not decay: %v vs baseline %v", mid, base)
	}
	if age, err := col.DataAge(k); err != nil || age < 15 {
		t.Fatalf("data age = %v, %v", age, err)
	}

	// Agents return at t=40; the breaker's next probe succeeds and both
	// health and accuracy recover.
	clk.Advance(30) // t=60
	h = col.Health()
	if h["aspen"].State != Healthy || h["timberline"].State != Healthy {
		t.Fatalf("health after recovery: aspen=%+v timberline=%+v", h["aspen"], h["timberline"])
	}
	rec, err := col.Utilization(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Accuracy < base.Accuracy-0.05 {
		t.Fatalf("accuracy did not recover: %v vs baseline %v", rec, base)
	}
}
