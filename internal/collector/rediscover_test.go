package collector

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/simclock"
	"repro/internal/snmp"
	"repro/internal/topology"
)

func TestPeriodicRediscoveryPicksUpDegradation(t *testing.T) {
	clk := simclock.New()
	n, err := netsim.New(clk, topology.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	att := snmp.Attach(n, snmp.DefaultCommunity)
	addrs := make(map[graph.NodeID]string)
	for id := range att.Agents {
		addrs[id] = snmp.Addr(id)
	}
	col := New(Config{
		Client:           snmp.NewClient(att.Registry, snmp.DefaultCommunity),
		Clock:            clk,
		Addrs:            addrs,
		PollPeriod:       1,
		RediscoverPeriod: 10,
	})
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5)
	if col.Discoveries() != 1 {
		t.Fatalf("discoveries = %d", col.Discoveries())
	}

	// Degrade m-1--aspen to 30 Mbps; within a rediscovery period the
	// collector's topology reflects it.
	var target graph.LinkID = -1
	for _, l := range n.Graph().Links() {
		if (l.A == "m-1" && l.B == "aspen") || (l.A == "aspen" && l.B == "m-1") {
			target = l.ID
		}
	}
	n.SetLinkCapacity(target, 30e6)
	clk.Advance(12)
	if col.Discoveries() < 2 {
		t.Fatalf("discoveries = %d after rediscovery period", col.Discoveries())
	}
	topo, err := col.Topology()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range topo.Graph.Links() {
		if (l.A == "m-1" && l.B == "aspen") || (l.A == "aspen" && l.B == "m-1") {
			found = true
			if l.Capacity != 30e6 {
				t.Fatalf("rediscovered capacity = %v", l.Capacity)
			}
		}
	}
	if !found {
		t.Fatal("link vanished from topology")
	}
	// Stopping also halts rediscovery.
	col.Stop()
	before := col.Discoveries()
	clk.Advance(30)
	if col.Discoveries() != before {
		t.Fatal("rediscovery survived Stop")
	}
}
