package collector

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/snmp"
	"repro/internal/topofile"
	"repro/internal/traffic"
)

// renderMerged flattens a merged topology to a canonical string: the
// topofile form of the graph plus the sorted (node-pair, global-id)
// link table. Any ordering wobble in Merged shows up as a byte diff.
func renderMerged(t *testing.T, m *Merged) string {
	t.Helper()
	topo, err := m.Topology()
	if err != nil {
		t.Fatal(err)
	}
	out := topofile.Format(topo.Graph)
	for _, l := range topo.Graph.Links() {
		out += fmt.Sprintf("gid %s %s %d\n", l.A, l.B, topo.GlobalID[l.ID])
	}
	return out
}

// TestMergedDeterministicOutput pins the property federation golden and
// convergence tests lean on: Merged emits nodes and links in a sorted,
// stable order, so repeated reads — and independently-constructed
// merges over the same members — are byte-identical.
func TestMergedDeterministicOutput(t *testing.T) {
	r := newRig(t, 2)
	mk := func(ids ...graph.NodeID) *Collector {
		addrs := make(map[graph.NodeID]string)
		for _, id := range ids {
			addrs[id] = snmp.Addr(id)
		}
		c := New(Config{
			Client:     snmp.NewClient(r.att.Registry, snmp.DefaultCommunity),
			Clock:      r.clk,
			Addrs:      addrs,
			PollPeriod: 2,
		})
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	west := mk("aspen", "timberline", "m-1", "m-2", "m-3", "m-4", "m-5", "m-6")
	east := mk("whiteface", "m-7", "m-8")
	traffic.Blast(r.net, "m-6", "m-8", 40e6)
	r.clk.RunUntil(20)

	m1 := Merge(west, east)
	first := renderMerged(t, m1)
	for i := 0; i < 5; i++ {
		if got := renderMerged(t, m1); got != first {
			t.Fatalf("read %d differs from first:\n%s\n----\n%s", i, got, first)
		}
	}
	// A second merge over the same members must render identically too.
	if got := renderMerged(t, Merge(west, east)); got != first {
		t.Fatalf("fresh merge differs:\n%s\n----\n%s", got, first)
	}
}
