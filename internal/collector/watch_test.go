package collector

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// versionedFake is a fakeSource with a data version and change
// notifications, standing in for a live collector in watch tests.
type versionedFake struct {
	fakeSource

	ver  atomic.Uint64
	disc atomic.Uint64 // DiscoveredAt, as an integer for atomic bumps
	util atomic.Uint64 // Utilization median, bits/s

	mu   sync.Mutex
	subs map[chan struct{}]struct{}
}

func newVersionedFake() *versionedFake {
	v := &versionedFake{subs: make(map[chan struct{}]struct{})}
	v.ver.Store(1)
	return v
}

func (v *versionedFake) DataVersion() (uint64, bool) { return v.ver.Load(), true }

func (v *versionedFake) SubscribeVersion() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	v.mu.Lock()
	v.subs[ch] = struct{}{}
	v.mu.Unlock()
	return ch, func() {
		v.mu.Lock()
		delete(v.subs, ch)
		v.mu.Unlock()
	}
}

func (v *versionedFake) bump() {
	v.ver.Add(1)
	v.mu.Lock()
	for ch := range v.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	v.mu.Unlock()
}

func (v *versionedFake) Topology() (*Topology, error) {
	t := fakeTopo()
	t.DiscoveredAt = float64(v.disc.Load())
	return t, nil
}

func (v *versionedFake) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	return stats.Exact(float64(v.util.Load())), nil
}

func recvUpdate(t *testing.T, h *WatchHandle, within time.Duration) WatchUpdate {
	t.Helper()
	select {
	case u, ok := <-h.C:
		if !ok {
			t.Fatalf("watch channel closed early (err %v)", h.Err())
		}
		return u
	case <-time.After(within):
		t.Fatal("no watch update within deadline")
	}
	panic("unreachable")
}

// TestWatchQueueOverflow: the bounded queue drops its oldest entry at
// capacity and folds the loss into the next pop's Overflowed mark; a
// Final push seals it against stragglers.
func TestWatchQueueOverflow(t *testing.T) {
	q := newWatchQueue(3)
	for i := uint64(1); i <= 5; i++ {
		q.push(WatchUpdate{Seq: i})
	}
	u, ok := q.pop()
	if !ok || u.Seq != 3 || !u.Overflowed {
		t.Fatalf("first pop after overflow = %+v, %v; want Seq 3 with Overflowed", u, ok)
	}
	u, _ = q.pop()
	if u.Seq != 4 || u.Overflowed {
		t.Fatalf("second pop = %+v; want Seq 4 without Overflowed", u)
	}
	q.push(WatchUpdate{Final: true})
	q.push(WatchUpdate{Seq: 99}) // after Final: discarded
	if u, _ = q.pop(); u.Seq != 5 {
		t.Fatalf("pop = %+v, want Seq 5", u)
	}
	u, ok = q.pop()
	if !ok || !u.Final {
		t.Fatalf("pop after seal = %+v, %v; want Final", u, ok)
	}
	if u, ok = q.pop(); ok {
		t.Fatalf("queue yielded %+v after Final", u)
	}
}

// TestWatchThresholdGating: a util watch pushes only when the median
// moved by at least Threshold since the last delivered update.
func TestWatchThresholdGating(t *testing.T) {
	src := newVersionedFake()
	src.util.Store(1000)
	e := watchEval{req: WatchRequest{Kind: WatchUtil, Key: ChannelKey{Global: 1}, Threshold: 100}}

	u, ok := e.eval(src, 1)
	if !ok || u.Stat.Median != 1000 {
		t.Fatalf("first eval = %+v, %v; want initial baseline push", u, ok)
	}
	src.util.Store(1050) // +50 < threshold
	if u, ok = e.eval(src, 2); ok {
		t.Fatalf("sub-threshold change pushed %+v", u)
	}
	src.util.Store(1120) // +120 vs last DELIVERED (1000) >= threshold
	u, ok = e.eval(src, 3)
	if !ok || u.Stat.Median != 1120 || u.Seq != 2 {
		t.Fatalf("material change eval = %+v, %v; want Seq 2 at 1120", u, ok)
	}
	// Same epoch: never re-pushed.
	if u, ok = e.eval(src, 3); ok {
		t.Fatalf("unchanged epoch pushed %+v", u)
	}
}

// TestWatchOverWire: a TCP subscriber sees one update per version bump
// with dense Seqs, and TopoChanged exactly when the discovery time
// moved.
func TestWatchOverWire(t *testing.T) {
	src := newVersionedFake()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	h, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Cancel()

	u := recvUpdate(t, h, 5*time.Second)
	if u.Seq != 1 || u.TopoChanged {
		t.Fatalf("baseline update = %+v; want Seq 1 without TopoChanged", u)
	}
	src.bump()
	u = recvUpdate(t, h, 5*time.Second)
	if u.Seq != 2 || u.TopoChanged {
		t.Fatalf("version-only update = %+v; want Seq 2 without TopoChanged", u)
	}
	src.disc.Store(7) // topology rediscovered
	src.bump()
	u = recvUpdate(t, h, 5*time.Second)
	if u.Seq != 3 || !u.TopoChanged {
		t.Fatalf("rediscovery update = %+v; want Seq 3 with TopoChanged", u)
	}
}

// TestWatchSlowConsumerOverflow: a consumer that stops reading while
// epochs churn loses intermediate updates — bounded queues guarantee
// that — and the first update it does read says so via Overflowed and
// a Seq gap.
func TestWatchSlowConsumerOverflow(t *testing.T) {
	src := newVersionedFake()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tel := telemetry.NewRegistry()
	cli, err := DialConfig(srv.Addr(), ClientConfig{
		CallTimeout: 5 * time.Second, WatchQueueDepth: 4, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	h, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Cancel()

	u := recvUpdate(t, h, 5*time.Second)
	if u.Seq != 1 {
		t.Fatalf("baseline Seq = %d, want 1", u.Seq)
	}
	// Churn epochs without reading until the client-side queue provably
	// dropped something.
	drops := tel.Counter("client.watch.drops.overflow")
	deadline := time.Now().Add(10 * time.Second)
	for drops.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client queue never overflowed")
		}
		src.bump()
		time.Sleep(time.Millisecond)
	}
	// One update may already be parked in the forwarder from before the
	// overflow; the marked one is right behind it.
	last := u.Seq
	for i := 0; ; i++ {
		u = recvUpdate(t, h, 5*time.Second)
		if u.Overflowed {
			break
		}
		if i >= 2 {
			t.Fatalf("no Overflowed mark within %d updates of a recorded drop", i+1)
		}
	}
	if u.Seq <= last+1 {
		t.Fatalf("Seq %d after overflow (prev %d); want a gap past the dropped updates", u.Seq, last)
	}
}

// TestWatchStalledSubscriberEvicted is the headline robustness
// scenario: one subscriber wedges completely (never reads its socket)
// while epochs churn. The server must evict it within the
// write-deadline budget once its socket jams, count the eviction as a
// stall, and meanwhile keep a healthy subscriber on another connection
// and ordinary pipelined queries completely unaffected.
func TestWatchStalledSubscriberEvicted(t *testing.T) {
	src := newVersionedFake()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{
		WatchWriteDeadline: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Healthy subscriber on its own connection.
	cli, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	h, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Cancel()
	recvUpdate(t, h, 5*time.Second)

	// Stalled subscriber: a raw connection that subscribes and then
	// never reads again. A small receive buffer jams its stream fast.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if tc, ok := raw.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	raw.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeFrame(raw, &muxFrame{Stream: 1, Kind: mfRequest,
		Req: &request{Op: "watch", Watch: &WatchRequest{Kind: WatchVersion}}}, 0); err != nil {
		t.Fatal(err)
	}
	var ack muxFrame
	if err := readFrame(raw, &ack, 0); err != nil {
		t.Fatal(err)
	}
	if ack.Kind != mfResponse || ack.Resp == nil || ack.Resp.Err != "" {
		t.Fatalf("subscribe ack = %+v", ack)
	}
	// From here on the raw conn reads nothing: its updates pile into
	// the socket buffers until the server's write blocks.

	evicted := srv.Telemetry().Counter("server.watch.evictions.stalled")
	stop := make(chan struct{})
	var bumps atomic.Uint64
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src.bump()
			bumps.Add(1)
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	defer close(stop)

	deadline := time.Now().Add(15 * time.Second)
	for evicted.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled subscriber never evicted (%d bumps)", bumps.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The healthy subscriber is still being served...
	drained := false
	for !drained { // skip the backlog accumulated during the churn
		select {
		case <-h.C:
		default:
			drained = true
		}
	}
	src.bump()
	recvUpdate(t, h, 5*time.Second)
	// ... and so are ordinary queries.
	if _, err := cli.Topology(); err != nil {
		t.Fatalf("ordinary query failed during watch churn: %v", err)
	}
	// The evicted subscriber's connection was closed server-side.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := raw.Read(buf); err != nil {
			break // EOF or reset: evicted
		}
	}
}

// TestWatchPipelining: with multiplexed framing, a fast query on the
// same connection overtakes a slow one instead of queueing behind it.
func TestWatchPipelining(t *testing.T) {
	src, release, entered := blockingSource()
	srv, err := Serve(src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer release() // before Close: a blocked handler would deadlock wg.Wait
	cli, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	utilDone := make(chan error, 1)
	go func() {
		_, err := cli.Utilization(ChannelKey{Global: 1}, 5)
		utilDone <- err
	}()
	<-entered // the slow call is now blocked inside the handler

	start := time.Now()
	if _, err := cli.Topology(); err != nil {
		t.Fatalf("pipelined topo failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("topo waited %v behind a slow call on the same conn", elapsed)
	}
	select {
	case err := <-utilDone:
		t.Fatalf("slow call finished early (err %v) — not actually pipelined", err)
	default:
	}
	release()
	if err := <-utilDone; err != nil {
		t.Fatalf("slow call failed after release: %v", err)
	}
}

// TestWatchServerDrainFinal: graceful shutdown delivers a terminal
// Final update; the handle's channel closes cleanly with a nil Err.
func TestWatchServerDrainFinal(t *testing.T) {
	src := newVersionedFake()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	h, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	recvUpdate(t, h, 5*time.Second)

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()

	sawFinal := false
	for u := range h.C {
		if u.Final {
			sawFinal = true
		}
	}
	if !sawFinal {
		t.Fatal("watch channel closed without a Final update")
	}
	if err := h.Err(); err != nil {
		t.Fatalf("clean drain surfaced err %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestWatchCancelStopsServer: cancelling a watch tells the server,
// which forgets the subscription (active gauge back to zero) while the
// connection keeps serving ordinary queries.
func TestWatchCancelStopsServer(t *testing.T) {
	src := newVersionedFake()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	h, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	recvUpdate(t, h, 5*time.Second)
	h.Cancel()
	for range h.C {
	}

	active := srv.Telemetry().Gauge("server.watch.active")
	deadline := time.Now().Add(5 * time.Second)
	for active.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still tracks %v subscriptions after cancel", active.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := cli.Topology(); err != nil {
		t.Fatalf("connection unusable after watch cancel: %v", err)
	}
}

// TestWatchMaxSubsRefusal: the WatchMaxSubs cap refuses extra
// subscriptions with the typed error, and a freed slot is reusable.
func TestWatchMaxSubsRefusal(t *testing.T) {
	src := newVersionedFake()
	srv, err := ServeConfig(src, "127.0.0.1:0", ServerConfig{WatchMaxSubs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialConfig(srv.Addr(), ClientConfig{CallTimeout: 5 * time.Second, SingleAttempt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	h1, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion}); !errors.Is(err, ErrTooManySubscriptions) {
		t.Fatalf("over-cap subscribe err = %v, want ErrTooManySubscriptions", err)
	}
	h1.Cancel()
	for range h1.C {
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h2, err := cli.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
		if err == nil {
			h2.Cancel()
			break
		}
		if !errors.Is(err, ErrTooManySubscriptions) || time.Now().After(deadline) {
			t.Fatalf("freed watch slot not reusable: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFailoverWatchResubscribe: when the serving replica dies, the
// failover watch re-subscribes on the next one and marks the first
// update from the new stream Resync.
func TestFailoverWatchResubscribe(t *testing.T) {
	srcA, srcB := newVersionedFake(), newVersionedFake()
	srvA, err := ServeConfig(srcA, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := ServeConfig(srcB, "127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	f, err := DialFailover([]string{srvA.Addr(), srvB.Addr()}, FailoverConfig{
		Client:        ClientConfig{CallTimeout: 5 * time.Second, RetryBackoff: 10 * time.Millisecond},
		ProbeInterval: -1, BackoffBase: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	h, err := f.Watch(context.Background(), WatchRequest{Kind: WatchVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Cancel()
	if u := recvUpdate(t, h, 5*time.Second); u.Resync {
		t.Fatalf("first update marked Resync: %+v", u)
	}

	srvA.Close() // abrupt: no drain, the stream just dies

	// The proxy re-subscribes on B; its first update is the baseline
	// eval at subscribe time, marked Resync.
	u := recvUpdate(t, h, 10*time.Second)
	if !u.Resync {
		t.Fatalf("first post-failover update = %+v; want Resync", u)
	}
	// And the stream keeps flowing from B.
	srcB.bump()
	u = recvUpdate(t, h, 5*time.Second)
	if u.Resync {
		t.Fatalf("steady-state update still marked Resync: %+v", u)
	}
	if got := f.Telemetry().Counter("failover.watch.resubscribes").Value(); got != 1 {
		t.Fatalf("resubscribes = %d, want 1", got)
	}
}

// TestCollectorLocalWatch: the in-process Watch on a bare source-side
// evaluation loop (no wire) delivers the same semantics.
func TestCollectorLocalWatch(t *testing.T) {
	src := newVersionedFake()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h := watchLocal(ctx, src, src, WatchRequest{Kind: WatchVersion}, 8)
	defer h.Cancel()

	if u := recvUpdate(t, h, 5*time.Second); u.Seq != 1 {
		t.Fatalf("baseline = %+v; want Seq 1", u)
	}
	src.bump()
	if u := recvUpdate(t, h, 5*time.Second); u.Seq != 2 {
		t.Fatalf("second update = %+v; want Seq 2", u)
	}
	cancel()
	for range h.C {
	}
	if err := h.Err(); err != nil {
		t.Fatalf("cancel surfaced err %v", err)
	}
}
