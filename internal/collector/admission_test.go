package collector

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGateImmediateAdmit: a gate with free capacity admits without
// queueing, and weights add up.
func TestGateImmediateAdmit(t *testing.T) {
	g := newWorkGate(4, 8)
	if err := g.acquire(1, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(3, time.Time{}); err != nil {
		t.Fatal(err)
	}
	st := g.stats()
	if st.InUse != 4 || st.Admitted != 2 {
		t.Fatalf("stats after two admits: %+v", st)
	}
	g.release(3)
	g.release(1)
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in-use after releases: %+v", st)
	}
}

// TestGateShedWhenQueueFull: arrivals beyond the queue depth are shed
// with a retry-after hint that grows with queue pressure.
func TestGateShedWhenQueueFull(t *testing.T) {
	g := newWorkGate(1, 1)
	if err := g.acquire(1, time.Time{}); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(1, time.Now().Add(5*time.Second)) }()
	waitForQueued(t, g, 1)

	// The next arrival is shed immediately.
	err := g.acquire(1, time.Now().Add(5*time.Second))
	if !errors.Is(err, ErrLoadShed) {
		t.Fatalf("queue-full acquire: got %v, want ErrLoadShed", err)
	}
	ra, ok := RetryAfterHint(err)
	if !ok || ra <= 0 {
		t.Fatalf("shed error carries no positive retry-after: %v (ra=%v)", err, ra)
	}

	g.release(1) // hands the slot to the queued waiter
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter should have been granted: %v", err)
	}
	if st := g.stats(); st.Shed != 1 || st.Admitted != 2 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestGateDeadlineInQueue: a waiter whose budget expires while queued
// gets ErrDeadlineExceeded, not a late grant.
func TestGateDeadlineInQueue(t *testing.T) {
	g := newWorkGate(1, 4)
	if err := g.acquire(1, time.Time{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.acquire(1, time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired waiter: got %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("expired waiter took %v to give up", elapsed)
	}
	if st := g.stats(); st.TimedOut != 1 || st.Queued != 0 {
		t.Fatalf("counters after queue timeout: %+v", st)
	}
	// The slot is still owned by the first acquire; release and verify
	// accounting balances.
	g.release(1)
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in-use after release: %+v", st)
	}
}

// TestGateFIFOOrder: freed capacity goes to waiters strictly in arrival
// order — a later light request must not overtake the head waiter.
func TestGateFIFOOrder(t *testing.T) {
	g := newWorkGate(2, 8)
	if err := g.acquire(2, time.Time{}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	enqueue := func(i, w int) chan struct{} {
		done := make(chan struct{})
		go func() {
			if err := g.acquire(w, time.Now().Add(10*time.Second)); err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			close(done)
		}()
		return done
	}
	d1 := enqueue(1, 2) // heavy head waiter
	waitForQueued(t, g, 1)
	d2 := enqueue(2, 1) // light later waiter
	waitForQueued(t, g, 2)

	g.release(2) // frees 2 units: head (weight 2) must win them
	<-d1
	g.release(2)
	<-d2
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("grant order %v, want [1 2]", order)
	}
}

// TestGateWeightClamp: an op heavier than the whole gate still fits (it
// just takes the entire gate), so small -max-inflight settings cannot
// make topology queries permanently inadmissible.
func TestGateWeightClamp(t *testing.T) {
	g := newWorkGate(2, 4)
	if err := g.acquire(10, time.Time{}); err != nil {
		t.Fatalf("over-weight acquire on idle gate: %v", err)
	}
	if st := g.stats(); st.InUse != 2 {
		t.Fatalf("clamped in-use: %+v", st)
	}
	g.release(10)
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("release did not balance clamp: %+v", st)
	}
}

// TestOpWeights pins the pricing: ping free, topo heaviest.
func TestOpWeights(t *testing.T) {
	if w := opWeight("ping"); w != 0 {
		t.Fatalf("ping weight %d, want 0 (liveness probes must pass an overloaded gate)", w)
	}
	if !(opWeight("topo") > opWeight("samples") && opWeight("samples") > opWeight("util")) {
		t.Fatalf("weights not ordered: topo=%d samples=%d util=%d",
			opWeight("topo"), opWeight("samples"), opWeight("util"))
	}
}

func waitForQueued(t *testing.T, g *workGate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d queued waiters: %+v", n, g.stats())
		}
		time.Sleep(time.Millisecond)
	}
}
