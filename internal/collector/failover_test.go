package collector

import (
	"testing"
	"time"

	"repro/internal/traffic"
)

// failoverCfg is tuned for fast tests: quick call deadlines, an eager
// background prober.
func failoverCfg() FailoverConfig {
	return FailoverConfig{
		Client:        ClientConfig{CallTimeout: 2 * time.Second},
		ProbeInterval: 25 * time.Millisecond,
		BackoffBase:   25 * time.Millisecond,
		BackoffMax:    100 * time.Millisecond,
	}
}

// servedRig starts a collector rig and serves it on n replica
// endpoints.
func servedRig(t *testing.T, n int) (*rig, []*Server) {
	t.Helper()
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	traffic.Blast(r.net, "m-6", "m-8", 40e6)
	r.clk.RunUntil(30)
	var srvs []*Server
	for i := 0; i < n; i++ {
		srv, err := Serve(r.col, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srvs = append(srvs, srv)
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			s.Close()
		}
	})
	return r, srvs
}

func TestFailoverMidStream(t *testing.T) {
	r, srvs := servedRig(t, 2)
	addrs := []string{srvs[0].Addr(), srvs[1].Addr()}
	f, err := DialFailover(addrs, failoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	topo, _ := r.col.Topology()
	k := keyFor(t, topo, "timberline", "whiteface")

	// A stream of queries with the primary killed in the middle: every
	// query must be answered, the failover invisible to the caller.
	for i := 0; i < 10; i++ {
		if i == 5 {
			srvs[0].Close()
		}
		if _, err := f.Utilization(k, 10); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if _, err := f.Topology(); err != nil {
			t.Fatalf("query %d (topo): %v", i, err)
		}
	}
	reps := f.Replicas()
	if reps[0].State == Healthy {
		t.Fatalf("dead primary still marked healthy: %+v", reps[0])
	}
	if reps[1].State != Healthy || reps[1].Calls == 0 {
		t.Fatalf("secondary did not take over: %+v", reps[1])
	}
}

func TestFailoverReprobesRestartedPrimary(t *testing.T) {
	r, srvs := servedRig(t, 2)
	primaryAddr := srvs[0].Addr()
	f, err := DialFailover([]string{primaryAddr, srvs[1].Addr()}, failoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	topo, _ := r.col.Topology()
	k := keyFor(t, topo, "timberline", "whiteface")

	srvs[0].Close()
	// Drive the primary to Down.
	for i := 0; i < 4; i++ {
		if _, err := f.Utilization(k, 10); err != nil {
			t.Fatalf("query %d during outage: %v", i, err)
		}
	}
	if reps := f.Replicas(); reps[0].State != Down {
		t.Fatalf("primary not Down after repeated failures: %+v", reps[0])
	}

	// Restart the primary on its old address; the background prober
	// must notice and restore it to the preference order.
	srv, err := Serve(r.col, primaryAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", primaryAddr, err)
	}
	defer srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if reps := f.Replicas(); reps[0].State == Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted primary never re-probed: %+v", f.Replicas()[0])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And it is preferred again: the next call lands on it.
	before := f.Replicas()[0].Calls
	if _, err := f.Utilization(k, 10); err != nil {
		t.Fatal(err)
	}
	if after := f.Replicas()[0].Calls; after <= before {
		t.Fatalf("recovered primary not reused: calls %d -> %d", before, after)
	}
}

func TestFailoverAllReplicasDown(t *testing.T) {
	r, srvs := servedRig(t, 2)
	f, err := DialFailover([]string{srvs[0].Addr(), srvs[1].Addr()}, failoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srvs[0].Close()
	srvs[1].Close()

	topo, _ := r.col.Topology()
	k := keyFor(t, topo, "timberline", "whiteface")
	start := time.Now()
	if _, err := f.Utilization(k, 10); err == nil {
		t.Fatal("query succeeded with every replica down")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("all-down failure took %v", elapsed)
	}
}

// TestFailoverAppErrorIsAuthoritative: an application-level error from
// a healthy replica (unknown channel) must be returned, not retried on
// the next replica as if the replica were broken.
func TestFailoverAppErrorIsAuthoritative(t *testing.T) {
	_, srvs := servedRig(t, 2)
	f, err := DialFailover([]string{srvs[0].Addr(), srvs[1].Addr()}, failoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if _, err := f.Utilization(ChannelKey{Global: 999}, 5); err == nil {
		t.Fatal("bogus channel succeeded")
	}
	reps := f.Replicas()
	if reps[0].State != Healthy || reps[0].Failures != 0 {
		t.Fatalf("app-level error counted against the replica: %+v", reps[0])
	}
	if reps[1].Calls != 0 {
		t.Fatalf("app-level error caused failover: %+v", reps[1])
	}
}

// TestFailoverBusyReplicaSkipped: a replica at its connection cap
// answers busy; the failover layer must move to the next replica.
func TestFailoverBusyReplicaSkipped(t *testing.T) {
	r := newRig(t, 2)
	if err := r.col.Start(); err != nil {
		t.Fatal(err)
	}
	r.clk.RunUntil(10)

	capped, err := ServeConfig(r.col, "127.0.0.1:0", ServerConfig{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer capped.Close()
	spare, err := Serve(r.col, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer spare.Close()

	// Occupy the capped replica's only slot.
	occupier, err := Dial(capped.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer occupier.Close()
	if _, err := occupier.Topology(); err != nil {
		t.Fatal(err)
	}

	f, err := DialFailover([]string{capped.Addr(), spare.Addr()}, failoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Topology(); err != nil {
		t.Fatalf("busy primary not failed over: %v", err)
	}
	if reps := f.Replicas(); reps[1].Calls == 0 {
		t.Fatalf("secondary unused despite busy primary: %+v", reps)
	}
}

func TestDialFailoverNeedsOneReplica(t *testing.T) {
	if _, err := DialFailover(nil, FailoverConfig{}); err == nil {
		t.Fatal("empty address list accepted")
	}
	// Unreachable-only replica set fails at dial time.
	if f, err := DialFailover([]string{"127.0.0.1:1"}, failoverCfg()); err == nil {
		f.Close()
		t.Fatal("dial succeeded with no reachable replica")
	}
	// One live replica is enough even when another is unreachable.
	_, srvs := servedRig(t, 1)
	f, err := DialFailover([]string{"127.0.0.1:1", srvs[0].Addr()}, failoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Topology(); err != nil {
		t.Fatal(err)
	}
	reps := f.Replicas()
	if reps[0].State != Down {
		t.Fatalf("unreachable replica not marked down at dial: %+v", reps[0])
	}
}

// TestFailoverShuffleDeterministic: with Shuffle set, the initial
// routing order is a seeded permutation of the address list — the same
// seed always routes the first call to the same endpoint, Replicas()
// stays in caller order, and some seed routes away from index 0 (the
// anti-stampede point of the shuffle).
func TestFailoverShuffleDeterministic(t *testing.T) {
	_, srvs := servedRig(t, 4)
	addrs := make([]string, len(srvs))
	for i, s := range srvs {
		addrs[i] = s.Addr()
	}
	firstServed := func(seed int64) int {
		cfg := failoverCfg()
		cfg.Shuffle = true
		cfg.Seed = seed
		f, err := DialFailover(addrs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Topology(); err != nil {
			t.Fatal(err)
		}
		reps := f.Replicas()
		for i, r := range reps {
			if r.Addr != addrs[i] {
				t.Fatalf("Replicas()[%d] = %s, want caller order %s", i, r.Addr, addrs[i])
			}
			if r.Calls > 0 {
				return i
			}
		}
		t.Fatal("no replica recorded the call")
		return -1
	}
	shuffledOff := false
	for seed := int64(1); seed <= 8; seed++ {
		a, b := firstServed(seed), firstServed(seed)
		if a != b {
			t.Fatalf("seed %d routed to %d then %d: shuffle not deterministic", seed, a, b)
		}
		if a != 0 {
			shuffledOff = true
		}
	}
	if !shuffledOff {
		t.Fatal("no seed in 1..8 moved routing off index 0: shuffle inert")
	}
}

// TestFailoverNotLeaderHint: a standby's typed ErrNotLeader refusal
// carries the leader's address, and the failover client jumps straight
// to it — the other standby in between is never tried.
func TestFailoverNotLeaderHint(t *testing.T) {
	r, srvs := servedRig(t, 1)
	leaderAddr := srvs[0].Addr()
	standby := func() *Server {
		srv, err := ServeConfig(r.col, "127.0.0.1:0", ServerConfig{
			Gate: func(op string) error { return &NotLeaderError{Leader: leaderAddr} },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	s1, s2 := standby(), standby()

	// Standbys first, leader last, no shuffle: the first attempt hits a
	// standby and must be redirected by the hint, not by scanning.
	f, err := DialFailover([]string{s1.Addr(), s2.Addr(), leaderAddr}, failoverCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Topology(); err != nil {
		t.Fatalf("query through standby: %v", err)
	}
	reps := f.Replicas()
	if reps[2].Calls != 1 {
		t.Fatalf("leader answered %d calls, want 1: %+v", reps[2].Calls, reps)
	}
	snap := f.Telemetry().Snapshot()
	if got := snap.Counters["failover.refusals.not_leader"]; got != 1 {
		t.Fatalf("failover.refusals.not_leader = %d, want 1 (hint must skip the second standby)", got)
	}
	// The refused standby is not marked down: it answered, typed.
	if reps[0].State == Down {
		t.Fatalf("refusing standby marked down: %+v", reps[0])
	}
}
