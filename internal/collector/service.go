package collector

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stats"
)

// The TCP/gob query service: how an application's Modeler reaches a
// Collector running as a separate process (the deployment in the paper's
// Figure 2). Virtual-time experiments use the Collector in-process; this
// service exists for daemon mode and is covered by real-socket
// integration tests.

type wireNode struct {
	ID           string
	Kind         int
	InternalBW   float64
	ComputePower float64
	MemoryBytes  float64
}

type wireLink struct {
	A, B     string
	Capacity float64
	Latency  float64
	Global   int
}

type wireTopo struct {
	Nodes        []wireNode
	Links        []wireLink
	DiscoveredAt float64
}

func topoToWire(t *Topology) *wireTopo {
	w := &wireTopo{DiscoveredAt: t.DiscoveredAt}
	for _, id := range t.Graph.Nodes() {
		n := t.Graph.Node(id)
		w.Nodes = append(w.Nodes, wireNode{
			ID: string(n.ID), Kind: int(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	for _, l := range t.Graph.Links() {
		w.Links = append(w.Links, wireLink{
			A: string(l.A), B: string(l.B),
			Capacity: l.Capacity, Latency: l.Latency,
			Global: t.GlobalID[l.ID],
		})
	}
	return w
}

func topoFromWire(w *wireTopo) *Topology {
	g := graph.New()
	for _, n := range w.Nodes {
		g.AddNode(graph.Node{
			ID: graph.NodeID(n.ID), Kind: graph.NodeKind(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	t := &Topology{Graph: g, GlobalID: make(map[graph.LinkID]int), DiscoveredAt: w.DiscoveredAt}
	for _, l := range w.Links {
		gl := g.AddLink(graph.NodeID(l.A), graph.NodeID(l.B), l.Capacity, l.Latency)
		t.GlobalID[gl.ID] = l.Global
	}
	return t
}

type request struct {
	Op   string // "topo", "util", "samples", "load", "age", "health"
	Key  ChannelKey
	Span float64
	Node string
}

type response struct {
	Err     string
	Stat    stats.Stat
	Samples []stats.Sample
	Topo    *wireTopo
	Age     float64
	Health  map[string]AgentHealth
}

// Server exposes a Source over TCP.
type Server struct {
	src Source
	ln  net.Listener
	wg  sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// Serve starts a query server on addr (e.g. "127.0.0.1:0").
func Serve(src Source, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	s := &Server{src: src, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, closes active connections, and waits for all
// serving goroutines.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case "topo":
			t, err := s.src.Topology()
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Topo = topoToWire(t)
			}
		case "util":
			st, err := s.src.Utilization(req.Key, req.Span)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Stat = st
		case "samples":
			sm, err := s.src.Samples(req.Key)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Samples = sm
		case "load":
			st, err := s.src.HostLoad(graph.NodeID(req.Node), req.Span)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Stat = st
		case "age":
			age, err := s.src.DataAge(req.Key)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Age = age
		case "health":
			if hs, ok := s.src.(HealthSource); ok {
				h := hs.Health()
				resp.Health = make(map[string]AgentHealth, len(h))
				for id, ah := range h {
					resp.Health[string(id)] = ah
				}
			} else {
				resp.Err = "collector: source does not track health"
			}
		default:
			resp.Err = fmt.Sprintf("collector: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// DefaultCallTimeout bounds one query round trip (dial + write + read):
// a hung or half-dead server must never block the Modeler forever.
const DefaultCallTimeout = 5 * time.Second

// DefaultRetryBackoff is the pause before the reconnect attempt after a
// failed call, giving a restarting server a moment to rebind.
const DefaultRetryBackoff = 100 * time.Millisecond

// ClientConfig tunes a client's failure behaviour. The zero value of
// each field selects its default.
type ClientConfig struct {
	// CallTimeout is the per-call I/O deadline (default
	// DefaultCallTimeout); negative disables deadlines.
	CallTimeout time.Duration
	// RetryBackoff is the wait between the failed attempt and the one
	// reconnect retry (default DefaultRetryBackoff); negative disables
	// the pause.
	RetryBackoff time.Duration
}

func (cc *ClientConfig) fill() {
	if cc.CallTimeout == 0 {
		cc.CallTimeout = DefaultCallTimeout
	}
	if cc.RetryBackoff == 0 {
		cc.RetryBackoff = DefaultRetryBackoff
	}
}

// Client is a Source backed by a remote collector service.
type Client struct {
	addr string
	cfg  ClientConfig

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a collector service with default timeouts.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a collector service with explicit failure
// behaviour.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout())
	if err != nil {
		return fmt.Errorf("collector: %w", err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

func (c *Client) dialTimeout() time.Duration {
	if c.cfg.CallTimeout < 0 {
		return 0 // no limit
	}
	return c.cfg.CallTimeout
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

func (c *Client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempt := func() (*response, error) {
		if c.conn == nil {
			if err := c.connect(); err != nil {
				return nil, err
			}
		}
		// Per-call deadline: a hung server surfaces as a timeout error
		// the reconnect path handles, never as a blocked Modeler.
		if c.cfg.CallTimeout > 0 {
			if err := c.conn.SetDeadline(time.Now().Add(c.cfg.CallTimeout)); err != nil {
				return nil, err
			}
		}
		if err := c.enc.Encode(req); err != nil {
			return nil, err
		}
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
	resp, err := attempt()
	if err != nil {
		// One reconnect after a short backoff: the server may be
		// restarting; retrying instantly tends to race its rebind.
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		if c.cfg.RetryBackoff > 0 {
			time.Sleep(c.cfg.RetryBackoff)
		}
		resp, err = attempt()
		if err != nil {
			return nil, err
		}
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// Topology implements Source.
func (c *Client) Topology() (*Topology, error) {
	resp, err := c.call(&request{Op: "topo"})
	if err != nil {
		return nil, err
	}
	return topoFromWire(resp.Topo), nil
}

// Utilization implements Source.
func (c *Client) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	resp, err := c.call(&request{Op: "util", Key: key, Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

// Samples implements Source.
func (c *Client) Samples(key ChannelKey) ([]stats.Sample, error) {
	resp, err := c.call(&request{Op: "samples", Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Samples, nil
}

// HostLoad implements Source.
func (c *Client) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	resp, err := c.call(&request{Op: "load", Node: string(node), Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

// DataAge implements Source.
func (c *Client) DataAge(key ChannelKey) (float64, error) {
	resp, err := c.call(&request{Op: "age", Key: key})
	if err != nil {
		return 0, err
	}
	return resp.Age, nil
}

// Health implements HealthSource: the remote collector's per-agent
// health snapshot (nil when the server cannot provide one).
func (c *Client) Health() map[graph.NodeID]AgentHealth {
	resp, err := c.call(&request{Op: "health"})
	if err != nil {
		return nil
	}
	out := make(map[graph.NodeID]AgentHealth, len(resp.Health))
	for id, h := range resp.Health {
		out[graph.NodeID(id)] = h
	}
	return out
}
