package collector

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/graph"
	"repro/internal/stats"
)

// The TCP/gob query service: how an application's Modeler reaches a
// Collector running as a separate process (the deployment in the paper's
// Figure 2). Virtual-time experiments use the Collector in-process; this
// service exists for daemon mode and is covered by real-socket
// integration tests.

type wireNode struct {
	ID           string
	Kind         int
	InternalBW   float64
	ComputePower float64
	MemoryBytes  float64
}

type wireLink struct {
	A, B     string
	Capacity float64
	Latency  float64
	Global   int
}

type wireTopo struct {
	Nodes        []wireNode
	Links        []wireLink
	DiscoveredAt float64
}

func topoToWire(t *Topology) *wireTopo {
	w := &wireTopo{DiscoveredAt: t.DiscoveredAt}
	for _, id := range t.Graph.Nodes() {
		n := t.Graph.Node(id)
		w.Nodes = append(w.Nodes, wireNode{
			ID: string(n.ID), Kind: int(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	for _, l := range t.Graph.Links() {
		w.Links = append(w.Links, wireLink{
			A: string(l.A), B: string(l.B),
			Capacity: l.Capacity, Latency: l.Latency,
			Global: t.GlobalID[l.ID],
		})
	}
	return w
}

func topoFromWire(w *wireTopo) *Topology {
	g := graph.New()
	for _, n := range w.Nodes {
		g.AddNode(graph.Node{
			ID: graph.NodeID(n.ID), Kind: graph.NodeKind(n.Kind),
			InternalBW: n.InternalBW, ComputePower: n.ComputePower,
			MemoryBytes: n.MemoryBytes,
		})
	}
	t := &Topology{Graph: g, GlobalID: make(map[graph.LinkID]int), DiscoveredAt: w.DiscoveredAt}
	for _, l := range w.Links {
		gl := g.AddLink(graph.NodeID(l.A), graph.NodeID(l.B), l.Capacity, l.Latency)
		t.GlobalID[gl.ID] = l.Global
	}
	return t
}

type request struct {
	Op   string // "topo", "util", "samples", "load"
	Key  ChannelKey
	Span float64
	Node string
}

type response struct {
	Err     string
	Stat    stats.Stat
	Samples []stats.Sample
	Topo    *wireTopo
}

// Server exposes a Source over TCP.
type Server struct {
	src Source
	ln  net.Listener
	wg  sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// Serve starts a query server on addr (e.g. "127.0.0.1:0").
func Serve(src Source, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	s := &Server{src: src, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, closes active connections, and waits for all
// serving goroutines.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case "topo":
			t, err := s.src.Topology()
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Topo = topoToWire(t)
			}
		case "util":
			st, err := s.src.Utilization(req.Key, req.Span)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Stat = st
		case "samples":
			sm, err := s.src.Samples(req.Key)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Samples = sm
		case "load":
			st, err := s.src.HostLoad(graph.NodeID(req.Node), req.Span)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Stat = st
		default:
			resp.Err = fmt.Sprintf("collector: unknown op %q", req.Op)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Client is a Source backed by a remote collector service.
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a collector service.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) connect() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("collector: %w", err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		return c.conn.Close()
	}
	return nil
}

func (c *Client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempt := func() (*response, error) {
		if c.conn == nil {
			if err := c.connect(); err != nil {
				return nil, err
			}
		}
		if err := c.enc.Encode(req); err != nil {
			return nil, err
		}
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
	resp, err := attempt()
	if err != nil {
		// One reconnect: the server may have restarted between calls.
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
		resp, err = attempt()
		if err != nil {
			return nil, err
		}
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// Topology implements Source.
func (c *Client) Topology() (*Topology, error) {
	resp, err := c.call(&request{Op: "topo"})
	if err != nil {
		return nil, err
	}
	return topoFromWire(resp.Topo), nil
}

// Utilization implements Source.
func (c *Client) Utilization(key ChannelKey, span float64) (stats.Stat, error) {
	resp, err := c.call(&request{Op: "util", Key: key, Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}

// Samples implements Source.
func (c *Client) Samples(key ChannelKey) ([]stats.Sample, error) {
	resp, err := c.call(&request{Op: "samples", Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Samples, nil
}

// HostLoad implements Source.
func (c *Client) HostLoad(node graph.NodeID, span float64) (stats.Stat, error) {
	resp, err := c.call(&request{Op: "load", Node: string(node), Span: span})
	if err != nil {
		if resp != nil {
			return resp.Stat, err
		}
		return stats.NoData(), err
	}
	return resp.Stat, nil
}
